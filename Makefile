GO ?= go

# Every main in the module; `make bins` proves each still builds.
MAINS := \
	./cmd/glp4nn-bench \
	./cmd/glp4nn-info \
	./cmd/glp4nn-train \
	./examples/caffenet-sweep \
	./examples/convergence \
	./examples/dataparallel \
	./examples/multigpu \
	./examples/quickstart \
	./examples/timeline

.PHONY: tier1 vet build test race alloc bins bench bench-tensor clean

# tier1 is the CI gate: vet, build, the full test suite under the race
# detector (the host-side parallel engine must stay race-clean), the
# zero-allocation kernel gate, and a build of every binary.
tier1: vet build race alloc bins

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The steady-state allocation contract (Gemm, Im2col/Col2im, the scratch
# arena) must run without -race: race instrumentation skews the allocation
# accounting, so the tests skip themselves under the race build.
alloc:
	$(GO) test -run 'SteadyStateAllocs' ./internal/tensor

bins:
	@mkdir -p bin
	@set -e; for m in $(MAINS); do \
		echo "build $$m"; \
		$(GO) build -o bin/$$(basename $$m) $$m; \
	done

bench:
	$(GO) test -bench=. -benchmem

# Kernel micro-benchmarks over the paper's Table 5 convolution geometries
# (GEMM shapes and im2col/col2im column layouts).
bench-tensor:
	$(GO) test -run '^$$' -bench 'Gemm|Im2col|Col2im' -benchmem ./internal/tensor

clean:
	rm -rf bin
