GO ?= go

# Every main in the module; `make bins` proves each still builds.
MAINS := \
	./cmd/glp4nn-bench \
	./cmd/glp4nn-info \
	./cmd/glp4nn-serve \
	./cmd/glp4nn-train \
	./examples/caffenet-sweep \
	./examples/convergence \
	./examples/dataparallel \
	./examples/multigpu \
	./examples/quickstart \
	./examples/timeline

.PHONY: tier1 vet build test race alloc purego bins bench bench-tensor bench-dag bench-input bench-kernel bench-comm bench-serve bench-adapt serve chaos checkpoint clean

# tier1 is the CI gate: vet, build, the full test suite under the race
# detector (the host-side parallel engine must stay race-clean), the
# zero-allocation kernel gate, the pure-Go fallback build, and a build of
# every binary.
tier1: vet build race alloc purego bins

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The chaos soak trains all four workloads under fault storms; with race
# instrumentation on a small CI box that legitimately exceeds go test's
# default 10-minute per-package timeout, so the budget is raised here.
race:
	$(GO) test -race -timeout 45m ./...

# The steady-state allocation contract (Gemm, Im2col/Col2im, the scratch
# arena, and a prefetched input batch end to end) must run without -race:
# race instrumentation skews the allocation accounting, so the tests skip
# themselves under the race build.
alloc:
	$(GO) test -run 'SteadyStateAllocs' ./internal/tensor ./internal/data

# The pure-Go fallback (no asm micro-kernels, the only path off amd64) must
# stay green: vet and the focused kernel/engine suites with the asm files
# excluded. The purego GEMM is several times slower, so this runs the
# packages that pin the numeric contract rather than the whole-repo soak
# (which `race` already covers on the asm path).
purego:
	$(GO) vet -tags purego ./...
	$(GO) test -tags purego -timeout 30m ./internal/tensor ./internal/kernels ./internal/dnn ./internal/models

bins:
	@mkdir -p bin
	@set -e; for m in $(MAINS); do \
		echo "build $$m"; \
		$(GO) build -o bin/$$(basename $$m) $$m; \
	done

# Focused fault-injection/self-healing suite: the chaos soak (all four
# workloads under seeded fault storms, bitwise-invariance checked), the
# deterministic rollback test, the mid-run degradation test, the
# device-loss eviction soak (replica evicted mid-run, post-eviction
# training bitwise identical to the healthy N-device run), and the
# crash-resume soak (trainer killed mid-run and restored from a durable
# checkpoint, bitwise identical to the uninterrupted run), and the
# overlapped all-reduce bit-identity suite (blocking vs bucketed-overlapped
# arms on all four workloads, plus an eviction mid-soak), and the adaptive
# plan-swap soak (drift injected into the profiling window, online
# re-profiling and step-boundary swaps, bitwise identical to the serial
# reference replaying the same width schedule). Not a separate tier1
# dependency: `race` already runs these via ./... — this target exists for
# fast iteration on the recovery paths alone.
chaos:
	$(GO) test -race -timeout 45m -run 'TestChaosSoak|TestStepRollback|TestMidRunDegradation|TestDeviceLossSoak|TestCrashResumeSoak|TestOverlappedAllReduce|TestAdaptivePlanSwapInvariance' -v ./internal/parallel/

# Durable-checkpoint suite alone: the on-disk GLPC codec, corruption
# refusal (flipped CRC byte, truncated tail, wrong version), atomic-write
# guarantees, the crash-resume soak, and the CLI resume paths.
checkpoint:
	$(GO) test -race -timeout 45m -run 'TestDurable|TestCheckpoint|TestCrashResumeSoak|TestWriteFileAtomic|TestTrainerCheckpoint|TestResumeRefuses' -v ./internal/parallel/ ./cmd/glp4nn-train/

bench:
	$(GO) test -bench=. -benchmem

# Kernel micro-benchmarks over the paper's Table 5 convolution geometries
# (GEMM shapes and im2col/col2im column layouts).
bench-tensor:
	$(GO) test -run '^$$' -bench 'Gemm|Im2col|Col2im' -benchmem ./internal/tensor

# Operator DAG scheduler experiment: GoogLeNet (inception branches run
# concurrently) and a chain MLP (serial-fallback control), serial vs DAG
# wall-clock plus the bitwise parameter-identity check.
bench-dag:
	$(GO) run ./cmd/glp4nn-bench -exp dagpar

# Asynchronous input pipeline experiment: per-workload feed stall with the
# inline feeder vs the double-buffered prefetcher (copy-stream staging),
# plus the bitwise parameter-identity check.
bench-input:
	$(GO) run ./cmd/glp4nn-bench -exp inputpipe -quick

# Host kernel engine sweep: every runnable ISA level (purego → sse2 → avx2)
# × {plain GEMM, separate bias+relu passes, fused epilogue} over the Table 5
# GEMM geometries, bit-identity checked per arm, with machine-readable
# records written to BENCH_kernelperf.json (the repo's perf trajectory).
bench-kernel:
	$(GO) run ./cmd/glp4nn-bench -exp kernelperf -json-out BENCH_kernelperf.json

# Gradient all-reduce sweep: replicas × bus × bucket size, each overlapped
# arm's exposed comm compared against the blocking monolith on the same
# topology (bit-identity checked per arm), closing with the Phase-2
# host-reduction serial-vs-pool wall-clock, written to BENCH_allreduce.json.
bench-comm:
	$(GO) run ./cmd/glp4nn-bench -exp allreduce -json-out BENCH_allreduce.json

# Adaptive concurrency controller sweep: drift-band × workload under
# injected profiling drift, the stale fixed-plan arm's virtual timeline
# against the adaptive arm's (re-profile + step-boundary swap), bitwise
# replay-invariance checked per workload, written to BENCH_adapt.json.
bench-adapt:
	$(GO) run ./cmd/glp4nn-bench -exp adapt -json-out BENCH_adapt.json

# Inference serving experiment: batch=1 serial vs dynamic request batching
# on the same frozen engine, per-request answers bitwise-compared across
# arms (the table from glp4nn-bench), then the two arms re-run standalone
# through glp4nn-serve -json for machine-readable p50/p99 lines.
bench-serve:
	$(GO) run ./cmd/glp4nn-bench -exp servebench -quick
	$(GO) run ./cmd/glp4nn-serve -net CIFAR10 -glp4nn -max-batch 1 -max-delay -1ns -requests 64 -json
	$(GO) run ./cmd/glp4nn-serve -net CIFAR10 -glp4nn -requests 64 -json

# Serving demo: freeze CIFAR10, answer a seeded heavy-tailed request load
# through the dynamic batcher on the GLP4NN runtime, and report p50/p99 as
# JSON (drop -json for the human-readable report).
serve:
	$(GO) run ./cmd/glp4nn-serve -net CIFAR10 -glp4nn -dag -requests 128 -clients 8 -json

clean:
	rm -rf bin
