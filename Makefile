GO ?= go

# Every main in the module; `make bins` proves each still builds.
MAINS := \
	./cmd/glp4nn-bench \
	./cmd/glp4nn-info \
	./cmd/glp4nn-train \
	./examples/caffenet-sweep \
	./examples/convergence \
	./examples/dataparallel \
	./examples/multigpu \
	./examples/quickstart \
	./examples/timeline

.PHONY: tier1 vet build test race bins bench clean

# tier1 is the CI gate: vet, build, the full test suite under the race
# detector (the host-side parallel engine must stay race-clean), and a
# build of every binary.
tier1: vet build race bins

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bins:
	@mkdir -p bin
	@set -e; for m in $(MAINS); do \
		echo "build $$m"; \
		$(GO) build -o bin/$$(basename $$m) $$m; \
	done

bench:
	$(GO) test -bench=. -benchmem

clean:
	rm -rf bin
