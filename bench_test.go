// Benchmarks: one testing.B entry per paper table/figure, running the
// corresponding experiment from internal/bench in quick mode (full-size
// runs are the domain of cmd/glp4nn-bench). The reported custom metrics
// are wall-clock per experiment execution; the experiment's own output is
// virtual (simulated-GPU) time.
package glp4nn

import (
	"io"
	"testing"

	"repro/internal/bench"
)

func benchExperiment(b *testing.B, id string, cfg bench.Config) {
	b.Helper()
	e, err := bench.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func quick() bench.Config {
	return bench.Config{Quick: true, Iterations: 1, Seed: 1}
}

func BenchmarkTable1ArchCatalog(b *testing.B) { benchExperiment(b, "table1", quick()) }

func BenchmarkTable3HardwareProfile(b *testing.B) { benchExperiment(b, "table3", quick()) }

func BenchmarkTable4Datasets(b *testing.B) { benchExperiment(b, "table4", quick()) }

func BenchmarkTable5LayerGeometry(b *testing.B) { benchExperiment(b, "table5", quick()) }

func BenchmarkFig2CaffeNetConvSpeedup(b *testing.B) { benchExperiment(b, "fig2", quick()) }

func BenchmarkFig3Timeline(b *testing.B) { benchExperiment(b, "fig3", quick()) }

func BenchmarkFig4BestStreams(b *testing.B) {
	cfg := quick()
	cfg.Devices = []string{"K40C", "P100"}
	benchExperiment(b, "fig4", cfg)
}

func BenchmarkFig7TrainingSpeedup(b *testing.B) {
	cfg := quick()
	cfg.Devices = []string{"P100"}
	cfg.Networks = []string{"CIFAR10", "Siamese"}
	benchExperiment(b, "fig7", cfg)
}

func BenchmarkFig8StreamConfig(b *testing.B) {
	cfg := quick()
	cfg.Devices = []string{"P100"}
	cfg.Networks = []string{"CIFAR10"}
	benchExperiment(b, "fig8", cfg)
}

func BenchmarkFig9SmallLayerRegression(b *testing.B) { benchExperiment(b, "fig9", quick()) }

func BenchmarkFig10Memory(b *testing.B) {
	cfg := quick()
	cfg.Devices = []string{"P100"}
	cfg.Networks = []string{"Siamese"}
	benchExperiment(b, "fig10", cfg)
}

func BenchmarkTable6Overhead(b *testing.B) {
	cfg := quick()
	cfg.Devices = []string{"K40C"}
	cfg.Networks = []string{"CIFAR10"}
	benchExperiment(b, "table6", cfg)
}

func BenchmarkFig11Convergence(b *testing.B) {
	cfg := quick()
	cfg.ConvergenceIters = 4
	benchExperiment(b, "fig11", cfg)
}

func BenchmarkAblationEngine(b *testing.B) { benchExperiment(b, "ablation-engine", quick()) }

func BenchmarkHostParallelEngine(b *testing.B) { benchExperiment(b, "hostpar", quick()) }

func BenchmarkDAGScheduler(b *testing.B) { benchExperiment(b, "dagpar", quick()) }

func BenchmarkAblationPoolPolicy(b *testing.B) { benchExperiment(b, "ablation-pool", quick()) }
