// Command glp4nn-bench regenerates the paper's tables and figures on the
// simulated devices. Run with -list to see every experiment, -exp <id> to
// run one, or -exp all for the full evaluation.
//
// Examples:
//
//	glp4nn-bench -list
//	glp4nn-bench -exp fig7
//	glp4nn-bench -exp fig2 -quick
//	glp4nn-bench -exp fig11 -convergence-iters 500
//	glp4nn-bench -exp fig7 -devices P100 -networks CIFAR10,Siamese
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id to run (or 'all')")
		list      = flag.Bool("list", false, "list available experiments")
		devices   = flag.String("devices", "", "comma-separated device names (default: K40C,P100,TitanXP)")
		networks  = flag.String("networks", "", "comma-separated workloads (default: all four)")
		iters     = flag.Int("iters", 0, "measured timing iterations per arm")
		seed      = flag.Int64("seed", 1, "seed for synthetic data and initialization")
		quick     = flag.Bool("quick", false, "shrink batches and sweeps for a fast smoke run")
		convIters = flag.Int("convergence-iters", 0, "training length for fig11")
		jsonOut   = flag.String("json-out", "", "write machine-readable records to this file (experiments that support it, e.g. kernelperf)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Title)
			fmt.Printf("  %-16s paper: %s\n", "", e.Paper)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun one with -exp <id> (or -exp all)")
		}
		return
	}

	cfg := bench.Config{
		Iterations:       *iters,
		Seed:             *seed,
		Quick:            *quick,
		ConvergenceIters: *convIters,
		JSONOut:          *jsonOut,
	}
	if *devices != "" {
		cfg.Devices = splitList(*devices)
	}
	if *networks != "" {
		cfg.Networks = splitList(*networks)
	}

	var toRun []*bench.Experiment
	if *exp == "all" {
		toRun = bench.All()
	} else {
		for _, id := range splitList(*exp) {
			e, err := bench.Get(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			toRun = append(toRun, e)
		}
	}

	for _, e := range toRun {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		fmt.Printf("paper: %s\n\n", e.Paper)
		start := time.Now()
		if err := e.Run(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("\n(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
