// Command glp4nn-info prints the host micro-kernel ISA ladder, the
// simulated hardware and dataset catalogs (the paper's Tables 1, 3 and 4)
// and each workload's fusable GEMM-epilogue sites; with -occupancy the CUDA
// occupancy calculation for a kernel launch configuration on each device,
// and with -dag the operator-level dependency DAG of each workload (depth,
// maximum wavefront, critical path — the inter-layer parallelism the DAG
// scheduler can exploit).
//
// Examples:
//
//	glp4nn-info
//	glp4nn-info -occupancy -threads 256 -smem 16384
//	glp4nn-info -dag
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/dnn"
	"repro/internal/models"
	"repro/internal/simgpu"
	"repro/internal/tensor"
)

func main() {
	var (
		occupancy = flag.Bool("occupancy", false, "print occupancy for a launch config on each device")
		threads   = flag.Int("threads", 256, "threads per block for -occupancy")
		smem      = flag.Int("smem", 0, "shared memory bytes per block for -occupancy")
		blocks    = flag.Int("blocks", 64, "grid size for -occupancy")
		dag       = flag.Bool("dag", false, "print each workload's operator DAG shape (inter-layer parallelism)")
	)
	flag.Parse()

	if *dag {
		if err := printDAGs(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *occupancy {
		cfg := simgpu.LaunchConfig{
			Grid:           simgpu.D1(*blocks),
			Block:          simgpu.D1(*threads),
			SharedMemBytes: *smem,
		}
		fmt.Printf("occupancy for grid=%d block=%d smem=%dB:\n", *blocks, *threads, *smem)
		for _, spec := range simgpu.DeviceCatalog {
			fmt.Printf("  %-8s %2d blocks/SM resident, theoretical occupancy %.2f\n",
				spec.Name, cfg.MaxBlocksResidentPerSM(spec), cfg.TheoreticalOccupancy(spec))
		}
		return
	}

	fmt.Printf("host micro-kernel ISA: detected %s, active %s (runnable: %v; GLP4NN_ISA forces down)\n\n",
		tensor.DetectedISA(), tensor.ActiveISA(), tensor.AvailableISAs())

	for _, id := range []string{"table1", "table3", "table4"} {
		e, err := bench.Get(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s ===\n", e.Title)
		if err := e.Run(bench.Config{Quick: true}, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if err := printFusion(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// printFusion builds each registered workload at a tiny batch and reports
// its fusable GEMM-epilogue sites (what Net.EnableFusion — the CLIs' -fuse
// flag — collapses into the GEMM while changing no bits).
func printFusion() error {
	fmt.Println("fusable GEMM epilogue sites per workload (enable with -fuse / Net.EnableFusion):")
	for _, name := range models.Names {
		w, err := models.Get(name)
		if err != nil {
			return err
		}
		ctx := dnn.NewContext(dnn.HostLauncher{}, 1)
		ctx.Compute = false
		net, err := w.Build(ctx, 2, 1)
		if err != nil {
			return fmt.Errorf("building %s: %w", name, err)
		}
		sites := net.FusionPlan()
		kinds := map[string]int{}
		for _, s := range sites {
			kinds[s.Kind]++
		}
		var parts []string
		for _, k := range []string{"conv+bias+relu", "conv+bias", "conv+relu", "ip+bias"} {
			if kinds[k] > 0 {
				parts = append(parts, fmt.Sprintf("%d %s", kinds[k], k))
			}
		}
		fmt.Printf("  %-10s %3d sites (%s)\n", name, len(sites), strings.Join(parts, ", "))
	}
	return nil
}

// printDAGs builds each registered workload at a tiny batch and prints its
// blob-dependency DAG statistics — the axis of parallelism that is a
// property of the network alone, independent of any device.
func printDAGs() error {
	for _, name := range models.Names {
		w, err := models.Get(name)
		if err != nil {
			return err
		}
		ctx := dnn.NewContext(dnn.HostLauncher{}, 1)
		ctx.Compute = false
		net, err := w.Build(ctx, 2, 1)
		if err != nil {
			return fmt.Errorf("building %s: %w", name, err)
		}
		st, err := net.DAGStats()
		if err != nil {
			return fmt.Errorf("dag for %s: %w", name, err)
		}
		fmt.Printf("%s: %s\n", name, st)
		fmt.Printf("  critical path: %s\n\n", strings.Join(st.CriticalPath, " → "))
	}
	return nil
}
