// Command glp4nn-info prints the host micro-kernel ISA ladder, the
// simulated hardware and dataset catalogs (the paper's Tables 1, 3 and 4)
// and each workload's fusable GEMM-epilogue sites; with -occupancy the CUDA
// occupancy calculation for a kernel launch configuration on each device,
// and with -dag the operator-level dependency DAG of each workload (depth,
// maximum wavefront, critical path — the inter-layer parallelism the DAG
// scheduler can exploit).
//
// Examples:
//
//	glp4nn-info
//	glp4nn-info -occupancy -threads 256 -smem 16384
//	glp4nn-info -dag
//	glp4nn-info -plans -net CIFAR10 -device P100
//	glp4nn-info -plans -checkpoint ckpt/checkpoint.glpc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/simgpu"
	"repro/internal/tensor"
)

func main() {
	var (
		occupancy = flag.Bool("occupancy", false, "print occupancy for a launch config on each device")
		threads   = flag.Int("threads", 256, "threads per block for -occupancy")
		smem      = flag.Int("smem", 0, "shared memory bytes per block for -occupancy")
		blocks    = flag.Int("blocks", 64, "grid size for -occupancy")
		dag       = flag.Bool("dag", false, "print each workload's operator DAG shape (inter-layer parallelism)")
		plans     = flag.Bool("plans", false, "print the analyzer's cached concurrency-plan table (profile a workload, or read -checkpoint)")
		ckpt      = flag.String("checkpoint", "", "with -plans: read the plan table from this durable checkpoint instead of profiling")
		netName   = flag.String("net", "CIFAR10", "with -plans: workload to profile")
		device    = flag.String("device", "P100", "with -plans: simulated GPU to profile on")
	)
	flag.Parse()

	if *plans {
		var err error
		if *ckpt != "" {
			err = printCheckpointPlans(*ckpt)
		} else {
			err = printLivePlans(*netName, *device)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *dag {
		if err := printDAGs(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *occupancy {
		cfg := simgpu.LaunchConfig{
			Grid:           simgpu.D1(*blocks),
			Block:          simgpu.D1(*threads),
			SharedMemBytes: *smem,
		}
		fmt.Printf("occupancy for grid=%d block=%d smem=%dB:\n", *blocks, *threads, *smem)
		for _, spec := range simgpu.DeviceCatalog {
			fmt.Printf("  %-8s %2d blocks/SM resident, theoretical occupancy %.2f\n",
				spec.Name, cfg.MaxBlocksResidentPerSM(spec), cfg.TheoreticalOccupancy(spec))
		}
		return
	}

	fmt.Printf("host micro-kernel ISA: detected %s, active %s (runnable: %v; GLP4NN_ISA forces down)\n\n",
		tensor.DetectedISA(), tensor.ActiveISA(), tensor.AvailableISAs())

	for _, id := range []string{"table1", "table3", "table4"} {
		e, err := bench.Get(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s ===\n", e.Title)
		if err := e.Run(bench.Config{Quick: true}, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if err := printFusion(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// printFusion builds each registered workload at a tiny batch and reports
// its fusable GEMM-epilogue sites (what Net.EnableFusion — the CLIs' -fuse
// flag — collapses into the GEMM while changing no bits).
func printFusion() error {
	fmt.Println("fusable GEMM epilogue sites per workload (enable with -fuse / Net.EnableFusion):")
	for _, name := range models.Names {
		w, err := models.Get(name)
		if err != nil {
			return err
		}
		ctx := dnn.NewContext(dnn.HostLauncher{}, 1)
		ctx.Compute = false
		net, err := w.Build(ctx, 2, 1)
		if err != nil {
			return fmt.Errorf("building %s: %w", name, err)
		}
		sites := net.FusionPlan()
		kinds := map[string]int{}
		for _, s := range sites {
			kinds[s.Kind]++
		}
		var parts []string
		for _, k := range []string{"conv+bias+relu", "conv+bias", "conv+relu", "ip+bias"} {
			if kinds[k] > 0 {
				parts = append(parts, fmt.Sprintf("%d %s", kinds[k], k))
			}
		}
		fmt.Printf("  %-10s %3d sites (%s)\n", name, len(sites), strings.Join(parts, ", "))
	}
	return nil
}

// planRow prints one cached plan in the shared -plans table format.
func planRow(key string, streams int, serial, fallback bool, solvedFrom time.Duration) {
	kind := "solved"
	if fallback {
		kind = "fallback"
	}
	if serial {
		kind += ",serial"
	}
	fmt.Printf("  %-26s width %2d  %-15s solved-from %v\n",
		key, streams, kind, solvedFrom.Round(time.Microsecond))
}

// printCheckpointPlans dumps the per-replica plan tables stored in a durable
// checkpoint (version ≥ 1; version-1 files carry no solved-from timing).
func printCheckpointPlans(path string) error {
	info, err := parallel.PeekCheckpointFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: iteration %d, %d replicas\n", path, info.Iter, len(info.Plans))
	for i, ps := range info.Plans {
		if len(ps) == 0 {
			fmt.Printf("replica %d: no cached plans (non-GLP run or evicted replica)\n", i)
			continue
		}
		fmt.Printf("replica %d: %d plans\n", i, len(ps))
		for _, p := range ps {
			planRow(p.Key, p.Streams, p.Serial, p.Fallback, p.SolvedFrom)
		}
	}
	return nil
}

// printLivePlans runs two timing-only iterations of a workload under
// GLP4NN — enough to open and close the profiling window — then finalizes
// and dumps the analyzer's plan cache (the data behind the paper's Fig. 8).
func printLivePlans(netName, device string) error {
	spec, ok := simgpu.DeviceByName(device)
	if !ok {
		return fmt.Errorf("unknown device %q (have %v)", device, simgpu.CatalogNames())
	}
	w, err := models.Get(netName)
	if err != nil {
		return err
	}
	dev := simgpu.NewDevice(spec, simgpu.WithTraceLimit(1))
	fw := core.New()
	defer fw.Close()
	rt := fw.Runtime(dev)
	ctx := dnn.NewContext(rt, 1)
	ctx.Compute = false
	net, err := w.Build(ctx, w.DefaultBatch, 1)
	if err != nil {
		return fmt.Errorf("building %s: %w", netName, err)
	}
	solver := dnn.NewSolver(net, ctx, dnn.CIFAR10QuickSolver())
	for i := 0; i < 2; i++ {
		if _, err := solver.Step(); err != nil {
			return err
		}
	}
	ps := rt.FinalizePlans()
	fmt.Printf("%s on %s (batch %d): %d concurrency plans\n", netName, spec.Name, w.DefaultBatch, len(ps))
	for _, p := range ps {
		planRow(p.Key, p.Streams, p.Serial, p.Fallback, p.SolvedFrom)
	}
	return nil
}

// printDAGs builds each registered workload at a tiny batch and prints its
// blob-dependency DAG statistics — the axis of parallelism that is a
// property of the network alone, independent of any device.
func printDAGs() error {
	for _, name := range models.Names {
		w, err := models.Get(name)
		if err != nil {
			return err
		}
		ctx := dnn.NewContext(dnn.HostLauncher{}, 1)
		ctx.Compute = false
		net, err := w.Build(ctx, 2, 1)
		if err != nil {
			return fmt.Errorf("building %s: %w", name, err)
		}
		st, err := net.DAGStats()
		if err != nil {
			return fmt.Errorf("dag for %s: %w", name, err)
		}
		fmt.Printf("%s: %s\n", name, st)
		fmt.Printf("  critical path: %s\n\n", strings.Join(st.CriticalPath, " → "))
	}
	return nil
}
