// Command glp4nn-info prints the simulated hardware and dataset catalogs
// (the paper's Tables 1, 3 and 4), with -occupancy the CUDA occupancy
// calculation for a kernel launch configuration on each device, and with
// -dag the operator-level dependency DAG of each workload (depth, maximum
// wavefront, critical path — the inter-layer parallelism the DAG scheduler
// can exploit).
//
// Examples:
//
//	glp4nn-info
//	glp4nn-info -occupancy -threads 256 -smem 16384
//	glp4nn-info -dag
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/dnn"
	"repro/internal/models"
	"repro/internal/simgpu"
)

func main() {
	var (
		occupancy = flag.Bool("occupancy", false, "print occupancy for a launch config on each device")
		threads   = flag.Int("threads", 256, "threads per block for -occupancy")
		smem      = flag.Int("smem", 0, "shared memory bytes per block for -occupancy")
		blocks    = flag.Int("blocks", 64, "grid size for -occupancy")
		dag       = flag.Bool("dag", false, "print each workload's operator DAG shape (inter-layer parallelism)")
	)
	flag.Parse()

	if *dag {
		if err := printDAGs(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *occupancy {
		cfg := simgpu.LaunchConfig{
			Grid:           simgpu.D1(*blocks),
			Block:          simgpu.D1(*threads),
			SharedMemBytes: *smem,
		}
		fmt.Printf("occupancy for grid=%d block=%d smem=%dB:\n", *blocks, *threads, *smem)
		for _, spec := range simgpu.DeviceCatalog {
			fmt.Printf("  %-8s %2d blocks/SM resident, theoretical occupancy %.2f\n",
				spec.Name, cfg.MaxBlocksResidentPerSM(spec), cfg.TheoreticalOccupancy(spec))
		}
		return
	}

	for _, id := range []string{"table1", "table3", "table4"} {
		e, err := bench.Get(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s ===\n", e.Title)
		if err := e.Run(bench.Config{Quick: true}, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

// printDAGs builds each registered workload at a tiny batch and prints its
// blob-dependency DAG statistics — the axis of parallelism that is a
// property of the network alone, independent of any device.
func printDAGs() error {
	for _, name := range models.Names {
		w, err := models.Get(name)
		if err != nil {
			return err
		}
		ctx := dnn.NewContext(dnn.HostLauncher{}, 1)
		ctx.Compute = false
		net, err := w.Build(ctx, 2, 1)
		if err != nil {
			return fmt.Errorf("building %s: %w", name, err)
		}
		st, err := net.DAGStats()
		if err != nil {
			return fmt.Errorf("dag for %s: %w", name, err)
		}
		fmt.Printf("%s: %s\n", name, st)
		fmt.Printf("  critical path: %s\n\n", strings.Join(st.CriticalPath, " → "))
	}
	return nil
}
