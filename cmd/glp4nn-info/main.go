// Command glp4nn-info prints the simulated hardware and dataset catalogs
// (the paper's Tables 1, 3 and 4) and, with -occupancy, runs the CUDA
// occupancy calculation for a kernel launch configuration on each device.
//
// Examples:
//
//	glp4nn-info
//	glp4nn-info -occupancy -threads 256 -smem 16384
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/simgpu"
)

func main() {
	var (
		occupancy = flag.Bool("occupancy", false, "print occupancy for a launch config on each device")
		threads   = flag.Int("threads", 256, "threads per block for -occupancy")
		smem      = flag.Int("smem", 0, "shared memory bytes per block for -occupancy")
		blocks    = flag.Int("blocks", 64, "grid size for -occupancy")
	)
	flag.Parse()

	if *occupancy {
		cfg := simgpu.LaunchConfig{
			Grid:           simgpu.D1(*blocks),
			Block:          simgpu.D1(*threads),
			SharedMemBytes: *smem,
		}
		fmt.Printf("occupancy for grid=%d block=%d smem=%dB:\n", *blocks, *threads, *smem)
		for _, spec := range simgpu.DeviceCatalog {
			fmt.Printf("  %-8s %2d blocks/SM resident, theoretical occupancy %.2f\n",
				spec.Name, cfg.MaxBlocksResidentPerSM(spec), cfg.TheoreticalOccupancy(spec))
		}
		return
	}

	for _, id := range []string{"table1", "table3", "table4"} {
		e, err := bench.Get(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s ===\n", e.Title)
		if err := e.Run(bench.Config{Quick: true}, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
