// Command glp4nn-serve freezes one of the paper's workloads into a
// forward-only inference engine and serves a seeded, heavy-tailed
// synthetic request load through the dynamic batcher: concurrent clients
// submit single samples, the batcher coalesces them into device batches
// (flush on batch-full or deadline), stages input over the runtime's copy
// stream and answers each request with its own output rows.
//
// Examples:
//
//	glp4nn-serve -net CIFAR10 -requests 256 -clients 8 -glp4nn
//	glp4nn-serve -net GoogLeNet -batch 16 -max-delay 1ms -glp4nn -dag
//	glp4nn-serve -net Siamese -weights trained.glpw -json
//	glp4nn-serve -net CIFAR10 -max-batch 1 -max-delay -1ns   # batch=1 serial baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/models"
	"repro/internal/serve"
	"repro/internal/simgpu"
)

type options struct {
	netName  string
	batch    int
	maxBatch int
	maxDelay time.Duration
	requests int
	clients  int
	device   string
	useGLP    bool
	useDAG    bool
	useFuse   bool
	adapt     bool
	driftBand float64
	weights   string
	seed      int64
	mean      time.Duration
	jsonOut   bool
}

func main() {
	var o options
	flag.StringVar(&o.netName, "net", "CIFAR10", "workload: CIFAR10, Siamese, CaffeNet or GoogLeNet")
	flag.IntVar(&o.batch, "batch", 8, "frozen engine device batch (rows per forward)")
	flag.IntVar(&o.maxBatch, "max-batch", 0, "max requests coalesced per batch (0 = engine batch; 1 = serial baseline)")
	flag.DurationVar(&o.maxDelay, "max-delay", 2*time.Millisecond, "flush deadline for a partial batch (negative = greedy flush)")
	flag.IntVar(&o.requests, "requests", 128, "total requests to serve")
	flag.IntVar(&o.clients, "clients", 8, "concurrent open-loop clients")
	flag.StringVar(&o.device, "device", "P100", "simulated GPU: K40C, P100 or TitanXP")
	flag.BoolVar(&o.useGLP, "glp4nn", false, "serve through GLP4NN's runtime (stream pool + copy stream) instead of the serial launcher")
	flag.BoolVar(&o.useDAG, "dag", false, "dispatch independent layers as concurrent wavefronts (bits unchanged)")
	flag.BoolVar(&o.useFuse, "fuse", false, "fuse bias/ReLU epilogues into the GEMM kernels (bits unchanged)")
	flag.BoolVar(&o.adapt, "adapt", false, "with -glp4nn: adaptive concurrency control — drifted layers re-profile between batches (forward is width-invariant, so answers never change)")
	flag.Float64Var(&o.driftBand, "drift-band", core.DefaultDriftBand, "adaptive drift tolerance around each plan's solved-from timing")
	flag.StringVar(&o.weights, "weights", "", "load a weights snapshot (glp4nn-train -save-weights) before freezing")
	flag.Int64Var(&o.seed, "seed", 1, "seed for weights, load shape and sample content")
	flag.DurationVar(&o.mean, "mean-gap", 500*time.Microsecond, "mean request inter-arrival gap (Pareto tail)")
	flag.BoolVar(&o.jsonOut, "json", false, "emit machine-readable p50/p99 JSON instead of text")
	flag.Parse()

	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// report is the -json output shape (make bench-serve consumes it).
type report struct {
	Net       string  `json:"net"`
	Device    string  `json:"device"`
	Batch     int     `json:"engine_batch"`
	MaxBatch  int     `json:"max_batch"`
	Requests  int64   `json:"requests"`
	Batches   int64   `json:"batches"`
	MeanBatch float64 `json:"mean_batch"`
	Retries   int64   `json:"retries"`
	Failures  int64   `json:"failures"`
	WallMs    float64 `json:"wall_ms"`
	RPS       float64 `json:"req_per_sec"`
	ReqP50Ms  float64 `json:"req_p50_ms"`
	ReqP99Ms  float64 `json:"req_p99_ms"`
	BatP50Ms  float64 `json:"batch_p50_ms"`
	BatP99Ms  float64 `json:"batch_p99_ms"`
}

func run(out io.Writer, o options) error {
	spec, ok := simgpu.DeviceByName(o.device)
	if !ok {
		return fmt.Errorf("unknown device %q (have %v)", o.device, simgpu.CatalogNames())
	}
	w, err := models.Get(o.netName)
	if err != nil {
		return err
	}
	if o.batch < 1 {
		o.batch = w.DefaultBatch
	}

	dev := simgpu.NewDevice(spec, simgpu.WithTraceLimit(1))
	var launcher dnn.Launcher = dnn.SerialLauncher{Dev: dev}
	var fw *core.Framework
	var rt *core.Runtime
	if o.useGLP {
		fw = core.New()
		defer fw.Close()
		rt = fw.Runtime(dev)
		launcher = rt
	}
	ctx := dnn.NewContext(launcher, o.seed)

	net, err := w.Build(ctx, o.batch, o.seed)
	if err != nil {
		return err
	}
	if o.weights != "" {
		if err := net.LoadWeightsFile(o.weights); err != nil {
			return err
		}
	}
	net.EnableDAG(o.useDAG)
	fusedSites := 0
	if o.useFuse {
		fusedSites = net.EnableFusion(true)
	}
	fz, err := dnn.Freeze(net)
	if err != nil {
		return err
	}
	freed := fz.Compact()

	cfg := serve.Config{MaxBatch: o.maxBatch, MaxDelay: o.maxDelay}
	if rt != nil {
		cfg.Observer = rt.Ledger()
		cfg.Budget = rt.Budget()
		if o.adapt {
			rt.SetAdaptive(core.AdaptiveConfig{Band: o.driftBand})
			cfg.Adapter = &adaptDriver{rt: rt}
		}
	} else if o.adapt {
		return fmt.Errorf("-adapt needs -glp4nn (there are no plans to adapt without it)")
	}
	srv, err := serve.New(fz, ctx, cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	if !o.jsonOut {
		fmt.Fprintf(out, "serving %s on %s: engine batch %d, max-batch %d, max-delay %v, glp4nn=%v dag=%v fuse=%v\n",
			o.netName, spec.Name, fz.Batch(), srv.MaxBatch(), o.maxDelay, o.useGLP, o.useDAG, o.useFuse)
		fmt.Fprintf(out, "frozen: inputs %v → outputs %v, %d gradient elements dropped\n",
			fz.Inputs(), fz.Outputs(), freed)
		if o.useFuse {
			fmt.Fprintf(out, "fused GEMM epilogues: %d sites\n", fusedSites)
		}
		if o.weights != "" {
			fmt.Fprintf(out, "weights loaded from %s\n", o.weights)
		}
	}

	rows := srv.RowSizes()
	errs := make([]error, o.clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen := serve.NewLoadGen(o.seed+int64(c)*101, o.mean)
			for id := c; id < o.requests; id += o.clients {
				time.Sleep(gen.NextDelay())
				samples := make([][]float32, len(rows))
				for in, n := range rows {
					samples[in] = gen.Sample(id, in, n)
				}
				if _, err := srv.Predict(samples...); err != nil {
					errs[c] = fmt.Errorf("request %d: %w", id, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	st := srv.Stats()
	mean := 0.0
	if st.Batches > 0 {
		mean = float64(st.Samples) / float64(st.Batches)
	}
	if o.jsonOut {
		enc := json.NewEncoder(out)
		return enc.Encode(report{
			Net: o.netName, Device: spec.Name,
			Batch: fz.Batch(), MaxBatch: srv.MaxBatch(),
			Requests: st.Requests, Batches: st.Batches, MeanBatch: mean,
			Retries: st.Retries, Failures: st.Failures,
			WallMs:   float64(wall) / float64(time.Millisecond),
			RPS:      float64(st.Requests) / wall.Seconds(),
			ReqP50Ms: float64(st.ReqP50) / float64(time.Millisecond),
			ReqP99Ms: float64(st.ReqP99) / float64(time.Millisecond),
			BatP50Ms: float64(st.BatchP50) / float64(time.Millisecond),
			BatP99Ms: float64(st.BatchP99) / float64(time.Millisecond),
		})
	}
	fmt.Fprintf(out, "served %d requests in %v (%.1f req/s) with %d clients\n",
		st.Requests, wall.Round(time.Millisecond), float64(st.Requests)/wall.Seconds(), o.clients)
	fmt.Fprintf(out, "serving: %s\n", st)
	if rt != nil {
		snap := rt.Ledger().Snapshot()
		fmt.Fprintf(out, "glp4nn overhead: %s\n", snap)
		fmt.Fprintf(out, "glp4nn serving: %s\n", snap.Serving())
		if o.useDAG {
			fmt.Fprintf(out, "operator DAG dispatches: %d of %d\n", snap.DAGDispatches, snap.Dispatches)
		}
		if o.adapt {
			fmt.Fprintf(out, "glp4nn adaptive: %s\n", snap.Adaptive())
		}
	}
	return nil
}

// adaptDriver is the serving-side adaptive control loop: each flushed batch
// is a step boundary. Forward execution is width-invariant (the per-chain
// gradient folds that make width part of the numeric contract are
// backward-only), so re-profiling and swapping between batches never
// changes an answer's bits — no checkpoint needed, unlike training.
type adaptDriver struct{ rt *core.Runtime }

func (a *adaptDriver) BatchBoundary() {
	if drifted := a.rt.StepBoundary(); len(drifted) > 0 {
		a.rt.ScheduleReprofile(drifted)
	}
}
