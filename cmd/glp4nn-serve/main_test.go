package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dnn"
	"repro/internal/models"
)

func baseOpts() options {
	return options{
		netName:  "CIFAR10",
		batch:    4,
		maxDelay: 2 * time.Millisecond,
		requests: 16,
		clients:  4,
		device:   "P100",
		seed:     1,
		mean:     200 * time.Microsecond,
	}
}

func TestServeCLISmoke(t *testing.T) {
	var buf bytes.Buffer
	o := baseOpts()
	o.useGLP = true
	o.useDAG = true
	if err := run(&buf, o); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	got := buf.String()
	for _, want := range []string{"served 16 requests", "serving:", "glp4nn serving:", "p50"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// TestServeCLIFuse: a fused frozen engine serves the same load without
// failures and reports its fused-site count.
func TestServeCLIFuse(t *testing.T) {
	var buf bytes.Buffer
	o := baseOpts()
	o.useFuse = true
	if err := run(&buf, o); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	got := buf.String()
	for _, want := range []string{"fuse=true", "fused GEMM epilogues:", "served 16 requests"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestServeCLIJSON(t *testing.T) {
	var buf bytes.Buffer
	o := baseOpts()
	o.jsonOut = true
	if err := run(&buf, o); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	var r report
	if err := json.Unmarshal(buf.Bytes(), &r); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if r.Requests != 16 || r.Net != "CIFAR10" || r.Batch != 4 {
		t.Fatalf("unexpected report: %+v", r)
	}
	if r.RPS <= 0 || r.ReqP99Ms < r.ReqP50Ms {
		t.Fatalf("implausible latency report: %+v", r)
	}
	if r.Failures != 0 {
		t.Fatalf("failures in fault-free serve: %+v", r)
	}
}

func TestServeCLIBadFlags(t *testing.T) {
	var buf bytes.Buffer
	o := baseOpts()
	o.device = "H100"
	if err := run(&buf, o); err == nil {
		t.Fatal("unknown device accepted")
	}
	o = baseOpts()
	o.netName = "LeNet"
	if err := run(&buf, o); err == nil {
		t.Fatal("unknown net accepted")
	}
}

// TestServeCLIWeights closes the train→serve loop: a weights snapshot in the
// glp4nn-train -save-weights format is servable via -weights.
func TestServeCLIWeights(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.glpw")

	// Build a differently-seeded net and save its weights — the CLI must
	// load them before freezing (seed only shapes the snapshot's content;
	// round-tripping it through the file is what's under test).
	w, err := models.Get("CIFAR10")
	if err != nil {
		t.Fatal(err)
	}
	ctx := dnn.NewContext(dnn.HostLauncher{}, 42)
	net, err := w.Build(ctx, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SaveWeightsFile(path); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	o := baseOpts()
	o.weights = path
	if err := run(&buf, o); err != nil {
		t.Fatalf("run with -weights: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "weights loaded from") {
		t.Fatalf("weights load not reported:\n%s", buf.String())
	}
}
