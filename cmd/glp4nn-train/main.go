// Command glp4nn-train trains one of the paper's workloads on a simulated
// GPU, with or without GLP4NN, and reports per-iteration loss, virtual
// timing and the framework's overhead ledger.
//
// Examples:
//
//	glp4nn-train -net CIFAR10 -iters 50 -device P100 -glp4nn
//	glp4nn-train -net Siamese -iters 20 -device K40C
//	glp4nn-train -net CaffeNet -batch 16 -iters 3 -device TitanXP -glp4nn -compute=false
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/models"
	"repro/internal/simgpu"
)

func main() {
	var (
		netName = flag.String("net", "CIFAR10", "workload: CIFAR10, Siamese, CaffeNet or GoogLeNet")
		batch   = flag.Int("batch", 0, "batch size (0 = paper default)")
		iters   = flag.Int("iters", 20, "training iterations")
		device  = flag.String("device", "P100", "simulated GPU: K40C, P100 or TitanXP")
		useGLP  = flag.Bool("glp4nn", false, "train through GLP4NN instead of the serial baseline")
		compute = flag.Bool("compute", true, "run real math (disable for timing-only runs)")
		seed    = flag.Int64("seed", 1, "seed")
		every   = flag.Int("log-every", 5, "print loss every N iterations")
		trace   = flag.String("trace", "", "write a Chrome trace (chrome://tracing) of the final iteration to this file")
	)
	flag.Parse()

	if err := run(*netName, *batch, *iters, *device, *useGLP, *compute, *seed, *every, *trace); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(netName string, batch, iters int, device string, useGLP, compute bool, seed int64, every int, tracePath string) error {
	spec, ok := simgpu.DeviceByName(device)
	if !ok {
		return fmt.Errorf("unknown device %q (have %v)", device, simgpu.CatalogNames())
	}
	w, err := models.Get(netName)
	if err != nil {
		return err
	}
	if batch <= 0 {
		batch = w.DefaultBatch
	}

	dev := simgpu.NewDevice(spec, simgpu.WithTraceLimit(1))
	var launcher dnn.Launcher = dnn.SerialLauncher{Dev: dev}
	var fw *core.Framework
	if useGLP {
		fw = core.New()
		defer fw.Close()
		launcher = fw.Runtime(dev)
	}

	ctx := dnn.NewContext(launcher, seed)
	ctx.Compute = compute
	fmt.Printf("building %s (batch %d) for %s, glp4nn=%v compute=%v\n", netName, batch, spec.Name, useGLP, compute)
	net, err := w.Build(ctx, batch, seed)
	if err != nil {
		return err
	}
	fmt.Print(net.Summary())

	feed := w.NewFeeder(batch, seed+1)
	solver := dnn.NewSolver(net, ctx, dnn.CIFAR10QuickSolver())

	wallStart := time.Now()
	var virtualTotal time.Duration
	for i := 0; i < iters; i++ {
		if compute {
			if err := feed(net); err != nil {
				return err
			}
		}
		if err := dev.ResetClocks(); err != nil {
			return err
		}
		// Model the input batch's host→device copy, like Caffe's data layer.
		if err := net.UploadInputs(ctx); err != nil {
			return err
		}
		loss, err := solver.Step()
		if err != nil {
			return err
		}
		devT, err := dev.Synchronize()
		if err != nil {
			return err
		}
		iterT := devT
		if h := dev.HostTime(); h > iterT {
			iterT = h
		}
		virtualTotal += iterT
		if every > 0 && ((i+1)%every == 0 || i == 0) {
			if compute {
				fmt.Printf("iter %4d  loss %.4f  sim-time %v\n", i+1, loss, iterT.Round(time.Microsecond))
			} else {
				fmt.Printf("iter %4d  sim-time %v\n", i+1, iterT.Round(time.Microsecond))
			}
		}
	}
	fmt.Printf("done: %d iterations, mean simulated iteration %v, wall clock %v\n",
		iters, (virtualTotal / time.Duration(iters)).Round(time.Microsecond), time.Since(wallStart).Round(time.Millisecond))

	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := dev.ExportChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("chrome trace of the final iteration written to %s\n", tracePath)
	}

	if fw != nil {
		rt := fw.Runtime(dev)
		fmt.Printf("glp4nn overhead: %s\n", rt.Ledger().Snapshot())
		fmt.Println("concurrency plans:")
		for _, p := range rt.Plans() {
			fmt.Printf("  %-22s %d streams\n", p.Key, p.Streams)
		}
	}
	return nil
}
