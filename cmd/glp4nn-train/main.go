// Command glp4nn-train trains one of the paper's workloads on a simulated
// GPU, with or without GLP4NN, and reports per-iteration loss, virtual
// timing and the framework's overhead ledger.
//
// Examples:
//
//	glp4nn-train -net CIFAR10 -iters 50 -device P100 -glp4nn
//	glp4nn-train -net GoogLeNet -iters 10 -device P100 -glp4nn -dag
//	glp4nn-train -net Siamese -iters 20 -device K40C
//	glp4nn-train -net CaffeNet -batch 16 -iters 3 -device TitanXP -glp4nn -compute=false
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/models"
	"repro/internal/simgpu"
)

func main() {
	var (
		netName = flag.String("net", "CIFAR10", "workload: CIFAR10, Siamese, CaffeNet or GoogLeNet")
		batch   = flag.Int("batch", 0, "batch size (0 = paper default)")
		iters   = flag.Int("iters", 20, "training iterations")
		device  = flag.String("device", "P100", "simulated GPU: K40C, P100 or TitanXP")
		useGLP  = flag.Bool("glp4nn", false, "train through GLP4NN instead of the serial baseline")
		useDAG  = flag.Bool("dag", false, "execute independent layers concurrently (operator DAG scheduler; bits unchanged)")
		useFuse = flag.Bool("fuse", false, "fuse bias/ReLU epilogues into the GEMM kernels (bits unchanged)")
		prefFlg = flag.Bool("prefetch", false, "synthesize input batches asynchronously: double-buffered prefetch with copy-stream H2D staging (bits unchanged)")
		compute = flag.Bool("compute", true, "run real math (disable for timing-only runs)")
		seed    = flag.Int64("seed", 1, "seed")
		every   = flag.Int("log-every", 5, "print loss every N iterations")
		trace   = flag.String("trace", "", "write a Chrome trace (chrome://tracing) of the final iteration to this file")
		saveW   = flag.String("save-weights", "", "write the trained weights snapshot to this file (servable via glp4nn-serve -weights)")

		faultSeed   = flag.Int64("fault-seed", 0, "fault schedule seed (0 = reuse -seed)")
		faultLaunch = flag.Float64("fault-launch", 0, "kernel-launch fault probability [0,1]")
		faultSync   = flag.Float64("fault-sync", 0, "synchronize fault probability [0,1]")
		faultMemcpy = flag.Float64("fault-memcpy", 0, "memcpy fault probability [0,1]")
		faultCreate = flag.Float64("fault-create", 0, "stream-creation fault probability [0,1]")
		faultHang   = flag.Float64("fault-hang", 0, "kernel hang probability [0,1] (trips the sync watchdog)")
		maxFaults   = flag.Int64("max-faults", 64, "total injected-fault budget (0 = unbounded)")
	)
	flag.Parse()

	fp := simgpu.FaultPlan{
		Seed:         *faultSeed,
		Launch:       *faultLaunch,
		Sync:         *faultSync,
		Memcpy:       *faultMemcpy,
		CreateStream: *faultCreate,
		Hang:         *faultHang,
		MaxFaults:    *maxFaults,
	}
	if fp.Seed == 0 {
		fp.Seed = *seed
	}

	if _, err := run(os.Stdout, *netName, *batch, *iters, *device, *useGLP, *useDAG, *useFuse, *prefFlg, *compute, *seed, *every, *trace, *saveW, fp); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run trains the workload and returns the final iteration's loss (0 for
// timing-only runs), so tests can assert the -dag, -fuse and -prefetch
// schedules change no bits.
func run(out io.Writer, netName string, batch, iters int, device string, useGLP, useDAG, useFuse, prefetch, compute bool, seed int64, every int, tracePath, saveWeights string, fp simgpu.FaultPlan) (float64, error) {
	spec, ok := simgpu.DeviceByName(device)
	if !ok {
		return 0, fmt.Errorf("unknown device %q (have %v)", device, simgpu.CatalogNames())
	}
	w, err := models.Get(netName)
	if err != nil {
		return 0, err
	}

	if batch <= 0 {
		batch = w.DefaultBatch
	}

	opts := []simgpu.Option{simgpu.WithTraceLimit(1)}
	var injector *simgpu.PlanInjector
	if fp.CreateStream > 0 || fp.Launch > 0 || fp.Memcpy > 0 || fp.Sync > 0 || fp.Hang > 0 {
		injector = fp.Injector()
		opts = append(opts, simgpu.WithInjector(injector))
		fmt.Fprintf(out, "fault injection armed (seed %d, budget %d); pair with -glp4nn for self-healing\n",
			fp.Seed, fp.MaxFaults)
	}
	dev, err := simgpu.NewDeviceChecked(spec, opts...)
	if err != nil {
		return 0, err
	}
	var launcher dnn.Launcher = dnn.SerialLauncher{Dev: dev}
	var fw *core.Framework
	if useGLP {
		fw = core.New()
		defer fw.Close()
		launcher = fw.Runtime(dev)
	}

	ctx := dnn.NewContext(launcher, seed)
	ctx.Compute = compute
	fmt.Fprintf(out, "building %s (batch %d) for %s, glp4nn=%v dag=%v fuse=%v prefetch=%v compute=%v\n", netName, batch, spec.Name, useGLP, useDAG, useFuse, prefetch, compute)
	net, err := w.Build(ctx, batch, seed)
	if err != nil {
		return 0, err
	}
	net.EnableDAG(useDAG)
	if useFuse {
		fmt.Fprintf(out, "fused GEMM epilogues: %d sites\n", net.EnableFusion(true))
	}
	fmt.Fprint(out, net.Summary())

	// Same (batch, seed) → same batch stream, pipelined or not: that is
	// the prefetcher's numeric contract, asserted by the CLI tests.
	feed := w.NewFeeder(batch, seed+1)
	var pipe *models.InputPipe
	if prefetch {
		cfg := models.PipeConfig{}
		if fw != nil {
			cfg.Observer = fw.Runtime(dev).Ledger()
		}
		pipe, err = models.NewInputPipe(netName, batch, seed+1, cfg)
		if err != nil {
			return 0, err
		}
		defer pipe.Close()
		feed = pipe.Feed
	}
	solver := dnn.NewSolver(net, ctx, dnn.CIFAR10QuickSolver())

	wallStart := time.Now()
	var virtualTotal time.Duration
	var finalLoss float64
	for i := 0; i < iters; i++ {
		if compute {
			if err := feed(net); err != nil {
				return 0, err
			}
		}
		if err := dev.ResetClocks(); err != nil {
			return 0, err
		}
		// Model the input batch's host→device copy, like Caffe's data
		// layer — on the runtime's dedicated copy stream with -prefetch,
		// so the transfer overlaps compute instead of preceding it.
		if prefetch {
			if err := net.StageInputs(ctx); err != nil {
				return 0, err
			}
		} else if err := net.UploadInputs(ctx); err != nil {
			return 0, err
		}
		loss, err := solver.Step()
		if err != nil {
			return 0, err
		}
		finalLoss = loss
		devT, err := syncRetry(dev, injector != nil)
		if err != nil {
			return 0, err
		}
		iterT := devT
		if h := dev.HostTime(); h > iterT {
			iterT = h
		}
		virtualTotal += iterT
		if every > 0 && ((i+1)%every == 0 || i == 0) {
			if compute {
				fmt.Fprintf(out, "iter %4d  loss %.4f  sim-time %v\n", i+1, loss, iterT.Round(time.Microsecond))
			} else {
				fmt.Fprintf(out, "iter %4d  sim-time %v\n", i+1, iterT.Round(time.Microsecond))
			}
		}
	}
	fmt.Fprintf(out, "done: %d iterations, mean simulated iteration %v, wall clock %v\n",
		iters, (virtualTotal / time.Duration(iters)).Round(time.Microsecond), time.Since(wallStart).Round(time.Millisecond))

	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return 0, err
		}
		if err := dev.ExportChromeTrace(f); err != nil {
			f.Close()
			return 0, err
		}
		if err := f.Close(); err != nil {
			return 0, err
		}
		fmt.Fprintf(out, "chrome trace of the final iteration written to %s\n", tracePath)
	}

	if saveWeights != "" {
		if err := net.SaveWeightsFile(saveWeights); err != nil {
			return 0, err
		}
		fmt.Fprintf(out, "trained weights written to %s\n", saveWeights)
	}

	if pipe != nil {
		fmt.Fprintf(out, "input pipeline: %s\n", pipe.Stats())
	}
	if injector != nil {
		fmt.Fprintf(out, "injected faults: %s\n", injector.Stats())
	}
	if fw != nil {
		rt := fw.Runtime(dev)
		snap := rt.Ledger().Snapshot()
		fmt.Fprintf(out, "glp4nn overhead: %s\n", snap)
		if pipe != nil {
			fmt.Fprintf(out, "glp4nn input pipeline: %s\n", snap.InputPipe())
		}
		if snap.Recoveries() > 0 {
			fmt.Fprintf(out, "glp4nn recovery: %s\n", snap.Health())
		}
		if useDAG {
			fmt.Fprintf(out, "operator DAG dispatches: %d of %d\n", snap.DAGDispatches, snap.Dispatches)
		}
		fmt.Fprintln(out, "concurrency plans:")
		for _, p := range rt.Plans() {
			fmt.Fprintf(out, "  %-22s %d streams\n", p.Key, p.Streams)
		}
	}
	return finalLoss, nil
}

// syncRetry synchronizes the device; with fault injection armed, transient
// faults on the training loop's own barrier are retried (the launcher-level
// barriers self-heal inside the runtime, but this call sits above it — the
// same integration-layer duty the data-parallel trainer discharges with
// checkpoint rollback).
func syncRetry(dev *simgpu.Device, faulty bool) (time.Duration, error) {
	d, err := dev.Synchronize()
	if !faulty {
		return d, err
	}
	for attempt := 0; err != nil && core.IsTransient(err) && attempt < 8; attempt++ {
		d, err = dev.Synchronize()
	}
	return d, err
}
