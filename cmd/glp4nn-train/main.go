// Command glp4nn-train trains one of the paper's workloads on a simulated
// GPU, with or without GLP4NN, and reports per-iteration loss, virtual
// timing and the framework's overhead ledger.
//
// Examples:
//
//	glp4nn-train -net CIFAR10 -iters 50 -device P100 -glp4nn
//	glp4nn-train -net GoogLeNet -iters 10 -device P100 -glp4nn -dag
//	glp4nn-train -net Siamese -iters 20 -device K40C
//	glp4nn-train -net CaffeNet -batch 16 -iters 3 -device TitanXP -glp4nn -compute=false
//	glp4nn-train -net CIFAR10 -iters 40 -devices 2 -glp4nn -checkpoint-dir ckpt -checkpoint-every 10
//	glp4nn-train -net CIFAR10 -iters 40 -devices 2 -glp4nn -checkpoint-dir ckpt -resume
//	glp4nn-train -net CIFAR10 -iters 40 -devices 2 -glp4nn -fault-devloss-after 500
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/hostpool"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/simgpu"
)

// checkpointFile is the rolling durable checkpoint name inside
// -checkpoint-dir. Writes are atomic (temp + fsync + rename), so the file
// always holds the last complete checkpoint even across a crash mid-write.
const checkpointFile = "checkpoint.glpc"

// runOptions carries one training run's full configuration.
type runOptions struct {
	Net         string
	Batch       int
	Iters       int
	Device      string
	GLP         bool
	DAG         bool
	Fuse        bool
	Prefetch    bool
	Compute     bool
	Seed        int64
	LogEvery    int
	Trace       string
	SaveWeights string
	Fault       simgpu.FaultPlan

	// Data-parallel elastic training (devices ≥ 2 or any checkpoint flag
	// selects the trainer path).
	Devices         int
	CheckpointDir   string
	CheckpointEvery int
	Resume          bool
	Bus             string
	BucketKB        int
	BlockingComm    bool
	Adapt           bool
	DriftBand       float64
}

func main() {
	var o runOptions
	flag.StringVar(&o.Net, "net", "CIFAR10", "workload: CIFAR10, Siamese, CaffeNet or GoogLeNet")
	flag.IntVar(&o.Batch, "batch", 0, "batch size (0 = paper default)")
	flag.IntVar(&o.Iters, "iters", 20, "training iterations")
	flag.StringVar(&o.Device, "device", "P100", "simulated GPU: K40C, P100 or TitanXP")
	flag.BoolVar(&o.GLP, "glp4nn", false, "train through GLP4NN instead of the serial baseline")
	flag.BoolVar(&o.DAG, "dag", false, "execute independent layers concurrently (operator DAG scheduler; bits unchanged)")
	flag.BoolVar(&o.Fuse, "fuse", false, "fuse bias/ReLU epilogues into the GEMM kernels (bits unchanged)")
	flag.BoolVar(&o.Prefetch, "prefetch", false, "synthesize input batches asynchronously: double-buffered prefetch with copy-stream H2D staging (bits unchanged)")
	flag.BoolVar(&o.Compute, "compute", true, "run real math (disable for timing-only runs)")
	flag.Int64Var(&o.Seed, "seed", 1, "seed")
	flag.IntVar(&o.LogEvery, "log-every", 5, "print loss every N iterations")
	flag.StringVar(&o.Trace, "trace", "", "write a Chrome trace (chrome://tracing) of the final iteration to this file")
	flag.StringVar(&o.SaveWeights, "save-weights", "", "write the trained weights snapshot to this file (servable via glp4nn-serve -weights)")

	flag.IntVar(&o.Devices, "devices", 1, "data-parallel replica count (≥2 trains through the elastic trainer)")
	flag.StringVar(&o.CheckpointDir, "checkpoint-dir", "", "write a rolling durable checkpoint ("+checkpointFile+") into this directory")
	flag.IntVar(&o.CheckpointEvery, "checkpoint-every", 0, "checkpoint every N iterations (0 = only at the end)")
	flag.BoolVar(&o.Resume, "resume", false, "resume from -checkpoint-dir's checkpoint (bitwise identical to the uninterrupted run)")
	flag.StringVar(&o.Bus, "bus", "pcie3", "inter-GPU interconnect model for the gradient all-reduce: pcie3 or nvlink1")
	flag.IntVar(&o.BucketKB, "bucket-kb", 0, "gradient bucket size in KiB for the overlapped all-reduce (0 = default 256; bits unchanged)")
	flag.BoolVar(&o.BlockingComm, "blocking-allreduce", false, "use the legacy blocking all-reduce instead of the bucketed overlapped one (bits unchanged)")
	flag.BoolVar(&o.Adapt, "adapt", false, "with -glp4nn: adaptive concurrency control — re-profile layers whose timing drifts and swap re-solved plans in at checkpointed step boundaries")
	flag.Float64Var(&o.DriftBand, "drift-band", core.DefaultDriftBand, "adaptive drift tolerance: a layer drifts when its observed timing leaves [solved/(1+band), solved*(1+band)]")

	var (
		faultSeed   = flag.Int64("fault-seed", 0, "fault schedule seed (0 = reuse -seed)")
		faultLaunch = flag.Float64("fault-launch", 0, "kernel-launch fault probability [0,1]")
		faultSync   = flag.Float64("fault-sync", 0, "synchronize fault probability [0,1]")
		faultMemcpy = flag.Float64("fault-memcpy", 0, "memcpy fault probability [0,1]")
		faultCreate = flag.Float64("fault-create", 0, "stream-creation fault probability [0,1]")
		faultHang   = flag.Float64("fault-hang", 0, "kernel hang probability [0,1] (trips the sync watchdog)")
		faultLoss   = flag.Float64("fault-devloss", 0, "permanent device-loss probability [0,1] per failable op (replicas 1+ in trainer mode)")
		faultLossAt = flag.Int64("fault-devloss-after", 0, "lose the device permanently after N failable ops (replicas 1+ in trainer mode)")
		faultPermAt = flag.Int64("fault-permanent-after", 0, "a fault site turns permanent after N faults (0 = always transient)")
		maxFaults   = flag.Int64("max-faults", 64, "total injected-fault budget (0 = unbounded)")
	)
	flag.Parse()

	o.Fault = simgpu.FaultPlan{
		Seed:            *faultSeed,
		Launch:          *faultLaunch,
		Sync:            *faultSync,
		Memcpy:          *faultMemcpy,
		CreateStream:    *faultCreate,
		Hang:            *faultHang,
		DeviceLoss:      *faultLoss,
		DeviceLossAfter: *faultLossAt,
		PermanentAfter:  *faultPermAt,
		MaxFaults:       *maxFaults,
	}
	if o.Fault.Seed == 0 {
		o.Fault.Seed = o.Seed
	}

	if _, err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// faultsArmed reports whether the plan injects anything.
func faultsArmed(fp simgpu.FaultPlan) bool {
	return fp.CreateStream > 0 || fp.Launch > 0 || fp.Memcpy > 0 || fp.Sync > 0 ||
		fp.Hang > 0 || fp.DeviceLoss > 0 || fp.DeviceLossAfter > 0
}

// run trains the workload and returns the final iteration's loss (0 for
// timing-only runs), so tests can assert the -dag, -fuse, -prefetch and
// checkpoint-resume paths change no bits.
func run(out io.Writer, o runOptions) (float64, error) {
	spec, ok := simgpu.DeviceByName(o.Device)
	if !ok {
		return 0, fmt.Errorf("unknown device %q (have %v)", o.Device, simgpu.CatalogNames())
	}
	w, err := models.Get(o.Net)
	if err != nil {
		return 0, err
	}
	if o.Batch <= 0 {
		o.Batch = w.DefaultBatch
	}
	if o.Devices > 1 || o.CheckpointDir != "" || o.Resume || o.Adapt {
		return runTrainer(out, o, spec, w)
	}

	opts := []simgpu.Option{simgpu.WithTraceLimit(1)}
	var injector *simgpu.PlanInjector
	if faultsArmed(o.Fault) {
		injector = o.Fault.Injector()
		opts = append(opts, simgpu.WithInjector(injector))
		fmt.Fprintf(out, "fault injection armed (seed %d, budget %d); pair with -glp4nn for self-healing\n",
			o.Fault.Seed, o.Fault.MaxFaults)
	}
	dev, err := simgpu.NewDeviceChecked(spec, opts...)
	if err != nil {
		return 0, err
	}
	var launcher dnn.Launcher = dnn.SerialLauncher{Dev: dev}
	var fw *core.Framework
	if o.GLP {
		fw = core.New()
		defer fw.Close()
		launcher = fw.Runtime(dev)
	}

	ctx := dnn.NewContext(launcher, o.Seed)
	ctx.Compute = o.Compute
	fmt.Fprintf(out, "building %s (batch %d) for %s, glp4nn=%v dag=%v fuse=%v prefetch=%v compute=%v\n",
		o.Net, o.Batch, spec.Name, o.GLP, o.DAG, o.Fuse, o.Prefetch, o.Compute)
	net, err := w.Build(ctx, o.Batch, o.Seed)
	if err != nil {
		return 0, err
	}
	net.EnableDAG(o.DAG)
	if o.Fuse {
		fmt.Fprintf(out, "fused GEMM epilogues: %d sites\n", net.EnableFusion(true))
	}
	fmt.Fprint(out, net.Summary())

	// Same (batch, seed) → same batch stream, pipelined or not: that is
	// the prefetcher's numeric contract, asserted by the CLI tests.
	feed := w.NewFeeder(o.Batch, o.Seed+1)
	var pipe *models.InputPipe
	if o.Prefetch {
		cfg := models.PipeConfig{}
		if fw != nil {
			cfg.Observer = fw.Runtime(dev).Ledger()
		}
		pipe, err = models.NewInputPipe(o.Net, o.Batch, o.Seed+1, cfg)
		if err != nil {
			return 0, err
		}
		defer pipe.Close()
		feed = pipe.Feed
	}
	solver := dnn.NewSolver(net, ctx, dnn.CIFAR10QuickSolver())

	wallStart := time.Now()
	var virtualTotal time.Duration
	var finalLoss float64
	for i := 0; i < o.Iters; i++ {
		if o.Compute {
			if err := feed(net); err != nil {
				return 0, err
			}
		}
		if err := dev.ResetClocks(); err != nil {
			return 0, err
		}
		// Model the input batch's host→device copy, like Caffe's data
		// layer — on the runtime's dedicated copy stream with -prefetch,
		// so the transfer overlaps compute instead of preceding it.
		if o.Prefetch {
			if err := net.StageInputs(ctx); err != nil {
				return 0, err
			}
		} else if err := net.UploadInputs(ctx); err != nil {
			return 0, err
		}
		loss, err := solver.Step()
		if err != nil {
			return 0, err
		}
		finalLoss = loss
		devT, err := syncRetry(dev, injector != nil)
		if err != nil {
			return 0, err
		}
		iterT := devT
		if h := dev.HostTime(); h > iterT {
			iterT = h
		}
		virtualTotal += iterT
		if o.LogEvery > 0 && ((i+1)%o.LogEvery == 0 || i == 0) {
			if o.Compute {
				fmt.Fprintf(out, "iter %4d  loss %.4f  sim-time %v\n", i+1, loss, iterT.Round(time.Microsecond))
			} else {
				fmt.Fprintf(out, "iter %4d  sim-time %v\n", i+1, iterT.Round(time.Microsecond))
			}
		}
	}
	fmt.Fprintf(out, "done: %d iterations, mean simulated iteration %v, wall clock %v\n",
		o.Iters, (virtualTotal / time.Duration(o.Iters)).Round(time.Microsecond), time.Since(wallStart).Round(time.Millisecond))

	if o.Trace != "" {
		f, err := os.Create(o.Trace)
		if err != nil {
			return 0, err
		}
		if err := dev.ExportChromeTrace(f); err != nil {
			f.Close()
			return 0, err
		}
		if err := f.Close(); err != nil {
			return 0, err
		}
		fmt.Fprintf(out, "chrome trace of the final iteration written to %s\n", o.Trace)
	}

	if o.SaveWeights != "" {
		if err := net.SaveWeightsFile(o.SaveWeights); err != nil {
			return 0, err
		}
		fmt.Fprintf(out, "trained weights written to %s\n", o.SaveWeights)
	}

	if pipe != nil {
		fmt.Fprintf(out, "input pipeline: %s\n", pipe.Stats())
	}
	if injector != nil {
		fmt.Fprintf(out, "injected faults: %s\n", injector.Stats())
	}
	if fw != nil {
		rt := fw.Runtime(dev)
		snap := rt.Ledger().Snapshot()
		fmt.Fprintf(out, "glp4nn overhead: %s\n", snap)
		if pipe != nil {
			fmt.Fprintf(out, "glp4nn input pipeline: %s\n", snap.InputPipe())
		}
		if snap.Recoveries() > 0 {
			fmt.Fprintf(out, "glp4nn recovery: %s\n", snap.Health())
		}
		if o.DAG {
			fmt.Fprintf(out, "operator DAG dispatches: %d of %d\n", snap.DAGDispatches, snap.Dispatches)
		}
		fmt.Fprintln(out, "concurrency plans:")
		for _, p := range rt.Plans() {
			fmt.Fprintf(out, "  %-22s %d streams\n", p.Key, p.Streams)
		}
	}
	return finalLoss, nil
}

// runTrainer is the data-parallel elastic path: N replicas train in
// lockstep through parallel.Trainer, with durable checkpoints, crash
// resume, and device-loss eviction. Fault injection (including permanent
// device loss) is armed on replicas 1+ only, so the lead replica always
// survives and the run can finish.
func runTrainer(out io.Writer, o runOptions, spec simgpu.DeviceSpec, w *models.Workload) (float64, error) {
	if o.Prefetch {
		return 0, fmt.Errorf("-prefetch is not supported with the data-parallel trainer")
	}
	if o.Trace != "" {
		return 0, fmt.Errorf("-trace is not supported with the data-parallel trainer")
	}
	if o.Devices < 1 {
		o.Devices = 1
	}
	if o.Resume && o.CheckpointDir == "" {
		return 0, fmt.Errorf("-resume needs -checkpoint-dir")
	}
	if o.Adapt && !o.GLP {
		return 0, fmt.Errorf("-adapt needs -glp4nn (there are no plans to adapt without it)")
	}

	devs := make([]*simgpu.Device, o.Devices)
	injectors := make([]*simgpu.PlanInjector, o.Devices)
	for i := range devs {
		var opts []simgpu.Option
		if i > 0 && faultsArmed(o.Fault) {
			injectors[i] = o.Fault.Injector()
			opts = append(opts, simgpu.WithInjector(injectors[i]))
		}
		dev, err := simgpu.NewDeviceChecked(spec, opts...)
		if err != nil {
			return 0, err
		}
		devs[i] = dev
	}
	if faultsArmed(o.Fault) && o.Devices > 1 {
		fmt.Fprintf(out, "fault injection armed on replicas 1..%d (seed %d, budget %d)\n",
			o.Devices-1, o.Fault.Seed, o.Fault.MaxFaults)
	}

	busName := o.Bus
	if busName == "" {
		busName = "pcie3" // options built in code (tests) skip flag defaults
	}
	bus, ok := parallel.BusByName(busName)
	if !ok {
		return 0, fmt.Errorf("unknown bus %q (have %v)", o.Bus, parallel.BusNames())
	}
	tr, err := parallel.NewTrainer(simgpu.NewMachineFromDevices(devs...), func(ctx *dnn.Context) (*dnn.Net, error) {
		return w.Build(ctx, o.Batch, o.Seed)
	}, parallel.Config{
		Solver:            dnn.CIFAR10QuickSolver(),
		Bus:               bus,
		UseGLP:            o.GLP,
		Compute:           o.Compute,
		Seed:              o.Seed,
		HostPool:          hostpool.New(4),
		StepRetries:       8,
		DAG:               o.DAG,
		Elastic:           true,
		BucketBytes:       int64(o.BucketKB) << 10,
		BlockingAllReduce: o.BlockingComm,
		Adaptive:          o.Adapt,
		DriftBand:         o.DriftBand,
	})
	if err != nil {
		return 0, err
	}
	defer tr.Close()
	if o.Fuse {
		sites := 0
		for i := 0; i < tr.Replicas(); i++ {
			sites = tr.Net(i).EnableFusion(true)
		}
		fmt.Fprintf(out, "fused GEMM epilogues: %d sites per replica\n", sites)
	}
	fmt.Fprintf(out, "training %s (batch %d ×%d replicas) on %s over %s, glp4nn=%v dag=%v fuse=%v compute=%v elastic\n",
		o.Net, o.Batch, o.Devices, spec.Name, bus.Name, o.GLP, o.DAG, o.Fuse, o.Compute)

	// Per-shard feeders: shard s always draws from stream seed+1+17s, no
	// matter which replica currently owns it — batch composition is a
	// property of the plan, not of the live device count.
	feeders := make([]func(*dnn.Net) error, o.Devices)
	for s := range feeders {
		feeders[s] = w.NewFeeder(o.Batch, o.Seed+1+int64(s)*17)
	}
	feed := func(s int, net *dnn.Net) error { return feeders[s](net) }

	ckptPath := ""
	if o.CheckpointDir != "" {
		if err := os.MkdirAll(o.CheckpointDir, 0o755); err != nil {
			return 0, err
		}
		ckptPath = filepath.Join(o.CheckpointDir, checkpointFile)
	}
	if o.Resume {
		// Validate before touching any trainer state: a corrupt checkpoint
		// must refuse the resume, not half-restore it.
		if _, err := parallel.PeekCheckpointFile(ckptPath); err != nil {
			return 0, fmt.Errorf("refusing to resume: %w", err)
		}
		info, err := tr.RestoreCheckpointFile(ckptPath)
		if err != nil {
			return 0, fmt.Errorf("refusing to resume: %w", err)
		}
		// Feeders are deterministic: replaying them to the stored position
		// restores the input iterator, so the next batch is exactly the one
		// the interrupted run would have drawn.
		for k := int64(0); k < info.FeedSteps; k++ {
			for s := range feeders {
				if err := feed(s, tr.Net(s)); err != nil {
					return 0, err
				}
			}
		}
		fmt.Fprintf(out, "resumed from %s at iteration %d (replayed %d feed steps)\n",
			ckptPath, info.Iter, info.FeedSteps)
	}

	wallStart := time.Now()
	var finalLoss float64
	seenEvictions := 0
	for i := tr.Iter(); i < o.Iters; i++ {
		res, err := tr.Step(feed)
		for _, ev := range tr.EvictionEvents()[seenEvictions:] {
			fmt.Fprintf(out, "device lost: %s\n", ev)
			seenEvictions++
		}
		if err != nil {
			return 0, err
		}
		finalLoss = res.MeanLoss
		if o.LogEvery > 0 && ((i+1)%o.LogEvery == 0 || i == 0) {
			if o.Compute {
				fmt.Fprintf(out, "iter %4d  loss %.4f  sim-time %v\n", i+1, res.MeanLoss, res.IterTime.Round(time.Microsecond))
			} else {
				fmt.Fprintf(out, "iter %4d  sim-time %v\n", i+1, res.IterTime.Round(time.Microsecond))
			}
		}
		if ckptPath != "" && o.CheckpointEvery > 0 && (i+1)%o.CheckpointEvery == 0 {
			if err := tr.WriteCheckpointFile(ckptPath); err != nil {
				return 0, err
			}
		}
	}
	if ckptPath != "" {
		if err := tr.WriteCheckpointFile(ckptPath); err != nil {
			return 0, err
		}
		fmt.Fprintf(out, "durable checkpoint written to %s (iteration %d)\n", ckptPath, tr.Iter())
	}
	fmt.Fprintf(out, "done: %d iterations on %d replicas (%d surviving), wall clock %v\n",
		tr.Iter(), o.Devices, tr.Survivors(), time.Since(wallStart).Round(time.Millisecond))

	if o.SaveWeights != "" {
		if err := tr.ActiveNet().SaveWeightsFile(o.SaveWeights); err != nil {
			return 0, err
		}
		fmt.Fprintf(out, "trained weights written to %s\n", o.SaveWeights)
	}

	for i, inj := range injectors {
		if inj != nil {
			fmt.Fprintf(out, "replica %d injected faults: %s\n", i, inj.Stats())
		}
	}
	if tr.Evictions() > 0 || tr.Resumes() > 0 || tr.Rollbacks() > 0 {
		fmt.Fprintf(out, "elastic: evictions=%d shard-moves=%d resumes=%d rollbacks=%d shard-owners=%v\n",
			tr.Evictions(), tr.ShardMoves(), tr.Resumes(), tr.Rollbacks(), tr.ShardOwners())
	}
	// End-of-run overlap report: how much of the modeled ring time hid
	// under backward, against the bill the blocking monolith would charge
	// for the same healthy step count.
	if cs := tr.CommStats(); cs.Steps > 0 {
		mode := "overlapped"
		if cs.Blocking {
			mode = "blocking"
		}
		blockingBill := bus.AllReduceTime(o.Devices, tr.GradientBytes()) * time.Duration(cs.Steps)
		fmt.Fprintf(out, "all-reduce (%s, %s, %d KiB buckets): buckets/step=%.1f overlapped=%v exposed=%v; blocking bill %v\n",
			bus.Name, mode, cs.BucketBytes>>10, cs.BucketsPerStep,
			cs.Overlapped.Round(time.Microsecond), cs.Exposed.Round(time.Microsecond),
			blockingBill.Round(time.Microsecond))
	}
	if fw := tr.Framework(); fw != nil {
		lead := tr.ShardOwners()[0]
		snap := fw.Runtime(tr.Devices()[lead]).Ledger().Snapshot()
		fmt.Fprintf(out, "glp4nn overhead: %s\n", snap)
		if snap.Evictions > 0 || snap.Resumes > 0 {
			fmt.Fprintf(out, "glp4nn elastic: %s\n", snap.Elastic())
		}
		if snap.BucketsReduced > 0 || snap.ExposedCommNs > 0 {
			fmt.Fprintf(out, "glp4nn all-reduce: %s\n", snap.Comm())
		}
		if o.Adapt {
			fmt.Fprintf(out, "glp4nn adaptive: %s\n", snap.Adaptive())
			for _, ev := range tr.SwapEvents() {
				kind := "swap"
				if ev.Shadow {
					kind = "shadow"
				}
				fmt.Fprintf(out, "  iter %4d  %-6s %-22s width %d (solved from %v)\n",
					ev.Iter, kind, ev.Key, ev.Streams, ev.SolvedFrom.Round(time.Microsecond))
			}
		}
	}
	return finalLoss, nil
}

// syncRetry synchronizes the device; with fault injection armed, transient
// faults on the training loop's own barrier are retried (the launcher-level
// barriers self-heal inside the runtime, but this call sits above it — the
// same integration-layer duty the data-parallel trainer discharges with
// checkpoint rollback).
func syncRetry(dev *simgpu.Device, faulty bool) (time.Duration, error) {
	d, err := dev.Synchronize()
	if !faulty {
		return d, err
	}
	for attempt := 0; err != nil && core.IsTransient(err) && attempt < 8; attempt++ {
		d, err = dev.Synchronize()
	}
	return d, err
}
