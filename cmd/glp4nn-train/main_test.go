package main

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/simgpu"
)

// TestDAGFlagLossIdentical is the CLI-level convergence-invariance
// regression: training with -dag must print the exact final loss of the
// serial schedule, on GoogLeNet (real inter-layer parallelism) under both
// the serial baseline and the GLP4NN runtime.
func TestDAGFlagLossIdentical(t *testing.T) {
	for _, glp := range []bool{false, true} {
		base := runOptions{Net: "GoogLeNet", Batch: 2, Iters: 3, Device: "P100", GLP: glp, Compute: true, Seed: 1}
		serial, err := run(io.Discard, base)
		if err != nil {
			t.Fatal(err)
		}
		withDAG := base
		withDAG.DAG = true
		dag, err := run(io.Discard, withDAG)
		if err != nil {
			t.Fatal(err)
		}
		if serial <= 0 {
			t.Fatalf("glp4nn=%v: suspicious final loss %v", glp, serial)
		}
		if math.Float64bits(serial) != math.Float64bits(dag) {
			t.Fatalf("glp4nn=%v: -dag changed the final loss: serial %v dag %v", glp, serial, dag)
		}
	}
}

// TestDAGFlagReportsDispatches: with -glp4nn -dag the run reports the
// concurrent-session dispatch count.
func TestDAGFlagReportsDispatches(t *testing.T) {
	var sb strings.Builder
	o := runOptions{Net: "GoogLeNet", Batch: 2, Iters: 3, Device: "P100", GLP: true, DAG: true, Compute: true, Seed: 1}
	if _, err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "operator DAG dispatches:") {
		t.Fatalf("missing DAG dispatch report in output:\n%s", sb.String())
	}
}

// TestFuseFlagLossIdentical is the CLI-level fusion numeric contract:
// -fuse collapses bias/ReLU passes into the GEMM epilogue and the final
// loss must not move by a single bit — alone and stacked with -dag, under
// both the serial baseline and the GLP4NN runtime.
func TestFuseFlagLossIdentical(t *testing.T) {
	for _, glp := range []bool{false, true} {
		base := runOptions{Net: "GoogLeNet", Batch: 2, Iters: 3, Device: "P100", GLP: glp, Compute: true, Seed: 1}
		serial, err := run(io.Discard, base)
		if err != nil {
			t.Fatal(err)
		}
		withFuse := base
		withFuse.Fuse = true
		fused, err := run(io.Discard, withFuse)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(serial) != math.Float64bits(fused) {
			t.Fatalf("glp4nn=%v: -fuse changed the final loss: serial %v fused %v", glp, serial, fused)
		}
		withBoth := withFuse
		withBoth.DAG = true
		both, err := run(io.Discard, withBoth)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(serial) != math.Float64bits(both) {
			t.Fatalf("glp4nn=%v: -dag -fuse changed the final loss: serial %v both %v", glp, serial, both)
		}
	}
}

// TestFuseFlagReportsSites: -fuse prints the fused-site count.
func TestFuseFlagReportsSites(t *testing.T) {
	var sb strings.Builder
	o := runOptions{Net: "CIFAR10", Batch: 4, Iters: 2, Device: "P100", Fuse: true, Compute: true, Seed: 1}
	if _, err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fused GEMM epilogues:") {
		t.Fatalf("missing fusion report in output:\n%s", sb.String())
	}
}

// TestPrefetchFlagLossIdentical is the CLI-level prefetch numeric contract:
// -prefetch replaces the synchronous feeder with the asynchronous pipeline
// and the copy-stream input staging path, and the final loss must not move
// by a single bit — on every workload, under both the serial baseline and
// the GLP4NN runtime.
func TestPrefetchFlagLossIdentical(t *testing.T) {
	for _, net := range []string{"CIFAR10", "Siamese", "CaffeNet", "GoogLeNet"} {
		for _, glp := range []bool{false, true} {
			base := runOptions{Net: net, Batch: 2, Iters: 2, Device: "P100", GLP: glp, Compute: true, Seed: 1}
			serial, err := run(io.Discard, base)
			if err != nil {
				t.Fatal(err)
			}
			withPre := base
			withPre.Prefetch = true
			pre, err := run(io.Discard, withPre)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(serial) != math.Float64bits(pre) {
				t.Fatalf("%s glp4nn=%v: -prefetch changed the final loss: serial %v prefetch %v", net, glp, serial, pre)
			}
		}
	}
}

// TestPrefetchFlagReportsPipeline: with -prefetch the run prints the
// pipeline counters, and with -glp4nn additionally the ledger's view
// (which includes copy-stream overlap time).
func TestPrefetchFlagReportsPipeline(t *testing.T) {
	var sb strings.Builder
	o := runOptions{Net: "CIFAR10", Batch: 4, Iters: 3, Device: "P100", GLP: true, Prefetch: true, Compute: true, Seed: 1}
	if _, err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "input pipeline:") {
		t.Fatalf("missing pipeline report in output:\n%s", out)
	}
	if !strings.Contains(out, "glp4nn input pipeline:") {
		t.Fatalf("missing ledger pipeline report in output:\n%s", out)
	}
	if !strings.Contains(out, "copy-overlap=") {
		t.Fatalf("missing copy-overlap counter in output:\n%s", out)
	}
}

// TestPrefetchFlagUnderFaults: prefetch plus an aggressive memcpy/launch
// fault schedule still converges to the fault-free loss — the copy stream's
// retry/quarantine path and the runtime's self-healing keep bits intact.
func TestPrefetchFlagUnderFaults(t *testing.T) {
	base := runOptions{Net: "CIFAR10", Batch: 4, Iters: 3, Device: "P100", GLP: true, Prefetch: true, Compute: true, Seed: 1}
	clean, err := run(io.Discard, base)
	if err != nil {
		t.Fatal(err)
	}
	faulty := base
	faulty.Fault = simgpu.FaultPlan{Seed: 7, Memcpy: 0.3, Launch: 0.05, MaxFaults: 32}
	got, err := run(io.Discard, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(clean) != math.Float64bits(got) {
		t.Fatalf("faults changed the prefetched loss: clean %v faulty %v", clean, got)
	}
}

// TestTrainerCheckpointResumeLossIdentical is the CLI-level crash-resume
// contract: a run checkpointed mid-way, killed, and -resume'd must print
// the exact final loss of the uninterrupted run — two replicas, GLP4NN on.
func TestTrainerCheckpointResumeLossIdentical(t *testing.T) {
	base := runOptions{Net: "CIFAR10", Batch: 4, Iters: 4, Device: "P100", GLP: true, Devices: 2, Compute: true, Seed: 1}
	full, err := run(io.Discard, base)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	killed := base
	killed.Iters = 2
	killed.CheckpointDir = dir
	if _, err := run(io.Discard, killed); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	resumed := base
	resumed.CheckpointDir = dir
	resumed.Resume = true
	got, err := run(&sb, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "resumed from") {
		t.Fatalf("missing resume report in output:\n%s", sb.String())
	}
	if math.Float64bits(full) != math.Float64bits(got) {
		t.Fatalf("-resume changed the final loss: full %v resumed %v", full, got)
	}
}

// TestResumeRefusesCorruptCheckpoint: a corrupted checkpoint (flipped byte)
// and a non-checkpoint file must both refuse -resume with a clear error.
func TestResumeRefusesCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	base := runOptions{Net: "CIFAR10", Batch: 4, Iters: 2, Device: "P100", GLP: true, Devices: 2,
		Compute: true, Seed: 1, CheckpointDir: dir}
	if _, err := run(io.Discard, base); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, checkpointFile)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)-1] ^= 0x40
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	resume := base
	resume.Iters = 4
	resume.Resume = true
	if _, err := run(io.Discard, resume); err == nil {
		t.Fatal("resume from a corrupted checkpoint succeeded")
	} else if !strings.Contains(err.Error(), "refusing to resume") {
		t.Fatalf("unexpected refusal error: %v", err)
	}

	if err := os.WriteFile(path, []byte("definitely not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run(io.Discard, resume); err == nil {
		t.Fatal("resume from a non-checkpoint file succeeded")
	} else if !strings.Contains(err.Error(), "refusing to resume") {
		t.Fatalf("unexpected refusal error: %v", err)
	}
}

// TestDeviceLossFlagEvicts: -fault-devloss-after on a two-replica run
// evicts the lost replica, reports the eviction, finishes on the survivor,
// and the final loss matches the healthy two-replica run bit-for-bit.
func TestDeviceLossFlagEvicts(t *testing.T) {
	base := runOptions{Net: "CIFAR10", Batch: 4, Iters: 3, Device: "P100", GLP: true, Devices: 2, Compute: true, Seed: 1}
	healthy, err := run(io.Discard, base)
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	lossy := base
	lossy.Fault = simgpu.FaultPlan{Seed: 1, DeviceLossAfter: 40}
	got, err := run(&sb, lossy)
	if err != nil {
		t.Fatalf("device loss not survived: %v\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "device lost:") {
		t.Fatalf("missing eviction report in output:\n%s", out)
	}
	if !strings.Contains(out, "evictions=1") {
		t.Fatalf("missing eviction counter in output:\n%s", out)
	}
	if math.Float64bits(healthy) != math.Float64bits(got) {
		t.Fatalf("device loss changed the final loss: healthy %v degraded %v", healthy, got)
	}
}
