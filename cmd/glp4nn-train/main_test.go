package main

import (
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/simgpu"
)

// TestDAGFlagLossIdentical is the CLI-level convergence-invariance
// regression: training with -dag must print the exact final loss of the
// serial schedule, on GoogLeNet (real inter-layer parallelism) under both
// the serial baseline and the GLP4NN runtime.
func TestDAGFlagLossIdentical(t *testing.T) {
	for _, glp := range []bool{false, true} {
		serial, err := run(io.Discard, "GoogLeNet", 2, 3, "P100", glp, false, false, false, true, 1, 0, "", "", simgpu.FaultPlan{})
		if err != nil {
			t.Fatal(err)
		}
		dag, err := run(io.Discard, "GoogLeNet", 2, 3, "P100", glp, true, false, false, true, 1, 0, "", "", simgpu.FaultPlan{})
		if err != nil {
			t.Fatal(err)
		}
		if serial <= 0 {
			t.Fatalf("glp4nn=%v: suspicious final loss %v", glp, serial)
		}
		if math.Float64bits(serial) != math.Float64bits(dag) {
			t.Fatalf("glp4nn=%v: -dag changed the final loss: serial %v dag %v", glp, serial, dag)
		}
	}
}

// TestDAGFlagReportsDispatches: with -glp4nn -dag the run reports the
// concurrent-session dispatch count.
func TestDAGFlagReportsDispatches(t *testing.T) {
	var sb strings.Builder
	if _, err := run(&sb, "GoogLeNet", 2, 3, "P100", true, true, false, false, true, 1, 0, "", "", simgpu.FaultPlan{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "operator DAG dispatches:") {
		t.Fatalf("missing DAG dispatch report in output:\n%s", sb.String())
	}
}

// TestFuseFlagLossIdentical is the CLI-level fusion numeric contract:
// -fuse collapses bias/ReLU passes into the GEMM epilogue and the final
// loss must not move by a single bit — alone and stacked with -dag, under
// both the serial baseline and the GLP4NN runtime.
func TestFuseFlagLossIdentical(t *testing.T) {
	for _, glp := range []bool{false, true} {
		serial, err := run(io.Discard, "GoogLeNet", 2, 3, "P100", glp, false, false, false, true, 1, 0, "", "", simgpu.FaultPlan{})
		if err != nil {
			t.Fatal(err)
		}
		fused, err := run(io.Discard, "GoogLeNet", 2, 3, "P100", glp, false, true, false, true, 1, 0, "", "", simgpu.FaultPlan{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(serial) != math.Float64bits(fused) {
			t.Fatalf("glp4nn=%v: -fuse changed the final loss: serial %v fused %v", glp, serial, fused)
		}
		both, err := run(io.Discard, "GoogLeNet", 2, 3, "P100", glp, true, true, false, true, 1, 0, "", "", simgpu.FaultPlan{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(serial) != math.Float64bits(both) {
			t.Fatalf("glp4nn=%v: -dag -fuse changed the final loss: serial %v both %v", glp, serial, both)
		}
	}
}

// TestFuseFlagReportsSites: -fuse prints the fused-site count.
func TestFuseFlagReportsSites(t *testing.T) {
	var sb strings.Builder
	if _, err := run(&sb, "CIFAR10", 4, 2, "P100", false, false, true, false, true, 1, 0, "", "", simgpu.FaultPlan{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fused GEMM epilogues:") {
		t.Fatalf("missing fusion report in output:\n%s", sb.String())
	}
}

// TestPrefetchFlagLossIdentical is the CLI-level prefetch numeric contract:
// -prefetch replaces the synchronous feeder with the asynchronous pipeline
// and the copy-stream input staging path, and the final loss must not move
// by a single bit — on every workload, under both the serial baseline and
// the GLP4NN runtime.
func TestPrefetchFlagLossIdentical(t *testing.T) {
	for _, net := range []string{"CIFAR10", "Siamese", "CaffeNet", "GoogLeNet"} {
		for _, glp := range []bool{false, true} {
			serial, err := run(io.Discard, net, 2, 2, "P100", glp, false, false, false, true, 1, 0, "", "", simgpu.FaultPlan{})
			if err != nil {
				t.Fatal(err)
			}
			pre, err := run(io.Discard, net, 2, 2, "P100", glp, false, false, true, true, 1, 0, "", "", simgpu.FaultPlan{})
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(serial) != math.Float64bits(pre) {
				t.Fatalf("%s glp4nn=%v: -prefetch changed the final loss: serial %v prefetch %v", net, glp, serial, pre)
			}
		}
	}
}

// TestPrefetchFlagReportsPipeline: with -prefetch the run prints the
// pipeline counters, and with -glp4nn additionally the ledger's view
// (which includes copy-stream overlap time).
func TestPrefetchFlagReportsPipeline(t *testing.T) {
	var sb strings.Builder
	if _, err := run(&sb, "CIFAR10", 4, 3, "P100", true, false, false, true, true, 1, 0, "", "", simgpu.FaultPlan{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "input pipeline:") {
		t.Fatalf("missing pipeline report in output:\n%s", out)
	}
	if !strings.Contains(out, "glp4nn input pipeline:") {
		t.Fatalf("missing ledger pipeline report in output:\n%s", out)
	}
	if !strings.Contains(out, "copy-overlap=") {
		t.Fatalf("missing copy-overlap counter in output:\n%s", out)
	}
}

// TestPrefetchFlagUnderFaults: prefetch plus an aggressive memcpy/launch
// fault schedule still converges to the fault-free loss — the copy stream's
// retry/quarantine path and the runtime's self-healing keep bits intact.
func TestPrefetchFlagUnderFaults(t *testing.T) {
	clean, err := run(io.Discard, "CIFAR10", 4, 3, "P100", true, false, false, true, true, 1, 0, "", "", simgpu.FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	fp := simgpu.FaultPlan{Seed: 7, Memcpy: 0.3, Launch: 0.05, MaxFaults: 32}
	faulty, err := run(io.Discard, "CIFAR10", 4, 3, "P100", true, false, false, true, true, 1, 0, "", "", fp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(clean) != math.Float64bits(faulty) {
		t.Fatalf("faults changed the prefetched loss: clean %v faulty %v", clean, faulty)
	}
}
