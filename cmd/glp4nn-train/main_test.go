package main

import (
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/simgpu"
)

// TestDAGFlagLossIdentical is the CLI-level convergence-invariance
// regression: training with -dag must print the exact final loss of the
// serial schedule, on GoogLeNet (real inter-layer parallelism) under both
// the serial baseline and the GLP4NN runtime.
func TestDAGFlagLossIdentical(t *testing.T) {
	for _, glp := range []bool{false, true} {
		serial, err := run(io.Discard, "GoogLeNet", 2, 3, "P100", glp, false, true, 1, 0, "", simgpu.FaultPlan{})
		if err != nil {
			t.Fatal(err)
		}
		dag, err := run(io.Discard, "GoogLeNet", 2, 3, "P100", glp, true, true, 1, 0, "", simgpu.FaultPlan{})
		if err != nil {
			t.Fatal(err)
		}
		if serial <= 0 {
			t.Fatalf("glp4nn=%v: suspicious final loss %v", glp, serial)
		}
		if math.Float64bits(serial) != math.Float64bits(dag) {
			t.Fatalf("glp4nn=%v: -dag changed the final loss: serial %v dag %v", glp, serial, dag)
		}
	}
}

// TestDAGFlagReportsDispatches: with -glp4nn -dag the run reports the
// concurrent-session dispatch count.
func TestDAGFlagReportsDispatches(t *testing.T) {
	var sb strings.Builder
	if _, err := run(&sb, "GoogLeNet", 2, 3, "P100", true, true, true, 1, 0, "", simgpu.FaultPlan{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "operator DAG dispatches:") {
		t.Fatalf("missing DAG dispatch report in output:\n%s", sb.String())
	}
}
