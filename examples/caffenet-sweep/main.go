// CaffeNet sweep: the paper's motivation experiment (Figs. 2 and 4) — sweep
// the number of concurrent CUDA streams for each CaffeNet convolution layer
// on all three simulated GPUs and report the speedup curve and the
// per-device optimum.
//
// Run with:
//
//	go run ./examples/caffenet-sweep            # batch 32 (fast)
//	go run ./examples/caffenet-sweep -batch 256 # the paper's batch
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	glp4nn "repro"
	"repro/internal/dnn"
	"repro/internal/models"
)

func main() {
	batch := flag.Int("batch", 32, "batch size (paper: 256)")
	flag.Parse()

	sizes := []int{1, 2, 4, 8, 16, 32}
	for _, row := range models.Rows("CaffeNet") {
		fmt.Printf("CaffeNet %s (Ci=%d %dx%d, Co=%d, F=%d, S=%d, P=%d), batch %d:\n",
			row.Layer, row.Ci, row.HW, row.HW, row.Co, row.F, row.S, row.P, *batch)

		ctx := glp4nn.NewContext(dnn.HostLauncher{}, 1)
		ctx.Compute = false
		cfg := dnn.ConvConfig{
			NumOutput: row.Co, KernelH: row.F, KernelW: row.F,
			StrideH: row.S, StrideW: row.S, PadH: row.P, PadW: row.P, Bias: true,
		}
		net, err := dnn.NewNet(row.Layer).
			Input("data", *batch, row.Ci, row.HW, row.HW).
			Add(dnn.NewConv(row.Layer, cfg), []string{"data"}, []string{"out"}).
			Build(ctx)
		if err != nil {
			log.Fatal(err)
		}

		for _, specName := range []string{"K40C", "P100", "TitanXP"} {
			spec, _ := glp4nn.DeviceByName(specName)
			var base time.Duration
			best, bestT := 0, time.Duration(0)
			fmt.Printf("  %-8s", specName)
			for _, n := range sizes {
				dev := glp4nn.NewDevice(spec)
				var l glp4nn.Launcher
				if n == 1 {
					l = glp4nn.Serial(dev)
				} else {
					l = glp4nn.FixedPool(dev, n)
				}
				runCtx := glp4nn.NewContext(l, 1)
				runCtx.Compute = false
				// warm once, measure once (the simulator is deterministic)
				if _, err := net.Forward(runCtx); err != nil {
					log.Fatal(err)
				}
				if err := dev.ResetClocks(); err != nil {
					log.Fatal(err)
				}
				if _, err := net.Forward(runCtx); err != nil {
					log.Fatal(err)
				}
				d, err := dev.Synchronize()
				if err != nil {
					log.Fatal(err)
				}
				if h := dev.HostTime(); h > d {
					d = h
				}
				if n == 1 {
					base = d
				}
				if best == 0 || d < bestT {
					best, bestT = n, d
				}
				fmt.Printf("  %2d→%.2fx", n, float64(base)/float64(d))
			}
			fmt.Printf("   best: %d streams (%v)\n", best, bestT.Round(time.Microsecond))
		}
		fmt.Println()
	}
}
