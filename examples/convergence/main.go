// Convergence: the paper's Fig. 11 experiment at example scale — train the
// CIFAR10 net on synthetic CIFAR-10 twice with real math, once through
// naive serial dispatch and once through GLP4NN, and show the loss curves
// coincide (the only divergence is the batch-shuffle order, as the paper
// observes).
//
// Run with:
//
//	go run ./examples/convergence            # 60 iterations (~1 min)
//	go run ./examples/convergence -iters 300 # closer to the paper's run
package main

import (
	"flag"
	"fmt"
	"log"

	glp4nn "repro"
	"repro/internal/data"
)

func main() {
	iters := flag.Int("iters", 60, "training iterations per arm")
	batch := flag.Int("batch", 16, "batch size")
	flag.Parse()

	spec, _ := data.SpecByName("CIFAR-10")
	ds := data.Synthetic(spec, 7)

	run := func(label string, useGLP bool, shuffleSeed int64) []float64 {
		dev := glp4nn.NewDevice(glp4nn.TeslaP100)
		var launcher glp4nn.Launcher = glp4nn.Serial(dev)
		if useGLP {
			fw := glp4nn.New()
			defer fw.Close()
			launcher = fw.Runtime(dev)
		}
		ctx := glp4nn.NewContext(launcher, 7)
		net, err := glp4nn.BuildModel("CIFAR10", ctx, *batch, 7)
		if err != nil {
			log.Fatal(err)
		}
		it := data.NewIterator(ds, data.TrainSplit, *batch, shuffleSeed)
		buf := make([]float32, *batch*ds.SampleSize())
		labels := make([]float32, *batch)
		solver := glp4nn.NewSolver(net, ctx, glp4nn.CIFAR10QuickSolver())

		var losses []float64
		for i := 0; i < *iters; i++ {
			it.Next(buf, labels)
			if err := net.SetInputData("data", buf); err != nil {
				log.Fatal(err)
			}
			if err := net.SetInputData("label", labels); err != nil {
				log.Fatal(err)
			}
			loss, err := solver.Step()
			if err != nil {
				log.Fatal(err)
			}
			if _, err := dev.Synchronize(); err != nil {
				log.Fatal(err)
			}
			losses = append(losses, loss)
		}
		fmt.Printf("%s: first loss %.4f → final loss %.4f\n", label, losses[0], losses[len(losses)-1])
		return losses
	}

	fmt.Printf("training CIFAR10 (N=%d) for %d iterations, identical weights, different shuffle seeds\n\n", *batch, *iters)
	caffe := run("naive Caffe ", false, 100)
	glp := run("GLP4NN-Caffe", true, 200)

	fmt.Println("\niter   Caffe-loss  GLP4NN-loss")
	step := *iters / 12
	if step < 1 {
		step = 1
	}
	for i := 0; i < *iters; i += step {
		fmt.Printf("%4d   %9.4f   %9.4f\n", i+1, caffe[i], glp[i])
	}
	fmt.Println("\nBoth arms descend together: GLP4NN changes kernel scheduling, never the math.")
}
