// Data-parallel: the paper's future-work item 3 at machine scale — train
// CIFAR10 synchronously across three simulated P100s (shard the global
// batch, ring-all-reduce the gradients, identical updates everywhere), with
// GLP4NN accelerating each replica from the inside.
//
// Run with:
//
//	go run ./examples/dataparallel
package main

import (
	"fmt"
	"log"
	"time"

	glp4nn "repro"
	"repro/internal/dnn"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/simgpu"
)

func main() {
	const (
		globalBatch = 48
		iters       = 10
		seed        = 9
	)

	for _, arm := range []struct {
		label  string
		gpus   int
		useGLP bool
	}{
		{"1 GPU, naive     ", 1, false},
		{"3 GPUs, naive    ", 3, false},
		{"3 GPUs + GLP4NN  ", 3, true},
	} {
		specs := make([]simgpu.DeviceSpec, arm.gpus)
		for i := range specs {
			specs[i] = glp4nn.TeslaP100
		}
		machine := simgpu.NewMachine(specs...)
		shard := globalBatch / arm.gpus

		tr, err := parallel.NewTrainer(machine, func(ctx *dnn.Context) (*dnn.Net, error) {
			return models.BuildCIFAR10(ctx, shard, seed)
		}, parallel.Config{
			Solver:  glp4nn.CIFAR10QuickSolver(),
			UseGLP:  arm.useGLP,
			Compute: true,
			Seed:    seed,
			Bus:     parallel.PCIe3,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Each replica trains on its own shard of the synthetic dataset.
		feeders := map[int]models.Feeder{}
		feed := func(replica int, net *dnn.Net) error {
			f, ok := feeders[replica]
			if !ok {
				w, _ := models.Get("CIFAR10")
				f = w.NewFeeder(shard, seed+int64(replica)*31)
				feeders[replica] = f
			}
			return f(net)
		}

		var last parallel.StepResult
		for i := 0; i < iters; i++ {
			last, err = tr.Step(feed)
			if err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%s shard %2d: loss %.4f, iter %v (compute %v + comm %v)\n",
			arm.label, shard, last.MeanLoss,
			last.IterTime.Round(time.Microsecond),
			last.ComputeTime.Round(time.Microsecond),
			last.CommTime.Round(time.Microsecond))
		tr.Close()
	}

	fmt.Println("\nSharding shrinks compute near-linearly; the all-reduce adds a fixed tax;")
	fmt.Println("GLP4NN stacks multiplicatively because it accelerates each replica's kernels.")
}
