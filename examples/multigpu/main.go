// Multi-GPU: the paper's Fig. 5 topology — one shared resource tracker and
// stream manager per machine, a private kernel analyzer and runtime
// scheduler per GPU. This example trains a different workload on each of
// the machine's three (simulated) GPUs through one Framework and shows the
// per-device concurrency plans and overhead ledgers.
//
// Run with:
//
//	go run ./examples/multigpu
package main

import (
	"fmt"
	"log"
	"time"

	glp4nn "repro"
	"repro/internal/simgpu"
)

func main() {
	machine := simgpu.NewMachine(glp4nn.TeslaK40C, glp4nn.TeslaP100, glp4nn.TitanXP)
	fw := glp4nn.New()
	defer fw.Close()

	jobs := []struct {
		device   int
		workload string
		batch    int
	}{
		{0, "Siamese", 16},
		{1, "CIFAR10", 32},
		{2, "GoogLeNet", 8},
	}

	for _, job := range jobs {
		dev := machine.Device(job.device)
		rt := fw.Runtime(dev) // private analyzer+scheduler per device
		ctx := glp4nn.NewContext(rt, 11)
		ctx.Compute = false // timing-only: we are after the schedules here

		net, err := glp4nn.BuildModel(job.workload, ctx, job.batch, 11)
		if err != nil {
			log.Fatal(err)
		}
		solver := glp4nn.NewSolver(net, ctx, glp4nn.CIFAR10QuickSolver())

		var steady time.Duration
		for i := 0; i < 4; i++ { // profile, analyze, 2 steady iterations
			if err := dev.ResetClocks(); err != nil {
				log.Fatal(err)
			}
			if _, err := solver.Step(); err != nil {
				log.Fatal(err)
			}
			d, err := dev.Synchronize()
			if err != nil {
				log.Fatal(err)
			}
			if h := dev.HostTime(); h > d {
				d = h
			}
			steady = d
		}

		fmt.Printf("GPU %d = %s running %s (N=%d): steady iteration %v\n",
			job.device, dev.Name(), job.workload, job.batch, steady.Round(time.Microsecond))
		for _, p := range rt.Plans() {
			if p.Streams > 1 {
				fmt.Printf("   %-24s → %d streams\n", p.Key, p.Streams)
			}
		}
		fmt.Printf("   overhead: %s\n\n", rt.Ledger().Snapshot())
	}

	if _, err := machine.SynchronizeAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("All three devices shared one resource tracker and stream manager (Fig. 5 topology);")
	fmt.Println("each kept its own analyzer cache, so the same layer gets device-specific stream counts.")
}
