// Quickstart: train the CIFAR10 network for a few iterations on a simulated
// Tesla P100, first with naive serial dispatch (original Caffe), then under
// GLP4NN, and compare the simulated per-iteration time.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	glp4nn "repro"
)

func main() {
	const (
		batch = 32
		iters = 8
		seed  = 42
	)

	fmt.Println("GLP4NN reproduction — quickstart")
	fmt.Println(glp4nn.Describe(glp4nn.NewDevice(glp4nn.TeslaP100)))
	fmt.Println()

	// Arm 1: naive Caffe (single stream).
	naive := trainArm("naive Caffe ", batch, iters, seed, nil)

	// Arm 2: GLP4NN (profile → analyze → concurrent streams).
	fw := glp4nn.New()
	defer fw.Close()
	glp := trainArm("GLP4NN-Caffe", batch, iters, seed, fw)

	fmt.Printf("\nmean simulated iteration: naive %v vs GLP4NN %v → speedup %.2fx\n",
		naive.Round(time.Microsecond), glp.Round(time.Microsecond), float64(naive)/float64(glp))
	fmt.Println("(the first two GLP4NN iterations profile and analyze; they are excluded above)")
}

// trainArm trains CIFAR10 on its own simulated P100 and returns the mean
// simulated iteration time of the steady-state iterations.
func trainArm(label string, batch, iters int, seed int64, fw *glp4nn.Framework) time.Duration {
	dev := glp4nn.NewDevice(glp4nn.TeslaP100)
	var launcher glp4nn.Launcher = glp4nn.Serial(dev)
	warmup := 1
	if fw != nil {
		launcher = fw.Runtime(dev)
		warmup = 2 // profiling + analysis iterations
	}
	ctx := glp4nn.NewContext(launcher, seed)

	net, err := glp4nn.BuildModel("CIFAR10", ctx, batch, seed)
	if err != nil {
		log.Fatal(err)
	}
	feed, err := glp4nn.NewFeeder("CIFAR10", batch, seed+1)
	if err != nil {
		log.Fatal(err)
	}
	solver := glp4nn.NewSolver(net, ctx, glp4nn.CIFAR10QuickSolver())

	var total time.Duration
	measured := 0
	for i := 0; i < iters; i++ {
		if err := feed(net); err != nil {
			log.Fatal(err)
		}
		if err := dev.ResetClocks(); err != nil {
			log.Fatal(err)
		}
		if err := net.UploadInputs(ctx); err != nil { // PCIe copy of the batch
			log.Fatal(err)
		}
		loss, err := solver.Step()
		if err != nil {
			log.Fatal(err)
		}
		simTime, err := dev.Synchronize()
		if err != nil {
			log.Fatal(err)
		}
		if h := dev.HostTime(); h > simTime {
			simTime = h
		}
		if i >= warmup {
			total += simTime
			measured++
		}
		fmt.Printf("%s iter %2d: loss %.4f, simulated time %v\n",
			label, i+1, loss, simTime.Round(time.Microsecond))
	}
	if fw != nil {
		fmt.Printf("%s overhead: %s\n", label, fw.Runtime(dev).Ledger().Snapshot())
	}
	return total / time.Duration(measured)
}
