// Timeline: reproduce the view of the paper's Fig. 3 — the kernel stream of
// a convolution layer (im2col → sgemm → gemmk per batch sample) rendered as
// an ASCII per-stream Gantt chart, serially and with a pool of concurrent
// CUDA streams.
//
// Run with:
//
//	go run ./examples/timeline
package main

import (
	"fmt"
	"log"

	glp4nn "repro"
	"repro/internal/dnn"
)

func main() {
	const batch = 6

	// The Siamese conv2 layer on MNIST-derived geometry (Table 5 row):
	// per-image kernels long enough relative to T_launch that streams can
	// genuinely overlap them.
	build := func() *glp4nn.Net {
		ctx := glp4nn.NewContext(dnn.HostLauncher{}, 1)
		ctx.Compute = false
		cfg := dnn.Conv(50, 5, 1, 0)
		net, err := dnn.NewNet("conv2-mnist").
			Input("data", batch, 20, 12, 12).
			Add(dnn.NewConv("conv2", cfg), []string{"data"}, []string{"out"}).
			Build(ctx)
		if err != nil {
			log.Fatal(err)
		}
		return net
	}
	net := build()

	// Use the K40C: on the slower Kepler card these kernels are long
	// relative to the launch overhead, so chains genuinely overlap; tiny
	// conv1-scale kernels would be launch-bound and serialize — the same
	// small-layer effect the paper's Fig. 9 reports.
	for _, streams := range []int{1, 3, 6} {
		dev := glp4nn.NewDevice(glp4nn.TeslaK40C)
		var l glp4nn.Launcher
		if streams == 1 {
			l = glp4nn.Serial(dev)
		} else {
			l = glp4nn.FixedPool(dev, streams)
		}
		ctx := glp4nn.NewContext(l, 1)
		ctx.Compute = false
		if _, err := net.Forward(ctx); err != nil {
			log.Fatal(err)
		}
		recs, err := dev.Trace()
		if err != nil {
			log.Fatal(err)
		}
		total, _ := dev.Synchronize()
		fmt.Printf("conv2 (MNIST-derived, %d samples) with %d stream(s) — %v total:\n", batch, streams, total)
		fmt.Print(glp4nn.Timeline(recs, 100))
		fmt.Println()
	}
	fmt.Println("With one stream the im2col/sgemm/gemmk chains serialize; with a pool they overlap —")
	fmt.Println("exactly the effect the paper's Fig. 3 profiles on the real hardware.")
}
