// Package glp4nn is the public façade of this reproduction of
//
//	GLP4NN: A Convergence-invariant and Network-agnostic Light-Weight
//	Parallelization Framework for Deep Neural Networks on Modern GPUs
//	(Fu, Tang, He, Yu, Sun — ICPP 2018)
//
// in pure Go. Because Go cannot drive CUDA directly, the GPU is a
// discrete-event simulator (internal/simgpu) with the paper's three test
// devices; the deep-learning substrate is a Caffe-like framework whose
// numerics are real float32 host math, while kernel *timing* is simulated.
// GLP4NN itself (internal/core) is faithful to the paper: a CUPTI-style
// resource tracker, the Section 3.2 analytical model solved as a MILP, a
// stream pool, and a runtime scheduler that batch-splits convolutions over
// concurrent streams.
//
// # Quick start
//
//	dev := glp4nn.NewDevice(glp4nn.TeslaP100)
//	fw := glp4nn.New()
//	defer fw.Close()
//	ctx := glp4nn.NewContext(fw.Runtime(dev), 42)
//	net, _ := glp4nn.BuildModel("CIFAR10", ctx, 0, 42)
//	solver := glp4nn.NewSolver(net, ctx, glp4nn.CIFAR10QuickSolver())
//	feed := glp4nn.NewFeeder("CIFAR10", 0, 43)
//	for i := 0; i < 100; i++ {
//		feed(net)
//		loss, _ := solver.Step()
//		_ = loss
//	}
//
// Swap fw.Runtime(dev) for glp4nn.Serial(dev) to get the naive-Caffe
// baseline; the trained parameters agree (convergence invariance), the
// simulated timeline does not (that is the speedup).
package glp4nn

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dnn"
	"repro/internal/hostpool"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/serve"
	"repro/internal/simgpu"
	"repro/internal/tensor"
)

// Re-exported core types. The façade keeps examples and downstream users on
// a single import; the internal packages remain the implementation.
type (
	// Device is a simulated GPU.
	Device = simgpu.Device
	// DeviceSpec describes a GPU model (see TeslaK40C, TeslaP100, TitanXP).
	DeviceSpec = simgpu.DeviceSpec
	// Stream is a CUDA-like stream.
	Stream = simgpu.Stream
	// Kernel is one launchable unit of simulated GPU work.
	Kernel = simgpu.Kernel
	// KernelRecord is a completed kernel's activity record.
	KernelRecord = simgpu.KernelRecord
	// DeviceOption configures a Device at construction (see WithInjector).
	DeviceOption = simgpu.Option

	// FaultPlan is a seeded, probability-per-site fault schedule; its
	// Injector deterministically fails stream creation, launches, copies and
	// synchronizations, hangs kernels, and corrupts profiler records.
	FaultPlan = simgpu.FaultPlan
	// Injector decides, per device operation, whether to inject a fault.
	Injector = simgpu.Injector
	// PlanInjector is the deterministic FaultPlan-driven Injector.
	PlanInjector = simgpu.PlanInjector
	// InjectorStats is the census of faults a PlanInjector has injected.
	InjectorStats = simgpu.InjectorStats
	// FaultError marks an injected failure; the runtime classifies these as
	// transient and retries, degrades or rolls back instead of aborting.
	FaultError = simgpu.FaultError

	// Net is a Caffe-like network.
	Net = dnn.Net
	// Context carries execution state through training.
	Context = dnn.Context
	// Launcher routes kernels to the device (serial or GLP4NN).
	Launcher = dnn.Launcher
	// Solver is momentum SGD.
	Solver = dnn.Solver
	// SolverConfig mirrors Caffe's solver prototxt.
	SolverConfig = dnn.SolverConfig

	// Framework is GLP4NN: shared tracker and stream manager, per-device
	// analyzer and scheduler.
	Framework = core.Framework
	// Runtime is the per-device GLP4NN scheduler (a Launcher).
	Runtime = core.Runtime
	// Plan is one layer's analyzed concurrency configuration.
	Plan = core.Plan
	// OverheadSnapshot is the framework's cost ledger (mem_tt, mem_K,
	// mem_cupti, T_p, T_a, T_s).
	OverheadSnapshot = core.Snapshot

	// Feeder fills a net's inputs with the next mini-batch.
	Feeder = models.Feeder

	// InputPipe is an asynchronous input pipeline for a workload: batch
	// t+1 is synthesized on hostpool workers while batch t computes, and
	// the delivered stream is bit-identical to the synchronous Feeder's.
	InputPipe = models.InputPipe
	// PipeConfig tunes an InputPipe (pool, observer, buffer depth).
	PipeConfig = models.PipeConfig
	// PipelineStats counts an input pipeline's hits and stalls.
	PipelineStats = data.PipelineStats
	// PrefetchObserver receives pipeline hit/stall events; a Runtime's
	// *core.Ledger implements it.
	PrefetchObserver = data.Observer

	// DAGStats summarizes a network's operator-level dependency DAG:
	// forward/backward depth, maximum wavefront (independent layers
	// executable at once) and the forward critical path.
	DAGStats = dnn.DAGStats

	// HostPool is the bounded worker pool of the host-side parallel
	// execution engine: kernel host math of independent dependency chains
	// runs on separate goroutines while the simulated timeline is unchanged.
	HostPool = hostpool.Pool

	// FrozenNet is a forward-only inference executor produced by Freeze:
	// training-only layers stripped, dropout folded to identity, gradient
	// storage droppable via Compact, outputs bitwise identical to the
	// training net's Test phase under serial and DAG dispatch alike.
	FrozenNet = dnn.FrozenNet
	// ForwardPlan is the inference plan inside a FrozenNet (kept steps,
	// aliased blobs, operator DAG).
	ForwardPlan = dnn.ForwardPlan
	// Server answers concurrent single-sample Predict calls by dynamically
	// batching them into a FrozenNet's fixed device batch, flushing on
	// batch-full or a deadline; every answer is bitwise independent of
	// co-batching, padding and flush timing.
	Server = serve.Server
	// ServeConfig tunes a Server (max batch, flush deadline, queue depth,
	// transient-fault retries, ledger observer).
	ServeConfig = serve.Config
	// ServeStats is a Server's request/batch census with p50/p99 latency.
	ServeStats = serve.Stats
	// ServeObserver receives per-request and per-batch serving events; a
	// Runtime's *core.Ledger implements it.
	ServeObserver = serve.Observer
	// LoadGen is the seeded heavy-tailed (Pareto) request load generator
	// used by glp4nn-serve and the servebench experiment.
	LoadGen = serve.LoadGen
	// LatencyWindow is a bounded sliding window with nearest-rank quantiles.
	LatencyWindow = core.LatencyWindow

	// Machine is a multi-GPU host: several simulated devices behind one
	// PCIe-like interconnect.
	Machine = simgpu.Machine
	// Trainer is the synchronous data-parallel multi-device trainer:
	// per-device replicas, deterministic gradient fold, checkpointed step
	// retry, elastic device-loss eviction and durable on-disk checkpoints.
	Trainer = parallel.Trainer
	// TrainerConfig tunes a Trainer (solver schedule, GLP4NN on/off, step
	// retry budget, Elastic device-loss tolerance, prefetch pipelines).
	TrainerConfig = parallel.Config
	// BuildFunc constructs one replica's network on its context.
	BuildFunc = parallel.BuildFunc
	// FeedFunc fills one replica's inputs with its shard of the global batch.
	FeedFunc = parallel.FeedFunc
	// StepResult is one synchronous training step's timing breakdown.
	StepResult = parallel.StepResult
	// EvictionEvent records one replica eviction after permanent device loss.
	EvictionEvent = parallel.EvictionEvent
	// DurableInfo is the header of a durable on-disk checkpoint: format
	// version, solver iteration, feeder steps to replay, replica census.
	DurableInfo = parallel.DurableInfo
	// Bus is the modeled inter-device interconnect behind the trainer's
	// ring all-reduce cost (bandwidth plus per-hop latency).
	Bus = parallel.Bus
	// CommStats is the trainer's cumulative all-reduce ledger: buckets
	// reduced, modeled ring time hidden under backward vs left exposed on
	// the critical path (DESIGN §7.7).
	CommStats = parallel.CommStats

	// AdaptiveConfig tunes the runtime's drift detector (band, EWMA alpha,
	// warmup, cooldown, re-profile cap) — the adaptive concurrency
	// controller of DESIGN §7.8.
	AdaptiveConfig = core.AdaptiveConfig
	// DriftDetector watches per-layer observed kernel timings and flags
	// layers whose EWMA leaves the band around their plan's solved-from
	// timing (arm via Runtime.SetAdaptive or TrainerConfig.Adaptive).
	DriftDetector = core.DriftDetector
	// Budget is the unified SM-concurrency budget shared by chain streams,
	// the DAG wavefront and copy-stream transfers on one device
	// (Runtime.Budget).
	Budget = core.Budget
	// PlanSwapEvent records one width transition the adaptive trainer
	// applied at a checkpointed step boundary (Trainer.SwapEvents).
	PlanSwapEvent = parallel.PlanSwapEvent
	// PlanInfo is one checkpointed concurrency plan as read back from a
	// durable checkpoint (DurableInfo.Plans).
	PlanInfo = parallel.PlanInfo

	// ISA is one rung of the host micro-kernel dispatch ladder behind the
	// engine's GEMM (purego → sse2 → avx2). Every rung produces bitwise
	// identical outputs — dispatch is a pure speed decision (DESIGN §7.5).
	ISA = tensor.ISA

	// FusedSite is one fusable GEMM-epilogue site of a built network: the
	// producing conv/ip layer, the kind of epilogue (conv+bias+relu,
	// conv+bias, conv+relu or ip+bias) and the absorbed ReLU layer, if any.
	FusedSite = dnn.FusedSite
)

// The micro-kernel dispatch ladder's rungs, lowest to highest.
const (
	ISAPureGo = tensor.ISAPureGo
	ISASSE2   = tensor.ISASSE2
	ISAAVX2   = tensor.ISAAVX2
)

// The paper's three evaluation GPUs (Table 3).
var (
	TeslaK40C = simgpu.TeslaK40C
	TeslaP100 = simgpu.TeslaP100
	TitanXP   = simgpu.TitanXP
)

// The modeled trainer interconnects.
var (
	PCIe3   = parallel.PCIe3
	NVLink1 = parallel.NVLink1
)

// BusByName resolves an interconnect by CLI-friendly name ("pcie3",
// "nvlink1"); BusNames lists the accepted names.
func BusByName(name string) (Bus, bool) { return parallel.BusByName(name) }

// BusNames lists the interconnect names BusByName accepts.
func BusNames() []string { return parallel.BusNames() }

// Workloads lists the paper's four networks.
var Workloads = models.Names

// ErrOverloaded is returned by Server.PredictContext when the admission
// queue is full: the request was shed without occupying queue space, so
// callers can apply backpressure instead of blocking.
var ErrOverloaded = serve.ErrOverloaded

// NewDevice creates a simulated GPU.
func NewDevice(spec DeviceSpec, opts ...DeviceOption) *Device {
	return simgpu.NewDevice(spec, opts...)
}

// NewDeviceChecked creates a simulated GPU, validating the spec and options
// and surfacing construction faults as errors instead of panics — the
// entry point for fault-tolerant deployments.
func NewDeviceChecked(spec DeviceSpec, opts ...DeviceOption) (*Device, error) {
	return simgpu.NewDeviceChecked(spec, opts...)
}

// WithInjector attaches a fault injector to a device under construction.
func WithInjector(in Injector) DeviceOption { return simgpu.WithInjector(in) }

// DeviceByName resolves "K40C", "P100" or "TitanXP".
func DeviceByName(name string) (DeviceSpec, bool) { return simgpu.DeviceByName(name) }

// New creates a GLP4NN framework.
func New() *Framework { return core.New() }

// Serial returns the naive-Caffe launcher: every kernel on the default
// stream.
func Serial(dev *Device) Launcher { return dnn.SerialLauncher{Dev: dev} }

// FixedPool returns a plain fixed-size stream-pool launcher (the paper's
// motivation-experiment baseline, no profiling or analysis).
func FixedPool(dev *Device, streams int) Launcher { return core.NewFixedLauncher(dev, streams) }

// WithFusion wraps a launcher with chain-local kernel fusion (the paper's
// future-work item 2): consecutive sub-threshold kernels of one dependency
// chain merge into a single launch. threshold ≤ 0 defaults to 3× the
// device's launch overhead.
func WithFusion(inner Launcher, spec DeviceSpec, threshold time.Duration) Launcher {
	return core.NewFusingLauncher(inner, spec, threshold)
}

// NewContext builds a training context over a launcher with a fixed seed.
func NewContext(l Launcher, seed int64) *Context { return dnn.NewContext(l, seed) }

// NewHostPool builds a worker pool with the given number of workers
// (≤ 0 selects GOMAXPROCS). Pools are cheap and shareable: one pool can
// back many contexts, bounding total host parallelism machine-wide.
func NewHostPool(workers int) *HostPool { return hostpool.New(workers) }

// DefaultHostPool returns the process-wide shared GOMAXPROCS-sized pool.
func DefaultHostPool() *HostPool { return hostpool.Default() }

// NewParallelContext builds a training context whose kernel host math runs
// chain-parallel on a worker pool (nil selects the shared default pool).
// Training remains bitwise identical to NewContext at the same launcher
// width — the engine's convergence-invariance guarantee.
func NewParallelContext(l Launcher, seed int64, pool *HostPool) *Context {
	return dnn.NewParallelContext(l, seed, pool)
}

// WithDAG switches a network onto the operator DAG scheduler and returns
// it: independent layers execute concurrently (Net.ForwardDAG /
// Net.BackwardDAG), gated so profiling iterations still run serially and
// with a fixed gradient fold order — trained parameters stay bitwise
// identical to the serial schedule. Net.DAGStats reports how much
// inter-layer parallelism the network offers.
func WithDAG(net *Net) *Net {
	net.EnableDAG(true)
	return net
}

// WithFusedEpilogues switches a built network onto fused GEMM epilogues and
// returns it: bias addition and ReLU activation are applied per row segment
// inside the producing GEMM while the output tile is cache-hot, collapsing
// the separate bias and activation kernels. The epilogues are elementwise
// transforms of a finished GEMM row, so every blob and every trained
// parameter stays bitwise identical to the unfused schedule (DESIGN §7.5);
// it composes freely with WithDAG and the host pool. Net.Summary reports
// the detected sites.
func WithFusedEpilogues(net *Net) *Net {
	net.EnableFusion(true)
	return net
}

// DetectedISA returns the highest micro-kernel ISA level this host can run.
func DetectedISA() ISA { return tensor.DetectedISA() }

// ActiveISA returns the level the GEMM currently dispatches to.
func ActiveISA() ISA { return tensor.ActiveISA() }

// AvailableISAs returns every runnable level in ascending order.
func AvailableISAs() []ISA { return tensor.AvailableISAs() }

// SetISA forces the GEMM dispatch level. Forcing below the detected ceiling
// is always allowed (bits are identical at every rung, so this is a pure
// speed/reproducibility knob — the GLP4NN_ISA environment variable does the
// same at process start); forcing above it is an error.
func SetISA(lv ISA) error { return tensor.SetISA(lv) }

// SetISAName is SetISA for CLI/env-style names ("purego", "sse2", "avx2");
// "auto" or "" restores the detected ceiling.
func SetISAName(name string) error { return tensor.SetISAName(name) }

// ParseISA parses an ISA level name as accepted by GLP4NN_ISA.
func ParseISA(name string) (ISA, error) { return tensor.ParseISA(name) }

// Freeze compiles a built network into a forward-only inference executor.
// Loss/accuracy layers and their exclusive inputs are stripped, dropout
// folds to identity, and Forward always runs the Test phase — so the frozen
// outputs are bitwise identical to the training net's Test-phase forward.
// Call Compact to drop gradient storage once training is over.
func Freeze(net *Net) (*FrozenNet, error) { return dnn.Freeze(net) }

// NewServer starts a dynamic-batching inference server over a frozen net.
// Concurrent Predict calls (one sample each) are coalesced into device
// batches; set ServeConfig.Observer to a Runtime's Ledger to fold serving
// latency into the overhead ledger.
func NewServer(fz *FrozenNet, ctx *Context, cfg ServeConfig) (*Server, error) {
	return serve.New(fz, ctx, cfg)
}

// NewLoadGen builds a seeded heavy-tailed request load generator with the
// given mean inter-arrival gap.
func NewLoadGen(seed int64, mean time.Duration) *LoadGen { return serve.NewLoadGen(seed, mean) }

// NewSolver builds a momentum-SGD solver.
func NewSolver(net *Net, ctx *Context, cfg SolverConfig) *Solver {
	return dnn.NewSolver(net, ctx, cfg)
}

// CIFAR10QuickSolver is the schedule of Caffe's cifar10_quick example.
func CIFAR10QuickSolver() SolverConfig { return dnn.CIFAR10QuickSolver() }

// BuildModel constructs one of the paper's four networks ("CIFAR10",
// "Siamese", "CaffeNet", "GoogLeNet"); batch ≤ 0 selects the paper default.
func BuildModel(name string, ctx *Context, batch int, seed int64) (*Net, error) {
	w, err := models.Get(name)
	if err != nil {
		return nil, err
	}
	return w.Build(ctx, batch, seed)
}

// NewFeeder builds a synthetic-dataset feeder for one of the four
// workloads; batch ≤ 0 selects the paper default.
func NewFeeder(name string, batch int, seed int64) (Feeder, error) {
	w, err := models.Get(name)
	if err != nil {
		return nil, err
	}
	return w.NewFeeder(batch, seed), nil
}

// WithPrefetch builds the asynchronous input pipeline for one of the four
// workloads: the double-buffered, hostpool-parallel replacement for
// NewFeeder, delivering bit-for-bit the same batch stream (convergence
// invariance). Feed with pipe.Feed, stage the device copy with
// Net.StageInputs (the GLP4NN runtime then overlaps it on a dedicated copy
// stream), register the pipe in a parallel trainer's Config.Prefetch so
// checkpoint rollback discards prefetched batches, and Close it when done.
func WithPrefetch(name string, batch int, seed int64, cfg PipeConfig) (*InputPipe, error) {
	return models.NewInputPipe(name, batch, seed, cfg)
}

// Timeline renders kernel records as an ASCII per-stream Gantt chart (the
// textual analogue of the paper's Fig. 3).
func Timeline(records []KernelRecord, width int) string {
	return simgpu.Timeline(records, width)
}

// NewMachine builds a multi-GPU host from device specs.
func NewMachine(specs ...DeviceSpec) *Machine { return simgpu.NewMachine(specs...) }

// NewMachineFromDevices builds a multi-GPU host over pre-constructed
// devices (e.g. devices carrying fault injectors).
func NewMachineFromDevices(devs ...*Device) *Machine {
	return simgpu.NewMachineFromDevices(devs...)
}

// NewTrainer builds a synchronous data-parallel trainer: one replica per
// machine device, deterministic ascending-replica gradient fold, and —
// with TrainerConfig.Elastic — permanent-device-loss eviction that keeps
// training bitwise identical to the healthy N-device run.
func NewTrainer(machine *Machine, build BuildFunc, cfg TrainerConfig) (*Trainer, error) {
	return parallel.NewTrainer(machine, build, cfg)
}

// IsTransient reports whether any error in err's tree marks itself
// retryable (FaultError.Transient() == true). Permanent faults — hardened
// sites and device loss — are not transient: every retry ladder aborts on
// them immediately.
func IsTransient(err error) bool { return core.IsTransient(err) }

// IsDeviceLost reports whether any error in err's tree marks permanent
// whole-device loss — the trainer's signal to evict the replica (see
// TrainerConfig.Elastic) rather than retry or degrade.
func IsDeviceLost(err error) bool { return core.IsDeviceLost(err) }

// PeekCheckpointFile validates a durable checkpoint's header (magic,
// version, length, CRC) and returns its metadata without restoring it —
// the cheap pre-flight a resume path runs before touching trainer state.
// Use Trainer.WriteCheckpointFile / Trainer.RestoreCheckpointFile for the
// full round trip.
func PeekCheckpointFile(path string) (DurableInfo, error) {
	return parallel.PeekCheckpointFile(path)
}

// WriteFileAtomic writes a file via temp-file + fsync + rename, so readers
// see either the previous complete content or the new complete content —
// never a torn write. Checkpoints and saved weights go through this.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	return dnn.WriteFileAtomic(path, write)
}

// Version identifies this reproduction.
const Version = "1.0.0"

// Describe returns a one-paragraph summary of the framework configuration
// on a device, for example banners.
func Describe(dev *Device) string {
	s := dev.Spec()
	return fmt.Sprintf("%s (%s): %d SMs × %d cores @ %.3f GHz, %.0f GB/s, %d KB shared/SM, ≤%d concurrent kernels",
		s.Name, s.Arch, s.SMCount, s.CoresPerSM, s.ClockGHz, s.MemBandwidthGBps,
		s.SharedMemPerSMKB, s.MaxConcurrentKernels())
}
