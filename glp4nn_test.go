package glp4nn

import (
	"strings"
	"testing"
	"time"
)

// TestFacadeEndToEnd drives the public API exactly as the README shows:
// build a workload, train briefly under GLP4NN with real math, and inspect
// plans and overheads.
func TestFacadeEndToEnd(t *testing.T) {
	dev := NewDevice(TeslaP100)
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)
	ctx := NewContext(rt, 42)

	net, err := BuildModel("CIFAR10", ctx, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	feed, err := NewFeeder("CIFAR10", 8, 43)
	if err != nil {
		t.Fatal(err)
	}
	solver := NewSolver(net, ctx, CIFAR10QuickSolver())

	var losses []float64
	for i := 0; i < 4; i++ {
		if err := feed(net); err != nil {
			t.Fatal(err)
		}
		loss, err := solver.Step()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dev.Synchronize(); err != nil {
			t.Fatal(err)
		}
		losses = append(losses, loss)
	}
	if losses[0] <= 0 {
		t.Fatalf("loss = %v", losses[0])
	}
	if len(rt.Plans()) == 0 {
		t.Fatal("no concurrency plans after training")
	}
	snap := rt.Ledger().Snapshot()
	if snap.ProfiledKernels == 0 || snap.Tp == 0 || snap.Ta == 0 {
		t.Fatalf("overhead ledger empty: %s", snap)
	}
}

func TestFacadeHelpers(t *testing.T) {
	if _, err := BuildModel("nope", NewContext(Serial(NewDevice(TeslaK40C)), 1), 1, 1); err == nil {
		t.Fatal("unknown model resolved")
	}
	if _, err := NewFeeder("nope", 1, 1); err == nil {
		t.Fatal("unknown feeder resolved")
	}
	if _, ok := DeviceByName("P100"); !ok {
		t.Fatal("P100 lookup failed")
	}
	if len(Workloads) != 4 {
		t.Fatalf("workloads = %v", Workloads)
	}
	desc := Describe(NewDevice(TitanXP))
	for _, want := range []string{"TitanXP", "Pascal", "30 SMs", "128"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q: %s", want, desc)
		}
	}
	if Version == "" {
		t.Fatal("version")
	}
}

// TestFacadeFixedPoolFasterThanSerial checks the motivation result through
// the public API only.
func TestFacadeFixedPoolFasterThanSerial(t *testing.T) {
	measure := func(streams int) time.Duration {
		dev := NewDevice(TeslaP100)
		var l Launcher
		if streams <= 1 {
			l = Serial(dev)
		} else {
			l = FixedPool(dev, streams)
		}
		ctx := NewContext(l, 1)
		ctx.Compute = false
		net, err := BuildModel("GoogLeNet", ctx, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.Forward(ctx); err != nil { // warm scratch buffers
			t.Fatal(err)
		}
		if err := dev.ResetClocks(); err != nil {
			t.Fatal(err)
		}
		if _, err := net.Forward(ctx); err != nil {
			t.Fatal(err)
		}
		d, err := dev.Synchronize()
		if err != nil {
			t.Fatal(err)
		}
		if h := dev.HostTime(); h > d {
			d = h
		}
		return d
	}
	serial := measure(1)
	pooled := measure(8)
	if pooled >= serial {
		t.Fatalf("8-stream pool (%v) not faster than serial (%v) on GoogLeNet slice", pooled, serial)
	}
	tl := Timeline(nil, 50)
	if tl == "" {
		t.Fatal("timeline")
	}
}

// TestFacadeWithDAG drives the operator DAG scheduler through the public
// API: GoogLeNet trained with WithDAG on the GLP4NN runtime must report
// real inter-layer parallelism and produce the same losses as a serial run.
func TestFacadeWithDAG(t *testing.T) {
	train := func(dag bool) []float64 {
		dev := NewDevice(TeslaP100)
		fw := New()
		defer fw.Close()
		ctx := NewContext(fw.Runtime(dev), 42)
		net, err := BuildModel("GoogLeNet", ctx, 2, 42)
		if err != nil {
			t.Fatal(err)
		}
		if dag {
			net = WithDAG(net)
		}
		var st DAGStats
		if st, err = net.DAGStats(); err != nil {
			t.Fatal(err)
		}
		if st.MaxWavefront < 2 {
			t.Fatalf("GoogLeNet DAG reports no parallelism: %+v", st)
		}
		feed, err := NewFeeder("GoogLeNet", 2, 43)
		if err != nil {
			t.Fatal(err)
		}
		solver := NewSolver(net, ctx, CIFAR10QuickSolver())
		var losses []float64
		for i := 0; i < 3; i++ {
			if err := feed(net); err != nil {
				t.Fatal(err)
			}
			loss, err := solver.Step()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := dev.Synchronize(); err != nil {
				t.Fatal(err)
			}
			losses = append(losses, loss)
		}
		return losses
	}
	serial := train(false)
	dag := train(true)
	for i := range serial {
		if serial[i] != dag[i] {
			t.Fatalf("step %d loss differs: serial %v dag %v", i, serial[i], dag[i])
		}
	}
}
