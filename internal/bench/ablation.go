package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/models"
	"repro/internal/simgpu"
)

func init() {
	register(&Experiment{
		ID:    "ablation-engine",
		Title: "Ablation: contention-aware vs contention-free simulator engine",
		Paper: "(design choice, DESIGN.md §5) — contention modeling bounds multi-stream gains",
		Run:   runAblationEngine,
	})
	register(&Experiment{
		ID:    "ablation-pool",
		Title: "Ablation: analyzer-sized stream pool vs fixed pool sizes",
		Paper: "(design choice) — the MILP picks a pool close to the best fixed size",
		Run:   runAblationPool,
	})
}

// runAblationEngine sweeps stream counts on a CaffeNet conv layer with the
// work-conserving engine and with the contention-free ablation engine; the
// latter's "speedups" grow unboundedly because co-resident kernels no
// longer share SM throughput or DRAM bandwidth.
func runAblationEngine(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	sizes := sweepSizes(cfg)
	row := models.Rows("CaffeNet")[2] // conv3, mid-size grids
	batch := 0
	if cfg.Quick {
		batch = 8
	}
	net, err := buildConvLayerNet(row, batch, cfg.Seed)
	if err != nil {
		return err
	}
	header := []string{"Engine"}
	for _, s := range sizes {
		header = append(header, fmt.Sprintf("%d streams", s))
	}
	t := newTable(header...)
	for _, mode := range []struct {
		name string
		opts []simgpu.Option
	}{
		{"contention (default)", nil},
		{"no-contention", []simgpu.Option{simgpu.WithoutContention()}},
	} {
		var base time.Duration
		cells := []string{mode.name}
		for _, n := range sizes {
			dev := simgpu.NewDevice(simgpu.TeslaP100, mode.opts...)
			var l dnn.Launcher
			if n <= 1 {
				l = dnn.SerialLauncher{Dev: dev}
			} else {
				l = core.NewFixedLauncher(dev, n)
			}
			if _, err := forwardElapsed(net, dev, l); err != nil {
				return err
			}
			d, err := forwardElapsed(net, dev, l)
			if err != nil {
				return err
			}
			if n == sizes[0] {
				base = d
			}
			cells = append(cells, fmt.Sprintf("%.2fx (%sms)", float64(base)/float64(d), ms(d)))
		}
		t.add(cells...)
	}
	fmt.Fprintf(w, "CaffeNet %s forward on P100 under both engines (speedup vs 1 stream)\n", row.Layer)
	t.write(w)
	return nil
}

// runAblationPool compares the analyzer-sized pool against fixed pool sizes
// on a full training iteration.
func runAblationPool(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	net, wl, err := buildWorkloadNet("CIFAR10", cfg)
	if err != nil {
		return err
	}
	spec := simgpu.TeslaP100
	t := newTable("Policy", "iter (ms)", "vs serial")

	// Serial baseline and analyzer-sized pool via the standard arms.
	naive, glp, err := runArms(net, spec, cfg)
	if err != nil {
		return err
	}
	t.add("serial (naive Caffe)", ms(naive.iter), "1.00x")

	fixed := []int{4, 16, 32}
	if cfg.Quick {
		fixed = []int{4, 16}
	}
	for _, n := range fixed {
		dev := simgpu.NewDevice(spec)
		l := core.NewFixedLauncher(dev, n)
		ctx := dnn.NewContext(l, cfg.Seed)
		ctx.Compute = false
		s := dnn.NewSolver(net, ctx, dnn.CIFAR10QuickSolver())
		if _, err := iterationElapsed(s, dev); err != nil {
			return err
		}
		var total time.Duration
		for i := 0; i < cfg.Iterations; i++ {
			d, err := iterationElapsed(s, dev)
			if err != nil {
				return err
			}
			total += d
		}
		iter := total / time.Duration(cfg.Iterations)
		t.add(fmt.Sprintf("fixed pool of %d", n), ms(iter),
			fmt.Sprintf("%.2fx", float64(naive.iter)/float64(iter)))
	}
	t.add("GLP4NN analyzer-sized", ms(glp.iter),
		fmt.Sprintf("%.2fx", float64(naive.iter)/float64(glp.iter)))
	fmt.Fprintf(w, "CIFAR10 (N=%d) training iteration on P100 under different pool policies\n", cfg.batchFor(wl))
	t.write(w)
	return nil
}
