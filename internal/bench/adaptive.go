package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/hostpool"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/simgpu"
)

func init() {
	register(&Experiment{
		ID:    "adapt",
		Title: "Adaptive concurrency controller: stale fixed plans vs online re-profiling under drift",
		Paper: "Extension: the paper profiles once and solves once; this sweep injects " +
			"drift into the profiling window (every layer starts on a width-1 fallback " +
			"plan solved from nothing) and compares the stale arm's virtual timeline " +
			"against the controller that re-profiles and swaps plans at checkpointed " +
			"step boundaries — with the swap schedule replayed serially to prove the " +
			"trained bits never move.",
		Run: runAdapt,
	})
}

// adaptRecord is one drift-band × workload arm of the timeline sweep.
type adaptRecord struct {
	Network     string  `json:"network"`
	Band        float64 `json:"drift_band"`
	Steps       int     `json:"steps"`
	StaleMs     float64 `json:"stale_ms_total"`
	AdaptiveMs  float64 `json:"adaptive_ms_total"`
	Speedup     float64 `json:"speedup"`
	DriftEvents int64   `json:"drift_events"`
	Reprofiles  int64   `json:"reprofiles"`
	PlanSwaps   int64   `json:"plan_swaps"`
}

// adaptReplay is one workload's convergence-invariance verdict: the adaptive
// arm's recorded width schedule replayed through a serial reference.
type adaptReplay struct {
	Network string `json:"network"`
	Events  int    `json:"schedule_events"`
	Bitwise bool   `json:"bitwise_vs_reference"`
}

// adaptReport is the JSONOut document.
type adaptReport struct {
	Experiment string        `json:"experiment"`
	Generated  string        `json:"generated"`
	Records    []adaptRecord `json:"records"`
	Replays    []adaptReplay `json:"replays"`
}

// adaptArm is one training run's outcome.
type adaptArm struct {
	total  time.Duration // summed virtual IterTime
	snap   core.Snapshot
	events []parallel.PlanSwapEvent
	params [][]float32
}

// adaptCase sizes one workload's runs (CaffeNet is ~6 GFLOP per image on
// the host, so the bitwise arms stay tiny).
type adaptCase struct {
	name  string
	batch int
}

var adaptCases = []adaptCase{
	{"CIFAR10", 4},
	{"Siamese", 4},
	{"CaffeNet", 2},
	{"GoogLeNet", 2},
}

// runAdaptArm trains a workload on two simulated devices and returns the
// summed virtual iteration time plus the controller's accounting. faults>0
// drops exactly that many profiler records per device — the whole first
// profiling window, so every plan starts as a width-1 fallback solved from
// nothing. With adaptive=false and a replay schedule the run is the serial
// reference: it re-applies the adaptive arm's width transitions at the same
// boundaries without ever running the controller.
func runAdaptArm(wl *models.Workload, batch, steps int, seed int64, faults int64, compute, adaptive bool, band float64, replay []parallel.PlanSwapEvent) (adaptArm, error) {
	const nDev = 2
	devs := make([]*simgpu.Device, nDev)
	for i := range devs {
		var opts []simgpu.Option
		if faults > 0 {
			plan := simgpu.FaultPlan{Seed: 7, DropRecord: 1.0, MaxFaults: faults}
			opts = append(opts, simgpu.WithInjector(plan.Injector()))
		}
		dev, err := simgpu.NewDeviceChecked(simgpu.TeslaP100, opts...)
		if err != nil {
			return adaptArm{}, err
		}
		devs[i] = dev
	}
	cfg := parallel.Config{
		Solver:  dnn.SolverConfig{BaseLR: 0.001, Momentum: 0.9, WeightDecay: 0.001},
		UseGLP:  true,
		Compute: compute,
		Seed:    seed,
	}
	if adaptive {
		cfg.Adaptive = true
		cfg.DriftBand = band
		if compute {
			cfg.HostPool = hostpool.New(4)
		}
	}
	tr, err := parallel.NewTrainer(simgpu.NewMachineFromDevices(devs...), func(ctx *dnn.Context) (*dnn.Net, error) {
		return wl.Build(ctx, batch, seed)
	}, cfg)
	if err != nil {
		return adaptArm{}, err
	}
	defer tr.Close()

	feeders := map[int]models.Feeder{}
	feed := func(replica int, net *dnn.Net) error {
		f, ok := feeders[replica]
		if !ok {
			f = wl.NewFeeder(batch, 1000+int64(replica)*17)
			feeders[replica] = f
		}
		return f(net)
	}

	var arm adaptArm
	for i := 0; i < steps; i++ {
		for _, ev := range replay {
			if ev.Iter != i {
				continue
			}
			for _, dev := range devs {
				tr.Framework().Runtime(dev).InstallPlan(ev.Key, ev.Streams, true, ev.Fallback, ev.SolvedFrom)
			}
		}
		res, err := tr.Step(feed)
		if err != nil {
			return adaptArm{}, fmt.Errorf("%s step %d: %w", wl.Name, i, err)
		}
		arm.total += res.IterTime
	}
	arm.snap = tr.Framework().Runtime(devs[0]).Ledger().Snapshot()
	arm.events = tr.SwapEvents()
	if compute {
		for _, p := range tr.Net(0).Params() {
			arm.params = append(arm.params, append([]float32(nil), p.Data.Data()...))
		}
	}
	return arm, nil
}

// runAdapt sweeps drift-band × workload: each configuration's first
// profiling window is fully corrupted, the stale arm trains on the
// resulting width-1 fallback plans forever, and the adaptive arm detects
// the drift, shadow-re-profiles, and swaps solved plans in at step
// boundaries. The timeline arms are timing-only; the sweep closes with a
// real-math replay check per workload proving the swap schedule changes
// concurrency and nothing else.
func runAdapt(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	const seed = 5
	steps, replaySteps := 10, 6
	bands := []float64{0.25, core.DefaultDriftBand, 1.0}
	cases := adaptCases
	if cfg.Quick {
		steps = 8
		bands = []float64{core.DefaultDriftBand}
		cases = adaptCases[:1]
	}
	if len(cfg.Networks) > 0 && !cfg.Quick {
		var kept []adaptCase
		for _, c := range cases {
			for _, n := range cfg.Networks {
				if c.name == n {
					kept = append(kept, c)
					break
				}
			}
		}
		cases = kept
	}

	identical := func(a, b [][]float32) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if len(a[i]) != len(b[i]) {
				return false
			}
			for j := range a[i] {
				if math.Float32bits(a[i][j]) != math.Float32bits(b[i][j]) {
					return false
				}
			}
		}
		return true
	}

	fmt.Fprintf(w, "2×P100, %d timing steps per arm; the first profiling window is dropped on every arm,\n", steps)
	fmt.Fprintf(w, "so the stale arm never leaves its width-1 fallback plans\n\n")

	var records []adaptRecord
	var replays []adaptReplay
	tab := newTable("network", "band", "stale", "adaptive", "speedup", "drift", "reprofiles", "swaps")
	for _, c := range cases {
		wl, err := models.Get(c.name)
		if err != nil {
			return err
		}
		// Probe a clean run for the first window's record count — the exact
		// fault budget that corrupts that window and nothing else.
		probe, err := runAdaptArm(wl, c.batch, 2, seed, 0, false, false, 0, nil)
		if err != nil {
			return err
		}
		faults := probe.snap.ProfiledKernels
		if faults == 0 {
			return fmt.Errorf("bench: adapt probe collected no profiler records for %s", c.name)
		}

		stale, err := runAdaptArm(wl, c.batch, steps, seed, faults, false, false, 0, nil)
		if err != nil {
			return err
		}
		for _, band := range bands {
			arm, err := runAdaptArm(wl, c.batch, steps, seed, faults, false, true, band, nil)
			if err != nil {
				return err
			}
			speedup := float64(stale.total) / float64(arm.total)
			tab.addf("%s\t%.2f\t%s ms\t%s ms\t%.2fx\t%d\t%d\t%d",
				c.name, band, ms(stale.total), ms(arm.total), speedup,
				arm.snap.DriftEvents, arm.snap.Reprofiles, arm.snap.PlanSwaps)
			records = append(records, adaptRecord{
				Network: c.name, Band: band, Steps: steps,
				StaleMs: msF(stale.total), AdaptiveMs: msF(arm.total), Speedup: speedup,
				DriftEvents: arm.snap.DriftEvents, Reprofiles: arm.snap.Reprofiles,
				PlanSwaps: arm.snap.PlanSwaps,
			})
			if arm.snap.PlanSwaps == 0 {
				return fmt.Errorf("bench: adapt controller never swapped a plan (%s, band %.2f)", c.name, band)
			}
			if arm.total >= stale.total {
				return fmt.Errorf("bench: adaptive timeline %v not below stale %v (%s, band %.2f)",
					arm.total, stale.total, c.name, band)
			}
		}
	}
	tab.write(w)

	// Convergence invariance: re-run each workload with real math, record
	// the adaptive arm's swap schedule, replay it through a non-adaptive
	// serial reference, and compare the trained parameters bit for bit.
	fmt.Fprintf(w, "\nreplay invariance (%d real-math steps, band %.2f):\n", replaySteps, core.DefaultDriftBand)
	rt := newTable("network", "schedule events", "bitwise")
	for _, c := range cases {
		wl, err := models.Get(c.name)
		if err != nil {
			return err
		}
		probe, err := runAdaptArm(wl, c.batch, 2, seed, 0, true, false, 0, nil)
		if err != nil {
			return err
		}
		arm, err := runAdaptArm(wl, c.batch, replaySteps, seed, probe.snap.ProfiledKernels, true, true, core.DefaultDriftBand, nil)
		if err != nil {
			return err
		}
		ref, err := runAdaptArm(wl, c.batch, replaySteps, seed, probe.snap.ProfiledKernels, true, false, 0, arm.events)
		if err != nil {
			return err
		}
		bit := identical(arm.params, ref.params)
		rt.addf("%s\t%d\t%v", c.name, len(arm.events), bit)
		replays = append(replays, adaptReplay{Network: c.name, Events: len(arm.events), Bitwise: bit})
		if !bit {
			return fmt.Errorf("bench: adaptive plan swaps broke convergence invariance on %s", c.name)
		}
	}
	rt.write(w)

	if cfg.JSONOut != "" {
		report := adaptReport{
			Experiment: "adapt",
			Generated:  time.Now().UTC().Format(time.RFC3339),
			Records:    records,
			Replays:    replays,
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %d records to %s\n", len(records), cfg.JSONOut)
	}
	return nil
}
