package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/dnn"
	"repro/internal/hostpool"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/simgpu"
)

func init() {
	register(&Experiment{
		ID:    "allreduce",
		Title: "Bucketed overlapped all-reduce: exposed comm vs the blocking monolith",
		Paper: "Extension: data-parallel gradient exchange under the paper's " +
			"convergence-invariance bar — buckets retire in reverse layer order and " +
			"their ring reductions hide under the remaining backward pass, so only " +
			"the tail of the comm bill stays on the critical path.",
		Run: runAllReduce,
	})
}

// allReduceRecord is one sweep arm in the JSONOut document.
type allReduceRecord struct {
	Network        string  `json:"network"`
	Replicas       int     `json:"replicas"`
	Bus            string  `json:"bus"`
	BucketKB       int     `json:"bucket_kb"`
	BucketsPerStep float64 `json:"buckets_per_step"`
	BlockingMs     float64 `json:"blocking_comm_ms"`
	ExposedMs      float64 `json:"exposed_comm_ms"`
	OverlappedMs   float64 `json:"overlapped_comm_ms"`
	HiddenFrac     float64 `json:"hidden_frac"`
	Bitwise        bool    `json:"bitwise_vs_blocking"`
}

// allReduceHostReduction records the Phase-2 host-side fold wall-clock:
// the same overlapped training run with the bucket folds executed serially
// versus spread across the shared worker pool.
type allReduceHostReduction struct {
	Workers      int     `json:"workers"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	SerialMsStep float64 `json:"serial_ms_per_step"`
	PooledMsStep float64 `json:"pooled_ms_per_step"`
	Speedup      float64 `json:"speedup"`
	Bitwise      bool    `json:"bitwise"`
}

// allReduceReport is the JSONOut document.
type allReduceReport struct {
	Experiment    string                 `json:"experiment"`
	Generated     string                 `json:"generated"`
	Steps         int                    `json:"steps"`
	Batch         int                    `json:"batch"`
	Records       []allReduceRecord      `json:"records"`
	HostReduction allReduceHostReduction `json:"host_reduction"`
}

// arArm is one training run's outcome.
type arArm struct {
	params [][]float32
	stats  parallel.CommStats
	wall   time.Duration
	steps  int
}

// runAllReduce sweeps replicas × bus × bucket size over one workload,
// comparing each overlapped arm's exposed comm against the blocking
// monolith on the same topology and verifying the trained parameters stay
// bitwise identical. It closes with the Phase-2 host-reduction wall-clock
// micro-benchmark (serial fold vs worker pool — bounded by GOMAXPROCS, so
// a single-core host honestly reports ~1.0x).
func runAllReduce(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	name := "CIFAR10"
	if len(cfg.Networks) > 0 {
		name = cfg.Networks[0]
	}
	wl, err := models.Get(name)
	if err != nil {
		return err
	}

	batch, steps := 8, 4
	replicaSweep := []int{2, 4}
	bucketKBs := []int{64, 256, 1024}
	if cfg.Quick {
		batch, steps = 4, 2
		replicaSweep = []int{2}
		bucketKBs = []int{256}
	}
	buses := []parallel.Bus{parallel.PCIe3, parallel.NVLink1}

	train := func(n int, bus parallel.Bus, bucketKB int, blocking bool, pool *hostpool.Pool) (arArm, error) {
		specs := make([]simgpu.DeviceSpec, n)
		for i := range specs {
			specs[i] = simgpu.TeslaP100
		}
		machine := simgpu.NewMachine(specs...)
		tr, err := parallel.NewTrainer(machine, func(ctx *dnn.Context) (*dnn.Net, error) {
			return wl.Build(ctx, batch, cfg.Seed)
		}, parallel.Config{
			Solver:            dnn.SolverConfig{BaseLR: 0.001, Momentum: 0.9, WeightDecay: 0.001},
			Compute:           true,
			Seed:              cfg.Seed,
			Bus:               bus,
			HostPool:          pool,
			BucketBytes:       int64(bucketKB) << 10,
			BlockingAllReduce: blocking,
		})
		if err != nil {
			return arArm{}, err
		}
		defer tr.Close()
		feeders := map[int]models.Feeder{}
		feed := func(replica int, net *dnn.Net) error {
			f, ok := feeders[replica]
			if !ok {
				f = wl.NewFeeder(batch, cfg.Seed+1+int64(replica)*17)
				feeders[replica] = f
			}
			return f(net)
		}
		start := time.Now()
		for i := 0; i < steps; i++ {
			if _, err := tr.Step(feed); err != nil {
				return arArm{}, err
			}
		}
		wall := time.Since(start)
		var params [][]float32
		for _, p := range tr.Net(0).Params() {
			params = append(params, append([]float32(nil), p.Data.Data()...))
		}
		return arArm{params: params, stats: tr.CommStats(), wall: wall, steps: steps}, nil
	}

	identical := func(a, b [][]float32) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if len(a[i]) != len(b[i]) {
				return false
			}
			for j := range a[i] {
				if math.Float32bits(a[i][j]) != math.Float32bits(b[i][j]) {
					return false
				}
			}
		}
		return true
	}

	fmt.Fprintf(w, "%s, batch %d per replica, %d step(s); exposed = modeled ring time left on the critical path\n\n",
		name, batch, steps)

	var records []allReduceRecord
	tab := newTable("replicas", "bus", "bucket", "buckets/step", "blocking", "exposed", "overlapped", "hidden", "bitwise")
	for _, n := range replicaSweep {
		for _, bus := range buses {
			ref, err := train(n, bus, 0, true, nil)
			if err != nil {
				return err
			}
			blockingPerStep := ref.stats.Exposed / time.Duration(ref.stats.Steps)
			for _, kb := range bucketKBs {
				arm, err := train(n, bus, kb, false, nil)
				if err != nil {
					return err
				}
				st := arm.stats
				exposed := st.Exposed / time.Duration(st.Steps)
				overlapped := st.Overlapped / time.Duration(st.Steps)
				hidden := 0.0
				if total := exposed + overlapped; total > 0 {
					hidden = float64(overlapped) / float64(total)
				}
				bit := identical(ref.params, arm.params)
				tab.addf("%d\t%s\t%d KiB\t%.1f\t%s\t%s\t%s\t%.0f%%\t%v",
					n, bus.Name, kb, st.BucketsPerStep,
					ms(blockingPerStep), ms(exposed), ms(overlapped), hidden*100, bit)
				records = append(records, allReduceRecord{
					Network: name, Replicas: n, Bus: bus.Name, BucketKB: kb,
					BucketsPerStep: st.BucketsPerStep,
					BlockingMs:     msF(blockingPerStep),
					ExposedMs:      msF(exposed),
					OverlappedMs:   msF(overlapped),
					HiddenFrac:     hidden,
					Bitwise:        bit,
				})
				if !bit {
					return fmt.Errorf("bench: allreduce broke convergence invariance (%d replicas, %s, %d KiB)", n, bus.Name, kb)
				}
				if exposed >= blockingPerStep && n > 1 {
					return fmt.Errorf("bench: overlap exposed %v not below blocking %v (%d replicas, %s, %d KiB)",
						exposed, blockingPerStep, n, bus.Name, kb)
				}
			}
		}
	}
	tab.write(w)

	// Phase-2 host reduction: the real float adds behind the modeled ring.
	// Same topology and bucket plan, folds serial versus on the worker pool.
	nHost := replicaSweep[len(replicaSweep)-1]
	serial, err := train(nHost, parallel.PCIe3, 0, false, nil)
	if err != nil {
		return err
	}
	pool := hostpool.Default()
	pooled, err := train(nHost, parallel.PCIe3, 0, false, pool)
	if err != nil {
		return err
	}
	hr := allReduceHostReduction{
		Workers:      pool.Workers(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		SerialMsStep: msF(serial.wall / time.Duration(serial.steps)),
		PooledMsStep: msF(pooled.wall / time.Duration(pooled.steps)),
		Speedup:      float64(serial.wall) / float64(pooled.wall),
		Bitwise:      identical(serial.params, pooled.params),
	}
	fmt.Fprintf(w, "\nPhase-2 host reduction (%d replicas, %d worker(s), GOMAXPROCS %d):\n", nHost, hr.Workers, hr.GOMAXPROCS)
	ht := newTable("fold execution", "wall/step (ms)", "speedup")
	ht.addf("serial inline\t%s\t1.00x", ms(serial.wall/time.Duration(serial.steps)))
	ht.addf("worker pool\t%s\t%.2fx", ms(pooled.wall/time.Duration(pooled.steps)), hr.Speedup)
	ht.write(w)
	fmt.Fprintf(w, "\nfolded parameters bitwise identical: %v\n", hr.Bitwise)
	if !hr.Bitwise {
		return fmt.Errorf("bench: pooled host reduction broke convergence invariance")
	}

	if cfg.JSONOut != "" {
		report := allReduceReport{
			Experiment:    "allreduce",
			Generated:     time.Now().UTC().Format(time.RFC3339),
			Steps:         steps,
			Batch:         batch,
			Records:       records,
			HostReduction: hr,
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %d records to %s\n", len(records), cfg.JSONOut)
	}
	return nil
}
