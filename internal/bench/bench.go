// Package bench is the experiment harness: for every table and figure in
// the paper's evaluation (and the motivation figures of Section 2.2) it
// provides a registered experiment that regenerates the corresponding rows
// or series on the simulated devices. cmd/glp4nn-bench is the CLI front
// end; bench_test.go at the repository root wraps each experiment in a
// testing.B benchmark.
//
// Absolute times come from the simulator and will not equal the authors'
// testbed; the reproduction targets the paper's shapes: who wins, by
// roughly what factor, and where concurrency stops paying (see
// EXPERIMENTS.md for the recorded comparison).
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/dnn"
	"repro/internal/models"
	"repro/internal/simgpu"
)

// Config tunes an experiment run.
type Config struct {
	// Devices restricts the simulated GPUs (paper default: K40C, P100,
	// TitanXP).
	Devices []string
	// Networks restricts the workloads (paper default: all four).
	Networks []string
	// Iterations is the number of measured timing iterations.
	Iterations int
	// Seed drives all synthetic data and initialization.
	Seed int64
	// Quick shrinks batch sizes and sweep ranges so the experiment smoke-
	// runs in seconds (used by unit tests and testing.B wrappers).
	Quick bool
	// JSONOut, when non-empty, makes experiments that support it (currently
	// kernelperf) write their records as a machine-readable JSON file at
	// this path in addition to the human-readable table.
	JSONOut string
	// ConvergenceIters overrides the Fig. 11 training length.
	ConvergenceIters int
}

// withDefaults fills the zero value with paper defaults.
func (c Config) withDefaults() Config {
	if len(c.Devices) == 0 {
		c.Devices = []string{"K40C", "P100", "TitanXP"}
	}
	if len(c.Networks) == 0 {
		c.Networks = append([]string(nil), models.Names...)
	}
	if c.Iterations <= 0 {
		c.Iterations = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ConvergenceIters <= 0 {
		c.ConvergenceIters = 300
		if c.Quick {
			c.ConvergenceIters = 12
		}
	}
	return c
}

func (c Config) batchFor(w *models.Workload) int {
	if c.Quick {
		switch {
		case w.DefaultBatch >= 256:
			return 16
		case w.DefaultBatch >= 100:
			return 16
		default:
			return 8
		}
	}
	return w.DefaultBatch
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Paper string // what the paper reports, for EXPERIMENTS.md context
	Run   func(cfg Config, w io.Writer) error
}

var registry []*Experiment

func register(e *Experiment) { registry = append(registry, e) }

// Get returns the experiment with the given id.
func Get(id string) (*Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
}

// IDs lists registered experiment ids in registration order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// All returns the registry.
func All() []*Experiment { return registry }

// deviceSpecs resolves config device names.
func deviceSpecs(cfg Config) ([]simgpu.DeviceSpec, error) {
	var out []simgpu.DeviceSpec
	for _, name := range cfg.Devices {
		spec, ok := simgpu.DeviceByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown device %q (have %v)", name, simgpu.CatalogNames())
		}
		out = append(out, spec)
	}
	return out, nil
}

// table is a minimal aligned-column writer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...interface{}) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		fmt.Fprintln(w)
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ms formats a duration as milliseconds with three decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6)
}

// buildConvLayerNet builds a single-convolution net matching one Table 5
// row, for the per-layer motivation experiments.
func buildConvLayerNet(row models.LayerRow, batch int, seed int64) (*dnn.Net, error) {
	if batch <= 0 {
		batch = row.N
	}
	ctx := dnn.NewContext(dnn.HostLauncher{}, seed)
	ctx.Compute = false
	cc := dnn.ConvConfig{
		NumOutput: row.Co,
		KernelH:   row.F, KernelW: row.F,
		StrideH: row.S, StrideW: row.S,
		PadH: row.P, PadW: row.P,
		Bias: true, Seed: seed,
	}
	return dnn.NewNet(row.Net+"/"+row.Layer).
		Input("data", batch, row.Ci, row.HW, row.HW).
		Add(dnn.NewConv(row.Layer, cc), []string{"data"}, []string{"out"}).
		Build(ctx)
}

// forwardElapsed measures the virtual time of one timing-only forward pass.
func forwardElapsed(net *dnn.Net, dev *simgpu.Device, l dnn.Launcher) (time.Duration, error) {
	if err := dev.ResetClocks(); err != nil {
		return 0, err
	}
	ctx := dnn.NewContext(l, 1)
	ctx.Compute = false
	if _, err := net.Forward(ctx); err != nil {
		return 0, err
	}
	devT, err := dev.Synchronize()
	if err != nil {
		return 0, err
	}
	if h := dev.HostTime(); h > devT {
		return h, nil
	}
	return devT, nil
}

// iterationElapsed measures one full timing-only training iteration
// (forward + backward + SGD update) through the given solver's context.
func iterationElapsed(s *dnn.Solver, dev *simgpu.Device) (time.Duration, error) {
	if err := dev.ResetClocks(); err != nil {
		return 0, err
	}
	if _, err := s.Step(); err != nil {
		return 0, err
	}
	devT, err := dev.Synchronize()
	if err != nil {
		return 0, err
	}
	if h := dev.HostTime(); h > devT {
		return h, nil
	}
	return devT, nil
}

// layerName extracts the layer from a kernel tag: "conv1/fwd|conv1/n3" and
// "conv1/n3" both map to "conv1".
func layerName(tag string) string {
	if i := strings.IndexByte(tag, '|'); i >= 0 {
		tag = tag[:i]
	}
	if i := strings.IndexByte(tag, '/'); i >= 0 {
		tag = tag[:i]
	}
	return tag
}

// perLayerSpans aggregates a trace into per-layer wall spans (max end −
// min start) in trace order of first appearance.
func perLayerSpans(recs []simgpu.KernelRecord) ([]string, map[string]time.Duration) {
	type span struct {
		lo, hi time.Duration
	}
	spans := map[string]*span{}
	var order []string
	for _, r := range recs {
		name := layerName(r.Tag)
		if name == "" {
			name = r.Name
		}
		s := spans[name]
		if s == nil {
			s = &span{lo: r.Start, hi: r.End}
			spans[name] = s
			order = append(order, name)
		} else {
			if r.Start < s.lo {
				s.lo = r.Start
			}
			if r.End > s.hi {
				s.hi = r.End
			}
		}
	}
	out := map[string]time.Duration{}
	for name, s := range spans {
		out[name] = s.hi - s.lo
	}
	return order, out
}

// sortedKeys returns map keys sorted (generic helpers kept local: the
// module targets Go 1.22 without extra dependencies).
func sortedKeys(m map[string]time.Duration) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
