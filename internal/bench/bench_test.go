package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/simgpu"
)

func quickCfg() Config {
	return Config{Quick: true, Iterations: 1, Seed: 1}
}

func runExp(t *testing.T, id string, cfg Config) string {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Run(cfg, &buf); err != nil {
		t.Fatalf("run %s: %v", id, err)
	}
	out := buf.String()
	if out == "" {
		t.Fatalf("experiment %s produced no output", id)
	}
	return out
}

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact plus the two ablations must be registered.
	want := []string{
		"table1", "table3", "table4", "table5",
		"fig2", "fig3", "fig4", "fig7", "fig8", "fig9", "fig10", "fig11",
		"table6", "ablation-engine", "ablation-pool",
		"ablation-fusion", "ablation-analyzer", "ext-dataparallel", "ext-winograd",
		"chaostrain", "inputpipe",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Fatalf("registry has %d entries, want ≥%d", len(All()), len(want))
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown experiment resolved")
	}
	for _, e := range All() {
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %s is missing metadata", e.ID)
		}
	}
}

func TestStaticTables(t *testing.T) {
	out := runExp(t, "table1", quickCfg())
	for _, want := range []string{"Kepler", "Pascal", "128", "Volta"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q:\n%s", want, out)
		}
	}
	out = runExp(t, "table3", quickCfg())
	for _, want := range []string{"K40C", "P100", "TitanXP", "56 x 64", "HBM2.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 missing %q:\n%s", want, out)
		}
	}
	out = runExp(t, "table4", quickCfg())
	for _, want := range []string{"MNIST", "60000", "1200000", "CIFAR-10"} {
		if !strings.Contains(out, want) {
			t.Errorf("table4 missing %q:\n%s", want, out)
		}
	}
	out = runExp(t, "table5", quickCfg())
	if !strings.Contains(out, "conv_6") || !strings.Contains(out, "227") {
		t.Errorf("table5 incomplete:\n%s", out)
	}
}

func TestFig2QuickShapes(t *testing.T) {
	out := runExp(t, "fig2", quickCfg())
	for _, layer := range []string{"conv1", "conv2", "conv3", "conv4", "conv5"} {
		if !strings.Contains(out, layer) {
			t.Errorf("fig2 missing %s:\n%s", layer, out)
		}
	}
	if !strings.Contains(out, "1.00x") {
		t.Errorf("fig2 missing unit baseline:\n%s", out)
	}
}

func TestFig3TimelineShowsOverlap(t *testing.T) {
	out := runExp(t, "fig3", quickCfg())
	if !strings.Contains(out, "1 stream(s)") || !strings.Contains(out, "4 stream(s)") {
		t.Fatalf("fig3 missing arms:\n%s", out)
	}
	if !strings.Contains(out, "legend") || !strings.Contains(out, "im2col") {
		t.Fatalf("fig3 missing timeline legend:\n%s", out)
	}
	// The 4-stream section must actually use multiple stream rows.
	fourStreams := out[strings.Index(out, "4 stream(s)"):]
	rows := strings.Count(fourStreams, "stream ")
	if rows < 3 {
		t.Fatalf("fig3 4-stream timeline shows %d stream rows:\n%s", rows, out)
	}
}

func TestFig4ReportsPerDeviceOptimum(t *testing.T) {
	cfg := quickCfg()
	cfg.Devices = []string{"K40C", "P100"}
	out := runExp(t, "fig4", cfg)
	if !strings.Contains(out, "K40C") || !strings.Contains(out, "P100") {
		t.Fatalf("fig4 missing device columns:\n%s", out)
	}
}

func TestFig7SpeedupShape(t *testing.T) {
	cfg := quickCfg()
	cfg.Devices = []string{"P100"}
	cfg.Networks = []string{"CIFAR10", "GoogLeNet"}
	out := runExp(t, "fig7", cfg)
	if !strings.Contains(out, "CIFAR10") || !strings.Contains(out, "GoogLeNet") {
		t.Fatalf("fig7 missing networks:\n%s", out)
	}
	if !strings.Contains(out, "x (") {
		t.Fatalf("fig7 missing speedup cells:\n%s", out)
	}
}

func TestFig8StreamsArePositive(t *testing.T) {
	cfg := quickCfg()
	cfg.Devices = []string{"P100"}
	cfg.Networks = []string{"CIFAR10"}
	out := runExp(t, "fig8", cfg)
	for _, layer := range []string{"conv1", "conv2", "conv3"} {
		if !strings.Contains(out, layer) {
			t.Fatalf("fig8 missing %s:\n%s", layer, out)
		}
	}
	// No zero-stream rows: every profiled conv layer must have a plan.
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[0] == "CIFAR10" && fields[2] == "0" {
			t.Fatalf("fig8 reported 0 streams for %s:\n%s", fields[1], out)
		}
	}
}

func TestFig9ComparesBothNets(t *testing.T) {
	cfg := quickCfg()
	out := runExp(t, "fig9", cfg)
	if !strings.Contains(out, "CIFAR10") || !strings.Contains(out, "TitanXP") {
		t.Fatalf("fig9 missing CIFAR10/TitanXP case:\n%s", out)
	}
	if !strings.Contains(out, "Siamese") || !strings.Contains(out, "P100") {
		t.Fatalf("fig9 missing Siamese/P100 case:\n%s", out)
	}
	if !strings.Contains(out, "conv1") {
		t.Fatalf("fig9 missing per-layer rows:\n%s", out)
	}
}

func TestFig10MemoryShape(t *testing.T) {
	cfg := quickCfg()
	cfg.Devices = []string{"P100"}
	cfg.Networks = []string{"Siamese"}
	out := runExp(t, "fig10", cfg)
	if !strings.Contains(out, "mem_cupti") || !strings.Contains(out, "Siamese") {
		t.Fatalf("fig10 incomplete:\n%s", out)
	}
}

func TestTable6OverheadShape(t *testing.T) {
	cfg := quickCfg()
	cfg.Devices = []string{"K40C"}
	cfg.Networks = []string{"CIFAR10"}
	out := runExp(t, "table6", cfg)
	for _, want := range []string{"T_p", "T_a", "T_total", "ratio", "%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table6 missing %q:\n%s", want, out)
		}
	}
}

func TestFig11ConvergenceQuick(t *testing.T) {
	cfg := quickCfg()
	out := runExp(t, "fig11", cfg)
	if !strings.Contains(out, "Caffe loss") || !strings.Contains(out, "GLP4NN loss") {
		t.Fatalf("fig11 missing series:\n%s", out)
	}
	if !strings.Contains(out, "final:") {
		t.Fatalf("fig11 missing summary:\n%s", out)
	}
}

func TestAblations(t *testing.T) {
	out := runExp(t, "ablation-engine", quickCfg())
	if !strings.Contains(out, "no-contention") || !strings.Contains(out, "contention (default)") {
		t.Fatalf("ablation-engine incomplete:\n%s", out)
	}
	out = runExp(t, "ablation-pool", quickCfg())
	if !strings.Contains(out, "GLP4NN analyzer-sized") || !strings.Contains(out, "serial (naive Caffe)") {
		t.Fatalf("ablation-pool incomplete:\n%s", out)
	}
}

func TestExtensionExperiments(t *testing.T) {
	out := runExp(t, "ablation-fusion", quickCfg())
	if !strings.Contains(out, "fusion") || !strings.Contains(out, "Siamese/conv1") {
		t.Fatalf("ablation-fusion incomplete:\n%s", out)
	}
	out = runExp(t, "ablation-analyzer", quickCfg())
	if !strings.Contains(out, "MILP") || !strings.Contains(out, "Greedy") {
		t.Fatalf("ablation-analyzer incomplete:\n%s", out)
	}
	out = runExp(t, "ext-dataparallel", quickCfg())
	if !strings.Contains(out, "GPUs") || !strings.Contains(out, "comm") {
		t.Fatalf("ext-dataparallel incomplete:\n%s", out)
	}
	out = runExp(t, "ext-winograd", quickCfg())
	if !strings.Contains(out, "winograd") || !strings.Contains(out, "im2col") {
		t.Fatalf("ext-winograd incomplete:\n%s", out)
	}
}

func TestChaosTrainQuick(t *testing.T) {
	out := runExp(t, "chaostrain", quickCfg())
	if !strings.Contains(out, "injected") || !strings.Contains(out, "recovery") {
		t.Fatalf("chaostrain missing fault/recovery census:\n%s", out)
	}
	if !strings.Contains(out, "bitwise identical") {
		t.Fatalf("chaostrain did not report convergence invariance:\n%s", out)
	}
}

func TestHelpers(t *testing.T) {
	if layerName("conv1/fwd|conv1/n3") != "conv1" {
		t.Fatal("layerName glp tag")
	}
	if layerName("conv1/n3") != "conv1" {
		t.Fatal("layerName naive tag")
	}
	if layerName("pool1") != "pool1" {
		t.Fatal("layerName bare tag")
	}
	recs := []simgpu.KernelRecord{
		{Tag: "conv1/n0", Start: 10, End: 30},
		{Tag: "conv1/n1", Start: 20, End: 50},
		{Tag: "pool1", Start: 60, End: 80},
	}
	order, spans := perLayerSpans(recs)
	if len(order) != 2 || order[0] != "conv1" {
		t.Fatalf("order = %v", order)
	}
	if spans["conv1"] != 40*time.Nanosecond || spans["pool1"] != 20*time.Nanosecond {
		t.Fatalf("spans = %v", spans)
	}
	tb := newTable("a", "b")
	tb.addf("x\ty")
	var buf bytes.Buffer
	tb.write(&buf)
	if !strings.Contains(buf.String(), "x") {
		t.Fatal("table addf/write")
	}
	if _, err := deviceSpecs(Config{Devices: []string{"nope"}}); err == nil {
		t.Fatal("bad device accepted")
	}
	cfg := Config{}.withDefaults()
	if len(cfg.Devices) != 3 || cfg.Iterations != 3 {
		t.Fatalf("defaults: %+v", cfg)
	}
	w, _ := models.Get("CaffeNet")
	if (Config{Quick: true}).batchFor(w) != 16 {
		t.Fatal("quick batch for CaffeNet")
	}
	if (Config{}).batchFor(w) != 256 {
		t.Fatal("full batch for CaffeNet")
	}
}

// TestInputPipeSmoke: on CaffeNet (the heaviest synthesis), the prefetched
// feed wait must be strictly below the serial baseline's — the pipeline
// really overlaps synthesis with compute — and the trained parameters must
// be bitwise identical (the convergence-invariance bar). The bit-identity
// check is strict on every attempt; the feed-wait comparison is a 3-iter
// wall-clock measurement that scheduler noise on a loaded 1-core box can
// flip, so it gets a few attempts before the test fails.
func TestInputPipeSmoke(t *testing.T) {
	var r InputPipeRow
	for attempt := 1; ; attempt++ {
		rows, err := RunInputPipeRows(Config{Quick: true, Iterations: 3, Seed: 1, Networks: []string{"CaffeNet"}})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 {
			t.Fatalf("got %d rows, want 1", len(rows))
		}
		r = rows[0]
		if !r.Identical {
			t.Fatalf("%s: prefetched training diverged from serial", r.Net)
		}
		if r.Hits+r.Stalls == 0 {
			t.Fatalf("%s: pipeline recorded no deliveries", r.Net)
		}
		if r.CopyOverlap <= 0 {
			t.Fatalf("%s: no copy-stream overlap credited", r.Net)
		}
		if r.PipeFeed < r.SerialFeed {
			break
		}
		if attempt == 3 {
			t.Fatalf("%s: prefetched feed wait %v not below serial %v after %d attempts (hits=%d stalls=%d stall-time=%v)",
				r.Net, r.PipeFeed, r.SerialFeed, attempt, r.Hits, r.Stalls, r.StallTime)
		}
		t.Logf("%s: attempt %d: prefetched feed wait %v not below serial %v; retrying",
			r.Net, attempt, r.PipeFeed, r.SerialFeed)
	}
	t.Logf("%s: serial feed %v → prefetched %v (hits=%d stalls=%d overlap=%v)",
		r.Net, r.SerialFeed, r.PipeFeed, r.Hits, r.Stalls, r.CopyOverlap)
}

// TestServeBenchSmoke: on CIFAR10, dynamic batching must beat the batch=1
// serial arm's throughput (the coalescing win is structural: the serial
// arm runs a full engine forward per request) and every per-request
// answer must be bitwise identical across arms.
func TestAdaptBenchSmoke(t *testing.T) {
	out := runExp(t, "adapt", quickCfg())
	if !strings.Contains(out, "stale") || !strings.Contains(out, "adaptive") {
		t.Fatalf("adapt missing timeline arms:\n%s", out)
	}
	// The experiment hard-fails unless the adaptive arm beats the stale
	// arm with swaps > 0 and the replay is bitwise — reaching the replay
	// table at all means the sweep's own gates passed.
	if !strings.Contains(out, "replay invariance") {
		t.Fatalf("adapt did not run the replay-invariance check:\n%s", out)
	}
}

func TestServeBenchSmoke(t *testing.T) {
	rows, err := RunServeBenchRows(Config{Quick: true, Seed: 1, Networks: []string{"CIFAR10"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if !r.Identical {
		t.Fatalf("%s: dynamic batching changed per-request answer bits", r.Net)
	}
	if r.DynRPS <= r.SerialRPS {
		t.Fatalf("%s: dynamic %.1f req/s did not beat serial %.1f req/s", r.Net, r.DynRPS, r.SerialRPS)
	}
	if r.MeanBatch <= 1 {
		t.Fatalf("%s: dynamic arm never coalesced (mean batch %.2f)", r.Net, r.MeanBatch)
	}
	if r.DynP50 <= 0 || r.DynP99 < r.DynP50 || r.SerialP99 < r.SerialP50 {
		t.Fatalf("%s: malformed latency quantiles: %+v", r.Net, r)
	}
	t.Logf("%s: serial %.1f req/s (p50 %v) → dynamic %.1f req/s (p50 %v, mean batch %.2f)",
		r.Net, r.SerialRPS, r.SerialP50, r.DynRPS, r.DynP50, r.MeanBatch)
}
