package bench

import (
	"fmt"
	"io"
	"math"

	"repro/internal/dnn"
	"repro/internal/hostpool"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/simgpu"
)

func init() {
	register(&Experiment{
		ID:    "chaostrain",
		Title: "Fault-injected training: self-healing runtime, convergence-invariant recovery",
		Paper: "Extension: the paper's bar is that added concurrency must not change trained " +
			"numerics; this experiment raises it to faults — training under a seeded storm of " +
			"launch/sync/DMA/stream-creation failures must reproduce the healthy run bit for bit, " +
			"with the recovery ledger proving the fault paths really fired.",
		Run: runChaosTrain,
	})
}

// runChaosTrain trains one workload on a two-device machine twice — on
// healthy devices and under a seeded per-device fault schedule — and
// reports the injected-fault census, the runtime's recovery ledger, the
// trainer's checkpoint rollbacks, and a bitwise comparison of the trained
// parameters.
func runChaosTrain(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	name := cfg.Networks[0]
	wl, err := models.Get(name)
	if err != nil {
		return err
	}
	spec, ok := simgpu.DeviceByName(cfg.Devices[0])
	if !ok {
		return fmt.Errorf("bench: unknown device %q", cfg.Devices[0])
	}
	batch, steps := 8, 4
	if cfg.Quick {
		batch, steps = 4, 3
	}

	type outcome struct {
		params    [][]float32
		health    []string
		injected  []simgpu.InjectorStats
		rollbacks int
	}
	run := func(inject bool) (*outcome, error) {
		const nDev = 2
		devs := make([]*simgpu.Device, nDev)
		var injectors []*simgpu.PlanInjector
		for i := range devs {
			var opts []simgpu.Option
			if inject {
				in := simgpu.FaultPlan{
					Seed:         cfg.Seed*31 + int64(i),
					Launch:       0.03,
					Sync:         0.15,
					CreateStream: 0.10,
					Memcpy:       0.05,
					MaxFaults:    40,
				}.Injector()
				injectors = append(injectors, in)
				opts = append(opts, simgpu.WithInjector(in))
			}
			dev, err := simgpu.NewDeviceChecked(spec, opts...)
			if err != nil {
				return nil, err
			}
			devs[i] = dev
		}
		machine := simgpu.NewMachineFromDevices(devs...)
		tr, err := parallel.NewTrainer(machine, func(ctx *dnn.Context) (*dnn.Net, error) {
			return wl.Build(ctx, batch, cfg.Seed)
		}, parallel.Config{
			Solver:      dnn.SolverConfig{BaseLR: 0.001, Momentum: 0.9, WeightDecay: 0.001},
			UseGLP:      true,
			Compute:     true,
			Seed:        cfg.Seed,
			HostPool:    hostpool.New(0),
			StepRetries: 16,
		})
		if err != nil {
			return nil, err
		}
		defer tr.Close()
		feeders := make([]models.Feeder, nDev)
		for i := range feeders {
			feeders[i] = wl.NewFeeder(batch, cfg.Seed+100+int64(i)*17)
		}
		feed := func(replica int, net *dnn.Net) error { return feeders[replica](net) }
		for i := 0; i < steps; i++ {
			if _, err := tr.Step(feed); err != nil {
				return nil, fmt.Errorf("step %d did not self-heal: %w", i, err)
			}
		}
		out := &outcome{rollbacks: tr.Rollbacks()}
		for _, p := range tr.Net(0).Params() {
			out.params = append(out.params, append([]float32(nil), p.Data.Data()...))
		}
		for _, dev := range devs {
			out.health = append(out.health, tr.Framework().Runtime(dev).Ledger().Snapshot().Health())
		}
		for _, in := range injectors {
			out.injected = append(out.injected, in.Stats())
		}
		return out, nil
	}

	clean, err := run(false)
	if err != nil {
		return err
	}
	chaos, err := run(true)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "workload %s on 2× %s, batch %d, %d steps, fault seed %d\n\n",
		wl.Name, spec.Name, batch, steps, cfg.Seed)
	for i, st := range chaos.injected {
		fmt.Fprintf(w, "device %d injected: %s\n", i, st)
	}
	for i, h := range chaos.health {
		fmt.Fprintf(w, "device %d recovery: %s\n", i, h)
	}
	fmt.Fprintf(w, "checkpoint rollbacks: %d\n", chaos.rollbacks)

	diffs := 0
	for i := range clean.params {
		for j := range clean.params[i] {
			if math.Float32bits(clean.params[i][j]) != math.Float32bits(chaos.params[i][j]) {
				diffs++
			}
		}
	}
	if diffs != 0 {
		fmt.Fprintf(w, "\nconvergence invariance: VIOLATED (%d parameter elements differ)\n", diffs)
		return fmt.Errorf("bench: chaos run diverged from healthy run in %d elements", diffs)
	}
	fmt.Fprintf(w, "\nconvergence invariance: trained parameters bitwise identical to the healthy run\n")
	return nil
}
