package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dnn"
	"repro/internal/models"
	"repro/internal/simgpu"
)

func init() {
	register(&Experiment{
		ID:    "fig11",
		Title: "Fig. 11: training CIFAR10 on P100 — convergence of GLP4NN-Caffe vs Caffe",
		Paper: "loss/accuracy curves coincide; residual gap is only the batch-shuffle order",
		Run:   runFig11,
	})
}

// convergenceArm trains the CIFAR10 net with real math under the given
// launcher and returns loss/accuracy series sampled every `every` steps.
type convergencePoint struct {
	iter int
	loss float64
	acc  float64
}

func runConvergenceArm(label string, l dnn.Launcher, dev *simgpu.Device, cfg Config, shuffleSeed int64, batch, iters, every int, testData, testLabels []float32) ([]convergencePoint, error) {
	ctx := dnn.NewContext(l, cfg.Seed)
	net, err := models.BuildCIFAR10(ctx, batch, cfg.Seed)
	if err != nil {
		return nil, err
	}
	spec, _ := data.SpecByName("CIFAR-10")
	ds := data.Synthetic(spec, cfg.Seed) // same dataset for both arms
	it := data.NewIterator(ds, data.TrainSplit, batch, shuffleSeed)
	buf := make([]float32, batch*ds.SampleSize())
	labels := make([]float32, batch)

	solver := dnn.NewSolver(net, ctx, dnn.CIFAR10QuickSolver())
	var out []convergencePoint
	evaluate := func(iter int, loss float64) error {
		// Test accuracy on the fixed held-out batch: forward in test phase
		// and score argmax(scores) against labels.
		if err := net.SetInputData("data", testData); err != nil {
			return err
		}
		if err := net.SetInputData("label", testLabels); err != nil {
			return err
		}
		ctx.Phase = dnn.Test
		if _, err := net.Forward(ctx); err != nil {
			return err
		}
		ctx.Phase = dnn.Train
		scores := net.Blob("scores")
		correct := 0
		for i := 0; i < batch; i++ {
			row := scores.SampleData(i)
			arg := 0
			for j, v := range row {
				if v > row[arg] {
					arg = j
				}
			}
			if arg == int(testLabels[i]) {
				correct++
			}
		}
		out = append(out, convergencePoint{iter: iter, loss: loss, acc: float64(correct) / float64(batch)})
		return nil
	}

	loss := 0.0
	for i := 0; i < iters; i++ {
		it.Next(buf, labels)
		if err := net.SetInputData("data", buf); err != nil {
			return nil, err
		}
		if err := net.SetInputData("label", labels); err != nil {
			return nil, err
		}
		loss, err = solver.Step()
		if err != nil {
			return nil, err
		}
		// Reading the loss forces a device synchronization in real Caffe;
		// it also keeps the lazy event engine's queues short.
		if _, err := dev.Synchronize(); err != nil {
			return nil, err
		}
		if (i+1)%every == 0 || i == 0 {
			if err := evaluate(i+1, loss); err != nil {
				return nil, err
			}
		}
	}
	_ = label
	return out, nil
}

func runFig11(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	iters := cfg.ConvergenceIters
	batch := 32
	every := iters / 10
	if every < 1 {
		every = 1
	}
	if cfg.Quick {
		batch = 8
	}

	// Fixed held-out test batch shared by both arms.
	spec, _ := data.SpecByName("CIFAR-10")
	ds := data.Synthetic(spec, cfg.Seed)
	testData := make([]float32, batch*ds.SampleSize())
	testLabels := make([]float32, batch)
	for i := 0; i < batch; i++ {
		label := ds.Sample(data.TestSplit, i, testData[i*ds.SampleSize():(i+1)*ds.SampleSize()], 32, 32)
		testLabels[i] = float32(label)
	}

	// Arm 1: naive Caffe on a simulated P100. Arm 2: GLP4NN on its own
	// P100. Different shuffle seeds reproduce the paper's only source of
	// divergence.
	devA := simgpu.NewDevice(simgpu.TeslaP100, simgpu.WithTraceLimit(1))
	caffe, err := runConvergenceArm("Caffe", dnn.SerialLauncher{Dev: devA}, devA, cfg, cfg.Seed+100, batch, iters, every, testData, testLabels)
	if err != nil {
		return err
	}
	devB := simgpu.NewDevice(simgpu.TeslaP100, simgpu.WithTraceLimit(1))
	fw := core.New()
	defer fw.Close()
	glp, err := runConvergenceArm("GLP4NN", fw.Runtime(devB), devB, cfg, cfg.Seed+200, batch, iters, every, testData, testLabels)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "CIFAR10 (synthetic data, N=%d) on P100: convergence, %d iterations\n", batch, iters)
	t := newTable("Iteration", "Caffe loss", "GLP4NN loss", "Caffe acc", "GLP4NN acc")
	for i := range caffe {
		g := glp[min(i, len(glp)-1)]
		t.add(fmt.Sprintf("%d", caffe[i].iter),
			fmt.Sprintf("%.4f", caffe[i].loss),
			fmt.Sprintf("%.4f", g.loss),
			fmt.Sprintf("%.3f", caffe[i].acc),
			fmt.Sprintf("%.3f", g.acc))
	}
	t.write(w)

	lastC, lastG := caffe[len(caffe)-1], glp[len(glp)-1]
	fmt.Fprintf(w, "final: Caffe loss %.4f acc %.3f | GLP4NN loss %.4f acc %.3f (divergence from shuffle order only)\n",
		lastC.loss, lastC.acc, lastG.loss, lastG.acc)
	return nil
}
