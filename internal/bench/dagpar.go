package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/dnn"
	"repro/internal/hostpool"
	"repro/internal/models"
)

func init() {
	register(&Experiment{
		ID:    "dagpar",
		Title: "Operator DAG scheduler: inter-layer parallel wall-clock",
		Paper: "Extension: GLP4NN parallelizes within a layer (batch chains over streams); " +
			"the operator DAG adds the orthogonal axis — independent layers execute " +
			"concurrently — under the same convergence-invariance bar (bitwise-identical " +
			"trained parameters).",
		Run: runDAGParallel,
	})
}

// ForkLayerSession lets the DAG scheduler run concurrent layer sessions on
// the bench launcher (stateless, so the fork is itself).
func (l widthLauncher) ForkLayerSession() any { return l }

// mlpBuilder is a deliberately chain-shaped control: every layer depends
// on the previous one, so the DAG scheduler must detect MaxWavefront 1 and
// fall back to the exact serial path (zero overhead, zero gain).
func mlpBuilder(ctx *dnn.Context, batch int, seed int64) (*dnn.Net, error) {
	i1 := dnn.IP(256)
	i1.Seed = seed
	i2 := dnn.IP(10)
	i2.Seed = seed + 1
	return dnn.NewNet("MLP").
		Input("data", batch, 1, 28, 28).
		Input("label", batch).
		Add(dnn.NewIP("ip1", i1), []string{"data"}, []string{"h"}).
		Add(dnn.NewReLU("relu1"), []string{"h"}, []string{"hr"}).
		Add(dnn.NewIP("ip2", i2), []string{"hr"}, []string{"scores"}).
		Add(dnn.NewSoftmaxLoss("loss"), []string{"scores", "label"}, []string{"loss"}).
		Build(ctx)
}

// runDAGParallel trains GoogLeNet (nine inception modules, up to six
// independent layers at once) and a chain MLP (no inter-layer parallelism
// at all) serially and under the operator DAG scheduler, reporting host
// wall-clock per step, the DAG's shape, and the bitwise parameter
// comparison. Speedup requires a multi-core host — the concurrent layer
// bodies are real goroutines — and appears only where the net has
// concurrent layers to offer; bit-identity must hold everywhere.
func runDAGParallel(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	batch, width, steps := 8, 4, 2
	if cfg.Quick {
		batch, width, steps = 4, 2, 1
	}

	type netCase struct {
		name  string
		build func(ctx *dnn.Context) (*dnn.Net, error)
	}
	cases := []netCase{
		{"GoogLeNet", func(ctx *dnn.Context) (*dnn.Net, error) {
			wl, err := models.Get("GoogLeNet")
			if err != nil {
				return nil, err
			}
			return wl.Build(ctx, batch, cfg.Seed)
		}},
		{"MLP (chain)", func(ctx *dnn.Context) (*dnn.Net, error) {
			return mlpBuilder(ctx, batch, cfg.Seed)
		}},
	}

	fmt.Fprintf(w, "batch %d, chain width %d, %d step(s), %d worker(s) (GOMAXPROCS %d)\n\n",
		batch, width, steps, hostpool.Default().Workers(), runtime.GOMAXPROCS(0))

	for _, c := range cases {
		train := func(dag bool, pool *hostpool.Pool) ([][]float32, time.Duration, *dnn.Net, error) {
			ctx := dnn.NewContext(widthLauncher{width}, cfg.Seed)
			ctx.Pool = pool
			net, err := c.build(ctx)
			if err != nil {
				return nil, 0, nil, err
			}
			net.EnableDAG(dag)
			feed := feederFor(c.name, batch, cfg.Seed+1)
			s := dnn.NewSolver(net, ctx, dnn.SolverConfig{BaseLR: 0.001, Momentum: 0.9, WeightDecay: 0.001})
			// One untimed warm-up step: scratch arenas and pool lanes
			// initialize lazily, and that cost must not masquerade as a
			// schedule difference.
			if err := feed(net); err != nil {
				return nil, 0, nil, err
			}
			if _, err := s.Step(); err != nil {
				return nil, 0, nil, err
			}
			start := time.Now()
			for i := 0; i < steps; i++ {
				if err := feed(net); err != nil {
					return nil, 0, nil, err
				}
				if _, err := s.Step(); err != nil {
					return nil, 0, nil, err
				}
			}
			wall := time.Since(start)
			var params [][]float32
			for _, p := range net.Params() {
				params = append(params, append([]float32(nil), p.Data.Data()...))
			}
			return params, wall, net, nil
		}

		serialParams, serialWall, net, err := train(false, nil)
		if err != nil {
			return err
		}
		dagParams, dagWall, _, err := train(true, nil)
		if err != nil {
			return err
		}
		pooledParams, pooledWall, _, err := train(true, hostpool.Default())
		if err != nil {
			return err
		}

		if st, err := net.DAGStats(); err == nil {
			fmt.Fprintf(w, "%s — %s\n", c.name, st)
		}
		t := newTable("execution", "wall/step (ms)", "speedup")
		t.addf("serial\t%s\t1.00x", ms(serialWall/time.Duration(steps)))
		t.addf("operator DAG\t%s\t%.2fx", ms(dagWall/time.Duration(steps)),
			float64(serialWall)/float64(dagWall))
		t.addf("operator DAG + worker pool\t%s\t%.2fx", ms(pooledWall/time.Duration(steps)),
			float64(serialWall)/float64(pooledWall))
		t.write(w)

		identical := paramsBitwiseEqual(serialParams, dagParams) &&
			paramsBitwiseEqual(serialParams, pooledParams)
		fmt.Fprintf(w, "trained parameters bitwise identical: %v\n\n", identical)
		if !identical {
			return fmt.Errorf("bench: dagpar broke convergence invariance on %s (parameters differ)", c.name)
		}
	}
	return nil
}

// feederFor returns the registered workload's feeder, or a synthetic
// MNIST-shaped feeder for the inline MLP.
func feederFor(name string, batch int, seed int64) models.Feeder {
	if wl, err := models.Get(name); err == nil {
		return wl.NewFeeder(batch, seed)
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float32, batch*28*28)
	labels := make([]float32, batch)
	return func(net *dnn.Net) error {
		for i := range vals {
			vals[i] = float32(rng.NormFloat64())
		}
		for i := range labels {
			labels[i] = float32(rng.Intn(10))
		}
		if err := net.SetInputData("data", vals); err != nil {
			return err
		}
		return net.SetInputData("label", labels)
	}
}

func paramsBitwiseEqual(a, b [][]float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float32bits(a[i][j]) != math.Float32bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}
