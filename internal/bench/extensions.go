package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/simgpu"
)

func init() {
	register(&Experiment{
		ID:    "ablation-fusion",
		Title: "Extension: kernel fusion for small kernels (paper future-work 2)",
		Paper: "(future work) fusing sub-threshold chain kernels should help small layers most",
		Run:   runAblationFusion,
	})
	register(&Experiment{
		ID:    "ext-dataparallel",
		Title: "Extension: synchronous data-parallel training across the machine's GPUs (paper future-work 3)",
		Paper: "(future work) distributed implementation; per-GPU GLP4NN + ring all-reduce",
		Run:   runExtDataParallel,
	})
}

// runAblationFusion measures the Fig. 9 regression layers (CIFAR10 conv1,
// Siamese conv1 — tiny per-image kernels) under serial dispatch, a fixed
// pool, and a fixed pool with chain-local kernel fusion.
func runAblationFusion(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	rows := []models.LayerRow{
		models.Rows("CIFAR10")[0],
		models.Rows("Siamese")[0],
		models.Rows("CaffeNet")[4], // a large layer, where fusion should be neutral
	}
	batch := 0
	if cfg.Quick {
		batch = 8
	}
	t := newTable("Layer", "serial (ms)", "8 streams (ms)", "8 streams + fusion (ms)", "fusion vs streams")
	for _, row := range rows {
		net, err := buildConvLayerNet(row, batch, cfg.Seed)
		if err != nil {
			return err
		}
		measure := func(mk func(dev *simgpu.Device) dnn.Launcher) (time.Duration, error) {
			dev := simgpu.NewDevice(simgpu.TeslaP100)
			l := mk(dev)
			if _, err := forwardElapsed(net, dev, l); err != nil { // warm scratch
				return 0, err
			}
			return forwardElapsed(net, dev, l)
		}
		serial, err := measure(func(dev *simgpu.Device) dnn.Launcher { return dnn.SerialLauncher{Dev: dev} })
		if err != nil {
			return err
		}
		pooled, err := measure(func(dev *simgpu.Device) dnn.Launcher { return core.NewFixedLauncher(dev, 8) })
		if err != nil {
			return err
		}
		fused, err := measure(func(dev *simgpu.Device) dnn.Launcher {
			return core.NewFusingLauncher(core.NewFixedLauncher(dev, 8), dev.Spec(), 0)
		})
		if err != nil {
			return err
		}
		t.add(fmt.Sprintf("%s/%s", row.Net, row.Layer), ms(serial), ms(pooled), ms(fused),
			fmt.Sprintf("%.2fx", float64(pooled)/float64(fused)))
	}
	fmt.Fprintln(w, "Kernel fusion on P100 forward passes (threshold 3×T_launch)")
	t.write(w)
	fmt.Fprintln(w, "Small layers (the paper's Fig. 9 losers) gain most; large layers are unaffected.")
	return nil
}

// runExtDataParallel scales a fixed global batch across 1..3 P100s with the
// ring all-reduce cost model, with and without GLP4NN inside each replica.
func runExtDataParallel(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	globalBatch := 96
	warmups := 1
	if cfg.Quick {
		globalBatch = 24
	}
	t := newTable("GPUs", "shard", "naive iter (ms)", "glp4nn iter (ms)", "comm (ms)", "scaling (naive)")
	var base time.Duration
	for _, n := range []int{1, 2, 3} {
		shard := globalBatch / n
		iter := func(useGLP bool) (parallel.StepResult, error) {
			specs := make([]simgpu.DeviceSpec, n)
			for i := range specs {
				specs[i] = simgpu.TeslaP100
			}
			machine := simgpu.NewMachine(specs...)
			tr, err := parallel.NewTrainer(machine, func(ctx *dnn.Context) (*dnn.Net, error) {
				return models.BuildCIFAR10(ctx, shard, cfg.Seed)
			}, parallel.Config{Solver: dnn.CIFAR10QuickSolver(), UseGLP: useGLP, Seed: cfg.Seed})
			if err != nil {
				return parallel.StepResult{}, err
			}
			defer tr.Close()
			var res parallel.StepResult
			reps := warmups + cfg.Iterations
			if useGLP {
				reps += 2 // profiling + analysis
			}
			for i := 0; i < reps; i++ {
				res, err = tr.Step(nil)
				if err != nil {
					return res, err
				}
			}
			return res, nil
		}
		naive, err := iter(false)
		if err != nil {
			return err
		}
		glp, err := iter(true)
		if err != nil {
			return err
		}
		if n == 1 {
			base = naive.IterTime
		}
		t.add(fmt.Sprintf("%d", n), fmt.Sprintf("%d", shard),
			ms(naive.IterTime), ms(glp.IterTime), ms(naive.CommTime),
			fmt.Sprintf("%.2fx", float64(base)/float64(naive.IterTime)))
	}
	fmt.Fprintf(w, "CIFAR10 global batch %d sharded over P100s, %s all-reduce\n", globalBatch, parallel.PCIe3.Name)
	t.write(w)
	return nil
}

func init() {
	register(&Experiment{
		ID:    "ablation-analyzer",
		Title: "Ablation: MILP analytical model vs greedy concurrency model",
		Paper: "(design choice) the paper's kernel analyzer is customizable; MILP is the exact optimum",
		Run:   runAblationAnalyzer,
	})
}

// runAblationAnalyzer trains CIFAR10 timing-only under both concurrency
// models and compares per-layer stream choices and iteration time.
func runAblationAnalyzer(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	net, wl, err := buildWorkloadNet("CIFAR10", cfg)
	if err != nil {
		return err
	}
	spec := simgpu.TeslaP100

	type armOut struct {
		iter  time.Duration
		plans map[string]int
	}
	run := func(model core.Model) (armOut, error) {
		dev := simgpu.NewDevice(spec)
		fw := core.NewWithModel(model)
		defer fw.Close()
		rt := fw.Runtime(dev)
		ctx := dnn.NewContext(rt, cfg.Seed)
		ctx.Compute = false
		s := dnn.NewSolver(net, ctx, dnn.CIFAR10QuickSolver())
		for i := 0; i < 2; i++ { // profile + analyze
			if _, err := iterationElapsed(s, dev); err != nil {
				return armOut{}, err
			}
		}
		var total time.Duration
		for i := 0; i < cfg.Iterations; i++ {
			d, err := iterationElapsed(s, dev)
			if err != nil {
				return armOut{}, err
			}
			total += d
		}
		out := armOut{iter: total / time.Duration(cfg.Iterations), plans: map[string]int{}}
		for _, p := range rt.Plans() {
			out.plans[p.Key] = p.Streams
		}
		return out, nil
	}

	milp, err := run(core.MILPModel{})
	if err != nil {
		return err
	}
	greedy, err := run(core.GreedyModel{})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "CIFAR10 (N=%d) on P100: per-layer stream choices by concurrency model\n", cfg.batchFor(wl))
	t := newTable("Layer (fwd)", "MILP streams", "Greedy streams")
	for _, row := range models.Rows("CIFAR10") {
		key := row.Layer + "/fwd"
		t.add(row.Layer, fmt.Sprintf("%d", milp.plans[key]), fmt.Sprintf("%d", greedy.plans[key]))
	}
	t.write(w)
	fmt.Fprintf(w, "training iteration: MILP %sms vs greedy %sms\n", ms(milp.iter), ms(greedy.iter))
	return nil
}

func init() {
	register(&Experiment{
		ID:    "ext-winograd",
		Title: "Extension: Winograd F(2x2,3x3) convolution under GLP4NN-style concurrency",
		Paper: "(related work [22]) arithmetic reduction is orthogonal to kernel concurrency; gains stack",
		Run:   runExtWinograd,
	})
}

// runExtWinograd measures a CaffeNet 3×3 layer under both conv engines,
// serially and with a stream pool: the paper positions GLP4NN as orthogonal
// to arithmetic-complexity work, and here the two combine.
func runExtWinograd(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	row := models.Rows("CaffeNet")[3] // conv4: 3×3, 384→384 @13×13
	batch := row.N
	if cfg.Quick {
		batch = 16
	}
	build := func(engine string) (*dnn.Net, error) {
		ctx := dnn.NewContext(dnn.HostLauncher{}, cfg.Seed)
		ctx.Compute = false
		cc := dnn.ConvConfig{
			NumOutput: row.Co, KernelH: row.F, KernelW: row.F,
			StrideH: row.S, StrideW: row.S, PadH: row.P, PadW: row.P,
			Bias: true, Seed: cfg.Seed, Engine: engine,
		}
		return dnn.NewNet(row.Layer+"-"+engine).
			Input("data", batch, row.Ci, row.HW, row.HW).
			Add(dnn.NewConv(row.Layer, cc), []string{"data"}, []string{"out"}).
			Build(ctx)
	}
	measure := func(net *dnn.Net, streams int) (time.Duration, error) {
		dev := simgpu.NewDevice(simgpu.TeslaP100)
		var l dnn.Launcher
		if streams <= 1 {
			l = dnn.SerialLauncher{Dev: dev}
		} else {
			l = core.NewFixedLauncher(dev, streams)
		}
		if _, err := forwardElapsed(net, dev, l); err != nil {
			return 0, err
		}
		return forwardElapsed(net, dev, l)
	}

	t := newTable("Engine", "serial (ms)", "8 streams (ms)", "stream speedup")
	var serialIm2col time.Duration
	for _, engine := range []string{"im2col", "winograd"} {
		net, err := build(engine)
		if err != nil {
			return err
		}
		s1, err := measure(net, 1)
		if err != nil {
			return err
		}
		s8, err := measure(net, 8)
		if err != nil {
			return err
		}
		if engine == "im2col" {
			serialIm2col = s1
		}
		t.add(engine, ms(s1), ms(s8), fmt.Sprintf("%.2fx", float64(s1)/float64(s8)))
		if engine == "winograd" {
			fmt.Fprintf(w, "combined (winograd + 8 streams) vs baseline (im2col serial): %.2fx\n",
				float64(serialIm2col)/float64(s8))
		}
	}
	fmt.Fprintf(w, "CaffeNet %s (N=%d) forward on P100\n", row.Layer, batch)
	t.write(w)
	return nil
}
