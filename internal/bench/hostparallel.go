package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"repro/internal/dnn"
	"repro/internal/hostpool"
	"repro/internal/models"
	"repro/internal/simgpu"
)

func init() {
	register(&Experiment{
		ID:    "hostpar",
		Title: "Host-side parallel execution engine: wall-clock speedup",
		Paper: "Extension: the simulator's host math is the reproduction's real cost; " +
			"running independent kernel chains on a worker pool is this repo's analogue " +
			"of the paper's stream-level concurrency, with the same convergence-invariance bar.",
		Run: runHostParallel,
	})
}

// widthLauncher is HostLauncher with a configurable chain width: kernels run
// inline (or are offloaded by the context's pool), layers size per-chain
// scratch by Width.
type widthLauncher struct{ w int }

func (widthLauncher) BeginLayer(string) {}

func (widthLauncher) Launch(k *simgpu.Kernel, _ int) error {
	if k.Fn != nil {
		k.Fn()
	}
	return nil
}

func (widthLauncher) Sync() error { return nil }

func (l widthLauncher) Width() int { return l.w }

// runHostParallel trains the same workload twice — chain closures inline
// versus offloaded to the shared worker pool — and reports host wall-clock
// per training step plus a bitwise comparison of the trained parameters.
// Speedup requires a multi-core host (the pool is bounded by GOMAXPROCS);
// bit-identity must hold everywhere.
func runHostParallel(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	name := "CIFAR10"
	if len(cfg.Networks) > 0 {
		name = cfg.Networks[0]
	}
	wl, err := models.Get(name)
	if err != nil {
		return err
	}
	batch, width, steps := 32, 8, 3
	if cfg.Quick {
		batch, width, steps = 8, 4, 1
	}

	train := func(pool *hostpool.Pool) ([][]float32, time.Duration, error) {
		ctx := dnn.NewContext(widthLauncher{width}, cfg.Seed)
		ctx.Pool = pool
		net, err := wl.Build(ctx, batch, cfg.Seed)
		if err != nil {
			return nil, 0, err
		}
		feed := wl.NewFeeder(batch, cfg.Seed+1)
		s := dnn.NewSolver(net, ctx, dnn.SolverConfig{BaseLR: 0.001, Momentum: 0.9, WeightDecay: 0.001})
		start := time.Now()
		for i := 0; i < steps; i++ {
			if err := feed(net); err != nil {
				return nil, 0, err
			}
			if _, err := s.Step(); err != nil {
				return nil, 0, err
			}
		}
		wall := time.Since(start)
		var params [][]float32
		for _, p := range net.Params() {
			params = append(params, append([]float32(nil), p.Data.Data()...))
		}
		return params, wall, nil
	}

	serialParams, serialWall, err := train(nil)
	if err != nil {
		return err
	}
	pooledParams, pooledWall, err := train(hostpool.Default())
	if err != nil {
		return err
	}

	identical := len(serialParams) == len(pooledParams)
	for i := 0; identical && i < len(serialParams); i++ {
		identical = len(serialParams[i]) == len(pooledParams[i])
		for j := 0; identical && j < len(serialParams[i]); j++ {
			identical = math.Float32bits(serialParams[i][j]) == math.Float32bits(pooledParams[i][j])
		}
	}

	fmt.Fprintf(w, "%s, batch %d, chain width %d, %d step(s), %d worker(s) (GOMAXPROCS %d)\n\n",
		name, batch, width, steps, hostpool.Default().Workers(), runtime.GOMAXPROCS(0))
	t := newTable("execution", "wall/step (ms)", "speedup")
	t.addf("serial inline\t%s\t1.00x", ms(serialWall/time.Duration(steps)))
	t.addf("worker pool\t%s\t%.2fx", ms(pooledWall/time.Duration(steps)),
		float64(serialWall)/float64(pooledWall))
	t.write(w)
	fmt.Fprintf(w, "\ntrained parameters bitwise identical: %v\n", identical)
	if !identical {
		return fmt.Errorf("bench: hostpar broke convergence invariance (parameters differ)")
	}
	return nil
}
