package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/models"
	"repro/internal/simgpu"
)

func init() {
	register(&Experiment{
		ID:    "inputpipe",
		Title: "Asynchronous input pipeline: feed stall with and without prefetch",
		Paper: "Extension: the paper feeds batches synchronously (Caffe's data layer); " +
			"the async pipeline synthesizes batch t+1 while batch t computes and stages " +
			"the H2D copy on a dedicated stream. Bit-identity of the trained parameters " +
			"is the checked claim; the feed-stall reduction is the measured one.",
		Run: runInputPipe,
	})
}

// InputPipeRow is one workload's serial-versus-prefetched comparison.
type InputPipeRow struct {
	Net         string
	Iters       int
	SerialFeed  time.Duration // mean per-iteration wall time blocked in the inline feeder
	PipeFeed    time.Duration // same, with the asynchronous pipeline
	SerialWall  time.Duration // total training wall clock, inline
	PipeWall    time.Duration // total training wall clock, prefetched
	Hits        int64
	Stalls      int64
	StallTime   time.Duration
	CopyOverlap time.Duration // modeled copy time issued off the critical path
	Identical   bool          // trained parameters bitwise equal
}

// trainInputPipe trains one workload through the GLP4NN runtime and
// reports feed-wait, wall clock, pipeline counters and final parameters.
func trainInputPipe(name string, batch, iters int, seed int64, prefetch bool) (row InputPipeRow, params [][]float32, err error) {
	wl, err := models.Get(name)
	if err != nil {
		return row, nil, err
	}
	spec, _ := simgpu.DeviceByName("P100")
	dev := simgpu.NewDevice(spec, simgpu.WithTraceLimit(1))
	fw := core.New()
	defer fw.Close()
	rt := fw.Runtime(dev)
	ctx := dnn.NewContext(rt, seed)
	ctx.Compute = true
	net, err := wl.Build(ctx, batch, seed)
	if err != nil {
		return row, nil, err
	}
	feed := wl.NewFeeder(batch, seed+1)
	var pipe *models.InputPipe
	if prefetch {
		pipe, err = models.NewInputPipe(name, batch, seed+1, models.PipeConfig{Observer: rt.Ledger()})
		if err != nil {
			return row, nil, err
		}
		defer pipe.Close()
		feed = pipe.Feed
	}
	solver := dnn.NewSolver(net, ctx, dnn.CIFAR10QuickSolver())

	var feedWait time.Duration
	start := time.Now()
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		if err := feed(net); err != nil {
			return row, nil, err
		}
		feedWait += time.Since(t0)
		if err := dev.ResetClocks(); err != nil {
			return row, nil, err
		}
		if prefetch {
			err = net.StageInputs(ctx)
		} else {
			err = net.UploadInputs(ctx)
		}
		if err != nil {
			return row, nil, err
		}
		if _, err := solver.Step(); err != nil {
			return row, nil, err
		}
		if _, err := dev.Synchronize(); err != nil {
			return row, nil, err
		}
	}
	row = InputPipeRow{
		Net:        name,
		Iters:      iters,
		SerialFeed: feedWait / time.Duration(iters),
		SerialWall: time.Since(start),
	}
	if pipe != nil {
		st := pipe.Stats()
		snap := rt.Ledger().Snapshot()
		row.Hits, row.Stalls, row.StallTime = st.Hits, st.Stalls, st.StallTime
		row.CopyOverlap = time.Duration(snap.CopyOverlapNs)
	}
	for _, p := range net.Params() {
		params = append(params, append([]float32(nil), p.Data.Data()...))
	}
	return row, params, nil
}

// RunInputPipeRows runs the serial/prefetched pair for each configured
// workload and returns the comparison rows (exported for the smoke test).
func RunInputPipeRows(cfg Config) ([]InputPipeRow, error) {
	cfg = cfg.withDefaults()
	iters := cfg.Iterations
	var rows []InputPipeRow
	for _, name := range cfg.Networks {
		wl, err := models.Get(name)
		if err != nil {
			return nil, err
		}
		// Real host math at full paper batches is minutes per CaffeNet
		// iteration; the feed-overlap shape survives shrinking.
		batch := cfg.batchFor(wl)
		if batch > 16 {
			batch = 16
		}
		if cfg.Quick {
			batch = 4
			if wl.DefaultBatch >= 256 {
				batch = 2
			}
		}
		serial, sp, err := trainInputPipe(name, batch, iters, cfg.Seed, false)
		if err != nil {
			return nil, err
		}
		piped, pp, err := trainInputPipe(name, batch, iters, cfg.Seed, true)
		if err != nil {
			return nil, err
		}
		row := piped
		row.SerialFeed, row.PipeFeed = serial.SerialFeed, piped.SerialFeed
		row.SerialWall, row.PipeWall = serial.SerialWall, piped.SerialWall
		row.Identical = paramsEqual(sp, pp)
		rows = append(rows, row)
	}
	return rows, nil
}

func paramsEqual(a, b [][]float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float32bits(a[i][j]) != math.Float32bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

func runInputPipe(cfg Config, w io.Writer) error {
	rows, err := RunInputPipeRows(cfg)
	if err != nil {
		return err
	}
	tb := newTable("net", "iters", "serial feed/iter", "prefetch feed/iter", "serial wall", "prefetch wall",
		"hits", "stalls", "stall-time", "copy-overlap", "bits")
	for _, r := range rows {
		bits := "IDENTICAL"
		if !r.Identical {
			bits = "DIVERGED"
		}
		tb.addf("%s\t%d\t%s ms\t%s ms\t%s ms\t%s ms\t%d\t%d\t%s ms\t%s ms\t%s",
			r.Net, r.Iters, ms(r.SerialFeed), ms(r.PipeFeed), ms(r.SerialWall), ms(r.PipeWall),
			r.Hits, r.Stalls, ms(r.StallTime), ms(r.CopyOverlap), bits)
	}
	tb.write(w)
	fmt.Fprintln(w, "\nfeed/iter = host wall time the training loop spends blocked in feed();")
	fmt.Fprintln(w, "prefetch synthesizes the next batch while the current one computes, so its")
	fmt.Fprintln(w, "feed wait collapses to the blob copy. copy-overlap is the modeled device")
	fmt.Fprintln(w, "time of input H2D copies issued on the dedicated copy stream instead of the")
	fmt.Fprintln(w, "default-stream critical path. Wall-clock gains need free host cores; the")
	fmt.Fprintln(w, "checked claim is bit-identity of the trained parameters ('bits' column).")
	return nil
}
