package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"time"

	"repro/internal/tensor"
)

func init() {
	register(&Experiment{
		ID:    "kernelperf",
		Title: "Host kernel engine: ISA dispatch ladder × fused epilogues, Table 5 geometries",
		Paper: "Extension: the simulated kernels' host math dominates reproduction wall-clock; " +
			"every rung of the runtime-dispatched micro-kernel ladder (purego → sse2 → avx2) " +
			"and the fused bias+ReLU epilogue must beat the rung/passes below them while " +
			"staying bit-identical to the naive triple loop plus separate passes.",
		Run: runKernelPerf,
	})
}

// kernelGemmShapes are the M×N×K GEMMs of representative Table 5 forward
// convolutions (M=Co, N=OutH·OutW, K=Ci·Kh·Kw).
var kernelGemmShapes = []struct {
	name    string
	m, n, k int
}{
	{"CIFAR10 conv1", 32, 1024, 75},
	{"CaffeNet conv1", 96, 3025, 363},
	{"CaffeNet conv2", 128, 729, 1200},
	{"GoogLeNet 3a/1", 64, 784, 192},
}

// naiveGemm is the pre-optimization reference: the plain ikj triple loop
// with the alpha·a==0 skip, written out independently of internal/tensor so
// the comparison cannot accidentally time the same code twice.
func naiveGemm(m, n, k int, alpha float32, a, b []float32, c []float32) {
	for i := 0; i < m; i++ {
		ci := c[i*n : (i+1)*n]
		for x := range ci {
			ci[x] = 0
		}
		for l := 0; l < k; l++ {
			av := alpha * a[i*k+l]
			if av == 0 {
				continue
			}
			bl := b[l*n : (l+1)*n]
			for j, bv := range bl {
				ci[j] += av * bv
			}
		}
	}
}

// kernelPerfRecord is one machine-readable sweep point: a (shape, ISA level)
// pair with the timings of every arm in milliseconds.
type kernelPerfRecord struct {
	Shape string `json:"shape"`
	M     int    `json:"m"`
	N     int    `json:"n"`
	K     int    `json:"k"`
	ISA   string `json:"isa"`
	// NaiveMs is the ISA-independent triple-loop baseline for this shape.
	NaiveMs float64 `json:"naive_ms"`
	// GemmMs is the blocked GEMM alone at this ISA level.
	GemmMs float64 `json:"gemm_ms"`
	// SeparateMs is blocked GEMM + bias pass + ReLU pass, each its own
	// sweep over C (the unfused operator sequence).
	SeparateMs float64 `json:"separate_ms"`
	// FusedMs is GemmFused with the bias+ReLU epilogue applied per row
	// segment while C is cache-hot.
	FusedMs float64 `json:"fused_ms"`
	// SpeedupVsNaive is NaiveMs/GemmMs; FusionSpeedup is SeparateMs/FusedMs.
	SpeedupVsNaive float64 `json:"speedup_vs_naive"`
	FusionSpeedup  float64 `json:"fusion_speedup"`
	Bitwise        bool    `json:"bitwise"`
}

// kernelPerfReport is the JSONOut document.
type kernelPerfReport struct {
	Experiment  string             `json:"experiment"`
	Generated   string             `json:"generated"`
	Reps        int                `json:"reps"`
	DetectedISA string             `json:"detected_isa"`
	Records     []kernelPerfRecord `json:"records"`
}

// runKernelPerf sweeps every runnable ISA level × {plain, separate-passes,
// fused-epilogue} over each shape, verifying bitwise identity of every arm
// against the naive loop (plus the same passes run separately) and reporting
// per-rung and per-fusion speedups. With cfg.JSONOut set, the sweep is also
// written as JSON.
func runKernelPerf(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	reps := 5
	if cfg.Quick {
		reps = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	levels := tensor.AvailableISAs()
	prev := tensor.ActiveISA()
	defer func() { _ = tensor.SetISA(prev) }()

	fmt.Fprintf(w, "ISA ladder %v × fusion sweep, %d rep(s); fused arm = bias+ReLU epilogue in the GEMM\n\n",
		levels, reps)
	t := newTable("GEMM (M×N×K)", "isa", "naive", "gemm", "vs naive", "g+b+r", "fused", "fusion", "bitwise")
	shapes := kernelGemmShapes
	if cfg.Quick {
		shapes = shapes[:2]
	}
	var records []kernelPerfRecord
	for _, s := range shapes {
		a := make([]float32, s.m*s.k)
		b := make([]float32, s.k*s.n)
		bias := make([]float32, s.m)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
		}
		for i := range b {
			b[i] = float32(rng.NormFloat64())
		}
		for i := range bias {
			bias[i] = float32(rng.NormFloat64())
		}
		want := make([]float32, s.m*s.n)
		wantEpi := make([]float32, s.m*s.n)
		got := make([]float32, s.m*s.n)

		// The fused arm's epilogue and its separate-pass equivalents. The
		// bias pass skips bv == 0 exactly like the gemmk bias kernel it
		// replaces (preserving -0 outputs); ReLU clamps in place.
		epi := func(row, col int, seg []float32) {
			if bv := bias[row]; bv != 0 {
				for j := range seg {
					seg[j] += bv
				}
			}
			for j, v := range seg {
				if v < 0 {
					seg[j] = 0
				}
			}
		}
		biasPass := func(c []float32) {
			for i := 0; i < s.m; i++ {
				if bv := bias[i]; bv != 0 {
					ci := c[i*s.n : (i+1)*s.n]
					for j := range ci {
						ci[j] += bv
					}
				}
			}
		}
		reluPass := func(c []float32) {
			for i, v := range c {
				if v < 0 {
					c[i] = 0
				}
			}
		}

		timeIt := func(fn func()) time.Duration {
			best := time.Duration(math.MaxInt64)
			for r := 0; r < reps; r++ {
				start := time.Now()
				fn()
				if d := time.Since(start); d < best {
					best = d
				}
			}
			return best
		}

		tNaive := timeIt(func() { naiveGemm(s.m, s.n, s.k, 1, a, b, want) })
		copy(wantEpi, want)
		biasPass(wantEpi)
		reluPass(wantEpi)

		for _, lv := range levels {
			if err := tensor.SetISA(lv); err != nil {
				return fmt.Errorf("bench: kernelperf: forcing %s: %w", lv, err)
			}
			tGemm := timeIt(func() { tensor.Gemm(false, false, s.m, s.n, s.k, 1, a, b, 0, got) })
			identical := bitwiseEqual(got, want)
			tSep := timeIt(func() {
				tensor.Gemm(false, false, s.m, s.n, s.k, 1, a, b, 0, got)
				biasPass(got)
				reluPass(got)
			})
			identical = identical && bitwiseEqual(got, wantEpi)
			tFused := timeIt(func() {
				tensor.GemmFused(false, false, s.m, s.n, s.k, 1, a, b, 0, got, epi)
			})
			identical = identical && bitwiseEqual(got, wantEpi)

			rec := kernelPerfRecord{
				Shape: s.name, M: s.m, N: s.n, K: s.k, ISA: lv.String(),
				NaiveMs: msF(tNaive), GemmMs: msF(tGemm),
				SeparateMs: msF(tSep), FusedMs: msF(tFused),
				SpeedupVsNaive: float64(tNaive) / float64(tGemm),
				FusionSpeedup:  float64(tSep) / float64(tFused),
				Bitwise:        identical,
			}
			records = append(records, rec)
			t.addf("%s %dx%dx%d\t%s\t%s\t%s\t%.2fx\t%s\t%s\t%.2fx\t%v",
				s.name, s.m, s.n, s.k, lv,
				ms(tNaive), ms(tGemm), rec.SpeedupVsNaive,
				ms(tSep), ms(tFused), rec.FusionSpeedup, identical)
			if !identical {
				t.write(w)
				return fmt.Errorf("bench: kernelperf %s at %s: output not bit-identical to naive + separate passes", s.name, lv)
			}
		}
	}
	t.write(w)
	fmt.Fprintln(w, "\nbitwise column compares every arm's output elements to the naive loop")
	fmt.Fprintln(w, "(plus the identical bias and ReLU passes run separately); g+b+r is the")
	fmt.Fprintln(w, "unfused gemm → bias → relu sequence the fused epilogue collapses.")

	if cfg.JSONOut != "" {
		report := kernelPerfReport{
			Experiment:  "kernelperf",
			Generated:   time.Now().UTC().Format(time.RFC3339),
			Reps:        reps,
			DetectedISA: tensor.DetectedISA().String(),
			Records:     records,
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return fmt.Errorf("bench: kernelperf: encoding JSON: %w", err)
		}
		if err := os.WriteFile(cfg.JSONOut, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("bench: kernelperf: writing %s: %w", cfg.JSONOut, err)
		}
		fmt.Fprintf(w, "\nwrote %d records to %s\n", len(records), cfg.JSONOut)
	}
	return nil
}

// msF is a duration in float milliseconds (the JSON twin of ms).
func msF(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func bitwiseEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}
