package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"repro/internal/hostpool"
	"repro/internal/tensor"
)

func init() {
	register(&Experiment{
		ID:    "kernelperf",
		Title: "Host kernel engine: blocked SGEMM vs naive, Table 5 geometries",
		Paper: "Extension: the simulated kernels' host math dominates reproduction wall-clock; " +
			"the blocked zero-allocation SGEMM and the row-parallel variant must beat the " +
			"naive triple loop while staying bit-identical to it.",
		Run: runKernelPerf,
	})
}

// kernelGemmShapes are the M×N×K GEMMs of representative Table 5 forward
// convolutions (M=Co, N=OutH·OutW, K=Ci·Kh·Kw).
var kernelGemmShapes = []struct {
	name    string
	m, n, k int
}{
	{"CIFAR10 conv1", 32, 1024, 75},
	{"CaffeNet conv1", 96, 3025, 363},
	{"CaffeNet conv2", 128, 729, 1200},
	{"GoogLeNet 3a/1", 64, 784, 192},
}

// naiveGemm is the pre-optimization reference: the plain ikj triple loop
// with the alpha·a==0 skip, written out independently of internal/tensor so
// the comparison cannot accidentally time the same code twice.
func naiveGemm(m, n, k int, alpha float32, a, b []float32, c []float32) {
	for i := 0; i < m; i++ {
		ci := c[i*n : (i+1)*n]
		for x := range ci {
			ci[x] = 0
		}
		for l := 0; l < k; l++ {
			av := alpha * a[i*k+l]
			if av == 0 {
				continue
			}
			bl := b[l*n : (l+1)*n]
			for j, bv := range bl {
				ci[j] += av * bv
			}
		}
	}
}

// runKernelPerf times naive vs blocked vs row-parallel GEMM on each shape,
// verifying bitwise identity of every variant against the naive loop.
func runKernelPerf(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	reps := 5
	if cfg.Quick {
		reps = 1
	}
	pool := hostpool.Default()
	rng := rand.New(rand.NewSource(cfg.Seed))

	fmt.Fprintf(w, "blocked SGEMM vs naive triple loop, %d rep(s), pool of %d worker(s)\n\n",
		reps, pool.Workers())
	t := newTable("GEMM (M×N×K)", "naive", "blocked", "speedup", "row-par", "speedup", "bitwise")
	shapes := kernelGemmShapes
	if cfg.Quick {
		shapes = shapes[:2]
	}
	for _, s := range shapes {
		a := make([]float32, s.m*s.k)
		b := make([]float32, s.k*s.n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
		}
		for i := range b {
			b[i] = float32(rng.NormFloat64())
		}
		want := make([]float32, s.m*s.n)
		got := make([]float32, s.m*s.n)

		timeIt := func(fn func()) time.Duration {
			best := time.Duration(math.MaxInt64)
			for r := 0; r < reps; r++ {
				start := time.Now()
				fn()
				if d := time.Since(start); d < best {
					best = d
				}
			}
			return best
		}

		tNaive := timeIt(func() { naiveGemm(s.m, s.n, s.k, 1, a, b, want) })
		tBlocked := timeIt(func() { tensor.Gemm(false, false, s.m, s.n, s.k, 1, a, b, 0, got) })
		identical := bitwiseEqual(got, want)
		tPar := timeIt(func() { tensor.GemmParallel(pool, false, false, s.m, s.n, s.k, 1, a, b, 0, got) })
		identical = identical && bitwiseEqual(got, want)

		t.addf("%s %dx%dx%d\t%s\t%s\t%.2fx\t%s\t%.2fx\t%v",
			s.name, s.m, s.n, s.k,
			ms(tNaive), ms(tBlocked), float64(tNaive)/float64(tBlocked),
			ms(tPar), float64(tNaive)/float64(tPar), identical)
		if !identical {
			t.write(w)
			return fmt.Errorf("bench: kernelperf %s: blocked GEMM not bit-identical to naive", s.name)
		}
	}
	t.write(w)
	fmt.Fprintln(w, "\nbitwise column compares every blocked/row-parallel output element to the naive loop.")
	return nil
}

func bitwiseEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}
