package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/models"
	"repro/internal/simgpu"
)

func init() {
	register(&Experiment{
		ID:    "fig2",
		Title: "Fig. 2: speedup of CaffeNet's convolution layers on P100 vs stream count",
		Paper: "conv2-conv5 gain up to ~2-4x from multi-stream execution; conv1 gains least",
		Run:   runFig2,
	})
	register(&Experiment{
		ID:    "fig3",
		Title: "Fig. 3: timeline of conv1 kernels (MNIST) with multiple CUDA streams",
		Paper: "im2col/sgemm/gemmk chains overlap across streams instead of serializing",
		Run:   runFig3,
	})
	register(&Experiment{
		ID:    "fig4",
		Title: "Fig. 4: best observed number of concurrent streams per CaffeNet layer",
		Paper: "optimum varies per layer and per GPU (roughly 4-32), never 'as many as possible'",
		Run:   runFig4,
	})
}

// streamSweep measures a single-conv-layer forward under fixed pools of
// growing size and returns time per pool size.
func streamSweep(row models.LayerRow, batch int, spec simgpu.DeviceSpec, sizes []int, seed int64) (map[int]time.Duration, error) {
	net, err := buildConvLayerNet(row, batch, seed)
	if err != nil {
		return nil, err
	}
	out := map[int]time.Duration{}
	for _, n := range sizes {
		dev := simgpu.NewDevice(spec, simgpu.WithTraceLimit(1))
		var l dnn.Launcher
		if n <= 1 {
			l = dnn.SerialLauncher{Dev: dev}
		} else {
			l = core.NewFixedLauncher(dev, n)
		}
		// Warm once (buffer growth), measure once: the simulator is
		// deterministic, so repetitions are redundant.
		if _, err := forwardElapsed(net, dev, l); err != nil {
			return nil, err
		}
		d, err := forwardElapsed(net, dev, l)
		if err != nil {
			return nil, err
		}
		out[n] = d
	}
	return out, nil
}

func sweepSizes(cfg Config) []int {
	if cfg.Quick {
		return []int{1, 2, 8}
	}
	return []int{1, 2, 4, 8, 16, 32}
}

func runFig2(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	sizes := sweepSizes(cfg)
	batch := 0 // Table 5 batch
	if cfg.Quick {
		batch = 8
	}
	header := []string{"Layer"}
	for _, s := range sizes {
		header = append(header, fmt.Sprintf("%d streams", s))
	}
	t := newTable(header...)
	for _, row := range models.Rows("CaffeNet") {
		times, err := streamSweep(row, batch, simgpu.TeslaP100, sizes, cfg.Seed)
		if err != nil {
			return err
		}
		base := times[sizes[0]]
		cells := []string{row.Layer}
		for _, s := range sizes {
			cells = append(cells, fmt.Sprintf("%.2fx (%sms)", float64(base)/float64(times[s]), ms(times[s])))
		}
		t.add(cells...)
	}
	fmt.Fprintln(w, "CaffeNet convolution layers on P100: speedup over 1 stream (per forward pass)")
	t.write(w)
	return nil
}

func runFig3(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	// The paper's Fig. 3 profiles a conv layer on MNIST shapes with a few
	// samples so the timeline stays readable. We use the Siamese conv2 row
	// of Table 5 on the K40C: its per-image kernels are long relative to
	// T_launch, so the overlap is visible. (conv1's kernels are launch-
	// bound under our calibration — consistent with its own Fig. 9
	// regression — and would serialize in any stream configuration.)
	row := models.Rows("Siamese")[1]
	batch := 8
	net, err := buildConvLayerNet(row, batch, cfg.Seed)
	if err != nil {
		return err
	}
	for _, streams := range []int{1, 4} {
		dev := simgpu.NewDevice(simgpu.TeslaK40C)
		var l dnn.Launcher
		if streams <= 1 {
			l = dnn.SerialLauncher{Dev: dev}
		} else {
			l = core.NewFixedLauncher(dev, streams)
		}
		if _, err := forwardElapsed(net, dev, l); err != nil {
			return err
		}
		recs, err := dev.Trace()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s (MNIST-derived shapes, %d samples) on K40C with %d stream(s):\n", row.Layer, batch, streams)
		fmt.Fprint(w, simgpu.Timeline(recs, 96))
		fmt.Fprintln(w)
	}
	return nil
}

func runFig4(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	sizes := sweepSizes(cfg)
	batch := 0
	if cfg.Quick {
		batch = 8
	}
	specs, err := deviceSpecs(cfg)
	if err != nil {
		return err
	}
	header := []string{"Layer"}
	for _, s := range specs {
		header = append(header, s.Name)
	}
	t := newTable(header...)
	for _, row := range models.Rows("CaffeNet") {
		cells := []string{row.Layer}
		for _, spec := range specs {
			times, err := streamSweep(row, batch, spec, sizes, cfg.Seed)
			if err != nil {
				return err
			}
			best, bestT := sizes[0], times[sizes[0]]
			for _, s := range sizes {
				if times[s] < bestT {
					best, bestT = s, times[s]
				}
			}
			cells = append(cells, fmt.Sprintf("%d (%sms)", best, ms(bestT)))
		}
		t.add(cells...)
	}
	fmt.Fprintln(w, "Best observed number of concurrent streams per CaffeNet conv layer (forward)")
	t.write(w)
	return nil
}
