package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/models"
	"repro/internal/simgpu"
)

func init() {
	register(&Experiment{
		ID:    "fig7",
		Title: "Fig. 7: speedup of GLP4NN-Caffe over naive Caffe per training iteration",
		Paper: "most nets gain 1.1-4x; Siamese gains most on K40C; gains vary per GPU",
		Run:   runFig7,
	})
	register(&Experiment{
		ID:    "fig8",
		Title: "Fig. 8: number of streams chosen by the analytical model per conv layer",
		Paper: "per-layer stream counts (model output C_out), varying by layer and GPU",
		Run:   runFig8,
	})
	register(&Experiment{
		ID:    "fig9",
		Title: "Fig. 9: per-layer elapsed time, CIFAR10 on TitanXP and Siamese on P100",
		Paper: "layers finishing within ~2ms (conv1, conv1_p) can lose under GLP4NN",
		Run:   runFig9,
	})
}

// armResult captures one launcher arm's measurements on one device.
type armResult struct {
	iter   time.Duration // mean full training iteration
	fwd    time.Duration // one forward pass
	trace  []simgpu.KernelRecord
	ledger core.Snapshot
	plans  []*core.Plan
}

// runArms measures the naive (serial) and GLP4NN arms for one workload on
// one device spec, reusing a single net instance so both arms see identical
// kernels.
func runArms(net *dnn.Net, spec simgpu.DeviceSpec, cfg Config) (naive, glp armResult, err error) {
	measure := func(l dnn.Launcher, dev *simgpu.Device, warmups int) (armResult, error) {
		ctx := dnn.NewContext(l, cfg.Seed)
		ctx.Compute = false
		s := dnn.NewSolver(net, ctx, dnn.CIFAR10QuickSolver())
		var r armResult
		for i := 0; i < warmups; i++ {
			if _, err := iterationElapsed(s, dev); err != nil {
				return r, err
			}
		}
		var total time.Duration
		for i := 0; i < cfg.Iterations; i++ {
			d, err := iterationElapsed(s, dev)
			if err != nil {
				return r, err
			}
			total += d
		}
		r.iter = total / time.Duration(cfg.Iterations)
		// One traced forward for the per-layer view.
		fwd, err := forwardElapsed(net, dev, l)
		if err != nil {
			return r, err
		}
		r.fwd = fwd
		if r.trace, err = dev.Trace(); err != nil {
			return r, err
		}
		return r, nil
	}

	devN := simgpu.NewDevice(spec)
	naive, err = measure(dnn.SerialLauncher{Dev: devN}, devN, 1)
	if err != nil {
		return
	}

	devG := simgpu.NewDevice(spec)
	fw := core.New()
	defer fw.Close()
	rt := fw.Runtime(devG)
	glp, err = measure(rt, devG, 2) // profiling + analysis warmups
	if err != nil {
		return
	}
	glp.ledger = rt.Ledger().Snapshot()
	glp.plans = rt.Plans()
	return
}

// buildWorkloadNet builds one workload's net, timing-only.
func buildWorkloadNet(name string, cfg Config) (*dnn.Net, *models.Workload, error) {
	w, err := models.Get(name)
	if err != nil {
		return nil, nil, err
	}
	ctx := dnn.NewContext(dnn.HostLauncher{}, cfg.Seed)
	ctx.Compute = false
	net, err := w.Build(ctx, cfg.batchFor(w), cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	return net, w, nil
}

func runFig7(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	specs, err := deviceSpecs(cfg)
	if err != nil {
		return err
	}
	header := []string{"Network"}
	for _, s := range specs {
		header = append(header, s.Name)
	}
	t := newTable(header...)
	for _, name := range cfg.Networks {
		net, wl, err := buildWorkloadNet(name, cfg)
		if err != nil {
			return err
		}
		cells := []string{fmt.Sprintf("%s (N=%d)", name, cfg.batchFor(wl))}
		for _, spec := range specs {
			naive, glp, err := runArms(net, spec, cfg)
			if err != nil {
				return err
			}
			cells = append(cells, fmt.Sprintf("%.2fx (%s→%s ms)",
				float64(naive.iter)/float64(glp.iter), ms(naive.iter), ms(glp.iter)))
		}
		t.add(cells...)
	}
	fmt.Fprintln(w, "Speedup of GLP4NN over naive Caffe per training iteration (fwd+bwd+update)")
	t.write(w)
	return nil
}

func runFig8(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	specs, err := deviceSpecs(cfg)
	if err != nil {
		return err
	}
	header := []string{"Network", "Layer"}
	for _, s := range specs {
		header = append(header, s.Name)
	}
	t := newTable(header...)
	for _, name := range cfg.Networks {
		net, _, err := buildWorkloadNet(name, cfg)
		if err != nil {
			return err
		}
		// plan streams per device per conv layer
		perDev := map[string]map[string]int{}
		for _, spec := range specs {
			_, glp, err := runArms(net, spec, cfg)
			if err != nil {
				return err
			}
			m := map[string]int{}
			for _, p := range glp.plans {
				if strings.HasSuffix(p.Key, "/fwd") {
					m[strings.TrimSuffix(p.Key, "/fwd")] = p.Streams
				}
			}
			perDev[spec.Name] = m
		}
		for _, row := range models.Rows(name) {
			cells := []string{name, row.Layer}
			for _, spec := range specs {
				cells = append(cells, fmt.Sprintf("%d", perDev[spec.Name][row.Layer]))
			}
			t.add(cells...)
		}
	}
	fmt.Fprintln(w, "Streams chosen by the analytical model (C_out) per convolution layer, forward pass")
	t.write(w)
	return nil
}

func runFig9(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	cases := []struct {
		network string
		device  string
	}{
		{"CIFAR10", "TitanXP"},
		{"Siamese", "P100"},
	}
	for _, c := range cases {
		spec, ok := simgpu.DeviceByName(c.device)
		if !ok {
			return fmt.Errorf("bench: unknown device %q", c.device)
		}
		net, wl, err := buildWorkloadNet(c.network, cfg)
		if err != nil {
			return err
		}
		naive, glp, err := runArms(net, spec, cfg)
		if err != nil {
			return err
		}
		_, naiveSpans := perLayerSpans(naive.trace)
		_, glpSpans := perLayerSpans(glp.trace)

		fmt.Fprintf(w, "%s (N=%d) on %s, per-layer forward elapsed time:\n", c.network, cfg.batchFor(wl), c.device)
		t := newTable("Layer", "Caffe (ms)", "GLP4NN (ms)", "Speedup")
		names := sortedKeys(naiveSpans)
		sort.Strings(names)
		for _, layer := range names {
			nv := naiveSpans[layer]
			gv, ok := glpSpans[layer]
			if !ok || nv == 0 || gv == 0 {
				continue
			}
			t.add(layer, ms(nv), ms(gv), fmt.Sprintf("%.2fx", float64(nv)/float64(gv)))
		}
		t.write(w)
		fmt.Fprintf(w, "whole forward: Caffe %sms vs GLP4NN %sms\n\n", ms(naive.fwd), ms(glp.fwd))
	}
	return nil
}
