package bench

import (
	"fmt"
	"io"
	"time"
)

func init() {
	register(&Experiment{
		ID:    "fig10",
		Title: "Fig. 10: memory consumption of GLP4NN (mem_tt, mem_K, mem_cupti)",
		Paper: "mem_cupti (CUPTI runtime) dominates; mem_tt/mem_K scale with recorded kernels",
		Run:   runFig10,
	})
	register(&Experiment{
		ID:    "table6",
		Title: "Table 6: one-time overhead of GLP4NN (T_p, T_a, T_total, ratio)",
		Paper: "T_total ranges ~8-126ms; always <0.1% of total training time",
		Run:   runTable6,
	})
}

func runFig10(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	specs, err := deviceSpecs(cfg)
	if err != nil {
		return err
	}
	t := newTable("Network", "GPU", "mem_tt (KB)", "mem_K (KB)", "mem_cupti (MB)", "mem_total (MB)", "kernels recorded")
	for _, name := range cfg.Networks {
		net, _, err := buildWorkloadNet(name, cfg)
		if err != nil {
			return err
		}
		for _, spec := range specs {
			_, glp, err := runArms(net, spec, cfg)
			if err != nil {
				return err
			}
			s := glp.ledger
			t.add(name, spec.Name,
				fmt.Sprintf("%.2f", float64(s.MemTT)/1024),
				fmt.Sprintf("%.2f", float64(s.MemK)/1024),
				fmt.Sprintf("%.2f", float64(s.MemCUPTI)/(1<<20)),
				fmt.Sprintf("%.2f", float64(s.MemTotal())/(1<<20)),
				fmt.Sprintf("%d", s.ProfiledKernels))
		}
	}
	fmt.Fprintln(w, "Host memory consumed by GLP4NN's resource tracker (Eq. 10)")
	t.write(w)
	return nil
}

// table6ReferenceIters is the iteration count used to contextualize the
// one-time overhead: Caffe's stock recipes train these nets for thousands
// of iterations (cifar10_quick alone uses 5000), so 1000 is a conservative
// lower bound for the "total training time" denominator of the paper's
// ratio column.
const table6ReferenceIters = 1000

func runTable6(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	specs, err := deviceSpecs(cfg)
	if err != nil {
		return err
	}
	t := newTable("Model", "GPU", "T_p (ms)", "T_a (ms)", "T_s (ms)", "T_total (ms)", "iter (ms)", "ratio")
	for _, name := range cfg.Networks {
		net, _, err := buildWorkloadNet(name, cfg)
		if err != nil {
			return err
		}
		for _, spec := range specs {
			_, glp, err := runArms(net, spec, cfg)
			if err != nil {
				return err
			}
			s := glp.ledger
			training := glp.iter * time.Duration(table6ReferenceIters)
			ratio := float64(s.TTotal()) / float64(training)
			t.add(name, spec.Name, ms(s.Tp), ms(s.Ta), ms(s.Ts), ms(s.TTotal()), ms(glp.iter),
				fmt.Sprintf("%.4f%%", ratio*100))
		}
	}
	fmt.Fprintf(w, "One-time overhead of GLP4NN (Eq. 12); ratio is against %d training iterations\n", table6ReferenceIters)
	t.write(w)
	return nil
}
