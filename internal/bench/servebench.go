package bench

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/models"
	"repro/internal/serve"
	"repro/internal/simgpu"
)

func init() {
	register(&Experiment{
		ID:    "servebench",
		Title: "Inference serving: batch=1 serial vs dynamic request batching",
		Paper: "Extension: the ROADMAP north-star serves heavy traffic from trained nets. " +
			"The frozen engine has a fixed device batch; the dynamic batcher coalesces " +
			"concurrent single-sample requests into it (flush on batch-full or deadline) " +
			"while the serial arm answers one request per forward. Bit-identity of every " +
			"per-request answer across arms is the checked claim — co-batching must not " +
			"change a single output bit; the throughput and latency shift is the measured one.",
		Run: runServeBench,
	})
}

// ServeBenchRow is one workload's serial-versus-dynamic serving comparison.
type ServeBenchRow struct {
	Net      string
	Batch    int // frozen engine device batch
	Requests int
	Clients  int

	SerialWall time.Duration
	DynWall    time.Duration
	SerialRPS  float64
	DynRPS     float64

	SerialP50, SerialP99 time.Duration // request latency, batch=1 serial
	DynP50, DynP99       time.Duration // request latency, dynamic batching
	DynBatchP50          time.Duration // device-batch latency, dynamic arm
	DynBatchP99          time.Duration
	MeanBatch            float64 // mean coalescing factor of the dynamic arm

	Identical bool // per-request answers bitwise equal across arms
}

// serveArm freezes one workload behind a server and drives it with the
// seeded heavy-tailed load generator: clients concurrent open-loop
// clients submitting requests (sample content is a pure function of the
// request id, so both arms see identical bits). Returns the per-request
// answers flattened in id order, the server stats, and the drive's wall
// time.
func serveArm(name string, batch, maxBatch int, maxDelay time.Duration, requests, clients int, seed int64) ([][]float32, serve.Stats, time.Duration, error) {
	wl, err := models.Get(name)
	if err != nil {
		return nil, serve.Stats{}, 0, err
	}
	spec, _ := simgpu.DeviceByName("P100")
	dev := simgpu.NewDevice(spec, simgpu.WithTraceLimit(1))
	fw := core.New()
	defer fw.Close()
	rt := fw.Runtime(dev)
	ctx := dnn.NewContext(rt, seed)
	net, err := wl.Build(ctx, batch, seed)
	if err != nil {
		return nil, serve.Stats{}, 0, err
	}
	fz, err := dnn.Freeze(net)
	if err != nil {
		return nil, serve.Stats{}, 0, err
	}
	fz.Compact()
	srv, err := serve.New(fz, ctx, serve.Config{
		MaxBatch: maxBatch,
		MaxDelay: maxDelay,
		Observer: rt.Ledger(),
	})
	if err != nil {
		return nil, serve.Stats{}, 0, err
	}
	defer srv.Close()

	rows := srv.RowSizes()
	answers := make([][][]float32, requests)
	errs := make([]error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen := serve.NewLoadGen(seed+int64(c)*101, 500*time.Microsecond)
			for id := c; id < requests; id += clients {
				time.Sleep(gen.NextDelay())
				samples := make([][]float32, len(rows))
				for in, n := range rows {
					samples[in] = gen.Sample(id, in, n)
				}
				out, err := srv.Predict(samples...)
				if err != nil {
					errs[c] = fmt.Errorf("request %d: %w", id, err)
					return
				}
				answers[id] = out
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, serve.Stats{}, 0, err
		}
	}
	// Flatten each request's output rows for the cross-arm bit compare.
	flat := make([][]float32, requests)
	for id, rows := range answers {
		for _, r := range rows {
			flat[id] = append(flat[id], r...)
		}
	}
	return flat, srv.Stats(), wall, nil
}

// Sample-content determinism across arms requires the same (seed, id) →
// sample mapping; serveArm derives its generators from (seed, client) and
// both arms use the same client count, so arm A's request id gets arm B's
// exact bits.

// RunServeBenchRows runs the serial/dynamic pair for each configured
// workload (exported for the smoke test).
func RunServeBenchRows(cfg Config) ([]ServeBenchRow, error) {
	cfg = cfg.withDefaults()
	var rows []ServeBenchRow
	for _, name := range cfg.Networks {
		wl, err := models.Get(name)
		if err != nil {
			return nil, err
		}
		batch := cfg.batchFor(wl)
		if batch > 8 {
			batch = 8
		}
		requests, clients := 8*batch, 4
		if cfg.Quick {
			batch = 4
			if wl.DefaultBatch >= 256 {
				batch = 2
			}
			requests = 4 * batch
		}
		serialOut, serialSt, serialWall, err := serveArm(name, batch, 1, -1, requests, clients, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("%s serial arm: %w", name, err)
		}
		dynOut, dynSt, dynWall, err := serveArm(name, batch, batch, 2*time.Millisecond, requests, clients, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("%s dynamic arm: %w", name, err)
		}
		mean := 0.0
		if dynSt.Batches > 0 {
			mean = float64(dynSt.Samples) / float64(dynSt.Batches)
		}
		rows = append(rows, ServeBenchRow{
			Net:      name,
			Batch:    batch,
			Requests: requests,
			Clients:  clients,

			SerialWall: serialWall,
			DynWall:    dynWall,
			SerialRPS:  float64(requests) / serialWall.Seconds(),
			DynRPS:     float64(requests) / dynWall.Seconds(),

			SerialP50: serialSt.ReqP50, SerialP99: serialSt.ReqP99,
			DynP50: dynSt.ReqP50, DynP99: dynSt.ReqP99,
			DynBatchP50: dynSt.BatchP50, DynBatchP99: dynSt.BatchP99,
			MeanBatch: mean,

			Identical: paramsEqual(serialOut, dynOut),
		})
	}
	return rows, nil
}

func runServeBench(cfg Config, w io.Writer) error {
	rows, err := RunServeBenchRows(cfg)
	if err != nil {
		return err
	}
	tb := newTable("net", "engine-batch", "requests", "serial req/s", "dynamic req/s", "speedup",
		"serial p50/p99", "dynamic p50/p99", "batch p50/p99", "mean-batch", "bits")
	for _, r := range rows {
		bits := "IDENTICAL"
		if !r.Identical {
			bits = "DIVERGED"
		}
		speedup := math.Inf(1)
		if r.SerialRPS > 0 {
			speedup = r.DynRPS / r.SerialRPS
		}
		tb.addf("%s\t%d\t%d\t%.1f\t%.1f\t%.2fx\t%s/%s ms\t%s/%s ms\t%s/%s ms\t%.2f\t%s",
			r.Net, r.Batch, r.Requests, r.SerialRPS, r.DynRPS, speedup,
			ms(r.SerialP50), ms(r.SerialP99), ms(r.DynP50), ms(r.DynP99),
			ms(r.DynBatchP50), ms(r.DynBatchP99), r.MeanBatch, bits)
	}
	tb.write(w)
	fmt.Fprintln(w, "\nBoth arms serve the same frozen engine (fixed device batch, weights from one")
	fmt.Fprintln(w, "seed). The serial arm answers one request per forward pass; the dynamic arm")
	fmt.Fprintln(w, "coalesces concurrent requests into the engine batch, flushing on batch-full")
	fmt.Fprintln(w, "or a 2 ms deadline. 'bits' checks every per-request answer is bitwise equal")
	fmt.Fprintln(w, "across arms: co-batching, padding and flush timing must not leak into any")
	fmt.Fprintln(w, "output — the inference face of the convergence-invariance contract.")
	return nil
}
