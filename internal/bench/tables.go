package bench

import (
	"fmt"
	"io"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/simgpu"
)

func init() {
	register(&Experiment{
		ID:    "table1",
		Title: "Table 1: overview of GPU architecture features",
		Paper: "Tesla..Volta feature matrix; max concurrent kernels 1/16/32/16/128/128",
		Run:   runTable1,
	})
	register(&Experiment{
		ID:    "table3",
		Title: "Table 3: hardware profile",
		Paper: "K40C (Kepler, 15×192), P100 (Pascal, 56×64), Titan XP (Pascal, 30×128)",
		Run:   runTable3,
	})
	register(&Experiment{
		ID:    "table4",
		Title: "Table 4: test datasets",
		Paper: "MNIST 60k/10k 28×28 ×10; CIFAR-10 50k/10k 32×32 ×10; ImageNet 1.2M/150k 256×256 ×1000",
		Run:   runTable4,
	})
	register(&Experiment{
		ID:    "table5",
		Title: "Table 5: layers of DNNs used in this paper",
		Paper: "conv geometry for CIFAR10, Siamese, CaffeNet and six GoogLeNet units",
		Run:   runTable5,
	})
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func runTable1(cfg Config, w io.Writer) error {
	t := newTable("Architecture", "CUDA Streams", "Dynamic Parallelism", "Max Concurrent Kernels", "UVM", "Tensor Cores")
	for _, a := range simgpu.Architectures {
		t.add(a.Name, yn(a.CUDAStreams), yn(a.DynamicParallelism),
			fmt.Sprintf("%d", a.MaxConcurrentKernels), yn(a.UVM), yn(a.TensorCores))
	}
	t.write(w)
	return nil
}

func runTable3(cfg Config, w io.Writer) error {
	t := newTable("GPU", "Generation", "Core Count", "Clock (GHz)", "Mem (GB)", "BW (GB/s)", "Mem Type", "Shared/SM (KB)", "Peak SP (TFLOP/s)")
	for _, d := range simgpu.DeviceCatalog {
		t.add(d.Name, d.Arch,
			fmt.Sprintf("%d x %d", d.SMCount, d.CoresPerSM),
			fmt.Sprintf("%.3f", d.ClockGHz),
			fmt.Sprintf("%d", d.MemGB),
			fmt.Sprintf("%.1f", d.MemBandwidthGBps),
			d.MemType,
			fmt.Sprintf("%d", d.SharedMemPerSMKB),
			fmt.Sprintf("%.2f", d.PeakFlops()/1e12))
	}
	t.write(w)
	return nil
}

func runTable4(cfg Config, w io.Writer) error {
	t := newTable("Dataset", "Training Images", "Test Images", "Pixels", "Classes")
	for _, s := range data.Catalog {
		t.add(s.Name,
			fmt.Sprintf("%d", s.TrainImages),
			fmt.Sprintf("%d", s.TestImages),
			fmt.Sprintf("%dx%d", s.Height, s.Width),
			fmt.Sprintf("%d", s.Classes))
	}
	t.write(w)
	return nil
}

func runTable5(cfg Config, w io.Writer) error {
	t := newTable("Net", "Layer", "N", "Ci", "H/W", "Co", "F", "S", "P")
	for _, r := range models.LayerTable {
		t.add(r.Net, r.Layer,
			fmt.Sprintf("%d", r.N), fmt.Sprintf("%d", r.Ci), fmt.Sprintf("%d", r.HW),
			fmt.Sprintf("%d", r.Co), fmt.Sprintf("%d", r.F), fmt.Sprintf("%d", r.S),
			fmt.Sprintf("%d", r.P))
	}
	t.write(w)
	return nil
}
