package core

import (
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/simgpu"
)

// Adaptive concurrency control: the online-controller extension of the
// paper's one-shot analyzer (ROADMAP item 4, after the runtime
// concurrency-control line of work). The paper profiles each layer once
// and fixes its plan forever; here a drift detector watches every layer's
// observed kernel time through the device's completion listener, and when
// the per-step EWMA leaves a configurable band around the timing the
// cached plan was solved from (Plan.SolvedFrom), the layer is flagged.
// The caller (parallel.Trainer, or a serving batch loop) then evicts just
// the drifted layers at a step boundary — ScheduleReprofile — so the next
// iteration re-profiles them in an isolated window through the exact
// machinery of a first sighting, and the re-solved plan swaps in at the
// following boundary.
//
// The numeric contract: a plan swap changes the layer's width, and width
// determines the chain→scratch mapping and gradient-partial fold order —
// so swaps are only ever applied at checkpointed step boundaries (the
// trainer takes the checkpoint; see parallel.Config.Adaptive), and a run's
// trained bits are a function of its width *schedule* alone. A serial
// re-run that installs the same widths at the same boundaries (the
// InstallPlan resume contract) reproduces the adaptive run bit for bit;
// tests and the adaptbench experiment assert exactly that.

// AdaptiveConfig tunes the drift detector. The zero value selects the
// defaults noted on each field.
type AdaptiveConfig struct {
	// Band is the fractional tolerance around a plan's solved-from timing:
	// a layer drifts when its observed EWMA leaves
	// [solved/(1+Band), solved·(1+Band)]. 0 selects DefaultDriftBand;
	// negative clamps to 0 (any deviation drifts); NaN disables drift
	// detection entirely.
	Band float64
	// Alpha is the EWMA smoothing factor applied per step boundary,
	// in (0, 1]. 0 selects DefaultDriftAlpha.
	Alpha float64
	// Warmup is how many step boundaries a key must be observed before it
	// may drift (the first folds seed the EWMA). 0 selects
	// DefaultDriftWarmup.
	Warmup int
	// Cooldown is how many step boundaries a key sits out after being
	// flagged, so a drift the caller chose not to act on is not re-reported
	// every step. 0 selects DefaultDriftCooldown.
	Cooldown int
	// MaxReprofiles caps how many times one key may be re-profiled over the
	// detector's lifetime: a layer whose profile collection genuinely keeps
	// failing (its re-solved plan stays a zero-timing fallback) would
	// otherwise re-drift forever. 0 selects DefaultMaxReprofiles; negative
	// removes the cap.
	MaxReprofiles int
}

// Drift-detector defaults.
const (
	DefaultDriftBand     = 0.5
	DefaultDriftAlpha    = 0.4
	DefaultDriftWarmup   = 2
	DefaultDriftCooldown = 2
	DefaultMaxReprofiles = 3
)

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.Band == 0 {
		c.Band = DefaultDriftBand
	}
	if c.Band < 0 {
		c.Band = 0
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = DefaultDriftAlpha
	}
	if c.Warmup == 0 {
		c.Warmup = DefaultDriftWarmup
	}
	if c.Cooldown == 0 {
		c.Cooldown = DefaultDriftCooldown
	}
	if c.MaxReprofiles == 0 {
		c.MaxReprofiles = DefaultMaxReprofiles
	}
	return c
}

// driftState is one key's running observation.
type driftState struct {
	ewma     float64 // smoothed per-step observed kernel time, ns
	folds    int     // step boundaries folded into the EWMA
	cool     int     // boundaries left to sit out after a flag
	pending  float64 // kernel time accumulated since the last boundary, ns
	pendingN int     // records behind pending
	evicted  int     // times Forget reset this key (≈ re-profiles)
}

// DriftDetector accumulates per-key kernel timings between step boundaries
// and folds them into per-key EWMAs at each boundary, reporting the keys
// whose EWMA left the band around their plan's solved-from timing. Observe
// is called from the device's completion listener (under the device lock),
// so the detector has its own mutex and never touches runtime or device
// state.
type DriftDetector struct {
	cfg  AdaptiveConfig
	mu   sync.Mutex
	keys map[string]*driftState
}

// NewDriftDetector builds a detector with cfg's defaults applied.
func NewDriftDetector(cfg AdaptiveConfig) *DriftDetector {
	return &DriftDetector{cfg: cfg.withDefaults(), keys: map[string]*driftState{}}
}

// Config returns the detector's effective (default-applied) configuration.
func (d *DriftDetector) Config() AdaptiveConfig { return d.cfg }

// Observe accumulates one completed kernel's duration under key. Zero and
// negative durations still count as observations (a truncated profiler
// record is a legitimate, drift-worthy signal); NaN cannot occur since the
// input is an integer duration.
func (d *DriftDetector) Observe(key string, dur time.Duration) {
	if key == "" {
		return
	}
	d.mu.Lock()
	st := d.keys[key]
	if st == nil {
		st = &driftState{}
		d.keys[key] = st
	}
	if dur > 0 {
		st.pending += float64(dur)
	}
	st.pendingN++
	d.mu.Unlock()
}

// StepBoundary folds the pending observations into each key's EWMA and
// returns, sorted, the keys whose EWMA sits outside the band around the
// timing their plan was solved from. solved reports a key's
// Plan.SolvedFrom; keys it does not know (unseen, still profiling, or
// evicted) never drift. Keys with no observations this step are skipped —
// their EWMA neither decays nor drifts while the layer is not running.
func (d *DriftDetector) StepBoundary(solved func(key string) (time.Duration, bool)) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var drifted []string
	for key, st := range d.keys {
		if st.pendingN == 0 {
			continue
		}
		obs := st.pending
		st.pending, st.pendingN = 0, 0
		if st.folds == 0 {
			st.ewma = obs
		} else {
			st.ewma = d.cfg.Alpha*obs + (1-d.cfg.Alpha)*st.ewma
		}
		st.folds++
		if st.cool > 0 {
			st.cool--
			continue
		}
		if st.folds < d.cfg.Warmup {
			continue
		}
		if d.cfg.MaxReprofiles >= 0 && st.evicted >= d.cfg.MaxReprofiles {
			continue
		}
		ref, ok := solved(key)
		if !ok {
			continue
		}
		if !outsideBand(st.ewma, float64(ref), d.cfg.Band) {
			continue
		}
		st.cool = d.cfg.Cooldown
		drifted = append(drifted, key)
	}
	sort.Strings(drifted)
	return drifted
}

// outsideBand reports whether an observed timing (ns) drifted from the
// solved-from reference. A NaN band disables detection; NaN observations
// never drift (garbage in, no verdict out). A non-positive reference with
// positive observations always drifts — that is the healing case: the plan
// was solved from an empty or zeroed (fault-corrupted) profile, so any
// real signal proves the plan is stale. Non-positive observations never
// drift: the layer produced no measurable kernel time to judge by.
func outsideBand(obs, ref, band float64) bool {
	if math.IsNaN(band) || math.IsNaN(obs) || math.IsNaN(ref) {
		return false
	}
	if obs <= 0 {
		return false
	}
	if ref <= 0 {
		return true
	}
	if band < 0 {
		band = 0
	}
	return obs < ref/(1+band) || obs > ref*(1+band)
}

// Forget drops a key's state, typically right before its re-profile: the
// fresh plan deserves a fresh EWMA (and warmup) instead of inheriting the
// stale one's history. The per-key eviction count survives — it backs the
// MaxReprofiles cap.
func (d *DriftDetector) Forget(key string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	evicted := 0
	if st := d.keys[key]; st != nil {
		evicted = st.evicted
	}
	d.keys[key] = &driftState{evicted: evicted + 1}
}

// Observed returns a key's current EWMA (ns as a duration) and whether the
// key has folded at least one step of observations.
func (d *DriftDetector) Observed(key string) (time.Duration, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.keys[key]
	if st == nil || st.folds == 0 {
		return 0, false
	}
	return time.Duration(st.ewma), true
}

// SetAdaptive arms the runtime's drift detector: a device completion
// listener starts feeding per-key kernel timings into it, and StepBoundary
// / ScheduleReprofile become functional. Calling it again replaces the
// configuration but keeps the single listener. Returns the detector for
// direct inspection.
func (r *Runtime) SetAdaptive(cfg AdaptiveConfig) *DriftDetector {
	d := NewDriftDetector(cfg)
	r.adMu.Lock()
	r.adaptive = d
	subscribed := r.adSubscribed
	r.adSubscribed = true
	r.adMu.Unlock()
	if !subscribed {
		r.dev.Subscribe(r.adaptiveObserve)
	}
	return d
}

// Adaptive returns the armed drift detector, or nil.
func (r *Runtime) Adaptive() *DriftDetector {
	r.adMu.Lock()
	defer r.adMu.Unlock()
	return r.adaptive
}

// adaptiveObserve is the device completion listener feeding the drift
// detector. Like watchdogObserve it runs under the device lock, so it only
// touches the detector's own state; the layer key is the tag prefix ahead
// of the first '|'.
func (r *Runtime) adaptiveObserve(rec simgpu.KernelRecord) {
	r.adMu.Lock()
	d := r.adaptive
	r.adMu.Unlock()
	if d == nil {
		return
	}
	key := rec.Tag
	if i := strings.IndexByte(key, '|'); i >= 0 {
		key = key[:i]
	}
	d.Observe(key, rec.Duration())
}

// StepBoundary folds this step's observations and returns the sorted keys
// whose timing drifted out of their plan's band. Callers invoke it once
// per training step (or serving batch), between iterations. Each drifted
// key is charged to the ledger.
func (r *Runtime) StepBoundary() []string {
	d := r.Adaptive()
	if d == nil {
		return nil
	}
	drifted := d.StepBoundary(func(key string) (time.Duration, bool) {
		p, ok := r.analyzer.Cached(key)
		if !ok {
			return 0, false
		}
		return p.SolvedFrom, true
	})
	for range drifted {
		r.ledger.addDriftEvent()
	}
	return drifted
}

// ScheduleReprofile evicts the given keys' cached plans and collected
// profiles, so each key's next sighting opens a profiling window exactly
// like a first sighting — the isolated shadow re-profile. The re-solved
// plan lands in the cache on the key's following sighting (or all at once
// via FinalizePlans at the next boundary) and is counted as a plan swap.
// Returns how many keys were actually evicted (unknown keys are skipped).
//
// Width is part of the numeric contract: between the eviction and the
// swap the layer runs at width 1 (the profiling width), and afterwards at
// the re-solved width. Callers must therefore only invoke this at a
// checkpointed step boundary — parallel.Trainer does, and records both
// boundaries so a serial reference can replay the identical width
// schedule.
func (r *Runtime) ScheduleReprofile(keys []string) int {
	d := r.Adaptive()
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, key := range keys {
		if !r.analyzer.Evict(key) {
			continue
		}
		delete(r.profiles, key)
		if r.reprofiling == nil {
			r.reprofiling = map[string]bool{}
		}
		r.reprofiling[key] = true
		if d != nil {
			d.Forget(key)
		}
		r.ledger.addReprofile()
		n++
	}
	return n
}
