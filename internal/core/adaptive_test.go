package core

import (
	"math"
	"sort"
	"testing"
	"time"
)

// solvedMap adapts a plain map to StepBoundary's lookup callback.
func solvedMap(m map[string]time.Duration) func(string) (time.Duration, bool) {
	return func(key string) (time.Duration, bool) {
		d, ok := m[key]
		return d, ok
	}
}

// tick observes one duration for each key and folds a step boundary.
func tick(d *DriftDetector, obs map[string]time.Duration, solved map[string]time.Duration) []string {
	for k, v := range obs {
		d.Observe(k, v)
	}
	return d.StepBoundary(solvedMap(solved))
}

func TestDriftDetectorHealingCase(t *testing.T) {
	// A plan solved from an empty/corrupted profile carries SolvedFrom 0:
	// any real observation must drift it once warmup passes.
	d := NewDriftDetector(AdaptiveConfig{Warmup: 2})
	solved := map[string]time.Duration{"conv1/fwd": 0}
	obs := map[string]time.Duration{"conv1/fwd": time.Millisecond}
	if got := tick(d, obs, solved); len(got) != 0 {
		t.Fatalf("drifted during warmup: %v", got)
	}
	if got := tick(d, obs, solved); len(got) != 1 || got[0] != "conv1/fwd" {
		t.Fatalf("healing case did not drift after warmup: %v", got)
	}
}

func TestDriftDetectorBandEdges(t *testing.T) {
	// Exactly on the band edge is inside; one step past it drifts.
	const ref = float64(1000)
	band := 0.5
	cases := []struct {
		obs   float64
		drift bool
	}{
		{ref * (1 + band), false},
		{ref*(1+band) + 1, true},
		{ref / (1 + band), false},
		{ref/(1+band) - 1, true},
		{ref, false},
	}
	for _, c := range cases {
		if got := outsideBand(c.obs, ref, band); got != c.drift {
			t.Errorf("outsideBand(%v, %v, %v) = %v, want %v", c.obs, ref, band, got, c.drift)
		}
	}
}

func TestOutsideBandDegenerateInputs(t *testing.T) {
	nan := math.NaN()
	if outsideBand(nan, 1000, 0.5) {
		t.Error("NaN observation drifted")
	}
	if outsideBand(1000, nan, 0.5) {
		t.Error("NaN reference drifted")
	}
	if outsideBand(5000, 1000, nan) {
		t.Error("NaN band did not disable detection")
	}
	if outsideBand(0, 1000, 0.5) || outsideBand(-5, 1000, 0.5) {
		t.Error("non-positive observation drifted")
	}
	if !outsideBand(1, 0, 0.5) || !outsideBand(1, -3, 0.5) {
		t.Error("non-positive reference with real observation must drift (healing case)")
	}
	// Negative band behaves like band 0: only exact equality is inside.
	if outsideBand(1000, 1000, -2) {
		t.Error("equal obs/ref drifted under negative band")
	}
	if !outsideBand(1001, 1000, -2) {
		t.Error("negative band did not clamp to zero tolerance")
	}
}

func TestDriftDetectorUnseenAndUnsolvedKeys(t *testing.T) {
	d := NewDriftDetector(AdaptiveConfig{Warmup: 1})
	// Key observed but its plan is unknown to the solver: never drifts.
	obs := map[string]time.Duration{"mystery/fwd": time.Second}
	for i := 0; i < 4; i++ {
		if got := tick(d, obs, map[string]time.Duration{}); len(got) != 0 {
			t.Fatalf("unsolved key drifted: %v", got)
		}
	}
	// Key solved but never observed: StepBoundary skips it entirely.
	solved := map[string]time.Duration{"idle/fwd": time.Millisecond}
	if got := d.StepBoundary(solvedMap(solved)); len(got) != 0 {
		t.Fatalf("never-observed key drifted: %v", got)
	}
	if _, ok := d.Observed("idle/fwd"); ok {
		t.Fatal("never-observed key reported an EWMA")
	}
}

func TestDriftDetectorCooldown(t *testing.T) {
	d := NewDriftDetector(AdaptiveConfig{Warmup: 1, Cooldown: 2, MaxReprofiles: -1})
	solved := map[string]time.Duration{"k": time.Microsecond}
	obs := map[string]time.Duration{"k": time.Second} // way out of band
	if got := tick(d, obs, solved); len(got) != 1 {
		t.Fatalf("expected drift on first fold, got %v", got)
	}
	// Two boundaries of cooldown: the still-drifted key stays quiet.
	for i := 0; i < 2; i++ {
		if got := tick(d, obs, solved); len(got) != 0 {
			t.Fatalf("cooldown boundary %d re-reported drift: %v", i, got)
		}
	}
	if got := tick(d, obs, solved); len(got) != 1 {
		t.Fatalf("expected re-drift after cooldown, got %v", got)
	}
}

func TestDriftDetectorMaxReprofilesAndForget(t *testing.T) {
	d := NewDriftDetector(AdaptiveConfig{Warmup: 1, Cooldown: 1, MaxReprofiles: 2})
	solved := map[string]time.Duration{"k": time.Microsecond}
	obs := map[string]time.Duration{"k": time.Second}

	drifts := 0
	for i := 0; i < 12; i++ {
		if got := tick(d, obs, solved); len(got) == 1 {
			drifts++
			d.Forget("k") // caller re-profiles: state resets, evicted count survives
		}
	}
	if drifts != 2 {
		t.Fatalf("MaxReprofiles=2 allowed %d drifts", drifts)
	}
	// Forget reset the EWMA: the key re-warms from scratch.
	if ewma, ok := d.Observed("k"); ok && ewma == 0 {
		t.Fatalf("unexpected zero EWMA after folds")
	}
}

func TestDriftDetectorZeroDurationObservations(t *testing.T) {
	// Zero/negative durations count as observations (the step boundary
	// folds them) but contribute no time — so a layer that only ever
	// reports zeroes never drifts, even against a zero reference.
	d := NewDriftDetector(AdaptiveConfig{Warmup: 1})
	solved := map[string]time.Duration{"k": 0}
	for i := 0; i < 4; i++ {
		d.Observe("k", 0)
		d.Observe("k", -time.Millisecond)
		if got := d.StepBoundary(solvedMap(solved)); len(got) != 0 {
			t.Fatalf("zero-duration observations drifted: %v", got)
		}
	}
}

func TestDriftDetectorEmptyKeyIgnored(t *testing.T) {
	d := NewDriftDetector(AdaptiveConfig{Warmup: 1})
	d.Observe("", time.Second)
	if got := d.StepBoundary(solvedMap(map[string]time.Duration{"": 0})); len(got) != 0 {
		t.Fatalf("empty key drifted: %v", got)
	}
}

// FuzzDriftDetector drives the detector through arbitrary configurations
// and observation streams and asserts its structural invariants: no
// panics, sorted output, only solved keys drift, NaN band disables
// detection, and a drifted key is always one the caller fed.
func FuzzDriftDetector(f *testing.F) {
	f.Add(0.5, 0.4, int64(1000), int64(2000), int64(0), "conv1/fwd", false)
	f.Add(0.0, 0.0, int64(0), int64(-5), int64(1), "k", true)
	f.Add(-1.0, 1.5, int64(1), int64(1), int64(1<<40), "a|b", false)
	f.Add(math.NaN(), 0.9, int64(77), int64(88), int64(99), "x", true)
	f.Add(math.Inf(1), 0.1, int64(5), int64(5), int64(5), "y", false)
	f.Fuzz(func(t *testing.T, band, alpha float64, d1, d2, ref int64, key string, known bool) {
		d := NewDriftDetector(AdaptiveConfig{
			Band: band, Alpha: alpha, Warmup: 1, Cooldown: 1, MaxReprofiles: -1,
		})
		solved := map[string]time.Duration{}
		if known {
			solved[key] = time.Duration(ref)
		}
		lookup := solvedMap(solved)
		for round := 0; round < 3; round++ {
			d.Observe(key, time.Duration(d1))
			d.Observe(key, time.Duration(d2))
			d.Observe(key+"-other", time.Duration(d1))
			drifted := d.StepBoundary(lookup)
			if !sort.StringsAreSorted(drifted) {
				t.Fatalf("unsorted drift report: %v", drifted)
			}
			for _, k := range drifted {
				if _, ok := solved[k]; !ok {
					t.Fatalf("unsolved key %q drifted", k)
				}
				if k == "" {
					t.Fatal("empty key drifted")
				}
				if math.IsNaN(band) {
					t.Fatalf("NaN band still drifted %q", k)
				}
				if d1 <= 0 && d2 <= 0 {
					t.Fatalf("non-positive observations drifted %q", k)
				}
				d.Forget(k)
			}
		}
		// A forgotten key must be re-observable without panic.
		d.Observe(key, time.Duration(d1))
		d.StepBoundary(lookup)
	})
}
