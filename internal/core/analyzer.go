package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/milp"
	"repro/internal/simgpu"
)

// KernelPlan is the analyzer's decision for one kernel: how many instances
// may run concurrently (#K_i of the paper's Eq. 7/9) and the model inputs
// that produced it.
type KernelPlan struct {
	Name        string
	Count       int // #K_i chosen by the MILP
	UpperBound  int // the Eq. 7 bound
	BlocksPerSM int // β_Ki (Eq. 8, clamped to the occupancy limit)
	Threads     int // τ_Ki
	SharedMem   int // sm_Ki
	AvgDuration time.Duration
}

// Plan is one layer's concurrency configuration: the stream-pool share
// C_out = Σ #K_i (Eq. 9) plus diagnostics.
type Plan struct {
	Key            string
	Streams        int
	Kernels        []KernelPlan
	SolveTime      time.Duration
	ActiveThreads  float64 // Σ n_i·τ_i·β_i, the MILP objective
	OccupancyRatio float64 // OR_SM of Eq. 1 implied by the plan
	MILPNodes      int
	// SolvedFrom is the total profiled kernel time the plan was solved
	// from (Σ launches·duration over the layer's profile). The drift
	// detector compares live observations against it; a fallback plan
	// solved from an empty or corrupted profile carries 0, which any real
	// observation drifts away from (the healing case).
	SolvedFrom time.Duration
	Fallback   bool // true when the MILP was infeasible and Streams=1 was forced
	// Serial marks a plan demoted by the self-healing runtime: every launch
	// routes to the default stream, but Streams keeps the planned width.
	// Width is part of the numeric contract (layers index per-chain scratch
	// and fold gradient partials by width), so preserving it keeps a degraded
	// run bitwise identical to the healthy one — only concurrency is lost.
	Serial bool
}

func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s: %d streams (occupancy %.2f, solve %v)", p.Key, p.Streams, p.OccupancyRatio, p.SolveTime)
	if p.Serial {
		b.WriteString(" [degraded: serial dispatch]")
	}
	for _, k := range p.Kernels {
		fmt.Fprintf(&b, "\n  %-14s #K=%d (bound %d) β/SM=%d τ=%d smem=%dB T=%v",
			k.Name, k.Count, k.UpperBound, k.BlocksPerSM, k.Threads, k.SharedMem, k.AvgDuration)
	}
	return b.String()
}

// Model is a pluggable concurrency model: it turns a layer's kernel profile
// into a plan. The paper's kernel analyzer is explicitly customizable
// ("The analytical model to be utilized can be customized by developers");
// MILPModel is the paper's Section 3.2 formulation and GreedyModel a
// solver-free alternative for the ablation.
type Model interface {
	Name() string
	Solve(spec simgpu.DeviceSpec, p *LayerProfile) *Plan
}

// Analyzer is the kernel analyzer module (Fig. 5): the concurrency analyzer
// solves the configured model; the concurrency maintainer caches the result
// per layer key, so each layer is analyzed once per device.
type Analyzer struct {
	spec   simgpu.DeviceSpec
	ledger *Ledger
	model  Model

	mu    sync.Mutex
	cache map[string]*Plan
}

// NewAnalyzer builds a per-device analyzer with the paper's MILP model.
func NewAnalyzer(spec simgpu.DeviceSpec, ledger *Ledger) *Analyzer {
	return NewAnalyzerWithModel(spec, ledger, MILPModel{})
}

// NewAnalyzerWithModel builds an analyzer with a custom concurrency model.
func NewAnalyzerWithModel(spec simgpu.DeviceSpec, ledger *Ledger, m Model) *Analyzer {
	if m == nil {
		m = MILPModel{}
	}
	return &Analyzer{spec: spec, ledger: ledger, model: m, cache: map[string]*Plan{}}
}

// Model returns the analyzer's concurrency model.
func (a *Analyzer) Model() Model { return a.model }

// Cached returns the plan for a key if it has been analyzed.
func (a *Analyzer) Cached(key string) (*Plan, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.cache[key]
	return p, ok
}

// CacheFallback pins a serial (1-stream) fallback plan for a key whose
// profile could not be collected or analyzed, so the scheduler has a cached
// decision instead of retrying the failed path every iteration. An existing
// cached plan wins: a real analysis is never overwritten by a fallback.
func (a *Analyzer) CacheFallback(key string) *Plan {
	a.mu.Lock()
	defer a.mu.Unlock()
	if p, ok := a.cache[key]; ok {
		return p
	}
	p := &Plan{Key: key, Streams: 1, Fallback: true}
	a.cache[key] = p
	return p
}

// ForceSerial demotes a key to default-stream dispatch, replacing any cached
// concurrent plan with a serial-dispatch copy. This is the degradation path
// of the self-healing runtime — a layer whose kernels hang or whose streams
// the device refuses is pinned back to the default stream, which is always
// correct (it is exactly the profiling-iteration execution mode). The copy
// keeps the plan's Streams width: width determines the chain→scratch mapping
// and gradient-partial fold order, so a width change would alter trained
// bits, while a stream-assignment change cannot (convergence-invariant
// degradation). A key with no cached plan gets a width-1 serial plan.
func (a *Analyzer) ForceSerial(key string) *Plan {
	a.mu.Lock()
	defer a.mu.Unlock()
	if p, ok := a.cache[key]; ok {
		if p.Serial || p.Streams <= 1 {
			return p
		}
		q := *p
		q.Serial = true
		a.cache[key] = &q
		return &q
	}
	p := &Plan{Key: key, Streams: 1, Fallback: true, Serial: true}
	a.cache[key] = p
	return p
}

// Install seeds the concurrency maintainer's cache with a previously
// analyzed plan's numeric decisions. Checkpoint resume uses this: a fresh
// runtime would otherwise open a profiling window and run the first resumed
// iteration at width 1, where the run being resumed executed it at the
// planned width — and width is part of the numeric contract. Only the
// fields dispatch depends on are seeded (solvedFrom keeps the drift
// detector's reference alive across a resume); kernel diagnostics are not
// restored. An installed plan overwrites any cached one.
func (a *Analyzer) Install(key string, streams int, serial, fallback bool, solvedFrom time.Duration) *Plan {
	if streams < 1 {
		streams = 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	p := &Plan{Key: key, Streams: streams, Serial: serial, Fallback: fallback, SolvedFrom: solvedFrom}
	a.cache[key] = p
	return p
}

// Evict removes a key's cached plan, reporting whether one existed. The
// adaptive controller uses it to force a drifted layer back through the
// first-sighting profiling path.
func (a *Analyzer) Evict(key string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.cache[key]
	delete(a.cache, key)
	return ok
}

// Plans returns all cached plans (the data behind the paper's Fig. 8),
// sorted by key so reports and checkpoints are stable across runs.
func (a *Analyzer) Plans() []*Plan {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*Plan, 0, len(a.cache))
	for _, p := range a.cache {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Analyze solves the analytical model for one layer profile and caches the
// plan. The model follows Section 3.2:
//
//	maximize   Σ n_i·τ_i·β_i                    (Eq. 3, active threads/SM)
//	subject to Σ n_i·sm_i·β_i ≤ sm_max          (Eq. 4)
//	           Σ n_i·τ_i·β_i  ≤ τ_max           (Eq. 5)
//	           Σ n_i·β_i      ≤ ρ_max           (resident blocks, Table 2)
//	           1 ≤ Σ n_i      ≤ C               (Eq. 6)
//	           0 ≤ n_i ≤ bound_i                (Eq. 7)
//
// with β_i = max(1, ⌊#β_i/#SM⌋) (Eq. 8) clamped to the kernel's occupancy
// limit, and bound_i = min(⌈T_i/T_launch⌉, τ_max·#SM/(τ_i·#β_i),
// sm_max·#SM/(sm_i·#β_i), C). The paper keeps every n_i ≥ 1; when the
// per-SM budgets cannot host one instance of every kernel simultaneously
// that is infeasible, so the lower bounds are relaxed to 0 with Σ n_i ≥ 1 —
// the walkthrough example of Fig. 6 (conv1 on K40C → 3 streams) comes out
// of exactly this relaxed form.
func (a *Analyzer) Analyze(p *LayerProfile) (*Plan, error) {
	if plan, ok := a.Cached(p.Key); ok {
		return plan, nil
	}
	start := time.Now()
	plan := a.model.Solve(a.spec, p)
	plan.SolveTime = time.Since(start)
	if a.ledger != nil {
		a.ledger.addAnalysis(plan.SolveTime)
	}
	a.mu.Lock()
	a.cache[p.Key] = plan
	a.mu.Unlock()
	return plan, nil
}

// MILPModel is the paper's Section 3.2 analytical model solved exactly.
type MILPModel struct{}

// Name implements Model.
func (MILPModel) Name() string { return "milp" }

// Solve implements Model.
func (MILPModel) Solve(spec simgpu.DeviceSpec, p *LayerProfile) *Plan {
	c := spec.MaxConcurrentKernels()
	smMax := float64(spec.SharedMemPerSM())
	tauMax := float64(spec.MaxThreadsPerSM)
	rhoMax := float64(spec.MaxBlocksPerSM)

	n := len(p.Kernels)
	plan := &Plan{Key: p.Key, Streams: 1, SolvedFrom: p.TotalDuration()}
	if n == 0 {
		plan.Fallback = true
		return plan
	}
	tau, sm, beta, upper, names := modelInputs(spec, p)

	obj := make([]float64, n)
	smRow := make([]float64, n)
	tauRow := make([]float64, n)
	rhoRow := make([]float64, n)
	ones := make([]float64, n)
	integer := make([]bool, n)
	lower := make([]float64, n)
	for i := 0; i < n; i++ {
		obj[i] = tau[i] * beta[i]
		smRow[i] = sm[i] * beta[i]
		tauRow[i] = tau[i] * beta[i]
		rhoRow[i] = beta[i]
		ones[i] = 1
		integer[i] = true
	}
	prob := &milp.Problem{
		Objective: obj,
		Constraints: []milp.Constraint{
			{Coeffs: smRow, Rel: milp.LE, RHS: smMax, Name: "shared-mem (Eq.4)"},
			{Coeffs: tauRow, Rel: milp.LE, RHS: tauMax, Name: "threads (Eq.5)"},
			{Coeffs: rhoRow, Rel: milp.LE, RHS: rhoMax, Name: "resident-blocks"},
			{Coeffs: ones, Rel: milp.LE, RHS: float64(c), Name: "concurrency (Eq.6)"},
			{Coeffs: ones, Rel: milp.GE, RHS: 1, Name: "progress"},
		},
		Lower:    lower,
		Upper:    upper,
		Integer:  integer,
		VarNames: names,
	}
	sol, err := milp.Solve(prob, nil)
	if err != nil || sol.Status != milp.Optimal {
		plan.Fallback = true
		plan.Streams = 1
		return plan
	}

	total := 0
	for i := 0; i < n; i++ {
		cnt := int(math.Round(sol.X[i]))
		total += cnt
		plan.Kernels = append(plan.Kernels, KernelPlan{
			Name:        names[i],
			Count:       cnt,
			UpperBound:  int(upper[i]),
			BlocksPerSM: int(beta[i]),
			Threads:     int(tau[i]),
			SharedMem:   int(sm[i]),
			AvgDuration: p.Kernels[i].AvgDuration,
		})
	}
	if total < 1 {
		total = 1
	}
	if total > c {
		total = c
	}
	plan.Streams = total
	plan.ActiveThreads = sol.Objective
	plan.OccupancyRatio = sol.Objective / tauMax
	plan.MILPNodes = sol.Nodes
	return plan
}
