package core

import "sync"

// Budget is the device-wide in-flight concurrency ledger unifying the three
// parallelism axes — batch-level chain streams, DAG layer wavefronts, and
// the copy-stream overlap — under one cap instead of three independent
// ones. Every holder of device concurrency acquires its share before
// dispatching and releases it at its barrier:
//
//   - Runtime.BeginLayer acquires the current plan's stream share and
//     Runtime.Sync releases it (the serial per-layer path);
//   - each DAG LayerSession acquires its own share for its layer and
//     releases it at its Sync, while LayerConcurrencyCap quotes the
//     remaining budget to the DAG scheduler each round;
//   - StageInput holds one unit for the copy stream's in-flight transfer;
//   - a serve.Server holds one unit per in-flight device batch.
//
// Acquire never blocks and always grants at least one unit — the budget
// throttles concurrency, it cannot deadlock progress. A partial grant only
// shrinks how many pool streams a layer's chains spread over (the same
// stream-assignment freedom as ForceSerial), so the budget never changes
// planned widths and therefore never changes trained bits.
type Budget struct {
	mu     sync.Mutex
	cap    int
	used   int
	peak   int
	ledger *Ledger
}

// NewBudget builds a budget with the given cap (≤ 0 selects 1). The ledger
// may be nil.
func NewBudget(cap int, ledger *Ledger) *Budget {
	if cap < 1 {
		cap = 1
	}
	return &Budget{cap: cap, ledger: ledger}
}

// Cap returns the device-wide in-flight cap.
func (b *Budget) Cap() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cap
}

// InFlight returns the currently granted units.
func (b *Budget) InFlight() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Available returns the unclaimed units (never negative).
func (b *Budget) Available() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.used >= b.cap {
		return 0
	}
	return b.cap - b.used
}

// Acquire grants min(want, available) units, but always at least one:
// a caller that must make progress gets the default-stream minimum even
// when the device is saturated (oversubscribing by that floor is how the
// budget stays deadlock-free). A clamped grant is counted as a throttle.
func (b *Budget) Acquire(want int) int {
	if want < 1 {
		want = 1
	}
	b.mu.Lock()
	grant := want
	if avail := b.cap - b.used; grant > avail {
		grant = avail
	}
	if grant < 1 {
		grant = 1
	}
	b.used += grant
	if b.used > b.peak {
		b.peak = b.used
	}
	throttled := grant < want
	used, cap, peak := b.used, b.cap, b.peak
	b.mu.Unlock()
	if b.ledger != nil {
		b.ledger.addBudgetAcquire(throttled, used, cap, peak)
	}
	return grant
}

// Release returns n granted units (floored at an empty budget, so a
// defensive double release cannot underflow).
func (b *Budget) Release(n int) {
	if n < 1 {
		return
	}
	b.mu.Lock()
	b.used -= n
	if b.used < 0 {
		b.used = 0
	}
	b.mu.Unlock()
}

// Reset forcibly drops every outstanding grant. Rollback paths use it:
// a step that died mid-layer may never reach the Sync that would have
// released its grants, and the retry must start from an empty budget.
func (b *Budget) Reset() {
	b.mu.Lock()
	b.used = 0
	b.mu.Unlock()
}
