package core
