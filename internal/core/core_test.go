package core

import (
	"testing"
	"time"

	"repro/internal/cuptisim"
	"repro/internal/dnn"
	"repro/internal/simgpu"
	"repro/internal/tensor"
)

// heavyConvNet builds a single-conv net whose per-image kernels are long
// relative to the launch overhead and whose grids underutilize the device —
// the regime where the paper's batch-level parallelism wins.
func heavyConvNet(t *testing.T, batch int) *dnn.Net {
	t.Helper()
	ctx := dnn.NewContext(dnn.HostLauncher{}, 1)
	ctx.Compute = false
	cfg := dnn.Conv(384, 3, 1, 1)
	net, err := dnn.NewNet("heavy").
		Input("data", batch, 256, 13, 13).
		Input("label", batch).
		Add(dnn.NewConv("conv", cfg), []string{"data"}, []string{"c"}).
		Add(dnn.NewReLU("relu"), []string{"c"}, []string{"r"}).
		Add(dnn.NewIP("ip", dnn.IP(10)), []string{"r"}, []string{"scores"}).
		Add(dnn.NewSoftmaxLoss("loss"), []string{"scores", "label"}, []string{"loss"}).
		Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// elapsed runs one timing-only forward pass and returns the virtual time it
// occupied (host dispatch + device completion).
func elapsed(t *testing.T, net *dnn.Net, dev *simgpu.Device, l dnn.Launcher) time.Duration {
	t.Helper()
	if err := dev.ResetClocks(); err != nil {
		t.Fatal(err)
	}
	ctx := dnn.NewContext(l, 1)
	ctx.Compute = false
	if _, err := net.Forward(ctx); err != nil {
		t.Fatal(err)
	}
	devT, err := dev.Synchronize()
	if err != nil {
		t.Fatal(err)
	}
	if h := dev.HostTime(); h > devT {
		return h
	}
	return devT
}

func TestRuntimeLifecycle(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100)
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)
	if fw.Runtime(dev) != rt {
		t.Fatal("runtime not cached per device")
	}
	net := heavyConvNet(t, 8)
	ctx := dnn.NewContext(rt, 1)
	ctx.Compute = false

	// Iteration 1: profiling. No plans yet.
	if _, err := net.Forward(ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(rt.Plans()); got != 0 {
		t.Fatalf("plans before second iteration = %d, want 0", got)
	}
	if rt.Pool().Size() != 0 {
		t.Fatal("pool created during profiling")
	}

	// Iteration 2: analysis happens lazily per layer.
	if _, err := net.Forward(ctx); err != nil {
		t.Fatal(err)
	}
	plans := rt.Plans()
	if len(plans) == 0 {
		t.Fatal("no plans after second iteration")
	}
	var convPlan *Plan
	for _, p := range plans {
		if p.Key == "conv/fwd" {
			convPlan = p
		}
	}
	if convPlan == nil {
		t.Fatalf("no plan for conv/fwd; have %v", planKeys(plans))
	}
	if convPlan.Streams < 2 {
		t.Fatalf("conv plan uses %d streams; expected concurrency on P100\n%s",
			convPlan.Streams, convPlan)
	}
	if convPlan.Fallback {
		t.Fatalf("conv plan fell back: %s", convPlan)
	}
	if rt.Pool().Size() < convPlan.Streams {
		t.Fatalf("pool size %d < plan streams %d", rt.Pool().Size(), convPlan.Streams)
	}
	// The conv profile must contain the Caffe kernel trio.
	names := map[string]bool{}
	for _, k := range convPlan.Kernels {
		names[k.Name] = true
	}
	for _, want := range []string{"im2col_gpu", "sgemm_64x64", "gemmk_1xN"} {
		if !names[want] {
			t.Errorf("conv plan missing kernel %s (have %v)", want, convPlan.Kernels)
		}
	}

	// Ledger recorded profiling and analysis.
	snap := rt.Ledger().Snapshot()
	if snap.ProfiledKernels == 0 || snap.Tp == 0 {
		t.Fatalf("no profiling accounted: %s", snap)
	}
	if snap.AnalyzedLayers == 0 || snap.Ta == 0 {
		t.Fatalf("no analysis accounted: %s", snap)
	}
	if snap.MemCUPTI == 0 || snap.MemTT != snap.ProfiledKernels*MemTTPerRecord {
		t.Fatalf("memory accounting wrong: %s", snap)
	}
	if snap.MemCUPTI <= snap.MemTT+snap.MemK {
		t.Fatalf("mem_cupti should dominate (Fig. 10): %s", snap)
	}
	if snap.TTotal() != snap.Tp+snap.Ta+snap.Ts {
		t.Fatal("Eq. 12 arithmetic")
	}
	if snap.MemTotal() != snap.MemTT+snap.MemK+snap.MemCUPTI {
		t.Fatal("Eq. 10 arithmetic")
	}
}

func planKeys(plans []*Plan) []string {
	out := make([]string, len(plans))
	for i, p := range plans {
		out[i] = p.Key
	}
	return out
}

// TestGLP4NNSpeedsUpHeavyConv is the headline behaviour: on a P100, the
// batch-split conv with analyzer-sized streams must beat the serial
// baseline clearly (the paper reports up to 4× per layer).
func TestGLP4NNSpeedsUpHeavyConv(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100)
	net := heavyConvNet(t, 16)

	naive := elapsed(t, net, dev, dnn.SerialLauncher{Dev: dev})

	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)
	// Warm up: profiling iteration + analysis iteration.
	elapsed(t, net, dev, rt)
	elapsed(t, net, dev, rt)
	glp := elapsed(t, net, dev, rt)

	speedup := float64(naive) / float64(glp)
	if speedup < 1.5 {
		t.Fatalf("GLP4NN speedup = %.2fx (naive %v, glp4nn %v); want ≥1.5x", speedup, naive, glp)
	}
	t.Logf("speedup %.2fx (naive %v vs glp4nn %v)", speedup, naive, glp)
}

// TestGLP4NNForwardBitwiseInvariant: with real compute, the GLP4NN path
// must produce bitwise-identical forward activations to the serial path —
// the convergence-invariance property (Section 3.3.1) at the output level.
func TestGLP4NNForwardBitwiseInvariant(t *testing.T) {
	build := func() *dnn.Net {
		ctx := dnn.NewContext(dnn.HostLauncher{}, 3)
		cfg := dnn.Conv(8, 3, 1, 1)
		cfg.Seed = 5
		ipCfg := dnn.IP(4)
		ipCfg.Seed = 5
		net, err := dnn.NewNet("inv").
			Input("data", 6, 4, 9, 9).
			Input("label", 6).
			Add(dnn.NewConv("conv", cfg), []string{"data"}, []string{"c"}).
			Add(dnn.NewReLU("relu"), []string{"c"}, []string{"r"}).
			Add(dnn.NewIP("ip", ipCfg), []string{"r"}, []string{"scores"}).
			Add(dnn.NewSoftmaxLoss("loss"), []string{"scores", "label"}, []string{"loss"}).
			Build(ctx)
		if err != nil {
			t.Fatal(err)
		}
		fill := make([]float32, net.Blob("data").Count())
		for i := range fill {
			fill[i] = float32((i*2654435761)%1000)/500 - 1
		}
		if err := net.SetInputData("data", fill); err != nil {
			t.Fatal(err)
		}
		return net
	}

	devA := simgpu.NewDevice(simgpu.TeslaP100)
	netA := build()
	ctxA := dnn.NewContext(dnn.SerialLauncher{Dev: devA}, 3)
	if _, err := netA.ForwardBackward(ctxA); err != nil {
		t.Fatal(err)
	}

	devB := simgpu.NewDevice(simgpu.TeslaP100)
	netB := build()
	fw := New()
	defer fw.Close()
	ctxB := dnn.NewContext(fw.Runtime(devB), 3)
	for i := 0; i < 3; i++ { // profile, analyze, run
		if _, err := netB.ForwardBackward(ctxB); err != nil {
			t.Fatal(err)
		}
	}

	if !tensor.Equal(netA.Blob("scores").Data, netB.Blob("scores").Data) {
		t.Fatal("forward outputs differ between naive and GLP4NN paths")
	}
	// Gradients may reassociate across stream partials: require tight
	// agreement, not bitwise equality.
	pa, pb := netA.Params(), netB.Params()
	for i := range pa {
		if d := tensor.MaxAbsDiff(pa[i].Diff, pb[i].Diff); d > 1e-4 {
			t.Fatalf("gradient %s differs by %v", pa[i].Name, d)
		}
	}
}

// TestAnalyzerPaperWalkthrough reconstructs the Fig. 6 example: the conv1
// layer of CaffeNet on the K40C, whose im2col launches with an [18,1,1]
// grid and 33 registers per thread. The analyzer must produce a small
// multi-stream plan (the paper's walkthrough yields 3).
func TestAnalyzerPaperWalkthrough(t *testing.T) {
	ledger := &Ledger{}
	a := NewAnalyzer(simgpu.TeslaK40C, ledger)
	p := newLayerProfile("conv1/fwd")
	mk := func(name string, grid simgpu.Dim3, block, regs, smem int, dur time.Duration) {
		for i := 0; i < 4; i++ { // several launches, as in a real batch
			p.add(kernelActivity(name, grid, block, regs, smem, dur))
		}
	}
	mk("im2col", simgpu.D1(18), 512, 33, 0, 23*time.Microsecond)
	mk("sgemm", simgpu.D2(48, 2), 256, 96, 16384, 150*time.Microsecond)
	mk("gemmk", simgpu.D2(48, 2), 256, 64, 2048, 12*time.Microsecond)

	plan, err := a.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Fallback {
		t.Fatalf("fallback plan: %s", plan)
	}
	if plan.Streams < 2 || plan.Streams > 6 {
		t.Fatalf("walkthrough plan streams = %d, want a small multi-stream pool\n%s", plan.Streams, plan)
	}
	// Hard constraints of Eqs. 4-6 must hold.
	spec := simgpu.TeslaK40C
	smUsed, thrUsed, blkUsed, total := 0, 0, 0, 0
	for _, k := range plan.Kernels {
		smUsed += k.Count * k.SharedMem * k.BlocksPerSM
		thrUsed += k.Count * k.Threads * k.BlocksPerSM
		blkUsed += k.Count * k.BlocksPerSM
		total += k.Count
		if k.Count > k.UpperBound {
			t.Fatalf("kernel %s exceeds Eq.7 bound: %d > %d", k.Name, k.Count, k.UpperBound)
		}
	}
	if smUsed > spec.SharedMemPerSM() {
		t.Fatalf("Eq.4 violated: %d > %d", smUsed, spec.SharedMemPerSM())
	}
	if thrUsed > spec.MaxThreadsPerSM {
		t.Fatalf("Eq.5 violated: %d > %d", thrUsed, spec.MaxThreadsPerSM)
	}
	if blkUsed > spec.MaxBlocksPerSM {
		t.Fatalf("block constraint violated: %d > %d", blkUsed, spec.MaxBlocksPerSM)
	}
	if total > spec.MaxConcurrentKernels() {
		t.Fatalf("Eq.6 violated: %d > %d", total, spec.MaxConcurrentKernels())
	}
	if plan.OccupancyRatio <= 0 || plan.OccupancyRatio > 1 {
		t.Fatalf("occupancy ratio = %v", plan.OccupancyRatio)
	}
	if ledger.Snapshot().Ta == 0 {
		t.Fatal("T_a not accounted")
	}

	// Concurrency maintainer: second analysis returns the cached plan.
	again, _ := a.Analyze(p)
	if again != plan {
		t.Fatal("plan not cached")
	}
	if got, _ := a.Cached("conv1/fwd"); got != plan {
		t.Fatal("Cached lookup failed")
	}
	if s := plan.String(); s == "" {
		t.Fatal("empty plan string")
	}
}

func kernelActivity(name string, grid simgpu.Dim3, block, regs, smem int, dur time.Duration) cuptisim.KernelActivity {
	return cuptisim.KernelActivity{
		Name:           name,
		Grid:           grid,
		Block:          simgpu.D1(block),
		RegsPerThread:  regs,
		SharedMemBytes: smem,
		End:            dur,
	}
}

func TestAnalyzerEmptyProfileFallsBack(t *testing.T) {
	a := NewAnalyzer(simgpu.TeslaP100, nil)
	plan, err := a.Analyze(newLayerProfile("empty/fwd"))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Fallback || plan.Streams != 1 {
		t.Fatalf("empty profile plan = %+v, want fallback single stream", plan)
	}
}

func TestStreamPool(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100)
	m := NewStreamManager()
	p := m.Pool(dev)
	if m.Pool(dev) != p {
		t.Fatal("pool not cached per device")
	}
	if p.Stream(3) != nil {
		t.Fatal("empty pool should return nil (default stream)")
	}
	p.EnsureSize(4)
	p.EnsureSize(2) // never shrinks
	if p.Size() != 4 {
		t.Fatalf("size = %d", p.Size())
	}
	if p.Stream(1) == p.Stream(2) {
		t.Fatal("distinct indices map to same stream")
	}
	if p.Stream(1) != p.Stream(5) {
		t.Fatal("round-robin wrap failed")
	}
	if p.Stream(-3) == nil {
		t.Fatal("negative index should still resolve")
	}
	if p.Device() != dev {
		t.Fatal("device accessor")
	}
	if err := p.Release(); err != nil {
		t.Fatal(err)
	}
	if p.Size() != 0 {
		t.Fatal("release did not empty pool")
	}
}

func TestFixedLauncher(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100)
	l := NewFixedLauncher(dev, 4)
	if l.Width() != 4 {
		t.Fatalf("width = %d", l.Width())
	}
	net := heavyConvNet(t, 8)
	ctx := dnn.NewContext(l, 1)
	ctx.Compute = false
	if _, err := net.Forward(ctx); err != nil {
		t.Fatal(err)
	}
	recs, err := dev.Trace()
	if err != nil {
		t.Fatal(err)
	}
	streams := map[int]bool{}
	for _, r := range recs {
		streams[r.StreamID] = true
	}
	if len(streams) < 4 {
		t.Fatalf("fixed launcher used %d streams, want ≥4", len(streams))
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	zero := NewFixedLauncher(dev, 0)
	if zero.Width() != 1 {
		t.Fatal("zero-stream launcher width should clamp to 1")
	}
}

// TestSmallLayerCanRegress mirrors Fig. 9: a conv whose per-image kernels
// are comparable to the launch overhead gains little or even loses.
func TestSmallLayerCanRegress(t *testing.T) {
	ctxh := dnn.NewContext(dnn.HostLauncher{}, 1)
	ctxh.Compute = false
	net, err := dnn.NewNet("tinyconv").
		Input("data", 8, 1, 12, 12).
		Add(dnn.NewConv("conv", dnn.Conv(4, 3, 1, 1)), []string{"data"}, []string{"c"}).
		Build(ctxh)
	if err != nil {
		t.Fatal(err)
	}
	dev := simgpu.NewDevice(simgpu.TeslaP100)
	naive := elapsed(t, net, dev, dnn.SerialLauncher{Dev: dev})
	many := NewFixedLauncher(dev, 16)
	wide := elapsed(t, net, dev, many)
	// With ~3µs kernels and 6µs launches there is nothing to overlap; the
	// wide pool must not be dramatically better, and is typically worse.
	if float64(naive)/float64(wide) > 1.3 {
		t.Fatalf("tiny layer speedup %.2fx is implausible (naive %v, wide %v)",
			float64(naive)/float64(wide), naive, wide)
	}
}

// TestNetworkAgnosticMLP: the paper claims GLP4NN is network-agnostic (any
// batch-trained net, no layout assumptions). A pure-MLP net with none of
// the convolution machinery must profile, analyze and run through the same
// scheduler without special-casing.
func TestNetworkAgnosticMLP(t *testing.T) {
	ctxh := dnn.NewContext(dnn.HostLauncher{}, 4)
	ip1 := dnn.IP(128)
	ip1.Seed = 4
	ip2 := dnn.IP(64)
	ip2.Seed = 4
	ip3 := dnn.IP(10)
	ip3.Seed = 4
	net, err := dnn.NewNet("mlp").
		Input("data", 32, 256).
		Input("label", 32).
		Add(dnn.NewIP("fc1", ip1), []string{"data"}, []string{"h1"}).
		Add(dnn.NewTanH("act1"), []string{"h1"}, []string{"a1"}).
		Add(dnn.NewIP("fc2", ip2), []string{"a1"}, []string{"h2"}).
		Add(dnn.NewELU("act2", 1), []string{"h2"}, []string{"a2"}).
		Add(dnn.NewIP("fc3", ip3), []string{"a2"}, []string{"scores"}).
		Add(dnn.NewSoftmaxLoss("loss"), []string{"scores", "label"}, []string{"loss"}).
		Build(ctxh)
	if err != nil {
		t.Fatal(err)
	}
	dev := simgpu.NewDevice(simgpu.TitanXP)
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)
	ctx := dnn.NewContext(rt, 4)
	fill := make([]float32, net.Blob("data").Count())
	for i := range fill {
		fill[i] = float32(i%13)/6 - 1
	}
	if err := net.SetInputData("data", fill); err != nil {
		t.Fatal(err)
	}
	s := dnn.NewSolver(net, ctx, dnn.SolverConfig{BaseLR: 0.01, Momentum: 0.9})
	for i := 0; i < 3; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	plans := rt.Plans()
	if len(plans) == 0 {
		t.Fatal("MLP produced no plans")
	}
	for _, p := range plans {
		if p.Streams < 1 {
			t.Fatalf("plan %s has %d streams", p.Key, p.Streams)
		}
	}
	if rt.Ledger().Snapshot().ProfiledKernels == 0 {
		t.Fatal("MLP kernels were not profiled")
	}
}
