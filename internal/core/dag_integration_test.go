package core

import (
	"math"
	"testing"

	"repro/internal/dnn"
	"repro/internal/models"
	"repro/internal/simgpu"
)

// trainGoogLeNet trains a few GoogLeNet steps through a fresh GLP4NN
// runtime and returns the final params and the runtime's ledger snapshot.
func trainGoogLeNet(t *testing.T, dag bool, steps int) ([][]float32, Snapshot) {
	t.Helper()
	w, err := models.Get("GoogLeNet")
	if err != nil {
		t.Fatal(err)
	}
	dev := simgpu.NewDevice(simgpu.TeslaP100)
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)
	ctx := dnn.NewContext(rt, 5)
	ctx.Compute = true
	net, err := w.Build(ctx, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	net.EnableDAG(dag)
	feed := w.NewFeeder(2, 6)
	s := dnn.NewSolver(net, ctx, dnn.SolverConfig{BaseLR: 0.001, Momentum: 0.9, WeightDecay: 0.001})
	for i := 0; i < steps; i++ {
		if err := feed(net); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var out [][]float32
	for _, p := range net.Params() {
		out = append(out, append([]float32(nil), p.Data.Data()...))
	}
	return out, rt.Ledger().Snapshot()
}

// TestDAGRuntimeInvariance runs GoogLeNet's inception branches through the
// operator DAG scheduler on the full GLP4NN runtime: the first iterations
// profile and analyze in exact serial order (DAGReady gates the DAG until
// every plan is cached), later iterations dispatch independent layers
// through concurrent LayerSessions — and the trained parameters stay
// bitwise identical to the serial schedule.
func TestDAGRuntimeInvariance(t *testing.T) {
	const steps = 3 // step 1 profiles, step 2 analyzes, step 3 runs the DAG
	serial, ssnap := trainGoogLeNet(t, false, steps)
	dag, dsnap := trainGoogLeNet(t, true, steps)
	if len(serial) != len(dag) {
		t.Fatalf("param count mismatch: %d vs %d", len(serial), len(dag))
	}
	for i := range serial {
		for j := range serial[i] {
			if math.Float32bits(serial[i][j]) != math.Float32bits(dag[i][j]) {
				t.Fatalf("param %d[%d] differs: serial %v dag %v", i, j, serial[i][j], dag[i][j])
			}
		}
	}
	if ssnap.DAGDispatches != 0 {
		t.Fatalf("serial run charged %d DAG dispatches", ssnap.DAGDispatches)
	}
	if dsnap.DAGDispatches == 0 {
		t.Fatal("DAG run never dispatched through a concurrent LayerSession")
	}
	if dsnap.DAGDispatches > dsnap.Dispatches {
		t.Fatalf("DAGDispatches %d exceeds Dispatches %d (must be a subset)",
			dsnap.DAGDispatches, dsnap.Dispatches)
	}
}

// TestDAGReadyGate covers the gate directly: unprofiled keys are not
// ready; once a profiling window closes over them, DAGReady collects,
// analyzes on the spot and reports ready.
func TestDAGReadyGate(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100)
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)

	if rt.DAGReady([]string{"conv/fwd"}) {
		t.Fatal("unseen key reported ready")
	}
	// Sighting 1: opens the profiling window and records the kernels.
	rt.BeginLayer("conv/fwd")
	if err := rt.Launch(testKernel("sgemm", "s0"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Synchronize(); err != nil {
		t.Fatal(err)
	}
	// The gate closes the window itself — no second serial sighting needed.
	if !rt.DAGReady([]string{"conv/fwd"}) {
		t.Fatal("profiled key not ready")
	}
	if _, ok := rt.Analyzer().Cached("conv/fwd"); !ok {
		t.Fatal("DAGReady did not cache the analyzed plan")
	}
	// A mix with an unseen key stays gated.
	if rt.DAGReady([]string{"conv/fwd", "ip/fwd"}) {
		t.Fatal("mixed ready/unseen keys reported ready")
	}
}

// TestLayerSessionNeverProfiles: a forked session resolves cached plans
// only; an unknown key degrades to width 1 without opening a profiling
// window or disturbing the runtime's serial state.
func TestLayerSessionNeverProfiles(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100)
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)

	s, ok := rt.ForkLayerSession().(dnn.Launcher)
	if !ok {
		t.Fatalf("forked session %T does not implement dnn.Launcher", rt.ForkLayerSession())
	}
	s.BeginLayer("mystery/fwd")
	if w := s.Width(); w != 1 {
		t.Fatalf("unplanned session width = %d, want 1", w)
	}
	if err := s.Launch(testKernel("k", "x"), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// The session must not have opened a profiling window for the key.
	if rt.DAGReady([]string{"mystery/fwd"}) {
		t.Fatal("session launch made an unprofiled key ready")
	}
	// Unplanned launches ride the default stream: no round-robin decision,
	// nothing charged to the dispatch counters (same as the serial path).
	snap := rt.Ledger().Snapshot()
	if snap.DAGDispatches != 0 {
		t.Fatalf("DAGDispatches = %d, want 0 for a default-stream launch", snap.DAGDispatches)
	}
}

// TestLayerConcurrencyCap: the cap divides the device's concurrent-kernel
// budget by the widest cached plan and never drops below 1.
func TestLayerConcurrencyCap(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100)
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)

	budget := dev.Spec().MaxConcurrentKernels()
	if got := rt.LayerConcurrencyCap(); got != budget {
		t.Fatalf("cap with no plans = %d, want the full budget %d", got, budget)
	}
	// Profile and analyze one layer; the cap shrinks by its width.
	rt.BeginLayer("conv/fwd")
	for c := 0; c < 4; c++ {
		if err := rt.Launch(testKernel("sgemm", "s"), c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dev.Synchronize(); err != nil {
		t.Fatal(err)
	}
	if !rt.DAGReady([]string{"conv/fwd"}) {
		t.Fatal("not ready after profiling")
	}
	plan, ok := rt.Analyzer().Cached("conv/fwd")
	if !ok {
		t.Fatal("no cached plan")
	}
	want := budget
	if !plan.Serial && plan.Streams > 1 {
		want = budget / plan.Streams
	}
	if want < 1 {
		want = 1
	}
	if got := rt.LayerConcurrencyCap(); got != want {
		t.Fatalf("cap = %d, want %d (plan width %d)", got, want, plan.Streams)
	}
}
