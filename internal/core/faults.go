package core

import (
	"time"

	"repro/internal/simgpu"
)

// Fault taxonomy and retry policy of the self-healing runtime.
//
// Errors out of the device fall in two classes:
//
//   - transient: sporadic device/driver hiccups that may succeed on retry —
//     injected simgpu.FaultError values (and anything else implementing
//     Transient() bool → true). The runtime retries these with exponential
//     backoff charged to the host dispatch timeline, then degrades
//     (default-stream launch, stream quarantine, serial width-1 plan)
//     rather than aborting.
//   - terminal: deterministic programming or invariant errors — invalid
//     launch configurations, launches on destroyed streams or foreign
//     devices, engine invariant violations. Retrying cannot help; they
//     propagate immediately.
//
// Every recovery action is counted in the Ledger (LaunchRetries,
// LaunchFailures, SyncRetries, StreamQuarantines, Degradations,
// WatchdogTrips) so a run can prove its fault paths fired.

// transient is the marker interface recoverable errors implement
// (simgpu.FaultError does).
type transient interface{ Transient() bool }

// IsTransient reports whether any error in err's tree marks itself
// transient. It walks both single (Unwrap() error) and joined
// (Unwrap() []error) wrappers.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if t, ok := err.(transient); ok {
		return t.Transient()
	}
	switch u := err.(type) {
	case interface{ Unwrap() error }:
		return IsTransient(u.Unwrap())
	case interface{ Unwrap() []error }:
		for _, e := range u.Unwrap() {
			if IsTransient(e) {
				return true
			}
		}
	}
	return false
}

// IsDeviceLost reports whether any error in err's tree marks permanent
// whole-device loss. Such errors are never transient — every retry ladder
// aborts on them immediately — and they are the trainer's signal to evict
// the replica rather than degrade it.
func IsDeviceLost(err error) bool { return simgpu.IsDeviceLost(err) }

// Retry policy: bounded attempts with exponential backoff. Backoff is
// virtual host time (Device.AdvanceHost), so recovery cost shows up in the
// simulated timeline the way driver-level retry latency would on hardware.
const (
	// launchAttempts bounds tries of one kernel launch per stream choice
	// (first try + retries).
	launchAttempts = 4
	// syncAttempts bounds tries of one device synchronization.
	syncAttempts = 4
	// createAttempts bounds tries of one stream creation.
	createAttempts = 3
	// retryBackoffBase is the first retry's backoff; it doubles per retry.
	retryBackoffBase = 2 * time.Microsecond
)

// backoff returns the exponential delay before retry attempt a (a ≥ 1).
func backoff(a int) time.Duration {
	return retryBackoffBase << (a - 1)
}

// DefaultWatchdogLimit is the hung-kernel threshold of Runtime.Sync's
// watchdog: any kernel resident longer than this in virtual time is treated
// as hung and its layer is degraded to the serial fallback plan. Honest
// kernels in the catalog run microseconds to low milliseconds; injected
// hangs default to 2 s (simgpu.DefaultHangDelay).
const DefaultWatchdogLimit = time.Second
