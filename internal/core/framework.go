package core

import (
	"errors"
	"sync"

	"repro/internal/simgpu"
)

// Framework wires GLP4NN's modules with the paper's Fig. 5 topology: the
// resource tracker and stream manager are shared across all GPUs of the
// machine; each device gets a private kernel analyzer and runtime
// scheduler.
type Framework struct {
	tracker *Tracker
	manager *StreamManager
	model   Model

	mu       sync.Mutex
	runtimes map[*simgpu.Device]*Runtime
}

// New builds an empty framework with the paper's MILP concurrency model;
// runtimes are created per device on demand.
func New() *Framework {
	return NewWithModel(MILPModel{})
}

// NewWithModel builds a framework whose per-device analyzers use a custom
// concurrency model (the kernel analyzer is customizable by design).
func NewWithModel(m Model) *Framework {
	if m == nil {
		m = MILPModel{}
	}
	return &Framework{
		tracker:  NewTracker(),
		manager:  NewStreamManager(),
		model:    m,
		runtimes: map[*simgpu.Device]*Runtime{},
	}
}

// Tracker returns the shared resource tracker.
func (f *Framework) Tracker() *Tracker { return f.tracker }

// StreamManager returns the shared stream manager.
func (f *Framework) StreamManager() *StreamManager { return f.manager }

// Runtime returns (creating on demand) the device's runtime scheduler. Use
// it as the dnn.Launcher of a training context to run a net under GLP4NN.
func (f *Framework) Runtime(dev *simgpu.Device) *Runtime {
	f.mu.Lock()
	defer f.mu.Unlock()
	r := f.runtimes[dev]
	if r == nil {
		ledger := &Ledger{}
		r = newRuntime(dev, f.tracker, NewAnalyzerWithModel(dev.Spec(), ledger, f.model), f.manager.Pool(dev), ledger)
		f.runtimes[dev] = r
	}
	return r
}

// Devices returns the devices with active runtimes.
func (f *Framework) Devices() []*simgpu.Device {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*simgpu.Device, 0, len(f.runtimes))
	for d := range f.runtimes {
		out = append(out, d)
	}
	return out
}

// Close releases profiling sessions.
func (f *Framework) Close() {
	f.tracker.Close()
}

// FixedLauncher is the baseline launcher for the paper's motivation
// experiments (Figs. 2–4): a fixed-size stream pool with plain round-robin
// dispatch and no profiling or analysis. Width 1 reduces to naive Caffe.
type FixedLauncher struct {
	dev     *simgpu.Device
	streams []*simgpu.Stream
}

// NewFixedLauncher creates a launcher with n pool streams on the device.
// Stream creation is best-effort: if the device refuses a stream, the pool
// stops growing there and dispatch wraps around the streams that exist
// (width 0 degenerates to the default stream).
func NewFixedLauncher(dev *simgpu.Device, n int) *FixedLauncher {
	l := &FixedLauncher{dev: dev}
	for i := 0; i < n; i++ {
		s, err := dev.CreateStream()
		if err != nil {
			break
		}
		l.streams = append(l.streams, s)
	}
	return l
}

// BeginLayer implements dnn.Launcher.
func (l *FixedLauncher) BeginLayer(string) {}

// Launch implements dnn.Launcher.
func (l *FixedLauncher) Launch(k *simgpu.Kernel, chain int) error {
	var s *simgpu.Stream
	if chain >= 0 && len(l.streams) > 0 {
		s = l.streams[chain%len(l.streams)]
	}
	return l.dev.Launch(k, s)
}

// Sync implements dnn.Launcher.
func (l *FixedLauncher) Sync() error {
	if len(l.streams) <= 1 {
		return nil // single stream: ordering suffices, like naive Caffe
	}
	_, err := l.dev.Synchronize()
	return err
}

// Width implements dnn.Launcher.
func (l *FixedLauncher) Width() int {
	if len(l.streams) < 1 {
		return 1
	}
	return len(l.streams)
}

// Release destroys the pool streams. Like StreamPool.Release, a destroy
// failure does not strand the remaining streams: all are attempted, the
// slice is cleared, and the errors are joined.
func (l *FixedLauncher) Release() error {
	var errs []error
	for _, s := range l.streams {
		if err := l.dev.DestroyStream(s); err != nil {
			errs = append(errs, err)
		}
	}
	l.streams = nil
	return errors.Join(errs...)
}
