package core

import (
	"fmt"
	"time"

	"repro/internal/simgpu"
)

// ChainLauncher is the launcher contract FusingLauncher wraps and
// implements. It is structurally identical to dnn.Launcher (kept local so
// internal/core does not depend on internal/dnn).
type ChainLauncher interface {
	BeginLayer(key string)
	Launch(k *simgpu.Kernel, chain int) error
	Sync() error
	Width() int
}

// FusingLauncher implements the paper's future-work item 2: "kernel
// reordering and kernel fusion technologies may be helpful ... especially
// for small kernels". It wraps another launcher and fuses consecutive
// sub-threshold kernels of the same dependency chain into one launch, so a
// chain of tiny kernels (the Fig. 9 regression case: layers finishing
// within ~2 ms whose kernels are comparable to T_launch) pays the launch
// overhead once instead of per kernel.
//
// Fusion preserves numerics exactly: the fused kernel's closure runs the
// original closures in submission order. The fused launch configuration is
// the widest of the parts (a real fused kernel would be compiled that way)
// and the cost descriptors add.
type FusingLauncher struct {
	inner ChainLauncher
	spec  simgpu.DeviceSpec

	threshold time.Duration

	pendingChain int
	pending      *simgpu.Kernel
	fusedInto    int // parts in the pending kernel
	fused        int64
}

// NewFusingLauncher wraps inner with chain-local kernel fusion on the given
// device spec. threshold ≤ 0 defaults to 3× the device's launch overhead.
func NewFusingLauncher(inner ChainLauncher, spec simgpu.DeviceSpec, threshold time.Duration) *FusingLauncher {
	if threshold <= 0 {
		threshold = 3 * spec.LaunchOverhead
	}
	return &FusingLauncher{inner: inner, spec: spec, threshold: threshold, pendingChain: -1}
}

// EstimateDuration is the analytic single-kernel duration estimate used to
// decide what counts as "small": grid-limited compute time vs
// occupancy-limited memory time, plus the latency floor.
func EstimateDuration(spec simgpu.DeviceSpec, k *simgpu.Kernel) time.Duration {
	blocks := float64(k.Config.Blocks())
	threads := float64(k.Config.ThreadsPerBlock())
	// Compute: each resident block gets min(1, τ/cores) of one SM; the grid
	// uses at most #SM SMs at once.
	smShare := threads / float64(spec.CoresPerSM)
	if smShare > 1 {
		smShare = 1
	}
	activeSMs := blocks
	if m := float64(spec.SMCount); activeSMs > m {
		activeSMs = m
	}
	rate := spec.PeakFlopsPerSM() * smShare * activeSMs // FLOP/s
	tc := 0.0
	if k.Cost.FLOPs > 0 && rate > 0 {
		tc = k.Cost.FLOPs / rate
	}
	// Memory: bandwidth share scales with resident threads below the
	// saturation point.
	sat := spec.MemSaturationOccupancy * float64(spec.SMCount*spec.MaxThreadsPerSM)
	frac := blocks * threads / sat
	if frac > 1 {
		frac = 1
	}
	tm := 0.0
	if k.Cost.Bytes > 0 && frac > 0 {
		tm = k.Cost.Bytes / (spec.MemBandwidth() * frac)
	}
	t := tc
	if tm > t {
		t = tm
	}
	return time.Duration(t*1e9) + spec.KernelLatencyFloor
}

func (f *FusingLauncher) small(k *simgpu.Kernel) bool {
	return EstimateDuration(f.spec, k) < f.threshold
}

// BeginLayer implements the launcher contract; a layer boundary flushes any
// pending fusion (chains do not cross layers).
func (f *FusingLauncher) BeginLayer(key string) {
	_ = f.flush() // error resurfaces on the next Launch/Sync
	f.inner.BeginLayer(key)
}

// Launch implements the launcher contract.
func (f *FusingLauncher) Launch(k *simgpu.Kernel, chain int) error {
	if chain < 0 || !f.small(k) {
		// Unfusable: flush anything pending, forward as-is.
		if err := f.flush(); err != nil {
			return err
		}
		return f.inner.Launch(k, chain)
	}
	if f.pending != nil && f.pendingChain == chain {
		f.fuse(k)
		// If the accumulated kernel is no longer small, emit it now so
		// fusion never builds monsters.
		if !f.small(f.pending) {
			return f.flush()
		}
		return nil
	}
	if err := f.flush(); err != nil {
		return err
	}
	cp := *k
	f.pending = &cp
	f.pendingChain = chain
	f.fusedInto = 1
	return nil
}

// fuse merges k into the pending kernel.
func (f *FusingLauncher) fuse(k *simgpu.Kernel) {
	p := f.pending
	if f.fusedInto == 1 {
		p.Name = "fused(" + p.Name
	} else {
		p.Name = p.Name[:len(p.Name)-1]
	}
	p.Name += "+" + k.Name + ")"
	if k.Config.Blocks()*k.Config.ThreadsPerBlock() > p.Config.Blocks()*p.Config.ThreadsPerBlock() {
		p.Config.Grid = k.Config.Grid
		p.Config.Block = k.Config.Block
	}
	if k.Config.SharedMemBytes > p.Config.SharedMemBytes {
		p.Config.SharedMemBytes = k.Config.SharedMemBytes
	}
	if k.Config.RegsPerThread > p.Config.RegsPerThread {
		p.Config.RegsPerThread = k.Config.RegsPerThread
	}
	p.Cost = p.Cost.Add(k.Cost)
	prev, next := p.Fn, k.Fn
	switch {
	case prev == nil:
		p.Fn = next
	case next == nil:
		// keep prev
	default:
		p.Fn = func() { prev(); next() }
	}
	f.fusedInto++
	f.fused++
}

// flush emits the pending fused kernel, if any.
func (f *FusingLauncher) flush() error {
	if f.pending == nil {
		return nil
	}
	k := f.pending
	chain := f.pendingChain
	f.pending = nil
	f.pendingChain = -1
	f.fusedInto = 0
	return f.inner.Launch(k, chain)
}

// Sync implements the launcher contract.
func (f *FusingLauncher) Sync() error {
	if err := f.flush(); err != nil {
		return err
	}
	return f.inner.Sync()
}

// Width implements the launcher contract.
func (f *FusingLauncher) Width() int { return f.inner.Width() }

// Fused returns how many launches fusion has eliminated so far.
func (f *FusingLauncher) Fused() int64 { return f.fused }

// String describes the launcher configuration.
func (f *FusingLauncher) String() string {
	return fmt.Sprintf("fusing(threshold=%v, eliminated=%d)", f.threshold, f.fused)
}
