package core

import (
	"testing"
	"time"

	"repro/internal/dnn"
	"repro/internal/simgpu"
	"repro/internal/tensor"
)

// recordingLauncher captures launches and runs closures (host semantics).
type recordingLauncher struct {
	kernels []*simgpu.Kernel
	chains  []int
	synced  int
}

func (r *recordingLauncher) BeginLayer(string) {}
func (r *recordingLauncher) Launch(k *simgpu.Kernel, chain int) error {
	r.kernels = append(r.kernels, k)
	r.chains = append(r.chains, chain)
	if k.Fn != nil {
		k.Fn()
	}
	return nil
}
func (r *recordingLauncher) Sync() error { r.synced++; return nil }
func (r *recordingLauncher) Width() int  { return 4 }

func tinyKernel(name string, order *[]string) *simgpu.Kernel {
	return &simgpu.Kernel{
		Name:   name,
		Config: simgpu.LaunchConfig{Grid: simgpu.D1(2), Block: simgpu.D1(64)},
		Cost:   simgpu.Cost{FLOPs: 1000, Bytes: 1000},
		Fn:     func() { *order = append(*order, name) },
	}
}

func bigKernel(name string) *simgpu.Kernel {
	return &simgpu.Kernel{
		Name:   name,
		Config: simgpu.LaunchConfig{Grid: simgpu.D1(64), Block: simgpu.D1(256)},
		Cost:   simgpu.Cost{FLOPs: 5e9},
	}
}

func TestFusingLauncherMergesSmallChainKernels(t *testing.T) {
	inner := &recordingLauncher{}
	f := NewFusingLauncher(inner, simgpu.TeslaP100, 0)
	var order []string

	// Three tiny kernels on chain 0 → one fused launch (flushed by Sync).
	for _, n := range []string{"a", "b", "c"} {
		if err := f.Launch(tinyKernel(n, &order), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if len(inner.kernels) != 1 {
		t.Fatalf("inner saw %d launches, want 1 fused", len(inner.kernels))
	}
	k := inner.kernels[0]
	if k.Name != "fused(a+b+c)" {
		t.Fatalf("fused name = %q", k.Name)
	}
	if k.Cost.FLOPs != 3000 || k.Cost.Bytes != 3000 {
		t.Fatalf("fused cost = %+v", k.Cost)
	}
	// All closures ran, in order.
	if len(order) != 3 || order[0] != "a" || order[2] != "c" {
		t.Fatalf("closure order = %v", order)
	}
	if f.Fused() != 2 {
		t.Fatalf("Fused() = %d, want 2 eliminated", f.Fused())
	}
	if inner.synced != 1 {
		t.Fatal("sync not forwarded")
	}
}

func TestFusingLauncherChainSwitchFlushes(t *testing.T) {
	inner := &recordingLauncher{}
	f := NewFusingLauncher(inner, simgpu.TeslaP100, 0)
	var order []string
	mustLaunch := func(k *simgpu.Kernel, chain int) {
		t.Helper()
		if err := f.Launch(k, chain); err != nil {
			t.Fatal(err)
		}
	}
	mustLaunch(tinyKernel("a0", &order), 0)
	mustLaunch(tinyKernel("b0", &order), 0)
	mustLaunch(tinyKernel("a1", &order), 1) // chain switch → flush chain 0
	mustLaunch(tinyKernel("b1", &order), 1)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if len(inner.kernels) != 2 {
		t.Fatalf("inner saw %d launches, want 2 (one per chain)", len(inner.kernels))
	}
	if inner.chains[0] != 0 || inner.chains[1] != 1 {
		t.Fatalf("chains = %v", inner.chains)
	}
}

func TestFusingLauncherPassesBigAndDefaultKernels(t *testing.T) {
	inner := &recordingLauncher{}
	f := NewFusingLauncher(inner, simgpu.TeslaP100, 0)
	var order []string
	if err := f.Launch(tinyKernel("small", &order), 0); err != nil {
		t.Fatal(err)
	}
	// A big kernel on the same chain flushes the pending small one and
	// passes through unfused.
	if err := f.Launch(bigKernel("big"), 0); err != nil {
		t.Fatal(err)
	}
	// Chain −1 (default stream) is never fused.
	if err := f.Launch(tinyKernel("dflt", &order), -1); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if len(inner.kernels) != 3 {
		t.Fatalf("inner saw %d launches, want 3", len(inner.kernels))
	}
	if inner.kernels[0].Name != "small" || inner.kernels[1].Name != "big" || inner.kernels[2].Name != "dflt" {
		t.Fatalf("order = %v %v %v", inner.kernels[0].Name, inner.kernels[1].Name, inner.kernels[2].Name)
	}
	if f.Width() != 4 {
		t.Fatal("width not delegated")
	}
	if f.String() == "" {
		t.Fatal("String")
	}
}

func TestFusingLauncherStopsGrowingFusions(t *testing.T) {
	inner := &recordingLauncher{}
	// Low threshold so two tiny kernels already exceed it once merged.
	f := NewFusingLauncher(inner, simgpu.TeslaP100, 12*time.Microsecond)
	var order []string
	for i := 0; i < 50; i++ {
		k := tinyKernel("k", &order)
		k.Cost = simgpu.Cost{Bytes: 4e6} // ≈9µs each on P100's scaled BW
		if err := f.Launch(k, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if len(inner.kernels) < 10 {
		t.Fatalf("fusion built monsters: %d launches for 50 kernels", len(inner.kernels))
	}
	if len(order) != 50 {
		t.Fatalf("%d closures ran, want 50", len(order))
	}
}

// TestEstimateDurationTracksSimulator: the analytic estimate must be within
// a small factor of the event-driven engine's solo-kernel time.
func TestEstimateDurationTracksSimulator(t *testing.T) {
	cases := []*simgpu.Kernel{
		{Name: "c", Config: simgpu.LaunchConfig{Grid: simgpu.D1(18), Block: simgpu.D1(256)}, Cost: simgpu.Cost{FLOPs: 5e8}},
		{Name: "m", Config: simgpu.LaunchConfig{Grid: simgpu.D1(40), Block: simgpu.D1(512)}, Cost: simgpu.Cost{Bytes: 2e7}},
		{Name: "t", Config: simgpu.LaunchConfig{Grid: simgpu.D1(1), Block: simgpu.D1(64)}, Cost: simgpu.Cost{FLOPs: 1e6}},
	}
	for _, k := range cases {
		dev := simgpu.NewDevice(simgpu.TeslaP100)
		if err := dev.Launch(k, nil); err != nil {
			t.Fatal(err)
		}
		recs, err := dev.Trace()
		if err != nil {
			t.Fatal(err)
		}
		actual := recs[0].Duration()
		est := EstimateDuration(simgpu.TeslaP100, k)
		ratio := float64(est) / float64(actual)
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("kernel %s: estimate %v vs simulated %v (ratio %.2f)", k.Name, est, actual, ratio)
		}
	}
}

// TestFusionPreservesNumericsAndHelps runs the Fig. 9 regression case (a
// tiny conv layer) and checks fusion (a) leaves the outputs bitwise
// identical and (b) reduces the simulated time of the multi-stream run.
func TestFusionPreservesNumericsAndHelps(t *testing.T) {
	build := func() *dnn.Net {
		ctx := dnn.NewContext(dnn.HostLauncher{}, 5)
		cfg := dnn.Conv(4, 3, 1, 1)
		cfg.Seed = 5
		net, err := dnn.NewNet("tiny").
			Input("data", 16, 1, 12, 12).
			Add(dnn.NewConv("conv", cfg), []string{"data"}, []string{"out"}).
			Build(ctx)
		if err != nil {
			t.Fatal(err)
		}
		fill := net.Blob("data").Data.Data()
		for i := range fill {
			fill[i] = float32(i%17)/8 - 1
		}
		return net
	}

	run := func(fuse bool) (*dnn.Net, time.Duration) {
		net := build()
		dev := simgpu.NewDevice(simgpu.TeslaP100)
		var l dnn.Launcher = NewFixedLauncher(dev, 8)
		if fuse {
			l = NewFusingLauncher(l.(*FixedLauncher), dev.Spec(), 0)
		}
		ctx := dnn.NewContext(l, 5)
		// warm buffers, then measure
		if _, err := net.Forward(ctx); err != nil {
			t.Fatal(err)
		}
		if err := dev.ResetClocks(); err != nil {
			t.Fatal(err)
		}
		if _, err := net.Forward(ctx); err != nil {
			t.Fatal(err)
		}
		d, err := dev.Synchronize()
		if err != nil {
			t.Fatal(err)
		}
		if h := dev.HostTime(); h > d {
			d = h
		}
		return net, d
	}

	plain, plainT := run(false)
	fused, fusedT := run(true)
	if !tensor.Equal(plain.Blob("out").Data, fused.Blob("out").Data) {
		t.Fatal("fusion changed numerical results")
	}
	if fusedT >= plainT {
		t.Fatalf("fusion did not help the tiny layer: %v vs %v", fusedT, plainT)
	}
	t.Logf("tiny conv forward: %v unfused vs %v fused", plainT, fusedT)
}
