package core

import (
	"math"

	"repro/internal/simgpu"
)

// modelInputs derives the per-kernel model parameters shared by all
// concurrency models: τ_i, sm_i, the clamped β_i of Eq. 8, and the Eq. 7
// upper bound.
func modelInputs(spec simgpu.DeviceSpec, p *LayerProfile) (tau, sm, beta, upper []float64, names []string) {
	c := spec.MaxConcurrentKernels()
	smMax := float64(spec.SharedMemPerSM())
	tauMax := float64(spec.MaxThreadsPerSM)
	nSM := float64(spec.SMCount)
	tLaunch := float64(spec.LaunchOverhead)

	n := len(p.Kernels)
	tau = make([]float64, n)
	sm = make([]float64, n)
	beta = make([]float64, n)
	upper = make([]float64, n)
	names = make([]string, n)
	for i, k := range p.Kernels {
		names[i] = k.Name
		tau[i] = float64(k.Config.ThreadsPerBlock())
		sm[i] = float64(k.Config.SharedMemBytes)
		blocks := float64(k.Config.Blocks())

		b := math.Floor(blocks / nSM)
		if b < 1 {
			b = 1
		}
		if occ := k.Config.MaxBlocksResidentPerSM(spec); occ > 0 && b > float64(occ) {
			b = float64(occ)
		}
		beta[i] = b

		bound := math.Inf(1)
		if tLaunch > 0 {
			bound = math.Ceil(float64(k.AvgDuration) / tLaunch)
		}
		if v := tauMax * nSM / (tau[i] * blocks); v < bound {
			bound = v
		}
		if sm[i] > 0 {
			if v := smMax * nSM / (sm[i] * blocks); v < bound {
				bound = v
			}
		}
		if v := float64(c); v < bound {
			bound = v
		}
		bound = math.Floor(bound)
		if bound < 1 {
			bound = 1
		}
		upper[i] = bound
	}
	return tau, sm, beta, upper, names
}

// GreedyModel is the solver-free alternative concurrency model for the
// analyzer ablation: repeatedly grant one more instance to the kernel with
// the highest active-thread payoff that still fits every hard constraint.
// It needs no LP machinery but can land on locally-optimal plans the MILP
// avoids.
type GreedyModel struct{}

// Name implements Model.
func (GreedyModel) Name() string { return "greedy" }

// Solve implements Model.
func (GreedyModel) Solve(spec simgpu.DeviceSpec, p *LayerProfile) *Plan {
	plan := &Plan{Key: p.Key, Streams: 1, SolvedFrom: p.TotalDuration()}
	n := len(p.Kernels)
	if n == 0 {
		plan.Fallback = true
		return plan
	}
	tau, sm, beta, upper, names := modelInputs(spec, p)

	smMax := float64(spec.SharedMemPerSM())
	tauMax := float64(spec.MaxThreadsPerSM)
	rhoMax := float64(spec.MaxBlocksPerSM)
	c := spec.MaxConcurrentKernels()

	counts := make([]int, n)
	var usedSM, usedTau, usedRho float64
	total := 0
	for {
		best := -1
		var bestPayoff float64
		for i := 0; i < n; i++ {
			if float64(counts[i]) >= upper[i] || total >= c {
				continue
			}
			if usedSM+sm[i]*beta[i] > smMax ||
				usedTau+tau[i]*beta[i] > tauMax ||
				usedRho+beta[i] > rhoMax {
				continue
			}
			if payoff := tau[i] * beta[i]; best < 0 || payoff > bestPayoff {
				best = i
				bestPayoff = payoff
			}
		}
		if best < 0 {
			break
		}
		counts[best]++
		usedSM += sm[best] * beta[best]
		usedTau += tau[best] * beta[best]
		usedRho += beta[best]
		total++
	}

	if total == 0 {
		// Not even one instance of any kernel fits the per-SM budgets
		// simultaneously; serialize.
		plan.Fallback = true
		return plan
	}
	for i := 0; i < n; i++ {
		plan.Kernels = append(plan.Kernels, KernelPlan{
			Name:        names[i],
			Count:       counts[i],
			UpperBound:  int(upper[i]),
			BlocksPerSM: int(beta[i]),
			Threads:     int(tau[i]),
			SharedMem:   int(sm[i]),
			AvgDuration: p.Kernels[i].AvgDuration,
		})
	}
	plan.Streams = total
	plan.ActiveThreads = usedTau
	plan.OccupancyRatio = usedTau / tauMax
	return plan
}
