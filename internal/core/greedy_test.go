package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simgpu"
)

// randomProfile builds a random layer profile with 1-4 kernels.
func randomProfile(rng *rand.Rand) *LayerProfile {
	p := newLayerProfile("layer/fwd")
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		p.add(kernelActivity(
			"k"+string(rune('a'+i)),
			simgpu.D1(1+rng.Intn(300)),
			32*(1+rng.Intn(16)),
			16+rng.Intn(100),
			rng.Intn(5)*4096,
			time.Duration(1+rng.Intn(500))*time.Microsecond,
		))
	}
	return p
}

// planFeasible checks a plan against the hard constraints of Eqs. 4-6.
func planFeasible(t *testing.T, spec simgpu.DeviceSpec, plan *Plan) bool {
	t.Helper()
	var smUsed, thrUsed, blkUsed, total int
	for _, k := range plan.Kernels {
		smUsed += k.Count * k.SharedMem * k.BlocksPerSM
		thrUsed += k.Count * k.Threads * k.BlocksPerSM
		blkUsed += k.Count * k.BlocksPerSM
		total += k.Count
		if k.Count > k.UpperBound {
			t.Logf("count %d > bound %d for %s", k.Count, k.UpperBound, k.Name)
			return false
		}
		if k.Count < 0 {
			return false
		}
	}
	if smUsed > spec.SharedMemPerSM() || thrUsed > spec.MaxThreadsPerSM ||
		blkUsed > spec.MaxBlocksPerSM || total > spec.MaxConcurrentKernels() {
		t.Logf("constraint violated: sm=%d thr=%d blk=%d total=%d", smUsed, thrUsed, blkUsed, total)
		return false
	}
	return true
}

// TestQuickGreedyVsMILP: on random profiles across the catalog devices,
// both models must produce feasible plans and the MILP's objective must
// dominate the greedy's (it is the exact optimum of the same problem).
func TestQuickGreedyVsMILP(t *testing.T) {
	specs := simgpu.DeviceCatalog
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(8))}
	trial := 0
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := specs[trial%len(specs)]
		trial++
		p := randomProfile(rng)

		mp := MILPModel{}.Solve(spec, p)
		gp := GreedyModel{}.Solve(spec, p)
		if mp.Fallback {
			// The MILP relaxation can only be infeasible when not even one
			// kernel fits — then greedy must also serialize.
			return gp.Streams == 1
		}
		if !planFeasible(t, spec, mp) {
			t.Logf("seed %d: MILP plan infeasible\n%s", seed, mp)
			return false
		}
		if !gp.Fallback && !planFeasible(t, spec, gp) {
			t.Logf("seed %d: greedy plan infeasible\n%s", seed, gp)
			return false
		}
		if gp.ActiveThreads > mp.ActiveThreads+1e-6 {
			t.Logf("seed %d: greedy objective %v beats MILP %v", seed, gp.ActiveThreads, mp.ActiveThreads)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyModelBasics(t *testing.T) {
	if (GreedyModel{}).Name() != "greedy" || (MILPModel{}).Name() != "milp" {
		t.Fatal("model names")
	}
	empty := GreedyModel{}.Solve(simgpu.TeslaP100, newLayerProfile("e"))
	if !empty.Fallback || empty.Streams != 1 {
		t.Fatal("empty profile should fall back")
	}
	// The walkthrough profile under greedy: feasible multi-stream plan.
	p := newLayerProfile("conv1/fwd")
	p.add(kernelActivity("im2col", simgpu.D1(18), 512, 33, 0, 23*time.Microsecond))
	p.add(kernelActivity("sgemm", simgpu.D2(48, 2), 256, 96, 16384, 150*time.Microsecond))
	plan := GreedyModel{}.Solve(simgpu.TeslaK40C, p)
	if plan.Streams < 2 || !planFeasible(t, simgpu.TeslaK40C, plan) {
		t.Fatalf("greedy walkthrough plan: %s", plan)
	}
}

func TestFrameworkWithGreedyModel(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100)
	fw := NewWithModel(GreedyModel{})
	defer fw.Close()
	rt := fw.Runtime(dev)
	if rt.Analyzer().Model().Name() != "greedy" {
		t.Fatal("model not propagated to analyzer")
	}
	if NewWithModel(nil).Runtime(dev2()).Analyzer().Model().Name() != "milp" {
		t.Fatal("nil model should default to milp")
	}
}

func dev2() *simgpu.Device { return simgpu.NewDevice(simgpu.TeslaK40C) }
