package core

import (
	"sort"
	"sync"
	"time"
)

// defaultLatencyCap bounds a LatencyWindow's memory: 16 Ki samples × 8 B.
// Long-running servers keep the most recent window, which is what a
// serving tail-latency quantile should describe anyway.
const defaultLatencyCap = 1 << 14

// LatencyWindow is a bounded, concurrency-safe reservoir of latency
// observations with nearest-rank quantiles. Once the window is full, new
// samples overwrite the oldest (a sliding window, not a decaying sketch):
// quantiles describe the most recent capacity-many observations.
type LatencyWindow struct {
	mu   sync.Mutex
	buf  []int64 // ns, ring
	next int     // ring write position
	full bool
	n    int64 // total ever observed
}

// NewLatencyWindow builds a window holding the most recent capacity
// samples; capacity ≤ 0 selects the 16 Ki default.
func NewLatencyWindow(capacity int) *LatencyWindow {
	if capacity <= 0 {
		capacity = defaultLatencyCap
	}
	return &LatencyWindow{buf: make([]int64, 0, capacity)}
}

// Add records one observation.
func (w *LatencyWindow) Add(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.n++
	if !w.full {
		w.buf = append(w.buf, int64(d))
		if len(w.buf) == cap(w.buf) {
			w.full = true
		}
		return
	}
	w.buf[w.next] = int64(d)
	w.next = (w.next + 1) % len(w.buf)
}

// Count returns the total number of observations ever recorded (which may
// exceed the window's capacity).
func (w *LatencyWindow) Count() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Quantile returns the nearest-rank q-quantile (q in [0, 1]) of the
// windowed observations, 0 when empty.
func (w *LatencyWindow) Quantile(q float64) time.Duration {
	w.mu.Lock()
	sorted := append([]int64(nil), w.buf...)
	w.mu.Unlock()
	if len(sorted) == 0 {
		return 0
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return time.Duration(sorted[rank])
}
