// Package core is GLP4NN itself: the light-weight parallelization framework
// of the paper, built from its four modules —
//
//   - resource tracker (Tracker): a compact CUPTI-based kernel profiler and
//     parser that collects launch configurations and timings at runtime;
//   - kernel analyzer (Analyzer): the analytical model of Section 3.2,
//     solved as a small MILP (Eq. 1–9), with a per-device concurrency
//     maintainer cache;
//   - stream manager (StreamManager/StreamPool): a pool of CUDA streams so
//     concurrent kernels need no extra host threads or processes;
//   - runtime scheduler (Runtime): profiles a layer's kernels on first
//     sight, invokes the analyzer, sizes the stream pool, and thereafter
//     dispatches each batch sample's kernel chain round-robin over the
//     pool.
//
// Topology follows Fig. 5 of the paper: one Tracker and one StreamManager
// per machine (shared), one Analyzer and one Runtime per GPU device.
package core

import (
	"fmt"
	"sync"
	"time"
)

// Ledger accumulates GLP4NN's one-time overheads for one device — the
// quantities of the paper's cost model (Section 3.3.2): host memory
// (mem_tt, mem_K, mem_cupti; Fig. 10) and time (T_p profiling, T_a
// analysis, T_s scheduling; Table 6).
type Ledger struct {
	mu sync.Mutex

	memTT    int64
	memK     int64
	memCUPTI int64

	tp time.Duration
	ta time.Duration
	ts time.Duration

	profiledKernels int64
	analyzedLayers  int64
	dispatches      int64
	dagDispatches   int64
	profileFailures int64
	analyzeFailures int64

	launchRetries     int64
	launchFailures    int64
	syncRetries       int64
	memcpyRetries     int64
	streamQuarantines int64
	degradations      int64
	watchdogTrips     int64

	prefetchHits   int64
	prefetchStalls int64
	stallNs        int64
	copyOverlapNs  int64

	serveRequests int64
	serveBatches  int64
	serveSamples  int64
	serveReqLat   *LatencyWindow
	serveBatchLat *LatencyWindow

	evictions  int64
	shardMoves int64
	resumes    int64

	bucketsReduced int64
	overlappedComm time.Duration
	exposedComm    time.Duration

	driftEvents     int64
	reprofiles      int64
	planSwaps       int64
	budgetAcquires  int64
	budgetThrottles int64
	budgetPeak      int
	budgetCap       int
}

// Per-record host memory for the tracker's own structures: two 8-byte
// timestamps (mem_tt) and a parsed launch configuration (mem_K).
const (
	MemTTPerRecord = 16
	MemKPerRecord  = 56
)

// Snapshot is a copy of the ledger's counters.
type Snapshot struct {
	MemTT    int64
	MemK     int64
	MemCUPTI int64

	Tp time.Duration
	Ta time.Duration
	Ts time.Duration

	ProfiledKernels int64
	AnalyzedLayers  int64
	Dispatches      int64
	// DAGDispatches counts the subset of Dispatches issued by concurrent
	// LayerSessions of the operator DAG scheduler (inter-layer
	// parallelism), as opposed to the runtime's serial per-layer path.
	DAGDispatches int64

	// ProfileFailures counts profiling sessions that could not start or
	// collect; AnalyzeFailures counts profiles the analyzer rejected. Each
	// failure pins the affected layers to a cached serial-fallback plan.
	ProfileFailures int64
	AnalyzeFailures int64

	// Self-healing health counters. LaunchRetries / SyncRetries /
	// MemcpyRetries count transient device errors absorbed by bounded
	// retry; LaunchFailures counts launches that exhausted every retry and
	// stream choice; StreamQuarantines counts pool streams torn down after
	// persistent launch failures; Degradations counts layers demoted to the
	// serial default-stream fallback plan; WatchdogTrips counts kernels the
	// sync watchdog flagged as hung.
	LaunchRetries     int64
	LaunchFailures    int64
	SyncRetries       int64
	MemcpyRetries     int64
	StreamQuarantines int64
	Degradations      int64
	WatchdogTrips     int64

	// Input-pipeline counters. PrefetchHits counts batches the async
	// prefetcher had ready before the trainer asked; PrefetchStalls counts
	// the times the trainer had to wait (PrefetchStallNs is that waiting,
	// summed); CopyOverlapNs is the modeled device time of input H2D
	// copies issued on the runtime's dedicated copy stream — transfer time
	// taken off the critical path relative to a default-stream upload.
	PrefetchHits    int64
	PrefetchStalls  int64
	PrefetchStallNs int64
	CopyOverlapNs   int64

	// Serving counters (inference path). ServeRequests counts client
	// requests answered; ServeBatches counts device batches the dynamic
	// batcher flushed; ServeSamples sums their occupancies, so
	// ServeSamples/ServeBatches is the mean coalescing factor. The
	// quantiles are nearest-rank over a sliding window: request latency is
	// enqueue→answer (queueing + compute), batch latency is flush→done.
	ServeRequests int64
	ServeBatches  int64
	ServeSamples  int64
	ServeReqP50   time.Duration
	ServeReqP99   time.Duration
	ServeBatchP50 time.Duration
	ServeBatchP99 time.Duration

	// Elastic-training counters. Evictions counts replicas permanently
	// removed after device loss; ShardMoves counts batch shards
	// deterministically reassigned from evicted replicas to survivors;
	// Resumes counts trainer restores from a durable on-disk checkpoint.
	Evictions  int64
	ShardMoves int64
	Resumes    int64

	// Gradient all-reduce counters. BucketsReduced counts gradient buckets
	// folded across replicas; OverlappedCommNs is modeled ring time hidden
	// under residual backward compute; ExposedCommNs is the ring time left
	// on the critical path (what StepResult.CommTime charges).
	BucketsReduced int64
	OverlappedCommNs int64
	ExposedCommNs    int64

	// Adaptive-controller counters. DriftEvents counts step-boundary
	// verdicts where a layer's observed timing left its plan's band;
	// Reprofiles counts layers evicted into a shadow re-profiling window;
	// PlanSwaps counts re-solved plans swapped in at a step boundary.
	DriftEvents int64
	Reprofiles  int64
	PlanSwaps   int64

	// Unified-budget counters. BudgetAcquires counts grants of in-flight
	// concurrency units; BudgetThrottles counts grants clamped below the
	// request because other axes held the budget; BudgetPeak is the
	// highest in-flight total observed against BudgetCap.
	BudgetAcquires  int64
	BudgetThrottles int64
	BudgetPeak      int
	BudgetCap       int
}

// Recoveries sums every recovery action the runtime took — nonzero proves
// the fault paths actually fired during a chaos run.
func (s Snapshot) Recoveries() int64 {
	return s.LaunchRetries + s.SyncRetries + s.MemcpyRetries +
		s.StreamQuarantines + s.Degradations + s.WatchdogTrips
}

// Health renders the self-healing counters.
func (s Snapshot) Health() string {
	return fmt.Sprintf("retries: launch=%d sync=%d memcpy=%d | quarantines=%d degradations=%d watchdog=%d launch-failures=%d",
		s.LaunchRetries, s.SyncRetries, s.MemcpyRetries,
		s.StreamQuarantines, s.Degradations, s.WatchdogTrips, s.LaunchFailures)
}

// InputPipe renders the input-pipeline counters.
func (s Snapshot) InputPipe() string {
	return fmt.Sprintf("hits=%d stalls=%d stall-time=%v copy-overlap=%v",
		s.PrefetchHits, s.PrefetchStalls,
		time.Duration(s.PrefetchStallNs).Round(time.Microsecond),
		time.Duration(s.CopyOverlapNs).Round(time.Microsecond))
}

// Serving renders the inference-serving counters.
func (s Snapshot) Serving() string {
	mean := 0.0
	if s.ServeBatches > 0 {
		mean = float64(s.ServeSamples) / float64(s.ServeBatches)
	}
	return fmt.Sprintf("requests=%d batches=%d mean-batch=%.2f | req p50=%v p99=%v | batch p50=%v p99=%v",
		s.ServeRequests, s.ServeBatches, mean,
		s.ServeReqP50.Round(time.Microsecond), s.ServeReqP99.Round(time.Microsecond),
		s.ServeBatchP50.Round(time.Microsecond), s.ServeBatchP99.Round(time.Microsecond))
}

// Elastic renders the elastic-training counters.
func (s Snapshot) Elastic() string {
	return fmt.Sprintf("evictions=%d shard-moves=%d resumes=%d",
		s.Evictions, s.ShardMoves, s.Resumes)
}

// Adaptive renders the online-controller and unified-budget counters.
func (s Snapshot) Adaptive() string {
	return fmt.Sprintf("drift=%d reprofiles=%d swaps=%d | budget: acquires=%d throttled=%d peak=%d/%d",
		s.DriftEvents, s.Reprofiles, s.PlanSwaps,
		s.BudgetAcquires, s.BudgetThrottles, s.BudgetPeak, s.BudgetCap)
}

// Comm renders the gradient all-reduce counters.
func (s Snapshot) Comm() string {
	return fmt.Sprintf("buckets=%d overlapped=%v exposed=%v",
		s.BucketsReduced,
		time.Duration(s.OverlappedCommNs).Round(time.Microsecond),
		time.Duration(s.ExposedCommNs).Round(time.Microsecond))
}

// TTotal is the paper's Eq. 12: T_p + T_a + T_s.
func (s Snapshot) TTotal() time.Duration { return s.Tp + s.Ta + s.Ts }

// MemTotal is the paper's Eq. 10: mem_tt + mem_K + mem_cupti.
func (s Snapshot) MemTotal() int64 { return s.MemTT + s.MemK + s.MemCUPTI }

func (s Snapshot) String() string {
	return fmt.Sprintf("mem_tt=%dB mem_K=%dB mem_cupti=%dB | T_p=%v T_a=%v T_s=%v (kernels=%d layers=%d)",
		s.MemTT, s.MemK, s.MemCUPTI, s.Tp, s.Ta, s.Ts, s.ProfiledKernels, s.AnalyzedLayers)
}

func (l *Ledger) addProfiling(records int64, tp time.Duration, memCupti int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.profiledKernels += records
	l.memTT += records * MemTTPerRecord
	l.memK += records * MemKPerRecord
	if memCupti > l.memCUPTI {
		l.memCUPTI = memCupti
	}
	l.tp += tp
}

func (l *Ledger) addAnalysis(ta time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.analyzedLayers++
	l.ta += ta
}

func (l *Ledger) addProfileFailure() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.profileFailures++
}

func (l *Ledger) addAnalyzeFailure() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.analyzeFailures++
}

func (l *Ledger) addLaunchRetry() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.launchRetries++
}

func (l *Ledger) addLaunchFailure() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.launchFailures++
}

func (l *Ledger) addSyncRetry() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.syncRetries++
}

func (l *Ledger) addMemcpyRetry() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.memcpyRetries++
}

func (l *Ledger) addStreamQuarantine() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.streamQuarantines++
}

func (l *Ledger) addDegradation() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.degradations++
}

func (l *Ledger) addWatchdogTrip() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.watchdogTrips++
}

// PrefetchHit implements data.Observer: wiring a runtime's ledger into a
// data.Prefetcher lands input-pipeline behavior next to the paper's cost
// counters. Exported because the data package calls it from outside core.
func (l *Ledger) PrefetchHit() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.prefetchHits++
}

// PrefetchStall implements data.Observer (see PrefetchHit).
func (l *Ledger) PrefetchStall(wait time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.prefetchStalls++
	l.stallNs += int64(wait)
}

// ServeRequest implements serve.Observer: one client request answered,
// with its enqueue→answer latency. Wiring a runtime's ledger into a
// serve.Server lands serving behavior next to the paper's cost counters.
func (l *Ledger) ServeRequest(lat time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.serveRequests++
	if l.serveReqLat == nil {
		l.serveReqLat = NewLatencyWindow(0)
	}
	l.serveReqLat.Add(lat)
}

// ServeBatch implements serve.Observer: one device batch flushed with the
// given occupancy and flush→done latency.
func (l *Ledger) ServeBatch(size int, lat time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.serveBatches++
	l.serveSamples += int64(size)
	if l.serveBatchLat == nil {
		l.serveBatchLat = NewLatencyWindow(0)
	}
	l.serveBatchLat.Add(lat)
}

// AddEviction counts one replica permanently evicted after device loss.
// Exported because the parallel trainer calls it from outside core.
func (l *Ledger) AddEviction() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.evictions++
}

// AddShardMoves counts n batch shards reassigned from an evicted replica
// to survivors (see AddEviction).
func (l *Ledger) AddShardMoves(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.shardMoves += int64(n)
}

// AddResume counts one trainer restore from a durable on-disk checkpoint
// (see AddEviction).
func (l *Ledger) AddResume() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.resumes++
}

// AddBucketReduce accounts one step's gradient all-reduce: buckets folded,
// modeled ring time hidden under backward, and ring time left exposed on
// the critical path. Exported because the parallel trainer calls it from
// outside core.
func (l *Ledger) AddBucketReduce(buckets int, overlapped, exposed time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bucketsReduced += int64(buckets)
	l.overlappedComm += overlapped
	l.exposedComm += exposed
}

func (l *Ledger) addDriftEvent() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.driftEvents++
}

func (l *Ledger) addReprofile() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reprofiles++
}

func (l *Ledger) addPlanSwap() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.planSwaps++
}

func (l *Ledger) addBudgetAcquire(throttled bool, used, cap, peak int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.budgetAcquires++
	if throttled {
		l.budgetThrottles++
	}
	if peak > l.budgetPeak {
		l.budgetPeak = peak
	}
	l.budgetCap = cap
	_ = used
}

// addCopyOverlap credits modeled copy time issued on the dedicated copy
// stream instead of the default stream.
func (l *Ledger) addCopyOverlap(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.copyOverlapNs += int64(d)
}

// tsPerDispatch is the nominal cost of one round-robin stream-selection
// decision; the paper's static scheduler makes T_s "safely ignorable", and
// this keeps it measured rather than assumed.
const tsPerDispatch = 25 * time.Nanosecond

func (l *Ledger) addDispatch() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dispatches++
	l.ts += tsPerDispatch
}

// addDAGDispatch counts a pool-stream dispatch issued from a concurrent
// DAG layer session; it is also a dispatch (DAGDispatches ⊆ Dispatches).
func (l *Ledger) addDAGDispatch() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dispatches++
	l.dagDispatches++
	l.ts += tsPerDispatch
}

// Snapshot returns a copy of the counters.
func (l *Ledger) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Snapshot{
		MemTT: l.memTT, MemK: l.memK, MemCUPTI: l.memCUPTI,
		Tp: l.tp, Ta: l.ta, Ts: l.ts,
		ProfiledKernels: l.profiledKernels,
		AnalyzedLayers:  l.analyzedLayers,
		Dispatches:      l.dispatches,
		DAGDispatches:   l.dagDispatches,
		ProfileFailures: l.profileFailures,
		AnalyzeFailures: l.analyzeFailures,

		LaunchRetries:     l.launchRetries,
		LaunchFailures:    l.launchFailures,
		SyncRetries:       l.syncRetries,
		MemcpyRetries:     l.memcpyRetries,
		StreamQuarantines: l.streamQuarantines,
		Degradations:      l.degradations,
		WatchdogTrips:     l.watchdogTrips,

		PrefetchHits:    l.prefetchHits,
		PrefetchStalls:  l.prefetchStalls,
		PrefetchStallNs: l.stallNs,
		CopyOverlapNs:   l.copyOverlapNs,

		ServeRequests: l.serveRequests,
		ServeBatches:  l.serveBatches,
		ServeSamples:  l.serveSamples,
		ServeReqP50:   quantileOrZero(l.serveReqLat, 0.50),
		ServeReqP99:   quantileOrZero(l.serveReqLat, 0.99),
		ServeBatchP50: quantileOrZero(l.serveBatchLat, 0.50),
		ServeBatchP99: quantileOrZero(l.serveBatchLat, 0.99),

		Evictions:  l.evictions,
		ShardMoves: l.shardMoves,
		Resumes:    l.resumes,

		BucketsReduced:   l.bucketsReduced,
		OverlappedCommNs: int64(l.overlappedComm),
		ExposedCommNs:    int64(l.exposedComm),

		DriftEvents: l.driftEvents,
		Reprofiles:  l.reprofiles,
		PlanSwaps:   l.planSwaps,

		BudgetAcquires:  l.budgetAcquires,
		BudgetThrottles: l.budgetThrottles,
		BudgetPeak:      l.budgetPeak,
		BudgetCap:       l.budgetCap,
	}
}

func quantileOrZero(w *LatencyWindow, q float64) time.Duration {
	if w == nil {
		return 0
	}
	return w.Quantile(q)
}
