package core

import (
	"testing"

	"repro/internal/simgpu"
)

// Regression tests for the permanent fault class: a FaultError with
// Transient() == false must abort every bounded-retry ladder on first
// sight. Spinning a backoff ladder against CUDA_ERROR_DEVICE_LOST (or a
// hardened sticky-context site) wastes the retry budget and delays the
// trainer's eviction decision, so each test pins the exact ledger counters
// an early abort leaves behind.

// TestPermanentLaunchFaultAbortsLadder: a launch site hardened by
// PermanentAfter stops the launch ladder at the first permanent fault —
// one transient retry (the fault before hardening), then straight out.
func TestPermanentLaunchFaultAbortsLadder(t *testing.T) {
	inj := simgpu.FaultPlan{Seed: 11, Launch: 1, PermanentAfter: 1}.Injector()
	dev := simgpu.NewDevice(simgpu.TeslaP100, simgpu.WithInjector(inj))
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)

	runs := 0
	err := rt.Launch(fnKernel("k", func() { runs++ }), -1)
	if err == nil {
		t.Fatal("launch succeeded under an always-faulting permanent site")
	}
	if IsTransient(err) {
		t.Fatalf("hardened fault classified transient: %v", err)
	}
	if IsDeviceLost(err) {
		t.Fatalf("site fault misclassified as device loss: %v", err)
	}
	if runs != 0 {
		t.Fatalf("kernel math ran %d times under a failing launch", runs)
	}
	snap := rt.Ledger().Snapshot()
	// Fault 1 is transient (one retry), fault 2 is hardened: the ladder
	// must abort there, not burn the remaining launchAttempts budget.
	if snap.LaunchRetries != 1 {
		t.Fatalf("LaunchRetries = %d, want exactly 1 (abort on first permanent fault)", snap.LaunchRetries)
	}
	// The non-transient return path must not escalate to quarantine /
	// degrade / launch-failure bookkeeping — those are transient remedies.
	if snap.LaunchFailures != 0 || snap.StreamQuarantines != 0 || snap.Degradations != 0 {
		t.Fatalf("permanent fault escalated transient remedies: %s", snap.Health())
	}
	if st := inj.Stats(); st.Launches != 2 || st.Permanents != 1 {
		t.Fatalf("injector saw %d launch faults (%d permanent), want 2 (1 permanent)", st.Launches, st.Permanents)
	}
}

// TestPermanentSyncFaultAbortsLadder: same contract on the sync ladder.
func TestPermanentSyncFaultAbortsLadder(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100,
		simgpu.WithInjector(simgpu.FaultPlan{Seed: 12, Sync: 1, PermanentAfter: 1}.Injector()))
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)

	err := rt.Sync()
	if err == nil || IsTransient(err) {
		t.Fatalf("hardened sync fault not surfaced as permanent: %v", err)
	}
	if snap := rt.Ledger().Snapshot(); snap.SyncRetries != 1 {
		t.Fatalf("SyncRetries = %d, want exactly 1 (abort on first permanent fault)", snap.SyncRetries)
	}
}

// TestPermanentMemcpyFaultAbortsLadder: same contract on the DMA ladder.
func TestPermanentMemcpyFaultAbortsLadder(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100,
		simgpu.WithInjector(simgpu.FaultPlan{Seed: 13, Memcpy: 1, PermanentAfter: 1}.Injector()))
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)

	err := rt.UploadBytes(1 << 20)
	if err == nil || IsTransient(err) {
		t.Fatalf("hardened memcpy fault not surfaced as permanent: %v", err)
	}
	if snap := rt.Ledger().Snapshot(); snap.MemcpyRetries != 1 {
		t.Fatalf("MemcpyRetries = %d, want exactly 1 (abort on first permanent fault)", snap.MemcpyRetries)
	}
}

// TestPermanentCreateFaultPinsFallback: a hardened stream-creation site
// stops the create ladder early and pins the default-stream copy fallback;
// the staged copy itself still succeeds, degraded but correct.
func TestPermanentCreateFaultPinsFallback(t *testing.T) {
	inj := simgpu.FaultPlan{Seed: 14, CreateStream: 1, PermanentAfter: 1}.Injector()
	dev := simgpu.NewDevice(simgpu.TeslaP100, simgpu.WithInjector(inj))
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)

	if err := rt.StageInput(1 << 20); err != nil {
		t.Fatalf("staged copy failed instead of degrading to the default stream: %v", err)
	}
	// Create fault 1 is transient (retried), fault 2 permanent: exactly
	// two creation attempts, not the full createAttempts budget.
	if st := inj.Stats(); st.CreateStream != 2 {
		t.Fatalf("injector saw %d creation attempts, want exactly 2", st.CreateStream)
	}
	snap := rt.Ledger().Snapshot()
	if snap.Degradations != 1 {
		t.Fatalf("Degradations = %d, want 1 (copy pinned to default stream)", snap.Degradations)
	}
	if snap.CopyOverlapNs != 0 {
		t.Fatalf("default-stream fallback credited copy overlap: %s", snap.Health())
	}
}

// TestDeviceLossAbortsEveryLadderImmediately: device loss latches — every
// failable operation after the loss fails permanently on its first
// attempt, with zero retries charged to any ladder.
func TestDeviceLossAbortsEveryLadderImmediately(t *testing.T) {
	inj := simgpu.FaultPlan{Seed: 15, DeviceLossAfter: 1}.Injector()
	dev := simgpu.NewDevice(simgpu.TeslaP100, simgpu.WithInjector(inj))
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)

	runs := 0
	ops := []struct {
		name string
		call func() error
	}{
		{"launch", func() error { return rt.Launch(fnKernel("k", func() { runs++ }), -1) }},
		{"sync", rt.Sync},
		{"memcpy", func() error { return rt.UploadBytes(1 << 20) }},
	}
	for _, op := range ops {
		err := op.call()
		if err == nil {
			t.Fatalf("%s succeeded on a lost device", op.name)
		}
		if IsTransient(err) {
			t.Fatalf("%s: device loss classified transient: %v", op.name, err)
		}
		if !IsDeviceLost(err) {
			t.Fatalf("%s: loss not detectable via IsDeviceLost: %v", op.name, err)
		}
	}
	if runs != 0 {
		t.Fatalf("kernel math ran %d times on a lost device", runs)
	}
	snap := rt.Ledger().Snapshot()
	if snap.LaunchRetries != 0 || snap.SyncRetries != 0 || snap.MemcpyRetries != 0 {
		t.Fatalf("lost device was retried: %s", snap.Health())
	}
	if snap.LaunchFailures != 0 || snap.StreamQuarantines != 0 {
		t.Fatalf("device loss escalated transient remedies: %s", snap.Health())
	}
	st := inj.Stats()
	if !st.DeviceLost || st.LostOps != int64(len(ops)) {
		t.Fatalf("injector stats = %+v, want latched loss with %d lost ops", st, len(ops))
	}
}
