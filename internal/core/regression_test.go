package core

import (
	"strings"
	"testing"

	"repro/internal/simgpu"
)

func testKernel(name, tag string) *simgpu.Kernel {
	return &simgpu.Kernel{
		Name:   name,
		Tag:    tag,
		Config: simgpu.LaunchConfig{Grid: simgpu.D1(4), Block: simgpu.D1(128)},
		Cost:   simgpu.Cost{FLOPs: 1e6, Bytes: 1e5},
	}
}

// TestLaunchDoesNotMutateKernel: Runtime.Launch must prefix the scheduler key
// onto a *copy* of the kernel. Historically it wrote the prefixed tag back
// into the caller's kernel, so a kernel launched twice accumulated a double
// prefix ("key|key|tag") and concurrent chains raced on the shared field.
func TestLaunchDoesNotMutateKernel(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100)
	fw := New()
	defer fw.Close()
	r := fw.Runtime(dev)

	dev.SetTracing(true)
	r.BeginLayer("conv/fwd")
	k := testKernel("sgemm", "s0")
	if err := r.Launch(k, 0); err != nil {
		t.Fatal(err)
	}
	if k.Tag != "s0" {
		t.Fatalf("caller's kernel mutated: Tag = %q, want %q", k.Tag, "s0")
	}
	// Re-launching the same kernel must not accumulate prefixes.
	if err := r.Launch(k, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Synchronize(); err != nil {
		t.Fatal(err)
	}
	recs, err := dev.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	for _, rec := range recs {
		if rec.Tag != "conv/fwd|s0" {
			t.Fatalf("record tag = %q, want %q", rec.Tag, "conv/fwd|s0")
		}
	}
}

// TestLaunchEmptyTagNoDanglingPipe: a kernel with no tag of its own must be
// recorded under the bare scheduler key, not "key|".
func TestLaunchEmptyTagNoDanglingPipe(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100)
	fw := New()
	defer fw.Close()
	r := fw.Runtime(dev)

	dev.SetTracing(true)
	r.BeginLayer("relu/fwd")
	if err := r.Launch(testKernel("relu", ""), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Synchronize(); err != nil {
		t.Fatal(err)
	}
	recs, err := dev.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	if got := recs[0].Tag; got != "relu/fwd" {
		t.Fatalf("record tag = %q, want %q (no dangling separator)", got, "relu/fwd")
	}
	if strings.HasSuffix(recs[0].Tag, "|") {
		t.Fatalf("record tag %q ends in a dangling separator", recs[0].Tag)
	}
}

// TestStreamPoolReleaseAfterError: a failing DestroyStream must not strand
// the remaining streams. Historically Release returned on the first error,
// leaking every stream after it and leaving them in the slice, so a retry
// double-destroyed the ones before it.
func TestStreamPoolReleaseAfterError(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100)
	m := NewStreamManager()
	p := m.Pool(dev)
	p.EnsureSize(3)
	if dev.ActiveStreams() != 3 {
		t.Fatalf("active streams = %d, want 3", dev.ActiveStreams())
	}

	// Destroy the middle stream out from under the pool so its sweep fails
	// on it (double destroy) but must still free the other two.
	if err := dev.DestroyStream(p.Stream(1)); err != nil {
		t.Fatal(err)
	}
	err := p.Release()
	if err == nil {
		t.Fatal("Release: want joined error for the double destroy, got nil")
	}
	if !strings.Contains(err.Error(), "double destroy") {
		t.Fatalf("Release error = %v, want a double-destroy error", err)
	}
	if dev.ActiveStreams() != 0 {
		t.Fatalf("after Release: active streams = %d, want 0 (streams leaked)", dev.ActiveStreams())
	}
	if p.Size() != 0 {
		t.Fatalf("after Release: pool size = %d, want 0", p.Size())
	}
	// A retried Release must be a clean no-op, not a double destroy.
	if err := p.Release(); err != nil {
		t.Fatalf("second Release: %v", err)
	}
}

// TestFixedLauncherReleaseAfterError: same contract for the baseline
// launcher's pool.
func TestFixedLauncherReleaseAfterError(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100)
	l := NewFixedLauncher(dev, 3)
	if err := dev.DestroyStream(l.streams[0]); err != nil {
		t.Fatal(err)
	}
	if err := l.Release(); err == nil {
		t.Fatal("Release: want error, got nil")
	}
	if dev.ActiveStreams() != 0 {
		t.Fatalf("after Release: active streams = %d, want 0", dev.ActiveStreams())
	}
	if err := l.Release(); err != nil {
		t.Fatalf("second Release: %v", err)
	}
}

// TestStreamNegativeIndex: Stream must map negative chain ids (including
// math.MinInt, where i = -i overflows to itself) into the pool instead of
// panicking.
func TestStreamNegativeIndex(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100)
	p := NewStreamManager().Pool(dev)
	p.EnsureSize(3)
	for _, i := range []int{-1, -2, -3, -4, int(^uint(0) >> 1), -int(^uint(0)>>1) - 1} {
		if s := p.Stream(i); s == nil {
			t.Fatalf("Stream(%d) = nil", i)
		}
	}
	// Euclidean modulo: -1 and 1 land on distinct streams with size 3.
	if p.Stream(-1) == p.Stream(1) {
		t.Fatal("Stream(-1) == Stream(1): negation aliasing instead of Euclidean modulo")
	}
	if p.Stream(-1) != p.Stream(2) {
		t.Fatal("Stream(-1) != Stream(2): not Euclidean modulo")
	}
}

// TestProfilingFailureRecorded: when the profiler cannot run (sessions torn
// down), the runtime must record the failure in the ledger and pin the layer
// to a cached serial-fallback plan instead of silently retrying forever.
func TestProfilingFailureRecorded(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100)
	fw := New()
	defer fw.Close()
	r := fw.Runtime(dev)
	// Kill the device's CUPTI session before any profiling starts.
	r.tracker.session(dev).Close()

	r.BeginLayer("conv/fwd")
	if w := r.Width(); w != 1 {
		t.Fatalf("width after failed profiling = %d, want 1 (serial fallback)", w)
	}
	plan, ok := r.Analyzer().Cached("conv/fwd")
	if !ok {
		t.Fatal("no cached plan: the failure was not pinned, it will retry forever")
	}
	if !plan.Fallback || plan.Streams != 1 {
		t.Fatalf("cached plan = %+v, want serial fallback", plan)
	}
	snap := r.Ledger().Snapshot()
	if snap.ProfileFailures != 1 {
		t.Fatalf("ProfileFailures = %d, want 1", snap.ProfileFailures)
	}
	// Subsequent sightings hit the cache: no new failures recorded.
	r.BeginLayer("conv/fwd")
	if got := r.Ledger().Snapshot().ProfileFailures; got != 1 {
		t.Fatalf("ProfileFailures after cache hit = %d, want 1", got)
	}
}

// TestCollectFailureRecorded: a profiling iteration whose collection fails
// must pin every pending layer to the serial fallback and count the failure.
func TestCollectFailureRecorded(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100)
	fw := New()
	defer fw.Close()
	r := fw.Runtime(dev)

	// First sighting: profiling starts and the layer goes pending.
	r.BeginLayer("ip/fwd")
	if err := r.Launch(testKernel("gemv", "x"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Synchronize(); err != nil {
		t.Fatal(err)
	}

	// The session dies before the second sighting's collect.
	r.tracker.session(dev).Close()
	r.BeginLayer("ip/fwd")
	if w := r.Width(); w != 1 {
		t.Fatalf("width after failed collect = %d, want 1", w)
	}
	plan, ok := r.Analyzer().Cached("ip/fwd")
	if !ok || !plan.Fallback {
		t.Fatalf("cached plan = %+v ok=%v, want pinned serial fallback", plan, ok)
	}
	snap := r.Ledger().Snapshot()
	if snap.ProfileFailures != 1 {
		t.Fatalf("ProfileFailures = %d, want 1", snap.ProfileFailures)
	}
}

// TestCacheFallbackDoesNotOverwrite: a real analyzed plan must survive a
// later CacheFallback for the same key.
func TestCacheFallbackDoesNotOverwrite(t *testing.T) {
	a := NewAnalyzer(simgpu.TeslaP100, nil)
	p := newLayerProfile("k")
	real, err := a.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.CacheFallback("k"); got != real {
		t.Fatalf("CacheFallback replaced the analyzed plan: %+v", got)
	}
	// And a fallback is idempotent.
	fb := a.CacheFallback("fresh")
	if !fb.Fallback || fb.Streams != 1 {
		t.Fatalf("fallback plan = %+v", fb)
	}
	if a.CacheFallback("fresh") != fb {
		t.Fatal("CacheFallback not idempotent")
	}
}
