package core

import (
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/simgpu"
)

// Runtime is the per-device runtime scheduler module and implements
// dnn.Launcher. Its lifecycle per layer key matches the paper's Fig. 6
// workflow:
//
//  1. First invocation of a layer: its kernels are not yet profiled, so
//     they run serially on the default stream with the resource tracker
//     collecting records (the profiling iteration).
//  2. On the layer's second invocation the scheduler flushes the tracker,
//     hands the parsed profiles to the kernel analyzer, and initializes
//     the stream pool with the resulting concurrency configuration.
//  3. Thereafter every dependency chain (one batch sample's im2col → sgemm
//     → gemmk sequence) is dispatched round-robin onto the pool, using at
//     most the layer's planned number of streams.
type Runtime struct {
	dev      *simgpu.Device
	tracker  *Tracker
	analyzer *Analyzer
	pool     *StreamPool
	ledger   *Ledger

	budget *Budget

	mu          sync.Mutex
	pending     map[string]bool
	profiles    map[string]*LayerProfile // collected but possibly not yet analyzed
	profiling   bool
	current     string
	currentPlan *Plan
	grant       int // budget units held for the current layer's chains
	// reprofiling marks keys evicted by ScheduleReprofile whose re-solved
	// plan has not landed yet; the first re-analysis of such a key is the
	// plan swap the ledger counts.
	reprofiling map[string]bool

	// Adaptive state: the drift detector fed by a second device completion
	// listener. Guarded by adMu, never by r.mu — the listener runs under
	// the device lock, like the watchdog's.
	adMu         sync.Mutex
	adaptive     *DriftDetector
	adSubscribed bool

	// Watchdog state: the completion listener flags layer keys whose
	// kernels overstayed wdLimit; Sync drains the set and degrades those
	// layers. Guarded by wdMu, never by r.mu — the listener runs under the
	// device lock and must stay free of device calls and runtime state.
	wdMu    sync.Mutex
	wdLimit time.Duration
	wdHung  map[string]bool

	// Copy-stream state for StageInput: a dedicated stream that carries
	// input H2D copies so they overlap pool-stream compute. Created lazily;
	// copyDead pins the default-stream fallback after terminal creation
	// failure. Guarded by copyMu, never by r.mu — staging is called from
	// the training loop, not the launch path.
	copyMu     sync.Mutex
	copyStream *simgpu.Stream
	copyDead   bool
}

func newRuntime(dev *simgpu.Device, tracker *Tracker, analyzer *Analyzer, pool *StreamPool, ledger *Ledger) *Runtime {
	r := &Runtime{
		dev:      dev,
		tracker:  tracker,
		analyzer: analyzer,
		pool:     pool,
		ledger:   ledger,
		budget:   NewBudget(dev.Spec().MaxConcurrentKernels(), ledger),
		pending:  map[string]bool{},
		profiles: map[string]*LayerProfile{},
		wdLimit:  DefaultWatchdogLimit,
	}
	dev.Subscribe(r.watchdogObserve)
	return r
}

// Device returns the scheduled device.
func (r *Runtime) Device() *simgpu.Device { return r.dev }

// Ledger returns the device's overhead ledger.
func (r *Runtime) Ledger() *Ledger { return r.ledger }

// Analyzer returns the device's kernel analyzer (its cached plans are the
// data behind the paper's Fig. 8).
func (r *Runtime) Analyzer() *Analyzer { return r.analyzer }

// Pool returns the device's stream pool.
func (r *Runtime) Pool() *StreamPool { return r.pool }

// Budget returns the device-wide in-flight concurrency budget shared by
// chain streams, DAG wavefronts, the copy stream, and serving batches.
func (r *Runtime) Budget() *Budget { return r.budget }

// regrantLocked swaps the runtime's budget grant to match the current
// plan: the previous layer's share is released and the new layer's stream
// share acquired. A partial grant only shrinks how many pool streams the
// chains spread over (launchWith clamps lane selection to the grant), so
// the budget never affects planned widths. Called with r.mu held.
func (r *Runtime) regrantLocked() {
	want := 0
	if p := r.currentPlan; p != nil && p.Streams > 1 && !p.Serial {
		want = p.Streams
	}
	if r.grant > 0 {
		r.budget.Release(r.grant)
		r.grant = 0
	}
	if want > 1 {
		r.grant = r.budget.Acquire(want)
	}
}

// BeginLayer implements dnn.Launcher.
func (r *Runtime) BeginLayer(key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	defer r.regrantLocked()
	r.current = key
	if plan, ok := r.analyzer.Cached(key); ok {
		r.currentPlan = plan
		return
	}
	r.currentPlan = nil
	if profile, ok := r.profiles[key]; ok {
		// Profiled earlier; analyze now (lazily, once per key).
		r.currentPlan = r.analyzeLocked(profile)
		return
	}
	if r.pending[key] {
		// Second sighting without a profile: the profiling iteration is
		// over; collect everything and analyze this layer.
		r.finalizeLocked()
		if plan, ok := r.analyzer.Cached(key); ok {
			// Collection failed: the layer was pinned to the serial
			// fallback.
			r.currentPlan = plan
			return
		}
		if profile, ok := r.profiles[key]; ok {
			r.currentPlan = r.analyzeLocked(profile)
		}
		return
	}
	// First sighting: profile it.
	if !r.profiling {
		if err := r.profileRetry(func() error { return r.tracker.StartProfiling(r.dev) }); err != nil {
			// No profiler, no plan, ever: record the failure and pin the
			// serial fallback instead of futilely retrying each iteration.
			r.ledger.addProfileFailure()
			r.currentPlan = r.analyzer.CacheFallback(key)
			return
		}
		r.profiling = true
	}
	r.pending[key] = true
}

// analyzeLocked runs the analyzer on a collected profile, charging the
// solve time and sizing the pool. A failed analysis is recorded in the
// ledger and pins a cached serial-fallback plan, so the layer is not
// re-analyzed every iteration. If the device refuses to grow the pool past
// the default stream, the layer is demoted to serial dispatch — the plan
// keeps its width (the numeric contract) but every launch routes to the
// default stream, so a streamless device still trains with unchanged bits.
// Called with r.mu held.
func (r *Runtime) analyzeLocked(profile *LayerProfile) *Plan {
	plan, err := r.analyzer.Analyze(profile)
	if err != nil {
		r.ledger.addAnalyzeFailure()
		delete(r.reprofiling, profile.Key)
		return r.analyzer.CacheFallback(profile.Key)
	}
	if r.reprofiling[profile.Key] {
		// A drift-evicted key just got its re-solved plan: that is the
		// plan swap the adaptive controller promised at this boundary.
		delete(r.reprofiling, profile.Key)
		r.ledger.addPlanSwap()
	}
	r.dev.AdvanceHost(plan.SolveTime)
	if plan.Streams > 1 {
		if n, err := r.pool.EnsureSize(plan.Streams); err != nil && n == 0 {
			r.ledger.addDegradation()
			return r.analyzer.ForceSerial(plan.Key)
		}
		// A partial pool (0 < n < plan.Streams) is fine: Stream wraps
		// chain indices around the streams that do exist.
	}
	return plan
}

// finalizeLocked flushes the tracker and stores the parsed profiles. Called
// with r.mu held.
func (r *Runtime) finalizeLocked() {
	if !r.profiling {
		return
	}
	r.profiling = false
	var profiles map[string]*LayerProfile
	err := r.profileRetry(func() error {
		var cerr error
		profiles, cerr = r.tracker.Collect(r.dev, r.ledger)
		return cerr
	})
	if err != nil {
		// The profiling records are lost. Record the failure and pin every
		// pending layer to a cached serial-fallback plan: training proceeds
		// correctly (just without concurrency for these layers) and the
		// collect is not retried forever.
		r.ledger.addProfileFailure()
		for _, key := range sortedKeys(r.pending) {
			r.analyzer.CacheFallback(key)
			delete(r.pending, key)
			delete(r.reprofiling, key)
		}
		return
	}
	for _, key := range sortedProfileKeys(profiles) {
		r.profiles[key] = profiles[key]
		delete(r.pending, key)
	}
	// Keys that produced no kernels (pure-host layers) get trivial plans.
	for _, key := range sortedKeys(r.pending) {
		r.profiles[key] = newLayerProfile(key)
		delete(r.pending, key)
	}
}

// sortedKeys returns a set's keys in sorted order, so every iteration over
// profiling state (and therefore analysis order, solve-time charging, and
// report order) is deterministic across runs.
func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedProfileKeys is sortedKeys for collected profile maps.
func sortedProfileKeys(m map[string]*LayerProfile) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// profileRetry runs a profiler-control call (each issues a device
// synchronize under the hood) under the sync retry policy. A transient
// blip during the profiling window would otherwise pin the pending layers
// to width-1 fallback plans forever — a permanent concurrency (and, since
// width is part of the numeric contract, numerics) cost for a recoverable
// fault.
func (r *Runtime) profileRetry(f func() error) error {
	var err error
	for a := 1; a <= syncAttempts; a++ {
		if err = f(); err == nil || !IsTransient(err) {
			return err
		}
		if a < syncAttempts {
			r.ledger.addSyncRetry()
			r.dev.AdvanceHost(backoff(a))
		}
	}
	return err
}

// ResetProfiling aborts an in-flight profiling iteration: pending layers
// and buffered records are discarded, so the next iteration re-profiles
// from a clean slate. Callers rolling a failed step back to a checkpoint
// must invoke this — otherwise the retried iteration would look like the
// "second sighting", collect the aborted iteration's profile early, and
// run the retry pooled where the original (and any fault-free run) executed
// it serially at width 1. Width is part of the numeric contract, so that
// shortcut would change trained bits; re-profiling keeps the retry
// bit-identical to the iteration it replaces. Profiles already collected
// and plans already analyzed are kept — they came from completed profiling
// windows and stay valid.
func (r *Runtime) ResetProfiling() {
	r.mu.Lock()
	defer r.mu.Unlock()
	// A rollback may have killed the step between a layer's BeginLayer and
	// its Sync; drop every outstanding budget grant so the retry starts
	// from an empty budget.
	if r.grant > 0 {
		r.grant = 0
	}
	r.budget.Reset()
	for key := range r.pending {
		delete(r.pending, key)
	}
	if !r.profiling {
		return
	}
	r.profiling = false
	_ = r.profileRetry(func() error {
		_, err := r.tracker.Discard(r.dev)
		return err
	})
}

// Profiling reports whether a profiling window is open — some layers have
// been sighted this iteration but their profiles are not yet collected.
func (r *Runtime) Profiling() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.profiling || len(r.pending) > 0
}

// FinalizePlans closes any open profiling window, analyzes every profile
// collected so far, and returns the full plan cache. Checkpoint capture
// uses this: plans are normally analyzed lazily on a layer's second
// sighting, so a checkpoint taken right after the profiling iteration
// would otherwise see an empty cache and lose the planned widths the
// resumed run must reproduce. Analysis is deterministic on a given
// profile, so forcing it early yields exactly the plans the continuing
// run would have computed one BeginLayer later.
func (r *Runtime) FinalizePlans() []*Plan {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.finalizeLocked()
	for _, key := range sortedProfileKeys(r.profiles) {
		if _, ok := r.analyzer.Cached(key); ok {
			continue
		}
		r.analyzeLocked(r.profiles[key])
	}
	return r.analyzer.Plans()
}

// InstallPlan seeds a restored concurrency plan into the analyzer cache
// and sizes the stream pool for it, mirroring analyzeLocked's pool
// handling. Checkpoint resume calls this for every plan the checkpointed
// run had analyzed, so the resumed run dispatches at the same widths
// without re-running a profiling iteration.
func (r *Runtime) InstallPlan(key string, streams int, serial, fallback bool, solvedFrom time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	plan := r.analyzer.Install(key, streams, serial, fallback, solvedFrom)
	if plan.Streams > 1 && !plan.Serial {
		if n, err := r.pool.EnsureSize(plan.Streams); err != nil && n == 0 {
			r.ledger.addDegradation()
			r.analyzer.ForceSerial(plan.Key)
		}
	}
}

// Width implements dnn.Launcher: the planned stream count for the current
// layer, 1 while profiling.
func (r *Runtime) Width() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.currentPlan == nil || r.currentPlan.Streams < 1 {
		return 1
	}
	return r.currentPlan.Streams
}

// Launch implements dnn.Launcher: chains round-robin over the layer's
// stream share; chain −1 and unplanned layers use the default stream.
//
// The scheduler key is prefixed onto the kernel tag through a local copy of
// the kernel: the caller's kernel is never mutated, so a re-launched kernel
// cannot accumulate prefixes and concurrent chain dispatch cannot race on
// shared kernel state.
//
// Self-healing: a transient launch failure is retried with backoff (safe —
// a failed launch rejects the kernel before any of its math runs, so the
// eventual successful attempt executes it exactly once). If a pool stream
// keeps refusing the kernel, the stream is quarantined and this launch
// degrades to the always-valid default stream; only a default-stream
// failure that survives every retry is surfaced to the caller.
func (r *Runtime) Launch(k *simgpu.Kernel, chain int) error {
	r.mu.Lock()
	plan := r.currentPlan
	key := r.current
	grant := r.grant
	r.mu.Unlock()
	return r.launchWith(key, plan, k, chain, grant, false)
}

// launchWith is the launch body shared by the runtime's own dnn.Launcher
// implementation and its forked LayerSessions: the key/plan pair comes
// from the caller instead of r.current/r.currentPlan, so concurrent DAG
// sessions never race on the runtime's per-layer state. dag distinguishes
// the ledger counter charged for a pool-stream dispatch. grant is the
// caller's unified-budget share: chains spread over at most that many pool
// streams (a stream-assignment clamp only — the plan's width, and
// therefore trained bits, are untouched); a grant of 1 routes everything
// to the default stream, exactly like a serial-demoted plan.
func (r *Runtime) launchWith(key string, plan *Plan, k *simgpu.Kernel, chain int, grant int, dag bool) error {
	if key != "" {
		tag := key
		if k.Tag != "" {
			tag = key + "|" + k.Tag
		}
		kk := *k
		kk.Tag = tag
		k = &kk
	}
	var stream *simgpu.Stream
	if chain >= 0 && plan != nil && plan.Streams > 1 && !plan.Serial {
		lanes := plan.Streams
		if grant > 0 && grant < lanes {
			lanes = grant
		}
		if lanes > 1 {
			stream = r.pool.Stream(chain % lanes)
			if dag {
				r.ledger.addDAGDispatch()
			} else {
				r.ledger.addDispatch()
			}
		}
	}
	err := r.launchRetry(k, stream)
	if err == nil || !IsTransient(err) {
		return err
	}
	if stream != nil {
		// The stream is suspect: replace it and fall back to the default
		// stream for this kernel.
		if r.pool.Quarantine(stream) {
			r.ledger.addStreamQuarantine()
		}
		r.ledger.addDegradation()
		if err = r.launchRetry(k, nil); err == nil || !IsTransient(err) {
			return err
		}
	}
	r.ledger.addLaunchFailure()
	return err
}

// launchRetry launches k on s with bounded retry and exponential backoff
// for transient errors, charging the backoff to the host timeline.
func (r *Runtime) launchRetry(k *simgpu.Kernel, s *simgpu.Stream) error {
	var err error
	for a := 1; a <= launchAttempts; a++ {
		if err = r.dev.Launch(k, s); err == nil || !IsTransient(err) {
			return err
		}
		if a < launchAttempts {
			r.ledger.addLaunchRetry()
			r.dev.AdvanceHost(backoff(a))
		}
	}
	return err
}

// Sync implements dnn.Launcher: the inter-layer barrier joins all pool
// streams through the default-stream synchronization the stream manager
// owns. Transient sync failures are retried with backoff (a failed sync
// loses no queued work — the drain simply has not happened yet). After a
// successful barrier the hung-kernel watchdog verdicts are applied: every
// layer that hosted a kernel overstaying the watchdog limit is degraded to
// serial dispatch (width preserved, pool abandoned).
func (r *Runtime) Sync() error {
	var err error
	for a := 1; a <= syncAttempts; a++ {
		if _, err = r.dev.Synchronize(); err == nil {
			break
		}
		if !IsTransient(err) {
			return err
		}
		if a < syncAttempts {
			r.ledger.addSyncRetry()
			r.dev.AdvanceHost(backoff(a))
		}
	}
	if err != nil {
		return err
	}
	r.mu.Lock()
	if r.grant > 0 {
		r.budget.Release(r.grant)
		r.grant = 0
	}
	r.mu.Unlock()
	r.drainWatchdog()
	return nil
}

// SetWatchdogLimit sets the hung-kernel threshold; d ≤ 0 disables the
// watchdog.
func (r *Runtime) SetWatchdogLimit(d time.Duration) {
	r.wdMu.Lock()
	defer r.wdMu.Unlock()
	r.wdLimit = d
}

// watchdogObserve is the device completion listener: it flags the layer key
// of any kernel resident longer than the watchdog limit. It runs under the
// device lock, so it only touches watchdog state.
func (r *Runtime) watchdogObserve(rec simgpu.KernelRecord) {
	r.wdMu.Lock()
	defer r.wdMu.Unlock()
	if r.wdLimit <= 0 || rec.Duration() < r.wdLimit {
		return
	}
	r.ledger.addWatchdogTrip()
	key := rec.Tag
	if i := strings.IndexByte(key, '|'); i >= 0 {
		key = key[:i]
	}
	if key == "" {
		return // untagged kernel: nothing to degrade
	}
	if r.wdHung == nil {
		r.wdHung = map[string]bool{}
	}
	r.wdHung[key] = true
}

// drainWatchdog demotes every layer the watchdog flagged since the last
// barrier to serial dispatch. The demoted plan keeps its width so trained
// numerics are untouched; only the layer's concurrency is given up.
func (r *Runtime) drainWatchdog() {
	r.wdMu.Lock()
	hung := r.wdHung
	r.wdHung = nil
	r.wdMu.Unlock()
	if len(hung) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for key := range hung {
		if p, ok := r.analyzer.Cached(key); ok && (p.Serial || p.Streams <= 1) {
			continue // already serial
		}
		r.ledger.addDegradation()
		plan := r.analyzer.ForceSerial(key)
		if r.current == key {
			r.currentPlan = plan
		}
	}
}

// Plans returns the analyzer's cached plans.
func (r *Runtime) Plans() []*Plan { return r.analyzer.Plans() }

// ForkLayerSession implements the dnn-side layer-session contract (the
// return is typed any so internal/core stays independent of internal/dnn,
// like ChainLauncher in fusion.go): it returns a launcher view of this
// runtime serving exactly one concurrent layer invocation of an operator
// DAG schedule.
func (r *Runtime) ForkLayerSession() any { return &LayerSession{r: r} }

// LayerSession is a per-invocation view of a Runtime for concurrent
// operator-DAG dispatch. It keeps the current key and plan privately, so
// sessions never race on the runtime's single current/currentPlan slot,
// and it resolves plans from the analyzer cache only — a session never
// opens a profiling window, which is why DAG execution is gated on
// DAGReady: unprofiled layers must first run a serial iteration exactly
// as a non-DAG run would.
type LayerSession struct {
	r     *Runtime
	key   string
	plan  *Plan
	grant int // budget units held for this session's chains
}

// BeginLayer implements dnn.Launcher.
func (s *LayerSession) BeginLayer(key string) {
	s.key = key
	s.plan = nil
	s.releaseGrant()
	if plan, ok := s.r.analyzer.Cached(key); ok {
		s.plan = plan
		if plan.Streams > 1 && !plan.Serial {
			s.grant = s.r.budget.Acquire(plan.Streams)
		}
	}
}

func (s *LayerSession) releaseGrant() {
	if s.grant > 0 {
		s.r.budget.Release(s.grant)
		s.grant = 0
	}
}

// Launch implements dnn.Launcher; chain dispatch is charged to the
// ledger's DAG counter and clamped to the session's budget grant.
func (s *LayerSession) Launch(k *simgpu.Kernel, chain int) error {
	return s.r.launchWith(s.key, s.plan, k, chain, s.grant, true)
}

// Sync implements dnn.Launcher: the device-wide barrier (concurrent
// sessions joining it is safe — the underlying synchronize is idempotent).
// The session's budget grant is returned first, so a waiting wavefront
// peer sees the freed share when it queries the cap.
func (s *LayerSession) Sync() error {
	s.releaseGrant()
	return s.r.Sync()
}

// Width implements dnn.Launcher: the planned stream count for the
// session's layer, 1 for unplanned layers. Width is part of the numeric
// contract, and the cache the session reads holds exactly the plans a
// serial run would use.
func (s *LayerSession) Width() int {
	if s.plan == nil || s.plan.Streams < 1 {
		return 1
	}
	return s.plan.Streams
}

// DAGReady implements the dnn-side DAG gate: it reports whether every
// given layer key has an analyzed concurrency plan, closing an open
// profiling window first (the same collection BeginLayer performs on a
// key's second sighting, just for all keys at once). Until it returns
// true the net must execute in exact serial order — so the profiling
// iteration, and therefore every plan and width, matches a serial run and
// trained bits are unchanged.
func (r *Runtime) DAGReady(keys []string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.finalizeLocked()
	ready := true
	for _, key := range keys {
		if _, ok := r.analyzer.Cached(key); ok {
			continue
		}
		if profile, ok := r.profiles[key]; ok {
			r.analyzeLocked(profile)
			continue
		}
		ready = false
	}
	return ready
}

// LayerConcurrencyCap implements the dnn-side capper: how many layer
// sessions are worth running at once. Budget-informed: each session's
// chains occupy up to its plan's stream share, so the cap is the unified
// budget's *remaining* units divided by the widest non-degraded cached
// plan (at least 1). The DAG scheduler re-queries this every dispatch
// round, so wavefront width breathes with whatever the chain streams,
// copy stream, and serving batches currently hold in flight.
func (r *Runtime) LayerConcurrencyCap() int {
	widest := 1
	for _, p := range r.analyzer.Plans() {
		if !p.Serial && p.Streams > widest {
			widest = p.Streams
		}
	}
	c := r.budget.Available() / widest
	if c < 1 {
		c = 1
	}
	return c
}

// UploadBytes models the host→device input copy on the default stream
// (GLP4NN leaves data movement to the framework it integrates into).
// Transient DMA failures are retried with backoff.
func (r *Runtime) UploadBytes(n int64) error {
	return r.memcpyRetry(n, nil)
}

// StageInput implements dnn.InputStager: the staged input batch's
// host→device copy is issued on the runtime's dedicated copy stream, so
// the transfer proceeds concurrently with pool-stream compute instead of
// serializing on the default stream ahead of it. The modeled copy time is
// credited to the ledger's CopyOverlapNs. Fault policy mirrors the launch
// path: transient memcpy failures retry with backoff; a copy stream that
// keeps refusing the transfer is torn down (recreated on the next call)
// and this copy degrades to the default stream; a device that cannot
// create a copy stream at all is pinned to the default-stream fallback —
// degraded but correct, exactly UploadBytes.
func (r *Runtime) StageInput(n int64) error {
	// The in-flight transfer holds one unit of the unified budget, so the
	// copy stream and the compute axes share one device-wide cap.
	g := r.budget.Acquire(1)
	defer r.budget.Release(g)
	s := r.ensureCopyStream()
	err := r.memcpyRetry(n, s)
	if err == nil {
		if s != nil {
			r.ledger.addCopyOverlap(r.dev.Spec().MemcpyDuration(n))
		}
		return nil
	}
	if s == nil || !IsTransient(err) {
		return err
	}
	// The copy stream is suspect: replace it and fall back to the default
	// stream for this batch.
	r.copyMu.Lock()
	if r.copyStream == s {
		_ = r.dev.DestroyStream(s)
		r.copyStream = nil
	}
	r.copyMu.Unlock()
	r.ledger.addStreamQuarantine()
	r.ledger.addDegradation()
	return r.memcpyRetry(n, nil)
}

// ensureCopyStream returns the dedicated copy stream, creating it lazily
// under the stream-creation retry policy. A terminal creation failure pins
// the default-stream fallback (nil) for the runtime's remaining lifetime.
func (r *Runtime) ensureCopyStream() *simgpu.Stream {
	r.copyMu.Lock()
	defer r.copyMu.Unlock()
	if r.copyStream != nil || r.copyDead {
		return r.copyStream
	}
	for a := 1; a <= createAttempts; a++ {
		s, err := r.dev.CreateStream()
		if err == nil {
			r.copyStream = s
			return s
		}
		if !IsTransient(err) {
			break
		}
		if a < createAttempts {
			r.dev.AdvanceHost(backoff(a))
		}
	}
	r.copyDead = true
	r.ledger.addDegradation()
	return nil
}

// memcpyRetry performs one H2D copy on s (nil = default stream) under the
// bounded-retry-with-backoff policy for transient DMA failures.
func (r *Runtime) memcpyRetry(n int64, s *simgpu.Stream) error {
	var err error
	for a := 1; a <= launchAttempts; a++ {
		if err = r.dev.MemcpyHostToDevice(n, s); err == nil || !IsTransient(err) {
			return err
		}
		if a < launchAttempts {
			r.ledger.addMemcpyRetry()
			r.dev.AdvanceHost(backoff(a))
		}
	}
	return err
}
