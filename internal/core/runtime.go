package core

import (
	"sync"

	"repro/internal/simgpu"
)

// Runtime is the per-device runtime scheduler module and implements
// dnn.Launcher. Its lifecycle per layer key matches the paper's Fig. 6
// workflow:
//
//  1. First invocation of a layer: its kernels are not yet profiled, so
//     they run serially on the default stream with the resource tracker
//     collecting records (the profiling iteration).
//  2. On the layer's second invocation the scheduler flushes the tracker,
//     hands the parsed profiles to the kernel analyzer, and initializes
//     the stream pool with the resulting concurrency configuration.
//  3. Thereafter every dependency chain (one batch sample's im2col → sgemm
//     → gemmk sequence) is dispatched round-robin onto the pool, using at
//     most the layer's planned number of streams.
type Runtime struct {
	dev      *simgpu.Device
	tracker  *Tracker
	analyzer *Analyzer
	pool     *StreamPool
	ledger   *Ledger

	mu          sync.Mutex
	pending     map[string]bool
	profiles    map[string]*LayerProfile // collected but possibly not yet analyzed
	profiling   bool
	current     string
	currentPlan *Plan
}

func newRuntime(dev *simgpu.Device, tracker *Tracker, analyzer *Analyzer, pool *StreamPool, ledger *Ledger) *Runtime {
	return &Runtime{
		dev:      dev,
		tracker:  tracker,
		analyzer: analyzer,
		pool:     pool,
		ledger:   ledger,
		pending:  map[string]bool{},
		profiles: map[string]*LayerProfile{},
	}
}

// Device returns the scheduled device.
func (r *Runtime) Device() *simgpu.Device { return r.dev }

// Ledger returns the device's overhead ledger.
func (r *Runtime) Ledger() *Ledger { return r.ledger }

// Analyzer returns the device's kernel analyzer (its cached plans are the
// data behind the paper's Fig. 8).
func (r *Runtime) Analyzer() *Analyzer { return r.analyzer }

// Pool returns the device's stream pool.
func (r *Runtime) Pool() *StreamPool { return r.pool }

// BeginLayer implements dnn.Launcher.
func (r *Runtime) BeginLayer(key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.current = key
	if plan, ok := r.analyzer.Cached(key); ok {
		r.currentPlan = plan
		return
	}
	r.currentPlan = nil
	if profile, ok := r.profiles[key]; ok {
		// Profiled earlier; analyze now (lazily, once per key).
		r.currentPlan = r.analyzeLocked(profile)
		return
	}
	if r.pending[key] {
		// Second sighting without a profile: the profiling iteration is
		// over; collect everything and analyze this layer.
		r.finalizeLocked()
		if plan, ok := r.analyzer.Cached(key); ok {
			// Collection failed: the layer was pinned to the serial
			// fallback.
			r.currentPlan = plan
			return
		}
		if profile, ok := r.profiles[key]; ok {
			r.currentPlan = r.analyzeLocked(profile)
		}
		return
	}
	// First sighting: profile it.
	if !r.profiling {
		if err := r.tracker.StartProfiling(r.dev); err != nil {
			// No profiler, no plan, ever: record the failure and pin the
			// serial fallback instead of futilely retrying each iteration.
			r.ledger.addProfileFailure()
			r.currentPlan = r.analyzer.CacheFallback(key)
			return
		}
		r.profiling = true
	}
	r.pending[key] = true
}

// analyzeLocked runs the analyzer on a collected profile, charging the
// solve time and sizing the pool. A failed analysis is recorded in the
// ledger and pins a cached serial-fallback plan, so the layer is not
// re-analyzed every iteration. Called with r.mu held.
func (r *Runtime) analyzeLocked(profile *LayerProfile) *Plan {
	plan, err := r.analyzer.Analyze(profile)
	if err != nil {
		r.ledger.addAnalyzeFailure()
		return r.analyzer.CacheFallback(profile.Key)
	}
	r.dev.AdvanceHost(plan.SolveTime)
	r.pool.EnsureSize(plan.Streams)
	return plan
}

// finalizeLocked flushes the tracker and stores the parsed profiles. Called
// with r.mu held.
func (r *Runtime) finalizeLocked() {
	if !r.profiling {
		return
	}
	r.profiling = false
	profiles, err := r.tracker.Collect(r.dev, r.ledger)
	if err != nil {
		// The profiling records are lost. Record the failure and pin every
		// pending layer to a cached serial-fallback plan: training proceeds
		// correctly (just without concurrency for these layers) and the
		// collect is not retried forever.
		r.ledger.addProfileFailure()
		for key := range r.pending {
			r.analyzer.CacheFallback(key)
			delete(r.pending, key)
		}
		return
	}
	for key, p := range profiles {
		r.profiles[key] = p
		delete(r.pending, key)
	}
	// Keys that produced no kernels (pure-host layers) get trivial plans.
	for key := range r.pending {
		r.profiles[key] = newLayerProfile(key)
		delete(r.pending, key)
	}
}

// Width implements dnn.Launcher: the planned stream count for the current
// layer, 1 while profiling.
func (r *Runtime) Width() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.currentPlan == nil || r.currentPlan.Streams < 1 {
		return 1
	}
	return r.currentPlan.Streams
}

// Launch implements dnn.Launcher: chains round-robin over the layer's
// stream share; chain −1 and unplanned layers use the default stream.
//
// The scheduler key is prefixed onto the kernel tag through a local copy of
// the kernel: the caller's kernel is never mutated, so a re-launched kernel
// cannot accumulate prefixes and concurrent chain dispatch cannot race on
// shared kernel state.
func (r *Runtime) Launch(k *simgpu.Kernel, chain int) error {
	r.mu.Lock()
	plan := r.currentPlan
	key := r.current
	r.mu.Unlock()

	if key != "" {
		tag := key
		if k.Tag != "" {
			tag = key + "|" + k.Tag
		}
		kk := *k
		kk.Tag = tag
		k = &kk
	}
	var stream *simgpu.Stream
	if chain >= 0 && plan != nil && plan.Streams > 1 {
		stream = r.pool.Stream(chain % plan.Streams)
		r.ledger.addDispatch()
	}
	return r.dev.Launch(k, stream)
}

// Sync implements dnn.Launcher: the inter-layer barrier joins all pool
// streams through the default-stream synchronization the stream manager
// owns.
func (r *Runtime) Sync() error {
	_, err := r.dev.Synchronize()
	return err
}

// Plans returns the analyzer's cached plans.
func (r *Runtime) Plans() []*Plan { return r.analyzer.Plans() }

// UploadBytes models the host→device input copy on the default stream
// (GLP4NN leaves data movement to the framework it integrates into).
func (r *Runtime) UploadBytes(n int64) error {
	return r.dev.MemcpyHostToDevice(n, nil)
}
