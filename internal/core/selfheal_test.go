package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/dnn"
	"repro/internal/simgpu"
)

// fnInjector adapts a closure to simgpu.Injector, so tests can script
// precise fault windows (e.g. "fail the next 4 launches").
type fnInjector func(op simgpu.Op, name string) simgpu.Fault

func (f fnInjector) Decide(op simgpu.Op, name string) simgpu.Fault { return f(op, name) }

// fnKernel is testKernel plus a host closure.
func fnKernel(name string, fn func()) *simgpu.Kernel {
	k := testKernel(name, "")
	k.Fn = fn
	return k
}

func TestIsTransient(t *testing.T) {
	fe := &simgpu.FaultError{Op: simgpu.OpLaunch, Name: "k", N: 1}
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("plain"), false},
		{fe, true},
		{fmt.Errorf("wrapped: %w", fe), true},
		{errors.Join(errors.New("a"), fmt.Errorf("b: %w", fe)), true},
		{errors.Join(errors.New("a"), errors.New("b")), false},
	}
	for i, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("case %d (%v): IsTransient = %v, want %v", i, c.err, got, c.want)
		}
	}
}

// TestLaunchRetryRecovers: transient launch faults inside the retry budget
// are absorbed; the kernel's math runs exactly once.
func TestLaunchRetryRecovers(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100,
		simgpu.WithInjector(simgpu.FaultPlan{Seed: 1, Launch: 1, MaxFaults: 2}.Injector()))
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)

	runs := 0
	if err := rt.Launch(fnKernel("k", func() { runs++ }), -1); err != nil {
		t.Fatalf("launch did not recover: %v", err)
	}
	if runs != 1 {
		t.Fatalf("kernel math ran %d times, want exactly 1", runs)
	}
	snap := rt.Ledger().Snapshot()
	if snap.LaunchRetries != 2 {
		t.Fatalf("LaunchRetries = %d, want 2", snap.LaunchRetries)
	}
	if snap.LaunchFailures != 0 || snap.StreamQuarantines != 0 {
		t.Fatalf("unexpected failure counters: %s", snap.Health())
	}
}

// TestLaunchFailureSurfacesTerminalError: terminal errors (invalid launch
// config) are not retried and not counted as recoveries.
func TestLaunchFailureSurfacesTerminalError(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100)
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)

	bad := fnKernel("bad", nil)
	bad.Config.Block = simgpu.D1(1 << 20) // far beyond any device's threads/block limit
	if err := rt.Launch(bad, -1); err == nil {
		t.Fatal("invalid launch succeeded")
	} else if IsTransient(err) {
		t.Fatalf("validation error classified transient: %v", err)
	}
	if snap := rt.Ledger().Snapshot(); snap.LaunchRetries != 0 {
		t.Fatalf("terminal error was retried: %s", snap.Health())
	}
}

// TestLaunchQuarantineAndDegrade: a pool stream that keeps refusing
// launches is quarantined and the kernel degrades to the default stream —
// the iteration completes with no error surfaced to the training loop.
func TestLaunchQuarantineAndDegrade(t *testing.T) {
	var failNext atomic.Int64
	failNext.Store(-1 << 40) // disabled until armed
	dev := simgpu.NewDevice(simgpu.TeslaP100, simgpu.WithInjector(
		fnInjector(func(op simgpu.Op, name string) simgpu.Fault {
			if op == simgpu.OpLaunch && failNext.Add(-1) >= 0 {
				return simgpu.Fault{Err: &simgpu.FaultError{Op: op, Name: name, N: 1}}
			}
			return simgpu.Fault{}
		})))
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)
	net := heavyConvNet(t, 8)
	ctx := dnn.NewContext(rt, 1)
	ctx.Compute = false

	// Two fault-free iterations: profile, then analyze into a pooled plan.
	for i := 0; i < 2; i++ {
		if _, err := net.Forward(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if rt.Pool().Size() < 2 {
		t.Fatalf("pool size %d; test needs a pooled plan", rt.Pool().Size())
	}
	poolBefore := rt.Pool().Size()

	// Arm exactly one full retry budget: the first pooled launch of the
	// next iteration burns it, gets its stream quarantined, and lands on
	// the default stream.
	failNext.Store(launchAttempts)
	if _, err := net.Forward(ctx); err != nil {
		t.Fatalf("iteration under stream failure did not self-heal: %v", err)
	}
	snap := rt.Ledger().Snapshot()
	if snap.StreamQuarantines != 1 {
		t.Fatalf("StreamQuarantines = %d, want 1 (%s)", snap.StreamQuarantines, snap.Health())
	}
	if snap.Degradations != 1 {
		t.Fatalf("Degradations = %d, want 1 (%s)", snap.Degradations, snap.Health())
	}
	if snap.LaunchRetries != launchAttempts-1 {
		t.Fatalf("LaunchRetries = %d, want %d (%s)", snap.LaunchRetries, launchAttempts-1, snap.Health())
	}
	if snap.LaunchFailures != 0 {
		t.Fatalf("launch failure surfaced despite default-stream escape: %s", snap.Health())
	}
	if rt.Pool().Size() != poolBefore {
		t.Fatalf("pool size %d after quarantine, want %d (replacement in-slot)",
			rt.Pool().Size(), poolBefore)
	}
}

// TestSyncRetryRecovers: transient synchronization faults are retried; no
// queued work is lost.
func TestSyncRetryRecovers(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100,
		simgpu.WithInjector(simgpu.FaultPlan{Seed: 2, Sync: 1, MaxFaults: 2}.Injector()))
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)

	runs := 0
	if err := rt.Launch(fnKernel("k", func() { runs++ }), -1); err != nil {
		t.Fatal(err)
	}
	if err := rt.Sync(); err != nil {
		t.Fatalf("sync did not recover: %v", err)
	}
	if runs != 1 {
		t.Fatalf("kernel ran %d times", runs)
	}
	if snap := rt.Ledger().Snapshot(); snap.SyncRetries != 2 {
		t.Fatalf("SyncRetries = %d, want 2 (%s)", snap.SyncRetries, snap.Health())
	}
}

// TestUploadBytesRetries: transient DMA faults on the input upload are
// retried.
func TestUploadBytesRetries(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100,
		simgpu.WithInjector(simgpu.FaultPlan{Seed: 3, Memcpy: 1, MaxFaults: 2}.Injector()))
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)

	if err := rt.UploadBytes(1 << 20); err != nil {
		t.Fatalf("upload did not recover: %v", err)
	}
	if snap := rt.Ledger().Snapshot(); snap.MemcpyRetries != 2 {
		t.Fatalf("MemcpyRetries = %d, want 2 (%s)", snap.MemcpyRetries, snap.Health())
	}
}

// TestStreamRefusalPinsSerialPlan: when the device refuses stream creation
// entirely, analysis pins the layer to serial dispatch — the plan keeps its
// analyzed width (the numeric contract) but every launch lands on the
// default stream, so training proceeds with unchanged bits.
func TestStreamRefusalPinsSerialPlan(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100,
		simgpu.WithInjector(simgpu.FaultPlan{Seed: 4, CreateStream: 1}.Injector()))
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)
	net := heavyConvNet(t, 8)
	ctx := dnn.NewContext(rt, 1)
	ctx.Compute = false

	for i := 0; i < 3; i++ {
		if _, err := net.Forward(ctx); err != nil {
			t.Fatalf("iteration %d on a streamless device: %v", i, err)
		}
	}
	if rt.Pool().Size() != 0 {
		t.Fatalf("pool grew to %d on a device refusing streams", rt.Pool().Size())
	}
	plan, ok := rt.Analyzer().Cached("conv/fwd")
	if !ok {
		t.Fatal("no cached plan for conv/fwd")
	}
	if !plan.Serial {
		t.Fatalf("conv plan not pinned to serial dispatch: %s", plan)
	}
	if plan.Streams < 2 {
		t.Fatalf("degradation changed the plan width (got %d): width is part of the numeric contract", plan.Streams)
	}
	if snap := rt.Ledger().Snapshot(); snap.Degradations == 0 {
		t.Fatalf("stream refusal not recorded as degradation: %s", snap.Health())
	}
}

// TestWatchdogDegradesHangingLayer: hang-injected kernels trip the sync
// watchdog and their layers are demoted to serial dispatch, keeping the
// planned width.
func TestWatchdogDegradesHangingLayer(t *testing.T) {
	var hang atomic.Bool
	dev := simgpu.NewDevice(simgpu.TeslaP100, simgpu.WithInjector(
		fnInjector(func(op simgpu.Op, name string) simgpu.Fault {
			if op == simgpu.OpLaunch && hang.Load() {
				return simgpu.Fault{Delay: simgpu.DefaultHangDelay}
			}
			return simgpu.Fault{}
		})))
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)
	net := heavyConvNet(t, 8)
	ctx := dnn.NewContext(rt, 1)
	ctx.Compute = false

	for i := 0; i < 2; i++ {
		if _, err := net.Forward(ctx); err != nil {
			t.Fatal(err)
		}
	}
	plan, _ := rt.Analyzer().Cached("conv/fwd")
	if plan == nil || plan.Streams < 2 {
		t.Fatalf("test needs a pooled conv plan, have %v", plan)
	}

	hang.Store(true)
	if _, err := net.Forward(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rt.Sync(); err != nil {
		t.Fatal(err)
	}
	snap := rt.Ledger().Snapshot()
	if snap.WatchdogTrips == 0 {
		t.Fatalf("no watchdog trips despite injected hangs: %s", snap.Health())
	}
	plan, _ = rt.Analyzer().Cached("conv/fwd")
	if plan == nil || !plan.Serial {
		t.Fatalf("hung layer not degraded to serial dispatch: %v", plan)
	}
	if plan.Streams < 2 {
		t.Fatalf("watchdog degradation changed the plan width (got %d)", plan.Streams)
	}
}

// TestWatchdogDisabled: a zero limit turns the watchdog off.
func TestWatchdogDisabled(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100, simgpu.WithInjector(
		simgpu.FaultPlan{Seed: 5, Hang: 1}.Injector()))
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)
	rt.SetWatchdogLimit(0)

	if err := rt.Launch(fnKernel("slow", nil), -1); err != nil {
		t.Fatal(err)
	}
	if err := rt.Sync(); err != nil {
		t.Fatal(err)
	}
	if snap := rt.Ledger().Snapshot(); snap.WatchdogTrips != 0 {
		t.Fatalf("disabled watchdog tripped: %s", snap.Health())
	}
}

// TestQuarantineReplacesStream: quarantine swaps the failed stream out
// in-slot; the default stream is never quarantined.
func TestQuarantineReplacesStream(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100)
	fw := New()
	defer fw.Close()
	pool := fw.Runtime(dev).Pool()
	if n, err := pool.EnsureSize(3); n != 3 || err != nil {
		t.Fatalf("EnsureSize = %d, %v", n, err)
	}
	victim := pool.Stream(1)
	if !pool.Quarantine(victim) {
		t.Fatal("pool stream not quarantined")
	}
	if pool.Size() != 3 {
		t.Fatalf("pool size %d after quarantine, want 3", pool.Size())
	}
	if pool.Stream(1) == victim {
		t.Fatal("quarantined stream still in rotation")
	}
	if pool.Quarantine(victim) {
		t.Fatal("re-quarantined a stream no longer in the pool")
	}
	if pool.Quarantine(nil) || pool.Quarantine(dev.DefaultStream()) {
		t.Fatal("quarantined the default stream")
	}
	// Launching on the replacement works.
	if err := dev.Launch(fnKernel("k", nil), pool.Stream(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Synchronize(); err != nil {
		t.Fatal(err)
	}
}

// TestEnsureSizePartialGrowth: a device refusing further streams mid-growth
// leaves a usable partial pool and reports the achieved size.
func TestEnsureSizePartialGrowth(t *testing.T) {
	var created atomic.Int64
	dev := simgpu.NewDevice(simgpu.TeslaP100, simgpu.WithInjector(
		fnInjector(func(op simgpu.Op, name string) simgpu.Fault {
			if op == simgpu.OpCreateStream && created.Add(1) > 2 {
				return simgpu.Fault{Err: &simgpu.FaultError{Op: op, N: created.Load()}}
			}
			return simgpu.Fault{}
		})))
	fw := New()
	defer fw.Close()
	pool := fw.Runtime(dev).Pool()
	n, err := pool.EnsureSize(5)
	if n != 2 {
		t.Fatalf("EnsureSize achieved %d, want 2", n)
	}
	if err == nil || !IsTransient(err) {
		t.Fatalf("expected the transient refusal, got %v", err)
	}
	if s := pool.Stream(7); s == nil {
		t.Fatal("partial pool does not wrap indices")
	}
}
