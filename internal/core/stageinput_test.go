package core

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/simgpu"
)

// The ledger doubles as the input pipeline's observer.
var _ data.Observer = (*Ledger)(nil)

// TestStageInputUsesCopyStream: the staged copy lands on a lazily created
// dedicated stream (reused across calls) and its modeled device time is
// credited to CopyOverlapNs.
func TestStageInputUsesCopyStream(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100)
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)

	const n = 1 << 20
	if err := rt.StageInput(n); err != nil {
		t.Fatal(err)
	}
	if dev.ActiveStreams() != 1 {
		t.Fatalf("active streams = %d, want 1 (the copy stream)", dev.ActiveStreams())
	}
	want := dev.Spec().MemcpyDuration(n)
	snap := rt.Ledger().Snapshot()
	if time.Duration(snap.CopyOverlapNs) != want {
		t.Fatalf("CopyOverlapNs = %v, want %v", time.Duration(snap.CopyOverlapNs), want)
	}
	if err := rt.StageInput(n); err != nil {
		t.Fatal(err)
	}
	if dev.ActiveStreams() != 1 {
		t.Fatalf("second stage created another stream: %d active", dev.ActiveStreams())
	}
	if snap = rt.Ledger().Snapshot(); time.Duration(snap.CopyOverlapNs) != 2*want {
		t.Fatalf("CopyOverlapNs = %v after two stages, want %v", time.Duration(snap.CopyOverlapNs), 2*want)
	}
}

// TestStageInputRetriesTransient: transient DMA faults on the staged copy
// are absorbed by the same bounded-retry policy as UploadBytes.
func TestStageInputRetriesTransient(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100,
		simgpu.WithInjector(simgpu.FaultPlan{Seed: 3, Memcpy: 1, MaxFaults: 2}.Injector()))
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)

	if err := rt.StageInput(1 << 16); err != nil {
		t.Fatalf("staged copy did not recover: %v", err)
	}
	snap := rt.Ledger().Snapshot()
	if snap.MemcpyRetries != 2 {
		t.Fatalf("MemcpyRetries = %d, want 2 (%s)", snap.MemcpyRetries, snap.Health())
	}
	if snap.CopyOverlapNs == 0 {
		t.Fatal("recovered staged copy not credited to CopyOverlapNs")
	}
}

// TestStageInputQuarantinesCopyStream: a copy stream that exhausts the
// retry budget is torn down; the batch degrades to the default stream (no
// error surfaces) and the next call recreates the stream.
func TestStageInputQuarantinesCopyStream(t *testing.T) {
	var failNext atomic.Int64
	failNext.Store(-1 << 40)
	dev := simgpu.NewDevice(simgpu.TeslaP100, simgpu.WithInjector(
		fnInjector(func(op simgpu.Op, name string) simgpu.Fault {
			if op == simgpu.OpMemcpy && failNext.Add(-1) >= 0 {
				return simgpu.Fault{Err: &simgpu.FaultError{Op: op, Name: name, N: 1}}
			}
			return simgpu.Fault{}
		})))
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)

	// Exactly one retry budget: the copy-stream attempts burn it, the
	// default-stream fallback then succeeds.
	failNext.Store(launchAttempts)
	if err := rt.StageInput(1 << 16); err != nil {
		t.Fatalf("staged copy did not degrade to the default stream: %v", err)
	}
	snap := rt.Ledger().Snapshot()
	if snap.StreamQuarantines != 1 || snap.Degradations != 1 {
		t.Fatalf("quarantines = %d degradations = %d, want 1/1 (%s)",
			snap.StreamQuarantines, snap.Degradations, snap.Health())
	}
	if snap.CopyOverlapNs != 0 {
		t.Fatalf("degraded default-stream copy credited as overlap: %v", time.Duration(snap.CopyOverlapNs))
	}
	if dev.ActiveStreams() != 0 {
		t.Fatalf("quarantined copy stream leaked: %d active", dev.ActiveStreams())
	}

	// Healed: the next stage recreates the stream and overlaps again.
	if err := rt.StageInput(1 << 16); err != nil {
		t.Fatal(err)
	}
	if dev.ActiveStreams() != 1 {
		t.Fatalf("copy stream not recreated: %d active", dev.ActiveStreams())
	}
	if snap = rt.Ledger().Snapshot(); snap.CopyOverlapNs == 0 {
		t.Fatal("recreated copy stream not credited")
	}
}

// TestStageInputSurvivesStreamRefusal: a device that refuses stream
// creation pins the default-stream fallback — StageInput degrades to
// exactly UploadBytes, once, without re-probing creation every batch.
func TestStageInputSurvivesStreamRefusal(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100,
		simgpu.WithInjector(simgpu.FaultPlan{Seed: 4, CreateStream: 1}.Injector()))
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(dev)

	if err := rt.StageInput(1 << 16); err != nil {
		t.Fatalf("stage under stream refusal: %v", err)
	}
	snap := rt.Ledger().Snapshot()
	if snap.Degradations != 1 {
		t.Fatalf("Degradations = %d, want 1 (%s)", snap.Degradations, snap.Health())
	}
	if snap.CopyOverlapNs != 0 {
		t.Fatal("default-stream fallback credited as overlap")
	}
	if dev.ActiveStreams() != 0 {
		t.Fatalf("active streams = %d, want 0", dev.ActiveStreams())
	}
	// Pinned: no fresh degradation per batch.
	if err := rt.StageInput(1 << 16); err != nil {
		t.Fatal(err)
	}
	if snap = rt.Ledger().Snapshot(); snap.Degradations != 1 {
		t.Fatalf("copy-stream creation re-probed: Degradations = %d", snap.Degradations)
	}
}

// TestLedgerPrefetchCounters: the ledger's data.Observer half lands
// pipeline events in the snapshot and its InputPipe rendering.
func TestLedgerPrefetchCounters(t *testing.T) {
	fw := New()
	defer fw.Close()
	rt := fw.Runtime(simgpu.NewDevice(simgpu.TeslaP100))
	l := rt.Ledger()
	l.PrefetchHit()
	l.PrefetchHit()
	l.PrefetchStall(3 * time.Millisecond)
	snap := l.Snapshot()
	if snap.PrefetchHits != 2 || snap.PrefetchStalls != 1 {
		t.Fatalf("hits = %d stalls = %d, want 2/1", snap.PrefetchHits, snap.PrefetchStalls)
	}
	if time.Duration(snap.PrefetchStallNs) != 3*time.Millisecond {
		t.Fatalf("stall time = %v", time.Duration(snap.PrefetchStallNs))
	}
	s := snap.InputPipe()
	for _, want := range []string{"hits=2", "stalls=1", "copy-overlap="} {
		if !strings.Contains(s, want) {
			t.Fatalf("InputPipe() = %q missing %q", s, want)
		}
	}
}

// TestMemcpyDurationModel: the standalone copy-time model matches the
// spec's latency-plus-bandwidth form and clamps negative sizes.
func TestMemcpyDurationModel(t *testing.T) {
	spec := simgpu.TeslaP100
	if d := spec.MemcpyDuration(0); d != spec.MemcpyLatency {
		t.Fatalf("zero-byte copy = %v, want latency %v", d, spec.MemcpyLatency)
	}
	if d := spec.MemcpyDuration(-5); d != spec.MemcpyLatency {
		t.Fatalf("negative size = %v, want latency %v", d, spec.MemcpyLatency)
	}
	small, big := spec.MemcpyDuration(1<<20), spec.MemcpyDuration(1<<24)
	if big <= small {
		t.Fatalf("16 MiB copy (%v) not slower than 1 MiB (%v)", big, small)
	}
}
