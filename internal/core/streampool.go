package core

import (
	"errors"
	"sync"

	"repro/internal/simgpu"
)

// StreamPool is the concurrent stream pool of the stream manager module: a
// grow-only set of CUDA streams on one device, handed out round-robin. The
// default stream stays reserved for synchronization and
// synchronization-sensitive kernels, per the paper's design.
type StreamPool struct {
	dev *simgpu.Device

	mu      sync.Mutex
	streams []*simgpu.Stream
}

// Device returns the owning device.
func (p *StreamPool) Device() *simgpu.Device { return p.dev }

// EnsureSize grows the pool to at least n streams (paying the stream
// creation overhead on the device's host timeline). Each stream creation is
// retried with backoff on transient device errors; if the device still
// refuses, growth stops early and the achieved size is returned with the
// error. A short pool stays fully usable — Stream wraps indices around
// whatever exists — so callers can degrade instead of aborting.
func (p *StreamPool) EnsureSize(n int) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var err error
	for len(p.streams) < n {
		var s *simgpu.Stream
		if s, err = p.createRetry(); err != nil {
			break
		}
		p.streams = append(p.streams, s)
	}
	return len(p.streams), err
}

// createRetry creates one stream, retrying transient failures with
// exponential backoff charged to the host timeline. Called with p.mu held.
func (p *StreamPool) createRetry() (*simgpu.Stream, error) {
	var err error
	for a := 1; a <= createAttempts; a++ {
		var s *simgpu.Stream
		if s, err = p.dev.CreateStream(); err == nil {
			return s, nil
		}
		if !IsTransient(err) {
			return nil, err
		}
		if a < createAttempts {
			p.dev.AdvanceHost(backoff(a))
		}
	}
	return nil, err
}

// Quarantine takes a stream that keeps failing launches out of rotation: it
// is destroyed and a fresh stream is created into its slot, so round-robin
// dispatch keeps its width. If the device refuses a replacement the slot is
// removed and the pool shrinks — Stream's modulo then spreads chains over
// the survivors. Reports whether the stream was in the pool (the default
// stream and foreign streams are never quarantined).
func (p *StreamPool) Quarantine(s *simgpu.Stream) bool {
	if s == nil || s.IsDefault() {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, have := range p.streams {
		if have != s {
			continue
		}
		// Best effort: a destroy failure must not keep a poisoned stream in
		// rotation.
		_ = p.dev.DestroyStream(s)
		if ns, err := p.createRetry(); err == nil {
			p.streams[i] = ns
		} else {
			p.streams = append(p.streams[:i], p.streams[i+1:]...)
		}
		return true
	}
	return false
}

// Size returns the current pool size.
func (p *StreamPool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.streams)
}

// Stream returns pool stream i (mod size); with an empty pool it returns
// nil, which launches on the default stream.
func (p *StreamPool) Stream(i int) *simgpu.Stream {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.streams) == 0 {
		return nil
	}
	// Euclidean modulo: negating i would overflow on math.MinInt and maps
	// -1 and 1 to the same stream; shifting the remainder does neither.
	i %= len(p.streams)
	if i < 0 {
		i += len(p.streams)
	}
	return p.streams[i]
}

// Release destroys all pool streams. A destroy failure does not abort the
// sweep: every stream is still attempted, the pool is emptied regardless (so
// a retried Release cannot double-destroy the already-freed streams), and the
// individual errors are joined in the return value.
func (p *StreamPool) Release() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var errs []error
	for _, s := range p.streams {
		if err := p.dev.DestroyStream(s); err != nil {
			errs = append(errs, err)
		}
	}
	p.streams = nil
	return errors.Join(errs...)
}

// StreamManager is the machine-shared stream manager module: one pool per
// device.
type StreamManager struct {
	mu    sync.Mutex
	pools map[*simgpu.Device]*StreamPool
}

// NewStreamManager builds the shared stream manager.
func NewStreamManager() *StreamManager {
	return &StreamManager{pools: map[*simgpu.Device]*StreamPool{}}
}

// Pool returns (creating on demand) the device's stream pool.
func (m *StreamManager) Pool(dev *simgpu.Device) *StreamPool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.pools[dev]
	if p == nil {
		p = &StreamPool{dev: dev}
		m.pools[dev] = p
	}
	return p
}
