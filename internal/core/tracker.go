package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/cuptisim"
	"repro/internal/simgpu"
)

// KernelStats is the parsed summary of one distinct kernel within a layer:
// its launch configuration (the paper's profiling inputs τ_Ki, sm_Ki, #β_Ki)
// and its average execution time T_Ki.
type KernelStats struct {
	Name        string
	Config      simgpu.LaunchConfig
	Launches    int
	AvgDuration time.Duration
	totalDur    time.Duration
}

// signature distinguishes kernels that share a name but differ in launch
// geometry (e.g. the forward and backward SGEMMs of one layer).
func signature(name string, cfg simgpu.LaunchConfig) string {
	return fmt.Sprintf("%s|%v|%v|%d", name, cfg.Grid, cfg.Block, cfg.SharedMemBytes)
}

// LayerProfile aggregates the kernels observed under one scheduler key
// ("<layer>/fwd" etc.) during the profiling iteration.
type LayerProfile struct {
	Key     string
	Kernels []*KernelStats // first-seen order
	Records int
	bydKey  map[string]*KernelStats
}

func newLayerProfile(key string) *LayerProfile {
	return &LayerProfile{Key: key, bydKey: map[string]*KernelStats{}}
}

// TotalDuration is the layer's total profiled kernel time — the timing a
// concurrency plan is solved from, and the drift detector's reference
// (Plan.SolvedFrom). An empty profile totals 0.
func (p *LayerProfile) TotalDuration() time.Duration {
	var total time.Duration
	for _, ks := range p.Kernels {
		total += ks.totalDur
	}
	return total
}

func (p *LayerProfile) add(rec cuptisim.KernelActivity) {
	p.Records++
	cfg := simgpu.LaunchConfig{
		Grid:           rec.Grid,
		Block:          rec.Block,
		RegsPerThread:  rec.RegsPerThread,
		SharedMemBytes: rec.SharedMemBytes,
	}
	sig := signature(rec.Name, cfg)
	ks := p.bydKey[sig]
	if ks == nil {
		ks = &KernelStats{Name: rec.Name, Config: cfg}
		p.bydKey[sig] = ks
		p.Kernels = append(p.Kernels, ks)
	}
	ks.Launches++
	ks.totalDur += rec.Duration()
	ks.AvgDuration = ks.totalDur / time.Duration(ks.Launches)
}

// Tracker is the resource tracker module: the machine-wide, compact,
// asynchronous kernel profiler (kernel profiler + kernel parser submodules
// of Fig. 6). It owns one CUPTI session per device and charges profiling
// costs to the per-device ledger.
type Tracker struct {
	mu       sync.Mutex
	sessions map[*simgpu.Device]*cuptisim.Session
	lastInst map[*simgpu.Device]time.Duration
}

// NewTracker builds the shared resource tracker.
func NewTracker() *Tracker {
	return &Tracker{
		sessions: map[*simgpu.Device]*cuptisim.Session{},
		lastInst: map[*simgpu.Device]time.Duration{},
	}
}

func (t *Tracker) session(dev *simgpu.Device) *cuptisim.Session {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.sessions[dev]
	if s == nil {
		s = cuptisim.Subscribe(dev)
		t.sessions[dev] = s
	}
	return s
}

// StartProfiling enables kernel-activity collection on a device.
func (t *Tracker) StartProfiling(dev *simgpu.Device) error {
	return t.session(dev).EnableKernelActivity()
}

// Collect stops profiling, flushes the CUPTI buffers, and parses the
// records into per-layer profiles keyed by the scheduler key embedded in
// each kernel tag ("<key>|<kernel tag>"). The parse is timed for real and,
// together with the per-kernel instrumentation overhead, makes up T_p.
func (t *Tracker) Collect(dev *simgpu.Device, ledger *Ledger) (map[string]*LayerProfile, error) {
	s := t.session(dev)
	if err := s.DisableKernelActivity(); err != nil {
		return nil, err
	}
	recs, err := s.Flush()
	if err != nil {
		return nil, err
	}

	parseStart := time.Now()
	out := map[string]*LayerProfile{}
	for _, r := range recs {
		key := r.Tag
		if i := strings.IndexByte(key, '|'); i >= 0 {
			key = key[:i]
		}
		p := out[key]
		if p == nil {
			p = newLayerProfile(key)
			out[key] = p
		}
		p.add(r)
	}
	parseTime := time.Since(parseStart)

	t.mu.Lock()
	instr := s.InstrumentationTime()
	instrDelta := instr - t.lastInst[dev]
	t.lastInst[dev] = instr
	t.mu.Unlock()

	tp := instrDelta + parseTime
	if ledger != nil {
		ledger.addProfiling(int64(len(recs)), tp, s.MemoryFootprint())
	}
	// Profiling work happens on the dispatching host thread: kernels
	// launched afterwards see it as dispatch delay.
	dev.AdvanceHost(tp)
	return out, nil
}

// Discard aborts an in-flight profiling window: collection is disabled and
// any buffered records are dropped without being parsed or charged to a
// ledger. The disable synchronizes the device first, so in-flight kernels
// from the aborted iteration complete, land in the buffer, and are thrown
// away here rather than polluting the next profiling window. Returns the
// number of records discarded.
func (t *Tracker) Discard(dev *simgpu.Device) (int, error) {
	s := t.session(dev)
	if err := s.DisableKernelActivity(); err != nil {
		return 0, err
	}
	recs, err := s.Flush()
	if err != nil {
		return 0, err
	}
	return len(recs), nil
}

// Close releases all CUPTI sessions.
func (t *Tracker) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.sessions {
		s.Close()
	}
	t.sessions = map[*simgpu.Device]*cuptisim.Session{}
}
