// Package cuptisim is a CUPTI-flavoured activity-record API over the
// simulated GPU (internal/simgpu). GLP4NN's resource tracker is built on
// NVIDIA CUPTI; this package reproduces the parts the paper depends on — a
// per-device subscriber that collects kernel activity records (launch
// configuration + timestamps) into a pool of fixed-size activity buffers —
// together with the memory and time accounting the paper's cost model
// measures (mem_cupti in Fig. 10, the per-kernel profiling cost inside T_p
// in Table 6).
package cuptisim

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/simgpu"
)

// Activity-buffer accounting constants, chosen to mirror CUPTI's defaults:
// CUPTI hands the client 3 MiB-class activity buffers and serializes
// ~100-byte kernel records into them; the runtime itself pins a few MiB.
const (
	// BufferSize is the size of one activity buffer.
	BufferSize = 4 << 20
	// RecordSize is the serialized size of one kernel activity record
	// (CUpti_ActivityKernel4 is ~120 bytes).
	RecordSize = 120
	// RuntimeFootprint is CUPTI's fixed instrumentation overhead.
	RuntimeFootprint = 3 << 20
	// PerKernelOverhead is the host-side instrumentation cost CUPTI adds to
	// each launch while kernel activity collection is enabled.
	PerKernelOverhead = 2 * time.Microsecond
)

// KernelActivity is one collected record: exactly the fields the paper's
// kernel parser consumes.
type KernelActivity struct {
	Name           string
	Tag            string
	DeviceID       int
	StreamID       int
	Grid           simgpu.Dim3
	Block          simgpu.Dim3
	RegsPerThread  int
	SharedMemBytes int
	Start, End     time.Duration
}

// Duration returns the kernel's device residency time.
func (a KernelActivity) Duration() time.Duration { return a.End - a.Start }

// Session is one device subscription. Create with Subscribe, enable kernel
// activity around the region of interest, then Flush to drain records.
type Session struct {
	dev *simgpu.Device

	mu       sync.Mutex
	enabled  bool
	closed   bool
	token    int
	pending  []KernelActivity
	buffers  int // allocated activity buffers
	bufUsed  int // bytes used in the current buffer
	overhead time.Duration
	dropped  int64
	records  int64
}

// Subscribe attaches a profiling session to a device. Only one session per
// device is needed; the paper's resource tracker is shared machine-wide.
func Subscribe(dev *simgpu.Device) *Session {
	s := &Session{dev: dev, buffers: 1}
	s.token = dev.Subscribe(s.onRecord)
	return s
}

// onRecord runs under the device lock during drains; it must not call
// device methods.
func (s *Session) onRecord(r simgpu.KernelRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.enabled || s.closed {
		return
	}
	if s.bufUsed+RecordSize > BufferSize {
		s.buffers++
		s.bufUsed = 0
	}
	s.bufUsed += RecordSize
	s.records++
	s.overhead += PerKernelOverhead
	s.pending = append(s.pending, KernelActivity{
		Name:           r.Name,
		Tag:            r.Tag,
		DeviceID:       s.dev.ID(),
		StreamID:       r.StreamID,
		Grid:           r.Grid,
		Block:          r.Block,
		RegsPerThread:  r.RegsPerThread,
		SharedMemBytes: r.SharedMemBytes,
		Start:          r.Start,
		End:            r.End,
	})
}

// EnableKernelActivity starts collecting kernel records. Like CUPTI's
// activity API it synchronizes the device first, so kernels launched before
// the enable are never collected (the simulator completes kernels lazily).
func (s *Session) EnableKernelActivity() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("cuptisim: session closed")
	}
	s.mu.Unlock()
	if _, err := s.dev.Synchronize(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enabled = true
	return nil
}

// DisableKernelActivity stops collecting, first synchronizing the device so
// kernels launched while enabled are captured. Records already buffered
// remain available to Flush. Like the other activity calls it fails on a
// closed session (CUPTI: CUPTI_ERROR_INVALID_PARAMETER after unsubscribe).
func (s *Session) DisableKernelActivity() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("cuptisim: session closed")
	}
	s.mu.Unlock()
	if _, err := s.dev.Synchronize(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enabled = false
	return nil
}

// Flush synchronizes the device (completing all in-flight kernels) and
// returns the buffered records, clearing the buffer. A closed session
// flushes empty rather than erroring, so teardown paths can always drain.
func (s *Session) Flush() ([]KernelActivity, error) {
	if _, err := s.dev.Synchronize(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.pending
	s.pending = nil
	s.bufUsed = 0
	return out, nil
}

// MemoryFootprint returns the bytes this session pins on the host: the
// CUPTI runtime plus all activity buffers ever grown. This is the paper's
// mem_cupti.
func (s *Session) MemoryFootprint() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(RuntimeFootprint) + int64(s.buffers)*int64(BufferSize)
}

// InstrumentationTime returns the accumulated host-side per-kernel
// profiling cost (a component of the paper's T_p).
func (s *Session) InstrumentationTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.overhead
}

// RecordCount returns how many kernel records this session collected.
func (s *Session) RecordCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.records
}

// Close detaches from the device. The session cannot be reused.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.enabled = false
	s.mu.Unlock()
	s.dev.Unsubscribe(s.token)
}
