package cuptisim

import (
	"testing"
	"time"

	"repro/internal/simgpu"
)

var testSpec = simgpu.DeviceSpec{
	Name: "TestGPU", Arch: "Pascal",
	SMCount: 4, CoresPerSM: 64, ClockGHz: 1.0,
	MemGB: 4, MemBandwidthGBps: 100, MemType: "TEST",
	SharedMemPerSMKB:       48,
	MaxThreadsPerSM:        1024,
	MaxBlocksPerSM:         8,
	MaxThreadsPerBlock:     512,
	RegistersPerSM:         65536,
	WarpSize:               32,
	LaunchOverhead:         time.Microsecond,
	MemSaturationOccupancy: 0.25,
}

func launch(t *testing.T, d *simgpu.Device, name string, blocks int) {
	t.Helper()
	k := &simgpu.Kernel{
		Name: name,
		Tag:  "layer/" + name,
		Config: simgpu.LaunchConfig{
			Grid: simgpu.D1(blocks), Block: simgpu.D1(256),
			RegsPerThread: 33, SharedMemBytes: 1024,
		},
		Cost: simgpu.Cost{FLOPs: 1e5},
	}
	if err := d.Launch(k, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSessionCollectsRecords(t *testing.T) {
	d := simgpu.NewDevice(testSpec)
	s := Subscribe(d)
	defer s.Close()
	if err := s.EnableKernelActivity(); err != nil {
		t.Fatal(err)
	}
	launch(t, d, "im2col", 4)
	launch(t, d, "sgemm", 8)
	recs, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	r := recs[0]
	if r.Name != "im2col" || r.Grid.X != 4 || r.Block.X != 256 || r.RegsPerThread != 33 || r.SharedMemBytes != 1024 {
		t.Fatalf("bad record: %+v", r)
	}
	if r.Tag != "layer/im2col" {
		t.Fatalf("tag = %q", r.Tag)
	}
	if r.End <= r.Start || r.Duration() <= 0 {
		t.Fatalf("bad timestamps: %+v", r)
	}
	if s.RecordCount() != 2 {
		t.Fatalf("record count = %d", s.RecordCount())
	}
	// Flush cleared the buffer.
	recs, _ = s.Flush()
	if len(recs) != 0 {
		t.Fatal("flush did not clear")
	}
}

func TestDisableStopsCollection(t *testing.T) {
	d := simgpu.NewDevice(testSpec)
	s := Subscribe(d)
	defer s.Close()
	launch(t, d, "before-enable", 1)
	if err := s.EnableKernelActivity(); err != nil {
		t.Fatal(err)
	}
	launch(t, d, "during", 1)
	if _, err := d.Synchronize(); err != nil {
		t.Fatal(err)
	}
	if err := s.DisableKernelActivity(); err != nil {
		t.Fatal(err)
	}
	launch(t, d, "after", 1)
	recs, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Name != "during" {
		t.Fatalf("records = %v", recs)
	}
}

func TestMemoryFootprintGrowsWithBuffers(t *testing.T) {
	d := simgpu.NewDevice(testSpec)
	s := Subscribe(d)
	defer s.Close()
	base := s.MemoryFootprint()
	if base != RuntimeFootprint+BufferSize {
		t.Fatalf("base footprint = %d", base)
	}
	if err := s.EnableKernelActivity(); err != nil {
		t.Fatal(err)
	}
	// Overflow one buffer: need > BufferSize/RecordSize records. That is
	// ~35k launches — too many for a unit test, so validate the arithmetic
	// at a smaller scale by checking per-record accounting instead.
	for i := 0; i < 100; i++ {
		launch(t, d, "k", 1)
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.MemoryFootprint() != base {
		t.Fatal("footprint grew before buffer overflow")
	}
	if got, want := s.InstrumentationTime(), 100*PerKernelOverhead; got != want {
		t.Fatalf("instrumentation time = %v, want %v", got, want)
	}
}

func TestClosedSessionIgnoresWork(t *testing.T) {
	d := simgpu.NewDevice(testSpec)
	s := Subscribe(d)
	if err := s.EnableKernelActivity(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // double close is fine
	if err := s.EnableKernelActivity(); err == nil {
		t.Fatal("enable on closed session succeeded")
	}
	launch(t, d, "k", 1)
	recs, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatal("closed session collected records")
	}
}
