// Package data provides procedural stand-ins for the paper's datasets
// (Table 4: MNIST, CIFAR-10, ImageNet-2012). The real datasets gate nothing
// in the reproduction except tensor shapes (which drive every kernel launch
// configuration) and learnability (which the convergence experiment needs),
// so each dataset is synthesized class-conditionally: class c has a smooth
// random latent pattern, samples are bilinear upsamplings of that latent
// plus per-sample Gaussian noise. Everything is deterministic given the
// dataset seed and sample index, and no sample is materialized until asked
// for — the 1.2M-image ImageNet stand-in costs a few kilobytes of latents.
package data

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Split selects the training or test partition.
type Split int

// Splits.
const (
	TrainSplit Split = iota
	TestSplit
)

// Spec describes one dataset, mirroring the columns of the paper's Table 4.
type Spec struct {
	Name        string
	TrainImages int
	TestImages  int
	Channels    int
	Height      int
	Width       int
	Classes     int
}

// Catalog is the paper's Table 4. (MNIST is single-channel; CIFAR-10 and
// ImageNet are RGB. The paper lists pixel geometry only.)
var Catalog = []Spec{
	{Name: "MNIST", TrainImages: 60000, TestImages: 10000, Channels: 1, Height: 28, Width: 28, Classes: 10},
	{Name: "CIFAR-10", TrainImages: 50000, TestImages: 10000, Channels: 3, Height: 32, Width: 32, Classes: 10},
	{Name: "ImageNet", TrainImages: 1200000, TestImages: 150000, Channels: 3, Height: 256, Width: 256, Classes: 1000},
}

// SpecByName returns the catalog spec with the given name.
func SpecByName(name string) (Spec, bool) {
	for _, s := range Catalog {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// latentSize is the per-class latent pattern resolution; samples are
// bilinear upsamplings of it.
const latentSize = 12

// Dataset generates samples on demand. Sample, Label and SampleCount are
// safe for concurrent use from any number of goroutines: the lazy per-class
// latent materialization publishes through an atomic pointer, so parallel
// fill workers (see Prefetcher) may hit the same class simultaneously.
type Dataset struct {
	Spec
	seed     int64
	noiseStd float32

	latMu   sync.Mutex                  // serializes latent construction
	latents []atomic.Pointer[[]float32] // per class: Channels×latentSize×latentSize
}

// Synthetic builds a deterministic synthetic dataset for a spec.
func Synthetic(spec Spec, seed int64) *Dataset {
	return &Dataset{
		Spec:     spec,
		seed:     seed,
		noiseStd: 0.35,
		latents:  make([]atomic.Pointer[[]float32], spec.Classes),
	}
}

// SampleCount returns the number of samples in a split.
func (d *Dataset) SampleCount(split Split) int {
	if split == TrainSplit {
		return d.TrainImages
	}
	return d.TestImages
}

// SampleSize returns elements per image at native resolution.
func (d *Dataset) SampleSize() int { return d.Channels * d.Height * d.Width }

// Label returns the class of a sample. Assignment is round-robin, which
// keeps classes exactly balanced and makes same-class pair sampling O(1)
// (the Siamese workload needs it).
func (d *Dataset) Label(split Split, index int) int {
	d.checkIndex(split, index)
	return index % d.Classes
}

func (d *Dataset) checkIndex(split Split, index int) {
	if index < 0 || index >= d.SampleCount(split) {
		panic(fmt.Sprintf("data: %s index %d out of range for split %d", d.Name, index, split))
	}
}

func (d *Dataset) latent(class int) []float32 {
	if l := d.latents[class].Load(); l != nil {
		return *l
	}
	d.latMu.Lock()
	defer d.latMu.Unlock()
	if l := d.latents[class].Load(); l != nil {
		return *l
	}
	rng := rand.New(rand.NewSource(d.seed ^ (int64(class)+1)*0x2545F4914F6CDD1D))
	l := make([]float32, d.Channels*latentSize*latentSize)
	for i := range l {
		l[i] = float32(rng.NormFloat64())
	}
	d.latents[class].Store(&l)
	return l
}

// noiseSeed returns the per-sample Gaussian noise seed. Distinct stream per
// (split, index) and independent of access order — this is what makes
// samples pure functions of their coordinates, and hence parallel and
// replayed fills bit-identical to serial ones.
func (d *Dataset) noiseSeed(split Split, index int) int64 {
	return d.seed ^ 0x5bf03635<<int64(split) ^ int64(index)*0x100000001B3
}

// Sample writes the image for (split, index) into out (len SampleSize with
// h=Height, w=Width — or any h,w for cropped/scaled variants) and returns
// its label. The image is the class latent bilinearly resampled to h×w plus
// index-seeded Gaussian noise. Safe for concurrent use; for a hot loop use
// a Sampler, which produces identical bits without allocating.
func (d *Dataset) Sample(split Split, index int, out []float32, h, w int) int {
	rng := rand.New(rand.NewSource(d.noiseSeed(split, index)))
	return d.sampleSeeded(split, index, out, h, w, rng)
}

// sampleSeeded is the Sample body with the noise RNG supplied by the
// caller; rng must already be seeded with noiseSeed(split, index).
func (d *Dataset) sampleSeeded(split Split, index int, out []float32, h, w int, rng *rand.Rand) int {
	d.checkIndex(split, index)
	if len(out) < d.Channels*h*w {
		panic(fmt.Sprintf("data: %s: out buffer %d < %d", d.Name, len(out), d.Channels*h*w))
	}
	class := d.Label(split, index)
	lat := d.latent(class)
	idx := 0
	for c := 0; c < d.Channels; c++ {
		plane := lat[c*latentSize*latentSize:]
		for y := 0; y < h; y++ {
			fy := float32(y) * float32(latentSize-1) / float32(max(h-1, 1))
			y0 := int(fy)
			ty := fy - float32(y0)
			y1 := y0 + 1
			if y1 >= latentSize {
				y1 = latentSize - 1
			}
			for x := 0; x < w; x++ {
				fx := float32(x) * float32(latentSize-1) / float32(max(w-1, 1))
				x0 := int(fx)
				tx := fx - float32(x0)
				x1 := x0 + 1
				if x1 >= latentSize {
					x1 = latentSize - 1
				}
				v := plane[y0*latentSize+x0]*(1-ty)*(1-tx) +
					plane[y0*latentSize+x1]*(1-ty)*tx +
					plane[y1*latentSize+x0]*ty*(1-tx) +
					plane[y1*latentSize+x1]*ty*tx
				out[idx] = v + d.noiseStd*float32(rng.NormFloat64())
				idx++
			}
		}
	}
	return class
}

// Sampler draws dataset samples through a reusable noise RNG: bit-identical
// output to Dataset.Sample, but allocation-free in steady state (re-seeding
// a rand.Rand resets its generator state in place, producing the exact
// stream a fresh rand.New(rand.NewSource(seed)) would). A Sampler is not
// safe for concurrent use — give each fill worker its own.
type Sampler struct {
	ds  *Dataset
	rng *rand.Rand
}

// NewSampler builds a reusable sampler over the dataset.
func (d *Dataset) NewSampler() *Sampler {
	return &Sampler{ds: d, rng: rand.New(rand.NewSource(0))}
}

// Sample is Dataset.Sample through the reusable RNG.
func (s *Sampler) Sample(split Split, index int, out []float32, h, w int) int {
	s.rng.Seed(s.ds.noiseSeed(split, index))
	return s.ds.sampleSeeded(split, index, out, h, w, s.rng)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Iterator yields shuffled mini-batches, reshuffling each epoch (the
// "shuffle process while fetching training batch samples" the paper names
// as the only source of divergence between Caffe and GLP4NN-Caffe).
//
// An Iterator is single-goroutine state: index selection owns the RNG
// stream. The Prefetcher respects this by calling drawInto from exactly one
// producer goroutine and parallelizing only the pure per-sample fills.
type Iterator struct {
	ds    *Dataset
	split Split
	batch int
	h, w  int
	rng   *rand.Rand
	perm  []int
	pos   int
	epoch int
	swap  func(i, j int) // preallocated Shuffle body: reshuffles allocate nothing
}

// NewIterator builds a batch iterator at native resolution.
func NewIterator(ds *Dataset, split Split, batch int, seed int64) *Iterator {
	return NewCroppedIterator(ds, split, batch, ds.Height, ds.Width, seed)
}

// NewCroppedIterator builds a batch iterator producing h×w samples (e.g.
// CaffeNet's 227×227 crops of 256×256 ImageNet images).
func NewCroppedIterator(ds *Dataset, split Split, batch, h, w int, seed int64) *Iterator {
	if batch <= 0 {
		panic("data: batch size must be positive")
	}
	it := &Iterator{ds: ds, split: split, batch: batch, h: h, w: w, rng: rand.New(rand.NewSource(seed))}
	it.swap = func(i, j int) { it.perm[i], it.perm[j] = it.perm[j], it.perm[i] }
	it.reshuffle()
	return it
}

func (it *Iterator) reshuffle() {
	n := it.ds.SampleCount(it.split)
	if it.perm == nil {
		// Cap the working set: epoch-scale index permutations of the
		// 1.2M-image stand-in are pointless for our run lengths.
		if n > 1<<20 {
			n = 1 << 20
		}
		it.perm = make([]int, n)
		for i := range it.perm {
			it.perm[i] = i
		}
	}
	it.rng.Shuffle(len(it.perm), it.swap)
	it.pos = 0
}

// Epoch returns how many full passes have completed.
func (it *Iterator) Epoch() int { return it.epoch }

// BatchShape returns (N, C, H, W) of produced batches.
func (it *Iterator) BatchShape() (n, c, h, w int) {
	return it.batch, it.ds.Channels, it.h, it.w
}

// nextIndex advances the serial index-selection state by one sample: the
// permutation walk, epoch accounting and reshuffle RNG draws are identical
// whether batches are synthesized inline (Next) or planned for asynchronous
// fill (drawInto).
func (it *Iterator) nextIndex() int {
	if it.pos >= len(it.perm) {
		it.epoch++
		it.reshuffle()
	}
	idx := it.perm[it.pos]
	it.pos++
	return idx
}

// Next fills data (batch×C×h×w) and labels (batch) with the next mini-batch.
func (it *Iterator) Next(data, labels []float32) {
	size := it.ds.Channels * it.h * it.w
	if len(data) < it.batch*size {
		panic(fmt.Sprintf("data: %s: Next data buffer %d < %d", it.ds.Name, len(data), it.batch*size))
	}
	if len(labels) < it.batch {
		panic(fmt.Sprintf("data: %s: Next labels buffer %d < %d", it.ds.Name, len(labels), it.batch))
	}
	for i := 0; i < it.batch; i++ {
		idx := it.nextIndex()
		label := it.ds.Sample(it.split, idx, data[i*size:(i+1)*size], it.h, it.w)
		labels[i] = float32(label)
	}
}

// drawInto advances the iterator by exactly one batch — the same draws Next
// performs — recording the chosen sample indices instead of synthesizing
// them. len(idx) must be the batch size.
func (it *Iterator) drawInto(idx []int) {
	for i := 0; i < it.batch; i++ {
		idx[i] = it.nextIndex()
	}
}

// PairIterator yields Siamese training pairs: two images plus a similarity
// flag (1 = same class), balanced 50/50. Like Iterator, it is
// single-goroutine state; the Prefetcher draws pairs serially and fills
// them in parallel.
type PairIterator struct {
	ds    *Dataset
	split Split
	batch int
	rng   *rand.Rand
}

// NewPairIterator builds a Siamese pair sampler. The dataset needs at least
// two classes (a different-class pair must exist) and a non-empty split.
func NewPairIterator(ds *Dataset, split Split, batch int, seed int64) *PairIterator {
	if batch <= 0 {
		panic("data: batch size must be positive")
	}
	if ds.Classes < 2 {
		panic(fmt.Sprintf("data: %s: PairIterator needs ≥ 2 classes, have %d", ds.Name, ds.Classes))
	}
	if ds.SampleCount(split) < ds.Classes {
		panic(fmt.Sprintf("data: %s: PairIterator needs ≥ %d samples in split %d, have %d",
			ds.Name, ds.Classes, split, ds.SampleCount(split)))
	}
	return &PairIterator{ds: ds, split: split, batch: batch, rng: rand.New(rand.NewSource(seed))}
}

// pairDraw is one planned Siamese pair: sample indices and the similarity
// flag, before any pixel is synthesized.
type pairDraw struct {
	A, B int
	Sim  float32
}

// nextPair draws one pair; the single point consuming the pair RNG stream,
// shared by the inline and prefetched paths.
func (p *PairIterator) nextPair() pairDraw {
	n := p.ds.SampleCount(p.split)
	classes := p.ds.Classes
	a := p.rng.Intn(n)
	if p.rng.Intn(2) == 0 {
		// Same class: round-robin labels make stepping by Classes stay
		// in-class.
		hop := 1 + p.rng.Intn(max(n/classes-1, 1))
		return pairDraw{A: a, B: (a + hop*classes) % n, Sim: 1}
	}
	// Different class: shift by a non-multiple of Classes.
	shift := 1 + p.rng.Intn(classes-1)
	return pairDraw{A: a, B: (a + shift) % n, Sim: 0}
}

// Next fills a (left, right, sim) batch at native resolution. Buffer
// lengths are validated up front — left and right need batch×SampleSize
// elements, sim needs batch — and a clear panic names the short buffer.
func (p *PairIterator) Next(left, right, sim []float32) {
	size := p.ds.SampleSize()
	if len(left) < p.batch*size {
		panic(fmt.Sprintf("data: %s: pair left buffer %d < %d", p.ds.Name, len(left), p.batch*size))
	}
	if len(right) < p.batch*size {
		panic(fmt.Sprintf("data: %s: pair right buffer %d < %d", p.ds.Name, len(right), p.batch*size))
	}
	if len(sim) < p.batch {
		panic(fmt.Sprintf("data: %s: pair sim buffer %d < %d", p.ds.Name, len(sim), p.batch))
	}
	for i := 0; i < p.batch; i++ {
		d := p.nextPair()
		sim[i] = d.Sim
		p.ds.Sample(p.split, d.A, left[i*size:(i+1)*size], p.ds.Height, p.ds.Width)
		p.ds.Sample(p.split, d.B, right[i*size:(i+1)*size], p.ds.Height, p.ds.Width)
	}
}

// drawInto advances the pair iterator by exactly one batch of pair draws,
// recording them instead of synthesizing. len(pairs) must be the batch size.
func (p *PairIterator) drawInto(pairs []pairDraw) {
	for i := 0; i < p.batch; i++ {
		pairs[i] = p.nextPair()
	}
}
