package data

import (
	"math"
	"testing"
)

func TestCatalogMatchesTable4(t *testing.T) {
	if len(Catalog) != 3 {
		t.Fatalf("catalog has %d entries, want 3 (Table 4)", len(Catalog))
	}
	mnist, ok := SpecByName("MNIST")
	if !ok || mnist.TrainImages != 60000 || mnist.TestImages != 10000 || mnist.Height != 28 || mnist.Classes != 10 {
		t.Fatalf("MNIST spec wrong: %+v", mnist)
	}
	cifar, _ := SpecByName("CIFAR-10")
	if cifar.TrainImages != 50000 || cifar.Width != 32 || cifar.Channels != 3 {
		t.Fatalf("CIFAR-10 spec wrong: %+v", cifar)
	}
	inet, _ := SpecByName("ImageNet")
	if inet.TrainImages != 1200000 || inet.Classes != 1000 || inet.Height != 256 {
		t.Fatalf("ImageNet spec wrong: %+v", inet)
	}
	if _, ok := SpecByName("nope"); ok {
		t.Fatal("unknown dataset resolved")
	}
}

func TestSampleDeterminism(t *testing.T) {
	spec, _ := SpecByName("CIFAR-10")
	ds1 := Synthetic(spec, 42)
	ds2 := Synthetic(spec, 42)
	a := make([]float32, ds1.SampleSize())
	b := make([]float32, ds2.SampleSize())
	la := ds1.Sample(TrainSplit, 1234, a, spec.Height, spec.Width)
	lb := ds2.Sample(TrainSplit, 1234, b, spec.Height, spec.Width)
	if la != lb {
		t.Fatalf("labels differ: %d vs %d", la, lb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample not deterministic at %d", i)
		}
	}
	// Different index produces a different image.
	c := make([]float32, ds1.SampleSize())
	ds1.Sample(TrainSplit, 1235, c, spec.Height, spec.Width)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct indices produced identical samples")
	}
}

func TestLabelsRoundRobinAndBalanced(t *testing.T) {
	spec, _ := SpecByName("MNIST")
	ds := Synthetic(spec, 1)
	counts := make([]int, spec.Classes)
	for i := 0; i < 1000; i++ {
		counts[ds.Label(TrainSplit, i)]++
	}
	for c, n := range counts {
		if n != 100 {
			t.Fatalf("class %d has %d of 1000 samples, want 100", c, n)
		}
	}
}

// TestClassSeparability checks the synthetic generator's core promise:
// same-class samples are closer (on average) than cross-class samples, so a
// network can learn the classes.
func TestClassSeparability(t *testing.T) {
	spec, _ := SpecByName("CIFAR-10")
	ds := Synthetic(spec, 7)
	size := ds.SampleSize()
	img := func(i int) []float32 {
		out := make([]float32, size)
		ds.Sample(TrainSplit, i, out, spec.Height, spec.Width)
		return out
	}
	dist := func(a, b []float32) float64 {
		s := 0.0
		for i := range a {
			d := float64(a[i] - b[i])
			s += d * d
		}
		return s
	}
	// Indices 0 and 10 share class 0; index 1 is class 1.
	same := dist(img(0), img(10))
	diff := dist(img(0), img(1))
	if same >= diff {
		t.Fatalf("same-class distance %v not below cross-class %v", same, diff)
	}
}

func TestSampleCrop(t *testing.T) {
	spec, _ := SpecByName("ImageNet")
	ds := Synthetic(spec, 3)
	out := make([]float32, spec.Channels*227*227)
	label := ds.Sample(TrainSplit, 5, out, 227, 227)
	if label != 5%1000 {
		t.Fatalf("label = %d", label)
	}
	nonzero := 0
	for _, v := range out {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < len(out)/2 {
		t.Fatal("cropped sample mostly zero")
	}
}

func TestSamplePanics(t *testing.T) {
	spec, _ := SpecByName("MNIST")
	ds := Synthetic(spec, 1)
	assertPanics(t, func() { ds.Sample(TrainSplit, -1, make([]float32, 784), 28, 28) })
	assertPanics(t, func() { ds.Sample(TestSplit, 10000, make([]float32, 784), 28, 28) })
	assertPanics(t, func() { ds.Sample(TrainSplit, 0, make([]float32, 3), 28, 28) })
	assertPanics(t, func() { NewIterator(ds, TrainSplit, 0, 1) })
	assertPanics(t, func() { NewPairIterator(ds, TrainSplit, -1, 1) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestIteratorCoversEpochWithoutRepeats(t *testing.T) {
	spec := Spec{Name: "tiny", TrainImages: 50, TestImages: 10, Channels: 1, Height: 4, Width: 4, Classes: 5}
	ds := Synthetic(spec, 11)
	it := NewIterator(ds, TrainSplit, 10, 1)
	data := make([]float32, 10*ds.SampleSize())
	labels := make([]float32, 10)
	seen := map[float32]int{}
	for b := 0; b < 5; b++ { // one epoch
		it.Next(data, labels)
		for _, l := range labels {
			seen[l]++
		}
	}
	// Round-robin labels over 50 samples: each class appears exactly 10×.
	for c := 0; c < 5; c++ {
		if seen[float32(c)] != 10 {
			t.Fatalf("class %d seen %d times in epoch, want 10", c, seen[float32(c)])
		}
	}
	if it.Epoch() != 0 {
		t.Fatalf("epoch = %d before wrap", it.Epoch())
	}
	it.Next(data, labels)
	if it.Epoch() != 1 {
		t.Fatalf("epoch = %d after wrap, want 1", it.Epoch())
	}
	n, c, h, w := it.BatchShape()
	if n != 10 || c != 1 || h != 4 || w != 4 {
		t.Fatalf("BatchShape = %d %d %d %d", n, c, h, w)
	}
}

func TestIteratorShufflesDifferentlyPerSeed(t *testing.T) {
	spec := Spec{Name: "tiny", TrainImages: 100, TestImages: 10, Channels: 1, Height: 2, Width: 2, Classes: 10}
	ds := Synthetic(spec, 11)
	a := NewIterator(ds, TrainSplit, 20, 1)
	b := NewIterator(ds, TrainSplit, 20, 2)
	da := make([]float32, 20*4)
	db := make([]float32, 20*4)
	la := make([]float32, 20)
	lb := make([]float32, 20)
	a.Next(da, la)
	b.Next(db, lb)
	same := true
	for i := range la {
		if la[i] != lb[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical batch order")
	}
}

func TestPairIteratorSimilarityIsCorrect(t *testing.T) {
	spec, _ := SpecByName("MNIST")
	ds := Synthetic(spec, 5)
	p := NewPairIterator(ds, TrainSplit, 64, 9)
	size := ds.SampleSize()
	left := make([]float32, 64*size)
	right := make([]float32, 64*size)
	sim := make([]float32, 64)
	p.Next(left, right, sim)
	similar := 0
	for i := 0; i < 64; i++ {
		if sim[i] > 0.5 {
			similar++
		}
	}
	// Balanced-ish sampling.
	if similar < 16 || similar > 48 {
		t.Fatalf("similar pairs = %d of 64, want roughly half", similar)
	}
	// Verify the sim flag against actual class distance: same-class pairs
	// must be closer in expectation.
	var dSame, dDiff float64
	var nSame, nDiff int
	for i := 0; i < 64; i++ {
		s := 0.0
		for j := 0; j < size; j++ {
			d := float64(left[i*size+j] - right[i*size+j])
			s += d * d
		}
		if sim[i] > 0.5 {
			dSame += s
			nSame++
		} else {
			dDiff += s
			nDiff++
		}
	}
	if nSame == 0 || nDiff == 0 {
		t.Fatal("degenerate pair batch")
	}
	if dSame/float64(nSame) >= dDiff/float64(nDiff) {
		t.Fatalf("same-class mean distance %v not below cross-class %v",
			dSame/float64(nSame), dDiff/float64(nDiff))
	}
}

func TestNoiseStatistics(t *testing.T) {
	spec, _ := SpecByName("CIFAR-10")
	ds := Synthetic(spec, 21)
	size := ds.SampleSize()
	a := make([]float32, size)
	b := make([]float32, size)
	ds.Sample(TrainSplit, 0, a, 32, 32)
	ds.Sample(TrainSplit, 10, b, 32, 32) // same class, different noise
	var sum, sum2 float64
	for i := range a {
		d := float64(a[i] - b[i])
		sum += d
		sum2 += d * d
	}
	n := float64(size)
	std := math.Sqrt(sum2/n - (sum/n)*(sum/n))
	// Difference of two independent N(0, 0.35²) noises → std ≈ 0.495.
	if std < 0.3 || std > 0.7 {
		t.Fatalf("noise std = %v, want ≈0.5", std)
	}
}
