package data

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/hostpool"
)

// This file is the asynchronous input pipeline: a bounded, ping-pong-
// buffered Prefetcher that synthesizes batch t+1 while batch t trains.
//
// Numeric contract (DESIGN §7.3): all randomness that decides *which*
// samples form a batch — the shuffle walk of Iterator, the pair draws of
// PairIterator, a serial generator's own RNG — executes on exactly one
// producer goroutine, in exactly the order the inline iterator would have
// consumed it. Only the per-sample pixel fills fan out across hostpool
// workers, and those are pure functions of (dataset, split, index), so the
// delivered batch stream is bit-identical to the serial one. On rollback
// the pipeline discards every synthesized-but-undelivered batch and
// re-queues its recorded draw plan, so the post-rollback stream continues
// exactly where the consumer last read.

// Batch is one prefetched mini-batch. Planes holds the filled input
// planes in source order (Iterator: data; PairIterator: left, right;
// serial sources: as constructed) and Labels the per-sample label or
// similarity vector. Buffers are owned by the Prefetcher and recycled:
// a consumer must copy what it needs and call Recycle before the next
// call to Next.
type Batch struct {
	Planes [][]float32
	Labels []float32

	// The recorded draw plan (one of the two, by source kind): what
	// Rollback re-queues so a discarded batch is re-synthesized with
	// identical bits.
	idx   []int
	pairs []pairDraw
}

// PipelineStats counts a Prefetcher's delivery outcomes.
type PipelineStats struct {
	Hits      int64         // batches that were ready the moment the consumer asked
	Stalls    int64         // Next calls that had to wait on synthesis
	StallTime time.Duration // total wall time Next spent waiting
}

func (s PipelineStats) String() string {
	return fmt.Sprintf("hits=%d stalls=%d stall-time=%v", s.Hits, s.Stalls, s.StallTime.Round(time.Microsecond))
}

// Observer receives pipeline events as they happen. *core.Ledger implements
// it, so prefetch behavior lands in the runtime's overhead ledger next to
// the paper's cost counters. Implementations must be safe for concurrent
// use and should not block.
type Observer interface {
	PrefetchHit()
	PrefetchStall(wait time.Duration)
}

// Options tunes a Prefetcher. The zero value is ready to use.
type Options struct {
	// Pool bounds fill concurrency; nil selects hostpool.Default(). Fill
	// workers take one pool slot per sample filled, so prefetch synthesis
	// and kernel host math share one machine-wide concurrency budget.
	Pool *hostpool.Pool
	// Workers caps the persistent fill workers; ≤ 0 selects the pool
	// width, clamped to the per-batch fill count.
	Workers int
	// Depth is the number of in-flight batch buffers; < 2 selects the
	// ping-pong default of 2 (one computing, one filling).
	Depth int
	// Observer, when non-nil, is notified of every hit and stall.
	Observer Observer
}

// source is the serial half of a pipeline: it draws batch plans on the
// producer goroutine and exposes the pure per-sample fills.
type source interface {
	// newBatch allocates a batch with this source's buffer shapes.
	newBatch() *Batch
	// draw advances the serial selection state by one batch, recording the
	// plan in b (or, for serial sources, synthesizing outright). Called
	// only from the single producer goroutine; must consume the underlying
	// RNG exactly as the inline iterator would.
	draw(b *Batch)
	// retract pushes b's recorded plan to the *front* of the replay queue.
	// Rollback calls it on undelivered batches in reverse draw order, so
	// the queue ends up in draw order.
	retract(b *Batch)
	// fills returns the per-batch count of parallel fill tasks (0 = draw
	// synthesizes everything serially).
	fills() int
	// fill executes fill task i of b on the given worker. Must be pure:
	// a function of the plan only, touching a disjoint slice of b.
	fill(b *Batch, i, worker int)
	// prepare sizes per-worker state (samplers) once worker count is known.
	prepare(workers int)
}

// Prefetcher runs a source ahead of a consumer through a fixed ring of
// reusable batch buffers. Next, Recycle, Rollback and Close must be called
// from one consumer goroutine (the training loop); Stats is safe anywhere.
// In steady state the ping-pong path allocates nothing: buffers, plans,
// samplers and worker goroutines are all created up front and recycled.
type Prefetcher struct {
	src     source
	pool    *hostpool.Pool
	obs     Observer
	workers int
	nfills  int

	free  chan *Batch   // recycled buffers awaiting a draw
	ready chan *Batch   // synthesized batches awaiting the consumer
	start []chan *Batch // fan-out: worker w's private feed, so every worker handles its stride
	done  chan struct{}

	stop   chan struct{} // closed to halt the producer
	joined chan struct{} // closed by the producer on exit
	term   chan struct{} // closed by Close: unblocks consumers forever
	closed atomic.Bool

	// inflight is the batch the producer held when halted: drawn (its plan
	// is consumed) but not yet enqueued on ready. Written by the producer
	// goroutine; read by Rollback/Close only after joining it.
	inflight *Batch

	hits    atomic.Int64
	stalls  atomic.Int64
	stallNs atomic.Int64
}

// NewPrefetcher wraps a (possibly cropped) batch iterator. The iterator
// must not be used directly afterwards: the pipeline owns its RNG stream.
func NewPrefetcher(it *Iterator, opts Options) *Prefetcher {
	size := it.ds.Channels * it.h * it.w
	return newPrefetcher(&iterSource{it: it, size: size}, opts)
}

// NewPairPrefetcher wraps a Siamese pair iterator. The iterator must not
// be used directly afterwards.
func NewPairPrefetcher(p *PairIterator, opts Options) *Prefetcher {
	return newPrefetcher(&pairSource{it: p}, opts)
}

// NewSerialPrefetcher wraps a serial batch generator that owns its whole
// RNG stream (no per-sample decomposition — e.g. the GoogLeNet feeder's
// raw Gaussian batches). gen runs on the single producer goroutine, so its
// draw order is exactly the inline order; the pipeline still overlaps
// generation with compute and double-buffers the result. planeSizes and
// labels give the buffer shapes gen is called with.
func NewSerialPrefetcher(planeSizes []int, labels int, gen func(planes [][]float32, labels []float32), opts Options) *Prefetcher {
	if gen == nil {
		panic("data: NewSerialPrefetcher needs a generator")
	}
	return newPrefetcher(&funcSource{sizes: planeSizes, labels: labels, gen: gen}, opts)
}

func newPrefetcher(src source, opts Options) *Prefetcher {
	pool := opts.Pool
	if pool == nil {
		pool = hostpool.Default()
	}
	depth := opts.Depth
	if depth < 2 {
		depth = 2
	}
	nfills := src.fills()
	workers := opts.Workers
	if workers <= 0 {
		workers = pool.Workers()
	}
	if workers > nfills {
		workers = nfills
	}
	src.prepare(workers)
	p := &Prefetcher{
		src:     src,
		pool:    pool,
		obs:     opts.Observer,
		workers: workers,
		nfills:  nfills,
		free:    make(chan *Batch, depth),
		ready:   make(chan *Batch, depth),
		start:   make([]chan *Batch, workers),
		done:    make(chan struct{}, workers),
		term:    make(chan struct{}),
	}
	for w := range p.start {
		p.start[w] = make(chan *Batch, 1)
	}
	for i := 0; i < depth; i++ {
		p.free <- src.newBatch()
	}
	for w := 0; w < workers; w++ {
		go p.fillWorker(w)
	}
	p.launch()
	return p
}

func (p *Prefetcher) launch() {
	p.stop = make(chan struct{})
	p.joined = make(chan struct{})
	go p.produce()
}

// produce is the single producer goroutine: draw serially, fan the fills
// out, hand the finished batch over. It owns every RNG draw.
func (p *Prefetcher) produce() {
	defer close(p.joined)
	for {
		var b *Batch
		select {
		case <-p.stop:
			return
		case b = <-p.free:
		}
		p.inflight = b
		p.src.draw(b)
		for w := 0; w < p.workers; w++ {
			p.start[w] <- b
		}
		for w := 0; w < p.workers; w++ {
			<-p.done
		}
		select {
		case p.ready <- b:
			p.inflight = nil
		case <-p.stop:
			return
		}
	}
}

// fillWorker is one persistent fill goroutine: it handles a fixed stride of
// each batch's fill tasks, taking a pool slot per sample so synthesis
// shares the host-concurrency budget with kernel math.
func (p *Prefetcher) fillWorker(w int) {
	for b := range p.start[w] {
		for i := w; i < p.nfills; i += p.workers {
			p.pool.Acquire()
			p.src.fill(b, i, w)
			p.pool.Release()
		}
		p.done <- struct{}{}
	}
}

// Next returns the next batch of the stream, waiting for synthesis only
// when the pipeline has fallen behind. The returned buffers are loaned:
// copy out and Recycle. After Close, Next drains any batches that were
// already synthesized and then returns nil instead of blocking forever.
func (p *Prefetcher) Next() *Batch {
	select {
	case b := <-p.ready:
		p.hits.Add(1)
		if p.obs != nil {
			p.obs.PrefetchHit()
		}
		return b
	default:
	}
	t0 := time.Now()
	var b *Batch
	select {
	case b = <-p.ready:
	case <-p.term:
		// Closed while we waited (or before): the producer will never
		// enqueue again, but a batch may have landed before the race
		// resolved — take it if so, otherwise report end-of-stream.
		select {
		case b = <-p.ready:
		default:
			return nil
		}
	}
	wait := time.Since(t0)
	p.stalls.Add(1)
	p.stallNs.Add(int64(wait))
	if p.obs != nil {
		p.obs.PrefetchStall(wait)
	}
	return b
}

// Recycle returns a batch obtained from Next to the buffer ring.
func (p *Prefetcher) Recycle(b *Batch) {
	if b != nil {
		p.free <- b
	}
}

// Rollback discards every synthesized-but-undelivered batch and re-queues
// the recorded draw plans, in draw order, ahead of fresh draws — the
// checkpoint-restore hook. After a trainer restores to a checkpoint taken
// at delivery point t, the next batches out of Next are bit-for-bit the
// batches that followed t the first time, even though the pipeline had
// already run ahead. Every batch handed out by Next must be recycled
// before calling Rollback.
func (p *Prefetcher) Rollback() {
	if p.closed.Load() {
		return
	}
	p.halt()
	// Undelivered batches in draw order: ready is FIFO and the in-flight
	// batch (drawn, never enqueued) is necessarily the newest.
	var und []*Batch
	for {
		select {
		case b := <-p.ready:
			und = append(und, b)
			continue
		default:
		}
		break
	}
	if p.inflight != nil {
		und = append(und, p.inflight)
		p.inflight = nil
	}
	// retract prepends, so walking newest→oldest leaves the replay queue
	// oldest-first — the exact redelivery order.
	for i := len(und) - 1; i >= 0; i-- {
		p.src.retract(und[i])
		p.free <- und[i]
	}
	p.launch()
}

// Close stops the pipeline and its workers. Idempotent and safe to call
// from any goroutine, including concurrently with itself and with a
// consumer parked in Next: later Closes are no-ops, and a parked Next
// unblocks with the already-synthesized tail of the stream, then nil.
// Buffers handed out by Next stay valid.
func (p *Prefetcher) Close() {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	p.halt()
	for _, c := range p.start {
		close(c)
	}
	close(p.term)
}

// halt stops the producer and joins it. The producer never parks between
// fan-out and fan-in, so at halt time every fill worker is idle.
func (p *Prefetcher) halt() {
	close(p.stop)
	<-p.joined
}

// Stats returns delivery counters. Safe to call from any goroutine.
func (p *Prefetcher) Stats() PipelineStats {
	return PipelineStats{
		Hits:      p.hits.Load(),
		Stalls:    p.stalls.Load(),
		StallTime: time.Duration(p.stallNs.Load()),
	}
}

// iterSource adapts Iterator: the plan is the drawn sample indices.
type iterSource struct {
	it       *Iterator
	size     int // elements per sample at (h, w)
	samplers []*Sampler
	replay   [][]int
}

func (s *iterSource) newBatch() *Batch {
	return &Batch{
		Planes: [][]float32{make([]float32, s.it.batch*s.size)},
		Labels: make([]float32, s.it.batch),
		idx:    make([]int, s.it.batch),
	}
}

func (s *iterSource) draw(b *Batch) {
	if len(s.replay) > 0 {
		copy(b.idx, s.replay[0])
		s.replay = s.replay[1:]
		return
	}
	s.it.drawInto(b.idx)
}

func (s *iterSource) retract(b *Batch) {
	plan := make([]int, len(b.idx))
	copy(plan, b.idx)
	s.replay = append([][]int{plan}, s.replay...)
}

func (s *iterSource) fills() int { return s.it.batch }

func (s *iterSource) fill(b *Batch, i, worker int) {
	label := s.samplers[worker].Sample(s.it.split, b.idx[i], b.Planes[0][i*s.size:(i+1)*s.size], s.it.h, s.it.w)
	b.Labels[i] = float32(label)
}

func (s *iterSource) prepare(workers int) {
	s.samplers = make([]*Sampler, workers)
	for i := range s.samplers {
		s.samplers[i] = s.it.ds.NewSampler()
	}
}

// pairSource adapts PairIterator: the plan is the drawn (A, B, Sim)
// tuples; each pair contributes two fill tasks (left and right image).
type pairSource struct {
	it       *PairIterator
	samplers []*Sampler
	replay   [][]pairDraw
}

func (s *pairSource) newBatch() *Batch {
	size := s.it.ds.SampleSize()
	return &Batch{
		Planes: [][]float32{
			make([]float32, s.it.batch*size),
			make([]float32, s.it.batch*size),
		},
		Labels: make([]float32, s.it.batch),
		pairs:  make([]pairDraw, s.it.batch),
	}
}

func (s *pairSource) draw(b *Batch) {
	if len(s.replay) > 0 {
		copy(b.pairs, s.replay[0])
		s.replay = s.replay[1:]
	} else {
		s.it.drawInto(b.pairs)
	}
	for i, d := range b.pairs {
		b.Labels[i] = d.Sim
	}
}

func (s *pairSource) retract(b *Batch) {
	plan := make([]pairDraw, len(b.pairs))
	copy(plan, b.pairs)
	s.replay = append([][]pairDraw{plan}, s.replay...)
}

func (s *pairSource) fills() int { return 2 * s.it.batch }

func (s *pairSource) fill(b *Batch, i, worker int) {
	ds := s.it.ds
	size := ds.SampleSize()
	pair := b.pairs[i/2]
	index, plane := pair.A, b.Planes[0]
	if i%2 == 1 {
		index, plane = pair.B, b.Planes[1]
	}
	s.samplers[worker].Sample(s.it.split, index, plane[(i/2)*size:(i/2+1)*size], ds.Height, ds.Width)
}

func (s *pairSource) prepare(workers int) {
	s.samplers = make([]*Sampler, workers)
	for i := range s.samplers {
		s.samplers[i] = s.it.ds.NewSampler()
	}
}

// funcSource adapts a serial generator: draw runs gen inline (the
// generator's RNG stream is the plan), so there are no parallel fills —
// the pipeline still overlaps generation with compute. retract stashes the
// generated content itself for redelivery.
type funcSource struct {
	sizes  []int
	labels int
	gen    func(planes [][]float32, labels []float32)
	replay []*Batch
}

func (s *funcSource) newBatch() *Batch {
	b := &Batch{
		Planes: make([][]float32, len(s.sizes)),
		Labels: make([]float32, s.labels),
	}
	for i, n := range s.sizes {
		b.Planes[i] = make([]float32, n)
	}
	return b
}

func (s *funcSource) draw(b *Batch) {
	if len(s.replay) > 0 {
		st := s.replay[0]
		s.replay = s.replay[1:]
		for i := range b.Planes {
			copy(b.Planes[i], st.Planes[i])
		}
		copy(b.Labels, st.Labels)
		return
	}
	s.gen(b.Planes, b.Labels)
}

func (s *funcSource) retract(b *Batch) {
	st := s.newBatch()
	for i := range b.Planes {
		copy(st.Planes[i], b.Planes[i])
	}
	copy(st.Labels, b.Labels)
	s.replay = append([]*Batch{st}, s.replay...)
}

func (s *funcSource) fills() int { return 0 }

func (s *funcSource) fill(*Batch, int, int) {}

func (s *funcSource) prepare(int) {}
