package data

import (
	"sync"
	"testing"
	"time"
)

func tinyCountingPrefetcher(depth int) *Prefetcher {
	n := float32(0)
	gen := func(planes [][]float32, labels []float32) {
		for i := range planes[0] {
			planes[0][i] = n
			n++
		}
	}
	return NewSerialPrefetcher([]int{4}, 0, gen, Options{Depth: depth})
}

// TestPrefetcherCloseIdempotent: Close twice sequentially and many times
// concurrently — no panic on the already-closed stop or worker channels.
func TestPrefetcherCloseIdempotent(t *testing.T) {
	pf := tinyCountingPrefetcher(2)
	b := pf.Next()
	if b == nil {
		t.Fatal("Next returned nil on a live pipeline")
	}
	pf.Recycle(b)
	pf.Close()
	pf.Close()

	pf = tinyCountingPrefetcher(2)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pf.Close()
		}()
	}
	wg.Wait()
}

// TestPrefetcherCloseThenNext: after Close, Next drains the batches that
// were already synthesized and then returns nil — it must not block
// forever on the dead producer.
func TestPrefetcherCloseThenNext(t *testing.T) {
	pf := tinyCountingPrefetcher(2)
	// Let the producer fill the ring so the post-Close drain has content.
	time.Sleep(10 * time.Millisecond)
	pf.Close()

	got := make(chan int, 1)
	go func() {
		n := 0
		for pf.Next() != nil {
			n++
		}
		got <- n
	}()
	select {
	case n := <-got:
		if n > 2 {
			t.Fatalf("drained %d batches from a depth-2 ring", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next deadlocked after Close")
	}
	if pf.Next() != nil {
		t.Fatal("Next after drain must keep returning nil")
	}
}

// TestPrefetcherCloseUnblocksParkedNext: a consumer already parked inside
// Next when Close lands must wake up instead of waiting forever.
func TestPrefetcherCloseUnblocksParkedNext(t *testing.T) {
	pf := tinyCountingPrefetcher(2)
	// Drain everything the pipeline will produce without recycling, so the
	// next call parks on an empty ready queue with no free buffers.
	var held []*Batch
	deadline := time.Now().Add(2 * time.Second)
	for len(held) < 2 && time.Now().Before(deadline) {
		if b := pf.Next(); b != nil {
			held = append(held, b)
		}
	}
	if len(held) != 2 {
		t.Fatalf("held %d batches, want the full depth-2 ring", len(held))
	}

	parked := make(chan *Batch, 1)
	go func() { parked <- pf.Next() }()
	time.Sleep(10 * time.Millisecond)
	pf.Close()
	select {
	case b := <-parked:
		if b != nil {
			t.Fatal("parked Next returned a batch from a starved pipeline")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked Next not released by Close")
	}
	// Held buffers stay valid and recyclable after Close.
	for _, b := range held {
		if len(b.Planes[0]) != 4 {
			t.Fatal("held buffer corrupted by Close")
		}
		pf.Recycle(b)
	}
}

// TestPrefetcherCloseAfterRollback: Rollback relaunches the producer with
// fresh stop/joined channels; the Close that follows must halt that
// incarnation, and Rollback after Close must be a no-op.
func TestPrefetcherCloseAfterRollback(t *testing.T) {
	pf := tinyCountingPrefetcher(3)
	b := pf.Next()
	pf.Recycle(b)
	pf.Rollback()
	pf.Close()
	pf.Rollback()
	pf.Close()
}
