package data

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tinySpec is small enough that identity tests cross several epoch
// boundaries (and hence reshuffles) in a few dozen batches.
var tinySpec = Spec{Name: "tiny", TrainImages: 30, TestImages: 12, Channels: 2, Height: 6, Width: 6, Classes: 3}

func equalF32(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPrefetchBitIdentityIterator: the prefetched stream equals the serial
// Next stream bit for bit, across multiple epoch/reshuffle boundaries.
func TestPrefetchBitIdentityIterator(t *testing.T) {
	serialIt := NewIterator(Synthetic(tinySpec, 42), TrainSplit, 4, 7)
	pf := NewPrefetcher(NewIterator(Synthetic(tinySpec, 42), TrainSplit, 4, 7), Options{Workers: 3})
	defer pf.Close()

	size := tinySpec.Channels * tinySpec.Height * tinySpec.Width
	wantData := make([]float32, 4*size)
	wantLabels := make([]float32, 4)
	for b := 0; b < 25; b++ { // 30/4 per epoch → ≥3 epochs
		serialIt.Next(wantData, wantLabels)
		got := pf.Next()
		if !equalF32(got.Planes[0], wantData) {
			t.Fatalf("batch %d: prefetched data diverged from serial", b)
		}
		if !equalF32(got.Labels, wantLabels) {
			t.Fatalf("batch %d: prefetched labels diverged from serial", b)
		}
		pf.Recycle(got)
	}
	if serialIt.Epoch() < 3 {
		t.Fatalf("test did not cross epochs: epoch=%d", serialIt.Epoch())
	}
}

// TestPrefetchBitIdentityCropped: same contract for the cropped-iterator
// shape (CaffeNet's 227×227 path, shrunk).
func TestPrefetchBitIdentityCropped(t *testing.T) {
	spec := Spec{Name: "tinycrop", TrainImages: 20, TestImages: 5, Channels: 3, Height: 8, Width: 8, Classes: 4}
	serialIt := NewCroppedIterator(Synthetic(spec, 5), TrainSplit, 3, 5, 5, 9)
	pf := NewPrefetcher(NewCroppedIterator(Synthetic(spec, 5), TrainSplit, 3, 5, 5, 9), Options{Workers: 2})
	defer pf.Close()

	size := spec.Channels * 5 * 5
	wantData := make([]float32, 3*size)
	wantLabels := make([]float32, 3)
	for b := 0; b < 20; b++ {
		serialIt.Next(wantData, wantLabels)
		got := pf.Next()
		if !equalF32(got.Planes[0], wantData) || !equalF32(got.Labels, wantLabels) {
			t.Fatalf("batch %d: cropped prefetch diverged from serial", b)
		}
		pf.Recycle(got)
	}
}

// TestPrefetchBitIdentityPairs: same contract for the Siamese pair shape.
func TestPrefetchBitIdentityPairs(t *testing.T) {
	serialIt := NewPairIterator(Synthetic(tinySpec, 3), TrainSplit, 5, 11)
	pf := NewPairPrefetcher(NewPairIterator(Synthetic(tinySpec, 3), TrainSplit, 5, 11), Options{Workers: 3})
	defer pf.Close()

	size := tinySpec.Channels * tinySpec.Height * tinySpec.Width
	left := make([]float32, 5*size)
	right := make([]float32, 5*size)
	sim := make([]float32, 5)
	for b := 0; b < 20; b++ {
		serialIt.Next(left, right, sim)
		got := pf.Next()
		if !equalF32(got.Planes[0], left) || !equalF32(got.Planes[1], right) || !equalF32(got.Labels, sim) {
			t.Fatalf("batch %d: pair prefetch diverged from serial", b)
		}
		pf.Recycle(got)
	}
}

// TestPrefetchBitIdentitySerialSource: a serial generator (the GoogLeNet
// shape) keeps its exact inline RNG order through the pipeline.
func TestPrefetchBitIdentitySerialSource(t *testing.T) {
	gen := func(rng *rand.Rand) func(planes [][]float32, labels []float32) {
		return func(planes [][]float32, labels []float32) {
			for i := range planes[0] {
				planes[0][i] = float32(rng.NormFloat64())
			}
			for i := range labels {
				labels[i] = float32(rng.Intn(100))
			}
		}
	}
	ref := gen(rand.New(rand.NewSource(21)))
	pf := NewSerialPrefetcher([]int{48}, 6, gen(rand.New(rand.NewSource(21))), Options{})
	defer pf.Close()

	wantData := make([]float32, 48)
	wantLabels := make([]float32, 6)
	for b := 0; b < 15; b++ {
		ref(([][]float32{wantData}), wantLabels)
		got := pf.Next()
		if !equalF32(got.Planes[0], wantData) || !equalF32(got.Labels, wantLabels) {
			t.Fatalf("batch %d: serial-source prefetch diverged from inline generator", b)
		}
		pf.Recycle(got)
	}
}

// rollbackIdentity drives a prefetcher against a serial reference, invoking
// Rollback at the given delivery points (including back-to-back rollbacks
// and a rollback while replayed plans are still in flight); the delivered
// stream must be exactly the uninterrupted serial stream.
func rollbackIdentity(t *testing.T, pf *Prefetcher, next func(b int) ([][]float32, []float32), batches int, rollbackAt map[int]int) {
	t.Helper()
	for b := 0; b < batches; b++ {
		for r := 0; r < rollbackAt[b]; r++ {
			pf.Rollback()
		}
		wantPlanes, wantLabels := next(b)
		got := pf.Next()
		for pi := range wantPlanes {
			if !equalF32(got.Planes[pi], wantPlanes[pi]) {
				t.Fatalf("batch %d plane %d: post-rollback stream diverged", b, pi)
			}
		}
		if !equalF32(got.Labels, wantLabels) {
			t.Fatalf("batch %d: post-rollback labels diverged", b)
		}
		pf.Recycle(got)
	}
}

// TestPrefetchRollbackIterator: rollback discards run-ahead batches and
// replays their plans — the delivered stream is as if no rollback happened.
func TestPrefetchRollbackIterator(t *testing.T) {
	serialIt := NewIterator(Synthetic(tinySpec, 42), TrainSplit, 4, 7)
	pf := NewPrefetcher(NewIterator(Synthetic(tinySpec, 42), TrainSplit, 4, 7), Options{Workers: 2, Depth: 3})
	defer pf.Close()

	size := tinySpec.Channels * tinySpec.Height * tinySpec.Width
	data := make([]float32, 4*size)
	labels := make([]float32, 4)
	next := func(int) ([][]float32, []float32) {
		serialIt.Next(data, labels)
		return [][]float32{data}, labels
	}
	// b=3: double rollback in a row; b=4: rollback while the replay queue
	// from b=3 may still be draining (replay-in-flight reordering guard).
	rollbackIdentity(t, pf, next, 22, map[int]int{1: 1, 3: 2, 4: 1, 15: 1})
}

// TestPrefetchRollbackPairs: the pair pipeline replays recorded (A, B, Sim)
// draws on rollback.
func TestPrefetchRollbackPairs(t *testing.T) {
	serialIt := NewPairIterator(Synthetic(tinySpec, 3), TrainSplit, 5, 11)
	pf := NewPairPrefetcher(NewPairIterator(Synthetic(tinySpec, 3), TrainSplit, 5, 11), Options{Workers: 2})
	defer pf.Close()

	size := tinySpec.Channels * tinySpec.Height * tinySpec.Width
	left := make([]float32, 5*size)
	right := make([]float32, 5*size)
	sim := make([]float32, 5)
	next := func(int) ([][]float32, []float32) {
		serialIt.Next(left, right, sim)
		return [][]float32{left, right}, sim
	}
	rollbackIdentity(t, pf, next, 16, map[int]int{2: 1, 7: 2, 8: 1})
}

// TestPrefetchRollbackSerialSource: a serial source cannot replay plans (its
// RNG already advanced), so rollback stashes the generated content itself.
func TestPrefetchRollbackSerialSource(t *testing.T) {
	mk := func(rng *rand.Rand) func(planes [][]float32, labels []float32) {
		return func(planes [][]float32, labels []float32) {
			for i := range planes[0] {
				planes[0][i] = float32(rng.NormFloat64())
			}
			for i := range labels {
				labels[i] = float32(rng.Intn(50))
			}
		}
	}
	ref := mk(rand.New(rand.NewSource(33)))
	pf := NewSerialPrefetcher([]int{32}, 4, mk(rand.New(rand.NewSource(33))), Options{Depth: 3})
	defer pf.Close()

	data := make([]float32, 32)
	labels := make([]float32, 4)
	next := func(int) ([][]float32, []float32) {
		ref([][]float32{data}, labels)
		return [][]float32{data}, labels
	}
	rollbackIdentity(t, pf, next, 14, map[int]int{1: 1, 5: 2, 6: 1})
}

// TestConcurrentSamplersBitIdentical is the -race regression for the lazy
// class-latent materialization: many goroutines hammer fresh Samplers over
// a cold dataset while comparing against a serially warmed reference.
func TestConcurrentSamplersBitIdentical(t *testing.T) {
	ds := Synthetic(tinySpec, 9) // cold: latents materialize under contention
	ref := Synthetic(tinySpec, 9)
	n := ref.SampleCount(TrainSplit)
	size := ref.SampleSize()
	want := make([][]float32, n)
	wantLabel := make([]int, n)
	for i := 0; i < n; i++ {
		want[i] = make([]float32, size)
		wantLabel[i] = ref.Sample(TrainSplit, i, want[i], tinySpec.Height, tinySpec.Width)
	}

	var bad atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := ds.NewSampler()
			out := make([]float32, size)
			for round := 0; round < 50; round++ {
				i := (g + round*3) % n
				label := s.Sample(TrainSplit, i, out, tinySpec.Height, tinySpec.Width)
				if label != wantLabel[i] || !equalF32(out, want[i]) {
					bad.Add(1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatal("concurrent sampler output diverged from serial reference")
	}
}

type countObserver struct {
	hits   atomic.Int64
	stalls atomic.Int64
	wait   atomic.Int64
}

func (o *countObserver) PrefetchHit()                     { o.hits.Add(1) }
func (o *countObserver) PrefetchStall(wait time.Duration) { o.stalls.Add(1); o.wait.Add(int64(wait)) }

// TestPrefetchStatsAndObserver: every Next is exactly one hit or one stall,
// and the observer sees the same events the internal counters do.
func TestPrefetchStatsAndObserver(t *testing.T) {
	obs := &countObserver{}
	pf := NewPrefetcher(NewIterator(Synthetic(tinySpec, 1), TrainSplit, 3, 2), Options{Observer: obs})
	defer pf.Close()
	const calls = 12
	for i := 0; i < calls; i++ {
		pf.Recycle(pf.Next())
	}
	st := pf.Stats()
	if st.Hits+st.Stalls != calls {
		t.Fatalf("hits %d + stalls %d != %d Next calls", st.Hits, st.Stalls, calls)
	}
	if obs.hits.Load() != st.Hits || obs.stalls.Load() != st.Stalls {
		t.Fatalf("observer (%d, %d) disagrees with stats (%d, %d)",
			obs.hits.Load(), obs.stalls.Load(), st.Hits, st.Stalls)
	}
	if st.StallTime != time.Duration(obs.wait.Load()) {
		t.Fatalf("stall time %v != observed %v", st.StallTime, time.Duration(obs.wait.Load()))
	}
	if s := st.String(); s == "" {
		t.Fatal("empty stats string")
	}
}

// TestPrefetchSteadyStateAllocs: once warm, a prefetched batch costs zero
// allocations — across every goroutine of the pipeline, since AllocsPerRun
// counts global mallocs (the tier-1 alloc gate).
func TestPrefetchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is meaningless under the race detector")
	}
	pfIter := NewPrefetcher(NewIterator(Synthetic(tinySpec, 42), TrainSplit, 4, 7), Options{Workers: 2})
	defer pfIter.Close()
	pfPair := NewPairPrefetcher(NewPairIterator(Synthetic(tinySpec, 3), TrainSplit, 4, 11), Options{Workers: 2})
	defer pfPair.Close()
	for _, tc := range []struct {
		name string
		pf   *Prefetcher
	}{{"iterator", pfIter}, {"pairs", pfPair}} {
		// Warm: materialize latents, cross an epoch, settle the ring.
		for i := 0; i < 12; i++ {
			tc.pf.Recycle(tc.pf.Next())
		}
		if avg := testing.AllocsPerRun(50, func() {
			tc.pf.Recycle(tc.pf.Next())
		}); avg != 0 {
			t.Errorf("%s: steady-state prefetched batch allocates %.1f times, want 0", tc.name, avg)
		}
	}
}

// TestPairIteratorValidation: constructor and Next validate their inputs
// with clear panics (the contract Iterator.Next already had).
func TestPairIteratorValidation(t *testing.T) {
	oneClass := Spec{Name: "one", TrainImages: 10, TestImages: 2, Channels: 1, Height: 2, Width: 2, Classes: 1}
	assertPanics(t, func() { NewPairIterator(Synthetic(oneClass, 1), TrainSplit, 2, 1) })
	sparse := Spec{Name: "sparse", TrainImages: 10, TestImages: 1, Channels: 1, Height: 2, Width: 2, Classes: 20}
	assertPanics(t, func() { NewPairIterator(Synthetic(sparse, 1), TrainSplit, 2, 1) })

	ds := Synthetic(tinySpec, 1)
	p := NewPairIterator(ds, TrainSplit, 2, 1)
	size := ds.SampleSize()
	ok := make([]float32, 2*size)
	sim := make([]float32, 2)
	assertPanics(t, func() { p.Next(make([]float32, size), ok, sim) })
	assertPanics(t, func() { p.Next(ok, make([]float32, size), sim) })
	assertPanics(t, func() { p.Next(ok, ok, make([]float32, 1)) })
	p.Next(ok, ok, sim) // exact-size buffers pass

	it := NewIterator(ds, TrainSplit, 2, 1)
	assertPanics(t, func() { it.Next(make([]float32, size), sim) })
	assertPanics(t, func() { it.Next(make([]float32, 2*size), make([]float32, 1)) })

	assertPanics(t, func() { NewSerialPrefetcher([]int{4}, 2, nil, Options{}) })
}
