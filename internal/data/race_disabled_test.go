//go:build !race

package data

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
