//go:build race

package data

// raceEnabled reports whether the race detector is compiled in; allocation
// accounting is not meaningful under its instrumentation.
const raceEnabled = true
