package dnn

import (
	"fmt"

	"repro/internal/kernels"
)

// ReLULayer is the rectified linear unit, one elementwise kernel over the
// whole batch in both directions.
type ReLULayer struct {
	baseLayer

	// fusedInput (set by Net.EnableFusion, see fusion.go) marks this
	// layer's forward as fused into its producer's GEMM epilogue.
	fusedInput bool
}

// NewReLU constructs a ReLU layer.
func NewReLU(name string) *ReLULayer {
	return &ReLULayer{baseLayer: baseLayer{name: name, typ: "ReLU"}}
}

// Setup implements Layer.
func (l *ReLULayer) Setup(ctx *Context, bottom, top []*Blob) error {
	if len(bottom) != 1 || len(top) != 1 {
		return fmt.Errorf("relu %s: want 1 bottom and 1 top", l.name)
	}
	top[0].Reshape(bottom[0].Shape()...)
	return nil
}

// Forward implements Layer.
func (l *ReLULayer) Forward(ctx *Context, bottom, top []*Blob) error {
	if l.fusedInput {
		// The producer's fused GEMM epilogue already wrote this layer's top
		// (max(0, bottom)) while each output segment was cache hot, and the
		// producer's barrier retired those writes before its Forward
		// returned; serial order and the DAG's producer→consumer edge both
		// run this layer after the producer. The bottom blob still holds
		// the exact pre-activation values, so Backward is unchanged.
		return nil
	}
	src := bottom[0].Data.Data()
	dst := top[0].Data.Data()
	k := kernels.Elementwise("relu_fwd", l.name, len(src), 8, 1, func() {
		for i, v := range src {
			if v > 0 {
				dst[i] = v
			} else {
				dst[i] = 0
			}
		}
	})
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}

// Backward implements Layer.
func (l *ReLULayer) Backward(ctx *Context, top []*Blob, propagate []bool, bottom []*Blob) error {
	if !propagate[0] {
		return nil
	}
	src := bottom[0].Data.Data()
	dtop := top[0].Diff.Data()
	dbot := bottom[0].Diff.Data()
	k := kernels.Elementwise("relu_bwd", l.name, len(src), 12, 1, func() {
		for i, v := range src {
			if v > 0 {
				dbot[i] += dtop[i]
			}
		}
	})
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}

// SigmoidLayer is the logistic activation (used by tests and available for
// LeNet-style nets).
type SigmoidLayer struct {
	baseLayer
}

// NewSigmoid constructs a sigmoid layer.
func NewSigmoid(name string) *SigmoidLayer {
	return &SigmoidLayer{baseLayer{name: name, typ: "Sigmoid"}}
}

// Setup implements Layer.
func (l *SigmoidLayer) Setup(ctx *Context, bottom, top []*Blob) error {
	if len(bottom) != 1 || len(top) != 1 {
		return fmt.Errorf("sigmoid %s: want 1 bottom and 1 top", l.name)
	}
	top[0].Reshape(bottom[0].Shape()...)
	return nil
}

// Forward implements Layer.
func (l *SigmoidLayer) Forward(ctx *Context, bottom, top []*Blob) error {
	src := bottom[0].Data.Data()
	dst := top[0].Data.Data()
	k := kernels.Elementwise("sigmoid_fwd", l.name, len(src), 8, 4, func() {
		for i, v := range src {
			dst[i] = 1 / (1 + exp32(-v))
		}
	})
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}

// Backward implements Layer.
func (l *SigmoidLayer) Backward(ctx *Context, top []*Blob, propagate []bool, bottom []*Blob) error {
	if !propagate[0] {
		return nil
	}
	y := top[0].Data.Data()
	dtop := top[0].Diff.Data()
	dbot := bottom[0].Diff.Data()
	k := kernels.Elementwise("sigmoid_bwd", l.name, len(y), 12, 3, func() {
		for i, v := range y {
			dbot[i] += dtop[i] * v * (1 - v)
		}
	})
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}
