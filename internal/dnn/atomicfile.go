package dnn

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file so a crash can never leave a partial or
// truncated artifact at path: content goes to a temporary file in the same
// directory, is fsynced, closed, and renamed over path, and the directory
// is fsynced so the rename itself is durable. Readers observe either the
// old complete file or the new complete file, never a mix — the property
// durable checkpoints and servable weight snapshots need.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := write(tmp); err != nil {
		return fail(fmt.Errorf("dnn: writing %s: %w", path, err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	// Persist the rename. Directory fsync is best-effort: some platforms
	// and filesystems refuse it, and the rename is already atomic.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
