// Package dnn is a Caffe-like deep-learning framework: blobs, layers, nets
// and an SGD solver. It reproduces the substrate GLP4NN was integrated into:
// convolution is computed image-by-image as im2col + SGEMM (+ a K=1 "gemmk"
// for bias), exactly the kernel stream the paper's Fig. 3/Fig. 6 show, and
// every kernel is dispatched through a Launcher so the same network code
// runs serially (naive Caffe) or through GLP4NN's stream pool.
//
// All numerical work is real float32 host computation; the GPU device is
// simulated for timing only (see internal/simgpu). Kernel closures execute
// eagerly in launch order, so results are deterministic for a fixed seed.
package dnn

import (
	"fmt"

	"repro/internal/tensor"
)

// Blob is Caffe's unit of data: a named tensor pair holding values (Data)
// and gradients (Diff). Parameter blobs additionally carry learning-rate and
// weight-decay multipliers (Caffe's param specs: biases typically use
// LrMult=2, DecayMult=0).
type Blob struct {
	Name string
	Data *tensor.Tensor
	Diff *tensor.Tensor

	LrMult    float32
	DecayMult float32
}

// NewBlob allocates a zeroed blob.
func NewBlob(name string, shape ...int) *Blob {
	return &Blob{
		Name:      name,
		Data:      tensor.New(shape...),
		Diff:      tensor.New(shape...),
		LrMult:    1,
		DecayMult: 1,
	}
}

// Reshape resizes the blob, reallocating storage if the element count
// changes.
func (b *Blob) Reshape(shape ...int) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n == b.Data.Len() {
		b.Data.Reshape(shape...)
		b.Diff.Reshape(shape...)
		return
	}
	b.Data = tensor.New(shape...)
	b.Diff = tensor.New(shape...)
}

// Shape returns the blob's dimensions.
func (b *Blob) Shape() []int { return b.Data.Shape() }

// Count returns the total element count.
func (b *Blob) Count() int { return b.Data.Len() }

// Num returns dimension 0 (batch size) of a 4-D blob, 1 for lower ranks.
func (b *Blob) Num() int { return b.dimOr(0, 1) }

// Channels returns dimension 1, 1 for lower ranks.
func (b *Blob) Channels() int { return b.dimOr(1, 1) }

// Height returns dimension 2, 1 for lower ranks.
func (b *Blob) Height() int { return b.dimOr(2, 1) }

// Width returns dimension 3, 1 for lower ranks.
func (b *Blob) Width() int { return b.dimOr(3, 1) }

func (b *Blob) dimOr(i, def int) int {
	if i < b.Data.NumDims() {
		return b.Data.Dim(i)
	}
	return def
}

// SampleSize returns Count/Num: elements per batch sample.
func (b *Blob) SampleSize() int {
	n := b.Num()
	if n == 0 {
		return 0
	}
	return b.Count() / n
}

// SampleData returns the data slice for batch sample n.
func (b *Blob) SampleData(n int) []float32 {
	s := b.SampleSize()
	return b.Data.Data()[n*s : (n+1)*s]
}

// SampleDiff returns the gradient slice for batch sample n.
func (b *Blob) SampleDiff(n int) []float32 {
	s := b.SampleSize()
	return b.Diff.Data()[n*s : (n+1)*s]
}

// ZeroDiff clears the gradient.
func (b *Blob) ZeroDiff() { b.Diff.Zero() }

func (b *Blob) String() string {
	return fmt.Sprintf("blob %q %v", b.Name, b.Data.Shape())
}
