package dnn

import (
	"fmt"

	"repro/internal/kernels"
)

// ConcatLayer concatenates its bottoms along the channel axis, the fan-in
// operation of GoogLeNet's inception modules. All bottoms must agree on
// batch and spatial dimensions.
type ConcatLayer struct {
	baseLayer
	n, h, w  int
	channels []int
	total    int
}

// NewConcat constructs a channel-axis concat layer.
func NewConcat(name string) *ConcatLayer {
	return &ConcatLayer{baseLayer: baseLayer{name: name, typ: "Concat"}}
}

// Setup implements Layer.
func (l *ConcatLayer) Setup(ctx *Context, bottom, top []*Blob) error {
	if len(bottom) < 1 || len(top) != 1 {
		return fmt.Errorf("concat %s: want ≥1 bottoms and 1 top", l.name)
	}
	b0 := bottom[0]
	l.n, l.h, l.w = b0.Num(), b0.Height(), b0.Width()
	l.channels = l.channels[:0]
	l.total = 0
	for _, b := range bottom {
		if b.Num() != l.n || b.Height() != l.h || b.Width() != l.w {
			return fmt.Errorf("concat %s: bottom %q shape %v incompatible with %v",
				l.name, b.Name, b.Shape(), b0.Shape())
		}
		l.channels = append(l.channels, b.Channels())
		l.total += b.Channels()
	}
	top[0].Reshape(l.n, l.total, l.h, l.w)
	return nil
}

// Forward implements Layer: one copy kernel per bottom.
func (l *ConcatLayer) Forward(ctx *Context, bottom, top []*Blob) error {
	hw := l.h * l.w
	offset := 0
	for bi, b := range bottom {
		src := b.Data.Data()
		dst := top[0].Data.Data()
		c := l.channels[bi]
		off := offset
		k := kernels.AxpyKernel("concat_copy", fmt.Sprintf("%s/b%d", l.name, bi), b.Count(), func() {
			for n := 0; n < l.n; n++ {
				from := src[n*c*hw : (n+1)*c*hw]
				to := dst[(n*l.total+off)*hw : (n*l.total+off+c)*hw]
				copy(to, from)
			}
		})
		if err := ctx.Dispatch(k, bi); err != nil {
			return err
		}
		offset += c
	}
	return ctx.Barrier()
}

// Backward implements Layer: slices the top gradient back per bottom.
func (l *ConcatLayer) Backward(ctx *Context, top []*Blob, propagate []bool, bottom []*Blob) error {
	hw := l.h * l.w
	offset := 0
	for bi, b := range bottom {
		c := l.channels[bi]
		if !propagate[bi] {
			offset += c
			continue
		}
		dtop := top[0].Diff.Data()
		dbot := b.Diff.Data()
		off := offset
		k := kernels.AxpyKernel("concat_slice", fmt.Sprintf("%s/b%d", l.name, bi), b.Count(), func() {
			for n := 0; n < l.n; n++ {
				from := dtop[(n*l.total+off)*hw : (n*l.total+off+c)*hw]
				to := dbot[n*c*hw : (n+1)*c*hw]
				for i, v := range from {
					to[i] += v
				}
			}
		})
		if err := ctx.Dispatch(k, bi); err != nil {
			return err
		}
		offset += c
	}
	return ctx.Barrier()
}
