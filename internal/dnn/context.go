package dnn

import (
	"math/rand"

	"repro/internal/hostpool"
	"repro/internal/simgpu"
	"repro/internal/tensor"
)

// Phase distinguishes training from testing, like Caffe's phase (dropout and
// accuracy behave differently).
type Phase int

// Phases.
const (
	Train Phase = iota
	Test
)

// Launcher abstracts how kernels reach the device. The naive-Caffe path uses
// SerialLauncher (everything on the default stream); GLP4NN's runtime
// scheduler implements this interface with a concurrent stream pool.
//
// The chain argument groups dependent kernels: kernels sharing a chain id
// (within one layer invocation) must execute in submission order, so a
// launcher must route them to a single stream. Chain -1 denotes
// synchronization-sensitive work that must go to the default stream.
type Launcher interface {
	// BeginLayer marks the start of a layer invocation; key is
	// "<layer>/fwd" or "<layer>/bwd". GLP4NN's runtime scheduler keys its
	// profiling and concurrency plans on it; simple launchers ignore it.
	BeginLayer(key string)
	// Launch dispatches one kernel on behalf of the given dependency chain.
	Launch(k *simgpu.Kernel, chain int) error
	// Sync is the inter-layer barrier: after it returns, every kernel
	// launched so far is complete (in virtual time).
	Sync() error
	// Width returns the number of independent chains that can be in flight
	// for the current layer (the stream-pool share); serial launchers
	// return 1. Layers size their per-stream scratch buffers by it.
	Width() int
}

// Uploader is optionally implemented by launchers that can model the
// host→device copy of input batches (cudaMemcpyAsync in Caffe's data
// layer). Net.UploadInputs uses it when present.
type Uploader interface {
	UploadBytes(n int64) error
}

// InputStager is optionally implemented by launchers that own a dedicated
// copy stream (the GLP4NN runtime): StageInput issues an input batch's
// host→device copy concurrently with in-flight compute instead of on the
// default-stream critical path. Net.StageInputs uses it when present,
// falling back to Uploader.
type InputStager interface {
	StageInput(n int64) error
}

// HostLauncher runs kernel closures directly with no device: the pure-math
// path used by unit tests and non-simulated training.
type HostLauncher struct{}

// BeginLayer implements Launcher.
func (HostLauncher) BeginLayer(string) {}

// Launch implements Launcher.
func (HostLauncher) Launch(k *simgpu.Kernel, _ int) error {
	if k.Fn != nil {
		k.Fn()
	}
	return nil
}

// Sync implements Launcher.
func (HostLauncher) Sync() error { return nil }

// Width implements Launcher.
func (HostLauncher) Width() int { return 1 }

// SerialLauncher is naive Caffe: every kernel on the device's default
// stream. Sync is free because a single stream already serializes, exactly
// like original Caffe, which never synchronizes between layers.
type SerialLauncher struct {
	Dev *simgpu.Device
}

// BeginLayer implements Launcher.
func (SerialLauncher) BeginLayer(string) {}

// Launch implements Launcher.
func (l SerialLauncher) Launch(k *simgpu.Kernel, _ int) error {
	return l.Dev.Launch(k, nil)
}

// Sync implements Launcher.
func (l SerialLauncher) Sync() error { return nil }

// UploadBytes implements Uploader: inputs copy over PCIe on the default
// stream, exactly like Caffe's synchronous data layer.
func (l SerialLauncher) UploadBytes(n int64) error {
	return l.Dev.MemcpyHostToDevice(n, nil)
}

// Width implements Launcher.
func (l SerialLauncher) Width() int { return 1 }

// Context carries per-run execution state through Forward/Backward: the
// launcher, the phase, the RNG (dropout masks, data-independent noise) and
// whether kernel closures actually compute. Compute=false is the
// timing-only mode used by large benchmark workloads (e.g. CaffeNet at
// batch 256), where numerical outputs are irrelevant but the kernel stream
// and its launch configurations must be exact.
//
// With Pool set, Dispatch runs kernel host math chain-parallel: the closure
// of a chain-c kernel executes asynchronously on hostpool lane c % Width(),
// while the (closure-stripped) kernel is still launched inline so the
// simulated timeline is unchanged. Lanes mirror the layers' per-chain
// scratch indexing (chain % width), so chains that share buffers share a
// lane and stay serialized; everything a lane runs executes in submission
// order, which keeps training bit-identical to serial host execution at the
// same width. Chain −1 keeps default-stream semantics on the host too: it
// waits for all in-flight lane work, then runs inline.
type Context struct {
	L       Launcher
	Phase   Phase
	RNG     *rand.Rand
	Compute bool
	// Pool, when non-nil, is the host-side parallel execution engine used
	// for chain closures. Nil means serial host execution (closures run
	// inside Launch), the pre-existing behavior.
	Pool *hostpool.Pool

	chains *hostpool.ChainSet // lazily sized to the current layer width
	rngSrc *countingSource    // RNG's source when built here; enables RNGState/RestoreRNG
}

// NewContext builds a training-phase context over a launcher with real
// computation enabled and a deterministic, checkpointable RNG (the counting
// source draws the exact sequence rand.NewSource(seed) would).
func NewContext(l Launcher, seed int64) *Context {
	src := newCountingSource(seed)
	return &Context{L: l, Phase: Train, RNG: rand.New(src), Compute: true, rngSrc: src}
}

// NewParallelContext builds a training context whose kernel host math runs
// chain-parallel on the given worker pool (nil selects the shared default
// pool).
func NewParallelContext(l Launcher, seed int64, pool *hostpool.Pool) *Context {
	if pool == nil {
		pool = hostpool.Default()
	}
	c := NewContext(l, seed)
	c.Pool = pool
	return c
}

// Dispatch submits a kernel, honoring the Compute flag. With a Pool
// configured and a launcher width above 1, the host closure of a chain
// kernel is offloaded to the chain's lane instead of running inline.
func (c *Context) Dispatch(k *simgpu.Kernel, chain int) error {
	if !c.Compute {
		k.Fn = nil
	}
	if c.Pool == nil || k.Fn == nil {
		return c.L.Launch(k, chain)
	}
	if chain < 0 {
		// Default-stream semantics on the host: synchronization-sensitive
		// work (parameter updates, gradient folds) runs inline after every
		// in-flight chain closure has finished.
		if err := c.drainChains(); err != nil {
			return err
		}
		return c.L.Launch(k, chain)
	}
	width := c.Width()
	if width <= 1 {
		return c.L.Launch(k, chain)
	}
	if c.chains == nil || c.chains.Lanes() != width {
		// Width changed (new plan for this layer): the previous set's lanes
		// must drain first so the old chain→lane mapping cannot race the
		// new one.
		if err := c.drainChains(); err != nil {
			return err
		}
		c.chains = c.Pool.NewChainSet(width)
	}
	fn := k.Fn
	k.Fn = nil
	if err := c.L.Launch(k, chain); err != nil {
		return err
	}
	c.chains.Submit(chain, fn)
	return nil
}

// drainChains waits for all offloaded chain closures.
func (c *Context) drainChains() error {
	if c.chains == nil {
		return nil
	}
	return c.chains.Wait()
}

// Begin marks the start of a layer invocation for the launcher.
func (c *Context) Begin(key string) { c.L.BeginLayer(key) }

// Barrier is the layer-boundary synchronization: all offloaded host math
// completes, then the launcher joins the device streams.
func (c *Context) Barrier() error {
	if err := c.drainChains(); err != nil {
		return err
	}
	return c.L.Sync()
}

// RowPar returns the context's pool as a row-parallel GEMM runner, or nil
// when the context is serial. Layers pass it to kernels.SgemmP so large-M
// GEMM closures shard disjoint row bands across the pool; the pool's Run
// never blocks on a full pool (the caller participates), so nesting inside
// an offloaded chain closure is safe.
func (c *Context) RowPar() tensor.RowParallel {
	if c.Pool == nil {
		return nil
	}
	return c.Pool
}

// Width returns the launcher's chain width.
func (c *Context) Width() int {
	w := c.L.Width()
	if w < 1 {
		return 1
	}
	return w
}
