package dnn

import (
	"fmt"

	"repro/internal/kernels"
	"repro/internal/tensor"
)

// ConvConfig is one convolution layer's geometry, matching the columns of
// the paper's Table 5: C_o output maps, F_h×F_w filter, stride S, pad P.
type ConvConfig struct {
	NumOutput        int
	KernelH, KernelW int
	StrideH, StrideW int
	PadH, PadW       int
	Bias             bool
	WeightFiller     tensor.Filler
	BiasFiller       tensor.Filler
	Seed             int64
	// Engine selects the forward algorithm: "" or "im2col" for the GEMM
	// path (Caffe's default), "winograd" for F(2×2,3×3) on 3×3 stride-1
	// layers (backward always uses im2col).
	Engine string
}

// Conv builds a square-kernel config (the common case in Table 5).
func Conv(numOutput, kernel, stride, pad int) ConvConfig {
	return ConvConfig{
		NumOutput: numOutput,
		KernelH:   kernel, KernelW: kernel,
		StrideH: stride, StrideW: stride,
		PadH: pad, PadW: pad,
		Bias: true,
	}
}

// ConvLayer is GEMM-based convolution computed image by image, exactly like
// Caffe's GPU path: for each batch sample the layer launches im2col_gpu,
// sgemm and (with bias) the K=1 gemmk kernel. Each sample's kernels form a
// dependency chain; independent samples go to independent chains — the
// batch-level parallelism GLP4NN exploits (the n-loop of the paper's
// Algorithms 1 and 2).
//
// Weight/bias gradients are accumulated into per-chain partial buffers and
// folded in fixed chain order after the batch, which is how a real
// stream-parallel implementation avoids cross-stream races; the fold order
// is deterministic, so training runs are reproducible for any pool width.
type ConvLayer struct {
	baseLayer
	cfg ConvConfig

	weight *Blob
	bias   *Blob

	geom tensor.ConvGeom
	co   int // output channels
	k    int // geom.ColRows()
	p    int // geom.ColCols()

	wino *winogradState // transformed filters for the winograd engine

	// Per-chain scratch is leased from the shared tensor arena for the
	// duration of one pass (acquired before dispatch, released after the
	// batch barrier retires every closure referencing it), so layers and
	// nets share slabs instead of each holding peak-sized buffers. The
	// slices themselves persist so a steady-state pass allocates nothing.
	colBufs  []*tensor.Buf // per-chain im2col scratch
	dcolBufs []*tensor.Buf // per-chain backward scratch
	partW    []*tensor.Buf // per-chain weight-gradient partials
	partB    []*tensor.Buf // per-chain bias-gradient partials
	onesP    []float32     // length p, for bias broadcast

	// Fusion flags set by Net.EnableFusion (see fusion.go): fuseBias folds
	// the gemmk bias pass into the forward GEMM's epilogue; fusedReLU, when
	// non-nil, is the downstream activation's top blob, co-written with
	// max(0, x) by the same epilogue. Backward is untouched.
	fuseBias  bool
	fusedReLU *Blob
}

// NewConv constructs a convolution layer.
func NewConv(name string, cfg ConvConfig) *ConvLayer {
	if cfg.WeightFiller == nil {
		cfg.WeightFiller = tensor.XavierFiller{}
	}
	if cfg.BiasFiller == nil {
		cfg.BiasFiller = tensor.ConstantFiller{Value: 0}
	}
	return &ConvLayer{baseLayer: baseLayer{name: name, typ: "Convolution"}, cfg: cfg}
}

// Geometry returns the layer's conv geometry (valid after Setup).
func (l *ConvLayer) Geometry() tensor.ConvGeom { return l.geom }

// Setup implements Layer.
func (l *ConvLayer) Setup(ctx *Context, bottom, top []*Blob) error {
	if len(bottom) != 1 || len(top) != 1 {
		return fmt.Errorf("conv %s: want 1 bottom and 1 top, got %d/%d", l.name, len(bottom), len(top))
	}
	b := bottom[0]
	if b.Data.NumDims() != 4 {
		return fmt.Errorf("conv %s: bottom must be 4-D, got %v", l.name, b.Shape())
	}
	l.geom = tensor.ConvGeom{
		Channels: b.Channels(),
		Height:   b.Height(), Width: b.Width(),
		KernelH: l.cfg.KernelH, KernelW: l.cfg.KernelW,
		StrideH: l.cfg.StrideH, StrideW: l.cfg.StrideW,
		PadH: l.cfg.PadH, PadW: l.cfg.PadW,
	}
	if l.geom.OutH() <= 0 || l.geom.OutW() <= 0 {
		return fmt.Errorf("conv %s: empty output %dx%d", l.name, l.geom.OutH(), l.geom.OutW())
	}
	switch l.cfg.Engine {
	case "", "im2col":
	case "winograd":
		if err := validateWinograd(l.name, l.cfg); err != nil {
			return err
		}
	default:
		return fmt.Errorf("conv %s: unknown engine %q", l.name, l.cfg.Engine)
	}
	l.co = l.cfg.NumOutput
	l.k = l.geom.ColRows()
	l.p = l.geom.ColCols()

	rng := fillerRNG(l.cfg.Seed, l.name)
	l.weight = NewBlob(l.name+".weight", l.co, b.Channels(), l.cfg.KernelH, l.cfg.KernelW)
	l.cfg.WeightFiller.Fill(l.weight.Data, rng)
	l.param = []*Blob{l.weight}
	if l.cfg.Bias {
		l.bias = NewBlob(l.name+".bias", l.co)
		l.bias.LrMult, l.bias.DecayMult = 2, 0
		l.cfg.BiasFiller.Fill(l.bias.Data, rng)
		l.param = append(l.param, l.bias)
	}

	top[0].Reshape(b.Num(), l.co, l.geom.OutH(), l.geom.OutW())

	l.onesP = make([]float32, l.p)
	for i := range l.onesP {
		l.onesP[i] = 1
	}
	return nil
}

// leaseScratch leases the per-chain buffers for the launcher width from the
// shared arena; releaseScratch returns them. Callers must only release
// after a barrier has retired every kernel closure that references them.
func (l *ConvLayer) leaseScratch(width int, backward bool) {
	l.colBufs = tensor.LeaseInto(l.colBufs, width, l.k*l.p)
	if !backward {
		return
	}
	l.dcolBufs = tensor.LeaseInto(l.dcolBufs, width, l.k*l.p)
	l.partW = tensor.LeaseInto(l.partW, width, l.weight.Count())
	if l.bias != nil {
		l.partB = tensor.LeaseInto(l.partB, width, l.co)
	}
}

func (l *ConvLayer) releaseScratch() {
	tensor.PutBufs(l.colBufs)
	tensor.PutBufs(l.dcolBufs)
	tensor.PutBufs(l.partW)
	tensor.PutBufs(l.partB)
}

// Forward implements Layer: per-image im2col → sgemm → gemmk chains (or
// the Winograd transform chain when the engine is "winograd"). Scratch is
// leased from the shared arena for the pass and released only after the
// barrier has retired every closure that references it.
func (l *ConvLayer) Forward(ctx *Context, bottom, top []*Blob) error {
	if l.cfg.Engine == "winograd" {
		return l.forwardWino(ctx, bottom, top)
	}
	width := ctx.Width()
	l.leaseScratch(width, false)
	err := l.forwardDispatch(ctx, bottom, top, width)
	berr := ctx.Barrier()
	l.releaseScratch()
	if err != nil {
		return err
	}
	return berr
}

func (l *ConvLayer) forwardDispatch(ctx *Context, bottom, top []*Blob, width int) error {
	n := bottom[0].Num()
	w := l.weight.Data.Data()
	par := ctx.RowPar()
	var bias []float32
	if l.fuseBias && l.bias != nil {
		bias = l.bias.Data.Data()
	}
	fused := bias != nil || l.fusedReLU != nil
	for i := 0; i < n; i++ {
		chain := i
		buf := l.colBufs[i%width].Data
		img := bottom[0].SampleData(i)
		out := top[0].SampleData(i)
		tag := fmt.Sprintf("%s/n%d", l.name, i)
		if err := ctx.Dispatch(kernels.Im2col(tag, img, l.geom, buf), chain); err != nil {
			return err
		}
		if fused {
			// Bias (and ReLU co-write) ride the GEMM's fused epilogue; the
			// separate gemmk/relu_fwd kernels never launch. Bitwise
			// identical outputs — see fusion.go.
			epi, ops := l.fusionEpilogue(bias, i)
			if err := ctx.Dispatch(kernels.SgemmEpi(tag, par, false, false, l.co, l.p, l.k, 1, w, buf, 0, out, epi, ops), chain); err != nil {
				return err
			}
			continue
		}
		if err := ctx.Dispatch(kernels.SgemmP(tag, par, false, false, l.co, l.p, l.k, 1, w, buf, 0, out), chain); err != nil {
			return err
		}
		if l.bias != nil {
			if err := ctx.Dispatch(kernels.BiasGemm(tag, l.co, l.p, l.bias.Data.Data(), l.onesP, out), chain); err != nil {
				return err
			}
		}
	}
	return nil
}

// forwardWino dispatches the Winograd kernel chain per image. The filter
// transform runs once per forward on the default stream (weights change
// every iteration).
func (l *ConvLayer) forwardWino(ctx *Context, bottom, top []*Blob) error {
	ft := kernels.Elementwise("winograd_filter_tx", l.name, l.weight.Count(), 4*(9+16)/9, 28, func() {
		l.prepareWinograd()
	})
	if err := ctx.Dispatch(ft, -1); err != nil {
		return err
	}
	n := bottom[0].Num()
	for i := 0; i < n; i++ {
		img := bottom[0].SampleData(i)
		out := top[0].SampleData(i)
		tag := fmt.Sprintf("%s/n%d", l.name, i)
		for _, k := range l.winogradKernels(tag, img, out) {
			if err := ctx.Dispatch(k, i); err != nil {
				return err
			}
		}
	}
	return ctx.Barrier()
}

// Backward implements Layer. Per image: recompute im2col, accumulate dW and
// db into per-chain partials, compute dcol = Wᵀ·dTop and scatter with
// col2im into the (disjoint) bottom diff slice. Partials fold on chain -1
// (the default stream) after the batch barrier.
func (l *ConvLayer) Backward(ctx *Context, top []*Blob, propagate []bool, bottom []*Blob) error {
	width := ctx.Width()
	l.leaseScratch(width, true)
	err := l.backwardDispatch(ctx, top, propagate, bottom, width)
	berr := ctx.Barrier()
	l.releaseScratch()
	if err != nil {
		return err
	}
	return berr
}

func (l *ConvLayer) backwardDispatch(ctx *Context, top []*Blob, propagate []bool, bottom []*Blob, width int) error {
	if ctx.Compute {
		// Arena slabs arrive with unspecified contents; the partials
		// accumulate (beta=1), so they must start from zero every pass.
		for j := 0; j < width; j++ {
			zero(l.partW[j].Data)
			if l.bias != nil {
				zero(l.partB[j].Data)
			}
		}
	}
	n := bottom[0].Num()
	w := l.weight.Data.Data()
	par := ctx.RowPar()
	for i := 0; i < n; i++ {
		chain := i
		j := i % width
		buf := l.colBufs[j].Data
		img := bottom[0].SampleData(i)
		dtop := top[0].SampleDiff(i)
		tag := fmt.Sprintf("%s/n%d", l.name, i)

		if err := ctx.Dispatch(kernels.Im2col(tag, img, l.geom, buf), chain); err != nil {
			return err
		}
		// dW_j += dTop(Co×P) · colᵀ(P×K)
		if err := ctx.Dispatch(kernels.SgemmP(tag, par, false, true, l.co, l.k, l.p, 1, dtop, buf, 1, l.partW[j].Data), chain); err != nil {
			return err
		}
		if l.bias != nil {
			db := l.partB[j].Data
			co, p := l.co, l.p
			if err := ctx.Dispatch(kernels.BiasBackward(tag, co, p, dtop, l.onesP, db), chain); err != nil {
				return err
			}
		}
		if propagate[0] {
			dcol := l.dcolBufs[j].Data
			if err := ctx.Dispatch(kernels.SgemmP(tag, par, true, false, l.k, l.p, l.co, 1, w, dtop, 0, dcol), chain); err != nil {
				return err
			}
			dimg := bottom[0].SampleDiff(i)
			if err := ctx.Dispatch(kernels.Col2im(tag, dcol, l.geom, dimg), chain); err != nil {
				return err
			}
		}
	}
	if err := ctx.Barrier(); err != nil {
		return err
	}
	// Deterministic fold of the per-chain partials, on the default stream.
	dw := l.weight.Diff.Data()
	for j := 0; j < width; j++ {
		part := l.partW[j].Data
		if err := ctx.Dispatch(kernels.AxpyKernel("axpy_fold_w", l.name, len(part), func() {
			tensor.Axpy(1, part, dw)
		}), -1); err != nil {
			return err
		}
	}
	if l.bias != nil {
		db := l.bias.Diff.Data()
		for j := 0; j < width; j++ {
			part := l.partB[j].Data
			if err := ctx.Dispatch(kernels.AxpyKernel("axpy_fold_b", l.name, len(part), func() {
				tensor.Axpy(1, part, db)
			}), -1); err != nil {
				return err
			}
		}
	}
	return nil
}

func zero(s []float32) {
	for i := range s {
		s[i] = 0
	}
}
