package dnn

import (
	"fmt"
	"sort"

	"repro/internal/hostpool"
	"repro/internal/tensor"
)

// This file is the operator-level DAG scheduler: the inter-layer
// parallelism axis complementing GLP4NN's intra-layer batch splitting
// (Opara-style operator parallelism). The no-in-place-tops invariant of
// Builder.Add means every blob has exactly one producer, so the layer
// dependency DAG is implicit in the net definition; ForwardDAG/BackwardDAG
// recover it and dispatch every ready layer concurrently, while keeping
// trained parameters bitwise identical to serial execution.
//
// The numeric contract (why DAG execution is convergence-invariant):
//
//   - Forward writes are naturally disjoint: each top has one producer and
//     layer-internal state belongs to one layer. Only the host RNG is
//     shared, so RNG-drawing layers are chained in insertion order.
//   - Backward ACCUMULATES (+=) into bottom diffs, and ClearDiffs zeroes
//     every diff first. A blob with one propagating consumer has one
//     writer; a blob with several gets one of two treatments:
//
//     Scratch fold — if every consumer's backward is "add-once" (at most
//     one += per bottom element, e.g. activations, eltwise, concat), each
//     consumer accumulates into a private zeroed scratch diff leased from
//     the tensor arena, and the scratches fold into the real diff in the
//     exact serial consumer order (descending entry index). Bitwise
//     equality holds because a single addition into a zeroed scratch
//     reproduces the addend exactly: partial sums seeded at +0 can never
//     become -0, and x+(+0) ≡ x+(-0) for every reachable x, so
//     diff += (0+v) is bit-identical to diff += v.
//
//     Serialization edges — consumers that add more than once per element
//     (conv's overlapping col2im, pooling windows, IP's per-k axpy) would
//     reassociate the sum under scratch folding ((x⊕b₁)⊕b₂ ≠ x⊕(b₁⊕b₂)),
//     so such consumer sets are chained in descending entry index order,
//     which is exactly the serial backward order.
//
//   - Shared parameters (Siamese twins) always fold through multi-add GEMM
//     paths, so their owning layers are serialization-chained, never
//     scratch-folded.
//   - Loss summation keeps insertion order, and ctx.Begin keys are
//     unchanged, so profiling and replay see the same keys as serial runs.

// dagSpec describes one layer for DAG construction. It is name-based (no
// Layer or Blob references) so the builder can be property-tested on
// synthetic nets.
type dagSpec struct {
	Name      string
	Bottoms   []string
	Tops      []string
	Propagate []bool // per bottom; empty derives !inputs[bottom]
	AddOnce   bool   // backward performs at most one += per bottom element
	UsesRNG   bool   // forward draws from the shared host RNG
}

// dagNode is one layer's dependency record. All slices are sorted and
// deduplicated; forward edges point from lower to higher entry index,
// backward edges from higher to lower (builders add layers topologically).
type dagNode struct {
	fwdDeps, fwdSuccs []int
	bwdDeps, bwdSuccs []int
}

// foldGroup is one shared bottom whose propagating consumers are all
// add-once: each consumer gets a private zeroed scratch diff, folded into
// the real diff in descending entry-index order (the serial order).
type foldGroup struct {
	blob      string
	consumers []int // descending entry index
}

// DAGStats summarizes the inter-layer parallelism available in a net.
type DAGStats struct {
	// Layers is the number of layers (DAG nodes).
	Layers int
	// FwdDepth / BwdDepth are the critical path lengths in layers: the
	// minimum number of sequential steps any scheduler needs.
	FwdDepth, BwdDepth int
	// MaxWavefront / MaxBwdWavefront are the widest set of layers that can
	// execute concurrently (per dependency level).
	MaxWavefront, MaxBwdWavefront int
	// CriticalPath names the layers along one longest forward chain.
	CriticalPath []string
}

func (s DAGStats) String() string {
	return fmt.Sprintf("depth %d/%d layers, max wavefront %d (backward: depth %d, wavefront %d)",
		s.FwdDepth, s.Layers, s.MaxWavefront, s.BwdDepth, s.MaxBwdWavefront)
}

// layerDAG is the built dependency graph of one net.
type layerDAG struct {
	specs []dagSpec
	nodes []dagNode
	folds []foldGroup
	// nodeFolds maps a node index to the fold groups it feeds, so the
	// scheduler can run each fold as soon as its last consumer finishes.
	nodeFolds map[int][]int
	stats     DAGStats
	// fwdChain/bwdChain report a total order: the DAG offers no
	// parallelism for that direction and the serial path runs instead.
	fwdChain, bwdChain bool
	fwdKeys, bwdKeys   []string
}

// edgeSet accumulates deduplicated edges per node.
type edgeSet struct {
	deps  []map[int]bool
	succs []map[int]bool
}

func newEdgeSet(n int) *edgeSet {
	return &edgeSet{deps: make([]map[int]bool, n), succs: make([]map[int]bool, n)}
}

func (e *edgeSet) add(from, to int) {
	if from == to {
		return
	}
	if e.succs[from] == nil {
		e.succs[from] = map[int]bool{}
	}
	if e.deps[to] == nil {
		e.deps[to] = map[int]bool{}
	}
	e.succs[from][to] = true
	e.deps[to][from] = true
}

func sortedKeys(m map[int]bool) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// buildLayerDAG validates the specs and constructs the dependency graph.
// Specs must be in topological (definition) order, like prototxt files and
// Builder.Add: a bottom must be an input or the top of an earlier spec.
// Duplicate tops, undefined bottoms and forward references (which any cycle
// must contain) are rejected with a descriptive error. paramGroups lists
// sets of spec indexes that share parameter blobs; each set is
// serialization-chained in the backward graph.
func buildLayerDAG(specs []dagSpec, inputs map[string]bool, paramGroups [][]int) (*layerDAG, error) {
	n := len(specs)
	producer := map[string]int{}
	for i, sp := range specs {
		for _, t := range sp.Tops {
			if inputs[t] {
				return nil, fmt.Errorf("dag: layer %q top %q is an input blob", sp.Name, t)
			}
			if p, dup := producer[t]; dup {
				return nil, fmt.Errorf("dag: blob %q produced twice (layers %q and %q)",
					t, specs[p].Name, sp.Name)
			}
			producer[t] = i
		}
	}

	fwd := newEdgeSet(n)
	bwd := newEdgeSet(n)
	// propCons collects, per non-input blob, the distinct consumers that
	// propagate a gradient into it; propMulti flags a consumer listing the
	// same blob more than once (two += per element — not add-once for that
	// blob even if the layer is).
	propCons := map[string][]int{}
	propMulti := map[string]bool{}

	for i := range specs {
		sp := &specs[i]
		if len(sp.Propagate) != 0 && len(sp.Propagate) != len(sp.Bottoms) {
			return nil, fmt.Errorf("dag: layer %q has %d bottoms but %d propagate flags",
				sp.Name, len(sp.Bottoms), len(sp.Propagate))
		}
		seen := map[string]bool{}
		for bi, b := range sp.Bottoms {
			if inputs[b] {
				continue
			}
			p, ok := producer[b]
			if !ok {
				return nil, fmt.Errorf("dag: layer %q bottom %q is not an input or any layer's top", sp.Name, b)
			}
			if p >= i {
				return nil, fmt.Errorf("dag: layer %q bottom %q is produced by later layer %q (cycle or out-of-order definition)",
					sp.Name, b, specs[p].Name)
			}
			fwd.add(p, i)
			prop := true
			if len(sp.Propagate) != 0 {
				prop = sp.Propagate[bi]
			}
			if !prop {
				continue
			}
			// The consumer's backward writes b's diff, which the
			// producer's backward reads.
			bwd.add(i, p)
			if seen[b] {
				propMulti[b] = true
				continue
			}
			seen[b] = true
			propCons[b] = append(propCons[b], i)
		}
	}

	// Shared-bottom policy: scratch fold when every propagating consumer is
	// add-once, serialization edges (descending entry index, the serial
	// backward order) otherwise.
	var folds []foldGroup
	blobs := make([]string, 0, len(propCons))
	for b, cons := range propCons {
		if len(cons) > 1 || (len(cons) > 0 && propMulti[b]) {
			blobs = append(blobs, b)
		}
	}
	sort.Strings(blobs)
	for _, b := range blobs {
		cons := append([]int(nil), propCons[b]...)
		sort.Sort(sort.Reverse(sort.IntSlice(cons)))
		fold := !propMulti[b]
		for _, c := range cons {
			if !specs[c].AddOnce {
				fold = false
			}
		}
		if fold {
			folds = append(folds, foldGroup{blob: b, consumers: cons})
			continue
		}
		for j := 0; j+1 < len(cons); j++ {
			bwd.add(cons[j], cons[j+1])
		}
	}

	// Shared parameters: the owners' backward passes all accumulate into
	// the same parameter diffs through multi-add GEMM paths, so they are
	// chained in descending entry index order.
	for _, group := range paramGroups {
		g := append([]int(nil), group...)
		sort.Sort(sort.Reverse(sort.IntSlice(g)))
		for j := 0; j+1 < len(g); j++ {
			if g[j] < 0 || g[j] >= n || g[j+1] < 0 {
				return nil, fmt.Errorf("dag: parameter group index out of range: %v", group)
			}
			bwd.add(g[j], g[j+1])
		}
	}

	// The host RNG is shared mutable state: forward invocations that draw
	// from it are chained in insertion order so the draw sequence matches
	// serial execution exactly.
	prevRNG := -1
	for i := range specs {
		if !specs[i].UsesRNG {
			continue
		}
		if prevRNG >= 0 {
			fwd.add(prevRNG, i)
		}
		prevRNG = i
	}

	d := &layerDAG{specs: specs, folds: folds, nodeFolds: map[int][]int{}}
	d.nodes = make([]dagNode, n)
	for i := range d.nodes {
		d.nodes[i] = dagNode{
			fwdDeps: sortedKeys(fwd.deps[i]), fwdSuccs: sortedKeys(fwd.succs[i]),
			bwdDeps: sortedKeys(bwd.deps[i]), bwdSuccs: sortedKeys(bwd.succs[i]),
		}
	}
	for fi, g := range folds {
		for _, c := range g.consumers {
			d.nodeFolds[c] = append(d.nodeFolds[c], fi)
		}
	}
	d.fwdKeys = make([]string, n)
	d.bwdKeys = make([]string, n)
	for i := range specs {
		d.fwdKeys[i] = specs[i].Name + "/fwd"
		d.bwdKeys[i] = specs[i].Name + "/bwd"
	}
	d.computeStats()
	return d, nil
}

// computeStats derives depth, wavefront and critical path from the edges.
// A direction whose max wavefront is 1 is a total order (each dependency
// level holds exactly one node, and consecutive levels must be connected),
// and is flagged as a chain so the scheduler can fall back to the exact
// serial loop.
func (d *layerDAG) computeStats() {
	n := len(d.nodes)
	d.stats = DAGStats{Layers: n}
	if n == 0 {
		d.fwdChain, d.bwdChain = true, true
		return
	}

	// Forward: dependencies have lower indexes, so ascending order is a
	// topological order.
	lvl := make([]int, n)
	pred := make([]int, n)
	for i := 0; i < n; i++ {
		lvl[i], pred[i] = 1, -1
		for _, dep := range d.nodes[i].fwdDeps {
			if lvl[dep]+1 > lvl[i] {
				lvl[i] = lvl[dep] + 1
				pred[i] = dep
			}
		}
	}
	width := map[int]int{}
	deepest := 0
	for i := 0; i < n; i++ {
		width[lvl[i]]++
		if lvl[i] > lvl[deepest] {
			deepest = i
		}
	}
	for _, w := range width {
		if w > d.stats.MaxWavefront {
			d.stats.MaxWavefront = w
		}
	}
	d.stats.FwdDepth = lvl[deepest]
	for i := deepest; i >= 0; i = pred[i] {
		d.stats.CriticalPath = append(d.stats.CriticalPath, d.specs[i].Name)
	}
	for l, r := 0, len(d.stats.CriticalPath)-1; l < r; l, r = l+1, r-1 {
		d.stats.CriticalPath[l], d.stats.CriticalPath[r] = d.stats.CriticalPath[r], d.stats.CriticalPath[l]
	}

	// Backward: dependencies have higher indexes, so descending order is a
	// topological order.
	blvl := make([]int, n)
	bwidth := map[int]int{}
	for i := n - 1; i >= 0; i-- {
		blvl[i] = 1
		for _, dep := range d.nodes[i].bwdDeps {
			if blvl[dep]+1 > blvl[i] {
				blvl[i] = blvl[dep] + 1
			}
		}
		bwidth[blvl[i]]++
		if blvl[i] > d.stats.BwdDepth {
			d.stats.BwdDepth = blvl[i]
		}
	}
	for _, w := range bwidth {
		if w > d.stats.MaxBwdWavefront {
			d.stats.MaxBwdWavefront = w
		}
	}

	d.fwdChain = d.stats.MaxWavefront <= 1
	d.bwdChain = d.stats.MaxBwdWavefront <= 1
}

// LayerSessionForker is implemented by launchers that can serve several
// layer invocations concurrently. ForkLayerSession returns a
// per-invocation launcher whose BeginLayer/Launch/Width state is private,
// so concurrent DAG nodes do not race on the shared launcher. The result
// is typed any so implementing packages need not import this one
// (mirroring core's ChainLauncher); it must implement Launcher, and forks
// must be safe to use concurrently with each other and with the parent.
type LayerSessionForker interface {
	ForkLayerSession() any
}

// DAGGate is implemented by launchers whose concurrency plans come from a
// serial profiling iteration (GLP4NN's runtime). DAGReady reports whether
// every given layer key has an analyzed plan; until then the net runs the
// exact serial order, so the profiling iteration — and therefore every
// plan, width, and trained bit — matches a serial run.
type DAGGate interface {
	DAGReady(keys []string) bool
}

// ConcurrencyCapper is implemented by launchers that bound how many layer
// sessions are worth running at once (GLP4NN's runtime derives it from the
// device's concurrent-kernel budget and the widest analyzed plan). The cap
// changes scheduling throughput only, never results: any topological
// execution order yields identical bits by construction.
type ConcurrencyCapper interface {
	LayerConcurrencyCap() int
}

// ForkLayerSession implements LayerSessionForker: HostLauncher is
// stateless, so every session is the launcher itself.
func (HostLauncher) ForkLayerSession() any { return HostLauncher{} }

// ForkLayerSession implements LayerSessionForker: SerialLauncher holds no
// per-layer state and the device serializes internally, so every session
// is the launcher itself.
func (l SerialLauncher) ForkLayerSession() any { return l }

// addOnceLayer marks layers whose Backward performs at most one += per
// bottom-diff element (see the numeric contract at the top of this file).
// Layers without the marker — conv (overlapping col2im), pooling
// (overlapping windows), IP (per-k axpy), LRN, RNN — default to
// serialization edges when they share a bottom.
type addOnceLayer interface {
	addOnceBackward()
}

// hostRNGLayer marks layers whose Forward draws from ctx.RNG.
type hostRNGLayer interface {
	usesHostRNG()
}

// The add-once census. Each marked Backward was audited to write every
// bottom-diff element at most once:
// activations/softmax/flatten/dropout scale or mask the top diff
// elementwise; concat/slice copy disjoint ranges; eltwise writes each
// bottom once (sum/prod) or only the arg-max bottom (max); the loss layers
// write each logit/feature element once; accuracy's backward is a no-op.
func (*ReLULayer) addOnceBackward()            {}
func (*SigmoidLayer) addOnceBackward()         {}
func (*TanHLayer) addOnceBackward()            {}
func (*ELULayer) addOnceBackward()             {}
func (*SoftmaxLayer) addOnceBackward()         {}
func (*FlattenLayer) addOnceBackward()         {}
func (*DropoutLayer) addOnceBackward()         {}
func (*ConcatLayer) addOnceBackward()          {}
func (*SliceLayer) addOnceBackward()           {}
func (*EltwiseLayer) addOnceBackward()         {}
func (*SoftmaxLossLayer) addOnceBackward()     {}
func (*EuclideanLossLayer) addOnceBackward()   {}
func (*ContrastiveLossLayer) addOnceBackward() {}
func (*AccuracyLayer) addOnceBackward()        {}

func (*DropoutLayer) usesHostRNG() {}

// EnableDAG switches the net between serial execution and the operator
// DAG scheduler. With DAG on, Forward and Backward dispatch independent
// layers concurrently whenever the launcher supports concurrent sessions
// (LayerSessionForker) and the DAG offers parallelism; otherwise they run
// the exact serial order. Trained parameters are bitwise identical either
// way.
func (n *Net) EnableDAG(on bool) { n.dagOn = on }

// DAGEnabled reports whether the operator DAG scheduler is active.
func (n *Net) DAGEnabled() bool { return n.dagOn }

// DAGStats builds (or reuses) the net's dependency DAG and returns its
// parallelism statistics.
func (n *Net) DAGStats() (DAGStats, error) {
	d, err := n.ensureDAG()
	if err != nil {
		return DAGStats{}, err
	}
	return d.stats, nil
}

// invalidateDAG drops the cached DAG; called when the dependency structure
// changes after construction (parameter sharing).
func (n *Net) invalidateDAG() {
	n.dag = nil
	n.dagErr = nil
}

// ensureDAG lazily builds and caches the net's dependency DAG.
func (n *Net) ensureDAG() (*layerDAG, error) {
	if n.dag == nil && n.dagErr == nil {
		n.dag, n.dagErr = n.buildDAG()
	}
	return n.dag, n.dagErr
}

// buildDAG derives the dagSpecs and shared-parameter groups from the
// net's entries and constructs the DAG.
func (n *Net) buildDAG() (*layerDAG, error) {
	specs := make([]dagSpec, len(n.entries))
	for i := range n.entries {
		e := &n.entries[i]
		_, addOnce := e.layer.(addOnceLayer)
		_, rng := e.layer.(hostRNGLayer)
		specs[i] = dagSpec{
			Name:      e.layer.Name(),
			Bottoms:   e.bottoms,
			Tops:      e.tops,
			Propagate: e.propagate,
			AddOnce:   addOnce,
			UsesRNG:   rng,
		}
	}
	// Parameter blobs shared by several layers (Siamese twins via
	// ShareParams) serialize their owners' backward passes. Owners append
	// in entry order, so each group is already ascending.
	owners := map[*Blob][]int{}
	for i := range n.entries {
		for _, p := range n.entries[i].layer.Params() {
			owners[p] = append(owners[p], i)
		}
	}
	var groups [][]int
	dedup := map[string]bool{}
	for _, g := range owners {
		if len(g) < 2 {
			continue
		}
		key := fmt.Sprint(g)
		if dedup[key] {
			continue
		}
		dedup[key] = true
		groups = append(groups, g)
	}
	return buildLayerDAG(specs, n.inputs, groups)
}

// dagRunnable reports whether the DAG path applies for this context and
// direction; when false the caller runs the exact serial loop.
func (n *Net) dagRunnable(ctx *Context, d *layerDAG, backward bool) bool {
	if backward && d.bwdChain || !backward && d.fwdChain {
		return false
	}
	if _, ok := ctx.L.(LayerSessionForker); !ok {
		return false
	}
	if gate, ok := ctx.L.(DAGGate); ok {
		keys := d.fwdKeys
		if backward {
			keys = d.bwdKeys
		}
		if !gate.DAGReady(keys) {
			return false
		}
	}
	return true
}

// ForwardDAG runs the forward pass through the DAG scheduler (serial
// fallback when the DAG is a chain or the launcher cannot fork sessions)
// and returns the weighted loss summed in insertion order, exactly like
// Forward.
func (n *Net) ForwardDAG(ctx *Context) (float64, error) {
	if !n.built {
		return 0, fmt.Errorf("net %s: not built", n.name)
	}
	d, err := n.ensureDAG()
	if err != nil {
		return 0, fmt.Errorf("net %s: dag: %w", n.name, err)
	}
	if !n.dagRunnable(ctx, d, false) {
		return n.forwardSerial(ctx)
	}
	if err := n.runDAG(ctx, d, false); err != nil {
		return 0, err
	}
	loss := 0.0
	for i := range n.entries {
		e := &n.entries[i]
		if ll, ok := e.layer.(LossLayer); ok {
			loss += float64(ll.LossWeight()) * float64(e.topB[0].Data.Data()[0])
		}
	}
	return loss, nil
}

// BackwardDAG runs the backward pass through the DAG scheduler (serial
// fallback like ForwardDAG), accumulating gradients bitwise identically to
// Backward.
func (n *Net) BackwardDAG(ctx *Context) error {
	if !n.built {
		return fmt.Errorf("net %s: not built", n.name)
	}
	d, err := n.ensureDAG()
	if err != nil {
		return fmt.Errorf("net %s: dag: %w", n.name, err)
	}
	if !n.dagRunnable(ctx, d, true) {
		return n.backwardSerial(ctx)
	}
	return n.runDAG(ctx, d, true)
}

// foldScratch is the per-run state of one foldGroup: a private shadow blob
// (shared data, scratch diff) per consumer, folded into the real diff in
// the group's descending-entry order when the last consumer finishes.
type foldScratch struct {
	dst       *Blob
	shadows   []*Blob // parallel to foldGroup.consumers (descending order)
	remaining int
}

// runDAG executes one direction of the net with a dependency-counter
// scheduler: every layer whose dependencies (and, in backward, whose
// consumers' scratch folds) have completed is dispatched onto a detached
// hostpool task; its kernel chains ride the context's pool lanes and its
// streams come from a forked launcher session. Ready layers dispatch in
// ascending entry-index order, bounded by the launcher's concurrency cap.
func (n *Net) runDAG(ctx *Context, d *layerDAG, backward bool) error {
	forker := ctx.L.(LayerSessionForker) // checked by dagRunnable

	nNodes := len(d.nodes)
	deps := make([]int, nNodes)
	for i := range d.nodes {
		if backward {
			deps[i] = len(d.nodes[i].bwdDeps)
		} else {
			deps[i] = len(d.nodes[i].fwdDeps)
		}
	}

	// Lease and substitute shared-bottom scratch diffs.
	var folds []*foldScratch
	var bufs []*tensor.Buf
	bottoms := make([][]*Blob, nNodes)
	if backward && ctx.Compute && len(d.folds) > 0 {
		defer func() { tensor.PutBufs(bufs) }()
		for _, g := range d.folds {
			blob := n.blobs[g.blob]
			fs := &foldScratch{dst: blob, remaining: len(g.consumers)}
			for _, c := range g.consumers {
				buf := tensor.GetZeroBuf(blob.Count())
				bufs = append(bufs, buf)
				shadow := &Blob{
					Name: blob.Name, Data: blob.Data,
					Diff:   tensor.FromSlice(buf.Data, blob.Shape()...),
					LrMult: blob.LrMult, DecayMult: blob.DecayMult,
				}
				fs.shadows = append(fs.shadows, shadow)
				if bottoms[c] == nil {
					bottoms[c] = append([]*Blob(nil), n.entries[c].bottomB...)
				}
				for bi, name := range n.entries[c].bottoms {
					if name == g.blob {
						bottoms[c][bi] = shadow
					}
				}
			}
			folds = append(folds, fs)
		}
	}

	// The wavefront cap is re-queried every scheduling round rather than
	// computed once: a capper backed by the runtime's unified SM budget
	// (core.Runtime.LayerConcurrencyCap) reports the budget *currently*
	// free, which moves as chain streams and copy transfers acquire and
	// release their own shares mid-step.
	capBase := d.stats.MaxWavefront
	if backward {
		capBase = d.stats.MaxBwdWavefront
	}
	capper, hasCapper := ctx.L.(ConcurrencyCapper)
	capFn := func() int {
		capN := capBase
		if hasCapper {
			if m := capper.LayerConcurrencyCap(); m > 0 && m < capN {
				capN = m
			}
		}
		if capN < 1 {
			capN = 1
		}
		return capN
	}

	var ready []int // ascending entry index
	push := func(id int) {
		at := sort.SearchInts(ready, id)
		ready = append(ready, 0)
		copy(ready[at+1:], ready[at:])
		ready[at] = id
	}
	for i := 0; i < nNodes; i++ {
		if deps[i] == 0 {
			push(i)
		}
	}

	group := hostpool.NewGroup(nNodes)
	running, finished := 0, 0
	var firstErr error
	for finished < nNodes {
		if firstErr == nil {
			for len(ready) > 0 && running < capFn() {
				id := ready[0]
				ready = ready[1:]
				running++
				nb := bottoms[id]
				group.Go(id, func() error { return n.runDAGNode(ctx, forker, id, backward, nb) })
			}
		}
		if running == 0 {
			if firstErr == nil {
				// Unreachable for a validated DAG; fail loudly over hanging.
				firstErr = fmt.Errorf("net %s: dag scheduler stalled with %d/%d layers done",
					n.name, finished, nNodes)
			}
			break
		}
		res := group.Next()
		running--
		finished++
		if res.Err != nil {
			if firstErr == nil {
				firstErr = res.Err
			}
			continue
		}
		if firstErr != nil {
			continue // drain in-flight nodes, dispatch nothing new
		}
		// Scratch folds run on the scheduler goroutine the moment their
		// last consumer completes — and before that completion releases
		// the producer below, so the producer always reads a folded diff.
		// folds is empty on forward and timing-only runs (no scratch leased).
		if len(folds) > 0 {
			for _, fi := range d.nodeFolds[res.ID] {
				fs := folds[fi]
				if fs.remaining--; fs.remaining == 0 {
					dst := fs.dst.Diff.Data()
					for _, sh := range fs.shadows {
						src := sh.Diff.Data()
						for i, v := range src {
							dst[i] += v
						}
					}
				}
			}
		}
		// Gradient-ready hooks fire on the scheduler goroutine (serialized
		// per net, as OnLayerBackward promises), after the node's scratch
		// folds are applied, in completion order rather than the serial
		// path's strict reverse order — readiness consumers track per-layer
		// retirement, not ordering.
		if backward {
			n.fireLayerBackward(res.ID)
		}
		succs := d.nodes[res.ID].fwdSuccs
		if backward {
			succs = d.nodes[res.ID].bwdSuccs
		}
		for _, s := range succs {
			if deps[s]--; deps[s] == 0 {
				push(s)
			}
		}
	}
	return firstErr
}

// runDAGNode executes one layer invocation on a private context: a forked
// launcher session and a private chain set, sharing the phase, RNG,
// compute flag and host pool with the parent.
func (n *Net) runDAGNode(ctx *Context, forker LayerSessionForker, id int, backward bool, bottomB []*Blob) error {
	e := &n.entries[id]
	sub, ok := forker.ForkLayerSession().(Launcher)
	if !ok {
		return fmt.Errorf("net %s: launcher %T forked a session that is not a Launcher", n.name, ctx.L)
	}
	nctx := &Context{L: sub, Phase: ctx.Phase, RNG: ctx.RNG, Compute: ctx.Compute, Pool: ctx.Pool}
	var err error
	if backward {
		if bottomB == nil {
			bottomB = e.bottomB
		}
		nctx.Begin(e.layer.Name() + "/bwd")
		if err = e.layer.Backward(nctx, e.topB, e.propagate, bottomB); err != nil {
			err = fmt.Errorf("net %s: backward %s: %w", n.name, e.layer.Name(), err)
		}
	} else {
		nctx.Begin(e.layer.Name() + "/fwd")
		if err = e.layer.Forward(nctx, e.bottomB, e.topB); err != nil {
			err = fmt.Errorf("net %s: forward %s: %w", n.name, e.layer.Name(), err)
		}
	}
	// Layers end with ctx.Barrier(), which already drained the private
	// chain set; this covers layers (or error paths) that bailed out with
	// closures still in flight, so no kernel can outlive the node and race
	// a dependent layer or a released scratch buffer.
	if derr := nctx.drainChains(); derr != nil && err == nil {
		err = fmt.Errorf("net %s: %s chains: %w", n.name, e.layer.Name(), derr)
	}
	return err
}
