package dnn

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/hostpool"
	"repro/internal/simgpu"
)

// ForkLayerSession lets the width-forcing test launcher serve concurrent
// DAG sessions; it is stateless, so the fork is the launcher itself.
func (l widthLauncher) ForkLayerSession() any { return l }

// --- DAG builder validation -------------------------------------------------

func spec(name string, bottoms, tops []string) dagSpec {
	return dagSpec{Name: name, Bottoms: bottoms, Tops: tops, AddOnce: true}
}

func TestDAGBuilderRejectsInvalid(t *testing.T) {
	inputs := map[string]bool{"data": true}
	cases := []struct {
		name  string
		specs []dagSpec
		want  string
	}{
		{"undefined bottom",
			[]dagSpec{spec("a", []string{"ghost"}, []string{"x"})},
			"not an input or any layer's top"},
		{"duplicate top",
			[]dagSpec{
				spec("a", []string{"data"}, []string{"x"}),
				spec("b", []string{"data"}, []string{"x"}),
			},
			"produced twice"},
		{"top shadows input",
			[]dagSpec{spec("a", []string{"data"}, []string{"data"})},
			"is an input blob"},
		{"cycle",
			[]dagSpec{
				spec("a", []string{"y"}, []string{"x"}),
				spec("b", []string{"x"}, []string{"y"}),
			},
			"cycle or out-of-order"},
		{"self loop",
			[]dagSpec{spec("a", []string{"x"}, []string{"x"})},
			"cycle or out-of-order"},
		{"propagate arity",
			[]dagSpec{{Name: "a", Bottoms: []string{"data"}, Tops: []string{"x"}, Propagate: []bool{true, false}}},
			"propagate flags"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := buildLayerDAG(tc.specs, inputs, nil)
			if err == nil {
				t.Fatalf("%s: expected error", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
			}
		})
	}
}

// checkDAGInvariants verifies the structural properties every valid DAG
// must satisfy: forward edges point from earlier to later layers (so
// ascending entry index is a topological order), backward edges the
// reverse, fold groups hold only add-once consumers in descending order,
// and the stats are internally consistent.
func checkDAGInvariants(t *testing.T, d *layerDAG) {
	t.Helper()
	n := len(d.nodes)
	for i, node := range d.nodes {
		for _, dep := range node.fwdDeps {
			if dep >= i {
				t.Fatalf("fwd dep %d of node %d does not precede it", dep, i)
			}
		}
		for _, s := range node.fwdSuccs {
			if s <= i {
				t.Fatalf("fwd succ %d of node %d does not follow it", s, i)
			}
		}
		for _, dep := range node.bwdDeps {
			if dep <= i {
				t.Fatalf("bwd dep %d of node %d does not follow it", dep, i)
			}
		}
		for _, s := range node.bwdSuccs {
			if s >= i {
				t.Fatalf("bwd succ %d of node %d does not precede it", s, i)
			}
		}
	}
	for _, g := range d.folds {
		for j, c := range g.consumers {
			if !d.specs[c].AddOnce {
				t.Fatalf("fold group %q holds non-add-once consumer %q", g.blob, d.specs[c].Name)
			}
			if j > 0 && g.consumers[j-1] <= c {
				t.Fatalf("fold group %q consumers not in descending order: %v", g.blob, g.consumers)
			}
		}
	}
	st := d.stats
	if st.Layers != n {
		t.Fatalf("stats.Layers = %d, want %d", st.Layers, n)
	}
	if n > 0 && (st.FwdDepth < 1 || st.FwdDepth > n || st.BwdDepth < 1 || st.BwdDepth > n) {
		t.Fatalf("implausible depths: %+v", st)
	}
	if n > 0 && (st.MaxWavefront < 1 || st.MaxWavefront > n || st.MaxBwdWavefront < 1) {
		t.Fatalf("implausible wavefronts: %+v", st)
	}
	if n > 0 && len(st.CriticalPath) != st.FwdDepth {
		t.Fatalf("critical path %v does not match depth %d", st.CriticalPath, st.FwdDepth)
	}
	if d.fwdChain != (st.MaxWavefront <= 1) || d.bwdChain != (st.MaxBwdWavefront <= 1) {
		t.Fatalf("chain flags inconsistent with stats: %+v", st)
	}
}

// randomSpecs generates a structurally valid random net: every bottom is
// an input or an earlier top, every top is fresh.
func randomSpecs(rng *rand.Rand) ([]dagSpec, map[string]bool) {
	inputs := map[string]bool{"in0": true, "in1": true}
	blobs := []string{"in0", "in1"}
	n := 1 + rng.Intn(12)
	specs := make([]dagSpec, 0, n)
	for i := 0; i < n; i++ {
		nb := 1 + rng.Intn(3)
		var bottoms []string
		for j := 0; j < nb; j++ {
			bottoms = append(bottoms, blobs[rng.Intn(len(blobs))])
		}
		nt := 1 + rng.Intn(2)
		var tops []string
		for j := 0; j < nt; j++ {
			top := fmt.Sprintf("b%d_%d", i, j)
			tops = append(tops, top)
			blobs = append(blobs, top)
		}
		specs = append(specs, dagSpec{
			Name: fmt.Sprintf("l%d", i), Bottoms: bottoms, Tops: tops,
			AddOnce: rng.Intn(2) == 0, UsesRNG: rng.Intn(4) == 0,
		})
	}
	return specs, inputs
}

func TestDAGBuilderRandomNets(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		specs, inputs := randomSpecs(rng)
		d, err := buildLayerDAG(specs, inputs, nil)
		if err != nil {
			t.Fatalf("trial %d: valid net rejected: %v", trial, err)
		}
		checkDAGInvariants(t, d)
	}
}

// FuzzDAGBuilder decodes arbitrary bytes into a net description — often
// invalid — and requires the builder to either reject it or produce a DAG
// satisfying every structural invariant. Malformed nets must fail with an
// error, never a panic or a cyclic graph.
func FuzzDAGBuilder(f *testing.F) {
	f.Add([]byte{3, 1, 0, 1, 1, 2, 0, 7})
	f.Add([]byte{9, 9, 9, 9, 0, 0, 0, 0, 255, 1, 2, 3})
	f.Add([]byte("layers"))
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func(i int) byte {
			if len(data) == 0 {
				return 0
			}
			return data[i%len(data)]
		}
		inputs := map[string]bool{"in0": true}
		pool := []string{"in0"}
		n := 1 + int(next(0))%10
		var specs []dagSpec
		pos := 1
		for i := 0; i < n; i++ {
			nb := 1 + int(next(pos))%3
			pos++
			var bottoms []string
			for j := 0; j < nb; j++ {
				// Indexes past the current pool reference future tops or
				// undefined blobs, probing the validation paths.
				idx := int(next(pos)) % (len(pool) + 4)
				pos++
				if idx < len(pool) {
					bottoms = append(bottoms, pool[idx])
				} else {
					bottoms = append(bottoms, fmt.Sprintf("blob%d", idx+i))
				}
			}
			top := fmt.Sprintf("blob%d", int(next(pos)))
			pos++
			specs = append(specs, dagSpec{
				Name: fmt.Sprintf("l%d", i), Bottoms: bottoms, Tops: []string{top},
				AddOnce: next(pos)%2 == 0, UsesRNG: next(pos)%3 == 0,
			})
			pos++
			pool = append(pool, top)
		}
		d, err := buildLayerDAG(specs, inputs, nil)
		if err != nil {
			return
		}
		checkDAGInvariants(t, d)
	})
}

// --- Bitwise invariance: DAG vs serial --------------------------------------

// buildBranchyNet exercises every DAG mechanism at once: a shared bottom
// with two add-once consumers (scratch fold), a slice→conv branches→concat
// diamond (concurrent non-add-once layers on disjoint blobs), and a final
// classifier.
func buildBranchyNet(t testing.TB, batch int, seed int64) *Net {
	t.Helper()
	ctx := NewContext(HostLauncher{}, seed)
	cc := Conv(4, 3, 1, 1)
	cc.Seed = seed
	ca := Conv(3, 3, 1, 1)
	ca.Seed = seed + 1
	cb := Conv(3, 3, 1, 1)
	cb.Seed = seed + 2
	ic := IP(3)
	ic.Seed = seed + 3
	net, err := NewNet("branchy").
		Input("data", batch, 2, 8, 8).
		Input("label", batch).
		Add(NewConv("conv0", cc), []string{"data"}, []string{"t"}).
		Add(NewReLU("relu_a"), []string{"t"}, []string{"a"}).
		Add(NewSigmoid("sig_b"), []string{"t"}, []string{"b"}).
		Add(NewEltwise("elt", EltwiseSum, nil), []string{"a", "b"}, []string{"e"}).
		Add(NewSlice("slice"), []string{"e"}, []string{"s1", "s2"}).
		Add(NewConv("conv_a", ca), []string{"s1"}, []string{"ca"}).
		Add(NewConv("conv_b", cb), []string{"s2"}, []string{"cb"}).
		Add(NewConcat("concat"), []string{"ca", "cb"}, []string{"cc"}).
		Add(NewPool("pool", Pool(MaxPool, 2, 2)), []string{"cc"}, []string{"p"}).
		Add(NewIP("ip", ic), []string{"p"}, []string{"scores"}).
		Add(NewSoftmaxLoss("loss"), []string{"scores", "label"}, []string{"loss"}).
		Build(ctx)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return net
}

// buildSharedBottomConvNet makes two convolutions (not add-once) consume
// one blob, forcing the serialization-edge policy instead of scratch
// folding.
func buildSharedBottomConvNet(t testing.TB, batch int, seed int64) *Net {
	t.Helper()
	ctx := NewContext(HostLauncher{}, seed)
	c0 := Conv(2, 3, 1, 1)
	c0.Seed = seed
	ca := Conv(3, 3, 1, 1)
	ca.Seed = seed + 1
	cb := Conv(3, 3, 1, 1)
	cb.Seed = seed + 2
	ic := IP(3)
	ic.Seed = seed + 3
	net, err := NewNet("sharedbottom").
		Input("data", batch, 2, 8, 8).
		Input("label", batch).
		Add(NewConv("conv0", c0), []string{"data"}, []string{"t"}).
		Add(NewConv("conv_a", ca), []string{"t"}, []string{"a"}).
		Add(NewConv("conv_b", cb), []string{"t"}, []string{"b"}).
		Add(NewConcat("concat"), []string{"a", "b"}, []string{"c"}).
		Add(NewIP("ip", ic), []string{"c"}, []string{"scores"}).
		Add(NewSoftmaxLoss("loss"), []string{"scores", "label"}, []string{"loss"}).
		Build(ctx)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return net
}

// buildDropoutBranchNet puts a dropout in each of two parallel branches,
// exercising the RNG insertion-order chain in the forward DAG.
func buildDropoutBranchNet(t testing.TB, batch int, seed int64) *Net {
	t.Helper()
	ctx := NewContext(HostLauncher{}, seed)
	cc := Conv(4, 3, 1, 1)
	cc.Seed = seed
	ic := IP(3)
	ic.Seed = seed + 1
	net, err := NewNet("dropbranch").
		Input("data", batch, 2, 8, 8).
		Input("label", batch).
		Add(NewConv("conv0", cc), []string{"data"}, []string{"t"}).
		Add(NewReLU("relu_a"), []string{"t"}, []string{"a"}).
		Add(NewSigmoid("sig_b"), []string{"t"}, []string{"b"}).
		Add(NewDropout("drop_a", 0.4), []string{"a"}, []string{"da"}).
		Add(NewDropout("drop_b", 0.4), []string{"b"}, []string{"db"}).
		Add(NewEltwise("elt", EltwiseSum, nil), []string{"da", "db"}, []string{"e"}).
		Add(NewIP("ip", ic), []string{"e"}, []string{"scores"}).
		Add(NewSoftmaxLoss("loss"), []string{"scores", "label"}, []string{"loss"}).
		Build(ctx)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return net
}

// trainParams trains the given net for a few solver steps and returns
// copies of every parameter.
func trainParams(t *testing.T, net *Net, dag bool, width int, pool *hostpool.Pool, steps int) [][]float32 {
	t.Helper()
	net.EnableDAG(dag)
	fillTinyInputs(t, net, 99)
	ctx := NewContext(widthLauncher{w: width}, 7)
	ctx.Pool = pool
	s := NewSolver(net, ctx, SolverConfig{BaseLR: 0.01, Momentum: 0.9, WeightDecay: 0.001})
	for i := 0; i < steps; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var out [][]float32
	for _, p := range net.Params() {
		out = append(out, append([]float32(nil), p.Data.Data()...))
	}
	return out
}

func assertBitsEqual(t *testing.T, serial, dag [][]float32, label string) {
	t.Helper()
	if len(serial) != len(dag) {
		t.Fatalf("%s: param count %d vs %d", label, len(serial), len(dag))
	}
	for pi := range serial {
		for i := range serial[pi] {
			if math.Float32bits(serial[pi][i]) != math.Float32bits(dag[pi][i]) {
				t.Fatalf("%s: param %d element %d differs: %x vs %x",
					label, pi, i, math.Float32bits(serial[pi][i]), math.Float32bits(dag[pi][i]))
			}
		}
	}
}

// TestDAGInvariance is the package-level convergence-invariance gate for
// the operator DAG scheduler: on nets exercising scratch folds,
// serialization edges and the RNG chain, DAG training must produce
// bitwise-identical parameters to serial training, with and without the
// host pool.
func TestDAGInvariance(t *testing.T) {
	builders := map[string]func(testing.TB, int, int64) *Net{
		"branchy":      buildBranchyNet,
		"sharedbottom": buildSharedBottomConvNet,
		"dropbranch":   buildDropoutBranchNet,
		"chain":        buildTinyNet, // wavefront 1 → serial fallback path
	}
	pool := hostpool.New(4)
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			serial := trainParams(t, build(t, 4, 5), false, 2, nil, 4)
			dag := trainParams(t, build(t, 4, 5), true, 2, nil, 4)
			assertBitsEqual(t, serial, dag, name+"/dag")
			pooled := trainParams(t, build(t, 4, 5), true, 2, pool, 4)
			assertBitsEqual(t, serial, pooled, name+"/dag+pool")
		})
	}
}

// TestDAGStatsShapes pins the parallelism statistics of known topologies.
func TestDAGStatsShapes(t *testing.T) {
	chain := buildTinyNet(t, 2, 1)
	st, err := chain.DAGStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxWavefront != 1 || st.FwdDepth != st.Layers {
		t.Fatalf("tiny chain should be a chain, got %+v", st)
	}
	if len(st.CriticalPath) != st.Layers {
		t.Fatalf("chain critical path %v", st.CriticalPath)
	}

	branchy := buildBranchyNet(t, 2, 1)
	st, err = branchy.DAGStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxWavefront < 2 {
		t.Fatalf("branchy net reports no forward parallelism: %+v", st)
	}
	if st.MaxBwdWavefront < 2 {
		t.Fatalf("branchy net reports no backward parallelism: %+v", st)
	}
	if st.FwdDepth >= st.Layers {
		t.Fatalf("branchy depth %d should beat layer count %d", st.FwdDepth, st.Layers)
	}

	// The shared-bottom conv net must serialize conv_a/conv_b in backward
	// (non-add-once consumers) while keeping forward parallelism.
	shared := buildSharedBottomConvNet(t, 2, 1)
	d, err := shared.ensureDAG()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.folds) != 0 {
		t.Fatalf("conv consumers must not scratch-fold: %+v", d.folds)
	}
	if d.stats.MaxWavefront < 2 {
		t.Fatalf("shared-bottom net should have forward parallelism: %+v", d.stats)
	}
	// conv_b (entry 2) must precede conv_a (entry 1) in backward: edge 2→1.
	found := false
	for _, dep := range d.nodes[1].bwdDeps {
		if dep == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing serialization edge conv_b→conv_a: %+v", d.nodes[1])
	}

	// The branchy net's shared blob t folds (both consumers add-once).
	db, err := branchy.ensureDAG()
	if err != nil {
		t.Fatal(err)
	}
	foldBlobs := map[string]bool{}
	for _, g := range db.folds {
		foldBlobs[g.blob] = true
	}
	if !foldBlobs["t"] {
		t.Fatalf("blob t (relu+sigmoid consumers) should scratch-fold, folds: %+v", db.folds)
	}
}

// TestDAGShareParamsInvalidates verifies parameter sharing rebuilds the
// DAG with the owners' backward passes serialized.
func TestDAGShareParamsInvalidates(t *testing.T) {
	ctx := NewContext(HostLauncher{}, 3)
	cc := Conv(3, 3, 1, 1)
	cc.Seed = 3
	cc2 := Conv(3, 3, 1, 1)
	cc2.Seed = 4
	ic := IP(2)
	ic.Seed = 5
	net, err := NewNet("twins").
		Input("data", 2, 2, 6, 6).
		Input("label", 2).
		Add(NewConv("conv_a", cc), []string{"data"}, []string{"a"}).
		Add(NewConv("conv_b", cc2), []string{"data"}, []string{"b"}).
		Add(NewConcat("concat"), []string{"a", "b"}, []string{"c"}).
		Add(NewIP("ip", ic), []string{"c"}, []string{"scores"}).
		Add(NewSoftmaxLoss("loss"), []string{"scores", "label"}, []string{"loss"}).
		Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	d, err := net.ensureDAG()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.nodes[0].bwdDeps) != 1 { // only concat feeds conv_a's backward
		t.Fatalf("unexpected pre-share deps: %+v", d.nodes[0])
	}
	if err := net.ShareParams("conv_a", "conv_b"); err != nil {
		t.Fatal(err)
	}
	d, err = net.ensureDAG()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, dep := range d.nodes[0].bwdDeps {
		if dep == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("ShareParams did not add the conv_b→conv_a backward edge: %+v", d.nodes[0])
	}
}

// TestDAGErrorPropagates verifies a failing layer surfaces its error
// through the concurrent scheduler instead of hanging it.
func TestDAGErrorPropagates(t *testing.T) {
	net := buildBranchyNet(t, 4, 5)
	net.EnableDAG(true)
	fillTinyInputs(t, net, 99)
	// A launcher whose forked sessions fail every launch.
	ctx := NewContext(failForkLauncher{}, 7)
	if _, err := net.Forward(ctx); err == nil {
		t.Fatal("expected an error from the DAG scheduler")
	}
}

type failForkLauncher struct{}

func (failForkLauncher) BeginLayer(string) {}
func (failForkLauncher) Launch(k *simgpu.Kernel, _ int) error {
	k.Fn()
	return nil
}
func (failForkLauncher) Sync() error           { return nil }
func (failForkLauncher) Width() int            { return 1 }
func (failForkLauncher) ForkLayerSession() any { return failingLauncher{} }

type failingLauncher struct{}

func (failingLauncher) BeginLayer(string) {}
func (failingLauncher) Launch(_ *simgpu.Kernel, _ int) error {
	return fmt.Errorf("injected launch failure")
}
func (failingLauncher) Sync() error { return nil }
func (failingLauncher) Width() int  { return 1 }
