package dnn

import (
	"fmt"

	"repro/internal/kernels"
)

// DropoutLayer implements inverted dropout: at train time each element is
// zeroed with probability Ratio and survivors are scaled by 1/(1−Ratio); at
// test time it is the identity. The mask is drawn from the context RNG, so
// runs are reproducible for a fixed seed.
type DropoutLayer struct {
	baseLayer
	ratio float32
	mask  []float32
}

// NewDropout constructs a dropout layer with the given drop ratio.
func NewDropout(name string, ratio float32) *DropoutLayer {
	return &DropoutLayer{baseLayer: baseLayer{name: name, typ: "Dropout"}, ratio: ratio}
}

// Setup implements Layer.
func (l *DropoutLayer) Setup(ctx *Context, bottom, top []*Blob) error {
	if len(bottom) != 1 || len(top) != 1 {
		return fmt.Errorf("dropout %s: want 1 bottom and 1 top", l.name)
	}
	if l.ratio < 0 || l.ratio >= 1 {
		return fmt.Errorf("dropout %s: ratio %v outside [0,1)", l.name, l.ratio)
	}
	top[0].Reshape(bottom[0].Shape()...)
	l.mask = make([]float32, bottom[0].Count())
	return nil
}

// Forward implements Layer.
func (l *DropoutLayer) Forward(ctx *Context, bottom, top []*Blob) error {
	src := bottom[0].Data.Data()
	dst := top[0].Data.Data()
	if len(l.mask) != len(src) {
		// The bottom was reshaped after Setup (variable-batch serving);
		// Setup's mask length would index out of range.
		l.mask = make([]float32, len(src))
	}
	scale := 1 / (1 - l.ratio)
	phase := ctx.Phase
	rng := ctx.RNG
	k := kernels.Elementwise("dropout_fwd", l.name, len(src), 12, 2, func() {
		if phase == Train {
			for i := range src {
				if rng.Float32() < l.ratio {
					l.mask[i] = 0
				} else {
					l.mask[i] = scale
				}
				dst[i] = src[i] * l.mask[i]
			}
		} else {
			copy(dst, src)
		}
	})
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}

// Backward implements Layer.
func (l *DropoutLayer) Backward(ctx *Context, top []*Blob, propagate []bool, bottom []*Blob) error {
	if !propagate[0] {
		return nil
	}
	dtop := top[0].Diff.Data()
	dbot := bottom[0].Diff.Data()
	phase := ctx.Phase
	k := kernels.Elementwise("dropout_bwd", l.name, len(dtop), 12, 1, func() {
		if phase == Train {
			for i := range dtop {
				dbot[i] += dtop[i] * l.mask[i]
			}
		} else {
			for i := range dtop {
				dbot[i] += dtop[i]
			}
		}
	})
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}
