package dnn

import (
	"math"
	"testing"
)

func buildDropoutPair(t *testing.T, batch int) (*Net, *Blob, *Blob) {
	t.Helper()
	ctx := NewContext(HostLauncher{}, 11)
	net, err := NewNet("drop").
		Input("x", batch, 4).
		Add(NewDropout("d", 0.5), []string{"x"}, []string{"y"}).
		Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return net, net.Blob("x"), net.Blob("y")
}

// TestDropoutReshapeLargerBatch is the variable-batch serving regression:
// Setup sizes the mask once, so a bottom reshaped larger afterwards used to
// panic with index-out-of-range inside the forward kernel.
func TestDropoutReshapeLargerBatch(t *testing.T) {
	net, x, y := buildDropoutPair(t, 2)
	ctx := NewContext(HostLauncher{}, 12)

	fill := func(n int) {
		vals := make([]float32, n*4)
		for i := range vals {
			vals[i] = float32(i + 1)
		}
		copy(x.Data.Data(), vals)
	}
	fill(2)
	if _, err := net.Forward(ctx); err != nil {
		t.Fatal(err)
	}

	// Grow the batch in place, as a serving path with a larger device batch
	// would, and run a Train-phase forward: must resize the mask, not panic.
	x.Reshape(8, 4)
	y.Reshape(8, 4)
	fill(8)
	if _, err := net.Forward(ctx); err != nil {
		t.Fatal(err)
	}
	out := y.Data.Data()
	if len(out) != 32 {
		t.Fatalf("top len %d, want 32", len(out))
	}
	// Inverted dropout: every output is 0 or 2× its input.
	for i, v := range out {
		in := x.Data.Data()[i]
		if v != 0 && math.Abs(float64(v-2*in)) > 1e-6 {
			t.Fatalf("out[%d] = %v, want 0 or %v", i, v, 2*in)
		}
	}

	// Shrinking works too, and Test phase stays the identity.
	x.Reshape(1, 4)
	y.Reshape(1, 4)
	fill(1)
	ctx.Phase = Test
	if _, err := net.Forward(ctx); err != nil {
		t.Fatal(err)
	}
	for i, v := range y.Data.Data() {
		if v != x.Data.Data()[i] {
			t.Fatalf("test phase not identity at %d: %v vs %v", i, v, x.Data.Data()[i])
		}
	}
}
