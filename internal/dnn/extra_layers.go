package dnn

import (
	"fmt"

	"repro/internal/kernels"
)

// TanHLayer is the hyperbolic-tangent activation (LeNet's classic
// nonlinearity; Caffe's TanH layer).
type TanHLayer struct {
	baseLayer
}

// NewTanH constructs a tanh layer.
func NewTanH(name string) *TanHLayer {
	return &TanHLayer{baseLayer{name: name, typ: "TanH"}}
}

// Setup implements Layer.
func (l *TanHLayer) Setup(ctx *Context, bottom, top []*Blob) error {
	if len(bottom) != 1 || len(top) != 1 {
		return fmt.Errorf("tanh %s: want 1 bottom and 1 top", l.name)
	}
	top[0].Reshape(bottom[0].Shape()...)
	return nil
}

// Forward implements Layer.
func (l *TanHLayer) Forward(ctx *Context, bottom, top []*Blob) error {
	src := bottom[0].Data.Data()
	dst := top[0].Data.Data()
	k := kernels.Elementwise("tanh_fwd", l.name, len(src), 8, 6, func() {
		for i, v := range src {
			dst[i] = tanh32(v)
		}
	})
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}

// Backward implements Layer: dx += dy·(1 − y²).
func (l *TanHLayer) Backward(ctx *Context, top []*Blob, propagate []bool, bottom []*Blob) error {
	if !propagate[0] {
		return nil
	}
	y := top[0].Data.Data()
	dy := top[0].Diff.Data()
	dx := bottom[0].Diff.Data()
	k := kernels.Elementwise("tanh_bwd", l.name, len(y), 12, 3, func() {
		for i, v := range y {
			dx[i] += dy[i] * (1 - v*v)
		}
	})
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}

// ELULayer is the exponential linear unit (Caffe's ELU layer):
// y = x for x > 0, α(eˣ−1) otherwise.
type ELULayer struct {
	baseLayer
	alpha float32
}

// NewELU constructs an ELU layer; alpha ≤ 0 defaults to 1.
func NewELU(name string, alpha float32) *ELULayer {
	if alpha <= 0 {
		alpha = 1
	}
	return &ELULayer{baseLayer: baseLayer{name: name, typ: "ELU"}, alpha: alpha}
}

// Setup implements Layer.
func (l *ELULayer) Setup(ctx *Context, bottom, top []*Blob) error {
	if len(bottom) != 1 || len(top) != 1 {
		return fmt.Errorf("elu %s: want 1 bottom and 1 top", l.name)
	}
	top[0].Reshape(bottom[0].Shape()...)
	return nil
}

// Forward implements Layer.
func (l *ELULayer) Forward(ctx *Context, bottom, top []*Blob) error {
	src := bottom[0].Data.Data()
	dst := top[0].Data.Data()
	alpha := l.alpha
	k := kernels.Elementwise("elu_fwd", l.name, len(src), 8, 4, func() {
		for i, v := range src {
			if v > 0 {
				dst[i] = v
			} else {
				dst[i] = alpha * (exp32(v) - 1)
			}
		}
	})
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}

// Backward implements Layer: dx += dy for x > 0, dy·(y + α) otherwise.
func (l *ELULayer) Backward(ctx *Context, top []*Blob, propagate []bool, bottom []*Blob) error {
	if !propagate[0] {
		return nil
	}
	x := bottom[0].Data.Data()
	y := top[0].Data.Data()
	dy := top[0].Diff.Data()
	dx := bottom[0].Diff.Data()
	alpha := l.alpha
	k := kernels.Elementwise("elu_bwd", l.name, len(x), 16, 3, func() {
		for i, v := range x {
			if v > 0 {
				dx[i] += dy[i]
			} else {
				dx[i] += dy[i] * (y[i] + alpha)
			}
		}
	})
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}

// SoftmaxLayer is the standalone (non-loss) softmax over each sample's
// channel axis, like Caffe's Softmax layer (used in inference heads).
type SoftmaxLayer struct {
	baseLayer
	n, c int
}

// NewSoftmax constructs a standalone softmax layer.
func NewSoftmax(name string) *SoftmaxLayer {
	return &SoftmaxLayer{baseLayer: baseLayer{name: name, typ: "Softmax"}}
}

// Setup implements Layer.
func (l *SoftmaxLayer) Setup(ctx *Context, bottom, top []*Blob) error {
	if len(bottom) != 1 || len(top) != 1 {
		return fmt.Errorf("softmax %s: want 1 bottom and 1 top", l.name)
	}
	l.n = bottom[0].Num()
	l.c = bottom[0].SampleSize()
	top[0].Reshape(bottom[0].Shape()...)
	return nil
}

// Forward implements Layer.
func (l *SoftmaxLayer) Forward(ctx *Context, bottom, top []*Blob) error {
	src := bottom[0].Data.Data()
	dst := top[0].Data.Data()
	k := kernels.Elementwise("softmax_fwd", l.name, len(src), 12, 6, func() {
		for i := 0; i < l.n; i++ {
			row := src[i*l.c : (i+1)*l.c]
			out := dst[i*l.c : (i+1)*l.c]
			m := row[0]
			for _, v := range row {
				if v > m {
					m = v
				}
			}
			sum := float32(0)
			for j, v := range row {
				e := exp32(v - m)
				out[j] = e
				sum += e
			}
			inv := 1 / sum
			for j := range out {
				out[j] *= inv
			}
		}
	})
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}

// Backward implements Layer: dx_j += y_j·(dy_j − Σ_k dy_k·y_k).
func (l *SoftmaxLayer) Backward(ctx *Context, top []*Blob, propagate []bool, bottom []*Blob) error {
	if !propagate[0] {
		return nil
	}
	y := top[0].Data.Data()
	dy := top[0].Diff.Data()
	dx := bottom[0].Diff.Data()
	k := kernels.Elementwise("softmax_bwd", l.name, len(y), 16, 4, func() {
		for i := 0; i < l.n; i++ {
			base := i * l.c
			dot := float32(0)
			for j := 0; j < l.c; j++ {
				dot += dy[base+j] * y[base+j]
			}
			for j := 0; j < l.c; j++ {
				dx[base+j] += y[base+j] * (dy[base+j] - dot)
			}
		}
	})
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}

// EltwiseOp selects the Eltwise layer's operation.
type EltwiseOp int

// Eltwise operations (Caffe supports PROD, SUM, MAX).
const (
	EltwiseSum EltwiseOp = iota
	EltwiseProd
	EltwiseMax
)

// EltwiseLayer combines same-shaped bottoms element-wise — the residual-sum
// building block.
type EltwiseLayer struct {
	baseLayer
	op     EltwiseOp
	coeffs []float32 // SUM only; nil = all ones
	argmax []int32   // MAX backward routing
}

// NewEltwise constructs an eltwise layer; coeffs applies to SUM only.
func NewEltwise(name string, op EltwiseOp, coeffs []float32) *EltwiseLayer {
	return &EltwiseLayer{baseLayer: baseLayer{name: name, typ: "Eltwise"}, op: op, coeffs: coeffs}
}

// Setup implements Layer.
func (l *EltwiseLayer) Setup(ctx *Context, bottom, top []*Blob) error {
	if len(bottom) < 2 || len(top) != 1 {
		return fmt.Errorf("eltwise %s: want ≥2 bottoms and 1 top", l.name)
	}
	for _, b := range bottom[1:] {
		if b.Count() != bottom[0].Count() {
			return fmt.Errorf("eltwise %s: bottom size mismatch", l.name)
		}
	}
	if l.coeffs != nil && len(l.coeffs) != len(bottom) {
		return fmt.Errorf("eltwise %s: %d coeffs for %d bottoms", l.name, len(l.coeffs), len(bottom))
	}
	top[0].Reshape(bottom[0].Shape()...)
	if l.op == EltwiseMax {
		l.argmax = make([]int32, bottom[0].Count())
	}
	return nil
}

func (l *EltwiseLayer) coeff(i int) float32 {
	if l.coeffs == nil {
		return 1
	}
	return l.coeffs[i]
}

// Forward implements Layer.
func (l *EltwiseLayer) Forward(ctx *Context, bottom, top []*Blob) error {
	dst := top[0].Data.Data()
	srcs := make([][]float32, len(bottom))
	for i, b := range bottom {
		srcs[i] = b.Data.Data()
	}
	k := kernels.Elementwise("eltwise_fwd", l.name, len(dst)*len(bottom), 8, 2, func() {
		switch l.op {
		case EltwiseSum:
			for j := range dst {
				s := float32(0)
				for i, src := range srcs {
					s += l.coeff(i) * src[j]
				}
				dst[j] = s
			}
		case EltwiseProd:
			for j := range dst {
				p := float32(1)
				for _, src := range srcs {
					p *= src[j]
				}
				dst[j] = p
			}
		case EltwiseMax:
			for j := range dst {
				best := srcs[0][j]
				arg := int32(0)
				for i := 1; i < len(srcs); i++ {
					if srcs[i][j] > best {
						best = srcs[i][j]
						arg = int32(i)
					}
				}
				dst[j] = best
				l.argmax[j] = arg
			}
		}
	})
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}

// Backward implements Layer.
func (l *EltwiseLayer) Backward(ctx *Context, top []*Blob, propagate []bool, bottom []*Blob) error {
	dy := top[0].Diff.Data()
	y := top[0].Data.Data()
	srcs := make([][]float32, len(bottom))
	for i, b := range bottom {
		srcs[i] = b.Data.Data()
	}
	for bi := range bottom {
		if !propagate[bi] {
			continue
		}
		dx := bottom[bi].Diff.Data()
		bi := bi
		k := kernels.Elementwise("eltwise_bwd", l.name, len(dy), 12, 2, func() {
			switch l.op {
			case EltwiseSum:
				c := l.coeff(bi)
				for j, g := range dy {
					dx[j] += c * g
				}
			case EltwiseProd:
				for j, g := range dy {
					v := srcs[bi][j]
					if v != 0 {
						dx[j] += g * y[j] / v
					} else {
						// recompute the product of the others
						p := float32(1)
						for oi, src := range srcs {
							if oi != bi {
								p *= src[j]
							}
						}
						dx[j] += g * p
					}
				}
			case EltwiseMax:
				for j, g := range dy {
					if l.argmax[j] == int32(bi) {
						dx[j] += g
					}
				}
			}
		})
		if err := ctx.Dispatch(k, bi); err != nil {
			return err
		}
	}
	return ctx.Barrier()
}

// FlattenLayer reshapes (N, C, H, W) to (N, C·H·W) — a pure view layer, one
// copy kernel each way (Caffe shares data; we keep the no-in-place
// invariant).
type FlattenLayer struct {
	baseLayer
}

// NewFlatten constructs a flatten layer.
func NewFlatten(name string) *FlattenLayer {
	return &FlattenLayer{baseLayer{name: name, typ: "Flatten"}}
}

// Setup implements Layer.
func (l *FlattenLayer) Setup(ctx *Context, bottom, top []*Blob) error {
	if len(bottom) != 1 || len(top) != 1 {
		return fmt.Errorf("flatten %s: want 1 bottom and 1 top", l.name)
	}
	top[0].Reshape(bottom[0].Num(), bottom[0].SampleSize())
	return nil
}

// Forward implements Layer.
func (l *FlattenLayer) Forward(ctx *Context, bottom, top []*Blob) error {
	src := bottom[0].Data.Data()
	dst := top[0].Data.Data()
	k := kernels.AxpyKernel("flatten_fwd", l.name, len(src), func() { copy(dst, src) })
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}

// Backward implements Layer.
func (l *FlattenLayer) Backward(ctx *Context, top []*Blob, propagate []bool, bottom []*Blob) error {
	if !propagate[0] {
		return nil
	}
	dy := top[0].Diff.Data()
	dx := bottom[0].Diff.Data()
	k := kernels.AxpyKernel("flatten_bwd", l.name, len(dy), func() {
		for i, v := range dy {
			dx[i] += v
		}
	})
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}
