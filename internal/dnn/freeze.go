package dnn

import (
	"fmt"
	"sort"

	"repro/internal/hostpool"
	"repro/internal/tensor"
)

// This file is the freeze path of the train→freeze→serve pipeline: Freeze
// turns a trained Net into a forward-only FrozenNet backed by a ForwardPlan.
// Freezing drops everything inference does not need — loss and accuracy
// layers (and therefore the label/similarity inputs only they consume),
// dropout layers (identity at test time, so their tops alias their bottoms
// and not even the copy kernel is launched), and, via Compact, the gradient
// half of every blob. What remains is exactly the Test-phase forward
// kernel stream of the remaining layers, so frozen outputs are bitwise
// identical to the training net run in the Test phase — the inference face
// of the repo's convergence-invariance contract.
//
// The plan reuses the operator DAG machinery of dag.go: independent layers
// (inception branches, Siamese towers) dispatch as concurrent wavefronts
// whenever the launcher can fork layer sessions, with the same serial
// fallback and profiling gate as training. Forward-only bit-identity needs
// no fold-order bookkeeping: every top has one producer and nothing
// accumulates.

// frozenStep is one layer invocation of a ForwardPlan: the layer object is
// shared with the source net (weights are not copied), the bottoms are
// resolved through any dropout aliases.
type frozenStep struct {
	layer   Layer
	bottomB []*Blob
	topB    []*Blob
	key     string // "<layer>/fwd", the scheduler/profiling key
}

// ForwardPlan is the frozen forward program: the surviving layer steps in
// topological order plus the blob namespace and dependency DAG they run
// over. A plan is immutable after Freeze.
type ForwardPlan struct {
	name    string
	steps   []frozenStep
	blobs   map[string]*Blob
	inputs  []string // external inputs still consumed, sorted
	outputs []string // terminal tops, sorted
	dag     *layerDAG
}

// FrozenNet is the ForwardPlan-backed forward-only executor produced by
// Freeze. It shares layer objects and parameter storage with the source
// net; run it through any Launcher exactly like a Net, but only forward.
// A FrozenNet forces the Test phase internally and draws nothing from the
// context RNG, so outputs depend only on the weights and the inputs.
type FrozenNet struct {
	plan  *ForwardPlan
	dagOn bool
}

// Freeze builds a forward-only executor from a built net: loss and
// accuracy layers are stripped, dropout layers fold to identity (their
// tops alias their bottoms), and inputs consumed only by stripped layers
// (labels, pair similarity) disappear from the plan. The frozen net shares
// parameters and activation storage with the source — freezing copies no
// weights — and inherits the net's DAG setting.
func Freeze(n *Net) (*FrozenNet, error) {
	if !n.built {
		return nil, fmt.Errorf("dnn: freeze %s: net not built", n.name)
	}
	p := &ForwardPlan{name: n.name, blobs: map[string]*Blob{}}
	// alias maps a dropped layer's top to the live blob its consumers
	// should read instead (transitive, for stacked dropouts).
	alias := map[string]string{}
	resolve := func(name string) string {
		for {
			a, ok := alias[name]
			if !ok {
				return name
			}
			name = a
		}
	}
	var specs []dagSpec
	consumed := map[string]bool{}
	produced := map[string]bool{}
	for i := range n.entries {
		e := &n.entries[i]
		if _, isLoss := e.layer.(LossLayer); isLoss {
			continue
		}
		if _, isAcc := e.layer.(*AccuracyLayer); isAcc {
			continue
		}
		if _, isDrop := e.layer.(*DropoutLayer); isDrop && len(e.bottoms) == 1 && len(e.tops) == 1 {
			// Identity at test time: downstream consumers read the bottom
			// directly and the copy kernel never launches. Identical bytes,
			// one less kernel.
			alias[e.tops[0]] = resolve(e.bottoms[0])
			continue
		}
		st := frozenStep{layer: e.layer, key: e.layer.Name() + "/fwd"}
		bottoms := make([]string, len(e.bottoms))
		for bi, name := range e.bottoms {
			rn := resolve(name)
			bottoms[bi] = rn
			blob := n.blobs[rn]
			if blob == nil {
				return nil, fmt.Errorf("dnn: freeze %s: layer %s bottom %q unresolved", n.name, e.layer.Name(), rn)
			}
			st.bottomB = append(st.bottomB, blob)
			p.blobs[rn] = blob
			consumed[rn] = true
		}
		for _, name := range e.tops {
			blob := n.blobs[name]
			st.topB = append(st.topB, blob)
			p.blobs[name] = blob
			produced[name] = true
		}
		p.steps = append(p.steps, st)
		specs = append(specs, dagSpec{Name: e.layer.Name(), Bottoms: bottoms, Tops: e.tops})
	}
	if len(p.steps) == 0 {
		return nil, fmt.Errorf("dnn: freeze %s: no layers survive freezing", n.name)
	}
	for name := range n.inputs {
		if consumed[name] {
			p.inputs = append(p.inputs, name)
		}
	}
	sort.Strings(p.inputs)
	for name := range produced {
		if !consumed[name] {
			p.outputs = append(p.outputs, name)
		}
	}
	sort.Strings(p.outputs)
	dag, err := buildLayerDAG(specs, n.inputs, nil)
	if err != nil {
		return nil, fmt.Errorf("dnn: freeze %s: dag: %w", n.name, err)
	}
	p.dag = dag
	return &FrozenNet{plan: p, dagOn: n.dagOn}, nil
}

// Name returns the source net's name.
func (f *FrozenNet) Name() string { return f.plan.name }

// Inputs returns the plan's external input blob names, sorted. Inputs the
// training net fed only to stripped layers (labels) are absent.
func (f *FrozenNet) Inputs() []string { return append([]string(nil), f.plan.inputs...) }

// Outputs returns the plan's terminal blob names, sorted: every top no
// surviving layer consumes (e.g. "scores"; the Siamese pair "feat",
// "feat_p").
func (f *FrozenNet) Outputs() []string { return append([]string(nil), f.plan.outputs...) }

// Blob returns the named plan blob, or nil.
func (f *FrozenNet) Blob(name string) *Blob { return f.plan.blobs[name] }

// Batch returns the leading dimension of the first input blob — the device
// batch size every Forward processes.
func (f *FrozenNet) Batch() int {
	if len(f.plan.inputs) == 0 {
		return 0
	}
	return f.plan.blobs[f.plan.inputs[0]].Num()
}

// EnableDAG switches the frozen executor between serial step order and the
// operator DAG wavefront scheduler (inherited from the source net at
// Freeze time). Outputs are bitwise identical either way.
func (f *FrozenNet) EnableDAG(on bool) { f.dagOn = on }

// DAGStats returns the forward-parallelism statistics of the frozen plan.
func (f *FrozenNet) DAGStats() DAGStats { return f.plan.dag.stats }

// SetInput copies values into the named input blob, exactly like
// Net.SetInputData.
func (f *FrozenNet) SetInput(name string, values []float32) error {
	b := f.plan.blobs[name]
	if b == nil {
		return fmt.Errorf("dnn: frozen %s: no blob %q", f.plan.name, name)
	}
	ok := false
	for _, in := range f.plan.inputs {
		if in == name {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("dnn: frozen %s: blob %q is not an input", f.plan.name, name)
	}
	if len(values) != b.Count() {
		return fmt.Errorf("dnn: frozen %s: input %q wants %d values, got %d", f.plan.name, name, b.Count(), len(values))
	}
	copy(b.Data.Data(), values)
	return nil
}

// Output returns the data of the named output blob (any plan blob resolves,
// so intermediate activations can be inspected too).
func (f *FrozenNet) Output(name string) ([]float32, error) {
	b := f.plan.blobs[name]
	if b == nil {
		return nil, fmt.Errorf("dnn: frozen %s: no blob %q", f.plan.name, name)
	}
	return b.Data.Data(), nil
}

// StageInputs models the host→device transfer of every plan input through
// the launcher's dedicated copy stream when it has one, falling back to the
// default-stream upload — Net.StageInputs for the frozen plan. Dropped
// inputs (labels) transfer nothing, exactly as a serving path should.
func (f *FrozenNet) StageInputs(ctx *Context) error {
	st, stOK := ctx.L.(InputStager)
	up, upOK := ctx.L.(Uploader)
	for _, name := range f.plan.inputs {
		b := f.plan.blobs[name]
		n := int64(b.Count()) * 4
		var err error
		switch {
		case stOK:
			err = st.StageInput(n)
		case upOK:
			err = up.UploadBytes(n)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Forward runs the frozen plan. The context's phase is ignored — a frozen
// net always executes Test-phase semantics — and the context RNG is never
// drawn. With DAG enabled and a session-forking launcher, independent
// layers dispatch as concurrent wavefronts; outputs are bitwise identical
// to the serial step order.
func (f *FrozenNet) Forward(ctx *Context) error {
	fctx := &Context{L: ctx.L, Phase: Test, RNG: ctx.RNG, Compute: ctx.Compute, Pool: ctx.Pool}
	if f.dagOn && f.dagRunnable(fctx) {
		return f.forwardDAG(fctx)
	}
	return f.forwardSerial(fctx)
}

// forwardSerial executes the steps in plan order — the numeric reference
// the wavefront path reproduces bit for bit.
func (f *FrozenNet) forwardSerial(ctx *Context) error {
	for i := range f.plan.steps {
		st := &f.plan.steps[i]
		ctx.Begin(st.key)
		if err := st.layer.Forward(ctx, st.bottomB, st.topB); err != nil {
			return fmt.Errorf("dnn: frozen %s: forward %s: %w", f.plan.name, st.layer.Name(), err)
		}
	}
	return ctx.drainChains()
}

// dagRunnable mirrors Net.dagRunnable for the forward-only plan: the DAG
// must offer parallelism, the launcher must fork sessions, and a gating
// launcher (GLP4NN's runtime) must have analyzed every step — until then
// the plan runs serially, so profiling iterations match a serial run.
func (f *FrozenNet) dagRunnable(ctx *Context) bool {
	d := f.plan.dag
	if d.fwdChain {
		return false
	}
	if _, ok := ctx.L.(LayerSessionForker); !ok {
		return false
	}
	if gate, ok := ctx.L.(DAGGate); ok {
		keys := make([]string, len(f.plan.steps))
		for i := range f.plan.steps {
			keys[i] = f.plan.steps[i].key
		}
		if !gate.DAGReady(keys) {
			return false
		}
	}
	return true
}

// forwardDAG is the wavefront scheduler of dag.go specialized to the
// forward-only plan: dependency counters, ready steps dispatched in
// ascending plan order onto detached hostpool tasks, each on a forked
// launcher session. No scratch folds — forward writes are disjoint.
func (f *FrozenNet) forwardDAG(ctx *Context) error {
	forker := ctx.L.(LayerSessionForker) // checked by dagRunnable
	d := f.plan.dag
	nSteps := len(f.plan.steps)
	deps := make([]int, nSteps)
	for i := range d.nodes {
		deps[i] = len(d.nodes[i].fwdDeps)
	}
	capN := d.stats.MaxWavefront
	if c, ok := ctx.L.(ConcurrencyCapper); ok {
		if m := c.LayerConcurrencyCap(); m > 0 && m < capN {
			capN = m
		}
	}
	if capN < 1 {
		capN = 1
	}
	var ready []int
	push := func(id int) {
		at := sort.SearchInts(ready, id)
		ready = append(ready, 0)
		copy(ready[at+1:], ready[at:])
		ready[at] = id
	}
	for i := 0; i < nSteps; i++ {
		if deps[i] == 0 {
			push(i)
		}
	}
	group := hostpool.NewGroup(nSteps)
	running, finished := 0, 0
	var firstErr error
	for finished < nSteps {
		if firstErr == nil {
			for len(ready) > 0 && running < capN {
				id := ready[0]
				ready = ready[1:]
				running++
				group.Go(id, func() error { return f.runStep(ctx, forker, id) })
			}
		}
		if running == 0 {
			if firstErr == nil {
				firstErr = fmt.Errorf("dnn: frozen %s: dag scheduler stalled with %d/%d steps done",
					f.plan.name, finished, nSteps)
			}
			break
		}
		res := group.Next()
		running--
		finished++
		if res.Err != nil {
			if firstErr == nil {
				firstErr = res.Err
			}
			continue
		}
		if firstErr != nil {
			continue // drain in-flight steps, dispatch nothing new
		}
		for _, s := range d.nodes[res.ID].fwdSuccs {
			if deps[s]--; deps[s] == 0 {
				push(s)
			}
		}
	}
	return firstErr
}

// runStep executes one frozen step on a private context: a forked launcher
// session and a private chain set, like Net.runDAGNode.
func (f *FrozenNet) runStep(ctx *Context, forker LayerSessionForker, id int) error {
	st := &f.plan.steps[id]
	sub, ok := forker.ForkLayerSession().(Launcher)
	if !ok {
		return fmt.Errorf("dnn: frozen %s: launcher %T forked a session that is not a Launcher", f.plan.name, ctx.L)
	}
	nctx := &Context{L: sub, Phase: Test, RNG: ctx.RNG, Compute: ctx.Compute, Pool: ctx.Pool}
	nctx.Begin(st.key)
	var err error
	if err = st.layer.Forward(nctx, st.bottomB, st.topB); err != nil {
		err = fmt.Errorf("dnn: frozen %s: forward %s: %w", f.plan.name, st.layer.Name(), err)
	}
	if derr := nctx.drainChains(); derr != nil && err == nil {
		err = fmt.Errorf("dnn: frozen %s: %s chains: %w", f.plan.name, st.layer.Name(), derr)
	}
	return err
}

// Compact releases the gradient storage of every plan blob and parameter —
// the memory a served model no longer needs. Irreversible, and shared with
// the source net: after Compact the source must not run Backward or a
// solver update. Returns the number of float32 gradient elements freed.
func (f *FrozenNet) Compact() int {
	freed := 0
	drop := func(b *Blob) {
		if b.Diff != nil && b.Diff.Len() > 0 {
			freed += b.Diff.Len()
			b.Diff = tensor.New(0)
		}
	}
	for _, b := range f.plan.blobs {
		drop(b)
	}
	for i := range f.plan.steps {
		for _, p := range f.plan.steps[i].layer.Params() {
			drop(p)
		}
	}
	return freed
}
