package dnn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// buildServeNet is a tiny classifier with the layers freezing must handle:
// dropout (folds to identity), a loss layer (stripped, taking the label
// input with it) and an accuracy layer (stripped).
func buildServeNet(t *testing.T, batch int, seed int64) *Net {
	t.Helper()
	ctx := NewContext(HostLauncher{}, seed)
	cc := Conv(4, 3, 1, 1)
	cc.Seed = seed
	ic := IP(3)
	ic.Seed = seed
	net, err := NewNet("serve-tiny").
		Input("data", batch, 2, 8, 8).
		Input("label", batch).
		Add(NewConv("conv1", cc), []string{"data"}, []string{"c1"}).
		Add(NewReLU("relu1"), []string{"c1"}, []string{"r1"}).
		Add(NewDropout("drop1", 0.5), []string{"r1"}, []string{"d1"}).
		Add(NewIP("ip1", ic), []string{"d1"}, []string{"scores"}).
		Add(NewSoftmaxLoss("loss"), []string{"scores", "label"}, []string{"loss"}).
		Add(NewAccuracy("acc"), []string{"scores", "label"}, []string{"acc"}).
		Build(ctx)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return net
}

func captureBits(t *testing.T, b *Blob) []uint32 {
	t.Helper()
	data := b.Data.Data()
	bits := make([]uint32, len(data))
	for i, v := range data {
		bits[i] = math.Float32bits(v)
	}
	return bits
}

func TestFreezeStripsTrainingOnlyPieces(t *testing.T) {
	net := buildServeNet(t, 4, 401)
	fz, err := Freeze(net)
	if err != nil {
		t.Fatal(err)
	}
	if got := fz.Inputs(); len(got) != 1 || got[0] != "data" {
		t.Fatalf("inputs = %v, want [data] (label feeds only stripped layers)", got)
	}
	if got := fz.Outputs(); len(got) != 1 || got[0] != "scores" {
		t.Fatalf("outputs = %v, want [scores]", got)
	}
	if fz.Batch() != 4 {
		t.Fatalf("batch = %d, want 4", fz.Batch())
	}
	// The dropout layer folded away: its top must not be a plan blob.
	if fz.Blob("d1") != nil {
		t.Fatal("dropout top survived freezing")
	}
	for _, st := range fz.plan.steps {
		if _, isDrop := st.layer.(*DropoutLayer); isDrop {
			t.Fatal("dropout step survived freezing")
		}
		if _, isLoss := st.layer.(LossLayer); isLoss {
			t.Fatal("loss step survived freezing")
		}
	}
	// The IP layer now reads the dropout's bottom directly.
	last := fz.plan.steps[len(fz.plan.steps)-1]
	if last.layer.Name() != "ip1" || last.bottomB[0] != net.Blob("r1") {
		t.Fatalf("ip1 bottom not aliased through the folded dropout")
	}
}

func TestFreezeRequiresBuiltNet(t *testing.T) {
	if _, err := Freeze(&Net{name: "raw"}); err == nil {
		t.Fatal("unbuilt net accepted")
	}
}

// TestFrozenForwardMatchesTestPhase: the frozen net's outputs are bitwise
// the Test-phase outputs of the training net, even when the frozen forward
// runs under a Train-phase context with a perturbed RNG (frozen nets force
// Test and never draw).
func TestFrozenForwardMatchesTestPhase(t *testing.T) {
	net := buildServeNet(t, 4, 402)
	fillTinyInputs(t, net, 403)

	ctx := NewContext(HostLauncher{}, 404)
	ctx.Phase = Test
	if _, err := net.Forward(ctx); err != nil {
		t.Fatal(err)
	}
	want := captureBits(t, net.Blob("scores"))

	fz, err := Freeze(net)
	if err != nil {
		t.Fatal(err)
	}
	fctx := NewContext(HostLauncher{}, 999) // Train phase, different seed
	fctx.RNG.Float32()                      // perturb the RNG position
	net.Blob("scores").Data.Zero()
	if err := fz.Forward(fctx); err != nil {
		t.Fatal(err)
	}
	got := captureBits(t, net.Blob("scores"))
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("scores[%d]: frozen %08x vs test-phase %08x", i, got[i], want[i])
		}
	}
}

func TestFrozenSetInputAndOutput(t *testing.T) {
	net := buildServeNet(t, 2, 405)
	fz, err := Freeze(net)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float32, net.Blob("data").Count())
	rng := rand.New(rand.NewSource(406))
	for i := range vals {
		vals[i] = float32(rng.NormFloat64())
	}
	if err := fz.SetInput("data", vals); err != nil {
		t.Fatal(err)
	}
	if err := fz.SetInput("data", vals[:3]); err == nil {
		t.Fatal("short input accepted")
	}
	if err := fz.SetInput("label", []float32{0, 1}); err == nil {
		t.Fatal("non-input blob accepted")
	}
	if err := fz.SetInput("nope", nil); err == nil {
		t.Fatal("unknown blob accepted")
	}
	if err := fz.Forward(NewContext(HostLauncher{}, 1)); err != nil {
		t.Fatal(err)
	}
	out, err := fz.Output("scores")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2*3 {
		t.Fatalf("scores len %d, want 6", len(out))
	}
	if _, err := fz.Output("nope"); err == nil {
		t.Fatal("unknown output accepted")
	}
}

// TestFrozenDAGMatchesSerial: the wavefront dispatch path produces bitwise
// the serial plan order's outputs (tiny net, but it exercises the forked
// sessions and dependency counters; the four real workloads are covered in
// internal/models).
func TestFrozenDAGMatchesSerial(t *testing.T) {
	net := buildServeNet(t, 4, 407)
	fillTinyInputs(t, net, 408)
	fz, err := Freeze(net)
	if err != nil {
		t.Fatal(err)
	}

	fz.EnableDAG(false)
	if err := fz.Forward(NewContext(HostLauncher{}, 1)); err != nil {
		t.Fatal(err)
	}
	want := captureBits(t, net.Blob("scores"))

	net.Blob("scores").Data.Zero()
	fz.EnableDAG(true)
	if err := fz.Forward(NewContext(HostLauncher{}, 1)); err != nil {
		t.Fatal(err)
	}
	got := captureBits(t, net.Blob("scores"))
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("scores[%d]: dag %08x vs serial %08x", i, got[i], want[i])
		}
	}
}

func TestFrozenCompactDropsGradients(t *testing.T) {
	net := buildServeNet(t, 4, 409)
	fillTinyInputs(t, net, 410)
	fz, err := Freeze(net)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(HostLauncher{}, 1)
	if err := fz.Forward(ctx); err != nil {
		t.Fatal(err)
	}
	want := captureBits(t, net.Blob("scores"))

	if freed := fz.Compact(); freed == 0 {
		t.Fatal("Compact freed nothing")
	}
	if fz.Compact() != 0 {
		t.Fatal("second Compact freed storage again")
	}
	for _, name := range []string{"data", "scores"} {
		if d := fz.Blob(name).Diff; d.Len() != 0 {
			t.Fatalf("%s diff not compacted: %d elems", name, d.Len())
		}
	}
	for _, p := range net.Params() {
		if fz.Blob(p.Name) == nil && p.Diff.Len() != 0 {
			t.Fatalf("param %s diff not compacted", p.Name)
		}
	}
	// Forward still works on the compacted plan, bit for bit.
	net.Blob("scores").Data.Zero()
	if err := fz.Forward(ctx); err != nil {
		t.Fatal(err)
	}
	got := captureBits(t, net.Blob("scores"))
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("scores[%d] changed after Compact", i)
		}
	}
}

// TestFrozenLoadedWeights: a frozen twin restored from a weights snapshot
// answers bitwise like the original — the save → load → freeze serving
// path.
func TestFrozenLoadedWeights(t *testing.T) {
	net := buildServeNet(t, 2, 411)
	fillTinyInputs(t, net, 412)
	ctx := NewContext(HostLauncher{}, 1)
	ctx.Phase = Test
	if _, err := net.Forward(ctx); err != nil {
		t.Fatal(err)
	}
	want := captureBits(t, net.Blob("scores"))

	var buf bytes.Buffer
	if err := net.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	twin := buildServeNet(t, 2, 777)
	if err := twin.LoadWeights(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	fz, err := Freeze(twin)
	if err != nil {
		t.Fatal(err)
	}
	data := net.Blob("data").Data.Data()
	if err := fz.SetInput("data", data); err != nil {
		t.Fatal(err)
	}
	if err := fz.Forward(NewContext(HostLauncher{}, 2)); err != nil {
		t.Fatal(err)
	}
	got := captureBits(t, twin.Blob("scores"))
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("scores[%d]: loaded-frozen %08x vs original %08x", i, got[i], want[i])
		}
	}
	if !tensor.Equal(net.Blob("scores").Data, twin.Blob("scores").Data) {
		t.Fatal("tensor.Equal disagrees with bitwise capture")
	}
}
