package dnn

import (
	"fmt"

	"repro/internal/tensor"
)

// This file is the operator-fusion pass: collapsing a GEMM layer's separate
// output passes (the gemmk bias rank-one update, the relu_fwd elementwise
// kernel) into the GEMM's fused epilogue (tensor.GemmEpilogue), applied to
// each C row segment while it is still cache hot. Three kernel launches and
// two full output-tensor round trips become one launch with zero extra
// traffic.
//
// The numeric contract (why fusion is convergence-invariant):
//
//   - The epilogue is elementwise and runs exactly once per output element,
//     on exactly the value the separate pass would have read — so the fused
//     result is bitwise identical by construction (see tensor.GemmEpilogue).
//   - Conv bias replicates the separate gemmk pass's av==0 screening: a
//     zero bias channel is skipped rather than added, because -0 + (+0) is
//     +0 and would flip the sign bit of negative-zero outputs. IP bias adds
//     unconditionally, because its separate pass's av (the ones vector) is
//     never zero; 1·b[j] is bitwise b[j], so the add is the same operation.
//   - A fused ReLU co-writes max(0, x) into the activation's top while the
//     conv top keeps the exact pre-activation x — every blob holds exactly
//     the bytes it holds unfused, so ReLU backward (which masks on its
//     bottom's data) and every other consumer are untouched.
//   - Ordering: the fused activation's Forward becomes a no-op, but the net
//     still executes it after the producer (its bottom's one producer —
//     serial order and DAG edges both guarantee that), and the producer's
//     barrier retires the epilogue writes first. No consumer can observe a
//     half-written top.
//
// Fusion is opt-in (Net.EnableFusion), like EnableDAG: profiling-oriented
// tests and experiments that pin the unfused kernel stream (im2col → sgemm
// → gemmk) keep seeing it by default.

// FusedSite is one GEMM layer whose separate output passes collapse into
// its fused epilogue.
type FusedSite struct {
	// Layer is the producing GEMM layer (conv or ip).
	Layer string
	// Kind is "conv+bias", "conv+bias+relu", "conv+relu" or "ip+bias".
	Kind string
	// With names the fused-in activation layer; "" for bias-only sites.
	With string
}

func (s FusedSite) String() string {
	if s.With != "" {
		return fmt.Sprintf("%s[%s←%s]", s.Layer, s.Kind, s.With)
	}
	return fmt.Sprintf("%s[%s]", s.Layer, s.Kind)
}

// FusionPlan detects the fusable sites of a built net:
//
//   - every im2col-engine ConvLayer with a bias term fuses the bias; if the
//     conv's top is consumed by exactly one layer and that layer is a ReLU,
//     the activation fuses too (winograd convs keep their own pipeline);
//   - every IPLayer with a bias term fuses the bias.
//
// The plan reports what EnableFusion(true) would activate; it never
// mutates the net.
func (n *Net) FusionPlan() []FusedSite {
	if !n.built {
		return nil
	}
	var sites []FusedSite
	for i := range n.entries {
		e := &n.entries[i]
		switch l := e.layer.(type) {
		case *ConvLayer:
			if l.cfg.Engine == "winograd" {
				continue
			}
			relu := n.soleReLUConsumer(e.tops[0])
			switch {
			case l.bias != nil && relu != nil:
				sites = append(sites, FusedSite{Layer: l.name, Kind: "conv+bias+relu", With: relu.name})
			case l.bias != nil:
				sites = append(sites, FusedSite{Layer: l.name, Kind: "conv+bias"})
			case relu != nil:
				sites = append(sites, FusedSite{Layer: l.name, Kind: "conv+relu", With: relu.name})
			}
		case *IPLayer:
			if l.bias != nil {
				sites = append(sites, FusedSite{Layer: l.name, Kind: "ip+bias"})
			}
		}
	}
	return sites
}

// soleReLUConsumer returns the ReLU layer that is blob's only consumer, or
// nil. Sole consumption keeps the pairing unambiguous: with several
// consumers the blob is a fan-out point and the activation stays a separate
// step.
func (n *Net) soleReLUConsumer(blob string) *ReLULayer {
	var consumer Layer
	count := 0
	for i := range n.entries {
		for _, b := range n.entries[i].bottoms {
			if b == blob {
				consumer = n.entries[i].layer
				count++
			}
		}
	}
	if count != 1 {
		return nil
	}
	relu, _ := consumer.(*ReLULayer)
	return relu
}

// EnableFusion switches the net's fusable sites between separate output
// passes (off, the default) and fused GEMM epilogues, returning how many
// sites are active. Every blob holds bitwise identical contents either way
// — only the kernel stream changes (one fused sgemm replaces sgemm + gemmk
// + relu_fwd). Safe to toggle between iterations; layer flags are reset on
// every call.
func (n *Net) EnableFusion(on bool) int {
	for i := range n.entries {
		switch l := n.entries[i].layer.(type) {
		case *ConvLayer:
			l.fuseBias, l.fusedReLU = false, nil
		case *IPLayer:
			l.fuseBias = false
		case *ReLULayer:
			l.fusedInput = false
		}
	}
	n.fusionOn = false
	if !on {
		return 0
	}
	sites := n.FusionPlan()
	for _, s := range sites {
		switch l := n.LayerByName(s.Layer).(type) {
		case *ConvLayer:
			l.fuseBias = l.bias != nil
			if s.With != "" {
				relu := n.LayerByName(s.With).(*ReLULayer)
				relu.fusedInput = true
				l.fusedReLU = n.topBlobOf(s.With)
			}
		case *IPLayer:
			l.fuseBias = true
		}
	}
	n.fusionOn = len(sites) > 0
	return len(sites)
}

// FusionEnabled reports whether fused epilogues are active.
func (n *Net) FusionEnabled() bool { return n.fusionOn }

// topBlobOf returns the named layer's first top blob.
func (n *Net) topBlobOf(layer string) *Blob {
	for i := range n.entries {
		if n.entries[i].layer.Name() == layer {
			return n.entries[i].topB[0]
		}
	}
	return nil
}

// fusionEpilogue builds conv's fused output transform for batch sample i:
// the per-channel bias add (replicating the separate gemmk pass's zero
// screening bit for bit) followed by the ReLU co-write into the fused
// activation's top. The returned ops is the epilogue's per-element FLOP
// count for the kernel cost model. The closure captures only slices and
// ints, allocates nothing per call, and touches seg plus its own disjoint
// destination — safe on pool workers (see tensor.GemmEpilogue).
func (l *ConvLayer) fusionEpilogue(bias []float32, i int) (tensor.GemmEpilogue, float64) {
	p := l.p
	var reluOut []float32
	if l.fusedReLU != nil {
		reluOut = l.fusedReLU.SampleData(i)
	}
	ops := 0.0
	if bias != nil {
		ops++
	}
	if reluOut != nil {
		ops++
	}
	epi := func(row, col int, seg []float32) {
		if bias != nil {
			// A zero bias channel is skipped exactly like the separate
			// pass's av==0 screen: adding +0 would normalize -0 outputs.
			if bv := bias[row]; bv != 0 {
				for j := range seg {
					seg[j] += bv
				}
			}
		}
		if reluOut != nil {
			dst := reluOut[row*p+col : row*p+col+len(seg)]
			for j, v := range seg {
				if v > 0 {
					dst[j] = v
				} else {
					dst[j] = 0
				}
			}
		}
	}
	return epi, ops
}
