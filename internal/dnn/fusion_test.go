package dnn

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/hostpool"
	"repro/internal/simgpu"
)

// nameLauncher records every launched kernel name (thread-safe, for DAG
// runs) while executing the host closure inline.
type nameLauncher struct {
	mu    sync.Mutex
	names map[string]int
}

func newNameLauncher() *nameLauncher { return &nameLauncher{names: map[string]int{}} }

func (l *nameLauncher) BeginLayer(string) {}
func (l *nameLauncher) Launch(k *simgpu.Kernel, _ int) error {
	l.mu.Lock()
	l.names[k.Name]++
	l.mu.Unlock()
	if k.Fn != nil {
		k.Fn()
	}
	return nil
}
func (l *nameLauncher) Sync() error { return nil }
func (l *nameLauncher) Width() int  { return 1 }

func TestFusionPlanDetection(t *testing.T) {
	net := buildTinyNet(t, 4, 11)
	sites := net.FusionPlan()
	if len(sites) != 2 {
		t.Fatalf("want 2 sites, got %v", sites)
	}
	if sites[0].Layer != "conv1" || sites[0].Kind != "conv+bias+relu" || sites[0].With != "relu1" {
		t.Fatalf("conv site wrong: %+v", sites[0])
	}
	if sites[1].Layer != "ip1" || sites[1].Kind != "ip+bias" || sites[1].With != "" {
		t.Fatalf("ip site wrong: %+v", sites[1])
	}
	if net.FusionEnabled() {
		t.Fatal("fusion should default off")
	}
	if got := net.EnableFusion(true); got != 2 {
		t.Fatalf("EnableFusion(true) = %d, want 2", got)
	}
	if !net.FusionEnabled() {
		t.Fatal("fusion should be on")
	}
	if got := net.EnableFusion(false); got != 0 {
		t.Fatalf("EnableFusion(false) = %d, want 0", got)
	}
	if net.FusionEnabled() {
		t.Fatal("fusion should be off again")
	}
}

// TestFusionPlanVariants: no-bias convs fuse only the activation, winograd
// convs never fuse, and a fanned-out conv top keeps its ReLU separate.
func TestFusionPlanVariants(t *testing.T) {
	ctx := NewContext(HostLauncher{}, 3)
	noBias := Conv(4, 3, 1, 1)
	noBias.Bias = false
	wino := Conv(4, 3, 1, 1)
	wino.Engine = "winograd"
	net, err := NewNet("variants").
		Input("data", 2, 2, 8, 8).
		Add(NewConv("convA", noBias), []string{"data"}, []string{"a"}).
		Add(NewReLU("reluA"), []string{"a"}, []string{"ra"}).
		Add(NewConv("convW", wino), []string{"ra"}, []string{"w"}).
		Add(NewReLU("reluW"), []string{"w"}, []string{"rw"}).
		Add(NewConv("convF", Conv(3, 3, 1, 1)), []string{"rw"}, []string{"f"}).
		Add(NewReLU("reluF"), []string{"f"}, []string{"rf"}).
		Add(NewPool("poolF", Pool(MaxPool, 2, 2)), []string{"f"}, []string{"pf"}).
		Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sites := net.FusionPlan()
	want := map[string]FusedSite{
		"convA": {Layer: "convA", Kind: "conv+relu", With: "reluA"},
		"convF": {Layer: "convF", Kind: "conv+bias"}, // f fans out to reluF and poolF
	}
	if len(sites) != len(want) {
		t.Fatalf("want %d sites, got %v", len(want), sites)
	}
	for _, s := range sites {
		if w, ok := want[s.Layer]; !ok || w != s {
			t.Fatalf("unexpected site %+v (want %+v)", s, want[s.Layer])
		}
	}
}

// forwardTinyBlobs runs one tiny-net forward (optionally fused) and returns
// every blob's data plus the kernel-name census.
func forwardTinyBlobs(t *testing.T, fused bool) (map[string][]float32, map[string]int) {
	t.Helper()
	net := buildTinyNet(t, 5, 41)
	fillTinyInputs(t, net, 42)
	if fused {
		if got := net.EnableFusion(true); got != 2 {
			t.Fatalf("EnableFusion = %d, want 2", got)
		}
	}
	l := newNameLauncher()
	if _, err := net.Forward(NewContext(l, 43)); err != nil {
		t.Fatal(err)
	}
	out := map[string][]float32{}
	for name, b := range net.blobs {
		out[name] = append([]float32(nil), b.Data.Data()...)
	}
	return out, l.names
}

// TestFusionForwardBitIdentical: with fusion on, every blob — including the
// conv top (exact pre-activation values) and the relu top — holds bitwise
// identical contents, while the gemmk and relu_fwd kernels disappear from
// the stream.
func TestFusionForwardBitIdentical(t *testing.T) {
	plain, plainNames := forwardTinyBlobs(t, false)
	fused, fusedNames := forwardTinyBlobs(t, true)
	for name, want := range plain {
		if !bitsEqual(want, fused[name]) {
			t.Fatalf("blob %q differs under fusion", name)
		}
	}
	if plainNames["sgemm_64x64_fused"] != 0 {
		t.Fatalf("unfused run launched fused GEMM: %v", plainNames)
	}
	if plainNames["gemmk_1xN"] == 0 || plainNames["relu_fwd"] == 0 {
		t.Fatalf("unfused run missing separate passes: %v", plainNames)
	}
	if fusedNames["gemmk_1xN"] != 0 || fusedNames["relu_fwd"] != 0 {
		t.Fatalf("fused run still launches separate passes: %v", fusedNames)
	}
	// conv1 fuses per image (batch 5) and ip1 once.
	if got := fusedNames["sgemm_64x64_fused"]; got != 6 {
		t.Fatalf("fused run launched %d fused GEMMs, want 6 (%v)", got, fusedNames)
	}
	if fusedNames["sgemm_64x64"] != 0 {
		t.Fatalf("fused run still launches unfused GEMMs: %v", fusedNames)
	}
}

// trainTinyFused trains the tiny net and returns final params; knobs select
// fusion, the DAG scheduler and the host pool.
func trainTinyFused(t *testing.T, fused, dag bool, pool *hostpool.Pool) [][]float32 {
	t.Helper()
	net := buildTinyNet(t, 6, 57)
	fillTinyInputs(t, net, 58)
	net.EnableFusion(fused)
	net.EnableDAG(dag)
	ctx := NewContext(widthLauncher{3}, 7)
	ctx.Pool = pool
	s := NewSolver(net, ctx, SolverConfig{BaseLR: 0.01, Momentum: 0.9, WeightDecay: 0.001})
	for i := 0; i < 4; i++ {
		loss, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(loss) {
			t.Fatalf("step %d: loss NaN", i)
		}
	}
	var out [][]float32
	for _, p := range net.Params() {
		out = append(out, append([]float32(nil), p.Data.Data()...))
	}
	return out
}

// TestFusionTrainedParamsBitIdentical: fused epilogues (alone and stacked
// with the DAG scheduler and the host pool) must not perturb one trained
// bit relative to the plain serial reference.
func TestFusionTrainedParamsBitIdentical(t *testing.T) {
	ref := trainTinyFused(t, false, false, nil)
	for _, tc := range []struct {
		name string
		dag  bool
		pool *hostpool.Pool
	}{
		{"fused", false, nil},
		{"fused+dag", true, nil},
		{"fused+dag+pool", true, hostpool.New(4)},
	} {
		got := trainTinyFused(t, true, tc.dag, tc.pool)
		if len(got) != len(ref) {
			t.Fatalf("%s: param count mismatch", tc.name)
		}
		for i := range ref {
			if !bitsEqual(ref[i], got[i]) {
				t.Fatalf("%s: param %d differs from serial unfused reference", tc.name, i)
			}
		}
	}
}

// TestFrozenFusedMatchesUnfused: fusion flags live on the shared layer
// objects, so a frozen net inherits them; its outputs must match the
// unfused frozen forward bit for bit.
func TestFrozenFusedMatchesUnfused(t *testing.T) {
	freezeRun := func(fused bool) []float32 {
		net := buildTinyNet(t, 4, 91)
		fillTinyInputs(t, net, 92)
		net.EnableFusion(fused)
		fz, err := Freeze(net)
		if err != nil {
			t.Fatal(err)
		}
		ctx := NewContext(HostLauncher{}, 93)
		if err := fz.Forward(ctx); err != nil {
			t.Fatal(err)
		}
		out, err := fz.Output("scores")
		if err != nil {
			t.Fatal(err)
		}
		return append([]float32(nil), out...)
	}
	if !bitsEqual(freezeRun(false), freezeRun(true)) {
		t.Fatal("frozen outputs differ under fusion")
	}
}

// TestFusionSummaryReportsSites: Summary lists the fusable sites and their
// enabled state.
func TestFusionSummaryReportsSites(t *testing.T) {
	net := buildTinyNet(t, 2, 13)
	s := net.Summary()
	if !strings.Contains(s, "fusable epilogues") || !strings.Contains(s, "conv1[conv+bias+relu←relu1]") {
		t.Fatalf("summary missing fusion report:\n%s", s)
	}
	if !strings.Contains(s, "off; Net.EnableFusion activates") {
		t.Fatalf("summary missing off state:\n%s", s)
	}
	net.EnableFusion(true)
	if s := net.Summary(); !strings.Contains(s, "fusable epilogues (enabled)") {
		t.Fatalf("summary missing enabled state:\n%s", s)
	}
}
