package dnn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// gradCheck verifies a layer's Backward against central finite differences
// of its Forward. J = Σ w⊙top for random w; dJ/dbottom and dJ/dparams are
// compared at sampled coordinates. float32 forward math limits precision,
// so eps and tolerances are chosen accordingly.
func gradCheck(t *testing.T, l Layer, bottoms []*Blob, nTops int, checkBottom []bool, seed int64) {
	t.Helper()
	ctx := NewContext(HostLauncher{}, seed)
	rng := rand.New(rand.NewSource(seed))

	tops := make([]*Blob, nTops)
	for i := range tops {
		tops[i] = NewBlob("top")
	}
	if err := l.Setup(ctx, bottoms, tops); err != nil {
		t.Fatalf("setup: %v", err)
	}

	if err := l.Forward(ctx, bottoms, tops); err != nil {
		t.Fatalf("forward: %v", err)
	}

	// Random objective weights over all tops. Loss layers apply their own
	// loss weight in Backward and ignore top.Diff, so for them the
	// objective is exactly LossWeight()·top[0].
	ws := make([][]float32, nTops)
	if ll, isLoss := l.(LossLayer); isLoss {
		ws[0] = []float32{ll.LossWeight()}
	} else {
		for ti, top := range tops {
			ws[ti] = make([]float32, top.Count())
			for i := range ws[ti] {
				ws[ti][i] = float32(rng.NormFloat64())
			}
		}
	}

	objective := func() float64 {
		if err := l.Forward(ctx, bottoms, tops); err != nil {
			t.Fatalf("forward: %v", err)
		}
		j := 0.0
		for ti, top := range tops {
			d := top.Data.Data()
			for i, w := range ws[ti] {
				j += float64(w) * float64(d[i])
			}
		}
		return j
	}
	objective() // establish baseline state (masks, caches)

	// Analytic gradients.
	for _, b := range bottoms {
		b.ZeroDiff()
	}
	for _, p := range l.Params() {
		p.ZeroDiff()
	}
	prop := checkBottom
	if prop == nil {
		prop = make([]bool, len(bottoms))
		for i := range prop {
			prop[i] = true
		}
	}
	for ti, top := range tops {
		copy(top.Diff.Data(), ws[ti])
	}
	if err := l.Backward(ctx, tops, prop, bottoms); err != nil {
		t.Fatalf("backward: %v", err)
	}

	const eps = 1e-2
	check := func(label string, data []float32, grad []float32) {
		t.Helper()
		idxs := sampleIndices(rng, len(data), 24)
		for _, i := range idxs {
			orig := data[i]
			data[i] = orig + eps
			jp := objective()
			data[i] = orig - eps
			jm := objective()
			data[i] = orig
			num := (jp - jm) / (2 * eps)
			got := float64(grad[i])
			scale := math.Max(1, math.Max(math.Abs(num), math.Abs(got)))
			if math.Abs(num-got)/scale > 4e-2 {
				t.Errorf("%s[%d]: analytic %.6g vs numeric %.6g", label, i, got, num)
			}
		}
	}

	for bi, b := range bottoms {
		if !prop[bi] {
			continue
		}
		check("bottom"+itoa(bi), b.Data.Data(), b.Diff.Data())
	}
	for pi, p := range l.Params() {
		check("param"+itoa(pi), p.Data.Data(), p.Diff.Data())
	}
}

func itoa(i int) string { return string(rune('0' + i)) }

func sampleIndices(rng *rand.Rand, n, k int) []int {
	if n <= k {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	seen := map[int]bool{}
	var out []int
	for len(out) < k {
		i := rng.Intn(n)
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out
}

func randBlob(name string, seed int64, shape ...int) *Blob {
	b := NewBlob(name, shape...)
	tensor.GaussianFiller{Std: 1}.Fill(b.Data, rand.New(rand.NewSource(seed)))
	return b
}

func labelBlob(name string, classes int, seed int64, n int) *Blob {
	b := NewBlob(name, n)
	rng := rand.New(rand.NewSource(seed))
	d := b.Data.Data()
	for i := range d {
		d[i] = float32(rng.Intn(classes))
	}
	return b
}

func TestConvGradients(t *testing.T) {
	cfg := Conv(4, 3, 1, 1)
	cfg.Seed = 7
	l := NewConv("conv", cfg)
	bottom := randBlob("data", 1, 2, 3, 6, 5)
	gradCheck(t, l, []*Blob{bottom}, 1, nil, 42)
}

func TestConvGradientsStrided(t *testing.T) {
	cfg := ConvConfig{NumOutput: 3, KernelH: 3, KernelW: 2, StrideH: 2, StrideW: 1, PadH: 0, PadW: 1, Bias: true, Seed: 9}
	l := NewConv("conv-s", cfg)
	bottom := randBlob("data", 2, 2, 2, 7, 6)
	gradCheck(t, l, []*Blob{bottom}, 1, nil, 43)
}

func TestConvGradientsNoBias(t *testing.T) {
	cfg := Conv(2, 3, 1, 0)
	cfg.Bias = false
	cfg.Seed = 3
	l := NewConv("conv-nb", cfg)
	bottom := randBlob("data", 3, 2, 1, 5, 5)
	gradCheck(t, l, []*Blob{bottom}, 1, nil, 44)
}

func TestMaxPoolGradients(t *testing.T) {
	l := NewPool("pool", Pool(MaxPool, 2, 2))
	bottom := randBlob("data", 4, 2, 3, 6, 6)
	gradCheck(t, l, []*Blob{bottom}, 1, nil, 45)
}

func TestAvePoolGradients(t *testing.T) {
	cfg := Pool(AvePool, 3, 2)
	l := NewPool("pool", cfg)
	bottom := randBlob("data", 5, 2, 2, 7, 7)
	gradCheck(t, l, []*Blob{bottom}, 1, nil, 46)
}

func TestReLUGradients(t *testing.T) {
	l := NewReLU("relu")
	bottom := randBlob("data", 6, 2, 3, 4, 4)
	// Nudge values away from the kink at 0 so finite differences are valid.
	d := bottom.Data.Data()
	for i, v := range d {
		if v > -0.05 && v < 0.05 {
			d[i] = 0.1
		}
	}
	gradCheck(t, l, []*Blob{bottom}, 1, nil, 47)
}

func TestSigmoidGradients(t *testing.T) {
	l := NewSigmoid("sig")
	bottom := randBlob("data", 7, 2, 5)
	gradCheck(t, l, []*Blob{bottom}, 1, nil, 48)
}

func TestLRNGradients(t *testing.T) {
	l := NewLRN("lrn", LRNConfig{LocalSize: 3, Alpha: 0.05, Beta: 0.75, K: 1})
	bottom := randBlob("data", 8, 2, 5, 3, 3)
	gradCheck(t, l, []*Blob{bottom}, 1, nil, 49)
}

func TestIPGradients(t *testing.T) {
	cfg := IP(5)
	cfg.Seed = 11
	l := NewIP("ip", cfg)
	bottom := randBlob("data", 9, 3, 7)
	gradCheck(t, l, []*Blob{bottom}, 1, nil, 50)
}

func TestSoftmaxLossGradients(t *testing.T) {
	l := NewSoftmaxLoss("loss")
	scores := randBlob("scores", 10, 4, 5)
	labels := labelBlob("labels", 5, 10, 4)
	gradCheck(t, l, []*Blob{scores, labels}, 1, []bool{true, false}, 51)
}

func TestEuclideanLossGradients(t *testing.T) {
	l := NewEuclideanLoss("loss")
	a := randBlob("a", 12, 3, 6)
	b := randBlob("b", 13, 3, 6)
	gradCheck(t, l, []*Blob{a, b}, 1, []bool{true, true}, 52)
}

func TestContrastiveLossGradients(t *testing.T) {
	l := NewContrastiveLoss("closs", 1)
	a := randBlob("f1", 14, 4, 3)
	b := randBlob("f2", 15, 4, 3)
	sim := NewBlob("sim", 4)
	sim.Data.Data()[0] = 1
	sim.Data.Data()[2] = 1
	gradCheck(t, l, []*Blob{a, b, sim}, 1, []bool{true, true, false}, 53)
}

func TestConcatGradients(t *testing.T) {
	l := NewConcat("cat")
	a := randBlob("a", 16, 2, 2, 3, 3)
	b := randBlob("b", 17, 2, 3, 3, 3)
	gradCheck(t, l, []*Blob{a, b}, 1, nil, 54)
}

func TestTanHGradients(t *testing.T) {
	l := NewTanH("tanh")
	bottom := randBlob("data", 18, 3, 7)
	gradCheck(t, l, []*Blob{bottom}, 1, nil, 60)
}

func TestELUGradients(t *testing.T) {
	l := NewELU("elu", 0.7)
	bottom := randBlob("data", 19, 2, 9)
	// Keep values off the kink at 0 for finite differences.
	d := bottom.Data.Data()
	for i, v := range d {
		if v > -0.05 && v < 0.05 {
			d[i] = 0.2
		}
	}
	gradCheck(t, l, []*Blob{bottom}, 1, nil, 61)
}

func TestSoftmaxLayerGradients(t *testing.T) {
	l := NewSoftmax("sm")
	bottom := randBlob("data", 20, 3, 6)
	gradCheck(t, l, []*Blob{bottom}, 1, nil, 62)
}

func TestEltwiseSumGradients(t *testing.T) {
	l := NewEltwise("sum", EltwiseSum, []float32{1.5, -0.5})
	a := randBlob("a", 21, 2, 8)
	b := randBlob("b", 22, 2, 8)
	gradCheck(t, l, []*Blob{a, b}, 1, nil, 63)
}

func TestEltwiseProdGradients(t *testing.T) {
	l := NewEltwise("prod", EltwiseProd, nil)
	a := randBlob("a", 23, 2, 5)
	b := randBlob("b", 24, 2, 5)
	gradCheck(t, l, []*Blob{a, b}, 1, nil, 64)
}

func TestEltwiseMaxGradients(t *testing.T) {
	l := NewEltwise("max", EltwiseMax, nil)
	a := randBlob("a", 25, 2, 10)
	b := randBlob("b", 26, 2, 10)
	// Separate the branches so finite differences stay on one side.
	da, db := a.Data.Data(), b.Data.Data()
	for i := range da {
		if diff := da[i] - db[i]; diff > -0.1 && diff < 0.1 {
			da[i] += 0.3
		}
	}
	gradCheck(t, l, []*Blob{a, b}, 1, nil, 65)
}

func TestFlattenGradients(t *testing.T) {
	l := NewFlatten("flat")
	bottom := randBlob("data", 27, 2, 3, 4, 5)
	gradCheck(t, l, []*Blob{bottom}, 1, nil, 66)
}
