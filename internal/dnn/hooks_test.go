package dnn

import (
	"testing"
)

// TestBackwardHooksSerialOrder: the serial backward pass fires the
// gradient-ready hook once per layer entry, in exact reverse insertion
// order, after the layer's gradients are final.
func TestBackwardHooksSerialOrder(t *testing.T) {
	net := buildTinyNet(t, 4, 1)
	fillTinyInputs(t, net, 2)
	ctx := NewContext(HostLauncher{}, 1)

	var fired []int
	net.OnLayerBackward(func(li int) { fired = append(fired, li) })
	var fired2 []int
	net.OnLayerBackward(func(li int) { fired2 = append(fired2, li) }) // multiple observers

	if _, err := net.ForwardBackward(ctx); err != nil {
		t.Fatal(err)
	}
	n := net.LayerCount()
	if len(fired) != n || len(fired2) != n {
		t.Fatalf("hooks fired %d/%d times, want %d", len(fired), len(fired2), n)
	}
	for k, li := range fired {
		if want := n - 1 - k; li != want {
			t.Fatalf("hook %d fired for layer %d, want %d (reverse order)", k, li, want)
		}
		if fired2[k] != li {
			t.Fatalf("second observer diverged at %d: %d vs %d", k, fired2[k], li)
		}
	}

	// A second pass fires them again (registrations persist).
	fired = fired[:0]
	if _, err := net.ForwardBackward(ctx); err != nil {
		t.Fatal(err)
	}
	if len(fired) != n {
		t.Fatalf("second pass fired %d hooks, want %d", len(fired), n)
	}
}

// TestParamOwners: owner entries follow Params() order, every param has at
// least one owner, and a shared parameter lists every sharing layer.
func TestParamOwners(t *testing.T) {
	net := buildTinyNet(t, 2, 3)
	params := net.Params()
	owners := net.ParamOwners()
	if len(owners) != len(params) {
		t.Fatalf("owners rows %d, params %d", len(owners), len(params))
	}
	for pi, os := range owners {
		if len(os) == 0 {
			t.Fatalf("param %d (%s) has no owner", pi, params[pi].Name)
		}
		for _, o := range os {
			if o < 0 || o >= net.LayerCount() {
				t.Fatalf("param %d owner %d out of range", pi, o)
			}
			found := false
			for _, p := range net.Layers()[o].Params() {
				if p == params[pi] {
					found = true
				}
			}
			if !found {
				t.Fatalf("layer %d listed as owner of param %d but does not hold it", o, pi)
			}
		}
	}

	// Siamese sharing: both IP towers own the shared weight/bias blobs.
	ctx := NewContext(HostLauncher{}, 7)
	ic := IP(3)
	ic.Seed = 7
	ic2 := IP(3)
	ic2.Seed = 8
	twins, err := NewNet("twins").
		Input("a", 2, 4).
		Input("b", 2, 4).
		Add(NewIP("ipA", ic), []string{"a"}, []string{"fa"}).
		Add(NewIP("ipB", ic2), []string{"b"}, []string{"fb"}).
		Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := twins.ShareParams("ipA", "ipB"); err != nil {
		t.Fatal(err)
	}
	for pi, os := range twins.ParamOwners() {
		if len(os) != 2 {
			t.Fatalf("shared param %d owned by %v, want both towers", pi, os)
		}
	}
	if got := len(twins.Params()); got != 2 {
		t.Fatalf("shared net has %d distinct params, want 2", got)
	}
}
