package dnn

import (
	"math"
	"testing"

	"repro/internal/hostpool"
)

// bitsEqual reports bitwise float32 equality of two slices.
func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// trainTiny trains the tiny net for a few steps at the given launcher width
// and returns the final parameter values.
func trainTiny(t *testing.T, width int, pool *hostpool.Pool) [][]float32 {
	t.Helper()
	net := buildTinyNet(t, 6, 123)
	// A dropout layer exercises the RNG-in-closure path under the pool.
	net2, err := NewNet("tiny-dropout").
		Input("data", 6, 2, 8, 8).
		Input("label", 6).
		Add(NewConv("conv1", Conv(4, 3, 1, 1)), []string{"data"}, []string{"c1"}).
		Add(NewReLU("relu1"), []string{"c1"}, []string{"r1"}).
		Add(NewDropout("drop1", 0.3), []string{"r1"}, []string{"d1"}).
		Add(NewIP("ip1", IP(3)), []string{"d1"}, []string{"scores"}).
		Add(NewSoftmaxLoss("loss"), []string{"scores", "label"}, []string{"loss"}).
		Build(NewContext(HostLauncher{}, 123))
	if err != nil {
		t.Fatal(err)
	}
	net = net2
	fillTinyInputs(t, net, 321)

	ctx := NewContext(widthLauncher{width}, 7)
	ctx.Pool = pool
	s := NewSolver(net, ctx, SolverConfig{BaseLR: 0.01, Momentum: 0.9, WeightDecay: 0.001})
	for i := 0; i < 4; i++ {
		loss, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(loss) {
			t.Fatalf("step %d: loss NaN", i)
		}
	}
	var out [][]float32
	for _, p := range net.Params() {
		out = append(out, append([]float32(nil), p.Data.Data()...))
	}
	return out
}

// TestHostParallelBitIdentical: at a fixed launcher width, offloading chain
// closures to the worker pool must produce bit-identical trained parameters
// to inline (serial) host execution. This is the engine's determinism
// guarantee.
func TestHostParallelBitIdentical(t *testing.T) {
	for _, width := range []int{2, 3, 4, 8} {
		serial := trainTiny(t, width, nil)
		parallel := trainTiny(t, width, hostpool.New(4))
		if len(serial) != len(parallel) {
			t.Fatalf("width %d: param count mismatch", width)
		}
		for i := range serial {
			for j := range serial[i] {
				if math.Float32bits(serial[i][j]) != math.Float32bits(parallel[i][j]) {
					t.Fatalf("width %d: param %d[%d] differs: serial %v parallel %v",
						width, i, j, serial[i][j], parallel[i][j])
				}
			}
		}
	}
}

// TestHostParallelRNN: the RNN's per-sample BPTT chains share dhBuf/partial
// buffers by chain % width; the pool must keep them serialized per lane and
// bit-identical to inline execution.
func TestHostParallelRNN(t *testing.T) {
	run := func(pool *hostpool.Pool) ([]float32, [][]float32) {
		ctx := NewContext(widthLauncher{3}, 5)
		ctx.Pool = pool
		cfg := RNNConfig{Hidden: 7, Seed: 11}
		net, err := NewNet("rnn").
			Input("x", 5, 4, 3).
			Input("target", 5, 4, 7).
			Add(NewRNN("rnn1", cfg), []string{"x"}, []string{"h"}).
			Add(NewEuclideanLoss("loss"), []string{"h", "target"}, []string{"l"}).
			Build(ctx)
		if err != nil {
			t.Fatal(err)
		}
		fillRandom(net.Blob("x"), 61)
		fillRandom(net.Blob("target"), 62)
		if _, err := net.ForwardBackward(ctx); err != nil {
			t.Fatal(err)
		}
		var grads [][]float32
		for _, p := range net.Params() {
			grads = append(grads, append([]float32(nil), p.Diff.Data()...))
		}
		return append([]float32(nil), net.Blob("h").Data.Data()...), grads
	}
	hSerial, gSerial := run(nil)
	hPar, gPar := run(hostpool.New(2))
	for i := range hSerial {
		if math.Float32bits(hSerial[i]) != math.Float32bits(hPar[i]) {
			t.Fatalf("hidden state %d differs", i)
		}
	}
	for i := range gSerial {
		for j := range gSerial[i] {
			if math.Float32bits(gSerial[i][j]) != math.Float32bits(gPar[i][j]) {
				t.Fatalf("gradient %d[%d] differs: %v vs %v", i, j, gSerial[i][j], gPar[i][j])
			}
		}
	}
}

// TestHostParallelWinograd: the winograd engine's per-image chains read the
// shared transformed-filter bank prepared by a chain −1 kernel; the pool's
// default-stream drain must order that correctly.
func TestHostParallelWinograd(t *testing.T) {
	run := func(pool *hostpool.Pool) []float32 {
		ctx := NewContext(widthLauncher{4}, 9)
		ctx.Pool = pool
		cc := Conv(5, 3, 1, 1)
		cc.Engine = "winograd"
		cc.Seed = 17
		net, err := NewNet("wino").
			Input("data", 6, 3, 9, 9).
			Add(NewConv("conv1", cc), []string{"data"}, []string{"out"}).
			Build(ctx)
		if err != nil {
			t.Fatal(err)
		}
		fillRandom(net.Blob("data"), 71)
		if _, err := net.Forward(ctx); err != nil {
			t.Fatal(err)
		}
		return append([]float32(nil), net.Blob("out").Data.Data()...)
	}
	serial := run(nil)
	parallel := run(hostpool.New(3))
	if !bitsEqual(serial, parallel) {
		t.Fatal("winograd outputs differ between serial and pooled execution")
	}
}
