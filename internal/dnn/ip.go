package dnn

import (
	"fmt"

	"repro/internal/kernels"
	"repro/internal/tensor"
)

// IPConfig describes an inner-product (fully connected) layer.
type IPConfig struct {
	NumOutput    int
	Bias         bool
	WeightFiller tensor.Filler
	BiasFiller   tensor.Filler
	Seed         int64
}

// IP builds the common config.
func IP(numOutput int) IPConfig {
	return IPConfig{NumOutput: numOutput, Bias: true}
}

// IPLayer is Caffe's InnerProduct: top(N×Out) = bottom(N×In)·Wᵀ + 1·bᵀ,
// computed as whole-batch GEMMs (Caffe does not split FC layers per image;
// one GEMM already fills the device, which is why GLP4NN targets
// convolutions).
type IPLayer struct {
	baseLayer
	cfg IPConfig

	weight *Blob // (Out, In)
	bias   *Blob // (Out)
	in     int
	out    int
	onesN  []float32

	// fuseBias (set by Net.EnableFusion, see fusion.go) folds the
	// ones·biasᵀ rank-one pass into the forward GEMM's epilogue.
	fuseBias bool
}

// NewIP constructs an inner-product layer.
func NewIP(name string, cfg IPConfig) *IPLayer {
	if cfg.WeightFiller == nil {
		cfg.WeightFiller = tensor.XavierFiller{}
	}
	if cfg.BiasFiller == nil {
		cfg.BiasFiller = tensor.ConstantFiller{Value: 0}
	}
	return &IPLayer{baseLayer: baseLayer{name: name, typ: "InnerProduct"}, cfg: cfg}
}

// Setup implements Layer.
func (l *IPLayer) Setup(ctx *Context, bottom, top []*Blob) error {
	if len(bottom) != 1 || len(top) != 1 {
		return fmt.Errorf("ip %s: want 1 bottom and 1 top", l.name)
	}
	b := bottom[0]
	l.in = b.SampleSize()
	l.out = l.cfg.NumOutput
	rng := fillerRNG(l.cfg.Seed, l.name)
	l.weight = NewBlob(l.name+".weight", l.out, l.in)
	l.cfg.WeightFiller.Fill(l.weight.Data, rng)
	l.param = []*Blob{l.weight}
	if l.cfg.Bias {
		l.bias = NewBlob(l.name+".bias", l.out)
		l.bias.LrMult, l.bias.DecayMult = 2, 0
		l.cfg.BiasFiller.Fill(l.bias.Data, rng)
		l.param = append(l.param, l.bias)
	}
	top[0].Reshape(b.Num(), l.out)
	l.onesN = make([]float32, b.Num())
	for i := range l.onesN {
		l.onesN[i] = 1
	}
	return nil
}

// Forward implements Layer.
func (l *IPLayer) Forward(ctx *Context, bottom, top []*Blob) error {
	n := bottom[0].Num()
	x := bottom[0].Data.Data()
	y := top[0].Data.Data()
	w := l.weight.Data.Data()
	// y = x(N×In) · Wᵀ(In×Out). FC layers run one whole-batch GEMM on a
	// single chain, so row-band parallelism is what puts the pool to work.
	if l.fuseBias && l.bias != nil {
		bias := l.bias.Data.Data()
		// The separate pass is ones(N×1)·bias(1×Out) with av = 1·1 never
		// zero, so the fused add is unconditional: y[i,j] += 1·bias[j],
		// and 1·b is bitwise b. See fusion.go for the full contract.
		epi := func(row, col int, seg []float32) {
			bseg := bias[col : col+len(seg)]
			for j, bv := range bseg {
				seg[j] += bv
			}
		}
		if err := ctx.Dispatch(kernels.SgemmEpi(l.name, ctx.RowPar(), false, true, n, l.out, l.in, 1, x, w, 0, y, epi, 1), 0); err != nil {
			return err
		}
		return ctx.Barrier()
	}
	if err := ctx.Dispatch(kernels.SgemmP(l.name, ctx.RowPar(), false, true, n, l.out, l.in, 1, x, w, 0, y), 0); err != nil {
		return err
	}
	if l.bias != nil {
		// y += ones(N×1)·bias(1×Out)
		if err := ctx.Dispatch(kernels.BiasGemm(l.name, n, l.out, l.onesN, l.bias.Data.Data(), y), 0); err != nil {
			return err
		}
	}
	return ctx.Barrier()
}

// Backward implements Layer.
func (l *IPLayer) Backward(ctx *Context, top []*Blob, propagate []bool, bottom []*Blob) error {
	n := bottom[0].Num()
	x := bottom[0].Data.Data()
	dy := top[0].Diff.Data()
	// dW += dyᵀ(Out×N)·x(N×In)
	dw := l.weight.Diff.Data()
	if err := ctx.Dispatch(kernels.SgemmP(l.name, ctx.RowPar(), true, false, l.out, l.in, n, 1, dy, x, 1, dw), 0); err != nil {
		return err
	}
	if l.bias != nil {
		// db += dyᵀ(Out×N)·ones(N); dy is stored N×Out, so this is the
		// transposed GEMV.
		db := l.bias.Diff.Data()
		out := l.out
		k := kernels.Elementwise("gemv_bias_bwd", l.name, n*out, 4, 2, func() {
			tensor.Gemv(true, n, out, 1, dy, l.onesN, 1, db)
		})
		if err := ctx.Dispatch(k, 0); err != nil {
			return err
		}
	}
	if propagate[0] {
		// dx += dy(N×Out)·W(Out×In)
		dx := bottom[0].Diff.Data()
		w := l.weight.Data.Data()
		if err := ctx.Dispatch(kernels.SgemmP(l.name, ctx.RowPar(), false, false, n, l.in, l.out, 1, dy, w, 1, dx), 0); err != nil {
			return err
		}
	}
	return ctx.Barrier()
}
