package dnn

import "math/rand"

// Layer is the Caffe layer contract. Setup runs once with the bottom shapes
// known and must shape the top blobs and allocate parameters; Forward and
// Backward may be called repeatedly.
//
// Gradient convention: Backward ACCUMULATES (+=) into bottom diffs and
// parameter diffs; the Net zeroes all diffs at the start of each iteration.
// Accumulation is what makes fan-out (one blob consumed by several layers,
// as in the GoogLeNet inception slice) correct without explicit split
// layers.
type Layer interface {
	Name() string
	Type() string
	Setup(ctx *Context, bottom, top []*Blob) error
	Forward(ctx *Context, bottom, top []*Blob) error
	Backward(ctx *Context, top []*Blob, propagate []bool, bottom []*Blob) error
	// Params returns the layer's learnable blobs (possibly empty).
	Params() []*Blob
}

// LossLayer is implemented by layers that produce a scalar loss in top[0];
// the Net weighs their outputs into the global objective.
type LossLayer interface {
	Layer
	LossWeight() float32
}

// baseLayer holds the common name/type plumbing.
type baseLayer struct {
	name  string
	typ   string
	param []*Blob
}

func (b *baseLayer) Name() string    { return b.name }
func (b *baseLayer) Type() string    { return b.typ }
func (b *baseLayer) Params() []*Blob { return b.param }

// fillerRNG derives a deterministic per-layer RNG so parameter
// initialization does not depend on layer execution order elsewhere.
func fillerRNG(seed int64, layerName string) *rand.Rand {
	h := int64(1469598103934665603) // FNV-1a 64 offset basis
	for _, c := range layerName {
		h ^= int64(c)
		h *= 1099511628211
	}
	return rand.New(rand.NewSource(seed ^ h))
}
