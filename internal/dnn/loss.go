package dnn

import (
	"fmt"

	"repro/internal/kernels"
)

// SoftmaxLossLayer fuses softmax and multinomial logistic loss, like Caffe's
// SoftmaxWithLoss. Bottom 0 holds scores (N×C or N×C×1×1), bottom 1 holds
// labels as float32 class indices (N). Top 0 is the scalar loss.
type SoftmaxLossLayer struct {
	baseLayer
	weight float32
	prob   []float32
	n, c   int
}

// NewSoftmaxLoss constructs the layer with loss weight 1.
func NewSoftmaxLoss(name string) *SoftmaxLossLayer {
	return &SoftmaxLossLayer{baseLayer: baseLayer{name: name, typ: "SoftmaxWithLoss"}, weight: 1}
}

// LossWeight implements LossLayer.
func (l *SoftmaxLossLayer) LossWeight() float32 { return l.weight }

// Setup implements Layer.
func (l *SoftmaxLossLayer) Setup(ctx *Context, bottom, top []*Blob) error {
	if len(bottom) != 2 || len(top) != 1 {
		return fmt.Errorf("softmaxloss %s: want 2 bottoms (scores, labels) and 1 top", l.name)
	}
	l.n = bottom[0].Num()
	l.c = bottom[0].SampleSize()
	if bottom[1].Num() != l.n {
		return fmt.Errorf("softmaxloss %s: label count %d != batch %d", l.name, bottom[1].Num(), l.n)
	}
	top[0].Reshape(1)
	l.prob = make([]float32, l.n*l.c)
	return nil
}

// Forward implements Layer: one softmax kernel and one loss-reduction
// kernel, both over the whole batch (loss layers are negligible and are not
// batch-split in Caffe either).
func (l *SoftmaxLossLayer) Forward(ctx *Context, bottom, top []*Blob) error {
	scores := bottom[0].Data.Data()
	labels := bottom[1].Data.Data()
	out := top[0].Data.Data()
	kSoft := kernels.Elementwise("softmax_fwd", l.name, l.n*l.c, 12, 6, func() {
		for i := 0; i < l.n; i++ {
			row := scores[i*l.c : (i+1)*l.c]
			p := l.prob[i*l.c : (i+1)*l.c]
			m := row[0]
			for _, v := range row {
				if v > m {
					m = v
				}
			}
			sum := float32(0)
			for j, v := range row {
				e := exp32(v - m)
				p[j] = e
				sum += e
			}
			inv := 1 / sum
			for j := range p {
				p[j] *= inv
			}
		}
	})
	if err := ctx.Dispatch(kSoft, 0); err != nil {
		return err
	}
	kLoss := kernels.Elementwise("softmax_loss_fwd", l.name, l.n, 8, 4, func() {
		loss := float32(0)
		for i := 0; i < l.n; i++ {
			y := int(labels[i])
			if y < 0 || y >= l.c {
				continue
			}
			p := l.prob[i*l.c+y]
			if p < 1e-20 {
				p = 1e-20
			}
			loss -= log32(p)
		}
		out[0] = loss / float32(l.n)
	})
	if err := ctx.Dispatch(kLoss, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}

// Backward implements Layer: d score = (prob − onehot(label))·weight/N.
func (l *SoftmaxLossLayer) Backward(ctx *Context, top []*Blob, propagate []bool, bottom []*Blob) error {
	if !propagate[0] {
		return nil
	}
	labels := bottom[1].Data.Data()
	dscores := bottom[0].Diff.Data()
	scale := l.weight / float32(l.n)
	k := kernels.Elementwise("softmax_loss_bwd", l.name, l.n*l.c, 12, 2, func() {
		for i := 0; i < l.n; i++ {
			y := int(labels[i])
			base := i * l.c
			for j := 0; j < l.c; j++ {
				g := l.prob[base+j]
				if j == y {
					g -= 1
				}
				dscores[base+j] += g * scale
			}
		}
	})
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}

// AccuracyLayer computes top-1 accuracy into its scalar top; it never
// propagates gradients (Caffe uses it in test nets).
type AccuracyLayer struct {
	baseLayer
}

// NewAccuracy constructs an accuracy layer.
func NewAccuracy(name string) *AccuracyLayer {
	return &AccuracyLayer{baseLayer{name: name, typ: "Accuracy"}}
}

// Setup implements Layer.
func (l *AccuracyLayer) Setup(ctx *Context, bottom, top []*Blob) error {
	if len(bottom) != 2 || len(top) != 1 {
		return fmt.Errorf("accuracy %s: want 2 bottoms and 1 top", l.name)
	}
	top[0].Reshape(1)
	return nil
}

// Forward implements Layer.
func (l *AccuracyLayer) Forward(ctx *Context, bottom, top []*Blob) error {
	scores := bottom[0].Data.Data()
	labels := bottom[1].Data.Data()
	n := bottom[0].Num()
	c := bottom[0].SampleSize()
	out := top[0].Data.Data()
	k := kernels.Elementwise("accuracy_fwd", l.name, n*c, 4, 1, func() {
		correct := 0
		for i := 0; i < n; i++ {
			row := scores[i*c : (i+1)*c]
			arg := 0
			for j, v := range row {
				if v > row[arg] {
					arg = j
				}
			}
			if arg == int(labels[i]) {
				correct++
			}
		}
		out[0] = float32(correct) / float32(n)
	})
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}

// Backward implements Layer (no-op).
func (l *AccuracyLayer) Backward(ctx *Context, top []*Blob, propagate []bool, bottom []*Blob) error {
	return nil
}

// EuclideanLossLayer is ½N·Σ‖a−b‖², used in regression tests and examples.
type EuclideanLossLayer struct {
	baseLayer
	weight float32
	diff   []float32
}

// NewEuclideanLoss constructs the layer with loss weight 1.
func NewEuclideanLoss(name string) *EuclideanLossLayer {
	return &EuclideanLossLayer{baseLayer: baseLayer{name: name, typ: "EuclideanLoss"}, weight: 1}
}

// LossWeight implements LossLayer.
func (l *EuclideanLossLayer) LossWeight() float32 { return l.weight }

// Setup implements Layer.
func (l *EuclideanLossLayer) Setup(ctx *Context, bottom, top []*Blob) error {
	if len(bottom) != 2 || len(top) != 1 {
		return fmt.Errorf("euclideanloss %s: want 2 bottoms and 1 top", l.name)
	}
	if bottom[0].Count() != bottom[1].Count() {
		return fmt.Errorf("euclideanloss %s: size mismatch %d vs %d", l.name, bottom[0].Count(), bottom[1].Count())
	}
	top[0].Reshape(1)
	l.diff = make([]float32, bottom[0].Count())
	return nil
}

// Forward implements Layer.
func (l *EuclideanLossLayer) Forward(ctx *Context, bottom, top []*Blob) error {
	a := bottom[0].Data.Data()
	b := bottom[1].Data.Data()
	out := top[0].Data.Data()
	n := bottom[0].Num()
	k := kernels.Elementwise("euclidean_fwd", l.name, len(a), 12, 3, func() {
		s := float32(0)
		for i := range a {
			d := a[i] - b[i]
			l.diff[i] = d
			s += d * d
		}
		out[0] = s / float32(2*n)
	})
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}

// Backward implements Layer.
func (l *EuclideanLossLayer) Backward(ctx *Context, top []*Blob, propagate []bool, bottom []*Blob) error {
	n := bottom[0].Num()
	scale := l.weight / float32(n)
	for bi := 0; bi < 2; bi++ {
		if !propagate[bi] {
			continue
		}
		sign := float32(1)
		if bi == 1 {
			sign = -1
		}
		dst := bottom[bi].Diff.Data()
		k := kernels.Elementwise("euclidean_bwd", l.name, len(dst), 12, 2, func() {
			for i := range dst {
				dst[i] += sign * scale * l.diff[i]
			}
		})
		if err := ctx.Dispatch(k, bi); err != nil {
			return err
		}
	}
	return ctx.Barrier()
}

// ContrastiveLossLayer is the Siamese-network loss of Hadsell et al., as in
// Caffe's mnist_siamese example: for feature pairs (a,b) with similarity
// label y ∈ {0,1},
//
//	L = 1/2N · Σ [ y·d² + (1−y)·max(0, margin−‖d‖)² ],  d = a−b.
type ContrastiveLossLayer struct {
	baseLayer
	weight float32
	margin float32
	diff   []float32 // a−b per pair
	dist   []float32 // ‖d‖ per pair
	n, dim int
}

// NewContrastiveLoss constructs the layer with the Caffe default margin 1.
func NewContrastiveLoss(name string, margin float32) *ContrastiveLossLayer {
	if margin <= 0 {
		margin = 1
	}
	return &ContrastiveLossLayer{
		baseLayer: baseLayer{name: name, typ: "ContrastiveLoss"},
		weight:    1, margin: margin,
	}
}

// LossWeight implements LossLayer.
func (l *ContrastiveLossLayer) LossWeight() float32 { return l.weight }

// Setup implements Layer.
func (l *ContrastiveLossLayer) Setup(ctx *Context, bottom, top []*Blob) error {
	if len(bottom) != 3 || len(top) != 1 {
		return fmt.Errorf("contrastiveloss %s: want 3 bottoms (feat1, feat2, sim) and 1 top", l.name)
	}
	if bottom[0].Count() != bottom[1].Count() {
		return fmt.Errorf("contrastiveloss %s: feature size mismatch", l.name)
	}
	l.n = bottom[0].Num()
	l.dim = bottom[0].SampleSize()
	top[0].Reshape(1)
	l.diff = make([]float32, l.n*l.dim)
	l.dist = make([]float32, l.n)
	return nil
}

// Forward implements Layer.
func (l *ContrastiveLossLayer) Forward(ctx *Context, bottom, top []*Blob) error {
	a := bottom[0].Data.Data()
	b := bottom[1].Data.Data()
	sim := bottom[2].Data.Data()
	out := top[0].Data.Data()
	k := kernels.Elementwise("contrastive_fwd", l.name, l.n*l.dim, 12, 4, func() {
		loss := float32(0)
		for i := 0; i < l.n; i++ {
			d2 := float32(0)
			for j := 0; j < l.dim; j++ {
				d := a[i*l.dim+j] - b[i*l.dim+j]
				l.diff[i*l.dim+j] = d
				d2 += d * d
			}
			l.dist[i] = sqrt32(d2)
			if sim[i] > 0.5 {
				loss += d2
			} else {
				m := max32(0, l.margin-l.dist[i])
				loss += m * m
			}
		}
		out[0] = loss / float32(2*l.n)
	})
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}

// Backward implements Layer.
func (l *ContrastiveLossLayer) Backward(ctx *Context, top []*Blob, propagate []bool, bottom []*Blob) error {
	sim := bottom[2].Data.Data()
	scale := l.weight / float32(l.n)
	for bi := 0; bi < 2; bi++ {
		if !propagate[bi] {
			continue
		}
		sign := float32(1)
		if bi == 1 {
			sign = -1
		}
		dst := bottom[bi].Diff.Data()
		k := kernels.Elementwise("contrastive_bwd", l.name, l.n*l.dim, 12, 4, func() {
			for i := 0; i < l.n; i++ {
				if sim[i] > 0.5 {
					for j := 0; j < l.dim; j++ {
						dst[i*l.dim+j] += sign * scale * l.diff[i*l.dim+j]
					}
				} else {
					dist := l.dist[i]
					if dist >= l.margin {
						continue
					}
					// ∂/∂a max(0, m−‖d‖)² = −2(m−‖d‖)·d/‖d‖ (halved by the ½ in L)
					coef := -(l.margin - dist) / max32(dist, 1e-9)
					for j := 0; j < l.dim; j++ {
						dst[i*l.dim+j] += sign * scale * coef * l.diff[i*l.dim+j]
					}
				}
			}
		})
		if err := ctx.Dispatch(k, bi); err != nil {
			return err
		}
	}
	return ctx.Barrier()
}
