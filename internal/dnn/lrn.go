package dnn

import (
	"fmt"

	"repro/internal/kernels"
)

// LRNConfig parameterizes cross-channel local response normalization, with
// Caffe/AlexNet defaults.
type LRNConfig struct {
	LocalSize int     // window size across channels (odd)
	Alpha     float32 // scaling
	Beta      float32 // exponent
	K         float32 // bias
}

// DefaultLRN returns the AlexNet/CaffeNet LRN parameters.
func DefaultLRN() LRNConfig {
	return LRNConfig{LocalSize: 5, Alpha: 1e-4, Beta: 0.75, K: 1}
}

// LRNLayer implements cross-channel LRN:
//
//	scale_i = K + (alpha/n)·Σ_{j∈win(i)} x_j²,  y_i = x_i·scale_i^{-beta}.
//
// CaffeNet interleaves it with the early pooling layers.
type LRNLayer struct {
	baseLayer
	cfg LRNConfig

	n, c, h, w int
	scale      []float32 // cached scale_i for backward
}

// NewLRN constructs an LRN layer.
func NewLRN(name string, cfg LRNConfig) *LRNLayer {
	if cfg.LocalSize <= 0 {
		cfg = DefaultLRN()
	}
	return &LRNLayer{baseLayer: baseLayer{name: name, typ: "LRN"}, cfg: cfg}
}

// Setup implements Layer.
func (l *LRNLayer) Setup(ctx *Context, bottom, top []*Blob) error {
	if len(bottom) != 1 || len(top) != 1 {
		return fmt.Errorf("lrn %s: want 1 bottom and 1 top", l.name)
	}
	if l.cfg.LocalSize%2 == 0 {
		return fmt.Errorf("lrn %s: local size must be odd", l.name)
	}
	b := bottom[0]
	l.n, l.c, l.h, l.w = b.Num(), b.Channels(), b.Height(), b.Width()
	top[0].Reshape(b.Shape()...)
	l.scale = make([]float32, b.Count())
	return nil
}

// Forward implements Layer.
func (l *LRNLayer) Forward(ctx *Context, bottom, top []*Blob) error {
	src := bottom[0].Data.Data()
	dst := top[0].Data.Data()
	nElems := len(src)
	win := float64(l.cfg.LocalSize)
	k := kernels.Elementwise("lrn_fwd", l.name, nElems, 4*(win+2), 4*win, func() {
		l.forwardHost(src, dst)
	})
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}

func (l *LRNLayer) forwardHost(src, dst []float32) {
	half := l.cfg.LocalSize / 2
	alphaOverN := l.cfg.Alpha / float32(l.cfg.LocalSize)
	hw := l.h * l.w
	for n := 0; n < l.n; n++ {
		base := n * l.c * hw
		for p := 0; p < hw; p++ {
			for c := 0; c < l.c; c++ {
				lo, hi := c-half, c+half
				if lo < 0 {
					lo = 0
				}
				if hi >= l.c {
					hi = l.c - 1
				}
				s := float32(0)
				for j := lo; j <= hi; j++ {
					v := src[base+j*hw+p]
					s += v * v
				}
				sc := l.cfg.K + alphaOverN*s
				i := base + c*hw + p
				l.scale[i] = sc
				dst[i] = src[i] * pow32(sc, -l.cfg.Beta)
			}
		}
	}
}

// Backward implements Layer, using the cached scale values:
//
//	dx_i += dy_i·scale_i^{-β} − (2αβ/n)·x_i·Σ_{j: i∈win(j)} dy_j·y_j/scale_j.
func (l *LRNLayer) Backward(ctx *Context, top []*Blob, propagate []bool, bottom []*Blob) error {
	if !propagate[0] {
		return nil
	}
	x := bottom[0].Data.Data()
	y := top[0].Data.Data()
	dy := top[0].Diff.Data()
	dx := bottom[0].Diff.Data()
	win := float64(l.cfg.LocalSize)
	k := kernels.Elementwise("lrn_bwd", l.name, len(x), 4*(win+4), 6*win, func() {
		l.backwardHost(x, y, dy, dx)
	})
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}

func (l *LRNLayer) backwardHost(x, y, dy, dx []float32) {
	half := l.cfg.LocalSize / 2
	factor := 2 * l.cfg.Alpha * l.cfg.Beta / float32(l.cfg.LocalSize)
	hw := l.h * l.w
	for n := 0; n < l.n; n++ {
		base := n * l.c * hw
		for p := 0; p < hw; p++ {
			for c := 0; c < l.c; c++ {
				i := base + c*hw + p
				// direct term
				acc := dy[i] * pow32(l.scale[i], -l.cfg.Beta)
				// cross terms: channels j whose window contains c
				lo, hi := c-half, c+half
				if lo < 0 {
					lo = 0
				}
				if hi >= l.c {
					hi = l.c - 1
				}
				cross := float32(0)
				for j := lo; j <= hi; j++ {
					ij := base + j*hw + p
					cross += dy[ij] * y[ij] / l.scale[ij]
				}
				acc -= factor * x[i] * cross
				dx[i] += acc
			}
		}
	}
}
