package dnn

import "math"

func exp32(x float32) float32 { return float32(math.Exp(float64(x))) }

func tanh32(x float32) float32 { return float32(math.Tanh(float64(x))) }

func log32(x float32) float32 { return float32(math.Log(float64(x))) }

func pow32(x, y float32) float32 { return float32(math.Pow(float64(x), float64(y))) }

func sqrt32(x float32) float32 { return float32(math.Sqrt(float64(x))) }

func max32(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}
