package dnn

import (
	"fmt"
	"sort"
	"strings"
)

// entry wires one layer into the net's blob namespace.
type entry struct {
	layer     Layer
	bottoms   []string
	tops      []string
	bottomB   []*Blob
	topB      []*Blob
	propagate []bool
}

// Net is a feed-forward DAG of layers over named blobs, Caffe-style. Layers
// execute in insertion order for Forward and reverse order for Backward
// (builders add layers topologically, as prototxt files do).
type Net struct {
	name    string
	blobs   map[string]*Blob
	inputs  map[string]bool
	entries []entry
	built   bool

	// Operator DAG scheduler state (see dag.go): dagOn routes
	// Forward/Backward through ForwardDAG/BackwardDAG; dag/dagErr cache
	// the lazily built dependency graph.
	dagOn  bool
	dag    *layerDAG
	dagErr error

	// fusionOn records whether EnableFusion activated any fused GEMM
	// epilogues (see fusion.go).
	fusionOn bool

	// bwdHooks are the gradient-ready observers fired by OnLayerBackward
	// registrations as backward retires each layer (see that method for the
	// ordering contract).
	bwdHooks []func(layer int)
}

// Name returns the net's name.
func (n *Net) Name() string { return n.name }

// Blob returns the named blob, or nil.
func (n *Net) Blob(name string) *Blob { return n.blobs[name] }

// Layers returns the layers in forward order.
func (n *Net) Layers() []Layer {
	out := make([]Layer, len(n.entries))
	for i, e := range n.entries {
		out[i] = e.layer
	}
	return out
}

// LayerByName returns the named layer, or nil.
func (n *Net) LayerByName(name string) Layer {
	for _, e := range n.entries {
		if e.layer.Name() == name {
			return e.layer
		}
	}
	return nil
}

// Params returns every distinct learnable blob (shared parameters are
// deduplicated).
func (n *Net) Params() []*Blob {
	seen := map[*Blob]bool{}
	var out []*Blob
	for _, e := range n.entries {
		for _, p := range e.layer.Params() {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// LayerCount returns the number of layer entries in forward order.
func (n *Net) LayerCount() int { return len(n.entries) }

// ParamOwners returns, for each parameter in Params() order, the entry
// indices (forward order) of every layer that owns it. Most parameters have
// one owner; shared parameters (ShareParams, e.g. Siamese towers) list every
// sharing layer, each of which accumulates into the blob's diff during
// backward. A parameter's gradient is final once *all* of its owner layers
// have retired their backward — the readiness condition gradient-bucketing
// consumers (internal/parallel's overlapped all-reduce) build on.
func (n *Net) ParamOwners() [][]int {
	idx := map[*Blob]int{}
	var owners [][]int
	for ei, e := range n.entries {
		for _, p := range e.layer.Params() {
			pi, ok := idx[p]
			if !ok {
				pi = len(owners)
				idx[p] = pi
				owners = append(owners, nil)
			}
			owners[pi] = append(owners[pi], ei)
		}
	}
	return owners
}

// OnLayerBackward registers fn to be called after each layer entry finishes
// its backward pass, with the entry's forward-order index. Contract:
//
//   - Serial backward fires hooks in exact reverse insertion order; the DAG
//     scheduler fires them in completion order on its scheduler goroutine,
//     after the node's scratch folds are applied. Either way, when the hook
//     for layer i fires, every gradient write layer i performs (its own
//     params and bottom diffs) has fully retired on the host.
//   - Hooks for one net fire serially (never concurrently with each other)
//     and must not call back into the net.
//   - Hooks fire on success only; a failing backward skips the remaining
//     layers' hooks and returns the error.
//
// Registrations are append-only and cheap to leave in place; a net with no
// hooks pays nothing.
func (n *Net) OnLayerBackward(fn func(layer int)) {
	n.bwdHooks = append(n.bwdHooks, fn)
}

// fireLayerBackward invokes the registered gradient-ready hooks for entry i.
func (n *Net) fireLayerBackward(i int) {
	for _, fn := range n.bwdHooks {
		fn(i)
	}
}

// SetInputData copies values into the named input blob.
func (n *Net) SetInputData(name string, values []float32) error {
	b := n.blobs[name]
	if b == nil {
		return fmt.Errorf("net %s: no blob %q", n.name, name)
	}
	if !n.inputs[name] {
		return fmt.Errorf("net %s: blob %q is not an input", n.name, name)
	}
	if len(values) != b.Count() {
		return fmt.Errorf("net %s: input %q wants %d values, got %d", n.name, name, b.Count(), len(values))
	}
	copy(b.Data.Data(), values)
	return nil
}

// UploadInputs models the host→device transfer of every input blob through
// the launcher (a no-op for launchers without transfer modeling). Call it
// after SetInputData when input-copy time should appear on the simulated
// timeline.
func (n *Net) UploadInputs(ctx *Context) error {
	up, ok := ctx.L.(Uploader)
	if !ok {
		return nil
	}
	for _, name := range n.inputNames() {
		if b := n.blobs[name]; b != nil {
			if err := up.UploadBytes(int64(b.Count()) * 4); err != nil {
				return err
			}
		}
	}
	return nil
}

// StageInputs models the host→device transfer of every input blob through
// the launcher's dedicated copy stream when it has one (InputStager), so
// input copies overlap compute; launchers without a copy stream fall back
// to the default-stream UploadInputs path. The copies land identical bytes
// either way — only the simulated timeline differs.
func (n *Net) StageInputs(ctx *Context) error {
	st, ok := ctx.L.(InputStager)
	if !ok {
		return n.UploadInputs(ctx)
	}
	for _, name := range n.inputNames() {
		if b := n.blobs[name]; b != nil {
			if err := st.StageInput(int64(b.Count()) * 4); err != nil {
				return err
			}
		}
	}
	return nil
}

// InputNames returns the input blob names in sorted order — the
// deterministic order modeled transfers and the elastic trainer's shard
// stashes iterate in.
func (n *Net) InputNames() []string { return n.inputNames() }

// inputNames returns the input blob names sorted, so modeled transfer
// order (and therefore simulated timelines) is reproducible run to run.
func (n *Net) inputNames() []string {
	names := make([]string, 0, len(n.inputs))
	for name := range n.inputs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ClearDiffs zeroes all blob and parameter gradients; call at the start of
// each iteration (Backward accumulates).
func (n *Net) ClearDiffs() {
	for _, b := range n.blobs {
		b.ZeroDiff()
	}
	for _, p := range n.Params() {
		p.ZeroDiff()
	}
}

// Forward runs all layers and returns the weighted sum of loss-layer
// outputs. With ctx.Compute disabled the returned loss is meaningless (the
// kernel stream is still exact). With EnableDAG(true) independent layers
// execute concurrently through the operator DAG scheduler; trained
// numerics are bitwise identical either way.
func (n *Net) Forward(ctx *Context) (float64, error) {
	if n.dagOn {
		return n.ForwardDAG(ctx)
	}
	return n.forwardSerial(ctx)
}

// forwardSerial is the exact insertion-order forward pass — the numeric
// reference the DAG path must reproduce bit for bit, and the path every
// profiling iteration takes.
func (n *Net) forwardSerial(ctx *Context) (float64, error) {
	if !n.built {
		return 0, fmt.Errorf("net %s: not built", n.name)
	}
	loss := 0.0
	for i := range n.entries {
		e := &n.entries[i]
		ctx.Begin(e.layer.Name() + "/fwd")
		if err := e.layer.Forward(ctx, e.bottomB, e.topB); err != nil {
			return 0, fmt.Errorf("net %s: forward %s: %w", n.name, e.layer.Name(), err)
		}
		if ll, ok := e.layer.(LossLayer); ok {
			loss += float64(ll.LossWeight()) * float64(e.topB[0].Data.Data()[0])
		}
	}
	return loss, nil
}

// Backward runs all layers in reverse, accumulating gradients. With
// EnableDAG(true) it routes through the operator DAG scheduler.
func (n *Net) Backward(ctx *Context) error {
	if n.dagOn {
		return n.BackwardDAG(ctx)
	}
	return n.backwardSerial(ctx)
}

// backwardSerial is the exact reverse-insertion-order backward pass — the
// fold order the DAG path's serialization edges and scratch folds
// reproduce.
func (n *Net) backwardSerial(ctx *Context) error {
	if !n.built {
		return fmt.Errorf("net %s: not built", n.name)
	}
	for i := len(n.entries) - 1; i >= 0; i-- {
		e := &n.entries[i]
		ctx.Begin(e.layer.Name() + "/bwd")
		if err := e.layer.Backward(ctx, e.topB, e.propagate, e.bottomB); err != nil {
			return fmt.Errorf("net %s: backward %s: %w", n.name, e.layer.Name(), err)
		}
		n.fireLayerBackward(i)
	}
	return nil
}

// ForwardBackward is one full pass: clear diffs, forward, backward.
func (n *Net) ForwardBackward(ctx *Context) (float64, error) {
	n.ClearDiffs()
	loss, err := n.Forward(ctx)
	if err != nil {
		return 0, err
	}
	return loss, n.Backward(ctx)
}

// OutputValue returns element 0 of the named blob's data (scalar outputs
// such as loss and accuracy).
func (n *Net) OutputValue(blob string) (float32, error) {
	b := n.blobs[blob]
	if b == nil {
		return 0, fmt.Errorf("net %s: no blob %q", n.name, blob)
	}
	return b.Data.Data()[0], nil
}

// ShareParams makes dst use src's parameter blobs (Caffe's named-parameter
// sharing, used by the Siamese twins). Both layers must implement
// ParamSharer and agree on shapes.
func (n *Net) ShareParams(src, dst string) error {
	s := n.LayerByName(src)
	d := n.LayerByName(dst)
	if s == nil || d == nil {
		return fmt.Errorf("net %s: ShareParams: unknown layer %q or %q", n.name, src, dst)
	}
	sharer, ok := d.(ParamSharer)
	if !ok {
		return fmt.Errorf("net %s: layer %q cannot share parameters", n.name, dst)
	}
	if err := sharer.ShareParamsWith(s); err != nil {
		return err
	}
	// Sharing adds backward serialization edges between the owners; a
	// cached DAG would miss them.
	n.invalidateDAG()
	return nil
}

// ParamSharer is implemented by layers that support Caffe-style parameter
// sharing.
type ParamSharer interface {
	ShareParamsWith(src Layer) error
}

// ShareParamsWith implements ParamSharer for convolution.
func (l *ConvLayer) ShareParamsWith(src Layer) error {
	s, ok := src.(*ConvLayer)
	if !ok {
		return fmt.Errorf("conv %s: cannot share with %T", l.name, src)
	}
	if s.weight.Count() != l.weight.Count() {
		return fmt.Errorf("conv %s: weight shape mismatch with %s", l.name, s.name)
	}
	l.weight = s.weight
	l.param = []*Blob{l.weight}
	if l.bias != nil && s.bias != nil {
		if s.bias.Count() != l.bias.Count() {
			return fmt.Errorf("conv %s: bias shape mismatch with %s", l.name, s.name)
		}
		l.bias = s.bias
		l.param = append(l.param, l.bias)
	}
	return nil
}

// ShareParamsWith implements ParamSharer for inner product.
func (l *IPLayer) ShareParamsWith(src Layer) error {
	s, ok := src.(*IPLayer)
	if !ok {
		return fmt.Errorf("ip %s: cannot share with %T", l.name, src)
	}
	if s.weight.Count() != l.weight.Count() {
		return fmt.Errorf("ip %s: weight shape mismatch with %s", l.name, s.name)
	}
	l.weight = s.weight
	l.param = []*Blob{l.weight}
	if l.bias != nil && s.bias != nil {
		l.bias = s.bias
		l.param = append(l.param, l.bias)
	}
	return nil
}

// Builder assembles a Net. Add layers in topological order; Build runs
// Setup for each with bottoms resolved.
type Builder struct {
	net *Net
	err error
}

// NewNet starts a builder.
func NewNet(name string) *Builder {
	return &Builder{net: &Net{
		name:   name,
		blobs:  map[string]*Blob{},
		inputs: map[string]bool{},
	}}
}

// Input declares an externally fed blob (data, labels).
func (b *Builder) Input(name string, shape ...int) *Builder {
	if b.err != nil {
		return b
	}
	if _, dup := b.net.blobs[name]; dup {
		b.err = fmt.Errorf("net %s: duplicate blob %q", b.net.name, name)
		return b
	}
	b.net.blobs[name] = NewBlob(name, shape...)
	b.net.inputs[name] = true
	return b
}

// Add wires a layer from bottoms to tops. Top blobs are created on first
// use; reusing an existing blob name as a top is an error (no in-place
// layers — backward accumulation relies on distinct blobs).
func (b *Builder) Add(layer Layer, bottoms, tops []string) *Builder {
	if b.err != nil {
		return b
	}
	e := entry{layer: layer, bottoms: bottoms, tops: tops}
	for _, name := range bottoms {
		blob := b.net.blobs[name]
		if blob == nil {
			b.err = fmt.Errorf("net %s: layer %s: unknown bottom %q", b.net.name, layer.Name(), name)
			return b
		}
		e.bottomB = append(e.bottomB, blob)
		// Gradients never flow into externally fed inputs.
		e.propagate = append(e.propagate, !b.net.inputs[name])
	}
	for _, name := range tops {
		if _, dup := b.net.blobs[name]; dup {
			b.err = fmt.Errorf("net %s: layer %s: top %q already exists (in-place unsupported)",
				b.net.name, layer.Name(), name)
			return b
		}
		blob := NewBlob(name)
		b.net.blobs[name] = blob
		e.topB = append(e.topB, blob)
	}
	b.net.entries = append(b.net.entries, e)
	return b
}

// Build runs Setup on every layer in order and returns the finished net.
func (b *Builder) Build(ctx *Context) (*Net, error) {
	if b.err != nil {
		return nil, b.err
	}
	for i := range b.net.entries {
		e := &b.net.entries[i]
		if err := e.layer.Setup(ctx, e.bottomB, e.topB); err != nil {
			return nil, fmt.Errorf("net %s: setup %s: %w", b.net.name, e.layer.Name(), err)
		}
	}
	b.net.built = true
	return b.net, nil
}

// Summary renders a human-readable table of layers and blob shapes.
func (n *Net) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "net %q: %d layers, %d blobs\n", n.name, len(n.entries), len(n.blobs))
	params := 0
	for _, p := range n.Params() {
		params += p.Count()
	}
	for _, e := range n.entries {
		tops := make([]string, 0, len(e.topB))
		for _, t := range e.topB {
			tops = append(tops, fmt.Sprintf("%s%v", t.Name, t.Shape()))
		}
		fmt.Fprintf(&sb, "  %-16s %-16s %s → %s\n",
			e.layer.Name(), e.layer.Type(), strings.Join(e.bottoms, ","), strings.Join(tops, ","))
	}
	fmt.Fprintf(&sb, "  total learnable parameters: %d\n", params)
	if st, err := n.DAGStats(); err == nil && st.Layers > 0 {
		fmt.Fprintf(&sb, "  inter-layer DAG: %s\n", st)
		fmt.Fprintf(&sb, "  critical path: %s\n", strings.Join(st.CriticalPath, " → "))
	}
	if sites := n.FusionPlan(); len(sites) > 0 {
		state := "off; Net.EnableFusion activates"
		if n.fusionOn {
			state = "enabled"
		}
		descs := make([]string, len(sites))
		for i, s := range sites {
			descs[i] = s.String()
		}
		fmt.Fprintf(&sb, "  fusable epilogues (%s): %d sites: %s\n", state, len(sites), strings.Join(descs, ", "))
	}
	return sb.String()
}
