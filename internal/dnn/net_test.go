package dnn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/simgpu"
	"repro/internal/tensor"
)

// buildTinyNet makes a small conv→relu→pool→ip→softmax classifier over
// random inputs, the workhorse for net-level tests.
func buildTinyNet(t testing.TB, batch int, seed int64) *Net {
	t.Helper()
	ctx := NewContext(HostLauncher{}, seed)
	cc := Conv(4, 3, 1, 1)
	cc.Seed = seed
	ic := IP(3)
	ic.Seed = seed
	net, err := NewNet("tiny").
		Input("data", batch, 2, 8, 8).
		Input("label", batch).
		Add(NewConv("conv1", cc), []string{"data"}, []string{"c1"}).
		Add(NewReLU("relu1"), []string{"c1"}, []string{"r1"}).
		Add(NewPool("pool1", Pool(MaxPool, 2, 2)), []string{"r1"}, []string{"p1"}).
		Add(NewIP("ip1", ic), []string{"p1"}, []string{"scores"}).
		Add(NewSoftmaxLoss("loss"), []string{"scores", "label"}, []string{"loss"}).
		Build(ctx)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return net
}

func fillTinyInputs(t testing.TB, net *Net, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := net.Blob("data")
	vals := make([]float32, data.Count())
	for i := range vals {
		vals[i] = float32(rng.NormFloat64())
	}
	if err := net.SetInputData("data", vals); err != nil {
		t.Fatal(err)
	}
	labels := make([]float32, net.Blob("label").Count())
	for i := range labels {
		labels[i] = float32(rng.Intn(3))
	}
	if err := net.SetInputData("label", labels); err != nil {
		t.Fatal(err)
	}
}

func TestNetForwardBackward(t *testing.T) {
	net := buildTinyNet(t, 4, 1)
	fillTinyInputs(t, net, 2)
	ctx := NewContext(HostLauncher{}, 1)
	loss, err := net.ForwardBackward(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 || math.IsNaN(loss) {
		t.Fatalf("loss = %v", loss)
	}
	// Gradients should be nonzero somewhere.
	total := 0.0
	for _, p := range net.Params() {
		total += p.Diff.AbsSum()
	}
	if total == 0 {
		t.Fatal("all parameter gradients are zero")
	}
	// Input label blob must not receive gradient (propagate=false).
	if net.Blob("label").Diff.AbsSum() != 0 {
		t.Fatal("label blob received gradient")
	}
}

func TestNetBuilderErrors(t *testing.T) {
	ctx := NewContext(HostLauncher{}, 1)
	if _, err := NewNet("bad").
		Add(NewReLU("r"), []string{"missing"}, []string{"out"}).
		Build(ctx); err == nil {
		t.Fatal("unknown bottom accepted")
	}
	if _, err := NewNet("bad2").
		Input("a", 1, 1).
		Add(NewReLU("r"), []string{"a"}, []string{"a"}).
		Build(ctx); err == nil {
		t.Fatal("in-place top accepted")
	}
	if _, err := NewNet("bad3").
		Input("a", 1, 2).
		Input("a", 1, 2).
		Build(ctx); err == nil {
		t.Fatal("duplicate input accepted")
	}
	// Setup errors propagate out of Build.
	if _, err := NewNet("bad4").
		Input("x", 2, 3). // 2-D input into conv
		Add(NewConv("c", Conv(2, 3, 1, 0)), []string{"x"}, []string{"y"}).
		Build(ctx); err == nil {
		t.Fatal("conv setup error not propagated")
	}
}

func TestNetAccessors(t *testing.T) {
	net := buildTinyNet(t, 2, 5)
	if net.Name() != "tiny" {
		t.Fatal("name")
	}
	if len(net.Layers()) != 5 {
		t.Fatalf("layers = %d", len(net.Layers()))
	}
	if net.LayerByName("conv1") == nil || net.LayerByName("nope") != nil {
		t.Fatal("LayerByName")
	}
	if net.Blob("scores") == nil {
		t.Fatal("Blob")
	}
	// conv weight+bias, ip weight+bias
	if len(net.Params()) != 4 {
		t.Fatalf("params = %d", len(net.Params()))
	}
	if s := net.Summary(); len(s) == 0 {
		t.Fatal("summary empty")
	}
	if err := net.SetInputData("scores", nil); err == nil {
		t.Fatal("SetInputData on non-input accepted")
	}
	if err := net.SetInputData("data", []float32{1}); err == nil {
		t.Fatal("SetInputData size mismatch accepted")
	}
	if _, err := net.OutputValue("loss"); err != nil {
		t.Fatal(err)
	}
	if _, err := net.OutputValue("nope"); err == nil {
		t.Fatal("OutputValue on missing blob accepted")
	}
}

func TestAccuracyLayer(t *testing.T) {
	ctx := NewContext(HostLauncher{}, 1)
	scores := NewBlob("scores", 4, 3)
	labels := NewBlob("labels", 4)
	copy(scores.Data.Data(), []float32{
		1, 5, 0, // → 1
		9, 2, 3, // → 0
		0, 1, 7, // → 2
		2, 8, 1, // → 1
	})
	copy(labels.Data.Data(), []float32{1, 0, 2, 0}) // 3 of 4 correct
	top := NewBlob("acc")
	l := NewAccuracy("acc")
	if err := l.Setup(ctx, []*Blob{scores, labels}, []*Blob{top}); err != nil {
		t.Fatal(err)
	}
	if err := l.Forward(ctx, []*Blob{scores, labels}, []*Blob{top}); err != nil {
		t.Fatal(err)
	}
	if got := top.Data.Data()[0]; got != 0.75 {
		t.Fatalf("accuracy = %v, want 0.75", got)
	}
	if err := l.Backward(ctx, []*Blob{top}, []bool{true, false}, []*Blob{scores, labels}); err != nil {
		t.Fatal(err)
	}
}

func TestDropoutSemantics(t *testing.T) {
	ctx := NewContext(HostLauncher{}, 7)
	bottom := randBlob("x", 3, 10, 100)
	top := NewBlob("y")
	l := NewDropout("drop", 0.5)
	if err := l.Setup(ctx, []*Blob{bottom}, []*Blob{top}); err != nil {
		t.Fatal(err)
	}
	if err := l.Forward(ctx, []*Blob{bottom}, []*Blob{top}); err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for i, v := range top.Data.Data() {
		if v == 0 {
			zeros++
		} else {
			want := bottom.Data.Data()[i] * 2
			if math.Abs(float64(v-want)) > 1e-6 {
				t.Fatalf("survivor not scaled: %v vs %v", v, want)
			}
		}
	}
	frac := float64(zeros) / float64(top.Count())
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("drop fraction = %v, want ≈0.5", frac)
	}
	// Test phase: identity.
	ctx.Phase = Test
	if err := l.Forward(ctx, []*Blob{bottom}, []*Blob{top}); err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(top.Data, bottom.Data) {
		t.Fatal("test-phase dropout is not identity")
	}
	// Backward in train phase respects the mask.
	ctx.Phase = Train
	if err := l.Forward(ctx, []*Blob{bottom}, []*Blob{top}); err != nil {
		t.Fatal(err)
	}
	top.Diff.Fill(1)
	bottom.ZeroDiff()
	if err := l.Backward(ctx, []*Blob{top}, []bool{true}, []*Blob{bottom}); err != nil {
		t.Fatal(err)
	}
	for i, v := range bottom.Diff.Data() {
		if top.Data.Data()[i] == 0 && v != 0 {
			t.Fatal("gradient flowed through dropped unit")
		}
	}
	// Invalid ratio rejected.
	bad := NewDropout("bad", 1.0)
	if err := bad.Setup(ctx, []*Blob{bottom}, []*Blob{NewBlob("t")}); err == nil {
		t.Fatal("ratio 1.0 accepted")
	}
}

func TestParamSharing(t *testing.T) {
	ctx := NewContext(HostLauncher{}, 3)
	cc1 := Conv(3, 3, 1, 1)
	cc1.Seed = 10
	cc2 := Conv(3, 3, 1, 1)
	cc2.Seed = 20 // different init, will be replaced by sharing
	net, err := NewNet("twins").
		Input("a", 2, 1, 6, 6).
		Input("b", 2, 1, 6, 6).
		Add(NewConv("conv", cc1), []string{"a"}, []string{"fa"}).
		Add(NewConv("conv_p", cc2), []string{"b"}, []string{"fb"}).
		Add(NewEuclideanLoss("loss"), []string{"fa", "fb"}, []string{"l"}).
		Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.ShareParams("conv", "conv_p"); err != nil {
		t.Fatal(err)
	}
	// After sharing, Params dedups: conv weight+bias only.
	if got := len(net.Params()); got != 2 {
		t.Fatalf("params after sharing = %d, want 2", got)
	}
	fillRandom(net.Blob("a"), 31)
	fillRandom(net.Blob("b"), 32)
	if _, err := net.ForwardBackward(ctx); err != nil {
		t.Fatal(err)
	}
	// Identical inputs through shared weights give identical outputs.
	net.Blob("b").Data.CopyFrom(net.Blob("a").Data)
	if _, err := net.Forward(ctx); err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(net.Blob("fa").Data, net.Blob("fb").Data) != 0 {
		t.Fatal("shared-weight twins disagree on identical input")
	}
	// Error paths.
	if err := net.ShareParams("nope", "conv_p"); err == nil {
		t.Fatal("unknown src accepted")
	}
	if err := net.ShareParams("conv", "loss"); err == nil {
		t.Fatal("non-sharer dst accepted")
	}
}

func fillRandom(b *Blob, seed int64) {
	tensor.GaussianFiller{Std: 1}.Fill(b.Data, rand.New(rand.NewSource(seed)))
}

// TestWidthInvariance is the convergence-invariance property at the net
// level: forward outputs are bitwise identical for any launcher width, and
// gradients agree tightly (the per-chain partial fold reassociates float32
// sums, which is exactly what a stream-parallel GPU implementation does).
func TestWidthInvariance(t *testing.T) {
	run := func(width int) (*Net, *Blob) {
		net := buildTinyNet(t, 6, 99)
		fillTinyInputs(t, net, 100)
		ctx := NewContext(widthLauncher{width}, 1)
		if _, err := net.ForwardBackward(ctx); err != nil {
			t.Fatal(err)
		}
		return net, net.Blob("scores")
	}
	net1, s1 := run(1)
	net4, s4 := run(4)
	if !tensor.Equal(s1.Data, s4.Data) {
		t.Fatal("forward outputs differ across launcher widths")
	}
	p1 := net1.Params()
	p4 := net4.Params()
	for i := range p1 {
		if d := tensor.MaxAbsDiff(p1[i].Diff, p4[i].Diff); d > 1e-4 {
			t.Fatalf("gradient %s differs by %v across widths", p1[i].Name, d)
		}
	}
}

// widthLauncher is a host launcher that reports an arbitrary width, forcing
// layers onto their multi-chain code paths without a device.
type widthLauncher struct{ w int }

func (l widthLauncher) BeginLayer(string) {}
func (l widthLauncher) Launch(k *simgpu.Kernel, _ int) error {
	if k.Fn != nil {
		k.Fn()
	}
	return nil
}
func (l widthLauncher) Sync() error { return nil }
func (l widthLauncher) Width() int  { return l.w }

func TestRunDeterminism(t *testing.T) {
	step := func() []float32 {
		net := buildTinyNet(t, 4, 77)
		fillTinyInputs(t, net, 78)
		ctx := NewContext(HostLauncher{}, 79)
		s := NewSolver(net, ctx, SolverConfig{BaseLR: 0.01, Momentum: 0.9, WeightDecay: 0.001})
		for i := 0; i < 3; i++ {
			if _, err := s.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return append([]float32(nil), net.Params()[0].Data.Data()...)
	}
	a, b := step(), step()
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("nondeterministic training at weight %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBlobAccessors(t *testing.T) {
	b := NewBlob("x", 2, 3, 4, 5)
	if b.Num() != 2 || b.Channels() != 3 || b.Height() != 4 || b.Width() != 5 {
		t.Fatal("4-D accessors")
	}
	if b.SampleSize() != 60 {
		t.Fatalf("SampleSize = %d", b.SampleSize())
	}
	if len(b.SampleData(1)) != 60 || len(b.SampleDiff(0)) != 60 {
		t.Fatal("sample slices")
	}
	v := NewBlob("v", 7)
	if v.Num() != 7 || v.Channels() != 1 {
		t.Fatal("1-D accessors")
	}
	b.Reshape(2, 3, 20) // same count: reshape in place
	if b.Count() != 120 {
		t.Fatal("reshape count")
	}
	b.Reshape(2, 2)
	if b.Count() != 4 {
		t.Fatal("reshape realloc")
	}
	if b.String() == "" {
		t.Fatal("String")
	}
}

func TestUploadInputs(t *testing.T) {
	dev := simgpu.NewDevice(simgpu.TeslaP100)
	net := buildTinyNet(t, 4, 881)
	ctx := NewContext(SerialLauncher{Dev: dev}, 1)
	if err := net.UploadInputs(ctx); err != nil {
		t.Fatal(err)
	}
	recs, err := dev.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 { // data + label inputs
		t.Fatalf("upload records = %d, want 2", len(recs))
	}
	var total float64
	for _, r := range recs {
		if r.Name != "memcpyHtoD" {
			t.Fatalf("record %q", r.Name)
		}
		total += r.Bytes
	}
	want := float64(net.Blob("data").Count()+net.Blob("label").Count()) * 4
	if total != want {
		t.Fatalf("uploaded %v bytes, want %v", total, want)
	}
	// Host-only launcher: silently a no-op.
	if err := net.UploadInputs(NewContext(HostLauncher{}, 1)); err != nil {
		t.Fatal(err)
	}
}
