package dnn

import (
	"fmt"
	"math"

	"repro/internal/kernels"
)

// PoolMethod selects max or average pooling.
type PoolMethod int

// Pooling methods.
const (
	MaxPool PoolMethod = iota
	AvePool
)

// PoolConfig describes a pooling layer.
type PoolConfig struct {
	Method           PoolMethod
	KernelH, KernelW int
	StrideH, StrideW int
	PadH, PadW       int
}

// Pool builds a square pooling config.
func Pool(method PoolMethod, kernel, stride int) PoolConfig {
	return PoolConfig{Method: method, KernelH: kernel, KernelW: kernel, StrideH: stride, StrideW: stride}
}

// PoolLayer pools spatially. Like Caffe's GPU pooling it is one kernel over
// the whole batch (pooling is cheap and memory-bound, so Caffe never splits
// it; GLP4NN leaves such layers untouched).
type PoolLayer struct {
	baseLayer
	cfg PoolConfig

	n, c, h, w, oh, ow int
	mask               []int32 // argmax indices for MaxPool backward
}

// NewPool constructs a pooling layer.
func NewPool(name string, cfg PoolConfig) *PoolLayer {
	return &PoolLayer{baseLayer: baseLayer{name: name, typ: "Pooling"}, cfg: cfg}
}

// Setup implements Layer. Caffe uses ceil division for pooled dims.
func (l *PoolLayer) Setup(ctx *Context, bottom, top []*Blob) error {
	if len(bottom) != 1 || len(top) != 1 {
		return fmt.Errorf("pool %s: want 1 bottom and 1 top", l.name)
	}
	b := bottom[0]
	l.n, l.c, l.h, l.w = b.Num(), b.Channels(), b.Height(), b.Width()
	l.oh = int(math.Ceil(float64(l.h+2*l.cfg.PadH-l.cfg.KernelH)/float64(l.cfg.StrideH))) + 1
	l.ow = int(math.Ceil(float64(l.w+2*l.cfg.PadW-l.cfg.KernelW)/float64(l.cfg.StrideW))) + 1
	if l.oh <= 0 || l.ow <= 0 {
		return fmt.Errorf("pool %s: empty output", l.name)
	}
	top[0].Reshape(l.n, l.c, l.oh, l.ow)
	if l.cfg.Method == MaxPool {
		l.mask = make([]int32, top[0].Count())
	}
	return nil
}

// Forward implements Layer.
func (l *PoolLayer) Forward(ctx *Context, bottom, top []*Blob) error {
	nOut := top[0].Count()
	window := float64(l.cfg.KernelH * l.cfg.KernelW)
	name := "maxpool_fwd"
	if l.cfg.Method == AvePool {
		name = "avepool_fwd"
	}
	src := bottom[0].Data.Data()
	dst := top[0].Data.Data()
	k := kernels.Elementwise(name, l.name, nOut, 4*(window+1), window, func() {
		l.forwardHost(src, dst)
	})
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}

func (l *PoolLayer) forwardHost(src, dst []float32) {
	kh, kw := l.cfg.KernelH, l.cfg.KernelW
	sh, sw := l.cfg.StrideH, l.cfg.StrideW
	ph, pw := l.cfg.PadH, l.cfg.PadW
	idx := 0
	for nc := 0; nc < l.n*l.c; nc++ {
		plane := src[nc*l.h*l.w:]
		for y := 0; y < l.oh; y++ {
			for x := 0; x < l.ow; x++ {
				y0, x0 := y*sh-ph, x*sw-pw
				y1, x1 := y0+kh, x0+kw
				if y0 < 0 {
					y0 = 0
				}
				if x0 < 0 {
					x0 = 0
				}
				if y1 > l.h {
					y1 = l.h
				}
				if x1 > l.w {
					x1 = l.w
				}
				if l.cfg.Method == MaxPool {
					best := float32(math.Inf(-1))
					bestAt := int32(-1)
					for yy := y0; yy < y1; yy++ {
						for xx := x0; xx < x1; xx++ {
							v := plane[yy*l.w+xx]
							if v > best {
								best = v
								bestAt = int32(yy*l.w + xx)
							}
						}
					}
					dst[idx] = best
					l.mask[idx] = bestAt
				} else {
					s := float32(0)
					for yy := y0; yy < y1; yy++ {
						for xx := x0; xx < x1; xx++ {
							s += plane[yy*l.w+xx]
						}
					}
					// Caffe averages over the full (padded) window size.
					dst[idx] = s / float32(kh*kw)
				}
				idx++
			}
		}
	}
}

// Backward implements Layer.
func (l *PoolLayer) Backward(ctx *Context, top []*Blob, propagate []bool, bottom []*Blob) error {
	if !propagate[0] {
		return nil
	}
	nOut := top[0].Count()
	window := float64(l.cfg.KernelH * l.cfg.KernelW)
	name := "maxpool_bwd"
	if l.cfg.Method == AvePool {
		name = "avepool_bwd"
	}
	dtop := top[0].Diff.Data()
	dbot := bottom[0].Diff.Data()
	k := kernels.Elementwise(name, l.name, nOut, 4*(window+1), window, func() {
		l.backwardHost(dtop, dbot)
	})
	if err := ctx.Dispatch(k, 0); err != nil {
		return err
	}
	return ctx.Barrier()
}

func (l *PoolLayer) backwardHost(dtop, dbot []float32) {
	kh, kw := l.cfg.KernelH, l.cfg.KernelW
	sh, sw := l.cfg.StrideH, l.cfg.StrideW
	ph, pw := l.cfg.PadH, l.cfg.PadW
	idx := 0
	for nc := 0; nc < l.n*l.c; nc++ {
		plane := dbot[nc*l.h*l.w:]
		for y := 0; y < l.oh; y++ {
			for x := 0; x < l.ow; x++ {
				g := dtop[idx]
				if l.cfg.Method == MaxPool {
					if at := l.mask[idx]; at >= 0 {
						plane[at] += g
					}
				} else {
					y0, x0 := y*sh-ph, x*sw-pw
					y1, x1 := y0+kh, x0+kw
					if y0 < 0 {
						y0 = 0
					}
					if x0 < 0 {
						x0 = 0
					}
					if y1 > l.h {
						y1 = l.h
					}
					if x1 > l.w {
						x1 = l.w
					}
					share := g / float32(kh*kw)
					for yy := y0; yy < y1; yy++ {
						for xx := x0; xx < x1; xx++ {
							plane[yy*l.w+xx] += share
						}
					}
				}
				idx++
			}
		}
	}
}
