package dnn

import "math/rand"

// Checkpointable randomness. Go's math/rand sources cannot export their
// state, so the context's RNG draws through a counting wrapper: the state is
// (seed, steps consumed), and restoring replays that many steps on a fresh
// source. Replay is exact because the wrapper routes every draw — including
// Uint64 — through the underlying source's Int63, so the step count fully
// determines the source position regardless of which Rand methods were
// mixed.

// RNGState is a restorable position in a context RNG's deterministic
// sequence.
type RNGState struct {
	Seed  int64
	Steps int64
}

// countingSource wraps a math/rand source, counting underlying Int63 steps
// so the stream position can be checkpointed and replayed.
type countingSource struct {
	src   rand.Source
	seed  int64
	steps int64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed), seed: seed}
}

// Int63 implements rand.Source.
func (c *countingSource) Int63() int64 {
	c.steps++
	return c.src.Int63()
}

// Uint64 implements rand.Source64 as the composition of two Int63 steps
// (the same construction math/rand uses), keeping the step count the only
// state beyond the seed.
func (c *countingSource) Uint64() uint64 {
	return uint64(c.Int63())>>31 | uint64(c.Int63())<<32
}

// Seed implements rand.Source.
func (c *countingSource) Seed(seed int64) {
	c.seed, c.steps = seed, 0
	c.src.Seed(seed)
}

// state returns the current checkpoint.
func (c *countingSource) state() RNGState {
	return RNGState{Seed: c.seed, Steps: c.steps}
}

// restoreCountingSource builds a source positioned at st.
func restoreCountingSource(st RNGState) *countingSource {
	c := newCountingSource(st.Seed)
	for i := int64(0); i < st.Steps; i++ {
		c.src.Int63() // replay without re-counting
	}
	c.steps = st.Steps
	return c
}

// RNGState returns the checkpointable state of the context's RNG. The
// second result is false when the RNG was replaced by hand with one the
// context cannot restore.
func (c *Context) RNGState() (RNGState, bool) {
	if c.rngSrc == nil {
		return RNGState{}, false
	}
	return c.rngSrc.state(), true
}

// RestoreRNG rewinds (or fast-forwards) the context's RNG to a state
// previously returned by RNGState: every subsequent draw repeats the
// sequence that followed the checkpoint.
func (c *Context) RestoreRNG(st RNGState) {
	c.rngSrc = restoreCountingSource(st)
	c.RNG = rand.New(c.rngSrc)
}
