package dnn

import (
	"math"
	"math/rand"
	"testing"
)

// drawMix pulls a representative mix of Rand methods (the ones layers use:
// uniform floats for dropout and fill, ints for sampling) and returns the
// values bit-exactly comparable.
func drawMix(r *rand.Rand, n int) []uint64 {
	out := make([]uint64, 0, 3*n)
	for i := 0; i < n; i++ {
		out = append(out,
			uint64(math.Float32bits(r.Float32())),
			uint64(r.Intn(1000)),
			math.Float64bits(r.NormFloat64()),
		)
	}
	return out
}

// TestContextRNGMatchesPlainSource: the counting source must not change the
// RNG sequence relative to a plain rand.NewSource — contexts built before
// and after the checkpointing change draw identical numbers.
func TestContextRNGMatchesPlainSource(t *testing.T) {
	ctx := NewContext(HostLauncher{}, 1234)
	plain := rand.New(rand.NewSource(1234))
	a, b := drawMix(ctx.RNG, 200), drawMix(plain, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged from plain source: %x vs %x", i, a[i], b[i])
		}
	}
}

// TestRNGStateRestoreReplays: restoring a checkpoint replays the exact draw
// sequence that followed it, including after further draws corrupted the
// stream position.
func TestRNGStateRestoreReplays(t *testing.T) {
	ctx := NewContext(HostLauncher{}, 99)
	drawMix(ctx.RNG, 57) // advance to an arbitrary position

	st, ok := ctx.RNGState()
	if !ok {
		t.Fatal("context RNG not checkpointable")
	}
	want := drawMix(ctx.RNG, 100)

	drawMix(ctx.RNG, 13) // keep moving; restore must rewind past this
	ctx.RestoreRNG(st)
	got := drawMix(ctx.RNG, 100)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw %d after restore diverged: %x vs %x", i, got[i], want[i])
		}
	}
}

// TestRNGStateCrossesContexts: a state restores into a context built with a
// different seed (the trainer restores checkpoint states into live replica
// contexts).
func TestRNGStateCrossesContexts(t *testing.T) {
	a := NewContext(HostLauncher{}, 7)
	drawMix(a.RNG, 31)
	st, _ := a.RNGState()
	want := drawMix(a.RNG, 50)

	b := NewContext(HostLauncher{}, 1<<40)
	drawMix(b.RNG, 5)
	b.RestoreRNG(st)
	got := drawMix(b.RNG, 50)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cross-context draw %d diverged", i)
		}
	}
	if st2, ok := b.RNGState(); !ok || st2.Seed != st.Seed {
		t.Fatalf("restored context lost checkpointability: %v %v", st2, ok)
	}
}

// TestSolverHistorySnapshotRoundTrip: snapshots are deep copies and restore
// rewinds both mutated and newly created history entries.
func TestSolverHistorySnapshotRoundTrip(t *testing.T) {
	ctx := NewContext(HostLauncher{}, 5)
	net, err := NewNet("tiny").
		Input("data", 2, 3).
		Input("label", 2).
		Add(NewIP("ip", IP(4)), []string{"data"}, []string{"scores"}).
		Add(NewSoftmaxLoss("loss"), []string{"scores", "label"}, []string{"loss"}).
		Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver(net, ctx, CIFAR10QuickSolver())
	feed := func() {
		d := net.Blob("data").Data.Data()
		for i := range d {
			d[i] = ctx.RNG.Float32()
		}
		l := net.Blob("label").Data.Data()
		for i := range l {
			l[i] = float32(i % 4)
		}
	}

	feed()
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	snap := s.HistorySnapshot()
	if len(snap) == 0 {
		t.Fatal("no history after a step")
	}
	before := make(map[*Blob][]float32, len(snap))
	for p, h := range snap {
		before[p] = append([]float32(nil), h...)
	}

	feed()
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	// The live history moved on; the snapshot must not have.
	for p, h := range snap {
		for i := range h {
			if h[i] != before[p][i] {
				t.Fatal("snapshot aliases live history")
			}
		}
	}

	s.RestoreHistory(snap)
	for p, want := range snap {
		got := s.HistorySnapshot()[p]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("history of %s not restored", p.Name)
			}
		}
	}
}
