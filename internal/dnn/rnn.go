package dnn

import (
	"fmt"

	"repro/internal/kernels"
	"repro/internal/tensor"
)

// RNNConfig parameterizes a vanilla (Elman) recurrent layer.
type RNNConfig struct {
	Hidden       int
	WeightFiller tensor.Filler
	BiasFiller   tensor.Filler
	Seed         int64
}

// RNNLayer is a tanh Elman RNN over (N, T, D) inputs producing the full
// hidden sequence (N, T, H):
//
//	h_t = tanh(Wx·x_t + Wh·h_{t−1} + b),  h_0 = 0.
//
// It exists to exercise the paper's network-agnostic claim beyond CNNs
// ("samples from the same batch can be independently processed in parallel
// ... including CNNs and RNNs"): each batch sample's timestep recurrence is
// one dependency chain of T kernels, so GLP4NN overlaps *samples* while the
// chain preserves the sequential dependence *within* a sample — exactly the
// batch-level parallelism of Algorithms 1/2 applied to recurrence.
// Weight gradients use the same per-chain partial buffers + fixed-order
// fold as convolution.
type RNNLayer struct {
	baseLayer
	cfg RNNConfig

	wx *Blob // (H, D)
	wh *Blob // (H, H)
	b  *Blob // (H)

	n, t, d, h int

	hs  []float32 // cached hidden states: N × (T+1) × H, hs[.,0,.] = 0
	pre []float32 // cached pre-activations: N × T × H (for backward)

	// Per-chain backward scratch, leased from the shared tensor arena for
	// one pass and released after the final fold barrier (see ConvLayer).
	partWx  []*tensor.Buf
	partWh  []*tensor.Buf
	partB   []*tensor.Buf
	dhBuf   []*tensor.Buf // per-chain dh_{t} carry
	dpreBuf []*tensor.Buf // per-chain dpre scratch (was a per-step alloc)
}

// NewRNN constructs a recurrent layer.
func NewRNN(name string, cfg RNNConfig) *RNNLayer {
	if cfg.WeightFiller == nil {
		cfg.WeightFiller = tensor.XavierFiller{}
	}
	if cfg.BiasFiller == nil {
		cfg.BiasFiller = tensor.ConstantFiller{Value: 0}
	}
	return &RNNLayer{baseLayer: baseLayer{name: name, typ: "RNN"}, cfg: cfg}
}

// Setup implements Layer. Bottom must be (N, T, D).
func (l *RNNLayer) Setup(ctx *Context, bottom, top []*Blob) error {
	if len(bottom) != 1 || len(top) != 1 {
		return fmt.Errorf("rnn %s: want 1 bottom and 1 top", l.name)
	}
	if bottom[0].Data.NumDims() != 3 {
		return fmt.Errorf("rnn %s: bottom must be (N,T,D), got %v", l.name, bottom[0].Shape())
	}
	if l.cfg.Hidden <= 0 {
		return fmt.Errorf("rnn %s: hidden size must be positive", l.name)
	}
	sh := bottom[0].Shape()
	l.n, l.t, l.d = sh[0], sh[1], sh[2]
	l.h = l.cfg.Hidden

	rng := fillerRNG(l.cfg.Seed, l.name)
	l.wx = NewBlob(l.name+".wx", l.h, l.d)
	l.cfg.WeightFiller.Fill(l.wx.Data, rng)
	l.wh = NewBlob(l.name+".wh", l.h, l.h)
	l.cfg.WeightFiller.Fill(l.wh.Data, rng)
	// Scale the recurrent matrix down for stability over long horizons.
	tensor.Scal(0.5, l.wh.Data.Data())
	l.b = NewBlob(l.name+".bias", l.h)
	l.b.LrMult, l.b.DecayMult = 2, 0
	l.cfg.BiasFiller.Fill(l.b.Data, rng)
	l.param = []*Blob{l.wx, l.wh, l.b}

	top[0].Reshape(l.n, l.t, l.h)
	l.hs = make([]float32, l.n*(l.t+1)*l.h)
	l.pre = make([]float32, l.n*l.t*l.h)
	return nil
}

func (l *RNNLayer) leaseScratch(width int) {
	l.partWx = tensor.LeaseInto(l.partWx, width, l.h*l.d)
	l.partWh = tensor.LeaseInto(l.partWh, width, l.h*l.h)
	l.partB = tensor.LeaseInto(l.partB, width, l.h)
	l.dhBuf = tensor.LeaseInto(l.dhBuf, width, l.h)
	l.dpreBuf = tensor.LeaseInto(l.dpreBuf, width, l.h)
}

func (l *RNNLayer) releaseScratch() {
	tensor.PutBufs(l.partWx)
	tensor.PutBufs(l.partWh)
	tensor.PutBufs(l.partB)
	tensor.PutBufs(l.dhBuf)
	tensor.PutBufs(l.dpreBuf)
}

// Forward implements Layer: per sample, a chain of T rnn_step kernels.
func (l *RNNLayer) Forward(ctx *Context, bottom, top []*Blob) error {
	x := bottom[0].Data.Data()
	y := top[0].Data.Data()
	wx := l.wx.Data.Data()
	wh := l.wh.Data.Data()
	bias := l.b.Data.Data()
	for n := 0; n < l.n; n++ {
		n := n
		for t := 0; t < l.t; t++ {
			t := t
			tag := fmt.Sprintf("%s/n%d", l.name, n)
			k := kernels.Elementwise("rnn_step", tag, l.h, 4*float64(l.d+l.h+3), float64(2*(l.d+l.h)+8), func() {
				hPrev := l.hs[(n*(l.t+1)+t)*l.h : (n*(l.t+1)+t+1)*l.h]
				hCur := l.hs[(n*(l.t+1)+t+1)*l.h : (n*(l.t+1)+t+2)*l.h]
				xt := x[(n*l.t+t)*l.d : (n*l.t+t+1)*l.d]
				preT := l.pre[(n*l.t+t)*l.h : (n*l.t+t+1)*l.h]
				copy(preT, bias)
				tensor.Gemv(false, l.h, l.d, 1, wx, xt, 1, preT)
				tensor.Gemv(false, l.h, l.h, 1, wh, hPrev, 1, preT)
				out := y[(n*l.t+t)*l.h : (n*l.t+t+1)*l.h]
				for i, v := range preT {
					hv := tanh32(v)
					hCur[i] = hv
					out[i] = hv
				}
			})
			if err := ctx.Dispatch(k, n); err != nil {
				return err
			}
		}
	}
	return ctx.Barrier()
}

// Backward implements Layer: per sample, BPTT as a chain of T reversed
// rnn_step_bwd kernels; weight gradients land in per-chain partials.
func (l *RNNLayer) Backward(ctx *Context, top []*Blob, propagate []bool, bottom []*Blob) error {
	width := ctx.Width()
	l.leaseScratch(width)
	err := l.backwardDispatch(ctx, top, propagate, bottom, width)
	berr := ctx.Barrier()
	l.releaseScratch()
	if err != nil {
		return err
	}
	return berr
}

func (l *RNNLayer) backwardDispatch(ctx *Context, top []*Blob, propagate []bool, bottom []*Blob, width int) error {
	if ctx.Compute {
		// Arena slabs arrive with unspecified contents; the accumulating
		// partials must start the pass at zero.
		for j := 0; j < width; j++ {
			zero(l.partWx[j].Data)
			zero(l.partWh[j].Data)
			zero(l.partB[j].Data)
		}
	}
	x := bottom[0].Data.Data()
	dy := top[0].Diff.Data()
	dx := bottom[0].Diff.Data()
	wx := l.wx.Data.Data()
	wh := l.wh.Data.Data()
	prop := propagate[0]
	for n := 0; n < l.n; n++ {
		n := n
		j := n % width
		tag := fmt.Sprintf("%s/n%d", l.name, n)
		// reset dh carry for this chain
		reset := kernels.AxpyKernel("rnn_bwd_init", tag, l.h, func() { zero(l.dhBuf[j].Data) })
		if err := ctx.Dispatch(reset, n); err != nil {
			return err
		}
		for t := l.t - 1; t >= 0; t-- {
			t := t
			k := kernels.Elementwise("rnn_step_bwd", tag, l.h, 4*float64(l.d+2*l.h+4), float64(4*(l.d+l.h)+10), func() {
				dh := l.dhBuf[j].Data
				for i := 0; i < l.h; i++ {
					dh[i] += dy[(n*l.t+t)*l.h+i]
				}
				// through tanh: dpre = dh ⊙ (1 − h²). Chains sharing lane j
				// run serialized, so the per-chain scratch replaces what used
				// to be a per-step allocation.
				hCur := l.hs[(n*(l.t+1)+t+1)*l.h : (n*(l.t+1)+t+2)*l.h]
				dpre := l.dpreBuf[j].Data
				for i := 0; i < l.h; i++ {
					dpre[i] = dh[i] * (1 - hCur[i]*hCur[i])
				}
				xt := x[(n*l.t+t)*l.d : (n*l.t+t+1)*l.d]
				hPrev := l.hs[(n*(l.t+1)+t)*l.h : (n*(l.t+1)+t+1)*l.h]
				// dWx += dpre ⊗ xt ; dWh += dpre ⊗ hPrev ; db += dpre
				pwx, pwh, pb := l.partWx[j].Data, l.partWh[j].Data, l.partB[j].Data
				for i := 0; i < l.h; i++ {
					g := dpre[i]
					if g == 0 {
						continue
					}
					tensor.Axpy(g, xt, pwx[i*l.d:(i+1)*l.d])
					tensor.Axpy(g, hPrev, pwh[i*l.h:(i+1)*l.h])
					pb[i] += g
				}
				if prop {
					// dx_t += Wxᵀ·dpre
					tensor.Gemv(true, l.h, l.d, 1, wx, dpre, 1, dx[(n*l.t+t)*l.d:(n*l.t+t+1)*l.d])
				}
				// dh_{t−1} = Whᵀ·dpre
				zero(dh)
				tensor.Gemv(true, l.h, l.h, 1, wh, dpre, 1, dh)
			})
			if err := ctx.Dispatch(k, n); err != nil {
				return err
			}
		}
	}
	if err := ctx.Barrier(); err != nil {
		return err
	}
	// Fixed-order fold of partials, on the default stream.
	fold := func(kind string, parts []*tensor.Buf, dst []float32) error {
		for j := 0; j < width; j++ {
			part := parts[j].Data
			if err := ctx.Dispatch(kernels.AxpyKernel("axpy_fold_"+kind, l.name, len(part), func() {
				tensor.Axpy(1, part, dst)
			}), -1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := fold("wx", l.partWx, l.wx.Diff.Data()); err != nil {
		return err
	}
	if err := fold("wh", l.partWh, l.wh.Diff.Data()); err != nil {
		return err
	}
	if err := fold("b", l.partB, l.b.Diff.Data()); err != nil {
		return err
	}
	return nil
}
