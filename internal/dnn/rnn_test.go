package dnn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestRNNGradients(t *testing.T) {
	cfg := RNNConfig{Hidden: 4, Seed: 70}
	l := NewRNN("rnn", cfg)
	bottom := randBlob("x", 71, 3, 5, 6) // N=3, T=5, D=6
	gradCheck(t, l, []*Blob{bottom}, 1, nil, 72)
}

func TestRNNSetupErrors(t *testing.T) {
	ctx := NewContext(HostLauncher{}, 1)
	l := NewRNN("rnn", RNNConfig{Hidden: 4})
	if err := l.Setup(ctx, []*Blob{NewBlob("x", 2, 3)}, []*Blob{NewBlob("y")}); err == nil {
		t.Fatal("2-D bottom accepted")
	}
	bad := NewRNN("rnn0", RNNConfig{Hidden: 0})
	if err := bad.Setup(ctx, []*Blob{NewBlob("x", 2, 3, 4)}, []*Blob{NewBlob("y")}); err == nil {
		t.Fatal("zero hidden accepted")
	}
}

// TestRNNRecurrenceSemantics hand-checks a 1-unit RNN: with Wx=1, Wh=0.5,
// b=0 and inputs [1, 0], h1 = tanh(1), h2 = tanh(0.5·h1).
func TestRNNRecurrenceSemantics(t *testing.T) {
	ctx := NewContext(HostLauncher{}, 1)
	l := NewRNN("rnn", RNNConfig{Hidden: 1, Seed: 1})
	bottom := NewBlob("x", 1, 2, 1)
	copy(bottom.Data.Data(), []float32{1, 0})
	top := NewBlob("y")
	if err := l.Setup(ctx, []*Blob{bottom}, []*Blob{top}); err != nil {
		t.Fatal(err)
	}
	l.wx.Data.Data()[0] = 1
	l.wh.Data.Data()[0] = 0.5
	l.b.Data.Data()[0] = 0
	if err := l.Forward(ctx, []*Blob{bottom}, []*Blob{top}); err != nil {
		t.Fatal(err)
	}
	h1 := math.Tanh(1)
	h2 := math.Tanh(0.5 * h1)
	got := top.Data.Data()
	if math.Abs(float64(got[0])-h1) > 1e-6 || math.Abs(float64(got[1])-h2) > 1e-6 {
		t.Fatalf("h = %v, want [%v %v]", got, h1, h2)
	}
}

// TestRNNWidthInvariance: like convolution, the RNN must produce identical
// forward sequences and tightly matching gradients at any launcher width.
func TestRNNWidthInvariance(t *testing.T) {
	run := func(width int) (*Blob, []*Blob) {
		ctx := NewContext(widthLauncher{width}, 2)
		l := NewRNN("rnn", RNNConfig{Hidden: 6, Seed: 80})
		bottom := randBlob("x", 81, 5, 4, 3)
		top := NewBlob("y")
		if err := l.Setup(ctx, []*Blob{bottom}, []*Blob{top}); err != nil {
			t.Fatal(err)
		}
		if err := l.Forward(ctx, []*Blob{bottom}, []*Blob{top}); err != nil {
			t.Fatal(err)
		}
		top.Diff.Fill(0.1)
		bottom.ZeroDiff()
		for _, p := range l.Params() {
			p.ZeroDiff()
		}
		if err := l.Backward(ctx, []*Blob{top}, []bool{true}, []*Blob{bottom}); err != nil {
			t.Fatal(err)
		}
		return top, l.Params()
	}
	t1, p1 := run(1)
	t3, p3 := run(3)
	if !tensor.Equal(t1.Data, t3.Data) {
		t.Fatal("RNN forward differs across widths")
	}
	for i := range p1 {
		if d := tensor.MaxAbsDiff(p1[i].Diff, p3[i].Diff); d > 1e-4 {
			t.Fatalf("RNN gradient %s differs by %v across widths", p1[i].Name, d)
		}
	}
}

// TestRNNLearnsSequenceTask trains the RNN (plus a readout) to classify
// whether a sequence's mean is positive — a real learning check through
// BPTT.
func TestRNNLearnsSequenceTask(t *testing.T) {
	ctx := NewContext(HostLauncher{}, 90)
	rc := RNNConfig{Hidden: 8, Seed: 90}
	ic := IP(2)
	ic.Seed = 90
	net, err := NewNet("seq").
		Input("x", 16, 6, 3).
		Input("label", 16).
		Add(NewRNN("rnn", rc), []string{"x"}, []string{"h"}).
		Add(NewFlatten("flat"), []string{"h"}, []string{"hf"}).
		Add(NewIP("readout", ic), []string{"hf"}, []string{"scores"}).
		Add(NewSoftmaxLoss("loss"), []string{"scores", "label"}, []string{"loss"}).
		Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	feed := func(seed int64) {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float32, 16*6*3)
		labels := make([]float32, 16)
		for n := 0; n < 16; n++ {
			mean := float32(0)
			for i := 0; i < 18; i++ {
				v := float32(rng.NormFloat64())
				x[n*18+i] = v
				mean += v
			}
			if mean > 0 {
				labels[n] = 1
			}
		}
		if err := net.SetInputData("x", x); err != nil {
			t.Fatal(err)
		}
		if err := net.SetInputData("label", labels); err != nil {
			t.Fatal(err)
		}
	}
	s := NewSolver(net, ctx, SolverConfig{BaseLR: 0.05, Momentum: 0.9})
	var first, last float64
	for i := 0; i < 60; i++ {
		feed(int64(i % 8)) // cycle a small set so it can be fit
		loss, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = loss
		}
		last = loss
	}
	if math.IsNaN(last) || last > first*0.5 {
		t.Fatalf("RNN did not learn: %v → %v", first, last)
	}
}
