package dnn

import (
	"fmt"

	"repro/internal/kernels"
)

// SliceLayer splits its bottom along the channel axis into one top per
// output, the dual of ConcatLayer (Caffe's Slice layer) and the fan-out
// operation that hands disjoint channel ranges to independent branches.
type SliceLayer struct {
	baseLayer
	n, h, w  int
	points   []int // requested per-top channel counts; empty = even split
	channels []int
	total    int
}

// NewSlice constructs a channel-axis slice layer. With no channel sizes
// given the bottom's channels split evenly over the tops; otherwise one
// size per top is required and they must sum to the bottom's channels.
func NewSlice(name string, channels ...int) *SliceLayer {
	return &SliceLayer{baseLayer: baseLayer{name: name, typ: "Slice"}, points: channels}
}

// Setup implements Layer.
func (l *SliceLayer) Setup(ctx *Context, bottom, top []*Blob) error {
	if len(bottom) != 1 || len(top) < 1 {
		return fmt.Errorf("slice %s: want 1 bottom and ≥1 tops", l.name)
	}
	b := bottom[0]
	l.n, l.h, l.w = b.Num(), b.Height(), b.Width()
	l.total = b.Channels()
	l.channels = l.channels[:0]
	if len(l.points) == 0 {
		if l.total%len(top) != 0 {
			return fmt.Errorf("slice %s: %d channels not divisible by %d tops", l.name, l.total, len(top))
		}
		for range top {
			l.channels = append(l.channels, l.total/len(top))
		}
	} else {
		if len(l.points) != len(top) {
			return fmt.Errorf("slice %s: %d channel sizes for %d tops", l.name, len(l.points), len(top))
		}
		sum := 0
		for _, c := range l.points {
			if c <= 0 {
				return fmt.Errorf("slice %s: non-positive channel size %d", l.name, c)
			}
			sum += c
		}
		if sum != l.total {
			return fmt.Errorf("slice %s: channel sizes sum to %d, bottom has %d", l.name, sum, l.total)
		}
		l.channels = append(l.channels, l.points...)
	}
	for ti, t := range top {
		t.Reshape(l.n, l.channels[ti], l.h, l.w)
	}
	return nil
}

// Forward implements Layer: one copy kernel per top.
func (l *SliceLayer) Forward(ctx *Context, bottom, top []*Blob) error {
	hw := l.h * l.w
	offset := 0
	for ti, t := range top {
		src := bottom[0].Data.Data()
		dst := t.Data.Data()
		c := l.channels[ti]
		off := offset
		k := kernels.AxpyKernel("slice_copy", fmt.Sprintf("%s/t%d", l.name, ti), t.Count(), func() {
			for n := 0; n < l.n; n++ {
				from := src[(n*l.total+off)*hw : (n*l.total+off+c)*hw]
				to := dst[n*c*hw : (n+1)*c*hw]
				copy(to, from)
			}
		})
		if err := ctx.Dispatch(k, ti); err != nil {
			return err
		}
		offset += c
	}
	return ctx.Barrier()
}

// Backward implements Layer: scatters each top gradient into its channel
// range of the bottom gradient. With propagate[0] false the whole pass is
// dead work (concat's per-bottom skip, dualized) and no kernel launches.
// Each bottom element belongs to exactly one top, so the accumulation is
// add-once.
func (l *SliceLayer) Backward(ctx *Context, top []*Blob, propagate []bool, bottom []*Blob) error {
	if !propagate[0] {
		return nil
	}
	hw := l.h * l.w
	offset := 0
	for ti, t := range top {
		dtop := t.Diff.Data()
		dbot := bottom[0].Diff.Data()
		c := l.channels[ti]
		off := offset
		k := kernels.AxpyKernel("slice_scatter", fmt.Sprintf("%s/t%d", l.name, ti), t.Count(), func() {
			for n := 0; n < l.n; n++ {
				from := dtop[n*c*hw : (n+1)*c*hw]
				to := dbot[(n*l.total+off)*hw : (n*l.total+off+c)*hw]
				for i, v := range from {
					to[i] += v
				}
			}
		})
		if err := ctx.Dispatch(k, ti); err != nil {
			return err
		}
		offset += c
	}
	return ctx.Barrier()
}
