package dnn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/simgpu"
)

// buildSliceNet wires data → slice → concat so the two layers must be
// exact inverses of each other.
func buildSliceNet(t *testing.T, channels ...int) *Net {
	t.Helper()
	ctx := NewContext(HostLauncher{}, 1)
	net, err := NewNet("slicenet").
		Input("data", 2, 4, 3, 3).
		Add(NewSlice("slice", channels...), []string{"data"}, []string{"s1", "s2"}).
		Add(NewConcat("concat"), []string{"s1", "s2"}, []string{"out"}).
		Build(ctx)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return net
}

func TestSliceConcatRoundTrip(t *testing.T) {
	for _, channels := range [][]int{nil, {1, 3}, {3, 1}} {
		net := buildSliceNet(t, channels...)
		rng := rand.New(rand.NewSource(7))
		vals := make([]float32, net.Blob("data").Count())
		for i := range vals {
			vals[i] = float32(rng.NormFloat64())
		}
		if err := net.SetInputData("data", vals); err != nil {
			t.Fatal(err)
		}
		ctx := NewContext(HostLauncher{}, 1)
		if _, err := net.Forward(ctx); err != nil {
			t.Fatal(err)
		}
		out := net.Blob("out").Data.Data()
		for i, v := range vals {
			if math.Float32bits(out[i]) != math.Float32bits(v) {
				t.Fatalf("channels %v: slice∘concat not identity at %d: %v vs %v", channels, i, out[i], v)
			}
		}
	}
}

// TestSliceBackwardScatter checks the gradient: with each top's diff
// seeded, the bottom diff accumulates the tops' diffs back into their
// channel ranges — slice's backward is concat's forward.
func TestSliceBackwardScatter(t *testing.T) {
	ctx := NewContext(HostLauncher{}, 1)
	bottom := NewBlob("b", 2, 4, 3, 3)
	t1 := NewBlob("t1")
	t2 := NewBlob("t2")
	l := NewSlice("s", 1, 3)
	if err := l.Setup(ctx, []*Blob{bottom}, []*Blob{t1, t2}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for _, top := range []*Blob{t1, t2} {
		d := top.Diff.Data()
		for i := range d {
			d[i] = float32(rng.NormFloat64())
		}
	}
	if err := l.Backward(ctx, []*Blob{t1, t2}, []bool{true}, []*Blob{bottom}); err != nil {
		t.Fatal(err)
	}
	// Reconstruct the expected bottom diff with concat's forward layout.
	hw := 3 * 3
	dbot := bottom.Diff.Data()
	for n := 0; n < 2; n++ {
		for i, v := range t1.Diff.Data()[n*1*hw : (n+1)*1*hw] {
			if got := dbot[(n*4+0)*hw+i]; math.Float32bits(got) != math.Float32bits(v) {
				t.Fatalf("t1 scatter mismatch at n=%d i=%d: %v vs %v", n, i, got, v)
			}
		}
		for i, v := range t2.Diff.Data()[n*3*hw : (n+1)*3*hw] {
			if got := dbot[(n*4+1)*hw+i]; math.Float32bits(got) != math.Float32bits(v) {
				t.Fatalf("t2 scatter mismatch at n=%d i=%d: %v vs %v", n, i, got, v)
			}
		}
	}
}

// countingLauncher counts kernel launches while executing them inline.
type countingLauncher struct{ n *int }

func (l countingLauncher) BeginLayer(string) {}
func (l countingLauncher) Launch(k *simgpu.Kernel, _ int) error {
	*l.n++
	k.Fn()
	return nil
}
func (l countingLauncher) Sync() error { return nil }
func (l countingLauncher) Width() int  { return 1 }

// TestSliceBackwardSkip verifies the propagate[0]==false fast path: no
// kernels launch and the bottom diff stays untouched.
func TestSliceBackwardSkip(t *testing.T) {
	ctx := NewContext(HostLauncher{}, 1)
	bottom := NewBlob("b", 2, 4, 3, 3)
	t1 := NewBlob("t1")
	t2 := NewBlob("t2")
	l := NewSlice("s")
	if err := l.Setup(ctx, []*Blob{bottom}, []*Blob{t1, t2}); err != nil {
		t.Fatal(err)
	}
	for i := range t1.Diff.Data() {
		t1.Diff.Data()[i] = 1
	}
	sentinel := float32(42)
	bottom.Diff.Data()[0] = sentinel
	count := 0
	cctx := NewContext(countingLauncher{n: &count}, 1)
	if err := l.Backward(cctx, []*Blob{t1, t2}, []bool{false}, []*Blob{bottom}); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("skip path launched %d kernels", count)
	}
	if bottom.Diff.Data()[0] != sentinel {
		t.Fatal("skip path wrote the bottom diff")
	}
	// Sanity: with propagate true it does launch and accumulate.
	if err := l.Backward(cctx, []*Blob{t1, t2}, []bool{true}, []*Blob{bottom}); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("propagating path launched no kernels")
	}
	if bottom.Diff.Data()[0] != sentinel+1 {
		t.Fatalf("scatter should accumulate: got %v", bottom.Diff.Data()[0])
	}
}

func TestSliceSetupErrors(t *testing.T) {
	ctx := NewContext(HostLauncher{}, 1)
	bottom := NewBlob("b", 2, 5, 3, 3)
	tops := []*Blob{NewBlob("t1"), NewBlob("t2")}
	if err := NewSlice("s").Setup(ctx, []*Blob{bottom}, tops); err == nil {
		t.Fatal("5 channels over 2 tops accepted for even split")
	}
	if err := NewSlice("s", 2).Setup(ctx, []*Blob{bottom}, tops); err == nil {
		t.Fatal("1 size for 2 tops accepted")
	}
	if err := NewSlice("s", 2, 0).Setup(ctx, []*Blob{bottom}, tops); err == nil {
		t.Fatal("zero channel size accepted")
	}
	if err := NewSlice("s", 2, 2).Setup(ctx, []*Blob{bottom}, tops); err == nil {
		t.Fatal("sizes summing to 4 accepted for 5 channels")
	}
	if err := NewSlice("s").Setup(ctx, []*Blob{bottom, bottom}, tops); err == nil {
		t.Fatal("two bottoms accepted")
	}
}
