package dnn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/tensor"
)

// Snapshot format: Caffe checkpoints its .caffemodel/.solverstate pair; we
// use one compact little-endian binary format for both weights and solver
// state.
//
//	magic "GLPW" | version u32 | param count u32
//	per param: name (u32 len + bytes) | rank u32 | dims u32... | f32 data
//
// Solver states append: magic "GLPS" | iter u32 | history blobs in the same
// per-param encoding, keyed by parameter name.

const (
	weightsMagic = "GLPW"
	solverMagic  = "GLPS"
	formatVer    = 1

	// Reader bounds: a corrupt or adversarial snapshot must fail with a
	// clear error before any large allocation, never panic. No real net
	// here comes near either limit.
	maxSnapshotParams = 1 << 20 // parameters per snapshot
	maxSnapshotElems  = 1 << 31 // elements per tensor (8 GiB of f32)
)

var byteOrder = binary.LittleEndian

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, byteOrder, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, byteOrder, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("dnn: corrupt snapshot: name length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeTensor(w io.Writer, t *tensor.Tensor) error {
	shape := t.Shape()
	if err := binary.Write(w, byteOrder, uint32(len(shape))); err != nil {
		return err
	}
	for _, d := range shape {
		if err := binary.Write(w, byteOrder, uint32(d)); err != nil {
			return err
		}
	}
	data := t.Data()
	buf := make([]byte, 4*len(data))
	for i, v := range data {
		byteOrder.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readTensorInto(r io.Reader, dst *tensor.Tensor) error {
	var rank uint32
	if err := binary.Read(r, byteOrder, &rank); err != nil {
		return err
	}
	if rank > 16 {
		return fmt.Errorf("dnn: corrupt snapshot: rank %d", rank)
	}
	// Accumulate in int64 and bound after every dimension: rank ≤ 16 keeps
	// the running product ≤ maxSnapshotElems × (2³²−1), which cannot
	// overflow int64, and a hostile dims field cannot reach make().
	count := int64(1)
	shape := make([]int, rank)
	for i := range shape {
		var d uint32
		if err := binary.Read(r, byteOrder, &d); err != nil {
			return err
		}
		shape[i] = int(d)
		count *= int64(d)
		if count > maxSnapshotElems {
			return fmt.Errorf("dnn: corrupt snapshot: shape %v exceeds %d elements", shape[:i+1], maxSnapshotElems)
		}
	}
	if int(count) != dst.Len() {
		return fmt.Errorf("dnn: snapshot shape %v (%d elems) does not match blob %v (%d elems)",
			shape, count, dst.Shape(), dst.Len())
	}
	buf := make([]byte, 4*count)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	data := dst.Data()
	for i := range data {
		data[i] = math.Float32frombits(byteOrder.Uint32(buf[i*4:]))
	}
	return nil
}

// SaveWeights serializes every learnable parameter of the net.
func (n *Net) SaveWeights(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, weightsMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, byteOrder, uint32(formatVer)); err != nil {
		return err
	}
	params := n.Params()
	if err := binary.Write(bw, byteOrder, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeString(bw, p.Name); err != nil {
			return err
		}
		if err := writeTensor(bw, p.Data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadWeights restores parameters saved by SaveWeights. Parameters are
// matched by name; every stored parameter must exist with the same element
// count (shapes are informative).
func (n *Net) LoadWeights(r io.Reader) error {
	br := bufio.NewReader(r)
	if err := expectMagic(br, weightsMagic); err != nil {
		return err
	}
	var ver, count uint32
	if err := binary.Read(br, byteOrder, &ver); err != nil {
		return err
	}
	if ver != formatVer {
		return fmt.Errorf("dnn: unsupported snapshot version %d (this build reads version %d)", ver, formatVer)
	}
	if err := binary.Read(br, byteOrder, &count); err != nil {
		return err
	}
	if count > maxSnapshotParams {
		return fmt.Errorf("dnn: corrupt snapshot: parameter count %d", count)
	}
	byName := map[string]*Blob{}
	for _, p := range n.Params() {
		byName[p.Name] = p
	}
	for i := uint32(0); i < count; i++ {
		name, err := readString(br)
		if err != nil {
			return err
		}
		p := byName[name]
		if p == nil {
			return fmt.Errorf("dnn: snapshot parameter %q not present in net %s", name, n.name)
		}
		if err := readTensorInto(br, p.Data); err != nil {
			return fmt.Errorf("dnn: loading %q: %w", name, err)
		}
	}
	return nil
}

func expectMagic(r io.Reader, magic string) error {
	buf := make([]byte, len(magic))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	if string(buf) != magic {
		return fmt.Errorf("dnn: bad snapshot magic %q, want %q", buf, magic)
	}
	return nil
}

// SaveWeightsFile writes a weights snapshot to a file, atomically: a crash
// mid-write leaves either the previous snapshot or none, never a truncated
// unservable one.
func (n *Net) SaveWeightsFile(path string) error {
	return WriteFileAtomic(path, n.SaveWeights)
}

// LoadWeightsFile reads a weights snapshot from a file.
func (n *Net) LoadWeightsFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return n.LoadWeights(f)
}

// Snapshot serializes the full training state: weights, momentum history
// and the iteration counter (Caffe's .solverstate).
func (s *Solver) Snapshot(w io.Writer) error {
	if err := s.net.SaveWeights(w); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, solverMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, byteOrder, uint32(s.iter)); err != nil {
		return err
	}
	params := s.net.Params()
	if err := binary.Write(bw, byteOrder, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeString(bw, p.Name); err != nil {
			return err
		}
		hist := s.history[p]
		if hist == nil {
			hist = tensor.New(p.Shape()...)
		}
		if err := writeTensor(bw, hist); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Restore loads training state saved by Snapshot.
func (s *Solver) Restore(r io.Reader) error {
	br := bufio.NewReader(r)
	if err := s.net.LoadWeights(br); err != nil {
		return err
	}
	if err := expectMagic(br, solverMagic); err != nil {
		return err
	}
	var iter, count uint32
	if err := binary.Read(br, byteOrder, &iter); err != nil {
		return err
	}
	if err := binary.Read(br, byteOrder, &count); err != nil {
		return err
	}
	if count > maxSnapshotParams {
		return fmt.Errorf("dnn: corrupt solver state: parameter count %d", count)
	}
	byName := map[string]*Blob{}
	for _, p := range s.net.Params() {
		byName[p.Name] = p
	}
	for i := uint32(0); i < count; i++ {
		name, err := readString(br)
		if err != nil {
			return err
		}
		p := byName[name]
		if p == nil {
			return fmt.Errorf("dnn: solver state for unknown parameter %q", name)
		}
		hist := s.history[p]
		if hist == nil {
			hist = tensor.New(p.Shape()...)
			s.history[p] = hist
		}
		if err := readTensorInto(br, hist); err != nil {
			return fmt.Errorf("dnn: restoring history of %q: %w", name, err)
		}
	}
	s.iter = int(iter)
	return nil
}
