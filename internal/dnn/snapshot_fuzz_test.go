package dnn

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzSnapshotRestore feeds arbitrary bytes to both snapshot readers. The
// contract under attack: a truncated, mutated or adversarial snapshot must
// return an error (or load cleanly, for byte-identical mutants) — never
// panic, and never allocate unboundedly from a hostile rank/dims/count
// field. The seed corpus covers a valid weights file, a valid solver
// state, and hand-built hostile headers (wrong version, huge parameter
// count, huge rank, overflowing dims).
func FuzzSnapshotRestore(f *testing.F) {
	net := buildTinyNet(f, 2, 501)
	var weights bytes.Buffer
	if err := net.SaveWeights(&weights); err != nil {
		f.Fatal(err)
	}
	ctx := NewContext(HostLauncher{}, 502)
	s := NewSolver(net, ctx, SolverConfig{BaseLR: 0.01, Momentum: 0.9})
	fillTinyInputs(f, net, 503)
	if _, err := s.Step(); err != nil {
		f.Fatal(err)
	}
	var state bytes.Buffer
	if err := s.Snapshot(&state); err != nil {
		f.Fatal(err)
	}

	f.Add(weights.Bytes())
	f.Add(state.Bytes())
	f.Add(weights.Bytes()[:len(weights.Bytes())/2])
	f.Add([]byte{})
	f.Add([]byte("GLPW"))
	hostile := func(build func(*bytes.Buffer)) []byte {
		var b bytes.Buffer
		build(&b)
		return b.Bytes()
	}
	f.Add(hostile(func(b *bytes.Buffer) { // unknown version
		b.WriteString("GLPW")
		binary.Write(b, byteOrder, uint32(99))
		binary.Write(b, byteOrder, uint32(1))
	}))
	f.Add(hostile(func(b *bytes.Buffer) { // absurd parameter count
		b.WriteString("GLPW")
		binary.Write(b, byteOrder, uint32(formatVer))
		binary.Write(b, byteOrder, uint32(0xffffffff))
	}))
	f.Add(hostile(func(b *bytes.Buffer) { // huge rank / overflowing dims
		b.WriteString("GLPW")
		binary.Write(b, byteOrder, uint32(formatVer))
		binary.Write(b, byteOrder, uint32(1))
		binary.Write(b, byteOrder, uint32(len("conv1.w")))
		b.WriteString("conv1.w")
		binary.Write(b, byteOrder, uint32(8))
		for i := 0; i < 8; i++ {
			binary.Write(b, byteOrder, uint32(0xfffffff0))
		}
	}))

	f.Fuzz(func(t *testing.T, raw []byte) {
		target := buildTinyNet(t, 2, 504)
		_ = target.LoadWeights(bytes.NewReader(raw))
		sv := NewSolver(target, NewContext(HostLauncher{}, 505), SolverConfig{BaseLR: 0.01})
		_ = sv.Restore(bytes.NewReader(raw))
	})
}
