package dnn

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

func TestWeightsRoundTrip(t *testing.T) {
	net := buildTinyNet(t, 4, 301)
	var buf bytes.Buffer
	if err := net.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}

	// A differently initialized twin converges to identical weights after
	// loading.
	twin := buildTinyNet(t, 4, 999)
	if tensor.Equal(net.Params()[0].Data, twin.Params()[0].Data) {
		t.Fatal("twins unexpectedly share initialization")
	}
	if err := twin.LoadWeights(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for i, p := range net.Params() {
		if !tensor.Equal(p.Data, twin.Params()[i].Data) {
			t.Fatalf("param %s differs after round trip", p.Name)
		}
	}
}

func TestWeightsFileRoundTrip(t *testing.T) {
	net := buildTinyNet(t, 2, 302)
	path := filepath.Join(t.TempDir(), "weights.glpw")
	if err := net.SaveWeightsFile(path); err != nil {
		t.Fatal(err)
	}
	twin := buildTinyNet(t, 2, 777)
	if err := twin.LoadWeightsFile(path); err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(net.Params()[1].Data, twin.Params()[1].Data) {
		t.Fatal("file round trip lost data")
	}
	if err := twin.LoadWeightsFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadWeightsErrors(t *testing.T) {
	net := buildTinyNet(t, 2, 303)
	if err := net.LoadWeights(bytes.NewReader([]byte("JUNKJUNKJUNK"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated stream.
	var buf bytes.Buffer
	if err := net.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	if err := net.LoadWeights(bytes.NewReader(buf.Bytes()[:20])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	// Snapshot from a different architecture (param name mismatch).
	other, err := NewNet("other").
		Input("x", 2, 4).
		Add(NewIP("different", IP(3)), []string{"x"}, []string{"y"}).
		Build(NewContext(HostLauncher{}, 1))
	if err != nil {
		t.Fatal(err)
	}
	var obuf bytes.Buffer
	if err := other.SaveWeights(&obuf); err != nil {
		t.Fatal(err)
	}
	if err := net.LoadWeights(bytes.NewReader(obuf.Bytes())); err == nil {
		t.Fatal("foreign snapshot accepted")
	}
}

// TestSolverSnapshotResume: training N steps straight must equal training
// k steps, snapshotting, restoring into a fresh solver, and training N−k
// more — bitwise, including momentum state.
func TestSolverSnapshotResume(t *testing.T) {
	makeRun := func() (*Net, *Solver, func(i int)) {
		net := buildTinyNet(t, 4, 305)
		ctx := NewContext(HostLauncher{}, 306)
		s := NewSolver(net, ctx, SolverConfig{BaseLR: 0.02, Momentum: 0.9, WeightDecay: 0.001, Policy: "step", Gamma: 0.5, StepSize: 3})
		feed := func(i int) {
			fillTinyInputs(t, net, int64(1000+i)) // deterministic per step
		}
		return net, s, feed
	}

	// Straight run: 6 steps.
	netA, solverA, feedA := makeRun()
	for i := 0; i < 6; i++ {
		feedA(i)
		if _, err := solverA.Step(); err != nil {
			t.Fatal(err)
		}
	}

	// Split run: 3 steps, snapshot, restore into a fresh world, 3 more.
	netB, solverB, feedB := makeRun()
	for i := 0; i < 3; i++ {
		feedB(i)
		if _, err := solverB.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var state bytes.Buffer
	if err := solverB.Snapshot(&state); err != nil {
		t.Fatal(err)
	}

	netC, solverC, feedC := makeRun()
	if err := solverC.Restore(bytes.NewReader(state.Bytes())); err != nil {
		t.Fatal(err)
	}
	if solverC.Iter() != 3 {
		t.Fatalf("restored iter = %d, want 3", solverC.Iter())
	}
	for i := 3; i < 6; i++ {
		feedC(i)
		if _, err := solverC.Step(); err != nil {
			t.Fatal(err)
		}
	}

	pa, pc := netA.Params(), netC.Params()
	for i := range pa {
		da, dc := pa[i].Data.Data(), pc[i].Data.Data()
		for j := range da {
			if math.Float32bits(da[j]) != math.Float32bits(dc[j]) {
				t.Fatalf("resume mismatch at %s[%d]: %v vs %v", pa[i].Name, j, da[j], dc[j])
			}
		}
	}
	_ = netB
}

func TestSolverRestoreErrors(t *testing.T) {
	net := buildTinyNet(t, 2, 307)
	s := NewSolver(net, NewContext(HostLauncher{}, 1), SolverConfig{BaseLR: 0.1})
	if err := s.Restore(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty restore accepted")
	}
	// Weights-only stream (missing solver section).
	var buf bytes.Buffer
	if err := net.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("weights-only stream accepted as solver state")
	}
}
