package dnn

import (
	"fmt"
	"math"

	"repro/internal/kernels"
	"repro/internal/tensor"
)

// SolverConfig mirrors Caffe's SGD solver prototxt fields. Policy selects
// the learning-rate schedule:
//
//	"fixed": lr = base
//	"step":  lr = base · gamma^⌊iter/stepsize⌋
//	"inv":   lr = base · (1 + gamma·iter)^(−power)
//	"exp":   lr = base · gamma^iter
type SolverConfig struct {
	BaseLR      float32
	Momentum    float32
	WeightDecay float32
	Policy      string
	Gamma       float64
	Power       float64
	StepSize    int
}

// CIFAR10QuickSolver returns the schedule of Caffe's cifar10_quick example.
func CIFAR10QuickSolver() SolverConfig {
	return SolverConfig{BaseLR: 0.001, Momentum: 0.9, WeightDecay: 0.004, Policy: "fixed"}
}

// Solver runs Caffe's momentum SGD:
//
//	V ← momentum·V + lr·lr_mult·(∇W + wd·decay_mult·W);  W ← W − V.
//
// The update for each parameter blob is one sgd_update kernel on the
// default stream, as Caffe's solver does.
type Solver struct {
	cfg     SolverConfig
	net     *Net
	ctx     *Context
	iter    int
	history map[*Blob]*tensor.Tensor
}

// NewSolver builds a solver over a net and context.
func NewSolver(net *Net, ctx *Context, cfg SolverConfig) *Solver {
	return &Solver{cfg: cfg, net: net, ctx: ctx, history: map[*Blob]*tensor.Tensor{}}
}

// Iter returns the number of completed steps.
func (s *Solver) Iter() int { return s.iter }

// SetIter overrides the step counter; external training loops that call
// ApplyUpdate directly (e.g. the data-parallel trainer) use it to keep the
// learning-rate schedule advancing.
func (s *Solver) SetIter(i int) { s.iter = i }

// Net returns the solved net.
func (s *Solver) Net() *Net { return s.net }

// Rate returns the current learning rate under the configured policy.
func (s *Solver) Rate() float32 {
	base := float64(s.cfg.BaseLR)
	switch s.cfg.Policy {
	case "", "fixed":
		return float32(base)
	case "step":
		if s.cfg.StepSize <= 0 {
			return float32(base)
		}
		return float32(base * math.Pow(s.cfg.Gamma, float64(s.iter/s.cfg.StepSize)))
	case "inv":
		return float32(base * math.Pow(1+s.cfg.Gamma*float64(s.iter), -s.cfg.Power))
	case "exp":
		return float32(base * math.Pow(s.cfg.Gamma, float64(s.iter)))
	default:
		return float32(base)
	}
}

// Step performs one training iteration: clear, forward, backward, update.
// It returns the iteration's loss.
func (s *Solver) Step() (float64, error) {
	loss, err := s.net.ForwardBackward(s.ctx)
	if err != nil {
		return 0, err
	}
	if err := s.ApplyUpdate(); err != nil {
		return 0, err
	}
	s.iter++
	return loss, nil
}

// StepFed performs one training iteration fed by feed: the mini-batch is
// copied into the net's input blobs, staged to the device through the
// launcher's copy stream when it has one (default-stream upload
// otherwise), and the solver steps. It is the canonical loop body for the
// asynchronous input pipeline; a nil feed skips straight to staging.
func (s *Solver) StepFed(feed func(*Net) error) (float64, error) {
	if feed != nil {
		if err := feed(s.net); err != nil {
			return 0, err
		}
	}
	if err := s.net.StageInputs(s.ctx); err != nil {
		return 0, err
	}
	return s.Step()
}

// HistorySnapshot deep-copies the momentum history, keyed by parameter
// blob. Together with the parameter data, the step counter, and the context
// RNG state it forms a complete in-memory training checkpoint.
func (s *Solver) HistorySnapshot() map[*Blob][]float32 {
	out := make(map[*Blob][]float32, len(s.history))
	for p, h := range s.history {
		out[p] = append([]float32(nil), h.Data()...)
	}
	return out
}

// RestoreHistory rewinds the momentum history to a snapshot taken with
// HistorySnapshot. Entries created since the snapshot are discarded, so a
// rolled-back step leaves no trace.
func (s *Solver) RestoreHistory(snap map[*Blob][]float32) {
	for p := range s.history {
		if _, ok := snap[p]; !ok {
			delete(s.history, p)
		}
	}
	for p, src := range snap {
		h := s.history[p]
		if h == nil {
			h = tensor.New(p.Shape()...)
			s.history[p] = h
		}
		copy(h.Data(), src)
	}
}

// ApplyUpdate launches one sgd_update kernel per parameter blob.
func (s *Solver) ApplyUpdate() error {
	s.ctx.Begin("solver/update")
	lr := s.Rate()
	for _, p := range s.net.Params() {
		hist := s.history[p]
		if hist == nil {
			hist = tensor.New(p.Shape()...)
			s.history[p] = hist
		}
		p := p
		h := hist.Data()
		data := p.Data.Data()
		diff := p.Diff.Data()
		plr := lr * p.LrMult
		pwd := s.cfg.WeightDecay * p.DecayMult
		mom := s.cfg.Momentum
		k := kernels.SGDUpdate(p.Name, p.Count(), func() {
			for i := range data {
				h[i] = mom*h[i] + plr*(diff[i]+pwd*data[i])
				data[i] -= h[i]
			}
		})
		if err := s.ctx.Dispatch(k, -1); err != nil {
			return fmt.Errorf("solver: update %s: %w", p.Name, err)
		}
	}
	return s.ctx.Barrier()
}
