package dnn

import (
	"math"
	"testing"
)

func TestLearningRatePolicies(t *testing.T) {
	mk := func(cfg SolverConfig, iter int) float32 {
		s := &Solver{cfg: cfg, iter: iter}
		return s.Rate()
	}
	if got := mk(SolverConfig{BaseLR: 0.1, Policy: "fixed"}, 100); got != 0.1 {
		t.Fatalf("fixed: %v", got)
	}
	if got := mk(SolverConfig{BaseLR: 0.1}, 5); got != 0.1 {
		t.Fatalf("default policy: %v", got)
	}
	got := mk(SolverConfig{BaseLR: 0.1, Policy: "step", Gamma: 0.1, StepSize: 10}, 25)
	if math.Abs(float64(got)-0.001) > 1e-9 {
		t.Fatalf("step: %v, want 0.001", got)
	}
	got = mk(SolverConfig{BaseLR: 0.1, Policy: "inv", Gamma: 0.0001, Power: 0.75}, 0)
	if got != 0.1 {
		t.Fatalf("inv at 0: %v", got)
	}
	got = mk(SolverConfig{BaseLR: 1, Policy: "exp", Gamma: 0.5}, 3)
	if math.Abs(float64(got)-0.125) > 1e-7 {
		t.Fatalf("exp: %v", got)
	}
	if got := mk(SolverConfig{BaseLR: 0.2, Policy: "step", Gamma: 0.1}, 25); got != 0.2 {
		t.Fatalf("step without stepsize: %v", got)
	}
	if got := mk(SolverConfig{BaseLR: 0.3, Policy: "unknown"}, 1); got != 0.3 {
		t.Fatalf("unknown policy: %v", got)
	}
}

// TestMomentumUpdateFormula checks one hand-computed Caffe SGD update:
// V ← m·V + lr·lrmult·(∇ + wd·decaymult·W); W ← W − V.
func TestMomentumUpdateFormula(t *testing.T) {
	ctx := NewContext(HostLauncher{}, 1)
	ip := NewIP("ip", IPConfig{NumOutput: 1, Bias: false, Seed: 1})
	net, err := NewNet("one").
		Input("x", 1, 2).
		Input("y", 1, 1).
		Add(ip, []string{"x"}, []string{"out"}).
		Add(NewEuclideanLoss("loss"), []string{"out", "y"}, []string{"l"}).
		Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	w := net.Params()[0]
	copy(w.Data.Data(), []float32{0.5, -0.5})
	if err := net.SetInputData("x", []float32{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := net.SetInputData("y", []float32{1}); err != nil {
		t.Fatal(err)
	}

	cfg := SolverConfig{BaseLR: 0.1, Momentum: 0.9, WeightDecay: 0.01}
	s := NewSolver(net, ctx, cfg)

	// Forward: out = 0.5·1 − 0.5·2 = −0.5; diff = out − y = −1.5.
	// dW = diff·x = [−1.5, −3.0].
	// V₁ = 0.1·(dW + 0.01·W) = 0.1·[−1.495, −3.005] = [−0.1495, −0.3005].
	// W₁ = W − V₁ = [0.6495, −0.1995].
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	want := []float32{0.6495, -0.1995}
	for i, v := range w.Data.Data() {
		if math.Abs(float64(v-want[i])) > 1e-5 {
			t.Fatalf("after step 1: W[%d] = %v, want %v", i, v, want[i])
		}
	}
	if s.Iter() != 1 {
		t.Fatalf("iter = %d", s.Iter())
	}
	if s.Net() != net {
		t.Fatal("Net accessor")
	}
}

// TestTrainingReducesLoss runs a small real optimization and requires the
// loss to drop substantially — the end-to-end sanity check for the whole
// math stack.
func TestTrainingReducesLoss(t *testing.T) {
	net := buildTinyNet(t, 8, 123)
	fillTinyInputs(t, net, 124)
	ctx := NewContext(HostLauncher{}, 125)
	s := NewSolver(net, ctx, SolverConfig{BaseLR: 0.05, Momentum: 0.9, WeightDecay: 0})
	first, err := s.Step()
	if err != nil {
		t.Fatal(err)
	}
	last := first
	for i := 0; i < 60; i++ {
		last, err = s.Step()
		if err != nil {
			t.Fatal(err)
		}
	}
	if math.IsNaN(last) || last > first*0.5 {
		t.Fatalf("loss did not drop: first %v, last %v", first, last)
	}
}

func TestCIFAR10QuickSolverConfig(t *testing.T) {
	cfg := CIFAR10QuickSolver()
	if cfg.BaseLR != 0.001 || cfg.Momentum != 0.9 || cfg.WeightDecay != 0.004 {
		t.Fatalf("unexpected config: %+v", cfg)
	}
}
