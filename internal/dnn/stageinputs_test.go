package dnn

import (
	"testing"
)

// stagerLauncher is a HostLauncher that records staged and uploaded byte
// counts, implementing both Uploader and InputStager.
type stagerLauncher struct {
	HostLauncher
	staged   []int64
	uploaded []int64
}

func (l *stagerLauncher) StageInput(n int64) error { l.staged = append(l.staged, n); return nil }
func (l *stagerLauncher) UploadBytes(n int64) error {
	l.uploaded = append(l.uploaded, n)
	return nil
}

// uploaderLauncher implements only Uploader — the serial baseline shape.
type uploaderLauncher struct {
	HostLauncher
	uploaded []int64
}

func (l *uploaderLauncher) UploadBytes(n int64) error {
	l.uploaded = append(l.uploaded, n)
	return nil
}

// TestStageInputsUsesStager: every input blob is staged exactly once, in
// sorted name order (deterministic modeled timelines), with its byte size.
func TestStageInputsUsesStager(t *testing.T) {
	net := buildTinyNet(t, 4, 1)
	l := &stagerLauncher{}
	ctx := NewContext(l, 1)
	if err := net.StageInputs(ctx); err != nil {
		t.Fatal(err)
	}
	// Inputs sorted: "data" (4×2×8×8 floats), then "label" (4 floats).
	want := []int64{4 * 2 * 8 * 8 * 4, 4 * 4}
	if len(l.staged) != len(want) {
		t.Fatalf("staged %d copies, want %d", len(l.staged), len(want))
	}
	for i, n := range want {
		if l.staged[i] != n {
			t.Fatalf("staged[%d] = %d bytes, want %d", i, l.staged[i], n)
		}
	}
	if len(l.uploaded) != 0 {
		t.Fatalf("stager launcher fell back to UploadBytes %d times", len(l.uploaded))
	}
}

// TestStageInputsFallsBackToUploader: launchers without a copy stream get
// the default-stream upload path, same blobs, same bytes.
func TestStageInputsFallsBackToUploader(t *testing.T) {
	net := buildTinyNet(t, 4, 1)
	l := &uploaderLauncher{}
	ctx := NewContext(l, 1)
	if err := net.StageInputs(ctx); err != nil {
		t.Fatal(err)
	}
	want := []int64{4 * 2 * 8 * 8 * 4, 4 * 4}
	if len(l.uploaded) != len(want) {
		t.Fatalf("uploaded %d copies, want %d", len(l.uploaded), len(want))
	}
	for i, n := range want {
		if l.uploaded[i] != n {
			t.Fatalf("uploaded[%d] = %d bytes, want %d", i, l.uploaded[i], n)
		}
	}
	// A launcher with neither interface is a no-op, not an error.
	if err := net.StageInputs(NewContext(HostLauncher{}, 1)); err != nil {
		t.Fatal(err)
	}
}

// TestStepFedFeedsStagesSteps: StepFed is feed → stage → step, and a feed
// error short-circuits before any staging.
func TestStepFedFeedsStagesSteps(t *testing.T) {
	net := buildTinyNet(t, 4, 1)
	l := &stagerLauncher{}
	ctx := NewContext(l, 1)
	solver := NewSolver(net, ctx, CIFAR10QuickSolver())

	fed := 0
	loss, err := solver.StepFed(func(n *Net) error {
		fed++
		fillTinyInputs(t, n, 2)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fed != 1 {
		t.Fatalf("feed ran %d times, want 1", fed)
	}
	if len(l.staged) != 2 {
		t.Fatalf("staged %d copies, want 2 (data, label)", len(l.staged))
	}
	if loss <= 0 {
		t.Fatalf("suspicious loss %v", loss)
	}
}
