package dnn

import (
	"fmt"

	"repro/internal/kernels"
	"repro/internal/simgpu"
	"repro/internal/tensor"
)

// Winograd F(2×2, 3×3) convolution — the arithmetic-complexity-reduction
// line of the paper's related work (Lavin & Gray, CVPR 2016). It applies to
// 3×3 stride-1 convolutions and computes each 2×2 output tile with 16
// multiplies instead of 36 (a 2.25× reduction). GLP4NN is orthogonal to it:
// the Winograd kernels of different batch samples are dispatched as chains
// just like the im2col/GEMM trio, so stream concurrency stacks on top of
// the arithmetic savings (the ext-winograd experiment measures this).
//
// Only the forward pass uses Winograd; backward falls back to the im2col
// path, as real frameworks commonly do.

// winogradApplies reports whether the geometry supports F(2×2, 3×3).
func winogradApplies(cfg ConvConfig) bool {
	return cfg.KernelH == 3 && cfg.KernelW == 3 && cfg.StrideH == 1 && cfg.StrideW == 1
}

// transformFilter computes U = G·g·Gᵀ for one 3×3 filter, with
// G = [[1,0,0],[½,½,½],[½,−½,½],[0,0,1]] (result is 4×4).
func transformFilter(g []float32, u []float32) {
	// t = G·g (4×3)
	var t [12]float32
	for col := 0; col < 3; col++ {
		g0, g1, g2 := g[0*3+col], g[1*3+col], g[2*3+col]
		t[0*3+col] = g0
		t[1*3+col] = 0.5 * (g0 + g1 + g2)
		t[2*3+col] = 0.5 * (g0 - g1 + g2)
		t[3*3+col] = g2
	}
	// u = t·Gᵀ (4×4)
	for row := 0; row < 4; row++ {
		t0, t1, t2 := t[row*3+0], t[row*3+1], t[row*3+2]
		u[row*4+0] = t0
		u[row*4+1] = 0.5 * (t0 + t1 + t2)
		u[row*4+2] = 0.5 * (t0 - t1 + t2)
		u[row*4+3] = t2
	}
}

// transformInput computes V = Bᵀ·d·B for one 4×4 input tile, with
// Bᵀ = [[1,0,−1,0],[0,1,1,0],[0,−1,1,0],[0,1,0,−1]].
func transformInput(d *[16]float32, v *[16]float32) {
	var t [16]float32
	// t = Bᵀ·d
	for col := 0; col < 4; col++ {
		d0, d1, d2, d3 := d[0*4+col], d[1*4+col], d[2*4+col], d[3*4+col]
		t[0*4+col] = d0 - d2
		t[1*4+col] = d1 + d2
		t[2*4+col] = d2 - d1
		t[3*4+col] = d1 - d3
	}
	// v = t·B
	for row := 0; row < 4; row++ {
		t0, t1, t2, t3 := t[row*4+0], t[row*4+1], t[row*4+2], t[row*4+3]
		v[row*4+0] = t0 - t2
		v[row*4+1] = t1 + t2
		v[row*4+2] = t2 - t1
		v[row*4+3] = t1 - t3
	}
}

// inverseTransform computes Y = Aᵀ·m·A for one 4×4 element-product sum,
// with Aᵀ = [[1,1,1,0],[0,1,−1,−1]] (result is 2×2).
func inverseTransform(m *[16]float32, y *[4]float32) {
	var t [8]float32
	// t = Aᵀ·m (2×4)
	for col := 0; col < 4; col++ {
		m0, m1, m2, m3 := m[0*4+col], m[1*4+col], m[2*4+col], m[3*4+col]
		t[0*4+col] = m0 + m1 + m2
		t[1*4+col] = m1 - m2 - m3
	}
	// y = t·A (2×2)
	for row := 0; row < 2; row++ {
		t0, t1, t2, t3 := t[row*4+0], t[row*4+1], t[row*4+2], t[row*4+3]
		y[row*2+0] = t0 + t1 + t2
		y[row*2+1] = t1 - t2 - t3
	}
}

// winogradState caches the layer's transformed filters and scratch.
type winogradState struct {
	u []float32 // Co×Ci×16 transformed filters
}

// forwardWinograd computes one image's convolution with F(2×2,3×3),
// writing into out (Co×OH×OW). The caller guarantees winogradApplies.
func (l *ConvLayer) forwardWinograd(img []float32, out []float32) {
	g := l.geom
	oh, ow := g.OutH(), g.OutW()
	ci, co := g.Channels, l.co
	tilesY := (oh + 1) / 2
	tilesX := (ow + 1) / 2

	u := l.wino.u
	var d, v, m [16]float32
	var y [4]float32

	bias := []float32(nil)
	if l.bias != nil {
		bias = l.bias.Data.Data()
	}

	// Per-call transformed-input scratch comes from the shared arena; the
	// whole function runs inside one kernel closure, so lease/Put bracket a
	// single goroutine's use and the steady state allocates nothing.
	vBuf := tensor.GetBuf(ci * 16)
	defer vBuf.Put()
	vAll := vBuf.Data
	for ty := 0; ty < tilesY; ty++ {
		for tx := 0; tx < tilesX; tx++ {
			// Input tile origin in image coordinates (top-left of the 4×4
			// patch feeding this 2×2 output tile).
			iy0 := ty*2 - g.PadH
			ix0 := tx*2 - g.PadW
			for c := 0; c < ci; c++ {
				plane := img[c*g.Height*g.Width:]
				for r := 0; r < 4; r++ {
					yy := iy0 + r
					for s := 0; s < 4; s++ {
						xx := ix0 + s
						if yy < 0 || yy >= g.Height || xx < 0 || xx >= g.Width {
							d[r*4+s] = 0
						} else {
							d[r*4+s] = plane[yy*g.Width+xx]
						}
					}
				}
				transformInput(&d, &v)
				copy(vAll[c*16:], v[:])
			}
			for k := 0; k < co; k++ {
				for i := range m {
					m[i] = 0
				}
				uk := u[k*ci*16:]
				for c := 0; c < ci; c++ {
					uc := uk[c*16 : c*16+16]
					vc := vAll[c*16 : c*16+16]
					for i := 0; i < 16; i++ {
						m[i] += uc[i] * vc[i]
					}
				}
				inverseTransform(&m, &y)
				b := float32(0)
				if bias != nil {
					b = bias[k]
				}
				for r := 0; r < 2; r++ {
					oy := ty*2 + r
					if oy >= oh {
						continue
					}
					for s := 0; s < 2; s++ {
						ox := tx*2 + s
						if ox >= ow {
							continue
						}
						out[(k*oh+oy)*ow+ox] = y[r*2+s] + b
					}
				}
			}
		}
	}
}

// prepareWinograd (re)computes the transformed filter bank.
func (l *ConvLayer) prepareWinograd() {
	ci, co := l.geom.Channels, l.co
	if l.wino == nil {
		l.wino = &winogradState{u: make([]float32, co*ci*16)}
	}
	w := l.weight.Data.Data()
	for k := 0; k < co; k++ {
		for c := 0; c < ci; c++ {
			transformFilter(w[(k*ci+c)*9:(k*ci+c)*9+9], l.wino.u[(k*ci+c)*16:])
		}
	}
}

// winogradKernels builds the per-image simulated kernel chain: input
// transform, batched tile GEMM, inverse transform. Cost models follow the
// Lavin & Gray mapping (16 independent Ci×Co products over the tiles).
func (l *ConvLayer) winogradKernels(tag string, img, out []float32) []*simgpu.Kernel {
	g := l.geom
	tiles := ((g.OutH() + 1) / 2) * ((g.OutW() + 1) / 2)
	ci, co := g.Channels, l.co

	inTx := kernels.Elementwise("winograd_input_tx", tag, ci*tiles, 4*(16+16), 32, nil)

	// 16 batched GEMMs of (Co × tiles × Ci); model as one kernel with a
	// tile-matched launch geometry.
	gemmFlops := 16 * 2 * float64(co) * float64(tiles) * float64(ci)
	gx := (tiles + 31) / 32
	gy := (co + 31) / 32
	if gx < 1 {
		gx = 1
	}
	if gy < 1 {
		gy = 1
	}
	gemm := &simgpu.Kernel{
		Name: "winograd_gemm",
		Tag:  tag,
		Config: simgpu.LaunchConfig{
			Grid:           simgpu.Dim3{X: gx, Y: gy, Z: 16},
			Block:          simgpu.D1(256),
			RegsPerThread:  128,
			SharedMemBytes: 8192,
		},
		Cost: simgpu.Cost{
			FLOPs: gemmFlops / 0.5, // Winograd GEMMs run below dense-GEMM efficiency
			Bytes: 4 * (float64(co*ci)*16 + float64(ci*tiles)*16 + float64(co*tiles)*16) / 0.75,
		},
		// The whole algorithm's math runs in this middle kernel's closure
		// (transforms included) — simulated costs stay split across the
		// three kernels, numerics stay exact.
		Fn: func() { l.forwardWinograd(img, out) },
	}
	outTx := kernels.Elementwise("winograd_output_tx", tag, co*tiles, 4*(16+4), 24, nil)
	return []*simgpu.Kernel{inTx, gemm, outTx}
}

// validateWinograd returns an error when the engine cannot apply.
func validateWinograd(name string, cfg ConvConfig) error {
	if !winogradApplies(cfg) {
		return fmt.Errorf("conv %s: winograd engine needs 3x3 stride-1 kernels, got %dx%d stride %d",
			name, cfg.KernelH, cfg.KernelW, cfg.StrideH)
	}
	return nil
}
