package dnn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// TestWinogradMatchesIm2col: both engines must compute the same convolution
// (Winograd reassociates float32 math, so compare with a tight tolerance).
func TestWinogradMatchesIm2col(t *testing.T) {
	run := func(engine string, seed int64) *Blob {
		ctx := NewContext(HostLauncher{}, seed)
		cfg := Conv(6, 3, 1, 1)
		cfg.Seed = 55
		cfg.Engine = engine
		bottom := randBlob("x", 70, 3, 5, 9, 11)
		top := NewBlob("y")
		l := NewConv("conv", cfg)
		if err := l.Setup(ctx, []*Blob{bottom}, []*Blob{top}); err != nil {
			t.Fatal(err)
		}
		if err := l.Forward(ctx, []*Blob{bottom}, []*Blob{top}); err != nil {
			t.Fatal(err)
		}
		return top
	}
	a := run("im2col", 1)
	b := run("winograd", 1)
	if d := tensor.MaxAbsDiff(a.Data, b.Data); d > 1e-4 {
		t.Fatalf("winograd output differs from im2col by %v", d)
	}
}

// TestQuickWinogradRandomGeometries fuzzes shapes (odd sizes, pad 0/1,
// several channel combos).
func TestQuickWinogradRandomGeometries(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(6))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ci := 1 + rng.Intn(4)
		co := 1 + rng.Intn(5)
		h := 4 + rng.Intn(9)
		w := 4 + rng.Intn(9)
		pad := rng.Intn(2)
		batch := 1 + rng.Intn(3)

		run := func(engine string) (*Blob, error) {
			ctx := NewContext(HostLauncher{}, 2)
			cc := Conv(co, 3, 1, pad)
			cc.Seed = seed
			cc.Engine = engine
			bottom := randBlob("x", seed+1, batch, ci, h, w)
			top := NewBlob("y")
			l := NewConv("conv", cc)
			if err := l.Setup(ctx, []*Blob{bottom}, []*Blob{top}); err != nil {
				return nil, err
			}
			if err := l.Forward(ctx, []*Blob{bottom}, []*Blob{top}); err != nil {
				return nil, err
			}
			return top, nil
		}
		a, err := run("im2col")
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		b, err := run("winograd")
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		scale := math.Max(1, a.Data.AbsSum()/float64(a.Count()))
		if d := tensor.MaxAbsDiff(a.Data, b.Data); d > 1e-3*scale {
			t.Logf("seed %d (ci=%d co=%d %dx%d pad=%d): diff %v", seed, ci, co, h, w, pad, d)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWinogradEngineValidation(t *testing.T) {
	ctx := NewContext(HostLauncher{}, 1)
	cfg := Conv(4, 5, 1, 2) // 5×5: not winograd-able
	cfg.Engine = "winograd"
	l := NewConv("bad", cfg)
	bottom := NewBlob("x", 1, 1, 8, 8)
	if err := l.Setup(ctx, []*Blob{bottom}, []*Blob{NewBlob("y")}); err == nil {
		t.Fatal("5x5 winograd accepted")
	}
	cfg2 := Conv(4, 3, 2, 1) // stride 2: not winograd-able
	cfg2.Engine = "winograd"
	if err := NewConv("bad2", cfg2).Setup(ctx, []*Blob{bottom}, []*Blob{NewBlob("y")}); err == nil {
		t.Fatal("stride-2 winograd accepted")
	}
	cfg3 := Conv(4, 3, 1, 1)
	cfg3.Engine = "nonsense"
	if err := NewConv("bad3", cfg3).Setup(ctx, []*Blob{bottom}, []*Blob{NewBlob("y")}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestWinogradTrainingStillLearns: forward winograd + backward im2col must
// remain a consistent enough pair for SGD (the transforms are exact up to
// float rounding, so gradients match the forward).
func TestWinogradTrainingStillLearns(t *testing.T) {
	ctx := NewContext(HostLauncher{}, 9)
	cc := Conv(8, 3, 1, 1)
	cc.Seed = 9
	cc.Engine = "winograd"
	ic := IP(3)
	ic.Seed = 9
	net, err := NewNet("wino").
		Input("data", 8, 2, 8, 8).
		Input("label", 8).
		Add(NewConv("conv1", cc), []string{"data"}, []string{"c1"}).
		Add(NewReLU("relu1"), []string{"c1"}, []string{"r1"}).
		Add(NewIP("ip1", ic), []string{"r1"}, []string{"scores"}).
		Add(NewSoftmaxLoss("loss"), []string{"scores", "label"}, []string{"loss"}).
		Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fillTinyInputsWino(t, net, 10)
	s := NewSolver(net, ctx, SolverConfig{BaseLR: 0.05, Momentum: 0.9})
	first, err := s.Step()
	if err != nil {
		t.Fatal(err)
	}
	last := first
	for i := 0; i < 40; i++ {
		if last, err = s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if math.IsNaN(last) || last > first*0.6 {
		t.Fatalf("winograd net did not learn: %v → %v", first, last)
	}
}

func fillTinyInputsWino(t *testing.T, net *Net, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float32, net.Blob("data").Count())
	for i := range vals {
		vals[i] = float32(rng.NormFloat64())
	}
	if err := net.SetInputData("data", vals); err != nil {
		t.Fatal(err)
	}
	labels := make([]float32, net.Blob("label").Count())
	for i := range labels {
		labels[i] = float32(rng.Intn(3))
	}
	if err := net.SetInputData("label", labels); err != nil {
		t.Fatal(err)
	}
}
