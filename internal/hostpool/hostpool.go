// Package hostpool is the host-side parallel execution engine: a shared,
// bounded worker pool that runs independent kernel dependency chains on
// separate goroutines. It is the host mirror of the simulated stream pool —
// where internal/core's StreamPool overlaps kernels in *virtual* time, a
// hostpool.Pool overlaps the kernels' real float32 host math in *wall-clock*
// time, so a layer whose plan says "8 streams" really computes 8 chains at
// once on host cores.
//
// Determinism contract: work is submitted to logical lanes. Every task in a
// lane executes in submission order on a single in-flight runner, so two
// chains that share scratch buffers (layers index per-chain scratch by
// chain % width and route both chains to the same lane) can never race, and
// the floating-point operations of one lane happen in exactly the order the
// serial path would execute them. Cross-lane work touches disjoint memory by
// the layer contract (per-sample slices, per-chain partial buffers folded in
// fixed order after a barrier), so any interleaving of lanes yields
// bit-identical results.
package hostpool

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool bounds how many chain tasks may execute concurrently. It is shared:
// one pool can serve many ChainSets (many layers, many nets, many replicas)
// at once, so total host CPU use stays bounded no matter how wide the
// planned stream pools are.
type Pool struct {
	sem chan struct{}
}

// New builds a pool running at most workers tasks at once; workers <= 0
// selects GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

func (p *Pool) acquire() { p.sem <- struct{}{} }
func (p *Pool) release() { <-p.sem }

// Acquire blocks until a pool slot is free and takes it. It lets external
// long-lived workers — the data prefetcher's fill goroutines — count
// against the same host-concurrency budget as chain tasks. Every Acquire
// must be paired with exactly one Release; holders must not block on other
// pool work while holding a slot (that is Group's job).
func (p *Pool) Acquire() { p.acquire() }

// Release returns a slot taken with Acquire.
func (p *Pool) Release() { p.release() }

// tryAcquire takes a pool slot only if one is free right now.
func (p *Pool) tryAcquire() bool {
	select {
	case p.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// Run executes fn(0..tasks-1), sharding tasks across pool slots. The calling
// goroutine always participates and helper goroutines only join when a slot
// is free at spawn time (non-blocking acquire), so Run is safe to call from
// inside a pool task — a fully loaded pool degrades to serial execution on
// the caller instead of deadlocking. Tasks must touch disjoint state (the
// row-band contract of tensor.GemmParallel); Run returns after every task
// has completed.
//
// A panicking task is recovered — on helper goroutines and on the caller
// alike — and surfaces in the joined error return; the remaining tasks
// still run, so the exactly-once contract holds even when some tasks blow
// up.
func (p *Pool) Run(tasks int, fn func(task int)) error {
	if tasks <= 0 {
		return nil
	}
	if tasks == 1 {
		return protectTask(fn, 0)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var errs []error
	loop := func() {
		for {
			t := int(next.Add(1)) - 1
			if t >= tasks {
				return
			}
			if err := protectTask(fn, t); err != nil {
				errMu.Lock()
				errs = append(errs, err)
				errMu.Unlock()
			}
		}
	}
	helpers := tasks - 1
	if w := cap(p.sem); helpers > w {
		helpers = w
	}
	for h := 0; h < helpers; h++ {
		if !p.tryAcquire() {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer p.release()
			loop()
		}()
	}
	loop()
	wg.Wait()
	return errors.Join(errs...)
}

// protectTask runs fn(t), converting a panic into an error.
func protectTask(fn func(int), t int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("hostpool: task %d panic: %v", t, r)
		}
	}()
	fn(t)
	return nil
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the process-wide shared pool, sized by GOMAXPROCS.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = New(0) })
	return defaultPool
}

// ChainSet runs tasks over a fixed number of lanes. Tasks submitted to the
// same lane execute serially in FIFO order; distinct lanes execute
// concurrently, bounded by the owning pool. A ChainSet is intended for a
// single submitting goroutine (the kernel dispatcher): Submit calls must not
// race with each other or with Wait, which mirrors how one host thread
// drives a GPU's streams.
type ChainSet struct {
	pool  *Pool
	lanes []*lane

	wg sync.WaitGroup

	errMu sync.Mutex
	errs  []error
}

// lane is one in-order task queue with at most one in-flight runner.
type lane struct {
	cs *ChainSet

	mu     sync.Mutex
	queue  []func()
	active bool
}

// NewChainSet builds a chain set with the given number of lanes (minimum 1)
// executing on the pool.
func (p *Pool) NewChainSet(lanes int) *ChainSet {
	if lanes < 1 {
		lanes = 1
	}
	cs := &ChainSet{pool: p, lanes: make([]*lane, lanes)}
	for i := range cs.lanes {
		cs.lanes[i] = &lane{cs: cs}
	}
	return cs
}

// Lanes returns the lane count.
func (cs *ChainSet) Lanes() int { return len(cs.lanes) }

// Submit queues fn on lane i (mod the lane count; negative i maps to lane
// 0). The task runs asynchronously after every earlier task of the same
// lane has finished.
func (cs *ChainSet) Submit(i int, fn func()) {
	if fn == nil {
		return
	}
	if i < 0 {
		i = 0
	}
	l := cs.lanes[i%len(cs.lanes)]
	l.mu.Lock()
	l.queue = append(l.queue, fn)
	if !l.active {
		l.active = true
		cs.wg.Add(1)
		go l.run()
	}
	l.mu.Unlock()
}

// run drains the lane queue in FIFO order, holding a pool slot only while a
// task executes so wide chain sets cannot starve other ChainSets sharing
// the pool.
func (l *lane) run() {
	defer l.cs.wg.Done()
	for {
		l.mu.Lock()
		if len(l.queue) == 0 {
			l.active = false
			l.mu.Unlock()
			return
		}
		fn := l.queue[0]
		l.queue[0] = nil
		l.queue = l.queue[1:]
		l.mu.Unlock()

		l.cs.pool.acquire()
		err := protect(fn)
		l.cs.pool.release()
		if err != nil {
			l.cs.errMu.Lock()
			l.cs.errs = append(l.cs.errs, err)
			l.cs.errMu.Unlock()
		}
	}
}

// protect runs fn, converting a panic into an error so one bad kernel
// closure cannot take the whole process down from a worker goroutine.
func protect(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("hostpool: chain task panic: %v", r)
		}
	}()
	fn()
	return nil
}

// Wait blocks until every submitted task has finished and returns the
// joined errors of tasks that panicked (nil when all succeeded). After Wait
// returns the ChainSet is empty and may be reused for the next batch of
// submissions.
func (cs *ChainSet) Wait() error {
	cs.wg.Wait()
	cs.errMu.Lock()
	errs := cs.errs
	cs.errs = nil
	cs.errMu.Unlock()
	return errors.Join(errs...)
}

// Group runs detached orchestration tasks: goroutines that each drive one
// unit of coordinated pool work — a DAG layer invocation submitting kernel
// chains — and block until that work has drained. Such tasks must not hold
// pool slots themselves: a slot-holding task waiting on its own chain
// closures would deadlock a fully loaded pool, so Group goroutines run
// outside the slot budget and only the chain closures they submit occupy
// slots. Panics are converted to errors like chain tasks. Completions are
// consumed one at a time with Next, so a scheduler can release dependent
// work the moment a task finishes while the rest are still running.
type Group struct {
	done chan GroupResult
}

// GroupResult is one finished Group task.
type GroupResult struct {
	ID  int
	Err error
}

// NewGroup builds a task group. capacity must be at least the number of
// tasks that may finish before the owner consumes their results with Next
// (the total task count is always safe); Go never blocks within it.
func NewGroup(capacity int) *Group {
	if capacity < 1 {
		capacity = 1
	}
	return &Group{done: make(chan GroupResult, capacity)}
}

// Go starts fn on a dedicated goroutine outside the pool's slot budget. The
// task's completion (with its error, or its panic converted to an error) is
// delivered through Next.
func (g *Group) Go(id int, fn func() error) {
	go func() {
		var err error
		func() {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("hostpool: group task %d panic: %v", id, r)
				}
			}()
			err = fn()
		}()
		g.done <- GroupResult{ID: id, Err: err}
	}()
}

// Next blocks until one started task finishes and returns its result. The
// owner must call Next exactly once per Go.
func (g *Group) Next() GroupResult { return <-g.done }
