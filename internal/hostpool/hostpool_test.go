package hostpool

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLaneFIFOOrder: tasks on one lane run in submission order even with
// many lanes active (the determinism contract layers rely on).
func TestLaneFIFOOrder(t *testing.T) {
	p := New(4)
	cs := p.NewChainSet(8)
	const perLane, lanes = 200, 8
	got := make([][]int, lanes)
	for i := 0; i < perLane; i++ {
		for lane := 0; lane < lanes; lane++ {
			lane, i := lane, i
			cs.Submit(lane, func() { got[lane] = append(got[lane], i) })
		}
	}
	if err := cs.Wait(); err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < lanes; lane++ {
		if len(got[lane]) != perLane {
			t.Fatalf("lane %d ran %d/%d tasks", lane, len(got[lane]), perLane)
		}
		for i, v := range got[lane] {
			if v != i {
				t.Fatalf("lane %d task %d ran out of order (got %d)", lane, i, v)
			}
		}
	}
}

// TestLaneModuloRouting: chain ids beyond the lane count wrap (chains
// sharing scratch buffers share a lane and therefore serialize).
func TestLaneModuloRouting(t *testing.T) {
	p := New(2)
	cs := p.NewChainSet(3)
	var order []int
	for chain := 0; chain < 9; chain += 3 { // chains 0,3,6 → all lane 0
		chain := chain
		cs.Submit(chain, func() { order = append(order, chain) })
	}
	if err := cs.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 3 || order[2] != 6 {
		t.Fatalf("same-lane chains ran out of order: %v", order)
	}
}

// TestBoundedWorkers: concurrent task execution never exceeds the pool
// bound, even with more lanes than workers.
func TestBoundedWorkers(t *testing.T) {
	const workers = 3
	p := New(workers)
	cs := p.NewChainSet(16)
	var cur, max atomic.Int64
	var mu sync.Mutex
	for i := 0; i < 64; i++ {
		cs.Submit(i, func() {
			n := cur.Add(1)
			mu.Lock()
			if n > max.Load() {
				max.Store(n)
			}
			mu.Unlock()
			runtime.Gosched()
			cur.Add(-1)
		})
	}
	if err := cs.Wait(); err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > workers {
		t.Fatalf("observed %d concurrent tasks, pool bound is %d", m, workers)
	}
}

// TestPanicCapture: a panicking task surfaces as an error from Wait and the
// set is reusable afterwards.
func TestPanicCapture(t *testing.T) {
	p := New(2)
	cs := p.NewChainSet(2)
	ran := false
	cs.Submit(0, func() { panic("boom") })
	cs.Submit(1, func() { ran = true })
	err := cs.Wait()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic not captured: %v", err)
	}
	if !ran {
		t.Fatal("healthy lane did not run")
	}
	// Reuse after an error: the set must be clean.
	ok := false
	cs.Submit(0, func() { ok = true })
	if err := cs.Wait(); err != nil || !ok {
		t.Fatalf("reuse after error failed: %v ok=%v", err, ok)
	}
}

// TestSharedPoolManySets: several chain sets share one pool concurrently
// (the multi-replica trainer shape). Run with -race.
func TestSharedPoolManySets(t *testing.T) {
	p := New(4)
	var wg sync.WaitGroup
	var total atomic.Int64
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cs := p.NewChainSet(4)
			for i := 0; i < 100; i++ {
				cs.Submit(i, func() { total.Add(1) })
			}
			if err := cs.Wait(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if total.Load() != 600 {
		t.Fatalf("ran %d/600 tasks", total.Load())
	}
}

// TestDefaults: worker sizing and the shared default pool.
func TestDefaults(t *testing.T) {
	if w := New(0).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(0) workers = %d, want GOMAXPROCS", w)
	}
	if Default() != Default() {
		t.Fatal("Default() is not a singleton")
	}
	cs := Default().NewChainSet(0)
	if cs.Lanes() != 1 {
		t.Fatalf("lanes clamp: %d", cs.Lanes())
	}
	ran := false
	cs.Submit(-5, func() { ran = true }) // negative chain → lane 0
	cs.Submit(0, nil)                    // nil task is a no-op
	if err := cs.Wait(); err != nil || !ran {
		t.Fatalf("negative-lane submit: err=%v ran=%v", err, ran)
	}
}

// TestRunCoversEveryTask: Run(tasks, fn) executes each task index exactly
// once for a spread of task counts and pool widths.
func TestRunCoversEveryTask(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		p := New(workers)
		for _, tasks := range []int{0, 1, 2, 3, 7, 64} {
			counts := make([]atomic.Int32, tasks+1)
			p.Run(tasks, func(task int) {
				if task < 0 || task >= tasks {
					t.Errorf("Run(workers=%d, tasks=%d) invoked out-of-range task %d", workers, tasks, task)
					return
				}
				counts[task].Add(1)
			})
			for i := 0; i < tasks; i++ {
				if n := counts[i].Load(); n != 1 {
					t.Errorf("Run(workers=%d, tasks=%d): task %d ran %d times, want 1", workers, tasks, i, n)
				}
			}
		}
	}
}

// TestRunNestedInsidePoolTask: Run called from inside a chain task on a
// fully loaded pool must not deadlock — the caller participates and helpers
// only join via non-blocking acquire. This is the shape SgemmP creates when
// a row-parallel GEMM runs inside an offloaded chain closure.
func TestRunNestedInsidePoolTask(t *testing.T) {
	p := New(2)
	cs := p.NewChainSet(2)
	var total atomic.Int32
	for lane := 0; lane < 2; lane++ {
		cs.Submit(lane, func() {
			p.Run(8, func(task int) { total.Add(1) })
		})
	}
	if err := cs.Wait(); err != nil {
		t.Fatal(err)
	}
	if total.Load() != 16 {
		t.Fatalf("nested Run completed %d tasks, want 16", total.Load())
	}
}

// TestRunSerialWhenSaturated: with every slot held, Run degrades to serial
// execution on the calling goroutine and still finishes all tasks.
func TestRunSerialWhenSaturated(t *testing.T) {
	p := New(1)
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.acquire()
		<-release
		p.release()
	}()
	for !func() bool { // wait until the slot is actually held
		if p.tryAcquire() {
			p.release()
			return false
		}
		return true
	}() {
		runtime.Gosched()
	}
	var ran atomic.Int32
	p.Run(5, func(task int) { ran.Add(1) })
	close(release)
	wg.Wait()
	if ran.Load() != 5 {
		t.Fatalf("saturated Run completed %d tasks, want 5", ran.Load())
	}
}

// TestRunPanicCapture: panicking Run tasks — on helpers and on the calling
// goroutine — come back as errors, and the surviving tasks still all run
// exactly once.
func TestRunPanicCapture(t *testing.T) {
	p := New(4)
	const tasks = 64
	var ran [tasks]atomic.Int64
	err := p.Run(tasks, func(task int) {
		ran[task].Add(1)
		if task%5 == 0 {
			panic(fmt.Sprintf("boom-%d", task))
		}
	})
	if err == nil {
		t.Fatal("panics not surfaced")
	}
	for i := range ran {
		if n := ran[i].Load(); n != 1 {
			t.Fatalf("task %d ran %d times, want 1", i, n)
		}
	}
	for i := 0; i < tasks; i += 5 {
		if !strings.Contains(err.Error(), fmt.Sprintf("boom-%d", i)) {
			t.Fatalf("error lost panic of task %d: %v", i, err)
		}
	}
	// The pool is healthy afterwards: no leaked slots, next Run succeeds.
	var ok atomic.Int64
	if err := p.Run(8, func(int) { ok.Add(1) }); err != nil || ok.Load() != 8 {
		t.Fatalf("pool unhealthy after panics: %v ran=%d", err, ok.Load())
	}
}

// TestRunSingleTaskPanic: the tasks==1 fast path also recovers.
func TestRunSingleTaskPanic(t *testing.T) {
	p := New(2)
	err := p.Run(1, func(int) { panic("solo") })
	if err == nil || !strings.Contains(err.Error(), "solo") {
		t.Fatalf("single-task panic not captured: %v", err)
	}
}

// TestGroupCompletion: every Go gets exactly one Next result, errors
// included, in completion (not submission) order.
func TestGroupCompletion(t *testing.T) {
	g := NewGroup(8)
	for i := 0; i < 8; i++ {
		i := i
		g.Go(i, func() error {
			if i%3 == 0 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
	}
	seen := map[int]bool{}
	errs := 0
	for i := 0; i < 8; i++ {
		res := g.Next()
		if seen[res.ID] {
			t.Fatalf("task %d reported twice", res.ID)
		}
		seen[res.ID] = true
		if res.Err != nil {
			errs++
		}
	}
	if len(seen) != 8 || errs != 3 {
		t.Fatalf("saw %d tasks, %d errors", len(seen), errs)
	}
}

// TestGroupPanicBecomesError: a panicking group task surfaces as an error
// result instead of crashing the process.
func TestGroupPanicBecomesError(t *testing.T) {
	g := NewGroup(1)
	g.Go(7, func() error { panic("boom") })
	res := g.Next()
	if res.ID != 7 || res.Err == nil || !strings.Contains(res.Err.Error(), "boom") {
		t.Fatalf("panic not converted: %+v", res)
	}
}

// TestGroupDetachedFromPool: group tasks must make progress while every
// pool slot is blocked waiting on chains the group tasks submit — the
// deadlock scenario the detached design exists to avoid.
func TestGroupDetachedFromPool(t *testing.T) {
	p := New(2)
	g := NewGroup(4)
	for i := 0; i < 4; i++ {
		i := i
		g.Go(i, func() error {
			cs := p.NewChainSet(2)
			for c := 0; c < 2; c++ {
				cs.Submit(c, func() {})
			}
			return cs.Wait()
		})
	}
	for i := 0; i < 4; i++ {
		if res := g.Next(); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
}

// TestAcquireReleaseSharesBudget: externally held slots (the prefetcher's
// fill workers) count against the same bound as chain tasks — with all
// slots held, a submitted task cannot start until a Release.
func TestAcquireReleaseSharesBudget(t *testing.T) {
	const workers = 2
	p := New(workers)
	var cur, max atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.Acquire()
				n := cur.Add(1)
				for {
					m := max.Load()
					if n <= m || max.CompareAndSwap(m, n) {
						break
					}
				}
				runtime.Gosched()
				cur.Add(-1)
				p.Release()
			}
		}()
	}
	wg.Wait()
	if m := max.Load(); m > workers {
		t.Fatalf("observed %d concurrent holders, pool bound is %d", m, workers)
	}

	// A fully Acquired pool defers chain tasks until slots return.
	p.Acquire()
	p.Acquire()
	started := make(chan struct{})
	cs := p.NewChainSet(1)
	cs.Submit(0, func() { close(started) })
	select {
	case <-started:
		t.Fatal("task ran while every slot was externally held")
	case <-time.After(10 * time.Millisecond):
	}
	p.Release()
	p.Release()
	if err := cs.Wait(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	default:
		t.Fatal("task never ran after Release")
	}
}
