// Package kernels defines the simulated GPU kernel zoo of the Caffe-like
// framework: for every operation the paper's workloads launch (im2col,
// sgemm, the bias "gemmk", pooling, ReLU, LRN, dropout, softmax, SGD
// updates), a constructor derives the launch configuration (grid, block,
// registers, shared memory) and the cost descriptor (effective FLOPs and
// DRAM bytes) from the tensor shapes, and binds the real host computation as
// the kernel closure.
//
// These configurations are what GLP4NN's resource tracker observes at
// runtime; their fidelity to Caffe's CUDA kernels is what makes the
// analyzer's decisions (paper Eq. 7: grid sizes, threads per block, shared
// memory per block) meaningful. Conventions follow Caffe: elementwise
// kernels use CUDA_NUM_THREADS=512 one-thread-per-element grids; GEMM uses a
// 64×64-tile, 256-thread block like cuBLAS's sgemm_64x64 variants.
package kernels

import (
	"repro/internal/simgpu"
	"repro/internal/tensor"
)

// NumThreads is Caffe's CUDA_NUM_THREADS.
const NumThreads = 512

// Efficiency factors folded into cost descriptors: the fraction of device
// peak the kernel class achieves in practice. Effective work = raw / eff.
const (
	gemmEff = 0.55 // dense SGEMM fraction-of-peak
	memEff  = 0.75 // streaming-kernel fraction of DRAM bandwidth
)

// Per-kernel-class register counts as a profiler would report them. The
// im2col value (33) is the one the paper quotes in its Fig. 6 walkthrough.
const (
	regsIm2col      = 33
	regsGemm        = 96
	regsGemmK       = 64
	regsElementwise = 24
)

// gemmSmemBytes is the shared memory per GEMM thread block (double-buffered
// 64×16 and 16×64 A/B tiles of float32).
const gemmSmemBytes = 2 * (64*16 + 16*64) * 4

// gridFor returns a 1-D elementwise grid over n items.
func gridFor(n int) simgpu.LaunchConfig {
	blocks := (n + NumThreads - 1) / NumThreads
	if blocks < 1 {
		blocks = 1
	}
	return simgpu.LaunchConfig{
		Grid:          simgpu.D1(blocks),
		Block:         simgpu.D1(NumThreads),
		RegsPerThread: regsElementwise,
	}
}

// Elementwise builds a memory-bound map kernel over n elements with the
// given per-element traffic and arithmetic and a bound host closure.
func Elementwise(name, tag string, n int, bytesPerElem, flopsPerElem float64, fn func()) *simgpu.Kernel {
	cfg := gridFor(n)
	return &simgpu.Kernel{
		Name:   name,
		Tag:    tag,
		Config: cfg,
		Cost: simgpu.Cost{
			FLOPs: float64(n) * flopsPerElem,
			Bytes: float64(n) * bytesPerElem / memEff,
		},
		Fn: fn,
	}
}

// Im2col builds Caffe's im2col_gpu kernel for one image: one thread per
// column element, grid sized by channels × output pixels.
func Im2col(tag string, img []float32, g tensor.ConvGeom, col []float32) *simgpu.Kernel {
	n := g.Channels * g.OutH() * g.OutW() // Caffe's num_kernels
	blocks := (n + NumThreads - 1) / NumThreads
	if blocks < 1 {
		blocks = 1
	}
	reads := float64(g.Channels * g.Height * g.Width * 4)
	writes := float64(g.ColRows() * g.ColCols() * 4)
	return &simgpu.Kernel{
		Name: "im2col_gpu",
		Tag:  tag,
		Config: simgpu.LaunchConfig{
			Grid:          simgpu.D1(blocks),
			Block:         simgpu.D1(NumThreads),
			RegsPerThread: regsIm2col,
		},
		Cost: simgpu.Cost{
			FLOPs: float64(n) * 8, // index arithmetic, negligible
			Bytes: (reads + writes) / memEff,
		},
		Fn: func() { tensor.Im2col(img, g, col) },
	}
}

// Col2im builds the adjoint scatter kernel used by convolution backward
// w.r.t. data.
func Col2im(tag string, col []float32, g tensor.ConvGeom, img []float32) *simgpu.Kernel {
	n := g.Channels * g.Height * g.Width // Caffe's col2im grid: one thread per image element
	blocks := (n + NumThreads - 1) / NumThreads
	if blocks < 1 {
		blocks = 1
	}
	reads := float64(g.ColRows() * g.ColCols() * 4)
	writes := float64(n * 4)
	return &simgpu.Kernel{
		Name: "col2im_gpu",
		Tag:  tag,
		Config: simgpu.LaunchConfig{
			Grid:          simgpu.D1(blocks),
			Block:         simgpu.D1(NumThreads),
			RegsPerThread: regsIm2col,
		},
		Cost: simgpu.Cost{
			FLOPs: float64(g.ColRows()*g.ColCols()) * 2,
			Bytes: (reads + writes) / memEff,
		},
		Fn: func() { tensor.Col2im(col, g, img) },
	}
}

// Sgemm builds a tiled GEMM kernel computing C = alpha·op(A)op(B) + beta·C
// with the 64×64-tile launch geometry of cuBLAS.
func Sgemm(tag string, transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) *simgpu.Kernel {
	return SgemmP(tag, nil, transA, transB, m, n, k, alpha, a, b, beta, c)
}

// SgemmP is Sgemm with an optional row-parallel runner for the host math:
// with a non-nil par, the closure shards disjoint row bands of C across the
// runner's workers (bit-identical to the serial kernel at any width — see
// tensor.GemmParallel). The simulated kernel and its launch geometry are
// unchanged; only the host-side wall-clock of the closure improves.
func SgemmP(tag string, par tensor.RowParallel, transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) *simgpu.Kernel {
	return SgemmEpi(tag, par, transA, transB, m, n, k, alpha, a, b, beta, c, nil, 0)
}

// SgemmEpi is SgemmP with a fused per-row epilogue (bias add, activation)
// applied while each C tile is still cache hot — the fusion the dnn conv/ip
// layers use to collapse their separate bias/ReLU output passes into the
// GEMM (see tensor.GemmEpilogue for the elementwise bit-identity contract).
// epiOps is the epilogue's per-element FLOP count for the cost model; the
// fused kernel charges no extra DRAM bytes because the separate pass's
// output round trip is exactly what fusion eliminates.
func SgemmEpi(tag string, par tensor.RowParallel, transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32, epi tensor.GemmEpilogue, epiOps float64) *simgpu.Kernel {
	gx := (n + 63) / 64
	gy := (m + 63) / 64
	if gx < 1 {
		gx = 1
	}
	if gy < 1 {
		gy = 1
	}
	name := "sgemm_64x64"
	flops := 2 * float64(m) * float64(n) * float64(k)
	if epi != nil {
		name = "sgemm_64x64_fused"
		flops += epiOps * float64(m) * float64(n)
	}
	traffic := 4 * (float64(m)*float64(k) + float64(k)*float64(n) + 2*float64(m)*float64(n))
	return &simgpu.Kernel{
		Name: name,
		Tag:  tag,
		Config: simgpu.LaunchConfig{
			Grid:           simgpu.D2(gx, gy),
			Block:          simgpu.D1(256),
			RegsPerThread:  regsGemm,
			SharedMemBytes: gemmSmemBytes,
		},
		Cost: simgpu.Cost{
			FLOPs: flops / gemmEff,
			Bytes: traffic / memEff,
		},
		Fn: func() { tensor.GemmParallelFused(par, transA, transB, m, n, k, alpha, a, b, beta, c, epi) },
	}
}

// BiasGemm builds the K=1 rank-one update Caffe performs to add biases:
// C(Co×P) += bias(Co×1) · ones(1×P). The paper's traces show this as the
// "gemmk" kernel.
func BiasGemm(tag string, co, p int, bias, ones, out []float32) *simgpu.Kernel {
	gx := (p + 63) / 64
	gy := (co + 63) / 64
	if gx < 1 {
		gx = 1
	}
	if gy < 1 {
		gy = 1
	}
	return &simgpu.Kernel{
		Name: "gemmk_1xN",
		Tag:  tag,
		Config: simgpu.LaunchConfig{
			Grid:           simgpu.D2(gx, gy),
			Block:          simgpu.D1(256),
			RegsPerThread:  regsGemmK,
			SharedMemBytes: 2048,
		},
		Cost: simgpu.Cost{
			FLOPs: 2 * float64(co) * float64(p),
			Bytes: 4 * (float64(co) + float64(p) + 2*float64(co)*float64(p)) / memEff,
		},
		Fn: func() { tensor.Gemm(false, false, co, p, 1, 1, bias, ones, 1, out) },
	}
}

// BiasBackward builds the reduction of output gradients into bias
// gradients: db(Co) += dTop(Co×P) · ones(P).
func BiasBackward(tag string, co, p int, dtop, ones, dbias []float32) *simgpu.Kernel {
	n := co * p
	k := Elementwise("gemv_bias_bwd", tag, n, 4, 2, func() {
		tensor.Gemv(false, co, p, 1, dtop, ones, 1, dbias)
	})
	return k
}

// SGDUpdate builds the fused momentum+update kernel the solver launches per
// parameter blob: hist = lr·(diff + wd·data) + momentum·hist; data −= hist.
// The closure is supplied by the solver; the cost model is 3 reads + 2
// writes and ~4 FLOPs per element.
func SGDUpdate(tag string, n int, fn func()) *simgpu.Kernel {
	return Elementwise("sgd_update", tag, n, 20, 4, fn)
}

// AxpyKernel models a generic saxpy-style device copy/accumulate.
func AxpyKernel(name, tag string, n int, fn func()) *simgpu.Kernel {
	return Elementwise(name, tag, n, 12, 2, fn)
}
