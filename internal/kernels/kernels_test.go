package kernels

import (
	"math"
	"testing"

	"repro/internal/simgpu"
	"repro/internal/tensor"
)

func TestElementwiseGridDerivation(t *testing.T) {
	k := Elementwise("relu_fwd", "layer", 1000, 8, 1, nil)
	if k.Config.Grid.X != 2 || k.Config.Block.X != NumThreads {
		t.Fatalf("grid %v block %v, want 2 blocks of %d", k.Config.Grid, k.Config.Block, NumThreads)
	}
	// Exactly divisible and sub-block sizes.
	if Elementwise("k", "", 512, 1, 1, nil).Config.Grid.X != 1 {
		t.Fatal("512 elems should be 1 block")
	}
	if Elementwise("k", "", 513, 1, 1, nil).Config.Grid.X != 2 {
		t.Fatal("513 elems should be 2 blocks")
	}
	if Elementwise("k", "", 0, 1, 1, nil).Config.Grid.X != 1 {
		t.Fatal("zero elems should clamp to 1 block")
	}
	// Cost scales with n and folds the bandwidth efficiency in.
	k = Elementwise("k", "", 100, 8, 2, nil)
	if k.Cost.FLOPs != 200 {
		t.Fatalf("flops = %v", k.Cost.FLOPs)
	}
	if k.Cost.Bytes <= 800 { // 800 raw / 0.75 eff
		t.Fatalf("bytes = %v, want > raw 800", k.Cost.Bytes)
	}
}

func TestIm2colMatchesPaperWalkthrough(t *testing.T) {
	// The paper's Fig. 6 example: CaffeNet conv1 per-image im2col on K40C
	// launches an [18,1,1] grid with 33 registers per thread.
	g := tensor.ConvGeom{Channels: 3, Height: 227, Width: 227, KernelH: 11, KernelW: 11, StrideH: 4, StrideW: 4}
	img := make([]float32, g.Channels*g.Height*g.Width)
	col := make([]float32, g.ColRows()*g.ColCols())
	k := Im2col("conv1/n0", img, g, col)
	if k.Name != "im2col_gpu" {
		t.Fatalf("name = %q", k.Name)
	}
	if k.Config.Grid.X != 18 {
		t.Fatalf("grid = %v, want [18,1,1] (paper Fig. 6)", k.Config.Grid)
	}
	if k.Config.RegsPerThread != 33 {
		t.Fatalf("regs = %d, want 33 (paper Fig. 6)", k.Config.RegsPerThread)
	}
	if k.Config.Block.X != NumThreads {
		t.Fatalf("block = %v", k.Config.Block)
	}
	if k.Tag != "conv1/n0" {
		t.Fatalf("tag = %q", k.Tag)
	}
	// Closure actually performs im2col.
	img[0] = 7
	k.Fn()
	if col[0] != 7 {
		t.Fatal("closure did not run im2col")
	}
}

func TestSgemmGridAndCost(t *testing.T) {
	a := make([]float32, 96*363)
	b := make([]float32, 363*3025)
	c := make([]float32, 96*3025)
	k := Sgemm("conv1/n0", false, false, 96, 3025, 363, 1, a, b, 0, c)
	// 64×64 tiles: gx = ceil(3025/64) = 48, gy = ceil(96/64) = 2.
	if k.Config.Grid.X != 48 || k.Config.Grid.Y != 2 {
		t.Fatalf("grid = %v, want [48,2,1]", k.Config.Grid)
	}
	if k.Config.Block.Count() != 256 || k.Config.SharedMemBytes != gemmSmemBytes {
		t.Fatalf("block/smem = %v/%d", k.Config.Block, k.Config.SharedMemBytes)
	}
	rawFlops := 2.0 * 96 * 3025 * 363
	if math.Abs(k.Cost.FLOPs-rawFlops/gemmEff) > 1 {
		t.Fatalf("flops = %v, want %v (raw/eff)", k.Cost.FLOPs, rawFlops/gemmEff)
	}
	// Degenerate dims clamp to one tile.
	k0 := Sgemm("t", false, false, 0, 0, 0, 1, nil, nil, 0, nil)
	if k0.Config.Grid.X != 1 || k0.Config.Grid.Y != 1 {
		t.Fatalf("degenerate grid = %v", k0.Config.Grid)
	}
}

func TestSgemmClosureComputes(t *testing.T) {
	a := []float32{1, 2, 3, 4} // 2×2
	b := []float32{5, 6, 7, 8}
	c := make([]float32, 4)
	k := Sgemm("t", false, false, 2, 2, 2, 1, a, b, 0, c)
	k.Fn()
	want := []float32{19, 22, 43, 50}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c = %v, want %v", c, want)
		}
	}
}

func TestBiasGemm(t *testing.T) {
	bias := []float32{1, 2}
	ones := []float32{1, 1, 1}
	out := make([]float32, 6)
	k := BiasGemm("t", 2, 3, bias, ones, out)
	if k.Name != "gemmk_1xN" {
		t.Fatalf("name = %q", k.Name)
	}
	k.Fn()
	want := []float32{1, 1, 1, 2, 2, 2}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v", out)
		}
	}
}

func TestBiasBackward(t *testing.T) {
	dtop := []float32{1, 2, 3, 4, 5, 6} // 2×3
	ones := []float32{1, 1, 1}
	db := make([]float32, 2)
	k := BiasBackward("t", 2, 3, dtop, ones, db)
	k.Fn()
	if db[0] != 6 || db[1] != 15 {
		t.Fatalf("db = %v, want [6 15]", db)
	}
}

func TestCol2imKernel(t *testing.T) {
	g := tensor.ConvGeom{Channels: 2, Height: 5, Width: 5, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	col := make([]float32, g.ColRows()*g.ColCols())
	img := make([]float32, 2*5*5)
	k := Col2im("t", col, g, img)
	if k.Name != "col2im_gpu" {
		t.Fatalf("name = %q", k.Name)
	}
	// Caffe's col2im grid: one thread per image element.
	if k.Config.Grid.X != 1 { // 50 elems / 512
		t.Fatalf("grid = %v", k.Config.Grid)
	}
	for i := range col {
		col[i] = 1
	}
	k.Fn()
	if img[2*5+2] == 0 { // center cell receives all 9 contributions
		t.Fatal("closure did not scatter")
	}
}

func TestSGDUpdateAndAxpyKernels(t *testing.T) {
	ran := false
	k := SGDUpdate("w", 1000, func() { ran = true })
	if k.Name != "sgd_update" {
		t.Fatalf("name = %q", k.Name)
	}
	k.Fn()
	if !ran {
		t.Fatal("closure not bound")
	}
	a := AxpyKernel("axpy_fold_w", "conv1", 64, nil)
	if a.Config.Grid.X != 1 || a.Tag != "conv1" {
		t.Fatalf("axpy kernel: %v %q", a.Config.Grid, a.Tag)
	}
}

// TestKernelsValidateOnCatalogDevices: every builder must produce launches
// the simulated driver accepts on all three paper GPUs.
func TestKernelsValidateOnCatalogDevices(t *testing.T) {
	g := tensor.ConvGeom{Channels: 32, Height: 16, Width: 16, KernelH: 5, KernelW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}
	img := make([]float32, g.Channels*g.Height*g.Width)
	col := make([]float32, g.ColRows()*g.ColCols())
	ks := []*simgpu.Kernel{
		Im2col("t", img, g, col),
		Col2im("t", col, g, img),
		Sgemm("t", false, false, 32, 256, 800, 1, make([]float32, 32*800), make([]float32, 800*256), 0, make([]float32, 32*256)),
		BiasGemm("t", 32, 256, make([]float32, 32), make([]float32, 256), make([]float32, 32*256)),
		Elementwise("relu_fwd", "t", 8192, 8, 1, nil),
		SGDUpdate("t", 25600, nil),
	}
	for _, spec := range simgpu.DeviceCatalog {
		for _, k := range ks {
			if err := k.Validate(spec); err != nil {
				t.Errorf("%s on %s: %v", k.Name, spec.Name, err)
			}
		}
	}
}
