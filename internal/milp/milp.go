// Package milp provides a small, dependency-free mixed-integer linear
// programming solver. It is the stand-in for the GNU Linear Programming Kit
// (GLPK) that the GLP4NN paper uses to solve the kernel-concurrency model of
// Section 3.2. The problems produced by the kernel analyzer are tiny (a
// handful of variables, a handful of constraints), so the solver favours
// robustness and clarity over large-scale performance: a dense two-phase
// primal simplex with Bland's anti-cycling rule, wrapped in best-first
// branch and bound for the integer variables.
package milp

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Relation is the sense of a linear constraint.
type Relation int

// Constraint senses.
const (
	LE Relation = iota // a·x ≤ b
	GE                 // a·x ≥ b
	EQ                 // a·x = b
)

func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Constraint is one linear constraint a·x REL b.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	RHS    float64
	Name   string
}

// Sense selects minimization or maximization of the objective.
type Sense int

// Objective senses.
const (
	Maximize Sense = iota
	Minimize
)

// Problem describes max/min c·x subject to constraints, variable bounds and
// integrality requirements. Bounds default to [0, +inf) when the slices are
// nil. Upper bounds may be math.Inf(1).
type Problem struct {
	Sense       Sense
	Objective   []float64
	Constraints []Constraint
	Lower       []float64 // nil => all zeros
	Upper       []float64 // nil => all +inf
	Integer     []bool    // nil => all continuous
	VarNames    []string  // optional, used in diagnostics
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
	NodeLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	case NodeLimit:
		return "node-limit"
	}
	return "unknown"
}

// Solution is the result of Solve. X has one entry per variable; for integer
// variables the value is exactly integral (rounded from the LP value within
// tolerance).
type Solution struct {
	Status     Status
	X          []float64
	Objective  float64
	Nodes      int // branch-and-bound nodes explored
	Iterations int // total simplex pivots
}

// Options tunes the solver. The zero value picks sane defaults.
type Options struct {
	MaxNodes      int     // branch-and-bound node limit (default 100000)
	MaxIterations int     // simplex pivot limit per LP (default 20000)
	IntTol        float64 // integrality tolerance (default 1e-6)
	Eps           float64 // numerical tolerance (default 1e-9)
}

func (o Options) withDefaults() Options {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 100000
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 20000
	}
	if o.IntTol <= 0 {
		o.IntTol = 1e-6
	}
	if o.Eps <= 0 {
		o.Eps = 1e-9
	}
	return o
}

// Validate checks structural consistency of the problem.
func (p *Problem) Validate() error {
	n := len(p.Objective)
	if n == 0 {
		return errors.New("milp: problem has no variables")
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != n {
			return fmt.Errorf("milp: constraint %d has %d coefficients, want %d", i, len(c.Coeffs), n)
		}
	}
	if p.Lower != nil && len(p.Lower) != n {
		return fmt.Errorf("milp: lower bounds length %d, want %d", len(p.Lower), n)
	}
	if p.Upper != nil && len(p.Upper) != n {
		return fmt.Errorf("milp: upper bounds length %d, want %d", len(p.Upper), n)
	}
	if p.Integer != nil && len(p.Integer) != n {
		return fmt.Errorf("milp: integrality length %d, want %d", len(p.Integer), n)
	}
	for j := 0; j < n; j++ {
		lo, hi := p.boundsAt(j)
		if lo > hi {
			return fmt.Errorf("milp: variable %d has empty bound range [%g, %g]", j, lo, hi)
		}
		if math.IsInf(lo, -1) {
			return fmt.Errorf("milp: variable %d has -inf lower bound (free variables unsupported)", j)
		}
	}
	return nil
}

func (p *Problem) boundsAt(j int) (lo, hi float64) {
	lo, hi = 0, math.Inf(1)
	if p.Lower != nil {
		lo = p.Lower[j]
	}
	if p.Upper != nil {
		hi = p.Upper[j]
	}
	return lo, hi
}

// String renders the problem in a compact LP-file-like format, useful for
// debugging analyzer output.
func (p *Problem) String() string {
	var b strings.Builder
	if p.Sense == Maximize {
		b.WriteString("maximize ")
	} else {
		b.WriteString("minimize ")
	}
	for j, c := range p.Objective {
		if j > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%g*%s", c, p.varName(j))
	}
	b.WriteString("\n")
	for _, c := range p.Constraints {
		b.WriteString("  s.t. ")
		for j, a := range c.Coeffs {
			if a == 0 {
				continue
			}
			fmt.Fprintf(&b, "%+g*%s ", a, p.varName(j))
		}
		fmt.Fprintf(&b, "%s %g", c.Rel, c.RHS)
		if c.Name != "" {
			fmt.Fprintf(&b, "  [%s]", c.Name)
		}
		b.WriteString("\n")
	}
	for j := range p.Objective {
		lo, hi := p.boundsAt(j)
		kind := "cont"
		if p.Integer != nil && p.Integer[j] {
			kind = "int"
		}
		fmt.Fprintf(&b, "  %s in [%g, %g] %s\n", p.varName(j), lo, hi, kind)
	}
	return b.String()
}

func (p *Problem) varName(j int) string {
	if p.VarNames != nil && j < len(p.VarNames) && p.VarNames[j] != "" {
		return p.VarNames[j]
	}
	return fmt.Sprintf("x%d", j)
}

// Solve runs branch and bound over the LP relaxation. A nil opts uses
// defaults.
func Solve(p *Problem, opts *Options) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	o := Options{}
	if opts != nil {
		o = *opts
	}
	o = o.withDefaults()

	bb := &bnb{prob: p, opts: o}
	return bb.run()
}

// bnb is the branch-and-bound driver. Nodes carry tightened variable bounds;
// the search is best-first on the LP relaxation bound so the incumbent prunes
// aggressively.
type bnb struct {
	prob *Problem
	opts Options

	nodes int
	iters int

	incumbent    []float64
	incumbentObj float64
	haveInc      bool
}

type node struct {
	lower, upper []float64
	bound        float64 // LP relaxation objective (in maximize orientation)
}

func (b *bnb) run() (*Solution, error) {
	n := len(b.prob.Objective)
	lo := make([]float64, n)
	hi := make([]float64, n)
	for j := 0; j < n; j++ {
		lo[j], hi[j] = b.prob.boundsAt(j)
		// Integral variables can have their bounds rounded inward up front.
		if b.isInt(j) {
			lo[j] = math.Ceil(lo[j] - b.opts.IntTol)
			if !math.IsInf(hi[j], 1) {
				hi[j] = math.Floor(hi[j] + b.opts.IntTol)
			}
			if lo[j] > hi[j] {
				return &Solution{Status: Infeasible}, nil
			}
		}
	}

	// maximize orientation: flip sign for minimize.
	obj := make([]float64, n)
	sign := 1.0
	if b.prob.Sense == Minimize {
		sign = -1.0
	}
	for j := range obj {
		obj[j] = sign * b.prob.Objective[j]
	}

	root := node{lower: lo, upper: hi, bound: math.Inf(1)}
	// Best-first: simple slice-based priority queue; node counts are tiny.
	open := []node{root}

	status := Optimal
	for len(open) > 0 {
		if b.nodes >= b.opts.MaxNodes {
			status = NodeLimit
			break
		}
		// pop node with best bound
		best := 0
		for i := 1; i < len(open); i++ {
			if open[i].bound > open[best].bound {
				best = i
			}
		}
		cur := open[best]
		open[best] = open[len(open)-1]
		open = open[:len(open)-1]

		if b.haveInc && cur.bound <= b.incumbentObj+b.opts.Eps {
			continue // pruned by bound
		}
		b.nodes++

		x, val, st, it := solveLP(obj, b.prob.Constraints, cur.lower, cur.upper, b.opts)
		b.iters += it
		switch st {
		case Infeasible:
			continue
		case Unbounded:
			// An unbounded relaxation of a node with all-finite integer bounds
			// means the continuous part is unbounded: propagate.
			return &Solution{Status: Unbounded, Nodes: b.nodes, Iterations: b.iters}, nil
		case IterLimit:
			status = IterLimit
			continue
		}
		if b.haveInc && val <= b.incumbentObj+b.opts.Eps {
			continue
		}

		// Find most fractional integer variable.
		frac := -1
		fracDist := 0.0
		for j := 0; j < n; j++ {
			if !b.isInt(j) {
				continue
			}
			f := x[j] - math.Floor(x[j])
			d := math.Min(f, 1-f)
			if d > b.opts.IntTol && d > fracDist {
				fracDist = d
				frac = j
			}
		}
		if frac < 0 {
			// Integral solution: new incumbent.
			if !b.haveInc || val > b.incumbentObj {
				b.haveInc = true
				b.incumbentObj = val
				b.incumbent = append([]float64(nil), x...)
				for j := 0; j < n; j++ {
					if b.isInt(j) {
						b.incumbent[j] = math.Round(b.incumbent[j])
					}
				}
			}
			continue
		}

		// Branch.
		floorV := math.Floor(x[frac])
		left := node{lower: cloneBounds(cur.lower), upper: cloneBounds(cur.upper), bound: val}
		left.upper[frac] = floorV
		right := node{lower: cloneBounds(cur.lower), upper: cloneBounds(cur.upper), bound: val}
		right.lower[frac] = floorV + 1
		if left.lower[frac] <= left.upper[frac] {
			open = append(open, left)
		}
		if math.IsInf(right.upper[frac], 1) || right.lower[frac] <= right.upper[frac] {
			open = append(open, right)
		}
	}

	if !b.haveInc {
		if status == Optimal {
			status = Infeasible
		}
		return &Solution{Status: status, Nodes: b.nodes, Iterations: b.iters}, nil
	}
	objOut := b.incumbentObj
	if b.prob.Sense == Minimize {
		objOut = -objOut
	}
	return &Solution{
		Status:     status,
		X:          b.incumbent,
		Objective:  objOut,
		Nodes:      b.nodes,
		Iterations: b.iters,
	}, nil
}

func (b *bnb) isInt(j int) bool {
	return b.prob.Integer != nil && b.prob.Integer[j]
}

func cloneBounds(v []float64) []float64 {
	return append([]float64(nil), v...)
}
