package milp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustSolve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p, nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func TestLPSimpleMax(t *testing.T) {
	// maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6 → x=4, y=0, obj=12.
	p := &Problem{
		Objective: []float64{3, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 4},
			{Coeffs: []float64{1, 3}, Rel: LE, RHS: 6},
		},
	}
	s := mustSolve(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-12) > 1e-6 {
		t.Fatalf("objective = %v, want 12", s.Objective)
	}
	if math.Abs(s.X[0]-4) > 1e-6 || math.Abs(s.X[1]) > 1e-6 {
		t.Fatalf("x = %v, want [4 0]", s.X)
	}
}

func TestLPWithGEAndEQ(t *testing.T) {
	// minimize 2x + 3y s.t. x + y = 10, x >= 3, y >= 2 → x=8, y=2, obj=22.
	p := &Problem{
		Sense:     Minimize,
		Objective: []float64{2, 3},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 10},
			{Coeffs: []float64{1, 0}, Rel: GE, RHS: 3},
			{Coeffs: []float64{0, 1}, Rel: GE, RHS: 2},
		},
	}
	s := mustSolve(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-22) > 1e-6 {
		t.Fatalf("objective = %v, want 22", s.Objective)
	}
}

func TestLPInfeasible(t *testing.T) {
	p := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: GE, RHS: 5},
			{Coeffs: []float64{1}, Rel: LE, RHS: 3},
		},
	}
	s := mustSolve(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestLPUnbounded(t *testing.T) {
	p := &Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, -1}, Rel: LE, RHS: 1},
		},
	}
	s := mustSolve(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestLPBounds(t *testing.T) {
	// maximize x + y with 1 <= x <= 3, 2 <= y <= 2.5 and x + y <= 5.
	p := &Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 5},
		},
		Lower: []float64{1, 2},
		Upper: []float64{3, 2.5},
	}
	s := mustSolve(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-5) > 1e-6 {
		t.Fatalf("objective = %v, want 5", s.Objective)
	}
	if s.X[0] < 1-1e-9 || s.X[0] > 3+1e-9 || s.X[1] < 2-1e-9 || s.X[1] > 2.5+1e-9 {
		t.Fatalf("x = %v violates bounds", s.X)
	}
}

func TestMIPKnapsack(t *testing.T) {
	// Classic 0/1 knapsack: values {60,100,120}, weights {10,20,30}, cap 50.
	// Optimal = items 2+3 → 220.
	p := &Problem{
		Objective: []float64{60, 100, 120},
		Constraints: []Constraint{
			{Coeffs: []float64{10, 20, 30}, Rel: LE, RHS: 50},
		},
		Upper:   []float64{1, 1, 1},
		Integer: []bool{true, true, true},
	}
	s := mustSolve(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-220) > 1e-6 {
		t.Fatalf("objective = %v, want 220", s.Objective)
	}
	want := []float64{0, 1, 1}
	for j := range want {
		if math.Abs(s.X[j]-want[j]) > 1e-6 {
			t.Fatalf("x = %v, want %v", s.X, want)
		}
	}
}

func TestMIPIntegralityGap(t *testing.T) {
	// maximize x s.t. 2x <= 7, x integer → x=3 (LP gives 3.5).
	p := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{2}, Rel: LE, RHS: 7},
		},
		Integer: []bool{true},
	}
	s := mustSolve(t, p)
	if s.Status != Optimal || math.Abs(s.X[0]-3) > 1e-9 {
		t.Fatalf("got %v status=%v, want x=3", s.X, s.Status)
	}
}

func TestMIPMinimize(t *testing.T) {
	// minimize 5x + 4y s.t. x + y >= 3, 2x + y >= 4, integer → check against
	// enumeration: candidates (x,y): (1,2)=13, (2,1)=14, (0,4)=16, (3,0)=15,
	// (0,3) violates 2x+y>=4 → best 13.
	p := &Problem{
		Sense:     Minimize,
		Objective: []float64{5, 4},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: GE, RHS: 3},
			{Coeffs: []float64{2, 1}, Rel: GE, RHS: 4},
		},
		Integer: []bool{true, true},
		Upper:   []float64{10, 10},
	}
	s := mustSolve(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-13) > 1e-6 {
		t.Fatalf("objective = %v status=%v, want 13", s.Objective, s.Status)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []*Problem{
		{},
		{Objective: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{1, 2}, Rel: LE, RHS: 1}}},
		{Objective: []float64{1}, Lower: []float64{1, 2}},
		{Objective: []float64{1}, Lower: []float64{5}, Upper: []float64{3}},
		{Objective: []float64{1}, Lower: []float64{math.Inf(-1)}},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate() = nil, want error", i)
		}
	}
}

func TestProblemString(t *testing.T) {
	p := &Problem{
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 3, Name: "cap"},
		},
		Integer:  []bool{true, false},
		VarNames: []string{"nK1", ""},
	}
	s := p.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	for _, want := range []string{"nK1", "x1", "cap", "<= 3"} {
		if !contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// bruteForceMax enumerates all integer points in the box and returns the best
// feasible objective, or NaN if none.
func bruteForceMax(p *Problem) float64 {
	n := len(p.Objective)
	best := math.NaN()
	var rec func(j int, x []float64)
	rec = func(j int, x []float64) {
		if j == n {
			for _, c := range p.Constraints {
				v := 0.0
				for k := 0; k < n; k++ {
					v += c.Coeffs[k] * x[k]
				}
				switch c.Rel {
				case LE:
					if v > c.RHS+1e-9 {
						return
					}
				case GE:
					if v < c.RHS-1e-9 {
						return
					}
				case EQ:
					if math.Abs(v-c.RHS) > 1e-9 {
						return
					}
				}
			}
			obj := 0.0
			for k := 0; k < n; k++ {
				obj += p.Objective[k] * x[k]
			}
			if math.IsNaN(best) || obj > best {
				best = obj
			}
			return
		}
		lo, hi := p.boundsAt(j)
		for v := lo; v <= hi+1e-9; v++ {
			x[j] = v
			rec(j+1, x)
		}
	}
	rec(0, make([]float64, n))
	return best
}

// TestQuickMIPMatchesBruteForce generates random small all-integer problems
// and checks the branch-and-bound optimum against exhaustive enumeration.
func TestQuickMIPMatchesBruteForce(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(42))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		m := 1 + rng.Intn(3)
		p := &Problem{
			Objective: make([]float64, n),
			Integer:   make([]bool, n),
			Lower:     make([]float64, n),
			Upper:     make([]float64, n),
		}
		for j := 0; j < n; j++ {
			p.Objective[j] = float64(rng.Intn(21) - 10)
			p.Integer[j] = true
			p.Lower[j] = 0
			p.Upper[j] = float64(1 + rng.Intn(6))
		}
		for i := 0; i < m; i++ {
			c := Constraint{Coeffs: make([]float64, n), Rel: Relation(rng.Intn(2)), RHS: float64(rng.Intn(25) - 5)}
			for j := 0; j < n; j++ {
				c.Coeffs[j] = float64(rng.Intn(11) - 5)
			}
			p.Constraints = append(p.Constraints, c)
		}
		s, err := Solve(p, nil)
		if err != nil {
			t.Logf("seed %d: solve error %v", seed, err)
			return false
		}
		want := bruteForceMax(p)
		if math.IsNaN(want) {
			return s.Status == Infeasible
		}
		if s.Status != Optimal {
			t.Logf("seed %d: status %v but brute force found %v", seed, s.Status, want)
			return false
		}
		if math.Abs(s.Objective-want) > 1e-6 {
			t.Logf("seed %d: objective %v, brute force %v\n%s", seed, s.Objective, want, p)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLPFeasibleSolutionRespectsConstraints checks that any Optimal
// solution returned actually satisfies every constraint and bound.
func TestQuickLPFeasibleSolutionRespectsConstraints(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		p := &Problem{
			Objective: make([]float64, n),
			Lower:     make([]float64, n),
			Upper:     make([]float64, n),
		}
		for j := 0; j < n; j++ {
			p.Objective[j] = rng.Float64()*20 - 10
			p.Lower[j] = rng.Float64() * 2
			p.Upper[j] = p.Lower[j] + rng.Float64()*10
		}
		for i := 0; i < m; i++ {
			c := Constraint{Coeffs: make([]float64, n), Rel: Relation(rng.Intn(3)), RHS: rng.Float64()*30 - 5}
			for j := 0; j < n; j++ {
				c.Coeffs[j] = rng.Float64()*10 - 5
			}
			p.Constraints = append(p.Constraints, c)
		}
		s, err := Solve(p, nil)
		if err != nil || s.Status != Optimal {
			return true // infeasible/unbounded is fine here
		}
		for j := 0; j < n; j++ {
			if s.X[j] < p.Lower[j]-1e-6 || s.X[j] > p.Upper[j]+1e-6 {
				t.Logf("seed %d: x[%d]=%v outside [%v,%v]", seed, j, s.X[j], p.Lower[j], p.Upper[j])
				return false
			}
		}
		for i, c := range p.Constraints {
			v := 0.0
			for j := 0; j < n; j++ {
				v += c.Coeffs[j] * s.X[j]
			}
			ok := true
			switch c.Rel {
			case LE:
				ok = v <= c.RHS+1e-5
			case GE:
				ok = v >= c.RHS-1e-5
			case EQ:
				ok = math.Abs(v-c.RHS) <= 1e-5
			}
			if !ok {
				t.Logf("seed %d: constraint %d violated: %v %v %v", seed, i, v, c.Rel, c.RHS)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyzerShapedProblem mirrors the exact structure the kernel analyzer
// produces (Section 3.2 of the paper): maximize active threads subject to
// shared-memory, thread, block and concurrency-degree budgets.
func TestAnalyzerShapedProblem(t *testing.T) {
	// Three kernels with (threads/block, smem/block, blocks/SM): im2col
	// (512, 0, 1), sgemm (256, 8192, 2), gemmk (128, 2048, 1).
	tau := []float64{512 * 1, 256 * 2, 128 * 1}
	sm := []float64{0 * 1, 8192 * 2, 2048 * 1}
	blk := []float64{1, 2, 1}
	p := &Problem{
		Objective: tau,
		Constraints: []Constraint{
			{Coeffs: sm, Rel: LE, RHS: 65536, Name: "smem"},
			{Coeffs: tau, Rel: LE, RHS: 2048, Name: "threads"},
			{Coeffs: blk, Rel: LE, RHS: 32, Name: "blocks"},
			{Coeffs: []float64{1, 1, 1}, Rel: LE, RHS: 128, Name: "concurrency"},
		},
		Lower:   []float64{1, 1, 1},
		Upper:   []float64{16, 16, 16},
		Integer: []bool{true, true, true},
	}
	s := mustSolve(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	// All solutions must satisfy the thread budget.
	used := 0.0
	for j := range tau {
		used += tau[j] * s.X[j]
	}
	if used > 2048+1e-6 {
		t.Fatalf("thread budget exceeded: %v", used)
	}
	if s.X[0] < 1 || s.X[1] < 1 || s.X[2] < 1 {
		t.Fatalf("every kernel must keep at least one instance: %v", s.X)
	}
}

func BenchmarkMIPAnalyzerShaped(b *testing.B) {
	tau := []float64{512, 512, 128}
	sm := []float64{0, 16384, 2048}
	p := &Problem{
		Objective: tau,
		Constraints: []Constraint{
			{Coeffs: sm, Rel: LE, RHS: 65536},
			{Coeffs: tau, Rel: LE, RHS: 2048},
			{Coeffs: []float64{1, 1, 1}, Rel: LE, RHS: 128},
		},
		Lower:   []float64{1, 1, 1},
		Upper:   []float64{32, 32, 32},
		Integer: []bool{true, true, true},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, nil); err != nil {
			b.Fatal(err)
		}
	}
}
