package milp

import "math"

// solveLP maximizes obj·x subject to the given constraints and box bounds
// lower ≤ x ≤ upper (lower finite, upper possibly +inf). It uses a dense
// two-phase primal simplex on the shifted problem y = x − lower ≥ 0, with
// finite upper bounds materialized as explicit rows. Bland's rule guarantees
// termination. Returns the solution in the original variable space.
func solveLP(obj []float64, cons []Constraint, lower, upper []float64, opts Options) (x []float64, val float64, st Status, iters int) {
	n := len(obj)
	eps := opts.Eps

	// Shifted RHS for each constraint: b − A·lower.
	type row struct {
		a   []float64
		rel Relation
		b   float64
	}
	rows := make([]row, 0, len(cons)+n)
	for _, c := range cons {
		b := c.RHS
		for j := 0; j < n; j++ {
			b -= c.Coeffs[j] * lower[j]
		}
		rows = append(rows, row{a: c.Coeffs, rel: c.Rel, b: b})
	}
	// Finite upper bounds become y_j ≤ hi − lo rows.
	for j := 0; j < n; j++ {
		if math.IsInf(upper[j], 1) {
			continue
		}
		a := make([]float64, n)
		a[j] = 1
		rows = append(rows, row{a: a, rel: LE, b: upper[j] - lower[j]})
	}

	m := len(rows)
	// Column layout: [0,n) structural, then one slack/surplus per inequality,
	// then one artificial per GE/EQ row (and per negative-RHS LE row after
	// normalization).
	nSlack := 0
	for _, r := range rows {
		if r.rel != EQ {
			nSlack++
		}
	}
	// Normalize RHS ≥ 0 by flipping rows; flipping changes LE<->GE.
	norm := make([]row, m)
	for i, r := range rows {
		a := append([]float64(nil), r.a...)
		b := r.b
		rel := r.rel
		if b < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			b = -b
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		norm[i] = row{a: a, rel: rel, b: b}
	}

	nArt := 0
	for _, r := range norm {
		if r.rel != LE {
			nArt++
		}
	}
	total := n + nSlack + nArt
	// Tableau: m rows × (total+1) columns (last = RHS). Basis per row.
	t := make([][]float64, m)
	basis := make([]int, m)
	slackCol := n
	artCol := n + nSlack
	artStart := artCol
	for i, r := range norm {
		t[i] = make([]float64, total+1)
		copy(t[i], r.a)
		t[i][total] = r.b
		switch r.rel {
		case LE:
			t[i][slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case GE:
			t[i][slackCol] = -1
			slackCol++
			t[i][artCol] = 1
			basis[i] = artCol
			artCol++
		case EQ:
			t[i][artCol] = 1
			basis[i] = artCol
			artCol++
		}
	}

	// Phase 1: maximize −Σ artificials if any exist.
	if nArt > 0 {
		c1 := make([]float64, total)
		for j := artStart; j < total; j++ {
			c1[j] = -1
		}
		ok, it := simplexPivot(t, basis, c1, total, opts)
		iters += it
		if !ok {
			return nil, 0, IterLimit, iters
		}
		// Feasible iff all artificials are (near) zero.
		sum := 0.0
		for i := 0; i < m; i++ {
			if basis[i] >= artStart {
				sum += t[i][total]
			}
		}
		if sum > 1e-7 {
			return nil, 0, Infeasible, iters
		}
		// Drive remaining artificials out of the basis where possible.
		for i := 0; i < m; i++ {
			if basis[i] < artStart {
				continue
			}
			piv := -1
			for j := 0; j < artStart; j++ {
				if math.Abs(t[i][j]) > eps {
					piv = j
					break
				}
			}
			if piv >= 0 {
				pivot(t, i, piv)
				basis[i] = piv
			}
			// If no pivot exists the row is redundant (all-zero); the basic
			// artificial stays at value 0 and is harmless in phase 2 because
			// its column is excluded from pricing below.
		}
	}

	// Phase 2: maximize the real objective; artificial columns are frozen.
	c2 := make([]float64, total)
	copy(c2, obj)
	ok, it := simplexPivotLimited(t, basis, c2, artStart, opts)
	iters += it
	if !ok {
		return nil, 0, IterLimit, iters
	}
	// Detect unboundedness: simplexPivotLimited returns ok with a flag via
	// sentinel — handled inside; re-check by scanning one more time.
	if unbounded(t, basis, c2, artStart, eps) {
		return nil, 0, Unbounded, iters
	}

	y := make([]float64, total)
	for i := 0; i < m; i++ {
		y[basis[i]] = t[i][total]
	}
	x = make([]float64, n)
	val = 0
	for j := 0; j < n; j++ {
		x[j] = y[j] + lower[j]
		val += obj[j] * y[j]
	}
	// Objective in the original space includes the shift term obj·lower.
	for j := 0; j < n; j++ {
		val += 0 // shift already folded into x; recompute cleanly below
	}
	val = 0
	for j := 0; j < n; j++ {
		val += obj[j] * x[j]
	}
	return x, val, Optimal, iters
}

// simplexPivot runs primal simplex pivots maximizing c over all columns.
// Returns false when the iteration limit is hit.
func simplexPivot(t [][]float64, basis []int, c []float64, nCols int, opts Options) (bool, int) {
	return simplexCore(t, basis, c, nCols, opts)
}

// simplexPivotLimited prices only the first nCols columns (used in phase 2 to
// exclude artificial columns).
func simplexPivotLimited(t [][]float64, basis []int, c []float64, nCols int, opts Options) (bool, int) {
	return simplexCore(t, basis, c, nCols, opts)
}

func simplexCore(t [][]float64, basis []int, c []float64, nCols int, opts Options) (bool, int) {
	m := len(t)
	if m == 0 {
		return true, 0
	}
	eps := opts.Eps
	iters := 0
	for ; iters < opts.MaxIterations; iters++ {
		// Reduced costs: rc_j = c_j − c_B · B⁻¹A_j. With an explicit tableau
		// the column t[:,j] already is B⁻¹A_j.
		enter := -1
		for j := 0; j < nCols; j++ {
			rc := c[j]
			for i := 0; i < m; i++ {
				cb := c[basis[i]]
				if cb != 0 {
					rc -= cb * t[i][j]
				}
			}
			if rc > eps {
				enter = j // Bland: first improving column
				break
			}
		}
		if enter < 0 {
			return true, iters // optimal
		}
		// Ratio test with Bland's tie-break on lowest basis index.
		leave := -1
		bestRatio := math.Inf(1)
		rhs := len(t[0]) - 1
		for i := 0; i < m; i++ {
			if t[i][enter] > eps {
				r := t[i][rhs] / t[i][enter]
				if r < bestRatio-eps || (math.Abs(r-bestRatio) <= eps && (leave < 0 || basis[i] < basis[leave])) {
					bestRatio = r
					leave = i
				}
			}
		}
		if leave < 0 {
			// Unbounded direction; mark by setting a huge basic value so the
			// caller's unbounded() check fires. We simply return optimal here
			// and let unbounded() re-derive the condition.
			return true, iters
		}
		pivot(t, leave, enter)
		basis[leave] = enter
	}
	return false, iters
}

// unbounded reports whether an improving column with no blocking row exists,
// i.e. the LP is unbounded at the current (otherwise optimal-looking) basis.
func unbounded(t [][]float64, basis []int, c []float64, nCols int, eps float64) bool {
	m := len(t)
	if m == 0 {
		// No constraints at all: unbounded iff any positive objective coeff.
		for j := 0; j < nCols; j++ {
			if c[j] > eps {
				return true
			}
		}
		return false
	}
	for j := 0; j < nCols; j++ {
		rc := c[j]
		for i := 0; i < m; i++ {
			cb := c[basis[i]]
			if cb != 0 {
				rc -= cb * t[i][j]
			}
		}
		if rc > eps {
			blocked := false
			for i := 0; i < m; i++ {
				if t[i][j] > eps {
					blocked = true
					break
				}
			}
			if !blocked {
				return true
			}
		}
	}
	return false
}

// pivot performs a Gauss-Jordan pivot on t[row][col].
func pivot(t [][]float64, row, col int) {
	p := t[row][col]
	inv := 1 / p
	for j := range t[row] {
		t[row][j] *= inv
	}
	t[row][col] = 1 // exact
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := range t[i] {
			t[i][j] -= f * t[row][j]
		}
		t[i][col] = 0 // exact
	}
}
