package models

import (
	"math"
	"testing"

	"repro/internal/dnn"
)

// frozenOutputs lists what each workload answers with once the loss (and
// its label/similarity input) is stripped by freezing.
var frozenOutputs = map[string][]string{
	"CIFAR10":   {"scores"},
	"Siamese":   {"feat", "feat_p"},
	"CaffeNet":  {"scores"},
	"GoogLeNet": {"scores"},
}

func outputBits(t *testing.T, net *dnn.Net, names []string) map[string][]uint32 {
	t.Helper()
	out := map[string][]uint32{}
	for _, name := range names {
		data := net.Blob(name).Data.Data()
		bits := make([]uint32, len(data))
		for i, v := range data {
			bits[i] = math.Float32bits(v)
		}
		out[name] = bits
	}
	return out
}

func assertSameBits(t *testing.T, want, got map[string][]uint32, what string) {
	t.Helper()
	for name, wb := range want {
		gb := got[name]
		if len(gb) != len(wb) {
			t.Fatalf("%s: %s length %d vs %d", what, name, len(gb), len(wb))
		}
		for i := range wb {
			if wb[i] != gb[i] {
				t.Fatalf("%s: %s[%d] = %08x, want %08x", what, name, i, gb[i], wb[i])
			}
		}
	}
}

// TestFrozenEquivalenceAllWorkloads is the inference face of the
// convergence-invariance contract, on all four paper workloads:
// Freeze(net).Forward is bitwise identical to the training net run in the
// Test phase — under serial dispatch and under the operator DAG wavefront.
func TestFrozenEquivalenceAllWorkloads(t *testing.T) {
	batches := map[string]int{"CIFAR10": 4, "Siamese": 4, "CaffeNet": 2, "GoogLeNet": 2}
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			batch := batches[name]
			w, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			ctx := dnn.NewContext(dnn.HostLauncher{}, 7)
			net, err := w.Build(ctx, batch, 7)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.NewFeeder(batch, 8)(net); err != nil {
				t.Fatal(err)
			}

			// Reference: the training net in Test phase.
			tctx := dnn.NewContext(dnn.HostLauncher{}, 9)
			tctx.Phase = dnn.Test
			if _, err := net.Forward(tctx); err != nil {
				t.Fatal(err)
			}
			outs := frozenOutputs[name]
			want := outputBits(t, net, outs)

			fz, err := dnn.Freeze(net)
			if err != nil {
				t.Fatal(err)
			}
			if got := fz.Outputs(); len(got) != len(outs) {
				t.Fatalf("frozen outputs = %v, want %v", got, outs)
			}

			// Serial frozen forward, Train-phase context (freeze forces Test).
			for _, o := range outs {
				net.Blob(o).Data.Zero()
			}
			fz.EnableDAG(false)
			if err := fz.Forward(dnn.NewContext(dnn.HostLauncher{}, 11)); err != nil {
				t.Fatal(err)
			}
			assertSameBits(t, want, outputBits(t, net, outs), name+"/serial")

			// DAG wavefront dispatch over forked sessions.
			for _, o := range outs {
				net.Blob(o).Data.Zero()
			}
			fz.EnableDAG(true)
			if err := fz.Forward(dnn.NewContext(hostWidthLauncher{2}, 12)); err != nil {
				t.Fatal(err)
			}
			assertSameBits(t, want, outputBits(t, net, outs), name+"/dag")
			if name == "GoogLeNet" || name == "Siamese" {
				if st := fz.DAGStats(); st.MaxWavefront < 2 {
					t.Fatalf("%s frozen plan has no parallelism: %+v", name, st)
				}
			}
		})
	}
}
