package models

import (
	"math"
	"testing"

	"repro/internal/dnn"
	"repro/internal/hostpool"
	"repro/internal/simgpu"
	"repro/internal/tensor"
)

// hostWidthLauncher is HostLauncher with a configurable chain width, so the
// layers allocate per-chain scratch and the context's pool path engages.
type hostWidthLauncher struct{ w int }

func (hostWidthLauncher) BeginLayer(string) {}

func (hostWidthLauncher) Launch(k *simgpu.Kernel, _ int) error {
	if k.Fn != nil {
		k.Fn()
	}
	return nil
}

func (hostWidthLauncher) Sync() error { return nil }

func (l hostWidthLauncher) Width() int { return l.w }

// ForkLayerSession lets the operator DAG scheduler run concurrent layer
// sessions over this launcher (it is stateless, so the fork is itself).
func (l hostWidthLauncher) ForkLayerSession() any { return l }

// trainWorkload trains a workload for `steps` solver iterations at the given
// launcher width, optionally offloading chain closures to a worker pool, and
// returns the final parameters.
func trainWorkload(t *testing.T, name string, batch, width, steps int, pool *hostpool.Pool) [][]float32 {
	return trainWorkloadDAG(t, name, batch, width, steps, pool, false)
}

// trainWorkloadDAG is trainWorkload with the operator DAG scheduler
// switchable on.
func trainWorkloadDAG(t *testing.T, name string, batch, width, steps int, pool *hostpool.Pool, dag bool) [][]float32 {
	return trainWorkloadFused(t, name, batch, width, steps, pool, dag, false)
}

// trainWorkloadFused is trainWorkloadDAG with fused GEMM epilogues
// switchable on too.
func trainWorkloadFused(t *testing.T, name string, batch, width, steps int, pool *hostpool.Pool, dag, fuse bool) [][]float32 {
	t.Helper()
	w, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	ctx := dnn.NewContext(hostWidthLauncher{width}, 5)
	ctx.Pool = pool
	net, err := w.Build(ctx, batch, 5)
	if err != nil {
		t.Fatal(err)
	}
	net.EnableDAG(dag)
	if fuse {
		if sites := net.EnableFusion(true); sites == 0 {
			t.Fatalf("%s: no fusable sites detected", name)
		}
	}
	feed := w.NewFeeder(batch, 6)
	s := dnn.NewSolver(net, ctx, dnn.SolverConfig{BaseLR: 0.001, Momentum: 0.9, WeightDecay: 0.001})
	for i := 0; i < steps; i++ {
		if err := feed(net); err != nil {
			t.Fatal(err)
		}
		loss, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			t.Fatalf("%s step %d: loss = %v", name, i, loss)
		}
	}
	var out [][]float32
	for _, p := range net.Params() {
		out = append(out, append([]float32(nil), p.Data.Data()...))
	}
	return out
}

// TestConvergenceInvariance is the paper's headline property carried onto the
// host engine: at a fixed chain width, training with chain closures offloaded
// to the shared worker pool must yield trained parameters bitwise identical
// to serial inline execution — for every one of the four evaluated workloads.
func TestConvergenceInvariance(t *testing.T) {
	cases := []struct {
		name         string
		batch, width int
		steps        int
	}{
		{"CIFAR10", 4, 3, 2},
		{"Siamese", 4, 3, 2},
		{"CaffeNet", 2, 2, 1}, // ~6 GFLOP per image on the host: keep it small
		{"GoogLeNet", 4, 4, 2},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			serial := trainWorkload(t, c.name, c.batch, c.width, c.steps, nil)
			pooled := trainWorkload(t, c.name, c.batch, c.width, c.steps, hostpool.New(4))
			assertParamsBitwiseEqual(t, c.name, "pooled", serial, pooled)
		})
	}
}

func assertParamsBitwiseEqual(t *testing.T, workload, variant string, serial, other [][]float32) {
	t.Helper()
	if len(serial) != len(other) {
		t.Fatalf("param count mismatch: %d vs %d", len(serial), len(other))
	}
	for i := range serial {
		if len(serial[i]) != len(other[i]) {
			t.Fatalf("param %d length mismatch", i)
		}
		for j := range serial[i] {
			if math.Float32bits(serial[i][j]) != math.Float32bits(other[i][j]) {
				t.Fatalf("%s: param %d[%d] differs: serial %v %s %v",
					workload, i, j, serial[i][j], variant, other[i][j])
			}
		}
	}
}

// TestDAGConvergenceInvariance extends the invariance gate to the operator
// DAG scheduler: executing independent layers concurrently (with and
// without the host pool underneath) must leave the trained parameters of
// all four evaluated workloads bitwise identical to the serial schedule.
// CIFAR10 and CaffeNet are pure chains (the serial-fallback path);
// Siamese's twin branches run concurrently forward and serialize backward
// through their shared parameters; GoogLeNet's inception branches run
// concurrently in both directions.
func TestDAGConvergenceInvariance(t *testing.T) {
	cases := []struct {
		name         string
		batch, width int
		steps        int
	}{
		{"CIFAR10", 4, 3, 2},
		{"Siamese", 4, 3, 2},
		{"CaffeNet", 2, 2, 1},
		{"GoogLeNet", 4, 4, 2},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			serial := trainWorkload(t, c.name, c.batch, c.width, c.steps, nil)
			dag := trainWorkloadDAG(t, c.name, c.batch, c.width, c.steps, nil, true)
			assertParamsBitwiseEqual(t, c.name, "dag", serial, dag)
			pooled := trainWorkloadDAG(t, c.name, c.batch, c.width, c.steps, hostpool.New(4), true)
			assertParamsBitwiseEqual(t, c.name, "dag+pool", serial, pooled)
		})
	}
}

// TestFusionConvergenceInvariance extends the invariance gate to fused GEMM
// epilogues: with conv+bias+relu and ip+bias collapsed into the GEMM (alone,
// and stacked with the operator DAG scheduler and the host pool), the
// trained parameters of all four evaluated workloads must stay bitwise
// identical to the plain serial schedule. This runs at the host's detected
// ISA level, so on AVX2 machines it also exercises the 8×8 micro-kernel
// under full training.
func TestFusionConvergenceInvariance(t *testing.T) {
	cases := []struct {
		name         string
		batch, width int
		steps        int
	}{
		{"CIFAR10", 4, 3, 2},
		{"Siamese", 4, 3, 2},
		{"CaffeNet", 2, 2, 1},
		{"GoogLeNet", 4, 4, 2},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			serial := trainWorkload(t, c.name, c.batch, c.width, c.steps, nil)
			fused := trainWorkloadFused(t, c.name, c.batch, c.width, c.steps, nil, false, true)
			assertParamsBitwiseEqual(t, c.name, "fused", serial, fused)
			full := trainWorkloadFused(t, c.name, c.batch, c.width, c.steps, hostpool.New(4), true, true)
			assertParamsBitwiseEqual(t, c.name, "fused+dag+pool", serial, full)
		})
	}
}

// TestISAConvergenceInvariance pins the dispatch ladder under full training:
// the same CIFAR10 run forced to each runnable ISA level must produce
// bitwise identical trained parameters — SIMD width is a pure speed knob.
func TestISAConvergenceInvariance(t *testing.T) {
	avail := tensor.AvailableISAs()
	if len(avail) < 2 {
		t.Skip("single-level host: nothing to compare")
	}
	prev := tensor.ActiveISA()
	defer func() { _ = tensor.SetISA(prev) }()
	var ref [][]float32
	for _, lv := range avail {
		if err := tensor.SetISA(lv); err != nil {
			t.Fatal(err)
		}
		got := trainWorkloadFused(t, "CIFAR10", 4, 3, 2, nil, false, true)
		if ref == nil {
			ref = got
			continue
		}
		assertParamsBitwiseEqual(t, "CIFAR10", "isa="+lv.String(), ref, got)
	}
}
