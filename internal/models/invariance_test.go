package models

import (
	"math"
	"testing"

	"repro/internal/dnn"
	"repro/internal/hostpool"
	"repro/internal/simgpu"
)

// hostWidthLauncher is HostLauncher with a configurable chain width, so the
// layers allocate per-chain scratch and the context's pool path engages.
type hostWidthLauncher struct{ w int }

func (hostWidthLauncher) BeginLayer(string) {}

func (hostWidthLauncher) Launch(k *simgpu.Kernel, _ int) error {
	if k.Fn != nil {
		k.Fn()
	}
	return nil
}

func (hostWidthLauncher) Sync() error { return nil }

func (l hostWidthLauncher) Width() int { return l.w }

// trainWorkload trains a workload for `steps` solver iterations at the given
// launcher width, optionally offloading chain closures to a worker pool, and
// returns the final parameters.
func trainWorkload(t *testing.T, name string, batch, width, steps int, pool *hostpool.Pool) [][]float32 {
	t.Helper()
	w, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	ctx := dnn.NewContext(hostWidthLauncher{width}, 5)
	ctx.Pool = pool
	net, err := w.Build(ctx, batch, 5)
	if err != nil {
		t.Fatal(err)
	}
	feed := w.NewFeeder(batch, 6)
	s := dnn.NewSolver(net, ctx, dnn.SolverConfig{BaseLR: 0.001, Momentum: 0.9, WeightDecay: 0.001})
	for i := 0; i < steps; i++ {
		if err := feed(net); err != nil {
			t.Fatal(err)
		}
		loss, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			t.Fatalf("%s step %d: loss = %v", name, i, loss)
		}
	}
	var out [][]float32
	for _, p := range net.Params() {
		out = append(out, append([]float32(nil), p.Data.Data()...))
	}
	return out
}

// TestConvergenceInvariance is the paper's headline property carried onto the
// host engine: at a fixed chain width, training with chain closures offloaded
// to the shared worker pool must yield trained parameters bitwise identical
// to serial inline execution — for every one of the four evaluated workloads.
func TestConvergenceInvariance(t *testing.T) {
	cases := []struct {
		name         string
		batch, width int
		steps        int
	}{
		{"CIFAR10", 4, 3, 2},
		{"Siamese", 4, 3, 2},
		{"CaffeNet", 2, 2, 1}, // ~6 GFLOP per image on the host: keep it small
		{"GoogLeNet", 4, 4, 2},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			serial := trainWorkload(t, c.name, c.batch, c.width, c.steps, nil)
			pooled := trainWorkload(t, c.name, c.batch, c.width, c.steps, hostpool.New(4))
			if len(serial) != len(pooled) {
				t.Fatalf("param count mismatch: %d vs %d", len(serial), len(pooled))
			}
			for i := range serial {
				if len(serial[i]) != len(pooled[i]) {
					t.Fatalf("param %d length mismatch", i)
				}
				for j := range serial[i] {
					if math.Float32bits(serial[i][j]) != math.Float32bits(pooled[i][j]) {
						t.Fatalf("%s: param %d[%d] differs: serial %v pooled %v",
							c.name, i, j, serial[i][j], pooled[i][j])
					}
				}
			}
		})
	}
}
