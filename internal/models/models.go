// Package models builds the four networks the paper evaluates (Section 4.1,
// Tables 4 and 5): the CIFAR10 quick net, the Siamese MNIST net, CaffeNet
// (the AlexNet variant), and a GoogLeNet slice containing the six
// convolution units of Table 5. Layer geometry follows Table 5 exactly;
// LayerTable reproduces the table as data so tests can assert the match.
package models

import (
	"fmt"
	"math/rand"

	"repro/internal/data"
	"repro/internal/dnn"
)

// LayerRow is one row of the paper's Table 5.
type LayerRow struct {
	Net   string
	Layer string
	N     int // batch size
	Ci    int // input channels
	HW    int // input height = width
	Co    int // output channels
	F     int // filter height = width
	S     int // stride
	P     int // pad
}

// LayerTable is the paper's Table 5 ("Layers of DNNs used in this paper").
var LayerTable = []LayerRow{
	{Net: "CIFAR10", Layer: "conv1", N: 100, Ci: 3, HW: 32, Co: 32, F: 5, S: 1, P: 2},
	{Net: "CIFAR10", Layer: "conv2", N: 100, Ci: 32, HW: 16, Co: 32, F: 5, S: 1, P: 2},
	{Net: "CIFAR10", Layer: "conv3", N: 100, Ci: 32, HW: 8, Co: 64, F: 5, S: 1, P: 2},
	{Net: "Siamese", Layer: "conv1", N: 64, Ci: 1, HW: 28, Co: 20, F: 5, S: 1, P: 0},
	{Net: "Siamese", Layer: "conv2", N: 64, Ci: 20, HW: 12, Co: 50, F: 5, S: 1, P: 0},
	{Net: "Siamese", Layer: "conv1_p", N: 64, Ci: 1, HW: 28, Co: 20, F: 5, S: 1, P: 0},
	{Net: "Siamese", Layer: "conv2_p", N: 64, Ci: 20, HW: 12, Co: 50, F: 5, S: 1, P: 0},
	{Net: "CaffeNet", Layer: "conv1", N: 256, Ci: 3, HW: 227, Co: 96, F: 11, S: 4, P: 0},
	{Net: "CaffeNet", Layer: "conv2", N: 256, Ci: 96, HW: 27, Co: 256, F: 5, S: 1, P: 2},
	{Net: "CaffeNet", Layer: "conv3", N: 256, Ci: 256, HW: 13, Co: 384, F: 3, S: 1, P: 1},
	{Net: "CaffeNet", Layer: "conv4", N: 256, Ci: 384, HW: 13, Co: 384, F: 3, S: 1, P: 1},
	{Net: "CaffeNet", Layer: "conv5", N: 256, Ci: 384, HW: 13, Co: 256, F: 3, S: 1, P: 1},
	{Net: "GoogLeNet", Layer: "conv_1", N: 32, Ci: 160, HW: 7, Co: 320, F: 3, S: 1, P: 1},
	{Net: "GoogLeNet", Layer: "conv_2", N: 32, Ci: 832, HW: 7, Co: 32, F: 1, S: 1, P: 0},
	{Net: "GoogLeNet", Layer: "conv_3", N: 32, Ci: 832, HW: 7, Co: 384, F: 1, S: 1, P: 0},
	{Net: "GoogLeNet", Layer: "conv_4", N: 32, Ci: 192, HW: 7, Co: 384, F: 3, S: 1, P: 1},
	{Net: "GoogLeNet", Layer: "conv_5", N: 32, Ci: 832, HW: 7, Co: 192, F: 1, S: 1, P: 0},
	{Net: "GoogLeNet", Layer: "conv_6", N: 32, Ci: 832, HW: 7, Co: 48, F: 1, S: 1, P: 0},
}

// Rows returns the Table 5 rows belonging to one net.
func Rows(net string) []LayerRow {
	var out []LayerRow
	for _, r := range LayerTable {
		if r.Net == net {
			out = append(out, r)
		}
	}
	return out
}

// Names lists the four workload names in paper order.
var Names = []string{"CIFAR10", "Siamese", "CaffeNet", "GoogLeNet"}

// Feeder fills a net's input blobs with the next mini-batch.
type Feeder func(net *dnn.Net) error

// Workload couples a network builder with its dataset feeder and paper
// defaults.
type Workload struct {
	Name         string
	DefaultBatch int
	Dataset      string // Table 4 name, "" for synthetic activations
	Build        func(ctx *dnn.Context, batch int, seed int64) (*dnn.Net, error)
	NewFeeder    func(batch int, seed int64) Feeder
}

// Workloads maps names to workload definitions.
var Workloads = map[string]*Workload{
	"CIFAR10": {
		Name: "CIFAR10", DefaultBatch: 100, Dataset: "CIFAR-10",
		Build: BuildCIFAR10, NewFeeder: cifarFeeder,
	},
	"Siamese": {
		Name: "Siamese", DefaultBatch: 64, Dataset: "MNIST",
		Build: BuildSiamese, NewFeeder: siameseFeeder,
	},
	"CaffeNet": {
		Name: "CaffeNet", DefaultBatch: 256, Dataset: "ImageNet",
		Build: BuildCaffeNet, NewFeeder: caffenetFeeder,
	},
	"GoogLeNet": {
		Name: "GoogLeNet", DefaultBatch: 32, Dataset: "",
		Build: BuildGoogLeNetSlice, NewFeeder: googlenetFeeder,
	},
}

// Get returns the named workload or an error.
func Get(name string) (*Workload, error) {
	w, ok := Workloads[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown workload %q (have %v)", name, Names)
	}
	return w, nil
}

// BuildCIFAR10 is Caffe's cifar10_quick: three 5×5 conv/pool stages, two
// inner products, softmax loss. batch ≤ 0 selects the paper's 100.
func BuildCIFAR10(ctx *dnn.Context, batch int, seed int64) (*dnn.Net, error) {
	if batch <= 0 {
		batch = 100
	}
	c1 := dnn.Conv(32, 5, 1, 2)
	c2 := dnn.Conv(32, 5, 1, 2)
	c3 := dnn.Conv(64, 5, 1, 2)
	c1.Seed, c2.Seed, c3.Seed = seed, seed, seed
	ip1 := dnn.IP(64)
	ip2 := dnn.IP(10)
	ip1.Seed, ip2.Seed = seed, seed
	return dnn.NewNet("CIFAR10").
		Input("data", batch, 3, 32, 32).
		Input("label", batch).
		Add(dnn.NewConv("conv1", c1), []string{"data"}, []string{"c1"}).
		Add(dnn.NewPool("pool1", dnn.Pool(dnn.MaxPool, 3, 2)), []string{"c1"}, []string{"p1"}).
		Add(dnn.NewReLU("relu1"), []string{"p1"}, []string{"r1"}).
		Add(dnn.NewConv("conv2", c2), []string{"r1"}, []string{"c2"}).
		Add(dnn.NewReLU("relu2"), []string{"c2"}, []string{"r2"}).
		Add(dnn.NewPool("pool2", dnn.Pool(dnn.AvePool, 3, 2)), []string{"r2"}, []string{"p2"}).
		Add(dnn.NewConv("conv3", c3), []string{"p2"}, []string{"c3"}).
		Add(dnn.NewReLU("relu3"), []string{"c3"}, []string{"r3"}).
		Add(dnn.NewPool("pool3", dnn.Pool(dnn.AvePool, 3, 2)), []string{"r3"}, []string{"p3"}).
		Add(dnn.NewIP("ip1", ip1), []string{"p3"}, []string{"f1"}).
		Add(dnn.NewIP("ip2", ip2), []string{"f1"}, []string{"scores"}).
		Add(dnn.NewSoftmaxLoss("loss"), []string{"scores", "label"}, []string{"loss"}).
		Build(ctx)
}

// BuildSiamese is Caffe's mnist_siamese: twin LeNet feature towers with
// shared parameters and a contrastive loss on 2-D embeddings. batch ≤ 0
// selects the paper's 64 (pairs).
func BuildSiamese(ctx *dnn.Context, batch int, seed int64) (*dnn.Net, error) {
	if batch <= 0 {
		batch = 64
	}
	mk := func(suffix string) (dnn.ConvConfig, dnn.ConvConfig, dnn.IPConfig, dnn.IPConfig, dnn.IPConfig) {
		c1 := dnn.Conv(20, 5, 1, 0)
		c2 := dnn.Conv(50, 5, 1, 0)
		c1.Seed, c2.Seed = seed, seed
		i1 := dnn.IP(500)
		i2 := dnn.IP(10)
		i3 := dnn.IP(2)
		i1.Seed, i2.Seed, i3.Seed = seed, seed, seed
		_ = suffix
		return c1, c2, i1, i2, i3
	}
	c1a, c2a, i1a, i2a, i3a := mk("")
	c1b, c2b, i1b, i2b, i3b := mk("_p")

	b := dnn.NewNet("Siamese").
		Input("data", batch, 1, 28, 28).
		Input("data_p", batch, 1, 28, 28).
		Input("sim", batch)

	tower := func(c1cfg, c2cfg dnn.ConvConfig, i1cfg, i2cfg, i3cfg dnn.IPConfig, in, suffix string) string {
		b.Add(dnn.NewConv("conv1"+suffix, c1cfg), []string{in}, []string{"c1" + suffix}).
			Add(dnn.NewPool("pool1"+suffix, dnn.Pool(dnn.MaxPool, 2, 2)), []string{"c1" + suffix}, []string{"p1" + suffix}).
			Add(dnn.NewConv("conv2"+suffix, c2cfg), []string{"p1" + suffix}, []string{"c2" + suffix}).
			Add(dnn.NewPool("pool2"+suffix, dnn.Pool(dnn.MaxPool, 2, 2)), []string{"c2" + suffix}, []string{"p2" + suffix}).
			Add(dnn.NewIP("ip1"+suffix, i1cfg), []string{"p2" + suffix}, []string{"f1" + suffix}).
			Add(dnn.NewReLU("relu1"+suffix), []string{"f1" + suffix}, []string{"r1" + suffix}).
			Add(dnn.NewIP("ip2"+suffix, i2cfg), []string{"r1" + suffix}, []string{"f2" + suffix}).
			Add(dnn.NewIP("feat"+suffix, i3cfg), []string{"f2" + suffix}, []string{"feat" + suffix})
		return "feat" + suffix
	}
	fa := tower(c1a, c2a, i1a, i2a, i3a, "data", "")
	fb := tower(c1b, c2b, i1b, i2b, i3b, "data_p", "_p")
	b.Add(dnn.NewContrastiveLoss("loss", 1), []string{fa, fb, "sim"}, []string{"loss"})

	net, err := b.Build(ctx)
	if err != nil {
		return nil, err
	}
	// Caffe shares the twins' parameters by name.
	for _, pair := range [][2]string{
		{"conv1", "conv1_p"}, {"conv2", "conv2_p"},
		{"ip1", "ip1_p"}, {"ip2", "ip2_p"}, {"feat", "feat_p"},
	} {
		if err := net.ShareParams(pair[0], pair[1]); err != nil {
			return nil, err
		}
	}
	return net, nil
}

// BuildCaffeNet is the AlexNet variant of Fig. 1: five convolutions with
// LRN and max pooling, then fc6/fc7/fc8 with dropout. Groups are ignored
// (Table 5 lists full input depths, so the paper's kernel workload does
// too). batch ≤ 0 selects the paper's 256.
func BuildCaffeNet(ctx *dnn.Context, batch int, seed int64) (*dnn.Net, error) {
	if batch <= 0 {
		batch = 256
	}
	mkConv := func(co, k, s, p int) dnn.ConvConfig {
		c := dnn.Conv(co, k, s, p)
		c.Seed = seed
		return c
	}
	mkIP := func(n int) dnn.IPConfig {
		c := dnn.IP(n)
		c.Seed = seed
		return c
	}
	return dnn.NewNet("CaffeNet").
		Input("data", batch, 3, 227, 227).
		Input("label", batch).
		Add(dnn.NewConv("conv1", mkConv(96, 11, 4, 0)), []string{"data"}, []string{"c1"}).
		Add(dnn.NewReLU("relu1"), []string{"c1"}, []string{"r1"}).
		Add(dnn.NewPool("pool1", dnn.Pool(dnn.MaxPool, 3, 2)), []string{"r1"}, []string{"p1"}).
		Add(dnn.NewLRN("norm1", dnn.DefaultLRN()), []string{"p1"}, []string{"n1"}).
		Add(dnn.NewConv("conv2", mkConv(256, 5, 1, 2)), []string{"n1"}, []string{"c2"}).
		Add(dnn.NewReLU("relu2"), []string{"c2"}, []string{"r2"}).
		Add(dnn.NewPool("pool2", dnn.Pool(dnn.MaxPool, 3, 2)), []string{"r2"}, []string{"p2"}).
		Add(dnn.NewLRN("norm2", dnn.DefaultLRN()), []string{"p2"}, []string{"n2"}).
		Add(dnn.NewConv("conv3", mkConv(384, 3, 1, 1)), []string{"n2"}, []string{"c3"}).
		Add(dnn.NewReLU("relu3"), []string{"c3"}, []string{"r3"}).
		Add(dnn.NewConv("conv4", mkConv(384, 3, 1, 1)), []string{"r3"}, []string{"c4"}).
		Add(dnn.NewReLU("relu4"), []string{"c4"}, []string{"r4"}).
		Add(dnn.NewConv("conv5", mkConv(256, 3, 1, 1)), []string{"r4"}, []string{"c5"}).
		Add(dnn.NewReLU("relu5"), []string{"c5"}, []string{"r5"}).
		Add(dnn.NewPool("pool5", dnn.Pool(dnn.MaxPool, 3, 2)), []string{"r5"}, []string{"p5"}).
		Add(dnn.NewIP("fc6", mkIP(4096)), []string{"p5"}, []string{"f6"}).
		Add(dnn.NewReLU("relu6"), []string{"f6"}, []string{"r6"}).
		Add(dnn.NewDropout("drop6", 0.5), []string{"r6"}, []string{"d6"}).
		Add(dnn.NewIP("fc7", mkIP(4096)), []string{"d6"}, []string{"f7"}).
		Add(dnn.NewReLU("relu7"), []string{"f7"}, []string{"r7"}).
		Add(dnn.NewDropout("drop7", 0.5), []string{"r7"}, []string{"d7"}).
		Add(dnn.NewIP("fc8", mkIP(1000)), []string{"d7"}, []string{"scores"}).
		Add(dnn.NewSoftmaxLoss("loss"), []string{"scores", "label"}, []string{"loss"}).
		Build(ctx)
}

// BuildGoogLeNetSlice reproduces the part of GoogLeNet the paper measures:
// the six convolution units of Table 5, which belong to the inception_5a/5b
// modules (832-channel 7×7 inputs). The slice wires them as inception-style
// branches from a shared 832×7×7 activation: conv_2/conv_3/conv_5/conv_6
// read the input directly, conv_4 follows the conv_5 reduction, and conv_1
// follows an 832→160 1×1 reduction (the 5a 3×3-reduce, added so conv_1 sees
// its Table 5 input depth). Branch outputs concat into a classifier head.
// batch ≤ 0 selects the paper's 32.
func BuildGoogLeNetSlice(ctx *dnn.Context, batch int, seed int64) (*dnn.Net, error) {
	if batch <= 0 {
		batch = 32
	}
	mk := func(co, k, p int) dnn.ConvConfig {
		c := dnn.Conv(co, k, 1, p)
		c.Seed = seed
		return c
	}
	ipc := dnn.IP(1000)
	ipc.Seed = seed
	return dnn.NewNet("GoogLeNet").
		Input("data", batch, 832, 7, 7).
		Input("label", batch).
		// 5a 3×3 path: 832 → 160 (reduce) → 320.
		Add(dnn.NewConv("conv_r", mk(160, 1, 0)), []string{"data"}, []string{"xr"}).
		Add(dnn.NewReLU("relu_r"), []string{"xr"}, []string{"ar"}).
		Add(dnn.NewConv("conv_1", mk(320, 3, 1)), []string{"ar"}, []string{"x1"}).
		Add(dnn.NewReLU("relu_1"), []string{"x1"}, []string{"a1"}).
		// 5a 5×5 reduce: 832 → 32.
		Add(dnn.NewConv("conv_2", mk(32, 1, 0)), []string{"data"}, []string{"x2"}).
		Add(dnn.NewReLU("relu_2"), []string{"x2"}, []string{"a2"}).
		// 5b 1×1: 832 → 384.
		Add(dnn.NewConv("conv_3", mk(384, 1, 0)), []string{"data"}, []string{"x3"}).
		Add(dnn.NewReLU("relu_3"), []string{"x3"}, []string{"a3"}).
		// 5b 3×3 path: 832 → 192 (reduce) → 384.
		Add(dnn.NewConv("conv_5", mk(192, 1, 0)), []string{"data"}, []string{"x5"}).
		Add(dnn.NewReLU("relu_5"), []string{"x5"}, []string{"a5"}).
		Add(dnn.NewConv("conv_4", mk(384, 3, 1)), []string{"a5"}, []string{"x4"}).
		Add(dnn.NewReLU("relu_4"), []string{"x4"}, []string{"a4"}).
		// 5b 5×5 reduce: 832 → 48.
		Add(dnn.NewConv("conv_6", mk(48, 1, 0)), []string{"data"}, []string{"x6"}).
		Add(dnn.NewReLU("relu_6"), []string{"x6"}, []string{"a6"}).
		Add(dnn.NewConcat("concat"), []string{"a1", "a2", "a3", "a4", "a5", "a6"}, []string{"cat"}).
		Add(dnn.NewPool("gap", dnn.Pool(dnn.AvePool, 7, 7)), []string{"cat"}, []string{"pooled"}).
		Add(dnn.NewIP("classifier", ipc), []string{"pooled"}, []string{"scores"}).
		Add(dnn.NewSoftmaxLoss("loss"), []string{"scores", "label"}, []string{"loss"}).
		Build(ctx)
}

func cifarFeeder(batch int, seed int64) Feeder {
	if batch <= 0 {
		batch = 100
	}
	spec, _ := data.SpecByName("CIFAR-10")
	ds := data.Synthetic(spec, seed)
	it := data.NewIterator(ds, data.TrainSplit, batch, seed+1)
	buf := make([]float32, batch*ds.SampleSize())
	labels := make([]float32, batch)
	return func(net *dnn.Net) error {
		it.Next(buf, labels)
		if err := net.SetInputData("data", buf); err != nil {
			return err
		}
		return net.SetInputData("label", labels)
	}
}

func siameseFeeder(batch int, seed int64) Feeder {
	if batch <= 0 {
		batch = 64
	}
	spec, _ := data.SpecByName("MNIST")
	ds := data.Synthetic(spec, seed)
	it := data.NewPairIterator(ds, data.TrainSplit, batch, seed+1)
	left := make([]float32, batch*ds.SampleSize())
	right := make([]float32, batch*ds.SampleSize())
	sim := make([]float32, batch)
	return func(net *dnn.Net) error {
		it.Next(left, right, sim)
		if err := net.SetInputData("data", left); err != nil {
			return err
		}
		if err := net.SetInputData("data_p", right); err != nil {
			return err
		}
		return net.SetInputData("sim", sim)
	}
}

func caffenetFeeder(batch int, seed int64) Feeder {
	if batch <= 0 {
		batch = 256
	}
	spec, _ := data.SpecByName("ImageNet")
	ds := data.Synthetic(spec, seed)
	it := data.NewCroppedIterator(ds, data.TrainSplit, batch, 227, 227, seed+1)
	buf := make([]float32, batch*3*227*227)
	labels := make([]float32, batch)
	return func(net *dnn.Net) error {
		it.Next(buf, labels)
		if err := net.SetInputData("data", buf); err != nil {
			return err
		}
		return net.SetInputData("label", labels)
	}
}

func googlenetFeeder(batch int, seed int64) Feeder {
	if batch <= 0 {
		batch = 32
	}
	rng := rand.New(rand.NewSource(seed))
	buf := make([]float32, batch*832*7*7)
	labels := make([]float32, batch)
	return func(net *dnn.Net) error {
		// The slice's input is an inception activation, not a dataset
		// image: positive-skewed noise approximates post-ReLU statistics.
		for i := range buf {
			v := float32(rng.NormFloat64())
			if v < 0 {
				v = 0
			}
			buf[i] = v
		}
		for i := range labels {
			labels[i] = float32(rng.Intn(1000))
		}
		if err := net.SetInputData("data", buf); err != nil {
			return err
		}
		return net.SetInputData("label", labels)
	}
}
