package models

import (
	"math"
	"testing"

	"repro/internal/dnn"
)

// convGeometry pulls (Ci, HW, Co, F, S, P) out of a built net's conv layer.
func convGeometry(t *testing.T, net *dnn.Net, layer string) (ci, hw, co, f, s, p int) {
	t.Helper()
	l := net.LayerByName(layer)
	if l == nil {
		t.Fatalf("net %s has no layer %q", net.Name(), layer)
	}
	conv, ok := l.(*dnn.ConvLayer)
	if !ok {
		t.Fatalf("layer %q is %T, want conv", layer, l)
	}
	g := conv.Geometry()
	w := conv.Params()[0]
	return g.Channels, g.Height, w.Shape()[0], g.KernelH, g.StrideH, g.PadH
}

// TestTable5Geometry builds each net and asserts every conv row of the
// paper's Table 5 (input depth, spatial size, filters, kernel, stride, pad).
func TestTable5Geometry(t *testing.T) {
	ctx := dnn.NewContext(dnn.HostLauncher{}, 1)
	ctx.Compute = false
	nets := map[string]*dnn.Net{}
	for _, name := range Names {
		w, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		batch := 4 // geometry is batch-independent; keep memory small
		net, err := w.Build(ctx, batch, 1)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		nets[name] = net
	}
	for _, row := range LayerTable {
		ci, hw, co, f, s, p := convGeometry(t, nets[row.Net], row.Layer)
		if ci != row.Ci || hw != row.HW || co != row.Co || f != row.F || s != row.S || p != row.P {
			t.Errorf("%s/%s: got Ci=%d HW=%d Co=%d F=%d S=%d P=%d, want %+v",
				row.Net, row.Layer, ci, hw, co, f, s, p, row)
		}
	}
}

func TestDefaultBatchesMatchTable5(t *testing.T) {
	for _, row := range LayerTable {
		w, err := Get(row.Net)
		if err != nil {
			t.Fatal(err)
		}
		if w.DefaultBatch != row.N {
			t.Errorf("%s default batch %d, want %d", row.Net, w.DefaultBatch, row.N)
		}
	}
}

func TestRowsFilter(t *testing.T) {
	if got := len(Rows("CaffeNet")); got != 5 {
		t.Fatalf("CaffeNet rows = %d, want 5", got)
	}
	if got := len(Rows("GoogLeNet")); got != 6 {
		t.Fatalf("GoogLeNet rows = %d, want 6", got)
	}
	if Rows("nope") != nil {
		t.Fatal("unknown net returned rows")
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown workload resolved")
	}
}

// TestWorkloadsTrainEndToEnd feeds and steps each workload once with real
// math at a small batch, checking the loss is finite and gradients flow.
func TestWorkloadsTrainEndToEnd(t *testing.T) {
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			w, _ := Get(name)
			batch := 2
			if name == "CaffeNet" {
				batch = 1 // its conv stack is ~6 GFLOP per image on the host
			}
			ctx := dnn.NewContext(dnn.HostLauncher{}, 5)
			net, err := w.Build(ctx, batch, 5)
			if err != nil {
				t.Fatal(err)
			}
			feed := w.NewFeeder(batch, 6)
			if err := feed(net); err != nil {
				t.Fatal(err)
			}
			loss, err := net.ForwardBackward(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if math.IsNaN(loss) || math.IsInf(loss, 0) {
				t.Fatalf("loss = %v", loss)
			}
			grad := 0.0
			for _, p := range net.Params() {
				grad += p.Diff.AbsSum()
			}
			if grad == 0 {
				t.Fatal("no gradient reached any parameter")
			}
		})
	}
}

// TestSiameseSharingReducesParams: the twins must share, so the parameter
// count equals one tower's.
func TestSiameseSharingReducesParams(t *testing.T) {
	ctx := dnn.NewContext(dnn.HostLauncher{}, 1)
	net, err := BuildSiamese(ctx, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// One tower: conv1(w,b) conv2(w,b) ip1(w,b) ip2(w,b) feat(w,b) = 10.
	if got := len(net.Params()); got != 10 {
		t.Fatalf("siamese params = %d, want 10 (shared towers)", got)
	}
}

// TestCIFAR10LearnsSyntheticData is the miniature of the paper's Fig. 11
// setup: real training on synthetic CIFAR-10 must reduce the loss.
func TestCIFAR10LearnsSyntheticData(t *testing.T) {
	ctx := dnn.NewContext(dnn.HostLauncher{}, 3)
	net, err := BuildCIFAR10(ctx, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	feed := cifarFeeder(8, 4)
	s := dnn.NewSolver(net, ctx, dnn.SolverConfig{BaseLR: 0.01, Momentum: 0.9, WeightDecay: 0.004})
	var first, last float64
	for i := 0; i < 20; i++ {
		if err := feed(net); err != nil {
			t.Fatal(err)
		}
		loss, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = loss
		}
		last = loss
	}
	if !(last < first*0.9) {
		t.Fatalf("CIFAR10 did not learn: first %.4f, last %.4f", first, last)
	}
}

func TestGoogLeNetConcatWidth(t *testing.T) {
	ctx := dnn.NewContext(dnn.HostLauncher{}, 1)
	ctx.Compute = false
	net, err := BuildGoogLeNetSlice(ctx, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cat := net.Blob("cat")
	// 320 + 32 + 384 + 384 + 192 + 48 = 1360 channels.
	if cat.Channels() != 1360 {
		t.Fatalf("concat channels = %d, want 1360", cat.Channels())
	}
	if cat.Height() != 7 || cat.Width() != 7 {
		t.Fatalf("concat spatial = %dx%d", cat.Height(), cat.Width())
	}
}
