package models

import (
	"fmt"
	"math/rand"

	"repro/internal/data"
	"repro/internal/dnn"
	"repro/internal/hostpool"
)

// PipeConfig tunes an asynchronous input pipeline.
type PipeConfig struct {
	// Pool bounds fill concurrency; nil selects the shared default pool.
	Pool *hostpool.Pool
	// Observer, when non-nil, receives hit/stall events — wire a runtime's
	// *core.Ledger here so pipeline behavior lands in the overhead ledger.
	Observer data.Observer
	// Depth is the pipeline's buffer count; < 2 selects the ping-pong
	// default of 2.
	Depth int
}

// InputPipe is a workload feeder running as an asynchronous pipeline:
// batch t+1 is synthesized on hostpool workers while batch t computes,
// and Feed delivers bit-for-bit the stream the synchronous NewFeeder
// would (the prefetch numeric contract, DESIGN §7.3). An InputPipe is
// single-consumer: Feed, Rollback and Close belong to the training loop's
// goroutine.
type InputPipe struct {
	pf   *data.Prefetcher
	feed func(net *dnn.Net, b *data.Batch) error
}

// Feed copies the next prefetched batch into net's input blobs, waiting
// for synthesis only when the pipeline has fallen behind.
func (p *InputPipe) Feed(net *dnn.Net) error {
	b := p.pf.Next()
	if b == nil {
		return fmt.Errorf("models: input pipe for %s is closed", net.Name())
	}
	err := p.feed(net, b)
	p.pf.Recycle(b)
	return err
}

// Feeder adapts the pipe to the synchronous Feeder type.
func (p *InputPipe) Feeder() Feeder { return p.Feed }

// Rollback discards batches synthesized ahead and re-queues their draw
// plans, so the post-rollback stream continues exactly where Feed last
// delivered — the hook parallel.Config.Prefetch invokes on
// checkpoint restore.
func (p *InputPipe) Rollback() { p.pf.Rollback() }

// Close stops the pipeline and its workers.
func (p *InputPipe) Close() { p.pf.Close() }

// Stats reports the pipeline's delivery counters.
func (p *InputPipe) Stats() data.PipelineStats { return p.pf.Stats() }

// NewInputPipe builds the asynchronous input pipeline for one of the four
// workloads. For equal (batch, seed) it delivers bit-for-bit the batch
// stream of NewFeeder — same dataset seeds, same iterator RNG stream —
// so training with the pipe is convergence-invariant with training with
// the inline feeder. batch ≤ 0 selects the paper default.
func NewInputPipe(name string, batch int, seed int64, cfg PipeConfig) (*InputPipe, error) {
	opts := data.Options{Pool: cfg.Pool, Observer: cfg.Observer, Depth: cfg.Depth}
	dataLabelFeed := func(net *dnn.Net, b *data.Batch) error {
		if err := net.SetInputData("data", b.Planes[0]); err != nil {
			return err
		}
		return net.SetInputData("label", b.Labels)
	}
	switch name {
	case "CIFAR10":
		if batch <= 0 {
			batch = 100
		}
		spec, _ := data.SpecByName("CIFAR-10")
		ds := data.Synthetic(spec, seed)
		it := data.NewIterator(ds, data.TrainSplit, batch, seed+1)
		return &InputPipe{pf: data.NewPrefetcher(it, opts), feed: dataLabelFeed}, nil

	case "Siamese":
		if batch <= 0 {
			batch = 64
		}
		spec, _ := data.SpecByName("MNIST")
		ds := data.Synthetic(spec, seed)
		it := data.NewPairIterator(ds, data.TrainSplit, batch, seed+1)
		return &InputPipe{
			pf: data.NewPairPrefetcher(it, opts),
			feed: func(net *dnn.Net, b *data.Batch) error {
				if err := net.SetInputData("data", b.Planes[0]); err != nil {
					return err
				}
				if err := net.SetInputData("data_p", b.Planes[1]); err != nil {
					return err
				}
				return net.SetInputData("sim", b.Labels)
			},
		}, nil

	case "CaffeNet":
		if batch <= 0 {
			batch = 256
		}
		spec, _ := data.SpecByName("ImageNet")
		ds := data.Synthetic(spec, seed)
		it := data.NewCroppedIterator(ds, data.TrainSplit, batch, 227, 227, seed+1)
		return &InputPipe{pf: data.NewPrefetcher(it, opts), feed: dataLabelFeed}, nil

	case "GoogLeNet":
		if batch <= 0 {
			batch = 32
		}
		// The slice's input is an inception activation drawn from one shared
		// RNG with no per-sample decomposition, so it runs as a serial
		// source: generation still overlaps compute, draws stay in exact
		// feeder order.
		rng := rand.New(rand.NewSource(seed))
		gen := func(planes [][]float32, labels []float32) {
			buf := planes[0]
			for i := range buf {
				v := float32(rng.NormFloat64())
				if v < 0 {
					v = 0
				}
				buf[i] = v
			}
			for i := range labels {
				labels[i] = float32(rng.Intn(1000))
			}
		}
		return &InputPipe{
			pf:   data.NewSerialPrefetcher([]int{batch * 832 * 7 * 7}, batch, gen, opts),
			feed: dataLabelFeed,
		}, nil
	}
	return nil, fmt.Errorf("models: unknown workload %q (have %v)", name, Names)
}
