package models

import (
	"math"
	"testing"

	"repro/internal/dnn"
	"repro/internal/hostpool"
)

// TestInputPipeMatchesFeeder: for every workload, the asynchronous pipe
// lands bit-for-bit the same bytes in the same input blobs as the
// synchronous feeder at equal (batch, seed) — batch after batch.
func TestInputPipeMatchesFeeder(t *testing.T) {
	cases := []struct {
		name  string
		batch int
		blobs []string
	}{
		{"CIFAR10", 4, []string{"data", "label"}},
		{"Siamese", 4, []string{"data", "data_p", "sim"}},
		{"CaffeNet", 2, []string{"data", "label"}},
		{"GoogLeNet", 3, []string{"data", "label"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			w, err := Get(c.name)
			if err != nil {
				t.Fatal(err)
			}
			netA, err := w.Build(dnn.NewContext(dnn.HostLauncher{}, 5), c.batch, 5)
			if err != nil {
				t.Fatal(err)
			}
			netB, err := w.Build(dnn.NewContext(dnn.HostLauncher{}, 5), c.batch, 5)
			if err != nil {
				t.Fatal(err)
			}
			feed := w.NewFeeder(c.batch, 9)
			pipe, err := NewInputPipe(c.name, c.batch, 9, PipeConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer pipe.Close()
			for b := 0; b < 6; b++ {
				if err := feed(netA); err != nil {
					t.Fatal(err)
				}
				if err := pipe.Feed(netB); err != nil {
					t.Fatal(err)
				}
				for _, blob := range c.blobs {
					a := netA.Blob(blob).Data.Data()
					bd := netB.Blob(blob).Data.Data()
					for i := range a {
						if math.Float32bits(a[i]) != math.Float32bits(bd[i]) {
							t.Fatalf("batch %d blob %q[%d]: feeder %v pipe %v", b, blob, i, a[i], bd[i])
						}
					}
				}
			}
			st := pipe.Stats()
			if st.Hits+st.Stalls != 6 {
				t.Fatalf("hits %d + stalls %d != 6 feeds", st.Hits, st.Stalls)
			}
		})
	}
}

// trainWorkloadPipe is trainWorkload with the asynchronous input pipeline
// replacing the inline feeder (same feeder seed 6).
func trainWorkloadPipe(t *testing.T, name string, batch, width, steps int, pool *hostpool.Pool) [][]float32 {
	t.Helper()
	w, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	ctx := dnn.NewContext(hostWidthLauncher{width}, 5)
	ctx.Pool = pool
	net, err := w.Build(ctx, batch, 5)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewInputPipe(name, batch, 6, PipeConfig{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	s := dnn.NewSolver(net, ctx, dnn.SolverConfig{BaseLR: 0.001, Momentum: 0.9, WeightDecay: 0.001})
	for i := 0; i < steps; i++ {
		if _, err := s.StepFed(pipe.Feed); err != nil {
			t.Fatal(err)
		}
	}
	var out [][]float32
	for _, p := range net.Params() {
		out = append(out, append([]float32(nil), p.Data.Data()...))
	}
	return out
}

// TestPrefetchConvergenceInvariance: training every workload through the
// asynchronous pipeline yields parameters bitwise identical to the inline
// feeder — the tentpole's numeric contract at the standalone-net level.
func TestPrefetchConvergenceInvariance(t *testing.T) {
	cases := []struct {
		name         string
		batch, width int
		steps        int
	}{
		{"CIFAR10", 4, 3, 2},
		{"Siamese", 4, 3, 2},
		{"CaffeNet", 2, 2, 1},
		{"GoogLeNet", 4, 4, 2},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			serial := trainWorkload(t, c.name, c.batch, c.width, c.steps, nil)
			piped := trainWorkloadPipe(t, c.name, c.batch, c.width, c.steps, nil)
			assertParamsBitwiseEqual(t, c.name, "prefetched", serial, piped)
			pooled := trainWorkloadPipe(t, c.name, c.batch, c.width, c.steps, hostpool.New(4))
			assertParamsBitwiseEqual(t, c.name, "prefetched+pool", serial, pooled)
		})
	}
}

// TestInputPipeRollbackMidStream: rolling the pipe back between feeds (the
// trainer's Restore hook) leaves the delivered stream identical to the
// feeder's — prefetched-ahead batches are discarded and replayed, not
// leaked out of order.
func TestInputPipeRollbackMidStream(t *testing.T) {
	w, err := Get("CIFAR10")
	if err != nil {
		t.Fatal(err)
	}
	netA, _ := w.Build(dnn.NewContext(dnn.HostLauncher{}, 5), 4, 5)
	netB, _ := w.Build(dnn.NewContext(dnn.HostLauncher{}, 5), 4, 5)
	feed := w.NewFeeder(4, 9)
	pipe, err := NewInputPipe("CIFAR10", 4, 9, PipeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	for b := 0; b < 10; b++ {
		if b == 3 || b == 7 {
			pipe.Rollback()
		}
		if err := feed(netA); err != nil {
			t.Fatal(err)
		}
		if err := pipe.Feed(netB); err != nil {
			t.Fatal(err)
		}
		a := netA.Blob("data").Data.Data()
		bd := netB.Blob("data").Data.Data()
		for i := range a {
			if math.Float32bits(a[i]) != math.Float32bits(bd[i]) {
				t.Fatalf("batch %d: stream diverged after rollback", b)
			}
		}
	}
}

// TestNewInputPipeUnknownWorkload: the error names the workload and the
// valid set.
func TestNewInputPipeUnknownWorkload(t *testing.T) {
	if _, err := NewInputPipe("AlexNet", 4, 1, PipeConfig{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if p, err := NewInputPipe("CIFAR10", 4, 1, PipeConfig{}); err != nil {
		t.Fatal(err)
	} else {
		if p.Feeder() == nil {
			t.Fatal("Feeder adapter is nil")
		}
		p.Close()
	}
}
