package parallel

import (
	"sort"
	"time"

	"repro/internal/core"
)

// Adaptive concurrency control, trainer side. The per-device drift
// detectors (core.DriftDetector) watch kernel timings continuously; the
// trainer drives the control loop at step boundaries, where width changes
// are safe:
//
//	step N   completes → driftTick folds observations; drifted keys are
//	         collected (union across replicas, so replicas stay in width
//	         lockstep) into pendingDrift.
//	step N+1 entry     → adaptiveBoundary checkpoints the trainer, then
//	         ScheduleReprofile evicts the drifted keys on every live
//	         replica. Step N+1 is the shadow window: the evicted layers run
//	         serially at width 1 through the first-sighting profiling path.
//	step N+2 entry     → adaptiveBoundary checkpoints again and finalizes
//	         the re-solved plans (FinalizePlans), swapping the new widths in
//	         atomically before the step runs.
//
// Every width transition therefore happens exactly at a checkpointed step
// boundary, and the full schedule is recorded in swapLog — a non-adaptive
// run that replays the same widths at the same iterations via InstallPlan
// trains bitwise-identical parameters (TestAdaptivePlanSwapInvariance).

// PlanSwapEvent records one width transition applied at a step boundary:
// either a drifted layer entering its shadow re-profile (Shadow=true, the
// layer drops to width 1) or a re-solved plan swapping in (Shadow=false).
// Iter is the iteration the transition takes effect before.
type PlanSwapEvent struct {
	Iter       int
	Key        string
	Streams    int
	Serial     bool
	Fallback   bool
	SolvedFrom time.Duration
	Shadow     bool
}

// SwapEvents returns the width-transition schedule the adaptive controller
// applied so far, in application order. Replaying it (InstallPlan with
// Serial=true before the matching iteration) on a non-adaptive trainer
// reproduces the adaptive run's trained bits.
func (t *Trainer) SwapEvents() []PlanSwapEvent {
	out := make([]PlanSwapEvent, len(t.swapLog))
	copy(out, t.swapLog)
	return out
}

// AdaptiveStats reports the controller's activity counters.
func (t *Trainer) AdaptiveStats() (drifted, reprofiled, swapped int) {
	return t.driftCount, t.reprofileCount, t.swapCount
}

// driftTick runs after a successful step: fold each live replica's pending
// observations and take the union of drifted keys across replicas. The
// union keeps replicas in width lockstep — a layer that drifted on one
// device is re-profiled on all of them, because widths must match for the
// all-reduce fold order to stay consistent.
func (t *Trainer) driftTick() {
	seen := map[string]bool{}
	for _, r := range t.replicas {
		if r.lost {
			continue
		}
		for _, key := range t.fw.Runtime(r.dev).StepBoundary() {
			seen[key] = true
		}
	}
	if len(seen) == 0 {
		return
	}
	keys := make([]string, 0, len(seen))
	for key := range seen {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	t.pendingDrift = append(t.pendingDrift, keys...)
	t.driftCount += len(keys)
}

// adaptiveBoundary runs at Step entry, before inputs are fed. When a swap
// or an eviction is due it checkpoints the trainer first (so a failed step
// retries from a state that already includes the width transition) and
// returns the checkpoint for Step's retry loop; otherwise it returns nil
// and Step proceeds on its normal path.
func (t *Trainer) adaptiveBoundary() *Checkpoint {
	if !t.swapArmed && len(t.pendingDrift) == 0 {
		return nil
	}
	cp := t.Checkpoint()

	if t.swapArmed {
		// The shadow step re-profiled the evicted keys; finalize analyzes
		// the collected profiles and swaps the re-solved plans in on every
		// live replica. Replicas profile the same net deterministically, so
		// each re-solves the same widths.
		var plans *core.Analyzer
		for _, r := range t.replicas {
			if r.lost {
				continue
			}
			rt := t.fw.Runtime(r.dev)
			rt.FinalizePlans()
			if plans == nil {
				plans = rt.Analyzer()
			}
		}
		for _, key := range t.shadowKeys {
			ev := PlanSwapEvent{Iter: t.iter, Key: key, Streams: 1}
			if plans != nil {
				if p, ok := plans.Cached(key); ok {
					ev.Streams = p.Streams
					ev.Serial = p.Serial
					ev.Fallback = p.Fallback
					ev.SolvedFrom = p.SolvedFrom
				}
			}
			t.swapLog = append(t.swapLog, ev)
			t.swapCount++
		}
		t.shadowKeys = nil
		t.swapArmed = false
	}

	if len(t.pendingDrift) > 0 {
		keys := t.pendingDrift
		t.pendingDrift = nil
		evicted := map[string]bool{}
		for _, r := range t.replicas {
			if r.lost {
				continue
			}
			rt := t.fw.Runtime(r.dev)
			for _, key := range keys {
				if rt.ScheduleReprofile([]string{key}) > 0 {
					evicted[key] = true
				}
			}
		}
		for _, key := range keys {
			if !evicted[key] {
				continue
			}
			// The shadow window runs this layer at width 1 (the profiling
			// width) starting this iteration.
			t.swapLog = append(t.swapLog, PlanSwapEvent{
				Iter: t.iter, Key: key, Streams: 1, Shadow: true,
			})
			t.shadowKeys = append(t.shadowKeys, key)
			t.reprofileCount++
		}
		if len(t.shadowKeys) > 0 {
			t.swapArmed = true
		}
	}
	return cp
}
