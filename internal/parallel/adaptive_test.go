package parallel

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/hostpool"
	"repro/internal/models"
	"repro/internal/simgpu"
)

// The adaptive-controller soak: inject profiler-record drift (the first
// profiling window is fully corrupted, so every layer starts on a stale
// width-1 fallback plan solved from nothing), let the online controller
// detect the drift, shadow-re-profile, and swap real plans in at
// checkpointed step boundaries — then prove the trained parameters are
// bitwise identical to a non-adaptive serial reference that merely replays
// the recorded width schedule. Width is the entire numeric contract of a
// plan swap: if the schedule replay reproduces the bits, the controller
// changed nothing but concurrency.

type adaptResult struct {
	params [][][]float32 // [replica][param][element]
	events []PlanSwapEvent
	snap   core.Snapshot
}

// runAdaptSoak trains a workload on two devices for `steps` iterations.
// With adaptive=true the online controller runs (and a host pool exercises
// chain concurrency); with adaptive=false the run is the serial reference,
// replaying the given width schedule via InstallPlan before each matching
// iteration. Both arms share fault plans, seeds, and feeders.
func runAdaptSoak(t *testing.T, w *models.Workload, batch, steps int, plans []simgpu.FaultPlan, adaptive bool, replay []PlanSwapEvent) adaptResult {
	t.Helper()
	const nDev = 2
	devs := make([]*simgpu.Device, nDev)
	for i := range devs {
		var opts []simgpu.Option
		if plans != nil {
			opts = append(opts, simgpu.WithInjector(plans[i].Injector()))
		}
		dev, err := simgpu.NewDeviceChecked(simgpu.TeslaP100, opts...)
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = dev
	}
	cfg := Config{
		Solver:  chaosSolver(),
		UseGLP:  true,
		Compute: true,
		Seed:    5,
	}
	if adaptive {
		cfg.Adaptive = true
		cfg.HostPool = hostpool.New(4)
	}
	tr, err := NewTrainer(simgpu.NewMachineFromDevices(devs...), func(ctx *dnn.Context) (*dnn.Net, error) {
		return w.Build(ctx, batch, 5)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	feed := workloadFeeder(w, batch, 1000)
	for i := 0; i < steps; i++ {
		// The reference arm applies the adaptive arm's recorded width
		// transitions at the same boundaries — with serial dispatch, so
		// only the width (the numeric contract) is reproduced, never the
		// concurrency.
		for _, ev := range replay {
			if ev.Iter != i {
				continue
			}
			for _, dev := range devs {
				tr.Framework().Runtime(dev).InstallPlan(ev.Key, ev.Streams, true, ev.Fallback, ev.SolvedFrom)
			}
		}
		if _, err := tr.Step(feed); err != nil {
			t.Fatalf("%s step %d failed: %v", w.Name, i, err)
		}
	}

	res := adaptResult{
		events: tr.SwapEvents(),
		snap:   tr.Framework().Runtime(devs[0]).Ledger().Snapshot(),
	}
	for r := 0; r < tr.Replicas(); r++ {
		var ps [][]float32
		for _, p := range tr.Net(r).Params() {
			ps = append(ps, append([]float32(nil), p.Data.Data()...))
		}
		res.params = append(res.params, ps)
	}
	return res
}

// probeWindowRecords measures how many kernel records the first profiling
// window of a clean run collects — the exact fault budget that corrupts
// that window and nothing else.
func probeWindowRecords(t *testing.T, w *models.Workload, batch int) int64 {
	t.Helper()
	clean := runAdaptSoak(t, w, batch, 2, nil, false, nil)
	n := clean.snap.ProfiledKernels
	if n == 0 {
		t.Fatal("probe collected no profiler records")
	}
	return n
}

// TestAdaptivePlanSwapInvariance is the headline adaptive proof on all four
// paper workloads: under injected drift the controller re-solves plans at
// runtime, and the trained parameters stay bitwise identical to the serial
// reference replaying the same width schedule.
func TestAdaptivePlanSwapInvariance(t *testing.T) {
	cases := []struct {
		name         string
		batch, steps int
	}{
		{"CIFAR10", 4, 6},
		{"Siamese", 4, 6},
		{"CaffeNet", 2, 6}, // ~6 GFLOP per image on the host: keep it small
		{"GoogLeNet", 2, 6},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			w, err := models.Get(c.name)
			if err != nil {
				t.Fatal(err)
			}
			// The drift injection: drop exactly the first profiling
			// window's records on both devices. Collection comes back
			// empty, every layer gets a width-1 fallback plan with
			// SolvedFrom 0, and the first real observation is drift.
			n := probeWindowRecords(t, w, c.batch)
			plans := make([]simgpu.FaultPlan, 2)
			for d := range plans {
				plans[d] = simgpu.FaultPlan{Seed: 7, DropRecord: 1.0, MaxFaults: n}
			}

			adaptiveArm := runAdaptSoak(t, w, c.batch, c.steps, plans, true, nil)
			if adaptiveArm.snap.DriftEvents == 0 {
				t.Fatal("no drift detected despite a fully corrupted profiling window")
			}
			if adaptiveArm.snap.Reprofiles == 0 || adaptiveArm.snap.PlanSwaps == 0 {
				t.Fatalf("controller idle: reprofiles=%d swaps=%d",
					adaptiveArm.snap.Reprofiles, adaptiveArm.snap.PlanSwaps)
			}
			widened := false
			for _, ev := range adaptiveArm.events {
				if !ev.Shadow && ev.Streams > 1 {
					widened = true
					break
				}
			}
			if !widened {
				t.Fatalf("no re-solved plan raised its width; events: %v", adaptiveArm.events)
			}
			t.Logf("%s: drift=%d reprofiles=%d swaps=%d, %d schedule events",
				c.name, adaptiveArm.snap.DriftEvents, adaptiveArm.snap.Reprofiles,
				adaptiveArm.snap.PlanSwaps, len(adaptiveArm.events))

			reference := runAdaptSoak(t, w, c.batch, c.steps, plans, false, adaptiveArm.events)
			if reference.snap.Reprofiles != 0 || reference.snap.PlanSwaps != 0 {
				t.Fatalf("reference arm adapted: reprofiles=%d swaps=%d",
					reference.snap.Reprofiles, reference.snap.PlanSwaps)
			}
			for r := range adaptiveArm.params {
				assertBitwiseEqual(t, c.name+"/adaptive-vs-reference", adaptiveArm.params[r], reference.params[0])
			}
		})
	}
}
