package parallel

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/dnn"
)

// Bucketed, overlapped, deterministic ring all-reduce.
//
// The blocking Phase-2 all-reduce waits for every replica to finish its
// whole backward pass, then folds all gradients in one host loop and
// charges the full ring time as exposed communication. This file replaces
// that monolith the way production data-parallel stacks do: parameters are
// partitioned into fixed-size buckets in reverse layer order (gradients
// that retire first reduce first), each bucket's ring transfer is launched
// the moment its last gradient lands — while earlier layers are still
// running backward — and the host-side fold math runs concurrently across
// hostpool workers instead of a single-threaded triple loop.
//
// The numeric contract (DESIGN §7.7): the bucket plan is a pure function of
// the net topology and the configured bucket size, computed once at trainer
// build. Within every bucket each element folds ascending-replica-first,
// scales by 1/N last — exactly the per-element operation order of the
// serial reference fold — so bucketing, banding, and fold concurrency
// cannot change a single bit of the result. Crash-resume rebuilds the same
// plan from the same topology, so durable checkpoints persist nothing.
//
// Timeline model: layer retirement times are recovered from the simulated
// device — each gradient-ready hook snapshots the device's launch sequence
// number, and after the step's drain the prefix-max of kernel end times by
// sequence gives the moment that layer's work completed on the virtual
// clock. Buckets ring-reduce sequentially on the bus (one all-reduce in
// flight at a time, matching one ring over the same links), each starting
// at max(bucket ready, bus busy). Ring time that fits under residual
// backward compute is overlapped; only the remainder past the compute
// frontier is exposed, and StepResult.CommTime now charges just that.

// DefaultBucketBytes is the gradient bucket size when Config.BucketBytes is
// zero: small enough that early buckets launch well before backward ends,
// large enough that per-bucket ring latency does not dominate.
const DefaultBucketBytes = 256 << 10

// bandElems is the band granularity of the parallel host-side fold: each
// bucket's elements are pre-split into bands of at most this many float32s,
// and hostpool workers claim bands. Band boundaries do not affect numerics
// (the fold is element-independent); they only bound task granularity.
const bandElems = 16384

// BusByName maps a CLI-friendly interconnect name to its Bus model.
func BusByName(name string) (Bus, bool) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "pcie3", "pcie":
		return PCIe3, true
	case "nvlink1", "nvlink":
		return NVLink1, true
	}
	return Bus{}, false
}

// BusNames lists the names BusByName accepts, for usage strings.
func BusNames() []string { return []string{"pcie3", "nvlink1"} }

// band is one fold task: elements [lo, hi) of one parameter.
type band struct {
	param  int
	lo, hi int
}

// bucketSpec is one gradient bucket of the plan.
type bucketSpec struct {
	params []int // indices into Net.Params() order, reverse-retirement order
	bytes  int64
	owners []int  // deduplicated owner layer entries across the bucket's params
	bands  []band // precomputed fold tasks
	pairs  int    // (param, owner-layer) contributions per replica
}

// BucketPlan partitions a net's parameters into fixed-size gradient buckets
// in reverse layer order. The plan is immutable after construction and part
// of the trainer's numeric contract; see the file comment.
type BucketPlan struct {
	bucketBytes int64
	buckets     []bucketSpec
	// contrib maps a layer entry index to the buckets (with multiplicity,
	// one per owned param) that layer contributes gradients to; the
	// readiness countdown decrements along it as backward retires layers.
	contrib [][]int
}

// NewBucketPlan builds the bucket plan for a net. bucketBytes <= 0 selects
// DefaultBucketBytes.
func NewBucketPlan(net *dnn.Net, bucketBytes int64) *BucketPlan {
	params := net.Params()
	counts := make([]int, len(params))
	for i, p := range params {
		counts[i] = p.Count()
	}
	return newBucketPlan(counts, net.ParamOwners(), net.LayerCount(), bucketBytes)
}

// newBucketPlan is the pure planner core (fuzzed directly): counts[i] is
// parameter i's element count and owners[i] its owning layer entries.
func newBucketPlan(counts []int, owners [][]int, layers int, bucketBytes int64) *BucketPlan {
	if bucketBytes <= 0 {
		bucketBytes = DefaultBucketBytes
	}
	p := &BucketPlan{bucketBytes: bucketBytes, contrib: make([][]int, layers)}

	// Reverse-retirement order: backward retires entries N-1..0, and a
	// shared parameter's gradient is final only when its *lowest*-index
	// owner retires. Sort by that finishing layer descending (first to
	// finish first), ties by ascending param index — fully deterministic.
	order := make([]int, len(counts))
	for i := range order {
		order[i] = i
	}
	finish := func(pi int) int {
		f := owners[pi][0]
		for _, o := range owners[pi][1:] {
			if o < f {
				f = o
			}
		}
		return f
	}
	sort.SliceStable(order, func(a, b int) bool {
		fa, fb := finish(order[a]), finish(order[b])
		if fa != fb {
			return fa > fb
		}
		return order[a] < order[b]
	})

	var cur bucketSpec
	flush := func() {
		if len(cur.params) == 0 {
			return
		}
		seen := map[int]bool{}
		for _, pi := range cur.params {
			for _, o := range owners[pi] {
				if !seen[o] {
					seen[o] = true
					cur.owners = append(cur.owners, o)
				}
				cur.pairs++
			}
		}
		sort.Ints(cur.owners)
		bi := len(p.buckets)
		for _, pi := range cur.params {
			for _, o := range owners[pi] {
				p.contrib[o] = append(p.contrib[o], bi)
			}
		}
		p.buckets = append(p.buckets, cur)
		cur = bucketSpec{}
	}
	for _, pi := range order {
		sz := int64(counts[pi]) * 4
		if cur.bytes > 0 && cur.bytes+sz > bucketBytes {
			flush()
		}
		cur.params = append(cur.params, pi)
		cur.bytes += sz
		for lo := 0; lo < counts[pi]; lo += bandElems {
			hi := lo + bandElems
			if hi > counts[pi] {
				hi = counts[pi]
			}
			cur.bands = append(cur.bands, band{param: pi, lo: lo, hi: hi})
		}
		// An oversized parameter still travels whole: a bucket never splits
		// a param, it just seals immediately after one that overflows it.
		if cur.bytes >= bucketBytes {
			flush()
		}
	}
	flush()
	return p
}

// NumBuckets returns how many gradient buckets the plan holds.
func (p *BucketPlan) NumBuckets() int { return len(p.buckets) }

// BucketBytes returns the configured bucket size cap.
func (p *BucketPlan) BucketBytes() int64 { return p.bucketBytes }

// seqEnd pairs a kernel's issue sequence number with its simulated
// completion time.
type seqEnd struct {
	seq int
	end time.Duration
}

// retireLog collects (seq, end) pairs from one device's completion
// listener. The listener runs under the device lock during drains, so add
// only touches the log's own mutex and slice.
type retireLog struct {
	mu   sync.Mutex
	recs []seqEnd
}

func (l *retireLog) add(seq int, end time.Duration) {
	l.mu.Lock()
	l.recs = append(l.recs, seqEnd{seq, end})
	l.mu.Unlock()
}

func (l *retireLog) reset() {
	l.mu.Lock()
	l.recs = l.recs[:0]
	l.mu.Unlock()
}

// retireTimes resolves each marked sequence number to the latest completion
// time among kernels issued at or before it: sort records by seq, prefix-max
// the end times, and binary-search each mark. marks[li] < 0 means layer li
// never fired (no mark) and resolves to 0.
func (l *retireLog) retireTimes(marks []int) []time.Duration {
	l.mu.Lock()
	recs := make([]seqEnd, len(l.recs))
	copy(recs, l.recs)
	l.mu.Unlock()
	sort.Slice(recs, func(a, b int) bool { return recs[a].seq < recs[b].seq })
	for i := 1; i < len(recs); i++ {
		if recs[i].end < recs[i-1].end {
			recs[i].end = recs[i-1].end
		}
	}
	out := make([]time.Duration, len(marks))
	for li, m := range marks {
		if m < 0 || len(recs) == 0 {
			continue
		}
		// Last record with seq <= m.
		at := sort.Search(len(recs), func(i int) bool { return recs[i].seq > m }) - 1
		if at >= 0 {
			out[li] = recs[at].end
		}
	}
	return out
}

// reduceRun is one step's overlapped all-reduce state: the readiness
// countdown per bucket, the fold goroutines in flight, and the per-replica
// launch-sequence marks the timeline model reads back after the drain. It
// is armed on the trainer before the Phase-1 goroutines start and disarmed
// after they join, so hook callbacks see it without extra synchronization.
type reduceRun struct {
	t       *Trainer
	plan    *BucketPlan
	compute bool
	n       int

	mu       sync.Mutex
	pending  []int
	launched []bool
	wg       sync.WaitGroup

	errMu   sync.Mutex
	foldErr error

	// marks[i][li] is replica i's device launch sequence when layer li's
	// gradient-ready hook fired, -1 before. Row i is written only by
	// replica i's Phase-1 goroutine.
	marks [][]int
}

func newReduceRun(t *Trainer, compute bool) *reduceRun {
	rd := &reduceRun{
		t:        t,
		plan:     t.plan,
		compute:  compute,
		n:        len(t.replicas),
		pending:  make([]int, len(t.plan.buckets)),
		launched: make([]bool, len(t.plan.buckets)),
		marks:    make([][]int, len(t.replicas)),
	}
	for bi, b := range t.plan.buckets {
		rd.pending[bi] = b.pairs * rd.n
	}
	layers := len(t.plan.contrib)
	for i := range rd.marks {
		rd.marks[i] = make([]int, layers)
		for li := range rd.marks[i] {
			rd.marks[i][li] = -1
		}
	}
	return rd
}

// layerDone is the gradient-ready hook body: replica i retired layer li.
// Serialized per replica (per the OnLayerBackward contract), concurrent
// across replicas.
func (rd *reduceRun) layerDone(i, li int) {
	if li >= len(rd.marks[i]) {
		return
	}
	rd.marks[i][li] = rd.t.replicas[i].dev.LaunchSeq()
	if !rd.compute || rd.n <= 1 {
		return
	}
	contrib := rd.plan.contrib[li]
	if len(contrib) == 0 {
		return
	}
	rd.mu.Lock()
	for _, bi := range contrib {
		rd.pending[bi]--
		if rd.pending[bi] == 0 && !rd.launched[bi] {
			rd.launched[bi] = true
			rd.wg.Add(1)
			go func(bi int) {
				defer rd.wg.Done()
				if err := rd.t.foldBucket(&rd.plan.buckets[bi]); err != nil {
					rd.errMu.Lock()
					if rd.foldErr == nil {
						rd.foldErr = err
					}
					rd.errMu.Unlock()
				}
			}(bi)
		}
	}
	rd.mu.Unlock()
}

// finish waits for every launched fold and returns the first fold error.
// Buckets whose countdown never reached zero (a replica failed mid-backward)
// are simply not folded — the caller is about to fail or retry the step, and
// the next attempt's ClearDiffs discards any partial folds.
func (rd *reduceRun) finish() error {
	rd.wg.Wait()
	rd.errMu.Lock()
	defer rd.errMu.Unlock()
	return rd.foldErr
}

// allFolded reports whether every bucket's fold launched (and finish has
// been called, so they also completed).
func (rd *reduceRun) allFolded() bool {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	for bi := range rd.launched {
		if !rd.launched[bi] {
			return false
		}
	}
	return true
}

// commTimes runs the overlap timeline model: per-bucket ready times from
// the recorded retirement marks, a sequential ring over the bus, and the
// split of total ring time into overlapped (hidden under computeTime) and
// exposed (past the compute frontier, charged to StepResult.CommTime).
func (rd *reduceRun) commTimes(computeTime time.Duration) (exposed, overlapped time.Duration) {
	t := rd.t
	if rd.n <= 1 {
		return 0, 0
	}
	retire := make([][]time.Duration, rd.n)
	for i := range t.replicas {
		retire[i] = t.retire[i].retireTimes(rd.marks[i])
	}
	var busy, total time.Duration
	for _, b := range t.plan.buckets {
		var ready time.Duration
		for i := 0; i < rd.n; i++ {
			for _, li := range b.owners {
				if rt := retire[i][li]; rt > ready {
					ready = rt
				}
			}
		}
		ring := t.bus.AllReduceTime(rd.n, b.bytes)
		start := ready
		if busy > start {
			start = busy
		}
		busy = start + ring
		total += ring
	}
	exposed = busy - computeTime
	if exposed < 0 {
		exposed = 0
	}
	if exposed > total {
		exposed = total
	}
	return exposed, total - exposed
}

// foldBucket averages one bucket's gradients across all replicas, banded
// across hostpool workers. Per element: ascending-replica additions into
// replica 0's buffer, scale by 1/n last, broadcast — bit-for-bit the serial
// reference fold, in any band order and at any concurrency.
func (t *Trainer) foldBucket(b *bucketSpec) error {
	n := len(t.replicas)
	inv := float32(1) / float32(n)
	return t.runBands(len(b.bands), func(task int) {
		bd := b.bands[task]
		acc := t.replicas[0].params[bd.param].Diff.Data()[bd.lo:bd.hi]
		for _, r := range t.replicas[1:] {
			src := r.params[bd.param].Diff.Data()[bd.lo:bd.hi]
			for j, v := range src {
				acc[j] += v
			}
		}
		for j := range acc {
			acc[j] *= inv
		}
		for _, r := range t.replicas[1:] {
			copy(r.params[bd.param].Diff.Data()[bd.lo:bd.hi], acc)
		}
	})
}

// foldBucketShards is the degraded-mode fold over per-shard gradient
// stashes: copy shard 0, add shards 1..N-1 in ascending shard order, scale
// by 1/N with N the *original* replica count, broadcast to the other
// survivors — the same per-element operation order as the healthy fold.
func (t *Trainer) foldBucketShards(b *bucketSpec, lead *replica, nShards int) error {
	inv := float32(1) / float32(nShards)
	return t.runBands(len(b.bands), func(task int) {
		bd := b.bands[task]
		acc := lead.params[bd.param].Diff.Data()[bd.lo:bd.hi]
		copy(acc, t.gradStash[0][bd.param][bd.lo:bd.hi])
		for s := 1; s < nShards; s++ {
			src := t.gradStash[s][bd.param][bd.lo:bd.hi]
			for j, v := range src {
				acc[j] += v
			}
		}
		for j := range acc {
			acc[j] *= inv
		}
		for _, r := range t.replicas {
			if r.lost || r == lead {
				continue
			}
			copy(r.params[bd.param].Diff.Data()[bd.lo:bd.hi], acc)
		}
	})
}

// runBands executes n band tasks on the trainer's host pool, or serially
// without one. hostpool.Run has the caller participate, so a loaded pool
// degrades to the serial loop rather than blocking.
func (t *Trainer) runBands(n int, fn func(task int)) error {
	if t.pool != nil {
		return t.pool.Run(n, fn)
	}
	for task := 0; task < n; task++ {
		fn(task)
	}
	return nil
}

// layerRetired is the per-replica gradient-ready hook registered at trainer
// build. Outside a step (rd nil: degraded shard replays, checkpoint
// restores) it is a no-op.
func (t *Trainer) layerRetired(i, li int) {
	if rd := t.red; rd != nil {
		rd.layerDone(i, li)
	}
}

// CommStats reports the gradient all-reduce totals accumulated over this
// trainer's steps (works with or without the GLP framework attached).
type CommStats struct {
	Steps          int64         // steps that performed an all-reduce
	Buckets        int64         // gradient buckets reduced
	Overlapped     time.Duration // modeled ring time hidden under backward
	Exposed        time.Duration // modeled ring time on the critical path
	Blocking       bool          // legacy blocking monolith selected
	BucketBytes    int64         // plan's bucket size cap
	BucketsPerStep float64
}

// CommStats returns the all-reduce ledger for this trainer.
func (t *Trainer) CommStats() CommStats {
	s := CommStats{
		Steps:       t.commSteps,
		Buckets:     t.commBuckets,
		Overlapped:  t.commOverlapped,
		Exposed:     t.commExposed,
		Blocking:    t.blocking,
		BucketBytes: t.plan.bucketBytes,
	}
	if s.Steps > 0 {
		s.BucketsPerStep = float64(s.Buckets) / float64(s.Steps)
	}
	return s
}

// accountComm folds one step's comm split into the trainer totals and, when
// the GLP framework is attached, the first survivor's ledger.
func (t *Trainer) accountComm(buckets int, overlapped, exposed time.Duration) {
	t.commSteps++
	t.commBuckets += int64(buckets)
	t.commOverlapped += overlapped
	t.commExposed += exposed
	if t.fw != nil {
		t.fw.Runtime(t.firstSurvivor().dev).Ledger().AddBucketReduce(buckets, overlapped, exposed)
	}
}

// checkPlanCoverage validates a plan against the net it was built from:
// every parameter in exactly one bucket, band coverage exact, contribution
// counts consistent. Called once at trainer build — a failed invariant here
// is a bug, and failing loudly beats silently dropping gradients.
func checkPlanCoverage(plan *BucketPlan, params []*dnn.Blob) error {
	seen := make([]int, len(params))
	for _, b := range plan.buckets {
		for _, pi := range b.params {
			if pi < 0 || pi >= len(params) {
				return fmt.Errorf("parallel: bucket plan references param %d of %d", pi, len(params))
			}
			seen[pi]++
		}
	}
	for pi, c := range seen {
		if c != 1 {
			return fmt.Errorf("parallel: bucket plan covers param %d %d times", pi, c)
		}
	}
	return nil
}
