package parallel

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dnn"
	"repro/internal/hostpool"
	"repro/internal/models"
	"repro/internal/simgpu"
)

// checkPlanInvariants asserts the planner's structural contract for any
// input: every parameter in exactly one bucket with exact band coverage,
// buckets in reverse-retirement order, byte caps respected (an oversized
// parameter alone may exceed the cap, nothing else), and contribution
// counts consistent with ownership.
func checkPlanInvariants(t *testing.T, p *BucketPlan, counts []int, owners [][]int, cap int64) {
	t.Helper()
	finish := func(pi int) int {
		f := owners[pi][0]
		for _, o := range owners[pi][1:] {
			if o < f {
				f = o
			}
		}
		return f
	}
	seen := make([]bool, len(counts))
	prevFinish := math.MaxInt
	for bi, b := range p.buckets {
		if len(b.params) == 0 {
			t.Fatalf("bucket %d is empty", bi)
		}
		var bytes int64
		for _, pi := range b.params {
			if seen[pi] {
				t.Fatalf("param %d appears in more than one bucket", pi)
			}
			seen[pi] = true
			bytes += int64(counts[pi]) * 4
			// Reverse-retirement order across the whole plan: finishing
			// layers never increase as buckets (and params within them)
			// advance.
			f := finish(pi)
			if f > prevFinish {
				t.Fatalf("param %d (finish layer %d) follows finish layer %d — not reverse order", pi, f, prevFinish)
			}
			prevFinish = f
		}
		if bytes != b.bytes {
			t.Fatalf("bucket %d bytes %d, params sum to %d", bi, b.bytes, bytes)
		}
		if bytes > cap && len(b.params) != 1 {
			t.Fatalf("bucket %d exceeds cap %d with %d params", bi, cap, len(b.params))
		}
		// Bands cover each bucket param exactly, in order, without overlap.
		covered := map[int]int{}
		for _, bd := range b.bands {
			if bd.lo != covered[bd.param] {
				t.Fatalf("bucket %d band gap on param %d: lo %d, covered %d", bi, bd.param, bd.lo, covered[bd.param])
			}
			if bd.hi <= bd.lo || bd.hi-bd.lo > bandElems {
				t.Fatalf("bucket %d bad band [%d,%d)", bi, bd.lo, bd.hi)
			}
			covered[bd.param] = bd.hi
		}
		for _, pi := range b.params {
			if covered[pi] != counts[pi] {
				t.Fatalf("bucket %d bands cover %d of param %d's %d elems", bi, covered[pi], pi, counts[pi])
			}
		}
		// pairs = total (param, owner) contributions.
		pairs := 0
		for _, pi := range b.params {
			pairs += len(owners[pi])
		}
		if pairs != b.pairs {
			t.Fatalf("bucket %d pairs %d, want %d", bi, b.pairs, pairs)
		}
	}
	for pi := range counts {
		if !seen[pi] {
			t.Fatalf("param %d not covered by any bucket", pi)
		}
	}
	// contrib rows decrement pending to exactly zero.
	total := 0
	for _, row := range p.contrib {
		total += len(row)
	}
	wantTotal := 0
	for pi := range counts {
		wantTotal += len(owners[pi])
	}
	if total != wantTotal {
		t.Fatalf("contrib lists %d entries, want %d", total, wantTotal)
	}
}

func TestBucketPlanSmall(t *testing.T) {
	// Four layers; layer 3 owns params 0,1; layer 1 owns param 2; params 3+4
	// shared between layers 0 and 2 (finishing layer 0, last to retire).
	counts := []int{100, 30, 2000, 64, 64}
	owners := [][]int{{3}, {3}, {1}, {0, 2}, {0, 2}}
	p := newBucketPlan(counts, owners, 4, 4*1024)
	checkPlanInvariants(t, p, counts, owners, 4*1024)
	// First bucket must hold layer-3 params (first to retire in backward);
	// the shared params (finish layer 0) must come last.
	if got := p.buckets[0].params[0]; got != 0 {
		t.Fatalf("first bucket starts with param %d, want 0 (deepest layer)", got)
	}
	lastB := p.buckets[len(p.buckets)-1]
	if got := lastB.params[len(lastB.params)-1]; got != 4 {
		t.Fatalf("last bucket ends with param %d, want 4 (shared, finishes at layer 0)", got)
	}
	// Param 2 is 8000 bytes > cap: it must sit alone in its bucket.
	for bi, b := range p.buckets {
		for _, pi := range b.params {
			if pi == 2 && len(b.params) != 1 {
				t.Fatalf("oversized param 2 shares bucket %d with %v", bi, b.params)
			}
		}
	}
}

// FuzzBucketPlan drives the pure planner core with random parameter
// shapes, ownership (including shared params), and bucket caps, asserting
// the structural invariants every time.
func FuzzBucketPlan(f *testing.F) {
	f.Add(int64(1), 8, 6, int64(4096))
	f.Add(int64(42), 1, 1, int64(1))
	f.Add(int64(7), 40, 12, int64(256<<10))
	f.Fuzz(func(t *testing.T, seed int64, nParams, nLayers int, cap int64) {
		if nParams < 1 || nParams > 200 || nLayers < 1 || nLayers > 100 {
			t.Skip()
		}
		if cap < 1 || cap > 1<<30 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		counts := make([]int, nParams)
		owners := make([][]int, nParams)
		for i := range counts {
			counts[i] = 1 + rng.Intn(50000)
			// 1–3 distinct owner layers, ascending.
			k := 1 + rng.Intn(3)
			if k > nLayers {
				k = nLayers
			}
			seen := map[int]bool{}
			for len(seen) < k {
				seen[rng.Intn(nLayers)] = true
			}
			for li := 0; li < nLayers; li++ {
				if seen[li] {
					owners[i] = append(owners[i], li)
				}
			}
		}
		p := newBucketPlan(counts, owners, nLayers, cap)
		checkPlanInvariants(t, p, counts, owners, cap)
	})
}

// commTotals collects the per-run results the invariance suite compares.
type commTotals struct {
	params   [][]float32
	lossBits []uint64
	exposed  time.Duration
	overlap  time.Duration
	buckets  int
	ledger   ledgerComm
}

type ledgerComm struct {
	buckets             int64
	overlapNs, exposeNs int64
}

// trainArm trains one workload on two P100s and returns parameters, loss
// bits, and the comm split. blocking selects the legacy monolithic
// all-reduce; bucketKB overrides the bucket size (0 = default).
func trainArm(t *testing.T, w *models.Workload, batch, steps int, blocking bool, bucketKB int64) commTotals {
	t.Helper()
	machine := simgpu.NewMachine(simgpu.TeslaP100, simgpu.TeslaP100)
	tr, err := NewTrainer(machine, func(ctx *dnn.Context) (*dnn.Net, error) {
		return w.Build(ctx, batch, 5)
	}, Config{
		Solver:            chaosSolver(),
		UseGLP:            true,
		Compute:           true,
		Seed:              5,
		HostPool:          hostpool.New(4),
		BlockingAllReduce: blocking,
		BucketBytes:       bucketKB << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	feed := workloadFeeder(w, batch, 1000)
	out := commTotals{}
	for i := 0; i < steps; i++ {
		res, err := tr.Step(feed)
		if err != nil {
			t.Fatalf("%s step %d: %v", w.Name, i, err)
		}
		out.lossBits = append(out.lossBits, math.Float64bits(res.MeanLoss))
		out.exposed += res.CommTime
		out.overlap += res.OverlappedComm
		out.buckets += res.BucketsReduced
	}
	for _, p := range tr.Net(0).Params() {
		out.params = append(out.params, append([]float32(nil), p.Data.Data()...))
	}
	for _, dev := range machine.Devices() {
		snap := tr.Framework().Runtime(dev).Ledger().Snapshot()
		out.ledger.buckets += snap.BucketsReduced
		out.ledger.overlapNs += snap.OverlappedCommNs
		out.ledger.exposeNs += snap.ExposedCommNs
	}
	cs := tr.CommStats()
	if cs.Blocking != blocking {
		t.Fatalf("CommStats.Blocking = %v, want %v", cs.Blocking, blocking)
	}
	if int(cs.Buckets) != out.buckets {
		t.Fatalf("CommStats.Buckets = %d, StepResults summed %d", cs.Buckets, out.buckets)
	}
	return out
}

// TestOverlappedAllReduceInvariance is the headline bit-identity suite: on
// all four paper workloads, the overlapped bucketed all-reduce must train
// parameters (and every per-step mean loss) bitwise identical to the
// blocking monolith, while exposing strictly less comm than the blocking
// arm's full ring bill — and a nonstandard bucket size must not change a
// bit either.
func TestOverlappedAllReduceInvariance(t *testing.T) {
	cases := []struct {
		name         string
		batch, steps int
	}{
		{"CIFAR10", 4, 3},
		{"Siamese", 4, 3},
		{"CaffeNet", 2, 2}, // ~6 GFLOP per image on the host: keep it small
		{"GoogLeNet", 4, 2},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			w, err := models.Get(c.name)
			if err != nil {
				t.Fatal(err)
			}
			blocking := trainArm(t, w, c.batch, c.steps, true, 0)
			overlapped := trainArm(t, w, c.batch, c.steps, false, 0)

			for i := range blocking.lossBits {
				if blocking.lossBits[i] != overlapped.lossBits[i] {
					t.Fatalf("step %d mean loss diverged: %x vs %x",
						i, blocking.lossBits[i], overlapped.lossBits[i])
				}
			}
			assertBitwiseEqual(t, c.name, overlapped.params, blocking.params)

			if overlapped.buckets <= 0 {
				t.Fatal("overlapped arm reduced no buckets")
			}
			if blocking.buckets != 0 {
				t.Fatalf("blocking arm claims %d buckets", blocking.buckets)
			}
			// The acceptance bar: exposed comm strictly below the blocking
			// arm's full ring bill, with real overlap claimed.
			if overlapped.exposed >= blocking.exposed {
				t.Fatalf("exposed comm %v not below blocking comm %v", overlapped.exposed, blocking.exposed)
			}
			if overlapped.overlap <= 0 {
				t.Fatal("overlapped arm hid no comm under backward")
			}
			// Conservation: exposed+overlapped is the same total ring time
			// the blocking arm charges (same buckets, same bus, same bytes —
			// the per-bucket rings sum to within latency granularity of the
			// monolith only when bucket count is 1, so just require the
			// total to be at least the monolith's transfer share).
			if overlapped.exposed+overlapped.overlap <= 0 {
				t.Fatal("no comm modeled at all")
			}
			// Ledger counters surfaced through Snapshot().
			if overlapped.ledger.buckets != int64(overlapped.buckets) {
				t.Fatalf("ledger buckets %d, step results %d", overlapped.ledger.buckets, overlapped.buckets)
			}
			if overlapped.ledger.overlapNs != int64(overlapped.overlap) || overlapped.ledger.exposeNs != int64(overlapped.exposed) {
				t.Fatalf("ledger comm split (%d/%d) disagrees with step results (%d/%d)",
					overlapped.ledger.overlapNs, overlapped.ledger.exposeNs,
					int64(overlapped.overlap), int64(overlapped.exposed))
			}

			// A different bucket size changes the schedule, never the bits.
			small := trainArm(t, w, c.batch, c.steps, false, 64)
			assertBitwiseEqual(t, c.name+"/64KiB", small.params, blocking.params)
			if small.buckets < overlapped.buckets {
				t.Fatalf("64 KiB buckets (%d) fewer than default-size buckets (%d)", small.buckets, overlapped.buckets)
			}
			t.Logf("%s: blocking comm %v vs exposed %v (overlapped %v, %d buckets/step)",
				c.name, blocking.exposed, overlapped.exposed,
				overlapped.overlap, overlapped.buckets/c.steps)
		})
	}
}

// TestOverlappedAllReduceEvictionSoak: the eviction mid-soak of the
// bit-identity suite. A two-device run that permanently loses device 1
// mid-training — under the default overlapped all-reduce — must finish
// bitwise identical to (a) the healthy overlapped run and (b) the same
// eviction soak under the blocking monolith: the degraded shard fold routes
// through the same bucket plan.
func TestOverlappedAllReduceEvictionSoak(t *testing.T) {
	w, err := models.Get("CIFAR10")
	if err != nil {
		t.Fatal(err)
	}
	const batch, steps = 4, 3
	run := func(blocking bool, lossAt int64) (commTotals, *Trainer, func()) {
		dev0, err := simgpu.NewDeviceChecked(simgpu.TeslaP100)
		if err != nil {
			t.Fatal(err)
		}
		in1 := simgpu.FaultPlan{Seed: 77, DeviceLossAfter: lossAt}.Injector()
		dev1, err := simgpu.NewDeviceChecked(simgpu.TeslaP100, simgpu.WithInjector(in1))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := NewTrainer(simgpu.NewMachineFromDevices(dev0, dev1), func(ctx *dnn.Context) (*dnn.Net, error) {
			return w.Build(ctx, batch, 5)
		}, Config{
			Solver:            chaosSolver(),
			UseGLP:            true,
			Compute:           true,
			Seed:              5,
			HostPool:          hostpool.New(4),
			StepRetries:       4,
			Elastic:           true,
			BlockingAllReduce: blocking,
		})
		if err != nil {
			t.Fatal(err)
		}
		feed := workloadFeeder(w, batch, 1000)
		out := commTotals{}
		for i := 0; i < steps; i++ {
			res, err := tr.Step(feed)
			if err != nil {
				t.Fatalf("step %d did not survive: %v", i, err)
			}
			out.lossBits = append(out.lossBits, math.Float64bits(res.MeanLoss))
			out.exposed += res.CommTime
			out.overlap += res.OverlappedComm
			out.buckets += res.BucketsReduced
		}
		for _, p := range tr.ActiveNet().Params() {
			out.params = append(out.params, append([]float32(nil), p.Data.Data()...))
		}
		return out, tr, tr.Close
	}

	healthy, healthyTr, closeHealthy := run(false, 0)
	defer closeHealthy()
	if healthyTr.Evictions() != 0 {
		t.Fatal("healthy probe evicted")
	}
	// Count device 1 ops via a probe injector run to pick the loss point —
	// reuse the elastic helper's approach with a fresh probe run.
	probe := runElastic(t, w, batch, steps, nil, 0)
	lossAt := probe.ops / 2
	if lossAt < 1 {
		t.Fatalf("probe counted %d ops", probe.ops)
	}

	evOverlapped, trO, closeO := run(false, lossAt)
	defer closeO()
	evBlocking, trB, closeB := run(true, lossAt)
	defer closeB()
	if trO.Evictions() != 1 || trB.Evictions() != 1 {
		t.Fatalf("evictions: overlapped %d, blocking %d, want 1/1", trO.Evictions(), trB.Evictions())
	}
	for i := range healthy.lossBits {
		if healthy.lossBits[i] != evOverlapped.lossBits[i] || healthy.lossBits[i] != evBlocking.lossBits[i] {
			t.Fatalf("step %d loss diverged across arms", i)
		}
	}
	assertBitwiseEqual(t, "eviction/overlapped-vs-healthy", evOverlapped.params, healthy.params)
	assertBitwiseEqual(t, "eviction/overlapped-vs-blocking", evOverlapped.params, evBlocking.params)
	if evOverlapped.buckets <= 0 {
		t.Fatal("eviction soak reduced no buckets")
	}
	t.Logf("eviction at op %d/%d: all three arms bitwise identical (%d buckets total)",
		lossAt, probe.ops, evOverlapped.buckets)
}
