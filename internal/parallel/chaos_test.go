package parallel

import (
	"math"
	"testing"

	"repro/internal/dnn"
	"repro/internal/hostpool"
	"repro/internal/models"
	"repro/internal/simgpu"
)

// The chaos suite is the headline robustness property: training under a
// seeded storm of injected device faults — launch refusals, sync failures,
// DMA errors, stream-creation refusals — must converge to trained parameters
// bitwise identical to the same configuration on healthy devices. Every
// recovery action the runtime takes (retry, quarantine, serial degradation,
// checkpoint rollback) is numerics-free by construction: retries re-issue a
// kernel whose math never ran, degradation changes only stream assignment
// (the plan keeps its width, which is the chain→scratch contract), and a
// rollback rewinds params, momentum, and RNG to the pre-step checkpoint.
//
// Hang and profiler-record faults are exercised in internal/core and
// internal/simgpu: they can strike the profiling iteration and change the
// *planned* width, which is a legitimate planning decision but makes the
// healthy baseline incomparable bit-for-bit (width is part of the numeric
// contract, see TestMidRunDegradationInvariance for the recovery half).

func chaosSolver() dnn.SolverConfig {
	return dnn.SolverConfig{BaseLR: 0.001, Momentum: 0.9, WeightDecay: 0.001}
}

// workloadFeeder adapts a models feeder into per-replica deterministic
// shards for any workload.
func workloadFeeder(w *models.Workload, batch int, seed int64) FeedFunc {
	feeders := map[int]models.Feeder{}
	return func(replica int, net *dnn.Net) error {
		f, ok := feeders[replica]
		if !ok {
			f = w.NewFeeder(batch, seed+int64(replica)*17)
			feeders[replica] = f
		}
		return f(net)
	}
}

type chaosResult struct {
	params     [][][]float32 // [replica][param][element]
	rollbacks  int
	recoveries int64 // ledger recovery actions summed over devices
	injected   int64 // faults the injectors actually delivered
}

// runChaos trains one workload on a two-device machine, optionally under
// per-device fault plans, and returns the trained parameters plus recovery
// diagnostics. Everything except the fault plans is held identical between
// calls, so a faulted run is bit-comparable to a clean one.
func runChaos(t *testing.T, w *models.Workload, batch, steps int, plans []simgpu.FaultPlan, stepRetries int) chaosResult {
	t.Helper()
	const nDev = 2
	devs := make([]*simgpu.Device, nDev)
	var injectors []*simgpu.PlanInjector
	for i := range devs {
		var opts []simgpu.Option
		if plans != nil {
			in := plans[i].Injector()
			injectors = append(injectors, in)
			opts = append(opts, simgpu.WithInjector(in))
		}
		dev, err := simgpu.NewDeviceChecked(simgpu.TeslaP100, opts...)
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = dev
	}
	machine := simgpu.NewMachineFromDevices(devs...)
	tr, err := NewTrainer(machine, func(ctx *dnn.Context) (*dnn.Net, error) {
		return w.Build(ctx, batch, 5)
	}, Config{
		Solver:      chaosSolver(),
		UseGLP:      true,
		Compute:     true,
		Seed:        5,
		HostPool:    hostpool.New(4),
		StepRetries: stepRetries,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	feed := workloadFeeder(w, batch, 1000)
	for i := 0; i < steps; i++ {
		if _, err := tr.Step(feed); err != nil {
			t.Fatalf("%s step %d did not self-heal: %v", w.Name, i, err)
		}
	}

	res := chaosResult{rollbacks: tr.Rollbacks()}
	for r := 0; r < tr.Replicas(); r++ {
		var ps [][]float32
		for _, p := range tr.Net(r).Params() {
			ps = append(ps, append([]float32(nil), p.Data.Data()...))
		}
		res.params = append(res.params, ps)
	}
	for _, dev := range devs {
		res.recoveries += tr.Framework().Runtime(dev).Ledger().Snapshot().Recoveries()
	}
	for _, in := range injectors {
		res.injected += in.Stats().Total()
	}
	return res
}

func assertBitwiseEqual(t *testing.T, tag string, a, b [][]float32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: param count %d vs %d", tag, len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("%s: param %d length %d vs %d", tag, i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if math.Float32bits(a[i][j]) != math.Float32bits(b[i][j]) {
				t.Fatalf("%s: param %d[%d] differs: %v vs %v", tag, i, j, a[i][j], b[i][j])
			}
		}
	}
}

// TestChaosSoakConvergenceInvariant trains all four paper workloads under
// three distinct seeded fault schedules each and requires the trained
// parameters to be bitwise identical to the fault-free run of the identical
// configuration — while proving (via ledger counters and injector stats)
// that faults were really delivered and recovery paths really fired.
func TestChaosSoakConvergenceInvariant(t *testing.T) {
	cases := []struct {
		name         string
		batch, steps int
	}{
		{"CIFAR10", 4, 3},
		{"Siamese", 4, 3},
		{"CaffeNet", 2, 2}, // ~6 GFLOP per image on the host: keep it small
		{"GoogLeNet", 4, 2},
	}
	seeds := []int64{101, 202, 303}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			w, err := models.Get(c.name)
			if err != nil {
				t.Fatal(err)
			}
			clean := runChaos(t, w, c.batch, c.steps, nil, 0)
			if clean.rollbacks != 0 || clean.recoveries != 0 {
				t.Fatalf("clean run recorded recoveries: rollbacks=%d recoveries=%d",
					clean.rollbacks, clean.recoveries)
			}
			for _, seed := range seeds {
				plans := make([]simgpu.FaultPlan, 2)
				for d := range plans {
					plans[d] = simgpu.FaultPlan{
						Seed:         seed*31 + int64(d),
						Launch:       0.03,
						Sync:         0.15,
						CreateStream: 0.10,
						Memcpy:       0.05,
						MaxFaults:    40, // bounded outage window per device
					}
				}
				faulted := runChaos(t, w, c.batch, c.steps, plans, 16)
				if faulted.injected == 0 {
					t.Fatalf("seed %d: injectors delivered no faults", seed)
				}
				if faulted.recoveries+int64(faulted.rollbacks) == 0 {
					t.Fatalf("seed %d: no recovery action fired despite %d faults",
						seed, faulted.injected)
				}
				t.Logf("seed %d: %d faults injected, %d ledger recoveries, %d rollbacks",
					seed, faulted.injected, faulted.recoveries, faulted.rollbacks)
				for r := range faulted.params {
					assertBitwiseEqual(t, w.Name, faulted.params[r], clean.params[0])
				}
			}
		})
	}
}

// TestStepRollbackDeterministic pins the checkpoint/rollback path exactly:
// with the serial launcher the only device barriers are the trainer's own
// un-retried Synchronize calls, so a Sync=1 plan with a 6-fault budget must
// produce exactly 6 rollbacks — and the recovered run must match the clean
// run bit for bit.
func TestStepRollbackDeterministic(t *testing.T) {
	run := func(inject bool) (chaosResult, int) {
		var opts []simgpu.Option
		if inject {
			opts = append(opts, simgpu.WithInjector(
				simgpu.FaultPlan{Seed: 9, Sync: 1, MaxFaults: 6}.Injector()))
		}
		dev, err := simgpu.NewDeviceChecked(simgpu.TeslaP100, opts...)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := NewTrainer(simgpu.NewMachineFromDevices(dev), smallBuilder(4, 3), Config{
			Solver:      chaosSolver(),
			Compute:     true,
			Seed:        3,
			StepRetries: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		feed := shardFeeder(4, 11)
		for i := 0; i < 3; i++ {
			if _, err := tr.Step(feed); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
		var ps [][]float32
		for _, p := range tr.Net(0).Params() {
			ps = append(ps, append([]float32(nil), p.Data.Data()...))
		}
		return chaosResult{params: [][][]float32{ps}}, tr.Rollbacks()
	}
	clean, r0 := run(false)
	if r0 != 0 {
		t.Fatalf("clean run rolled back %d times", r0)
	}
	faulted, r6 := run(true)
	if r6 != 6 {
		t.Fatalf("rollbacks = %d, want exactly 6 (one per budgeted sync fault)", r6)
	}
	assertBitwiseEqual(t, "rollback", faulted.params[0], clean.params[0])
}

// TestMidRunDegradationInvariance is the degraded-mode satellite: midway
// through a pooled GLP4NN run, every cached concurrent plan is forced to
// serial dispatch on every device. Because degradation preserves the plan
// width (only the stream assignment changes), the remaining steps must keep
// the parameters bitwise identical to the uninterrupted pooled run.
func TestMidRunDegradationInvariance(t *testing.T) {
	const steps, degradeAt = 5, 3
	run := func(degrade bool) [][]float32 {
		machine := simgpu.NewMachine(simgpu.TeslaP100, simgpu.TeslaP100)
		tr, err := NewTrainer(machine, smallBuilder(4, 5), Config{
			Solver:   chaosSolver(),
			UseGLP:   true,
			Compute:  true,
			Seed:     5,
			HostPool: hostpool.New(4),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		feed := shardFeeder(4, 13)
		for i := 0; i < steps; i++ {
			if degrade && i == degradeAt {
				forced := 0
				for _, dev := range machine.Devices() {
					rt := tr.Framework().Runtime(dev)
					for _, p := range rt.Plans() {
						if p.Streams > 1 && !p.Serial {
							rt.Analyzer().ForceSerial(p.Key)
							forced++
						}
					}
				}
				if forced == 0 {
					t.Fatal("no pooled plans to degrade; test needs concurrency to give up")
				}
			}
			if _, err := tr.Step(feed); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
		if degrade {
			for _, dev := range machine.Devices() {
				for _, p := range tr.Framework().Runtime(dev).Plans() {
					if p.Streams > 1 && !p.Serial {
						t.Fatalf("plan %s escaped degradation", p.Key)
					}
				}
			}
		}
		var ps [][]float32
		for _, p := range tr.Net(0).Params() {
			ps = append(ps, append([]float32(nil), p.Data.Data()...))
		}
		return ps
	}
	pooled := run(false)
	degraded := run(true)
	assertBitwiseEqual(t, "degraded", degraded, pooled)
}
