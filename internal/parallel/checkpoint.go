package parallel

import "repro/internal/dnn"

// In-memory checkpointing: the trainer's complete training state is
// (parameters, solver momentum history, iteration counter, per-replica RNG
// positions). Inputs are not part of the state — Step feeds the replicas
// exactly once per call, outside the retry loop, so a rolled-back attempt
// re-reads the same persisted shard without advancing the feeder.
//
// Replicas are parameter-identical by construction, so parameters and
// history are captured once (from the first surviving replica, by
// parameter index) and restored into every live replica — which also
// re-synchronizes a replica whose failed step died between its local
// update and its peers'. Evicted replicas are skipped on both sides.

// Checkpoint is a restorable snapshot of a Trainer's training state.
type Checkpoint struct {
	iter   int
	params [][]float32    // by parameter index, from the first survivor
	hist   [][]float32    // by parameter index; nil = no momentum yet
	rng    []dnn.RNGState // per replica
	rngOK  []bool
}

// Iter returns the iteration the checkpoint was taken at.
func (c *Checkpoint) Iter() int { return c.iter }

// Checkpoint captures the trainer's current training state.
func (t *Trainer) Checkpoint() *Checkpoint {
	lead := t.firstSurvivor()
	params := lead.net.Params()
	cp := &Checkpoint{
		iter:   t.iter,
		params: make([][]float32, len(params)),
		hist:   make([][]float32, len(params)),
		rng:    make([]dnn.RNGState, len(t.replicas)),
		rngOK:  make([]bool, len(t.replicas)),
	}
	h0 := lead.solver.HistorySnapshot()
	for pi, p := range params {
		cp.params[pi] = append([]float32(nil), p.Data.Data()...)
		if h, ok := h0[p]; ok {
			cp.hist[pi] = h
		}
	}
	for i, r := range t.replicas {
		if r.lost {
			continue
		}
		cp.rng[i], cp.rngOK[i] = r.ctx.RNGState()
	}
	return cp
}

// Restore rewinds the trainer to a checkpoint: every replica gets the
// checkpointed parameters, momentum history, solver iteration, and RNG
// position, and any in-flight GLP4NN profiling iteration is aborted so the
// retried step re-profiles at width 1 exactly like the step it replaces.
// After Restore the next Step repeats the checkpointed iteration
// bit-for-bit (given the same inputs).
func (t *Trainer) Restore(cp *Checkpoint) {
	if t.fw != nil {
		for _, r := range t.replicas {
			if r.lost {
				continue
			}
			t.fw.Runtime(r.dev).ResetProfiling()
		}
	}
	for i, r := range t.replicas {
		if r.lost {
			continue
		}
		params := r.net.Params()
		hist := make(map[*dnn.Blob][]float32, len(params))
		for pi, p := range params {
			copy(p.Data.Data(), cp.params[pi])
			if cp.hist[pi] != nil {
				hist[p] = cp.hist[pi]
			}
		}
		r.solver.RestoreHistory(hist)
		r.solver.SetIter(cp.iter)
		if i < len(cp.rngOK) && cp.rngOK[i] {
			r.ctx.RestoreRNG(cp.rng[i])
		}
	}
	// Registered input pipelines discard batches synthesized ahead and
	// re-queue their draw plans. The feeder is not rewound — Step feeds
	// once, outside the retry loop — but a pipeline that ran ahead of the
	// checkpoint must not let those provisional batches leak into later
	// iterations out of order.
	for _, p := range t.prefetch {
		if p != nil {
			p.Rollback()
		}
	}
	t.iter = cp.iter
}

// Rollbacks returns how many step attempts were rolled back and retried.
func (t *Trainer) Rollbacks() int { return t.rollbacks }
