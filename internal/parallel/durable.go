package parallel

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/dnn"
)

// Durable checkpoints: the trainer's complete training state in one
// crash-safe on-disk artifact, so a killed process resumes bit-for-bit.
//
// The format wraps the dnn snapshot codec (GLPW weights + GLPS solver
// state) in a CRC32-guarded header and adds what an in-memory Checkpoint
// carries beyond solver state — per-replica RNG stream positions and the
// input-iterator replay count:
//
//	magic "GLPC" | version u32 | payload length u64 | CRC32(payload) u32
//	payload:
//	    iter u32 | feedSteps u64
//	    replica count u32
//	    per replica: ok u8 | rng seed i64 | rng steps i64
//	    per replica: plan count u32
//	        per plan: key (u32 len + bytes) | streams u32 | flags u8
//	                  (bit 0 = serial-demoted, bit 1 = fallback)
//	                  | solvedFrom i64 ns (version ≥ 2 only)
//	    solver snapshot (GLPW … GLPS …) of the first surviving replica
//
// Version 2 adds each plan's solved-from timing (Plan.SolvedFrom) so the
// adaptive controller's drift reference survives a resume; version-1 files
// are still read, with solvedFrom defaulting to 0 (which the drift
// detector treats as the always-drifts healing case — a resumed adaptive
// run re-solves its plans from fresh observations rather than trusting a
// reference the file never carried).
//
// The plan tables exist because the planned per-layer stream width is part
// of the numeric contract (layers index per-chain scratch and fold
// gradient partials by width): a resumed run must dispatch its first
// iteration at the widths the checkpointed run was using, not re-profile
// at width 1 and diverge by an ulp.
//
// Everything is little-endian. The header is validated in order — magic,
// version, length, checksum — so each corruption mode (wrong file, future
// version, truncated tail, flipped byte) gets its own clear error and a
// -resume refuses to start from it. Files are written via
// dnn.WriteFileAtomic (temp + fsync + rename): a crash mid-write leaves
// the previous checkpoint intact, never a torn one.

const (
	durableMagic   = "GLPC"
	durableVersion = 2
	// maxDurableBytes bounds the declared payload length before any
	// allocation: a corrupt header must fail cleanly, not OOM.
	maxDurableBytes = int64(1) << 33
)

// DurableInfo describes a durable checkpoint.
type DurableInfo struct {
	// Iter is the completed-iteration count at capture.
	Iter int
	// FeedSteps is how many times the input feeders had been advanced —
	// the replay count a resuming caller must drive its (deterministic)
	// feeders through to restore the input iterator position.
	FeedSteps int64
	// Plans is each replica's cached concurrency-plan table at capture,
	// sorted by key (empty for non-GLP runs). glp4nn-info -plans renders
	// it; ReadCheckpoint reinstalls it.
	Plans [][]PlanInfo
}

// PlanInfo is the externally visible form of one checkpointed plan.
type PlanInfo struct {
	Key        string
	Streams    int
	Serial     bool
	Fallback   bool
	SolvedFrom time.Duration
}

// WriteCheckpoint serializes the trainer's training state (see the format
// above). The trainer feeds once per Step, so the feeder replay count
// equals the iteration counter.
func (t *Trainer) WriteCheckpoint(w io.Writer) error {
	var payload bytes.Buffer
	if err := binary.Write(&payload, binary.LittleEndian, uint32(t.iter)); err != nil {
		return err
	}
	if err := binary.Write(&payload, binary.LittleEndian, uint64(t.iter)); err != nil {
		return err
	}
	if err := binary.Write(&payload, binary.LittleEndian, uint32(len(t.replicas))); err != nil {
		return err
	}
	for _, r := range t.replicas {
		var st dnn.RNGState
		var ok bool
		if !r.lost {
			st, ok = r.ctx.RNGState()
		}
		okByte := uint8(0)
		if ok {
			okByte = 1
		}
		if err := binary.Write(&payload, binary.LittleEndian, okByte); err != nil {
			return err
		}
		if err := binary.Write(&payload, binary.LittleEndian, st.Seed); err != nil {
			return err
		}
		if err := binary.Write(&payload, binary.LittleEndian, st.Steps); err != nil {
			return err
		}
	}
	for _, r := range t.replicas {
		var plans []durablePlan
		if t.fw != nil && !r.lost {
			for _, p := range t.fw.Runtime(r.dev).FinalizePlans() {
				flags := uint8(0)
				if p.Serial {
					flags |= 1
				}
				if p.Fallback {
					flags |= 2
				}
				plans = append(plans, durablePlan{
					key:        p.Key,
					streams:    uint32(p.Streams),
					flags:      flags,
					solvedFrom: int64(p.SolvedFrom),
				})
			}
			sort.Slice(plans, func(i, j int) bool { return plans[i].key < plans[j].key })
		}
		if err := binary.Write(&payload, binary.LittleEndian, uint32(len(plans))); err != nil {
			return err
		}
		for _, p := range plans {
			if err := binary.Write(&payload, binary.LittleEndian, uint32(len(p.key))); err != nil {
				return err
			}
			if _, err := io.WriteString(&payload, p.key); err != nil {
				return err
			}
			if err := binary.Write(&payload, binary.LittleEndian, p.streams); err != nil {
				return err
			}
			if err := binary.Write(&payload, binary.LittleEndian, p.flags); err != nil {
				return err
			}
			if err := binary.Write(&payload, binary.LittleEndian, p.solvedFrom); err != nil {
				return err
			}
		}
	}
	if err := t.firstSurvivor().solver.Snapshot(&payload); err != nil {
		return err
	}

	if _, err := io.WriteString(w, durableMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(durableVersion)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(payload.Len())); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, crc32.ChecksumIEEE(payload.Bytes())); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// WriteCheckpointFile writes the checkpoint to path atomically.
func (t *Trainer) WriteCheckpointFile(path string) error {
	return dnn.WriteFileAtomic(path, t.WriteCheckpoint)
}

// readDurablePayload validates the GLPC header and returns the
// checksum-verified payload bytes plus the file's format version.
func readDurablePayload(r io.Reader) ([]byte, uint32, error) {
	magic := make([]byte, len(durableMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, 0, fmt.Errorf("parallel: reading checkpoint header: %w", err)
	}
	if string(magic) != durableMagic {
		return nil, 0, fmt.Errorf("parallel: not a checkpoint file (magic %q, want %q)", magic, durableMagic)
	}
	var ver uint32
	if err := binary.Read(r, binary.LittleEndian, &ver); err != nil {
		return nil, 0, fmt.Errorf("parallel: reading checkpoint version: %w", err)
	}
	if ver < 1 || ver > durableVersion {
		return nil, 0, fmt.Errorf("parallel: unsupported checkpoint version %d (this build reads version %d)", ver, durableVersion)
	}
	var plen uint64
	if err := binary.Read(r, binary.LittleEndian, &plen); err != nil {
		return nil, 0, fmt.Errorf("parallel: reading checkpoint length: %w", err)
	}
	if int64(plen) > maxDurableBytes {
		return nil, 0, fmt.Errorf("parallel: corrupt checkpoint: declared payload %d bytes", plen)
	}
	var sum uint32
	if err := binary.Read(r, binary.LittleEndian, &sum); err != nil {
		return nil, 0, fmt.Errorf("parallel: reading checkpoint checksum: %w", err)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, fmt.Errorf("parallel: checkpoint truncated (want %d payload bytes): %w", plen, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, 0, fmt.Errorf("parallel: checkpoint corrupt: CRC32 mismatch (file %08x, computed %08x)", sum, got)
	}
	// The declared length must account for the whole file: bytes after the
	// payload mean a torn or tampered write the CRC cannot vouch for.
	var extra [1]byte
	if _, err := io.ReadFull(r, extra[:]); err != io.EOF {
		return nil, 0, fmt.Errorf("parallel: checkpoint corrupt: trailing bytes after declared payload")
	}
	return payload, ver, nil
}

// PeekCheckpoint validates a durable checkpoint's header, checksum, and
// fixed fields without touching any trainer — what a CLI uses to refuse a
// bad -resume before building devices.
func PeekCheckpoint(r io.Reader) (DurableInfo, error) {
	payload, ver, err := readDurablePayload(r)
	if err != nil {
		return DurableInfo{}, err
	}
	info, _, _, _, _, err := parseDurablePayload(payload, ver)
	return info, err
}

// durablePlan is the serialized form of one analyzed concurrency plan —
// exactly the fields kernel dispatch (and therefore trained bits) depends
// on.
type durablePlan struct {
	key        string
	streams    uint32
	flags      uint8
	solvedFrom int64 // ns; version ≥ 2, zero for v1 files
}

// PeekCheckpointFile is PeekCheckpoint on a file.
func PeekCheckpointFile(path string) (DurableInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return DurableInfo{}, err
	}
	defer f.Close()
	return PeekCheckpoint(f)
}

func parseDurablePayload(payload []byte, ver uint32) (DurableInfo, []dnn.RNGState, []bool, [][]durablePlan, []byte, error) {
	fail := func(err error) (DurableInfo, []dnn.RNGState, []bool, [][]durablePlan, []byte, error) {
		return DurableInfo{}, nil, nil, nil, nil, err
	}
	br := bytes.NewReader(payload)
	var iter uint32
	var feedSteps uint64
	var nrep uint32
	if err := binary.Read(br, binary.LittleEndian, &iter); err != nil {
		return fail(fmt.Errorf("parallel: checkpoint payload truncated: %w", err))
	}
	if err := binary.Read(br, binary.LittleEndian, &feedSteps); err != nil {
		return fail(fmt.Errorf("parallel: checkpoint payload truncated: %w", err))
	}
	if err := binary.Read(br, binary.LittleEndian, &nrep); err != nil {
		return fail(fmt.Errorf("parallel: checkpoint payload truncated: %w", err))
	}
	if nrep == 0 || nrep > 1<<16 {
		return fail(fmt.Errorf("parallel: corrupt checkpoint: replica count %d", nrep))
	}
	rng := make([]dnn.RNGState, nrep)
	ok := make([]bool, nrep)
	for i := range rng {
		var okByte uint8
		if err := binary.Read(br, binary.LittleEndian, &okByte); err != nil {
			return fail(fmt.Errorf("parallel: checkpoint payload truncated: %w", err))
		}
		ok[i] = okByte != 0
		if err := binary.Read(br, binary.LittleEndian, &rng[i].Seed); err != nil {
			return fail(fmt.Errorf("parallel: checkpoint payload truncated: %w", err))
		}
		if err := binary.Read(br, binary.LittleEndian, &rng[i].Steps); err != nil {
			return fail(fmt.Errorf("parallel: checkpoint payload truncated: %w", err))
		}
	}
	plans := make([][]durablePlan, nrep)
	for i := range plans {
		var nplan uint32
		if err := binary.Read(br, binary.LittleEndian, &nplan); err != nil {
			return fail(fmt.Errorf("parallel: checkpoint payload truncated: %w", err))
		}
		if nplan > 1<<20 {
			return fail(fmt.Errorf("parallel: corrupt checkpoint: plan count %d", nplan))
		}
		for j := uint32(0); j < nplan; j++ {
			var klen uint32
			if err := binary.Read(br, binary.LittleEndian, &klen); err != nil {
				return fail(fmt.Errorf("parallel: checkpoint payload truncated: %w", err))
			}
			if klen > 1<<20 {
				return fail(fmt.Errorf("parallel: corrupt checkpoint: plan key length %d", klen))
			}
			key := make([]byte, klen)
			if _, err := io.ReadFull(br, key); err != nil {
				return fail(fmt.Errorf("parallel: checkpoint payload truncated: %w", err))
			}
			var p durablePlan
			p.key = string(key)
			if err := binary.Read(br, binary.LittleEndian, &p.streams); err != nil {
				return fail(fmt.Errorf("parallel: checkpoint payload truncated: %w", err))
			}
			if err := binary.Read(br, binary.LittleEndian, &p.flags); err != nil {
				return fail(fmt.Errorf("parallel: checkpoint payload truncated: %w", err))
			}
			if ver >= 2 {
				if err := binary.Read(br, binary.LittleEndian, &p.solvedFrom); err != nil {
					return fail(fmt.Errorf("parallel: checkpoint payload truncated: %w", err))
				}
			}
			plans[i] = append(plans[i], p)
		}
	}
	solverBytes := payload[len(payload)-br.Len():]
	info := DurableInfo{Iter: int(iter), FeedSteps: int64(feedSteps)}
	info.Plans = make([][]PlanInfo, nrep)
	for i, ps := range plans {
		for _, p := range ps {
			info.Plans[i] = append(info.Plans[i], PlanInfo{
				Key:        p.key,
				Streams:    int(p.streams),
				Serial:     p.flags&1 != 0,
				Fallback:   p.flags&2 != 0,
				SolvedFrom: time.Duration(p.solvedFrom),
			})
		}
	}
	return info, rng, ok, plans, solverBytes, nil
}

// ReadCheckpoint restores the trainer from a durable checkpoint: every
// surviving replica gets the stored parameters, momentum history, solver
// iteration, and RNG position. The checkpoint must have been taken from a
// trainer with the same replica count. The caller is responsible for
// replaying its feeders FeedSteps times (they are deterministic) before
// the next Step.
func (t *Trainer) ReadCheckpoint(r io.Reader) (DurableInfo, error) {
	payload, ver, err := readDurablePayload(r)
	if err != nil {
		return DurableInfo{}, err
	}
	info, rng, ok, plans, solverBytes, err := parseDurablePayload(payload, ver)
	if err != nil {
		return DurableInfo{}, err
	}
	if len(rng) != len(t.replicas) {
		return DurableInfo{}, fmt.Errorf("parallel: checkpoint has %d replicas, trainer has %d",
			len(rng), len(t.replicas))
	}
	// All live replica RNG streams advance in lockstep, so any stored
	// position stands in for a replica whose own slot is missing (it was
	// already evicted when the checkpoint was taken).
	fallback := -1
	for i, o := range ok {
		if o {
			fallback = i
			break
		}
	}
	if t.fw != nil {
		for i, r := range t.replicas {
			if r.lost {
				continue
			}
			rt := t.fw.Runtime(r.dev)
			rt.ResetProfiling()
			// Seed the analyzer cache with the checkpointed run's plans: the
			// resumed first iteration must dispatch at the same per-layer
			// widths, not open a fresh profiling window at width 1.
			for _, p := range plans[i] {
				rt.InstallPlan(p.key, int(p.streams), p.flags&1 != 0, p.flags&2 != 0, time.Duration(p.solvedFrom))
			}
		}
	}
	for i, rep := range t.replicas {
		if rep.lost {
			continue
		}
		if err := rep.solver.Restore(bytes.NewReader(solverBytes)); err != nil {
			return DurableInfo{}, fmt.Errorf("parallel: restoring replica %d: %w", i, err)
		}
		rep.solver.SetIter(info.Iter)
		switch {
		case ok[i]:
			rep.ctx.RestoreRNG(rng[i])
		case fallback >= 0:
			rep.ctx.RestoreRNG(rng[fallback])
		}
	}
	for _, p := range t.prefetch {
		if p != nil {
			p.Rollback()
		}
	}
	t.iter = info.Iter
	t.resumes++
	if t.fw != nil {
		t.fw.Runtime(t.firstSurvivor().dev).Ledger().AddResume()
	}
	return info, nil
}

// RestoreCheckpointFile is ReadCheckpoint on a file.
func (t *Trainer) RestoreCheckpointFile(path string) (DurableInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return DurableInfo{}, err
	}
	defer f.Close()
	return t.ReadCheckpoint(f)
}
