package parallel

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dnn"
	"repro/internal/hostpool"
	"repro/internal/models"
	"repro/internal/simgpu"
)

// Durable checkpoint suite: a run killed after writing a checkpoint and
// resumed from it must finish bit-for-bit identical to the uninterrupted
// run, and every corruption mode of the on-disk artifact must be refused
// with a clear error.

// newElasticPair builds a fresh two-P100 trainer for workload w.
func newElasticPair(t *testing.T, w *models.Workload, batch int) *Trainer {
	t.Helper()
	machine := simgpu.NewMachine(simgpu.TeslaP100, simgpu.TeslaP100)
	tr, err := NewTrainer(machine, func(ctx *dnn.Context) (*dnn.Net, error) {
		return w.Build(ctx, batch, 5)
	}, Config{
		Solver:   chaosSolver(),
		UseGLP:   true,
		Compute:  true,
		Seed:     5,
		HostPool: hostpool.New(4),
		Elastic:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func trainerParams(tr *Trainer) [][]float32 {
	var ps [][]float32
	for _, p := range tr.ActiveNet().Params() {
		ps = append(ps, append([]float32(nil), p.Data.Data()...))
	}
	return ps
}

// replayFeeds advances a fresh feeder to the checkpointed input-iterator
// position: the feeders are deterministic, so driving them through the
// same number of draws reproduces the stream bit for bit.
func replayFeeds(t *testing.T, tr *Trainer, feed FeedFunc, steps int64) {
	t.Helper()
	for k := int64(0); k < steps; k++ {
		for s := 0; s < tr.Replicas(); s++ {
			if err := feed(s, tr.Net(s)); err != nil {
				t.Fatalf("replaying feed step %d shard %d: %v", k, s, err)
			}
		}
	}
}

// TestCrashResumeSoakBitIdentical is the headline durability soak: on all
// four paper workloads, a run killed mid-training and resumed from its
// durable checkpoint — fresh process state, fresh devices, fresh feeders
// replayed to position — finishes with parameters bitwise identical to the
// uninterrupted run, with a nonzero resume counter in the ledger.
func TestCrashResumeSoakBitIdentical(t *testing.T) {
	cases := []struct {
		name         string
		batch, steps int
	}{
		{"CIFAR10", 4, 3},
		{"Siamese", 4, 3},
		{"CaffeNet", 2, 2}, // ~6 GFLOP per image on the host: keep it small
		{"GoogLeNet", 4, 2},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			w, err := models.Get(c.name)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "checkpoint.glpc")
			kill := c.steps / 2
			if kill < 1 {
				kill = 1
			}

			// Uninterrupted reference run.
			ref := newElasticPair(t, w, c.batch)
			feed := workloadFeeder(w, c.batch, 1000)
			for i := 0; i < c.steps; i++ {
				if _, err := ref.Step(feed); err != nil {
					t.Fatal(err)
				}
			}
			want := trainerParams(ref)
			ref.Close()

			// Run to the kill point, persist, and abandon the process
			// state — trainer, devices, feeders all die with it.
			victim := newElasticPair(t, w, c.batch)
			vfeed := workloadFeeder(w, c.batch, 1000)
			for i := 0; i < kill; i++ {
				if _, err := victim.Step(vfeed); err != nil {
					t.Fatal(err)
				}
			}
			if err := victim.WriteCheckpointFile(path); err != nil {
				t.Fatal(err)
			}
			victim.Close()

			// Resume: everything rebuilt from scratch, state from disk.
			resumed := newElasticPair(t, w, c.batch)
			defer resumed.Close()
			info, err := resumed.RestoreCheckpointFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if info.Iter != kill || info.FeedSteps != int64(kill) {
				t.Fatalf("checkpoint info = %+v, want iter=feedSteps=%d", info, kill)
			}
			rfeed := workloadFeeder(w, c.batch, 1000)
			replayFeeds(t, resumed, rfeed, info.FeedSteps)
			for i := kill; i < c.steps; i++ {
				if _, err := resumed.Step(rfeed); err != nil {
					t.Fatal(err)
				}
			}
			if resumed.Resumes() != 1 {
				t.Fatalf("resume counter = %d, want 1", resumed.Resumes())
			}
			var ledgerResumes int64
			for _, dev := range resumed.Devices() {
				ledgerResumes += resumed.Framework().Runtime(dev).Ledger().Snapshot().Resumes
			}
			if ledgerResumes != 1 {
				t.Fatalf("ledger resume counter = %d, want 1", ledgerResumes)
			}
			assertBitwiseEqual(t, c.name, trainerParams(resumed), want)
			t.Logf("%s: killed after %d/%d steps, resumed bit-identical", c.name, kill, c.steps)
		})
	}
}

// TestDurableCheckpointAfterEviction: a checkpoint taken from a degraded
// trainer (replica 0 evicted) restores into a fresh full-width trainer —
// the missing RNG slot falls back to a survivor's position — and training
// continues bit-identical to the healthy run.
func TestDurableCheckpointAfterEviction(t *testing.T) {
	const steps, kill = 5, 2
	path := filepath.Join(t.TempDir(), "degraded.glpc")

	newSmall := func(loseDev0 bool) *Trainer {
		devs := make([]*simgpu.Device, 2)
		for i := range devs {
			var opts []simgpu.Option
			if loseDev0 && i == 0 {
				opts = append(opts, simgpu.WithInjector(
					simgpu.FaultPlan{Seed: 3, DeviceLossAfter: 25}.Injector()))
			}
			dev, err := simgpu.NewDeviceChecked(simgpu.TeslaP100, opts...)
			if err != nil {
				t.Fatal(err)
			}
			devs[i] = dev
		}
		tr, err := NewTrainer(simgpu.NewMachineFromDevices(devs...), smallBuilder(4, 3), Config{
			Solver: chaosSolver(), Compute: true, Seed: 3, Elastic: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}

	ref := newSmall(false)
	feed := shardFeeder(4, 11)
	for i := 0; i < steps; i++ {
		if _, err := ref.Step(feed); err != nil {
			t.Fatal(err)
		}
	}
	want := trainerParams(ref)
	ref.Close()

	victim := newSmall(true)
	vfeed := shardFeeder(4, 11)
	for i := 0; i < kill; i++ {
		if _, err := victim.Step(vfeed); err != nil {
			t.Fatal(err)
		}
	}
	if victim.Evictions() != 1 {
		t.Fatalf("victim evictions = %d, want 1 (loss point must land before the kill)", victim.Evictions())
	}
	if err := victim.WriteCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	victim.Close()

	resumed := newSmall(false)
	defer resumed.Close()
	info, err := resumed.RestoreCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rfeed := shardFeeder(4, 11)
	replayFeeds(t, resumed, rfeed, info.FeedSteps)
	for i := kill; i < steps; i++ {
		if _, err := resumed.Step(rfeed); err != nil {
			t.Fatal(err)
		}
	}
	assertBitwiseEqual(t, "degraded-resume", trainerParams(resumed), want)
}

// TestCheckpointCorruptionRefused: each corruption mode of the on-disk
// format — wrong magic, future version, truncated tail, flipped payload
// byte — is detected and named, and restoring refuses.
func TestCheckpointCorruptionRefused(t *testing.T) {
	tr := newSmallTrainer(t)
	defer tr.Close()
	feed := shardFeeder(4, 11)
	for i := 0; i < 2; i++ {
		if _, err := tr.Step(feed); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := PeekCheckpoint(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine checkpoint refused: %v", err)
	}

	cases := []struct {
		name    string
		corrupt func([]byte) []byte
		want    string
	}{
		{"wrong-magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			copy(c, "NOPE")
			return c
		}, "not a checkpoint file"},
		{"future-version", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[4] = 99 // version u32 follows the 4-byte magic
			return c
		}, "unsupported checkpoint version"},
		{"truncated-tail", func(b []byte) []byte {
			return append([]byte(nil), b[:len(b)-7]...)
		}, "truncated"},
		{"flipped-byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0x40 // inside the payload: caught by CRC32
			return c
		}, "CRC32 mismatch"},
		{"trailing-garbage", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			return append(c, 0xDE, 0xAD) // beyond the declared payload length
		}, "trailing bytes"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			bad := c.corrupt(good)
			if _, err := PeekCheckpoint(bytes.NewReader(bad)); err == nil {
				t.Fatal("corrupt checkpoint accepted")
			} else if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not name the corruption (want %q)", err, c.want)
			}
			before := trainerParams(tr)
			if _, err := tr.ReadCheckpoint(bytes.NewReader(bad)); err == nil {
				t.Fatal("restore accepted a corrupt checkpoint")
			}
			// A refused restore must not have touched training state.
			assertBitwiseEqual(t, "untouched", trainerParams(tr), before)
		})
	}
}

// TestCheckpointReplicaCountMismatch: resuming on a machine with a
// different device count is refused (the plan width is the numeric
// contract).
func TestCheckpointReplicaCountMismatch(t *testing.T) {
	tr := newSmallTrainer(t)
	defer tr.Close()
	if _, err := tr.Step(shardFeeder(4, 11)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	solo, err := NewTrainer(simgpu.NewMachine(simgpu.TeslaP100), smallBuilder(4, 3), Config{
		Solver: chaosSolver(), Compute: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	if _, err := solo.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("replica-count mismatch accepted")
	} else if !strings.Contains(err.Error(), "replicas") {
		t.Fatalf("error %q does not explain the mismatch", err)
	}
}

// TestWriteFileAtomicKeepsPrevious: a failed write leaves the previous
// file byte-identical and no temp droppings.
func TestWriteFileAtomicKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.bin")
	if err := dnn.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("generation-1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := dnn.WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("torn"))
		return os.ErrInvalid
	}); err == nil {
		t.Fatal("failed writer did not propagate its error")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "generation-1" {
		t.Fatalf("previous file clobbered: %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp file leaked: %v", ents)
	}
}

func newSmallTrainer(t *testing.T) *Trainer {
	t.Helper()
	tr, err := NewTrainer(simgpu.NewMachine(simgpu.TeslaP100, simgpu.TeslaP100), smallBuilder(4, 3), Config{
		Solver: chaosSolver(), Compute: true, Seed: 3, Elastic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}
