package parallel

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dnn"
)

// Elastic device-loss tolerance.
//
// A permanently lost device (simgpu's DeviceLost fault class,
// core.IsDeviceLost) cannot be retried or degraded around — the replica it
// hosted is evicted and its shard of the global batch is reassigned to
// survivors. The elastic numeric contract is that global batch composition,
// gradient-fold order, and RNG consumption are properties of the *plan*
// (the original replica count), not of the live device count:
//
//   - The global batch stays exactly the original N shards; a survivor that
//     owns k shards processes them sequentially, in ascending shard order,
//     from host-side stashes of the fed inputs.
//   - Every replica context was built from the same seed, so all replica
//     RNG streams are identical and advance in lockstep (one step's draws
//     per iteration). A survivor rewinds its RNG to the step's starting
//     position before each extra shard, so each shard sees exactly the
//     draws its healthy owner would have seen and the stream still advances
//     by one step per iteration.
//   - Per-shard gradients are stashed and folded in ascending shard order —
//     the same float additions, in the same order, as the healthy fold over
//     replicas 0..N-1 — then scaled by 1/N with N the original replica
//     count.
//
// Together these make post-eviction training bitwise identical to the
// healthy N-device run, which the device-loss chaos soak asserts.

// replicaError attributes a step failure to the replica it happened on, so
// the elastic retry loop knows which device to evict. It preserves the
// wrapped error's message and unwrap chain.
type replicaError struct {
	replica int
	err     error
}

func (e *replicaError) Error() string { return e.err.Error() }
func (e *replicaError) Unwrap() error { return e.err }

// failedReplica extracts the replica index a step error is attributed to.
func failedReplica(err error) (int, bool) {
	var re *replicaError
	if errors.As(err, &re) {
		return re.replica, true
	}
	return 0, false
}

// EvictionEvent records one replica eviction for logs and tests.
type EvictionEvent struct {
	Iter    int    // iteration the loss was detected at
	Replica int    // evicted replica index
	Device  string // its device name
	Shards  []int  // shards reassigned away from it
	To      []int  // new owner per reassigned shard
}

func (e EvictionEvent) String() string {
	return fmt.Sprintf("iter %d: replica %d (%s) lost — shards %v reassigned to replicas %v",
		e.Iter, e.Replica, e.Device, e.Shards, e.To)
}

// Evictions returns how many replicas were evicted after device loss.
func (t *Trainer) Evictions() int { return t.evictions }

// ShardMoves returns how many batch shards were reassigned to survivors.
func (t *Trainer) ShardMoves() int { return t.shardMoves }

// Resumes returns how many times this trainer was restored from a durable
// on-disk checkpoint.
func (t *Trainer) Resumes() int { return t.resumes }

// EvictionEvents returns the evictions so far, oldest first.
func (t *Trainer) EvictionEvents() []EvictionEvent {
	return append([]EvictionEvent(nil), t.events...)
}

// Survivors returns the number of replicas still holding a live device.
func (t *Trainer) Survivors() int { return t.survivorCount() }

// ShardOwners returns the current shard→replica assignment (identity until
// the first eviction).
func (t *Trainer) ShardOwners() []int { return append([]int(nil), t.owners...) }

// ActiveNet returns the first surviving replica's network — the canonical
// parameter state (all survivors stay bitwise identical).
func (t *Trainer) ActiveNet() *dnn.Net { return t.firstSurvivor().net }

func (t *Trainer) survivorCount() int {
	n := 0
	for _, r := range t.replicas {
		if !r.lost {
			n++
		}
	}
	return n
}

// firstSurvivor returns the lowest-index replica still holding a live
// device (never nil: evict refuses to remove the last survivor).
func (t *Trainer) firstSurvivor() *replica {
	for _, r := range t.replicas {
		if !r.lost {
			return r
		}
	}
	return nil
}

// heir picks the survivor to inherit one shard: fewest owned shards,
// ties to the lowest replica index — deterministic, so equal runs make
// equal reassignments.
func (t *Trainer) heir() int {
	counts := make([]int, len(t.replicas))
	for _, o := range t.owners {
		counts[o]++
	}
	best := -1
	for i, r := range t.replicas {
		if r.lost {
			continue
		}
		if best < 0 || counts[i] < counts[best] {
			best = i
		}
	}
	return best
}

// evict permanently removes replica idx after device loss and reassigns
// its shards to survivors. The caller then restores the step's checkpoint
// and re-runs the iteration on the reduced device set.
func (t *Trainer) evict(idx int) error {
	if idx < 0 || idx >= len(t.replicas) || t.replicas[idx].lost {
		return fmt.Errorf("parallel: evict: replica %d is not active", idx)
	}
	if t.survivorCount() <= 1 {
		return fmt.Errorf("parallel: replica %d lost its device and no survivor remains", idx)
	}
	// Stash every shard's inputs from its current owner before ownership
	// moves: the heir must re-run the lost replica's shard with the exact
	// bytes it was fed this step.
	t.ensureStash()
	t.replicas[idx].lost = true
	ev := EvictionEvent{Iter: t.iter, Replica: idx, Device: t.replicas[idx].dev.Name()}
	for s, o := range t.owners {
		if o != idx {
			continue
		}
		h := t.heir()
		t.owners[s] = h
		ev.Shards = append(ev.Shards, s)
		ev.To = append(ev.To, h)
	}
	t.evictions++
	t.shardMoves += len(ev.Shards)
	t.events = append(t.events, ev)
	if t.fw != nil {
		led := t.fw.Runtime(t.firstSurvivor().dev).Ledger()
		led.AddEviction()
		led.AddShardMoves(len(ev.Shards))
	}
	return nil
}

// ensureStash builds the per-shard input stash from the current owners'
// nets. A no-op once built — from then on the Step feed loop refreshes it
// after every feed.
func (t *Trainer) ensureStash() {
	if t.stash != nil {
		return
	}
	t.inputNames = t.replicas[0].net.InputNames()
	t.stash = make([][][]float32, len(t.owners))
	for s, o := range t.owners {
		t.stashShard(s, t.replicas[o].net)
	}
}

// stashShard copies net's input blobs (this step's shard s) into the stash.
func (t *Trainer) stashShard(s int, net *dnn.Net) {
	dst := t.stash[s]
	if dst == nil {
		dst = make([][]float32, len(t.inputNames))
		t.stash[s] = dst
	}
	for bi, name := range t.inputNames {
		src := net.Blob(name).Data.Data()
		if dst[bi] == nil {
			dst[bi] = make([]float32, len(src))
		}
		copy(dst[bi], src)
	}
}

// loadShard copies shard s's stashed inputs into net's input blobs. Host
// copies only: the shard was already staged/uploaded once by the feeder,
// and modeled H2D time is not part of the bit-identity contract.
func (t *Trainer) loadShard(s int, net *dnn.Net) {
	for bi, name := range t.inputNames {
		copy(net.Blob(name).Data.Data(), t.stash[s][bi])
	}
}

// stashGrads copies net's parameter gradients as shard s's contribution to
// the fold (the owner's diff buffers are overwritten by its next shard).
func (t *Trainer) stashGrads(s int, net *dnn.Net) {
	params := net.Params()
	dst := t.gradStash[s]
	if dst == nil {
		dst = make([][]float32, len(params))
		t.gradStash[s] = dst
	}
	for pi, p := range params {
		g := p.Diff.Data()
		if dst[pi] == nil {
			dst[pi] = make([]float32, len(g))
		}
		copy(dst[pi], g)
	}
}

// stepDegraded is stepOnce on a reduced device set: every survivor
// processes its owned shards sequentially (ascending shard order, RNG
// rewound per shard), per-shard gradients are folded in ascending shard
// order and scaled by 1/N with N the original replica count, and survivors
// apply the identical update — bit-for-bit the healthy iteration.
func (t *Trainer) stepDegraded() (StepResult, error) {
	var res StepResult
	nShards := len(t.owners)
	compute := t.replicas[0].ctx.Compute

	shardsOf := make([][]int, len(t.replicas))
	for s, o := range t.owners {
		shardsOf[o] = append(shardsOf[o], s) // ascending: s iterates in order
	}
	if compute && t.gradStash == nil {
		t.gradStash = make([][][]float32, nShards)
	}

	losses := make([]float64, nShards)
	errs := make([]error, len(t.replicas))
	times := make([]time.Duration, len(t.replicas))
	var wg sync.WaitGroup
	for i, r := range t.replicas {
		if r.lost {
			continue
		}
		wg.Add(1)
		go func(i int, r *replica, shards []int) {
			defer wg.Done()
			if err := r.dev.ResetClocks(); err != nil {
				errs[i] = &replicaError{i, err}
				return
			}
			var rt *core.Runtime
			if t.fw != nil {
				rt = t.fw.Runtime(r.dev)
			}
			rng, rngOK := r.ctx.RNGState()
			for k, s := range shards {
				if k > 0 {
					if rngOK {
						// Each shard replays the step's draws from the same
						// starting position its healthy owner would have used.
						r.ctx.RestoreRNG(rng)
					}
					// An inherited pass while this runtime is still inside
					// its profiling iteration must run at width 1, exactly
					// like the shard's healthy owner (itself profiling in
					// lockstep) would have run it. Discard the open window
					// so the repeat sighting does not analyze plans
					// mid-iteration and dispatch at planned width early —
					// width is part of the numeric contract.
					if rt != nil && rt.Profiling() {
						rt.ResetProfiling()
					}
				}
				t.loadShard(s, r.net)
				loss, err := r.net.ForwardBackward(r.ctx)
				if err != nil {
					errs[i] = &replicaError{i, fmt.Errorf("parallel: replica %d shard %d: %w", i, s, err)}
					return
				}
				losses[s] = loss
				if compute {
					t.stashGrads(s, r.net)
				}
			}
			d, err := r.dev.Synchronize()
			if err != nil {
				errs[i] = &replicaError{i, err}
				return
			}
			if h := r.dev.HostTime(); h > d {
				d = h
			}
			times[i] = d
		}(i, r, shardsOf[i])
	}
	wg.Wait()
	for i := range t.replicas {
		if errs[i] != nil {
			return res, errs[i]
		}
		if times[i] > res.ComputeTime {
			res.ComputeTime = times[i]
		}
	}
	var lossSum float64
	for s := 0; s < nShards; s++ {
		lossSum += losses[s]
	}
	res.MeanLoss = lossSum / float64(nShards)

	// Fold in ascending shard order — the same additions, in the same
	// order, as the healthy fold over replicas 0..N-1 — into the first
	// survivor's diff buffers, then broadcast to the other survivors. The
	// fold routes through the same bucket plan as the healthy overlapped
	// path (banded across hostpool workers, bucket by bucket); per-element
	// operation order is unchanged, so the bits are too. Unlike the healthy
	// path there is no overlap to claim: a survivor's diff buffers are
	// overwritten by each inherited shard replay, so no gradient is final
	// until the whole degraded Phase 1 ends — the ring time stays fully
	// exposed.
	if nShards > 1 && compute {
		lead := t.firstSurvivor()
		for bi := range t.plan.buckets {
			if err := t.foldBucketShards(&t.plan.buckets[bi], lead, nShards); err != nil {
				return res, err
			}
		}
	}
	res.CommTime = t.bus.AllReduceTime(t.survivorCount(), t.gradBytes)
	if t.survivorCount() > 1 || (nShards > 1 && compute) {
		buckets := 0
		if nShards > 1 && compute {
			buckets = t.plan.NumBuckets()
			res.BucketsReduced = buckets
		}
		t.accountComm(buckets, 0, res.CommTime)
	}

	// Phase 3 mirrors stepOnce: concurrent identical updates on the
	// survivors, errors surfaced in ascending replica order.
	uTimes := make([]time.Duration, len(t.replicas))
	uErrs := make([]error, len(t.replicas))
	var uwg sync.WaitGroup
	for i, r := range t.replicas {
		if r.lost {
			continue
		}
		uwg.Add(1)
		go func(i int, r *replica) {
			defer uwg.Done()
			if err := r.dev.ResetClocks(); err != nil {
				uErrs[i] = &replicaError{i, err}
				return
			}
			if err := r.solver.ApplyUpdate(); err != nil {
				uErrs[i] = &replicaError{i, fmt.Errorf("parallel: update replica %d: %w", i, err)}
				return
			}
			d, err := r.dev.Synchronize()
			if err != nil {
				uErrs[i] = &replicaError{i, err}
				return
			}
			if h := r.dev.HostTime(); h > d {
				d = h
			}
			uTimes[i] = d
			r.solver.SetIter(t.iter + 1)
		}(i, r)
	}
	uwg.Wait()
	var updateTime time.Duration
	for i := range t.replicas {
		if uErrs[i] != nil {
			return res, uErrs[i]
		}
		if uTimes[i] > updateTime {
			updateTime = uTimes[i]
		}
	}
	res.IterTime = res.ComputeTime + res.CommTime + updateTime
	t.iter++
	return res, nil
}
