package parallel

import (
	"math"
	"testing"

	"repro/internal/dnn"
	"repro/internal/hostpool"
	"repro/internal/models"
	"repro/internal/simgpu"
)

// Elastic chaos suite: a device that is permanently lost mid-training is
// evicted and its batch shard is reassigned to survivors, and the trained
// parameters must stay bitwise identical to the healthy N-device run —
// batch composition, fold order, and RNG consumption are properties of the
// plan, not of the live device count (see elastic.go).

type elasticResult struct {
	params    [][]float32 // first survivor's parameters
	lossBits  []uint64    // per-step MeanLoss bit patterns
	evictions int
	moves     int
	survivors int
	ledgerEv  int64 // ledger eviction counters summed over devices
	ledgerMv  int64
	ops       int64 // failable ops device 1 dispatched (for picking loss points)
}

// runElastic trains one workload on a two-device elastic trainer. plan1,
// when non-nil, is the fault plan of device 1; device 0 stays healthy so
// the run can always finish. A zero plan still counts device 1's failable
// ops, so a clean run doubles as the probe that picks a mid-run loss point.
func runElastic(t *testing.T, w *models.Workload, batch, steps int, plan1 *simgpu.FaultPlan, stepRetries int) elasticResult {
	t.Helper()
	dev0, err := simgpu.NewDeviceChecked(simgpu.TeslaP100)
	if err != nil {
		t.Fatal(err)
	}
	var p1 simgpu.FaultPlan
	if plan1 != nil {
		p1 = *plan1
	}
	in1 := p1.Injector()
	dev1, err := simgpu.NewDeviceChecked(simgpu.TeslaP100, simgpu.WithInjector(in1))
	if err != nil {
		t.Fatal(err)
	}
	machine := simgpu.NewMachineFromDevices(dev0, dev1)
	tr, err := NewTrainer(machine, func(ctx *dnn.Context) (*dnn.Net, error) {
		return w.Build(ctx, batch, 5)
	}, Config{
		Solver:      chaosSolver(),
		UseGLP:      true,
		Compute:     true,
		Seed:        5,
		HostPool:    hostpool.New(4),
		StepRetries: stepRetries,
		Elastic:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	feed := workloadFeeder(w, batch, 1000)
	res := elasticResult{}
	for i := 0; i < steps; i++ {
		sr, err := tr.Step(feed)
		if err != nil {
			t.Fatalf("%s step %d did not survive: %v", w.Name, i, err)
		}
		res.lossBits = append(res.lossBits, math.Float64bits(sr.MeanLoss))
	}
	for _, p := range tr.ActiveNet().Params() {
		res.params = append(res.params, append([]float32(nil), p.Data.Data()...))
	}
	res.evictions = tr.Evictions()
	res.moves = tr.ShardMoves()
	res.survivors = tr.Survivors()
	for _, dev := range machine.Devices() {
		snap := tr.Framework().Runtime(dev).Ledger().Snapshot()
		res.ledgerEv += snap.Evictions
		res.ledgerMv += snap.ShardMoves
	}
	res.ops = in1.Ops()
	return res
}

// TestDeviceLossSoakConvergenceInvariant is the headline elastic soak: on
// all four paper workloads, a run that permanently loses one of its two
// devices mid-training must finish with parameters — and every per-step
// mean loss — bitwise identical to the uninterrupted healthy run, with
// nonzero eviction counters in trainer and ledger.
func TestDeviceLossSoakConvergenceInvariant(t *testing.T) {
	cases := []struct {
		name         string
		batch, steps int
	}{
		{"CIFAR10", 4, 3},
		{"Siamese", 4, 3},
		{"CaffeNet", 2, 2}, // ~6 GFLOP per image on the host: keep it small
		{"GoogLeNet", 4, 2},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			w, err := models.Get(c.name)
			if err != nil {
				t.Fatal(err)
			}
			clean := runElastic(t, w, c.batch, c.steps, nil, 0)
			if clean.evictions != 0 || clean.survivors != 2 {
				t.Fatalf("clean run evicted: %+v", clean)
			}
			// Kill device 1 roughly halfway through its healthy op stream.
			lossAt := clean.ops / 2
			if lossAt < 1 {
				t.Fatalf("probe counted %d ops; loss point undefined", clean.ops)
			}
			lost := runElastic(t, w, c.batch, c.steps,
				&simgpu.FaultPlan{Seed: 77, DeviceLossAfter: lossAt}, 4)
			if lost.evictions != 1 || lost.survivors != 1 || lost.moves == 0 {
				t.Fatalf("device loss did not evict: %+v", lost)
			}
			if lost.ledgerEv != 1 || lost.ledgerMv != int64(lost.moves) {
				t.Fatalf("ledger counters evictions=%d shard-moves=%d, want 1 and %d",
					lost.ledgerEv, lost.ledgerMv, lost.moves)
			}
			for i := range clean.lossBits {
				if clean.lossBits[i] != lost.lossBits[i] {
					t.Fatalf("step %d mean loss diverged: %x vs %x",
						i, clean.lossBits[i], lost.lossBits[i])
				}
			}
			assertBitwiseEqual(t, w.Name, lost.params, clean.params)
			t.Logf("%s: device 1 lost at op %d/%d, %d shard(s) moved, bits intact",
				w.Name, lossAt, clean.ops, lost.moves)
		})
	}
}

// TestDeviceLossUnderTransientStorm: device loss and a transient fault
// storm on the surviving device at the same time — eviction and rollback
// recovery compose, and the bits still match the healthy run.
func TestDeviceLossUnderTransientStorm(t *testing.T) {
	w, err := models.Get("CIFAR10")
	if err != nil {
		t.Fatal(err)
	}
	run := func(plans []simgpu.FaultPlan, retries int) elasticResult {
		devs := make([]*simgpu.Device, 2)
		var ins []*simgpu.PlanInjector
		for i := range devs {
			var opts []simgpu.Option
			if plans != nil {
				in := plans[i].Injector()
				ins = append(ins, in)
				opts = append(opts, simgpu.WithInjector(in))
			}
			dev, err := simgpu.NewDeviceChecked(simgpu.TeslaP100, opts...)
			if err != nil {
				t.Fatal(err)
			}
			devs[i] = dev
		}
		tr, err := NewTrainer(simgpu.NewMachineFromDevices(devs...), func(ctx *dnn.Context) (*dnn.Net, error) {
			return w.Build(ctx, 4, 5)
		}, Config{
			Solver:      chaosSolver(),
			UseGLP:      true,
			Compute:     true,
			Seed:        5,
			HostPool:    hostpool.New(4),
			StepRetries: retries,
			Elastic:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		feed := workloadFeeder(w, 4, 1000)
		for i := 0; i < 3; i++ {
			if _, err := tr.Step(feed); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
		res := elasticResult{evictions: tr.Evictions(), survivors: tr.Survivors()}
		for _, p := range tr.ActiveNet().Params() {
			res.params = append(res.params, append([]float32(nil), p.Data.Data()...))
		}
		if ins != nil {
			res.ops = ins[1].Ops()
		}
		return res
	}
	clean := run(nil, 0)
	probe := run([]simgpu.FaultPlan{{}, {}}, 0)
	plans := []simgpu.FaultPlan{
		{Seed: 404, Launch: 0.03, Sync: 0.15, CreateStream: 0.10, Memcpy: 0.05, MaxFaults: 40},
		{Seed: 505, DeviceLossAfter: probe.ops / 2},
	}
	stormy := run(plans, 16)
	if stormy.evictions != 1 || stormy.survivors != 1 {
		t.Fatalf("want one eviction with one survivor, got %+v", stormy)
	}
	assertBitwiseEqual(t, "storm+loss", stormy.params, clean.params)
}

// TestEvictionDeterministicSmall pins the eviction mechanics on a
// three-replica serial-launcher trainer: the lost middle replica's shard
// goes to the least-loaded, lowest-index survivor, owners and events
// record it, and per-step losses match the healthy run bit for bit.
func TestEvictionDeterministicSmall(t *testing.T) {
	const steps = 5
	run := func(lossAt int64) ([]uint64, [][]float32, *Trainer, func()) {
		devs := make([]*simgpu.Device, 3)
		for i := range devs {
			var opts []simgpu.Option
			if i == 1 {
				opts = append(opts, simgpu.WithInjector(
					simgpu.FaultPlan{Seed: 3, DeviceLossAfter: lossAt}.Injector()))
			}
			dev, err := simgpu.NewDeviceChecked(simgpu.TeslaP100, opts...)
			if err != nil {
				t.Fatal(err)
			}
			devs[i] = dev
		}
		tr, err := NewTrainer(simgpu.NewMachineFromDevices(devs...), smallBuilder(4, 3), Config{
			Solver:  chaosSolver(),
			Compute: true,
			Seed:    3,
			Elastic: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		feed := shardFeeder(4, 11)
		var bits []uint64
		for i := 0; i < steps; i++ {
			sr, err := tr.Step(feed)
			if err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			bits = append(bits, math.Float64bits(sr.MeanLoss))
		}
		var ps [][]float32
		for _, p := range tr.ActiveNet().Params() {
			ps = append(ps, append([]float32(nil), p.Data.Data()...))
		}
		return bits, ps, tr, tr.Close
	}
	cleanBits, cleanParams, cleanTr, closeClean := run(0)
	defer closeClean()
	if cleanTr.Evictions() != 0 {
		t.Fatal("clean run evicted")
	}
	lostBits, lostParams, tr, closeLost := run(40) // mid-run for the small net
	defer closeLost()
	if tr.Evictions() != 1 || tr.ShardMoves() != 1 || tr.Survivors() != 2 {
		t.Fatalf("evictions=%d moves=%d survivors=%d, want 1/1/2",
			tr.Evictions(), tr.ShardMoves(), tr.Survivors())
	}
	owners := tr.ShardOwners()
	if owners[0] != 0 || owners[1] != 0 || owners[2] != 2 {
		t.Fatalf("shard owners = %v, want [0 0 2] (heir = least-loaded lowest index)", owners)
	}
	evs := tr.EvictionEvents()
	if len(evs) != 1 || evs[0].Replica != 1 || len(evs[0].Shards) != 1 || evs[0].Shards[0] != 1 {
		t.Fatalf("eviction events = %v", evs)
	}
	for i := range cleanBits {
		if cleanBits[i] != lostBits[i] {
			t.Fatalf("step %d loss diverged after eviction", i)
		}
	}
	assertBitwiseEqual(t, "small-eviction", lostParams, cleanParams)
}

// TestEvictionLastSurvivorRefused: losing every device is terminal — the
// trainer reports it rather than training on nothing.
func TestEvictionLastSurvivorRefused(t *testing.T) {
	devs := make([]*simgpu.Device, 2)
	for i := range devs {
		dev, err := simgpu.NewDeviceChecked(simgpu.TeslaP100, simgpu.WithInjector(
			simgpu.FaultPlan{Seed: int64(i) + 1, DeviceLossAfter: 30}.Injector()))
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = dev
	}
	tr, err := NewTrainer(simgpu.NewMachineFromDevices(devs...), smallBuilder(4, 3), Config{
		Solver:  chaosSolver(),
		Compute: true,
		Seed:    3,
		Elastic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	feed := shardFeeder(4, 11)
	var stepErr error
	for i := 0; i < 20 && stepErr == nil; i++ {
		_, stepErr = tr.Step(feed)
	}
	if stepErr == nil {
		t.Fatal("training survived the loss of every device")
	}
	if tr.Survivors() != 1 {
		t.Fatalf("survivors = %d, want the last one retained", tr.Survivors())
	}
}

// TestDeviceLossWithoutElasticPropagates: with Elastic off, a permanent
// device-loss fault is terminal — not retried (it is not transient), not
// evicted, surfaced to the caller.
func TestDeviceLossWithoutElasticPropagates(t *testing.T) {
	dev0, err := simgpu.NewDeviceChecked(simgpu.TeslaP100)
	if err != nil {
		t.Fatal(err)
	}
	dev1, err := simgpu.NewDeviceChecked(simgpu.TeslaP100, simgpu.WithInjector(
		simgpu.FaultPlan{Seed: 1, DeviceLossAfter: 1}.Injector()))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(simgpu.NewMachineFromDevices(dev0, dev1), smallBuilder(4, 3), Config{
		Solver:      chaosSolver(),
		Compute:     true,
		Seed:        3,
		StepRetries: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	_, stepErr := tr.Step(shardFeeder(4, 11))
	if stepErr == nil {
		t.Fatal("step on a lost device succeeded without elastic mode")
	}
	if !simgpu.IsDeviceLost(stepErr) {
		t.Fatalf("error does not mark device loss: %v", stepErr)
	}
	if tr.Rollbacks() != 0 {
		t.Fatalf("permanent fault consumed %d rollback retries", tr.Rollbacks())
	}
	if tr.Evictions() != 0 || tr.Survivors() != 2 {
		t.Fatal("non-elastic trainer evicted a replica")
	}
}
