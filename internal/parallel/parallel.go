// Package parallel implements the paper's future-work item 3 — "a
// distributed implementation of the proposed framework" — at machine scale:
// synchronous data-parallel training across the GPUs of one simulated
// machine. Each device holds a full replica of the network (initialized
// identically), processes its shard of the global batch, and gradients are
// combined with a ring all-reduce whose communication time is modeled from
// the interconnect's bandwidth and latency. GLP4NN runs *inside* each
// replica, exactly as the paper suggests ("applied to a multi-GPU platform
// ... by optimizing workloads on a single GPU").
//
// Numerics are real: gradients are averaged across replicas in fixed
// device order and every replica applies the identical update, so replicas
// stay bitwise in sync (asserted by tests).
package parallel

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/hostpool"
	"repro/internal/simgpu"
)

// Bus models the inter-GPU interconnect for the all-reduce cost model.
type Bus struct {
	Name          string
	BandwidthGBps float64 // per-link bandwidth
	Latency       time.Duration
}

// Common interconnects.
var (
	// PCIe3 is a 16-lane PCIe 3.0 link (the paper's machines).
	PCIe3 = Bus{Name: "PCIe3 x16", BandwidthGBps: 12, Latency: 5 * time.Microsecond}
	// NVLink1 is first-generation NVLink (P100-class machines).
	NVLink1 = Bus{Name: "NVLink 1.0", BandwidthGBps: 40, Latency: 2 * time.Microsecond}
)

// AllReduceTime returns the ring all-reduce time for n participants moving
// `bytes` of gradients each: 2·(n−1)/n · bytes / bandwidth + 2·(n−1)·latency.
func (b Bus) AllReduceTime(n int, bytes int64) time.Duration {
	if n <= 1 {
		return 0
	}
	transfer := 2 * float64(n-1) / float64(n) * float64(bytes) / (b.BandwidthGBps * 1e9)
	return time.Duration(transfer*1e9) + time.Duration(2*(n-1))*b.Latency
}

// BuildFunc constructs one network replica in the given context.
type BuildFunc func(ctx *dnn.Context) (*dnn.Net, error)

// FeedFunc fills one replica's inputs with its shard for a step.
type FeedFunc func(replica int, net *dnn.Net) error

// replica is one device's training state.
type replica struct {
	dev    *simgpu.Device
	ctx    *dnn.Context
	net    *dnn.Net
	solver *dnn.Solver
	// params caches net.Params() (which allocates per call) in canonical
	// order; the bucket fold indexes it from worker goroutines.
	params []*dnn.Blob
	// lost marks a replica evicted after permanent device loss; it is
	// never scheduled again and its shards belong to survivors.
	lost bool
}

// Trainer trains synchronously across all devices of a machine.
type Trainer struct {
	bus      Bus
	replicas []*replica
	fw       *core.Framework
	iter     int

	gradBytes   int64
	stepRetries int
	rollbacks   int
	prefetch    []InputPipeline

	// Overlapped all-reduce state (see allreduce.go). plan is the immutable
	// bucket partition; retire holds each device's completion listener log;
	// lst the Subscribe tokens (released by Close); red the in-flight
	// step's reducer, non-nil only between Phase-1 launch and join.
	plan     *BucketPlan
	pool     *hostpool.Pool
	blocking bool
	retire   []*retireLog
	lst      []int
	red      *reduceRun

	commSteps      int64
	commBuckets    int64
	commOverlapped time.Duration
	commExposed    time.Duration

	// Elastic state (see elastic.go). owners maps each of the original N
	// batch shards to the replica currently processing it — identity until
	// a device is lost. stash holds each shard's fed inputs (by sorted
	// input name) once the trainer is degraded; gradStash holds per-shard
	// gradient contributions for the shard-order fold.
	elastic    bool
	owners     []int
	inputNames []string
	stash      [][][]float32
	gradStash  [][][]float32
	evictions  int
	shardMoves int
	resumes    int
	events     []EvictionEvent

	// Adaptive-controller state (see adaptive.go). pendingDrift holds keys
	// flagged by driftTick awaiting eviction at the next boundary;
	// shadowKeys the keys currently in their shadow re-profile window;
	// swapArmed marks that the next boundary must finalize and swap.
	adaptive       bool
	pendingDrift   []string
	shadowKeys     []string
	swapArmed      bool
	swapLog        []PlanSwapEvent
	driftCount     int
	reprofileCount int
	swapCount      int
}

// Config tunes a Trainer.
type Config struct {
	Solver  dnn.SolverConfig
	Bus     Bus
	UseGLP  bool // run each replica through GLP4NN
	Compute bool // real math (true) or timing-only
	Seed    int64
	// HostPool, when non-nil, additionally runs each replica's kernel host
	// math chain-parallel on the shared worker pool (see internal/hostpool).
	// Replicas already run concurrently with each other during Phase 1; the
	// pool parallelizes *within* a replica too, bounded by the pool size.
	HostPool *hostpool.Pool
	// StepRetries, when positive, arms rollback-and-retry: each Step is
	// checkpointed first, and a step that fails with a transient device
	// error is rolled back to the checkpoint and re-run, up to this many
	// times. Zero keeps the legacy fail-fast behavior.
	StepRetries int
	// DAG, when true, enables each replica's operator DAG scheduler:
	// independent layers of one replica execute concurrently
	// (dnn.Net.EnableDAG), on top of the replica-level and chain-level
	// parallelism above. Trained parameters stay bitwise identical.
	DAG bool
	// Prefetch registers the asynchronous input pipelines feeding this
	// trainer (e.g. one models.InputPipe per replica). The trainer does not
	// drive them — the FeedFunc does — but Restore notifies each so
	// batches synthesized ahead of a rolled-back step are discarded and
	// re-synthesized from the restored serial order, keeping retries
	// bit-identical (see the feed-once contract on Step).
	Prefetch []InputPipeline
	// Elastic, when true, arms device-loss tolerance: a replica whose
	// device fails permanently (core.IsDeviceLost) is evicted, its batch
	// shard is deterministically reassigned to survivors, and the step is
	// re-run from its checkpoint — bitwise identical to the healthy run
	// (see elastic.go). When false, permanent faults propagate.
	Elastic bool
	// BucketBytes caps each gradient bucket of the overlapped all-reduce
	// (see allreduce.go); zero selects DefaultBucketBytes. The bucket plan
	// is part of the numeric contract only through per-element fold order,
	// which is invariant across bucket sizes — any BucketBytes trains the
	// same bits.
	BucketBytes int64
	// BlockingAllReduce selects the legacy Phase-2 monolith: wait for every
	// replica's full backward, fold all gradients in one host loop, charge
	// the whole ring time as exposed comm. Trains bitwise identically to
	// the default overlapped path; kept as the reference arm for tests and
	// benchmarks.
	BlockingAllReduce bool
	// Adaptive, with UseGLP, arms the online concurrency controller: each
	// replica's runtime watches per-layer kernel timings, layers whose
	// timing drifts out of the band around their plan's solved-from timing
	// are re-profiled in a shadow window, and the re-solved plans swap in at
	// checkpointed step boundaries (see adaptive.go). The width schedule is
	// recorded (SwapEvents) so a non-adaptive replay trains identical bits.
	Adaptive bool
	// DriftBand is the adaptive controller's fractional tolerance around a
	// plan's solved-from timing; zero selects core.DefaultDriftBand.
	DriftBand float64
}

// InputPipeline is the rollback hook of an asynchronous input feed.
type InputPipeline interface {
	Rollback()
}

// NewTrainer builds one replica per machine device. The build function must
// be deterministic (same seed → same initial parameters) so replicas start
// identical.
func NewTrainer(machine *simgpu.Machine, build BuildFunc, cfg Config) (*Trainer, error) {
	devs := machine.Devices()
	if len(devs) == 0 {
		return nil, fmt.Errorf("parallel: machine has no devices")
	}
	if cfg.Bus.BandwidthGBps == 0 {
		cfg.Bus = PCIe3
	}
	t := &Trainer{bus: cfg.Bus, stepRetries: cfg.StepRetries, prefetch: cfg.Prefetch, elastic: cfg.Elastic}
	t.owners = make([]int, len(devs))
	for i := range t.owners {
		t.owners[i] = i
	}
	if cfg.UseGLP {
		t.fw = core.New()
		t.adaptive = cfg.Adaptive
	}
	for _, dev := range devs {
		var l dnn.Launcher = dnn.SerialLauncher{Dev: dev}
		if t.fw != nil {
			rt := t.fw.Runtime(dev)
			if t.adaptive {
				rt.SetAdaptive(core.AdaptiveConfig{Band: cfg.DriftBand})
			}
			l = rt
		}
		ctx := dnn.NewContext(l, cfg.Seed)
		ctx.Compute = cfg.Compute
		ctx.Pool = cfg.HostPool
		net, err := build(ctx)
		if err != nil {
			return nil, fmt.Errorf("parallel: building replica on %s: %w", dev.Name(), err)
		}
		if cfg.DAG {
			net.EnableDAG(true)
		}
		t.replicas = append(t.replicas, &replica{
			dev:    dev,
			ctx:    ctx,
			net:    net,
			solver: dnn.NewSolver(net, ctx, cfg.Solver),
			params: net.Params(),
		})
	}
	for _, p := range t.replicas[0].params {
		t.gradBytes += int64(p.Count()) * 4
	}
	// Overlapped all-reduce wiring: one bucket plan (a pure function of the
	// topology and bucket size — crash-resume rebuilds the identical plan),
	// one gradient-ready hook and one completion listener per replica.
	t.pool = cfg.HostPool
	t.blocking = cfg.BlockingAllReduce
	t.plan = NewBucketPlan(t.replicas[0].net, cfg.BucketBytes)
	if err := checkPlanCoverage(t.plan, t.replicas[0].params); err != nil {
		return nil, err
	}
	t.retire = make([]*retireLog, len(t.replicas))
	t.lst = make([]int, len(t.replicas))
	for i, r := range t.replicas {
		i, r := i, r
		t.retire[i] = &retireLog{}
		t.lst[i] = r.dev.Subscribe(func(rec simgpu.KernelRecord) {
			t.retire[i].add(rec.Seq, rec.End)
		})
		r.net.OnLayerBackward(func(li int) { t.layerRetired(i, li) })
	}
	return t, nil
}

// Close releases framework resources and detaches the per-device
// completion listeners.
func (t *Trainer) Close() {
	for i, r := range t.replicas {
		r.dev.Unsubscribe(t.lst[i])
	}
	if t.fw != nil {
		t.fw.Close()
	}
}

// Replicas returns the replica count.
func (t *Trainer) Replicas() int { return len(t.replicas) }

// Net returns replica i's network (replicas stay parameter-identical).
func (t *Trainer) Net(i int) *dnn.Net { return t.replicas[i].net }

// GradientBytes returns the per-replica gradient volume all-reduced each
// step.
func (t *Trainer) GradientBytes() int64 { return t.gradBytes }

// Devices returns every replica's device in replica order, including those
// of evicted replicas.
func (t *Trainer) Devices() []*simgpu.Device {
	devs := make([]*simgpu.Device, len(t.replicas))
	for i, r := range t.replicas {
		devs[i] = r.dev
	}
	return devs
}

// StepResult reports one synchronous step.
type StepResult struct {
	MeanLoss    float64
	ComputeTime time.Duration // max over replicas (they run in parallel)
	// CommTime is the *exposed* ring all-reduce time — the part left on the
	// critical path after per-bucket transfers overlapped residual backward
	// compute. Under Config.BlockingAllReduce (and in degraded post-eviction
	// steps) it is the full modeled ring time.
	CommTime       time.Duration
	OverlappedComm time.Duration // modeled ring time hidden under backward
	BucketsReduced int           // gradient buckets folded this step
	IterTime       time.Duration // ComputeTime + CommTime + update
}

// Step runs one synchronous data-parallel iteration: each replica computes
// its shard's gradients, gradients are averaged (ring all-reduce), every
// replica applies the same update.
//
// With Config.StepRetries > 0, the iteration is checkpointed before it
// runs; a transient device failure rolls the trainer back to the checkpoint
// and re-runs the identical iteration (inputs were fed once and persist in
// the replicas' blobs, and the RNG rewinds with the checkpoint, so the
// retried step is bit-for-bit the step that failed). Terminal errors and
// exhausted retries propagate.
func (t *Trainer) Step(feed FeedFunc) (StepResult, error) {
	// Adaptive boundary first: plan swaps and shadow evictions are only
	// legal between iterations, and when one happens this step must run
	// from a checkpoint that already includes the width transition.
	var acp *Checkpoint
	if t.adaptive {
		acp = t.adaptiveBoundary()
	}
	// Feeding happens exactly once per Step, outside the retry loop: the
	// feeder's own state (e.g. a shared RNG) must advance once per
	// iteration regardless of how many attempts the iteration takes. The
	// feeder sees shard indices (identical to replica indices until an
	// eviction); a degraded trainer also refreshes its per-shard stash so
	// survivors can replay shards they inherit mid-step.
	for s, o := range t.owners {
		r := t.replicas[o]
		if feed != nil {
			if err := feed(s, r.net); err != nil {
				return StepResult{}, err
			}
		}
		if t.stash != nil {
			t.stashShard(s, r.net)
		}
	}
	if t.stepRetries <= 0 && !t.elastic && acp == nil {
		res, err := t.stepOnce()
		if err == nil && t.adaptive {
			t.driftTick()
		}
		return res, err
	}
	cp := acp
	if cp == nil {
		cp = t.Checkpoint()
	}
	res, err := t.stepOnce()
	for attempt := 0; err != nil; {
		// Permanent device loss: evict the replica, rewind to the step's
		// checkpoint, and re-run on the survivors. Evictions do not consume
		// the transient-retry budget — the device set shrank, the step
		// itself never misbehaved.
		if t.elastic && core.IsDeviceLost(err) {
			idx, ok := failedReplica(err)
			if !ok {
				break
			}
			if evictErr := t.evict(idx); evictErr != nil {
				return res, evictErr
			}
			t.Restore(cp)
			res, err = t.stepOnce()
			continue
		}
		if attempt >= t.stepRetries || !core.IsTransient(err) {
			break
		}
		attempt++
		t.Restore(cp)
		t.rollbacks++
		res, err = t.stepOnce()
	}
	if err == nil && t.adaptive {
		t.driftTick()
	}
	return res, err
}

// stepOnce runs one synchronous iteration attempt.
func (t *Trainer) stepOnce() (StepResult, error) {
	if t.evictions > 0 {
		return t.stepDegraded()
	}
	var res StepResult
	n := len(t.replicas)
	compute := t.replicas[0].ctx.Compute

	// Arm the overlapped reducer before Phase 1 launches: gradient-ready
	// hooks fire inside the replica goroutines, snapshot device launch
	// sequences for the timeline model, and start each bucket's fold the
	// moment its last gradient lands. The goroutine launch below publishes
	// t.red to the hooks; the join plus finish() below retires it.
	var rd *reduceRun
	if !t.blocking && n > 1 {
		for i := range t.replicas {
			t.retire[i].reset()
		}
		rd = newReduceRun(t, compute)
		t.red = rd
	}

	// Phase 1: local forward/backward on every replica, concurrently — one
	// goroutine per replica, mirroring the real hardware where each GPU (and
	// its driving host thread) advances independently.
	losses := make([]float64, n)
	times := make([]time.Duration, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, r := range t.replicas {
		wg.Add(1)
		go func(i int, r *replica) {
			defer wg.Done()
			if err := r.dev.ResetClocks(); err != nil {
				errs[i] = &replicaError{i, err}
				return
			}
			loss, err := r.net.ForwardBackward(r.ctx)
			if err != nil {
				errs[i] = &replicaError{i, fmt.Errorf("parallel: replica %d: %w", i, err)}
				return
			}
			losses[i] = loss
			d, err := r.dev.Synchronize()
			if err != nil {
				errs[i] = &replicaError{i, err}
				return
			}
			if h := r.dev.HostTime(); h > d {
				d = h
			}
			times[i] = d
		}(i, r)
	}
	wg.Wait()
	// Every hook has fired by the join; await in-flight bucket folds before
	// anything (including an error-path retry, whose backward would race
	// them) proceeds, then disarm.
	var foldErr error
	if rd != nil {
		foldErr = rd.finish()
		t.red = nil
	}
	// Reductions in fixed replica order, so MeanLoss is deterministic no
	// matter which goroutine finished first.
	var lossSum float64
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return res, errs[i]
		}
		lossSum += losses[i]
		if times[i] > res.ComputeTime {
			res.ComputeTime = times[i]
		}
	}
	res.MeanLoss = lossSum / float64(n)
	if foldErr != nil {
		return res, foldErr
	}

	// Phase 2: all-reduce — average gradients in fixed device order (real
	// math). On the default overlapped path the folds already ran bucket by
	// bucket as backward retired layers; only the timeline split remains.
	// The blocking reference arm keeps the monolithic fold and charges the
	// whole ring time as exposed.
	if rd != nil {
		if compute && !rd.allFolded() {
			return res, fmt.Errorf("parallel: overlapped all-reduce left buckets unreduced (gradient-ready hooks missed)")
		}
		exposed, overlapped := rd.commTimes(res.ComputeTime)
		res.CommTime = exposed
		res.OverlappedComm = overlapped
		if compute {
			res.BucketsReduced = t.plan.NumBuckets()
		}
		t.accountComm(res.BucketsReduced, overlapped, exposed)
	} else {
		if n > 1 && compute {
			master := t.replicas[0].net.Params()
			for pi, p0 := range master {
				acc := p0.Diff.Data()
				for _, r := range t.replicas[1:] {
					other := r.net.Params()[pi].Diff.Data()
					for j, v := range other {
						acc[j] += v
					}
				}
				inv := float32(1) / float32(n)
				for j := range acc {
					acc[j] *= inv
				}
				for _, r := range t.replicas[1:] {
					copy(r.net.Params()[pi].Diff.Data(), acc)
				}
			}
		}
		res.CommTime = t.bus.AllReduceTime(n, t.gradBytes)
		if n > 1 {
			t.accountComm(0, 0, res.CommTime)
		}
	}

	// Phase 3: identical updates everywhere, applied concurrently — each
	// replica's solver math touches only its own buffers, and errors
	// surface in ascending replica order, mirroring Phase 1.
	uTimes := make([]time.Duration, n)
	uErrs := make([]error, n)
	var uwg sync.WaitGroup
	for i, r := range t.replicas {
		uwg.Add(1)
		go func(i int, r *replica) {
			defer uwg.Done()
			if err := r.dev.ResetClocks(); err != nil {
				uErrs[i] = &replicaError{i, err}
				return
			}
			if err := r.solver.ApplyUpdate(); err != nil {
				uErrs[i] = &replicaError{i, fmt.Errorf("parallel: update replica %d: %w", i, err)}
				return
			}
			d, err := r.dev.Synchronize()
			if err != nil {
				uErrs[i] = &replicaError{i, err}
				return
			}
			if h := r.dev.HostTime(); h > d {
				d = h
			}
			uTimes[i] = d
			r.solver.SetIter(t.iter + 1) // keep LR schedules advancing
		}(i, r)
	}
	uwg.Wait()
	var updateTime time.Duration
	for i := 0; i < n; i++ {
		if uErrs[i] != nil {
			return res, uErrs[i]
		}
		if uTimes[i] > updateTime {
			updateTime = uTimes[i]
		}
	}
	res.IterTime = res.ComputeTime + res.CommTime + updateTime
	t.iter++
	return res, nil
}

// Iter returns completed steps.
func (t *Trainer) Iter() int { return t.iter }

// Framework returns the GLP4NN framework driving the replicas (nil when
// the trainer runs the serial launcher). Chaos tests read the per-device
// ledgers through it to prove recovery paths fired.
func (t *Trainer) Framework() *core.Framework { return t.fw }
