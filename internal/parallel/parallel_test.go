package parallel

import (
	"math"
	"testing"
	"time"

	"repro/internal/dnn"
	"repro/internal/models"
	"repro/internal/simgpu"
	"repro/internal/tensor"
)

func TestAllReduceTimeFormula(t *testing.T) {
	b := Bus{BandwidthGBps: 10, Latency: time.Microsecond}
	if b.AllReduceTime(1, 1<<30) != 0 {
		t.Fatal("single participant should not communicate")
	}
	// n=4, 1 GB gradients: 2·3/4·1e9/10e9 s = 150 ms + 6 µs latency.
	got := b.AllReduceTime(4, 1e9)
	want := time.Duration(0.15*1e9)*time.Nanosecond + 6*time.Microsecond
	if d := got - want; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("AllReduceTime = %v, want %v", got, want)
	}
	// More bandwidth → strictly faster.
	if NVLink1.AllReduceTime(3, 1e8) >= PCIe3.AllReduceTime(3, 1e8) {
		t.Fatal("NVLink not faster than PCIe")
	}
}

// smallBuilder is a deterministic CIFAR10 replica builder at batch size n.
func smallBuilder(n int, seed int64) BuildFunc {
	return func(ctx *dnn.Context) (*dnn.Net, error) {
		return models.BuildCIFAR10(ctx, n, seed)
	}
}

// shardFeeder feeds replica-specific deterministic batches.
func shardFeeder(batch int, seed int64) FeedFunc {
	feeders := map[int]models.Feeder{}
	return func(replica int, net *dnn.Net) error {
		f, ok := feeders[replica]
		if !ok {
			w, _ := models.Get("CIFAR10")
			f = w.NewFeeder(batch, seed+int64(replica)*17)
			feeders[replica] = f
		}
		return f(net)
	}
}

func TestTrainerReplicasStayIdentical(t *testing.T) {
	machine := simgpu.NewMachine(simgpu.TeslaP100, simgpu.TeslaP100)
	tr, err := NewTrainer(machine, smallBuilder(8, 3), Config{
		Solver:  dnn.SolverConfig{BaseLR: 0.01, Momentum: 0.9, WeightDecay: 0.004},
		Compute: true,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Replicas() != 2 {
		t.Fatalf("replicas = %d", tr.Replicas())
	}
	if tr.GradientBytes() <= 0 {
		t.Fatal("no gradient bytes")
	}

	feed := shardFeeder(8, 11)
	var first, last float64
	for i := 0; i < 6; i++ {
		res, err := tr.Step(feed)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.MeanLoss
		}
		last = res.MeanLoss
		// CommTime is now the *exposed* ring time: it may legally reach 0
		// when every bucket hides under backward, but exposed+overlapped is
		// the full ring bill and must be positive for 2 replicas.
		if res.ComputeTime <= 0 || res.CommTime < 0 || res.CommTime+res.OverlappedComm <= 0 ||
			res.IterTime < res.ComputeTime+res.CommTime {
			t.Fatalf("bad step timing: %+v", res)
		}
		if res.BucketsReduced <= 0 {
			t.Fatalf("step %d reduced no gradient buckets: %+v", i, res)
		}
		// Parameter blobs must remain bitwise identical across replicas.
		p0 := tr.Net(0).Params()
		p1 := tr.Net(1).Params()
		for pi := range p0 {
			if !tensor.Equal(p0[pi].Data, p1[pi].Data) {
				t.Fatalf("step %d: replica params diverged at %s", i, p0[pi].Name)
			}
		}
	}
	if tr.Iter() != 6 {
		t.Fatalf("iter = %d", tr.Iter())
	}
	if math.IsNaN(last) || last >= first*1.5 {
		t.Fatalf("training diverged: first %v last %v", first, last)
	}
}

func TestTrainerUnderGLP4NN(t *testing.T) {
	machine := simgpu.NewMachine(simgpu.TeslaP100, simgpu.TitanXP)
	tr, err := NewTrainer(machine, smallBuilder(8, 5), Config{
		Solver:  dnn.CIFAR10QuickSolver(),
		UseGLP:  true,
		Compute: true,
		Seed:    5,
		Bus:     NVLink1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	feed := shardFeeder(8, 13)
	for i := 0; i < 4; i++ { // includes per-replica profile+analyze warmups
		if _, err := tr.Step(feed); err != nil {
			t.Fatal(err)
		}
	}
	p0 := tr.Net(0).Params()
	p1 := tr.Net(1).Params()
	for pi := range p0 {
		if !tensor.Equal(p0[pi].Data, p1[pi].Data) {
			t.Fatalf("GLP4NN replicas diverged at %s", p0[pi].Name)
		}
	}
}

// TestDataParallelScales: sharding a fixed global batch across more GPUs
// must reduce the per-iteration virtual time (compute shrinks ~linearly,
// comm adds a sublinear tax).
func TestDataParallelScales(t *testing.T) {
	iterTime := func(nGPU, shard int) time.Duration {
		specs := make([]simgpu.DeviceSpec, nGPU)
		for i := range specs {
			specs[i] = simgpu.TeslaP100
		}
		machine := simgpu.NewMachine(specs...)
		tr, err := NewTrainer(machine, smallBuilder(shard, 7), Config{
			Solver: dnn.CIFAR10QuickSolver(),
			Seed:   7,
			// timing-only: numerics are irrelevant to scaling shape
		})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		var res StepResult
		for i := 0; i < 2; i++ { // warm buffers then measure
			res, err = tr.Step(nil)
			if err != nil {
				t.Fatal(err)
			}
		}
		return res.IterTime
	}
	const globalBatch = 96
	one := iterTime(1, globalBatch)
	three := iterTime(3, globalBatch/3)
	if three >= one {
		t.Fatalf("3-GPU iteration (%v) not faster than 1-GPU (%v)", three, one)
	}
	t.Logf("global batch %d: 1 GPU %v vs 3 GPUs %v (%.2fx)", globalBatch, one, three, float64(one)/float64(three))
}

func TestTrainerErrors(t *testing.T) {
	if _, err := NewTrainer(simgpu.NewMachine(), smallBuilder(2, 1), Config{}); err == nil {
		t.Fatal("empty machine accepted")
	}
	bad := func(ctx *dnn.Context) (*dnn.Net, error) {
		return dnn.NewNet("bad").
			Add(dnn.NewReLU("r"), []string{"missing"}, []string{"x"}).
			Build(ctx)
	}
	if _, err := NewTrainer(simgpu.NewMachine(simgpu.TeslaP100), bad, Config{}); err == nil {
		t.Fatal("bad builder accepted")
	}
}

// TestTrainerDAGInvariance: switching on the per-replica operator DAG
// scheduler (Config.DAG) must not change a single trained bit, while the
// ledger proves concurrent layer sessions actually dispatched. GoogLeNet
// gives the DAG real inter-layer parallelism (inception branches).
func TestTrainerDAGInvariance(t *testing.T) {
	build := func(ctx *dnn.Context) (*dnn.Net, error) {
		w, err := models.Get("GoogLeNet")
		if err != nil {
			return nil, err
		}
		return w.Build(ctx, 2, 7)
	}
	feed := func(replica int, net *dnn.Net) error {
		w, _ := models.Get("GoogLeNet")
		return w.NewFeeder(2, 19+int64(replica))(net)
	}
	train := func(dag bool) ([][]float32, int64) {
		machine := simgpu.NewMachine(simgpu.TeslaP100, simgpu.TeslaP100)
		tr, err := NewTrainer(machine, build, Config{
			Solver:  dnn.SolverConfig{BaseLR: 0.001, Momentum: 0.9, WeightDecay: 0.001},
			UseGLP:  true,
			Compute: true,
			Seed:    7,
			DAG:     dag,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		for i := 0; i < 3; i++ { // step 1 profiles, 2 analyzes, 3 runs the DAG
			if _, err := tr.Step(feed); err != nil {
				t.Fatal(err)
			}
		}
		var out [][]float32
		for _, p := range tr.Net(0).Params() {
			out = append(out, append([]float32(nil), p.Data.Data()...))
		}
		var dagDispatches int64
		for _, dev := range machine.Devices() {
			dagDispatches += tr.Framework().Runtime(dev).Ledger().Snapshot().DAGDispatches
		}
		return out, dagDispatches
	}
	serial, sd := train(false)
	dag, dd := train(true)
	if sd != 0 {
		t.Fatalf("serial trainer charged %d DAG dispatches", sd)
	}
	if dd == 0 {
		t.Fatal("DAG trainer never dispatched through concurrent layer sessions")
	}
	if len(serial) != len(dag) {
		t.Fatalf("param count mismatch: %d vs %d", len(serial), len(dag))
	}
	for i := range serial {
		for j := range serial[i] {
			if math.Float32bits(serial[i][j]) != math.Float32bits(dag[i][j]) {
				t.Fatalf("param %d[%d] differs: serial %v dag %v", i, j, serial[i][j], dag[i][j])
			}
		}
	}
}
