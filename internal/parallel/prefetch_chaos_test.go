package parallel

import (
	"testing"

	"repro/internal/dnn"
	"repro/internal/hostpool"
	"repro/internal/models"
	"repro/internal/simgpu"
)

// pipedFeeder adapts per-replica input pipelines into a FeedFunc, with the
// same per-replica seed scheme as workloadFeeder so runs are comparable.
func pipedFeeder(t *testing.T, name string, batch int, seed int64, replicas int) ([]*models.InputPipe, FeedFunc) {
	t.Helper()
	pipes := make([]*models.InputPipe, replicas)
	for r := range pipes {
		p, err := models.NewInputPipe(name, batch, seed+int64(r)*17, models.PipeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		pipes[r] = p
	}
	return pipes, func(replica int, net *dnn.Net) error {
		return pipes[replica].Feed(net)
	}
}

// TestPrefetchRollbackInvariance pins the trainer↔pipeline rollback
// contract: a Sync=1, 6-fault budget forces exactly 6 checkpoint rollbacks
// mid-prefetch (the pipeline has run ahead when Restore fires), and the
// recovered piped run must match the clean inline-feeder run bit for bit.
func TestPrefetchRollbackInvariance(t *testing.T) {
	w, err := models.Get("CIFAR10")
	if err != nil {
		t.Fatal(err)
	}
	run := func(usePipe, inject bool) (chaosResult, int) {
		var opts []simgpu.Option
		if inject {
			opts = append(opts, simgpu.WithInjector(
				simgpu.FaultPlan{Seed: 9, Sync: 1, MaxFaults: 6}.Injector()))
		}
		dev, err := simgpu.NewDeviceChecked(simgpu.TeslaP100, opts...)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Solver:      chaosSolver(),
			Compute:     true,
			Seed:        3,
			StepRetries: 8,
		}
		var feed FeedFunc
		if usePipe {
			pipes, piped := pipedFeeder(t, "CIFAR10", 4, 1000, 1)
			for _, p := range pipes {
				defer p.Close()
				cfg.Prefetch = append(cfg.Prefetch, p)
			}
			feed = piped
		} else {
			feed = workloadFeeder(w, 4, 1000)
		}
		tr, err := NewTrainer(simgpu.NewMachineFromDevices(dev), func(ctx *dnn.Context) (*dnn.Net, error) {
			return w.Build(ctx, 4, 5)
		}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		for i := 0; i < 4; i++ {
			if _, err := tr.Step(feed); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
		var ps [][]float32
		for _, p := range tr.Net(0).Params() {
			ps = append(ps, append([]float32(nil), p.Data.Data()...))
		}
		return chaosResult{params: [][][]float32{ps}}, tr.Rollbacks()
	}

	clean, r0 := run(false, false)
	if r0 != 0 {
		t.Fatalf("clean run rolled back %d times", r0)
	}
	cleanPiped, r1 := run(true, false)
	if r1 != 0 {
		t.Fatalf("clean piped run rolled back %d times", r1)
	}
	assertBitwiseEqual(t, "piped-clean", cleanPiped.params[0], clean.params[0])
	faulted, r6 := run(true, true)
	if r6 != 6 {
		t.Fatalf("rollbacks = %d, want exactly 6 (one per budgeted sync fault)", r6)
	}
	assertBitwiseEqual(t, "piped-rollback", faulted.params[0], clean.params[0])
}

// TestChaosPrefetchConvergenceInvariant extends the chaos soak to the
// asynchronous input pipeline: a two-device GLP4NN trainer fed by
// per-replica pipes, under a seeded storm of launch/sync/memcpy/stream
// faults with rollback armed, must land bitwise on the clean inline-feeder
// parameters — while faults really fired.
func TestChaosPrefetchConvergenceInvariant(t *testing.T) {
	w, err := models.Get("CIFAR10")
	if err != nil {
		t.Fatal(err)
	}
	const nDev, batch, steps = 2, 4, 3
	run := func(plans []simgpu.FaultPlan) chaosResult {
		devs := make([]*simgpu.Device, nDev)
		var injectors []*simgpu.PlanInjector
		for i := range devs {
			var opts []simgpu.Option
			if plans != nil {
				in := plans[i].Injector()
				injectors = append(injectors, in)
				opts = append(opts, simgpu.WithInjector(in))
			}
			dev, err := simgpu.NewDeviceChecked(simgpu.TeslaP100, opts...)
			if err != nil {
				t.Fatal(err)
			}
			devs[i] = dev
		}
		pipes, feed := pipedFeeder(t, "CIFAR10", batch, 1000, nDev)
		cfg := Config{
			Solver:      chaosSolver(),
			UseGLP:      true,
			Compute:     true,
			Seed:        5,
			HostPool:    hostpool.New(4),
			StepRetries: 16,
		}
		for _, p := range pipes {
			defer p.Close()
			cfg.Prefetch = append(cfg.Prefetch, p)
		}
		tr, err := NewTrainer(simgpu.NewMachineFromDevices(devs...), func(ctx *dnn.Context) (*dnn.Net, error) {
			return w.Build(ctx, batch, 5)
		}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		for i := 0; i < steps; i++ {
			if _, err := tr.Step(feed); err != nil {
				t.Fatalf("step %d did not self-heal: %v", i, err)
			}
		}
		res := chaosResult{rollbacks: tr.Rollbacks()}
		for r := 0; r < tr.Replicas(); r++ {
			var ps [][]float32
			for _, p := range tr.Net(r).Params() {
				ps = append(ps, append([]float32(nil), p.Data.Data()...))
			}
			res.params = append(res.params, ps)
		}
		for _, dev := range devs {
			res.recoveries += tr.Framework().Runtime(dev).Ledger().Snapshot().Recoveries()
		}
		for _, in := range injectors {
			res.injected += in.Stats().Total()
		}
		return res
	}

	// Clean baseline with the plain inline feeder (same seeds).
	cleanBaseline := runChaos(t, w, batch, steps, nil, 0)
	clean := run(nil)
	for r := range clean.params {
		assertBitwiseEqual(t, "piped-glp-clean", clean.params[r], cleanBaseline.params[0])
	}
	plans := make([]simgpu.FaultPlan, nDev)
	for d := range plans {
		plans[d] = simgpu.FaultPlan{
			Seed:         404*31 + int64(d),
			Launch:       0.03,
			Sync:         0.15,
			CreateStream: 0.10,
			Memcpy:       0.05,
			MaxFaults:    40,
		}
	}
	faulted := run(plans)
	if faulted.injected == 0 {
		t.Fatal("injectors delivered no faults")
	}
	if faulted.recoveries+int64(faulted.rollbacks) == 0 {
		t.Fatalf("no recovery action fired despite %d faults", faulted.injected)
	}
	t.Logf("%d faults injected, %d ledger recoveries, %d rollbacks",
		faulted.injected, faulted.recoveries, faulted.rollbacks)
	for r := range faulted.params {
		assertBitwiseEqual(t, "piped-glp-chaos", faulted.params[r], cleanBaseline.params[0])
	}
}
