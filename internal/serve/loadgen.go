package serve

import (
	"math"
	"math/rand"
	"time"
)

// LoadGen is a seeded open-loop load generator with heavy-tailed
// (bounded Pareto) inter-arrival times — the bursty traffic shape that
// makes dynamic batching interesting: long quiet gaps where a batch=1
// server idles cheaply, and bursts where coalescing wins. Deterministic
// for a fixed seed; sample content is a pure function of (seed, id), so
// two servers driven by the same generator see bitwise-identical
// requests regardless of arrival interleaving.
type LoadGen struct {
	seed  int64
	rng   *rand.Rand // inter-arrival stream only
	alpha float64
	scale float64 // ns
	maxNs float64
}

// NewLoadGen builds a generator whose inter-arrival times have the given
// mean, Pareto tail index 1.5 (infinite variance, finite mean), and a
// 50× mean bound so a single draw cannot stall a benchmark.
func NewLoadGen(seed int64, mean time.Duration) *LoadGen {
	alpha := 1.5
	// Bounded-tail correction is negligible at 50×: E[d] ≈ scale·α/(α−1).
	scale := float64(mean) * (alpha - 1) / alpha
	return &LoadGen{
		seed:  seed,
		rng:   rand.New(rand.NewSource(seed)),
		alpha: alpha,
		scale: scale,
		maxNs: 50 * float64(mean),
	}
}

// NextDelay draws the next inter-arrival gap. Not safe for concurrent
// use: one goroutine owns the arrival process.
func (g *LoadGen) NextDelay() time.Duration {
	u := g.rng.Float64()
	for u == 0 {
		u = g.rng.Float64()
	}
	d := g.scale * math.Pow(u, -1/g.alpha)
	if d > g.maxNs {
		d = g.maxNs
	}
	return time.Duration(d)
}

// Sample synthesizes request id's row for one input: size standard
// normals from an RNG keyed by (seed, id, input). Pure — callable from
// any goroutine, any number of times, always the same bits.
func (g *LoadGen) Sample(id, input, size int) []float32 {
	rng := rand.New(rand.NewSource(g.seed ^ int64(id)*1000003 ^ int64(input)*7919))
	row := make([]float32, size)
	for i := range row {
		row[i] = float32(rng.NormFloat64())
	}
	return row
}
