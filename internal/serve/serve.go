// Package serve is the inference-serving layer over a frozen net: a
// dynamic request batcher in front of dnn.FrozenNet. Concurrent clients
// submit single samples; the batcher coalesces them into device batches
// and flushes when the batch fills or a latency deadline expires, stages
// the batch through the launcher's copy stream, runs the frozen forward,
// and fans the per-request rows back to their callers.
//
// The bit-identity contract carries over to serving: every forward layer
// is per-sample independent, so a request's answer does not depend on
// which requests it was co-batched with, how full the batch was (unused
// rows are zero-padded, never read back), or whether a transient device
// fault forced the batcher to retry the batch. A request answered by a
// half-full deadline flush is bitwise the request answered by a full
// batch — dynamic batching changes throughput and latency, never answers.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dnn"
)

// ErrClosed is returned by Predict once the server is shut down.
var ErrClosed = errors.New("serve: server closed")

// ErrOverloaded is returned by PredictContext when the admission queue is
// full: the request is shed immediately instead of queuing unboundedly, so
// an overloaded server stays responsive and callers can back off.
var ErrOverloaded = errors.New("serve: overloaded: admission queue full")

// Observer receives serving events as they happen; *core.Ledger implements
// it, so serving behavior lands in the runtime's overhead ledger.
// Implementations must be safe for concurrent use.
type Observer interface {
	// ServeRequest reports one answered request and its enqueue→answer
	// latency (queueing + compute).
	ServeRequest(lat time.Duration)
	// ServeBatch reports one flushed device batch: how many requests it
	// coalesced and its flush→done latency.
	ServeBatch(size int, lat time.Duration)
}

// Config tunes a Server. The zero value serves with the frozen net's full
// device batch, a 2 ms flush deadline, and 3 transient retries.
type Config struct {
	// MaxBatch caps how many requests coalesce into one device batch;
	// ≤ 0 or > the frozen batch selects the frozen batch. 1 is the
	// batch=1 serial baseline.
	MaxBatch int
	// MaxDelay is the flush deadline measured from the oldest pending
	// request: a partial batch flushes when it expires. 0 selects the 2 ms
	// default; < 0 flushes greedily (whatever is queued the moment the
	// batcher is free — the lowest-latency, lowest-coalescing policy).
	MaxDelay time.Duration
	// Queue is the submission channel depth; ≤ 0 selects 4× the batch.
	Queue int
	// Retries bounds whole-batch retries on transient device faults;
	// ≤ 0 selects 3. The batch retries with its requests in place, so a
	// fault drops nothing and reorders nothing.
	Retries int
	// Observer, when non-nil, receives per-request and per-batch events
	// (wire the runtime's *core.Ledger here).
	Observer Observer
	// Transient classifies retryable forward errors; nil selects
	// core.IsTransient.
	Transient func(error) bool
	// Budget, when non-nil, charges each flushed batch one unit of the
	// unified SM budget for the duration of its attempts — the same pool
	// the batch's own chain streams, DAG wavefront, and copy stream draw
	// from (wire the runtime's core.Budget here when the server shares a
	// device with other work).
	Budget *core.Budget
	// Adapter, when non-nil, is notified after every flushed batch — the
	// serving equivalent of a training step boundary. Wire the runtime's
	// adaptive controller here: forward execution is width-invariant (the
	// gradient-partial folds that pin widths are backward-only), so a
	// serving plan swap is always bit-safe and needs no checkpoint.
	Adapter BatchBoundary
}

// BatchBoundary is notified after each flushed device batch.
type BatchBoundary interface {
	BatchBoundary()
}

// Stats is a snapshot of a server's counters. Quantiles are nearest-rank
// over a sliding window of recent observations.
type Stats struct {
	Requests int64 // requests answered successfully
	Batches  int64 // device batches flushed
	Samples  int64 // sum of batch occupancies (Samples/Batches = mean coalescing)
	Retries  int64 // transient whole-batch retries absorbed
	Failures int64 // requests answered with an error (including canceled)
	Shed     int64 // requests rejected at admission (queue full)

	ReqP50, ReqP99     time.Duration // enqueue→answer
	BatchP50, BatchP99 time.Duration // flush→done
}

func (s Stats) String() string {
	mean := 0.0
	if s.Batches > 0 {
		mean = float64(s.Samples) / float64(s.Batches)
	}
	return fmt.Sprintf("requests=%d batches=%d mean-batch=%.2f retries=%d failures=%d shed=%d | req p50=%v p99=%v | batch p50=%v p99=%v",
		s.Requests, s.Batches, mean, s.Retries, s.Failures, s.Shed,
		s.ReqP50.Round(time.Microsecond), s.ReqP99.Round(time.Microsecond),
		s.BatchP50.Round(time.Microsecond), s.BatchP99.Round(time.Microsecond))
}

type response struct {
	outputs [][]float32
	err     error
}

type request struct {
	samples [][]float32 // one row per frozen input, in Inputs() order
	resp    chan response
	enq     time.Time
	// ctx, when non-nil, lets the batcher shed the request at flush time if
	// its caller has already gone away (PredictContext only).
	ctx context.Context
}

// Server owns a frozen net and its execution context on a single batcher
// goroutine (the frozen plan has one set of activation blobs, so batches
// serialize; concurrency lives inside a batch via the DAG wavefront and
// the stream pool). Predict is safe for any number of concurrent callers.
type Server struct {
	fz  *dnn.FrozenNet
	ctx *dnn.Context
	cfg Config

	inNames  []string
	outNames []string
	inRow    []int // per-input row length (elements per sample)
	outRow   []int
	batch    int // device batch rows

	in   chan *request
	quit chan struct{}
	done chan struct{}
	once sync.Once

	mu       sync.Mutex
	requests int64
	batches  int64
	samples  int64
	retries  int64
	failures int64
	shed     int64
	reqLat   *core.LatencyWindow
	batchLat *core.LatencyWindow
}

// New starts a server over a frozen net. The frozen net and context belong
// to the server until Close: no other goroutine may run the plan.
func New(fz *dnn.FrozenNet, ctx *dnn.Context, cfg Config) (*Server, error) {
	batch := fz.Batch()
	if batch < 1 {
		return nil, fmt.Errorf("serve: frozen net %s has no input batch", fz.Name())
	}
	if cfg.MaxBatch <= 0 || cfg.MaxBatch > batch {
		cfg.MaxBatch = batch
	}
	if cfg.MaxDelay == 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 4 * cfg.MaxBatch
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 3
	}
	if cfg.Transient == nil {
		cfg.Transient = core.IsTransient
	}
	s := &Server{
		fz:       fz,
		ctx:      ctx,
		cfg:      cfg,
		inNames:  fz.Inputs(),
		outNames: fz.Outputs(),
		batch:    batch,
		in:       make(chan *request, cfg.Queue),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		reqLat:   core.NewLatencyWindow(0),
		batchLat: core.NewLatencyWindow(0),
	}
	if len(s.inNames) == 0 || len(s.outNames) == 0 {
		return nil, fmt.Errorf("serve: frozen net %s has %d inputs and %d outputs; need at least one of each",
			fz.Name(), len(s.inNames), len(s.outNames))
	}
	for _, name := range s.inNames {
		s.inRow = append(s.inRow, s.fz.Blob(name).Count()/batch)
	}
	for _, name := range s.outNames {
		s.outRow = append(s.outRow, s.fz.Blob(name).Count()/batch)
	}
	go s.run()
	return s, nil
}

// Inputs returns the per-request sample layout: one row per name, in the
// order Predict expects, with RowSizes giving each row's element count.
func (s *Server) Inputs() []string { return append([]string(nil), s.inNames...) }

// Outputs returns the names of the rows each Predict answer carries.
func (s *Server) Outputs() []string { return append([]string(nil), s.outNames...) }

// RowSizes returns the per-input element counts one request's samples must
// have, parallel to Inputs().
func (s *Server) RowSizes() []int { return append([]int(nil), s.inRow...) }

// MaxBatch returns the effective coalescing cap after Config normalization
// (clamped to the frozen engine's device batch).
func (s *Server) MaxBatch() int { return s.cfg.MaxBatch }

// Predict submits one sample (one row per frozen input, in Inputs()
// order) and blocks until the batcher answers: one row per frozen output,
// in Outputs() order. Safe for concurrent use; returns ErrClosed after
// Close.
func (s *Server) Predict(samples ...[]float32) ([][]float32, error) {
	r, err := s.newRequest(samples)
	if err != nil {
		return nil, err
	}
	select {
	case s.in <- r:
	case <-s.quit:
		return nil, ErrClosed
	}
	select {
	case resp := <-r.resp:
		return resp.outputs, resp.err
	case <-s.done:
		// The batcher exited; a final drain answers everything it saw, so
		// reaching here means the request slipped in after that drain.
		select {
		case resp := <-r.resp:
			return resp.outputs, resp.err
		default:
			return nil, ErrClosed
		}
	}
}

// PredictContext is Predict with bounded admission and per-request
// cancellation. Where Predict blocks until the queue has room,
// PredictContext never waits for admission: a full queue sheds the request
// immediately with ErrOverloaded, so overload turns into fast feedback
// instead of unbounded queueing. A request whose context is done before
// its batch flushes is answered with the context's error without occupying
// batch rows; cancellation after the flush started does not recall the
// answer (the caller just stops waiting for it).
func (s *Server) PredictContext(ctx context.Context, samples ...[]float32) ([][]float32, error) {
	r, err := s.newRequest(samples)
	if err != nil {
		return nil, err
	}
	r.ctx = ctx
	select {
	case <-s.quit:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	default:
	}
	select {
	case s.in <- r:
	default:
		s.mu.Lock()
		s.shed++
		s.mu.Unlock()
		return nil, ErrOverloaded
	}
	select {
	case resp := <-r.resp:
		return resp.outputs, resp.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.done:
		select {
		case resp := <-r.resp:
			return resp.outputs, resp.err
		default:
			return nil, ErrClosed
		}
	}
}

// newRequest validates one request's sample layout.
func (s *Server) newRequest(samples [][]float32) (*request, error) {
	if len(samples) != len(s.inNames) {
		return nil, fmt.Errorf("serve: request has %d samples, frozen net wants %d (%v)",
			len(samples), len(s.inNames), s.inNames)
	}
	for i, row := range samples {
		if len(row) != s.inRow[i] {
			return nil, fmt.Errorf("serve: input %q sample has %d elements, want %d",
				s.inNames[i], len(row), s.inRow[i])
		}
	}
	return &request{samples: samples, resp: make(chan response, 1), enq: time.Now()}, nil
}

// Close shuts the server down: pending requests are still answered (one
// final flush), later Predicts return ErrClosed. Idempotent.
func (s *Server) Close() {
	s.once.Do(func() { close(s.quit) })
	<-s.done
}

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Requests: s.requests,
		Batches:  s.batches,
		Samples:  s.samples,
		Retries:  s.retries,
		Failures: s.failures,
		Shed:     s.shed,
		ReqP50:   s.reqLat.Quantile(0.50),
		ReqP99:   s.reqLat.Quantile(0.99),
		BatchP50: s.batchLat.Quantile(0.50),
		BatchP99: s.batchLat.Quantile(0.99),
	}
}

// run is the batcher goroutine: accumulate, flush on batch-full or
// deadline, drain on shutdown.
func (s *Server) run() {
	defer close(s.done)
	var pending []*request
	var timer *time.Timer
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
		}
	}
	for {
		switch {
		case len(pending) == 0:
			// Idle: park until the first request (or shutdown) arrives.
			select {
			case r := <-s.in:
				pending = append(pending, r)
			case <-s.quit:
				s.drainAndExit(pending)
				return
			}
		case len(pending) >= s.cfg.MaxBatch:
			stopTimer()
			s.flush(pending)
			pending = pending[:0]
		case s.cfg.MaxDelay < 0:
			// Greedy: coalesce only what is already queued, then flush.
			select {
			case r := <-s.in:
				pending = append(pending, r)
			default:
				s.flush(pending)
				pending = pending[:0]
			}
		default:
			// Partial batch: wait for more work until the oldest pending
			// request's deadline.
			if timer == nil {
				timer = time.NewTimer(time.Until(pending[0].enq.Add(s.cfg.MaxDelay)))
			}
			select {
			case r := <-s.in:
				pending = append(pending, r)
			case <-timer.C:
				timer = nil
				s.flush(pending)
				pending = pending[:0]
			case <-s.quit:
				stopTimer()
				s.drainAndExit(pending)
				return
			}
		}
	}
}

// drainAndExit answers everything submitted before shutdown: the pending
// partial batch plus whatever sits in the queue, in arrival order, in
// MaxBatch-sized flushes.
func (s *Server) drainAndExit(pending []*request) {
	for {
		for len(pending) < s.cfg.MaxBatch {
			select {
			case r := <-s.in:
				pending = append(pending, r)
				continue
			default:
			}
			break
		}
		if len(pending) == 0 {
			return
		}
		flushN := len(pending)
		if flushN > s.cfg.MaxBatch {
			flushN = s.cfg.MaxBatch
		}
		s.flush(pending[:flushN])
		pending = pending[flushN:]
	}
}

// flush runs one device batch: requests occupy rows 0..n−1 of every input
// blob, the remaining rows are zeroed (padding is never read back), the
// batch stages over the copy stream and runs the frozen forward —
// retrying in place on transient faults — and each request gets its own
// output rows. Request order within the batch is stable across retries,
// so answers are bitwise independent of the fault history.
func (s *Server) flush(reqs []*request) {
	// Answer already-canceled requests without batch rows: their callers
	// have stopped waiting, and answers are independent of co-batching, so
	// dropping them changes no surviving request's bits.
	live := reqs[:0:len(reqs)]
	var canceled int64
	for _, r := range reqs {
		if r.ctx != nil && r.ctx.Err() != nil {
			r.resp <- response{err: r.ctx.Err()}
			canceled++
			continue
		}
		live = append(live, r)
	}
	if canceled > 0 {
		s.mu.Lock()
		s.failures += canceled
		s.mu.Unlock()
	}
	reqs = live
	if len(reqs) == 0 {
		return
	}

	t0 := time.Now()
	n := len(reqs)
	for ii, name := range s.inNames {
		data := s.fz.Blob(name).Data.Data()
		row := s.inRow[ii]
		for ri, r := range reqs {
			copy(data[ri*row:(ri+1)*row], r.samples[ii])
		}
		for i := n * row; i < len(data); i++ {
			data[i] = 0
		}
	}
	var err error
	if b := s.cfg.Budget; b != nil {
		g := b.Acquire(1)
		defer b.Release(g)
	}
	for attempt := 0; ; attempt++ {
		if err = s.stageAndForward(); err == nil {
			break
		}
		if attempt >= s.cfg.Retries || !s.cfg.Transient(err) {
			break
		}
		s.mu.Lock()
		s.retries++
		s.mu.Unlock()
	}
	batchLat := time.Since(t0)
	if err != nil {
		err = fmt.Errorf("serve: batch of %d failed: %w", n, err)
		for _, r := range reqs {
			r.resp <- response{err: err}
		}
		s.mu.Lock()
		s.failures += int64(n)
		s.mu.Unlock()
		return
	}
	outs := make([][]float32, len(s.outNames))
	for oi, name := range s.outNames {
		outs[oi] = s.fz.Blob(name).Data.Data()
	}
	now := time.Now()
	var lats []time.Duration
	for ri, r := range reqs {
		rows := make([][]float32, len(outs))
		for oi := range outs {
			row := s.outRow[oi]
			rows[oi] = append([]float32(nil), outs[oi][ri*row:(ri+1)*row]...)
		}
		r.resp <- response{outputs: rows}
		lats = append(lats, now.Sub(r.enq))
	}
	s.mu.Lock()
	s.requests += int64(n)
	s.batches++
	s.samples += int64(n)
	for _, lat := range lats {
		s.reqLat.Add(lat)
	}
	s.batchLat.Add(batchLat)
	s.mu.Unlock()
	if obs := s.cfg.Observer; obs != nil {
		for _, lat := range lats {
			obs.ServeRequest(lat)
		}
		obs.ServeBatch(n, batchLat)
	}
	if a := s.cfg.Adapter; a != nil {
		a.BatchBoundary()
	}
}

// stageAndForward is one attempt: input H2D staging (copy stream when the
// launcher has one) followed by the frozen forward.
func (s *Server) stageAndForward() error {
	if err := s.fz.StageInputs(s.ctx); err != nil {
		return err
	}
	return s.fz.Forward(s.ctx)
}
